#include "storage/raft.hpp"

#include <algorithm>

namespace dcache::storage {

RaftReplicator::RaftReplicator(sim::Tier& kvTier, sim::NetworkModel& network,
                               RaftCosts costs, std::size_t replicationFactor)
    : tier_(&kvTier),
      network_(&network),
      costs_(costs),
      replicationFactor_(std::clamp<std::size_t>(replicationFactor, 1,
                                                 kvTier.size())),
      applied_(kvTier.size(), 0) {}

std::vector<std::size_t> RaftReplicator::followersOf(
    std::size_t leaderIndex) const {
  std::vector<std::size_t> followers;
  for (std::size_t i = 1; i < replicationFactor_; ++i) {
    followers.push_back((leaderIndex + i) % tier_->size());
  }
  return followers;
}

double RaftReplicator::replicate(std::size_t leaderIndex,
                                 std::uint64_t bytes) {
  sim::Node& leader = tier_->node(leaderIndex);
  leader.charge(sim::CpuComponent::kReplication,
                costs_.leaderAppendMicros +
                    costs_.perByteMicros * static_cast<double>(bytes));
  ++committedIndex_;
  ++applied_[leaderIndex];

  double commitLatency = 0.0;
  for (const std::size_t f : followersOf(leaderIndex)) {
    sim::Node& follower = tier_->node(f);
    follower.charge(sim::CpuComponent::kReplication,
                    costs_.followerApplyMicros +
                        costs_.perByteMicros * static_cast<double>(bytes));
    const double out = network_->transfer(leader, follower, bytes,
                                          sim::CpuComponent::kReplication);
    const double back =
        network_->transfer(follower, leader, 16,  // ack
                           sim::CpuComponent::kReplication);
    commitLatency = std::max(commitLatency, out + back);
    ++applied_[f];
  }
  return commitLatency;
}

void RaftReplicator::validateLease(std::size_t leaderIndex) {
  tier_->node(leaderIndex)
      .charge(sim::CpuComponent::kLeaseValidation, costs_.leaseValidateMicros);
  ++leaseChecks_;
}

}  // namespace dcache::storage
