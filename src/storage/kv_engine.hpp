// MVCC key-value engine — the TiKV stand-in. Keys map to version chains
// ordered by commit timestamp; reads see the latest version at or below
// their snapshot, writes append, deletes write tombstones, and GC trims
// history. The map is ordered so secondary-index prefix scans work. Values
// carry a logical size separate from the optional payload for the same
// reason the caches do: simulating 1 MB values must not cost 1 MB of host
// RAM each.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "util/bytes.hpp"
#include "util/hash.hpp"

namespace dcache::storage {

struct StoredValue {
  std::uint64_t size = 0;       // logical bytes (== payload.size() if present)
  std::uint64_t version = 0;    // commit timestamp that wrote this version
  std::string payload;          // real bytes for functional tables
  bool tombstone = false;

  [[nodiscard]] static StoredValue sized(std::uint64_t size) {
    return StoredValue{size, 0, {}, false};
  }
  [[nodiscard]] static StoredValue of(std::string payload) {
    const auto n = static_cast<std::uint64_t>(payload.size());
    return StoredValue{n, 0, std::move(payload), false};
  }
};

class KvEngine {
 public:
  static constexpr std::uint64_t kLatest = UINT64_MAX;

  /// Append a version at `commitTs`. Timestamps must be monotone per key;
  /// out-of-order commits are rejected (returns false) — this is the
  /// guard the delayed-writes scenario probes.
  bool put(std::string_view key, StoredValue value, std::uint64_t commitTs);

  /// Tombstone write.
  bool erase(std::string_view key, std::uint64_t commitTs);

  /// Latest visible version at `snapshotTs` (kLatest = newest). Returns
  /// nullptr for missing keys and tombstones.
  [[nodiscard]] const StoredValue* get(std::string_view key,
                                       std::uint64_t snapshotTs = kLatest) const;

  /// Version of the newest visible value; nullopt if absent/deleted.
  [[nodiscard]] std::optional<std::uint64_t> latestVersion(
      std::string_view key) const;

  /// Ordered scan over keys with the given prefix; `fn` returns false to
  /// stop early. Returns rows visited.
  std::size_t scanPrefix(
      std::string_view prefix, std::uint64_t snapshotTs,
      const std::function<bool(std::string_view, const StoredValue&)>& fn) const;

  /// Drop all but the newest `keep` versions of every key. Returns number
  /// of versions reclaimed.
  std::size_t gc(std::size_t keep = 2);

  /// Pre-size the point index for `expectedKeys` keys, avoiding the
  /// rehash cascade when a deployment bulk-loads its keyspace.
  void reserveKeys(std::size_t expectedKeys);

  [[nodiscard]] std::size_t keyCount() const noexcept { return chains_.size(); }
  [[nodiscard]] util::Bytes liveBytes() const noexcept {
    return util::Bytes::of(liveBytes_);
  }
  [[nodiscard]] std::uint64_t writeCount() const noexcept { return writes_; }

 private:
  using Chain = std::vector<StoredValue>;  // ascending by version

  /// Open-addressing point index over `chains_`. Point gets/puts dominate
  /// the serve path, and an RB-tree descent per lookup was the single
  /// hottest function in the whole simulator; the ordered map is kept only
  /// for scanPrefix. Safe because nothing ever erases a chains_ node (GC
  /// trims chains in place), so the cached key/chain pointers stay valid.
  struct IndexSlot {
    std::uint64_t hash = 0;
    const std::string* key = nullptr;
    Chain* chain = nullptr;  // nullptr == empty slot
  };

  [[nodiscard]] Chain* findChain(std::uint64_t hash,
                                 std::string_view key) const;
  void indexInsert(std::uint64_t hash, const std::string* key, Chain* chain);
  void maybeGrowIndex();
  void rebuildIndex(std::size_t slots);

  std::map<std::string, Chain, std::less<>> chains_;
  std::vector<IndexSlot> index_;  // power-of-two linear probing
  std::size_t indexMask_ = 0;
  std::uint64_t liveBytes_ = 0;  // newest non-tombstone version per key
  std::uint64_t writes_ = 0;
};

}  // namespace dcache::storage
