#include "storage/kv_engine.hpp"

#include <algorithm>

namespace dcache::storage {

KvEngine::Chain* KvEngine::findChain(std::uint64_t hash,
                                     std::string_view key) const {
  if (index_.empty()) return nullptr;
  std::size_t pos = static_cast<std::size_t>(hash) & indexMask_;
  while (index_[pos].chain != nullptr) {
    if (index_[pos].hash == hash && *index_[pos].key == key) {
      return index_[pos].chain;
    }
    pos = (pos + 1) & indexMask_;
  }
  return nullptr;
}

void KvEngine::indexInsert(std::uint64_t hash, const std::string* key,
                           Chain* chain) {
  maybeGrowIndex();
  std::size_t pos = static_cast<std::size_t>(hash) & indexMask_;
  while (index_[pos].chain != nullptr) pos = (pos + 1) & indexMask_;
  index_[pos] = IndexSlot{hash, key, chain};
}

void KvEngine::maybeGrowIndex() {
  // Grow at 70% load; chains_.size() is the number of occupied slots.
  if (!index_.empty() && (chains_.size() + 1) * 10 <= index_.size() * 7) {
    return;
  }
  rebuildIndex(index_.empty() ? 1024 : index_.size() * 2);
}

void KvEngine::rebuildIndex(std::size_t slots) {
  index_.assign(slots, IndexSlot{});
  indexMask_ = slots - 1;
  for (auto& [key, chain] : chains_) {
    const std::uint64_t h = util::fastHash64(key);
    std::size_t pos = static_cast<std::size_t>(h) & indexMask_;
    while (index_[pos].chain != nullptr) pos = (pos + 1) & indexMask_;
    index_[pos] = IndexSlot{h, &key, &chain};
  }
}

void KvEngine::reserveKeys(std::size_t expectedKeys) {
  std::size_t slots = 1024;
  // Size so `expectedKeys` stays under the 70% growth threshold.
  while (expectedKeys * 10 > slots * 7) slots *= 2;
  if (slots > index_.size()) rebuildIndex(slots);
}

bool KvEngine::put(std::string_view key, StoredValue value,
                   std::uint64_t commitTs) {
  const std::uint64_t h = util::fastHash64(key);
  Chain* found = findChain(h, key);
  if (found == nullptr) {
    auto it = chains_.emplace(std::string(key), Chain{}).first;
    found = &it->second;
    indexInsert(h, &it->first, found);
  }
  Chain& chain = *found;
  if (!chain.empty() && chain.back().version >= commitTs) {
    return false;  // stale write: a newer version is already committed
  }
  if (!chain.empty() && !chain.back().tombstone) {
    liveBytes_ -= chain.back().size;
  }
  value.version = commitTs;
  if (!value.tombstone) liveBytes_ += value.size;
  chain.push_back(std::move(value));
  ++writes_;
  return true;
}

bool KvEngine::erase(std::string_view key, std::uint64_t commitTs) {
  StoredValue tomb;
  tomb.tombstone = true;
  return put(key, std::move(tomb), commitTs);
}

const StoredValue* KvEngine::get(std::string_view key,
                                 std::uint64_t snapshotTs) const {
  const Chain* found = findChain(util::fastHash64(key), key);
  if (found == nullptr) return nullptr;
  const Chain& chain = *found;
  // Newest version with version <= snapshotTs.
  for (auto rit = chain.rbegin(); rit != chain.rend(); ++rit) {
    if (rit->version <= snapshotTs) {
      return rit->tombstone ? nullptr : &*rit;
    }
  }
  return nullptr;
}

std::optional<std::uint64_t> KvEngine::latestVersion(
    std::string_view key) const {
  const StoredValue* v = get(key);
  if (!v) return std::nullopt;
  return v->version;
}

std::size_t KvEngine::scanPrefix(
    std::string_view prefix, std::uint64_t snapshotTs,
    const std::function<bool(std::string_view, const StoredValue&)>& fn) const {
  std::size_t visited = 0;
  for (auto it = chains_.lower_bound(prefix); it != chains_.end(); ++it) {
    const std::string& key = it->first;
    if (key.compare(0, prefix.size(), prefix) != 0) break;
    // Find visible version inline to avoid a second map lookup.
    const StoredValue* visible = nullptr;
    for (auto rit = it->second.rbegin(); rit != it->second.rend(); ++rit) {
      if (rit->version <= snapshotTs) {
        if (!rit->tombstone) visible = &*rit;
        break;
      }
    }
    if (visible) {
      ++visited;
      if (!fn(key, *visible)) break;
    }
  }
  return visited;
}

std::size_t KvEngine::gc(std::size_t keep) {
  if (keep == 0) keep = 1;
  std::size_t reclaimed = 0;
  for (auto& [key, chain] : chains_) {
    if (chain.size() > keep) {
      reclaimed += chain.size() - keep;
      chain.erase(chain.begin(),
                  chain.begin() + static_cast<std::ptrdiff_t>(chain.size() - keep));
    }
  }
  return reclaimed;
}

}  // namespace dcache::storage
