#include "storage/kv_engine.hpp"

#include <algorithm>

namespace dcache::storage {

bool KvEngine::put(std::string_view key, StoredValue value,
                   std::uint64_t commitTs) {
  auto it = chains_.find(key);
  if (it == chains_.end()) {
    it = chains_.emplace(std::string(key), Chain{}).first;
  }
  Chain& chain = it->second;
  if (!chain.empty() && chain.back().version >= commitTs) {
    return false;  // stale write: a newer version is already committed
  }
  if (!chain.empty() && !chain.back().tombstone) {
    liveBytes_ -= chain.back().size;
  }
  value.version = commitTs;
  if (!value.tombstone) liveBytes_ += value.size;
  chain.push_back(std::move(value));
  ++writes_;
  return true;
}

bool KvEngine::erase(std::string_view key, std::uint64_t commitTs) {
  StoredValue tomb;
  tomb.tombstone = true;
  return put(key, std::move(tomb), commitTs);
}

const StoredValue* KvEngine::get(std::string_view key,
                                 std::uint64_t snapshotTs) const {
  const auto it = chains_.find(key);
  if (it == chains_.end()) return nullptr;
  const Chain& chain = it->second;
  // Newest version with version <= snapshotTs.
  for (auto rit = chain.rbegin(); rit != chain.rend(); ++rit) {
    if (rit->version <= snapshotTs) {
      return rit->tombstone ? nullptr : &*rit;
    }
  }
  return nullptr;
}

std::optional<std::uint64_t> KvEngine::latestVersion(
    std::string_view key) const {
  const StoredValue* v = get(key);
  if (!v) return std::nullopt;
  return v->version;
}

std::size_t KvEngine::scanPrefix(
    std::string_view prefix, std::uint64_t snapshotTs,
    const std::function<bool(std::string_view, const StoredValue&)>& fn) const {
  std::size_t visited = 0;
  for (auto it = chains_.lower_bound(prefix); it != chains_.end(); ++it) {
    const std::string& key = it->first;
    if (key.compare(0, prefix.size(), prefix) != 0) break;
    // Find visible version inline to avoid a second map lookup.
    const StoredValue* visible = nullptr;
    for (auto rit = it->second.rbegin(); rit != it->second.rend(); ++rit) {
      if (rit->version <= snapshotTs) {
        if (!rit->tombstone) visible = &*rit;
        break;
      }
    }
    if (visible) {
      ++visited;
      if (!fn(key, *visible)) break;
    }
  }
  return visited;
}

std::size_t KvEngine::gc(std::size_t keep) {
  if (keep == 0) keep = 1;
  std::size_t reclaimed = 0;
  for (auto& [key, chain] : chains_) {
    if (chain.size() > keep) {
      reclaimed += chain.size() - keep;
      chain.erase(chain.begin(),
                  chain.begin() + static_cast<std::ptrdiff_t>(chain.size() - keep));
    }
  }
  return reclaimed;
}

}  // namespace dcache::storage
