// Storage-layer block cache — the "Base" architecture's cache (Fig. 1a).
// TiKV-style: rows live in fixed-granularity blocks; a read that misses
// pays the disk path, a hit pays only a probe. CLOCK eviction, matching the
// lock-free approximation real block caches use. Writes are applied
// write-through (a freshly written row sits in the memtable, so an
// immediately following read is cheap — write-invalidate would overstate
// disk traffic).
//
// Runs on the flat slab/open-addressing backend (flat_cache.hpp), which is
// sequence-identical to the node ClockCache it replaced.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "cache/flat_cache.hpp"

namespace dcache::storage {

class BlockCache {
 public:
  static constexpr std::uint64_t kBlockBytes = 4096;

  explicit BlockCache(util::Bytes capacity)
      : cache_(cache::FlatMode::kClock, capacity) {}

  /// Probe for the block containing `key` (a row of `rowBytes`). On a miss
  /// the block is loaded (inserted); the caller charges the disk path.
  /// Returns true on hit.
  bool touchRead(std::string_view key, std::uint64_t rowBytes);

  /// Apply a write: the row's block is refreshed in cache.
  void touchWrite(std::string_view key, std::uint64_t rowBytes);

  /// Drop the block containing `key` (compaction, explicit invalidation).
  void invalidate(std::string_view key);

  /// Drop everything — a storage-node crash/restart comes back cold.
  void clear() { cache_.clear(); }

  [[nodiscard]] const cache::CacheStats& stats() const noexcept {
    return cache_.stats();
  }
  [[nodiscard]] util::Bytes bytesUsed() const noexcept {
    return cache_.bytesUsed();
  }
  [[nodiscard]] util::Bytes capacity() const noexcept {
    return cache_.capacity();
  }

  /// Block identifier for a key: 16 adjacent hash buckets share a block.
  [[nodiscard]] static std::string blockIdFor(std::string_view key);
  /// blockIdFor into a caller-provided scratch buffer (per-read hot path).
  static void blockIdTo(std::string_view key, std::string& out);
  /// Bytes charged for a block holding a row of `rowBytes`.
  [[nodiscard]] static std::uint64_t blockSizeFor(std::uint64_t rowBytes) noexcept {
    return rowBytes > kBlockBytes ? rowBytes : kBlockBytes;
  }

 private:
  cache::FlatCache cache_;
  /// Per-op block-id scratch; valid only within one touch/invalidate call.
  std::string idScratch_;
};

}  // namespace dcache::storage
