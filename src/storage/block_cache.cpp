#include "storage/block_cache.hpp"

#include <cstdio>

#include "util/hash.hpp"

namespace dcache::storage {

std::string BlockCache::blockIdFor(std::string_view key) {
  // Group 16 hash buckets per block: preserves the "over-read" property of
  // block storage (a hot key drags its block neighbours into memory).
  std::uint64_t block = util::hashKey(key) >> 4;
  char buf[17];
  buf[0] = 'b';
  static constexpr char kHex[] = "0123456789abcdef";
  for (int i = 16; i > 0; --i) {
    buf[i] = kHex[block & 0xF];
    block >>= 4;
  }
  return std::string(buf, sizeof buf);
}

bool BlockCache::touchRead(std::string_view key, std::uint64_t rowBytes) {
  const std::string id = blockIdFor(key);
  if (cache_.get(id) != nullptr) return true;
  cache_.put(id, cache::CacheEntry::sized(blockSizeFor(rowBytes)));
  return false;
}

void BlockCache::touchWrite(std::string_view key, std::uint64_t rowBytes) {
  const std::string id = blockIdFor(key);
  cache_.put(id, cache::CacheEntry::sized(blockSizeFor(rowBytes)));
}

void BlockCache::invalidate(std::string_view key) {
  cache_.erase(blockIdFor(key));
}

}  // namespace dcache::storage
