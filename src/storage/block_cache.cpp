#include "storage/block_cache.hpp"

#include "util/hash.hpp"

namespace dcache::storage {

std::string BlockCache::blockIdFor(std::string_view key) {
  std::string out;
  blockIdTo(key, out);
  return out;
}

void BlockCache::blockIdTo(std::string_view key, std::string& out) {
  // Group 16 hash buckets per block: preserves the "over-read" property of
  // block storage (a hot key drags its block neighbours into memory).
  std::uint64_t block = util::hashKey(key) >> 4;
  char buf[17];
  buf[0] = 'b';
  static constexpr char kHex[] = "0123456789abcdef";
  for (int i = 16; i > 0; --i) {
    buf[i] = kHex[block & 0xF];
    block >>= 4;
  }
  out.assign(buf, sizeof buf);
}

bool BlockCache::touchRead(std::string_view key, std::uint64_t rowBytes) {
  blockIdTo(key, idScratch_);
  if (cache_.get(idScratch_) != nullptr) return true;
  cache_.put(idScratch_, cache::CacheEntry::sized(blockSizeFor(rowBytes)));
  return false;
}

void BlockCache::touchWrite(std::string_view key, std::uint64_t rowBytes) {
  blockIdTo(key, idScratch_);
  cache_.put(idScratch_, cache::CacheEntry::sized(blockSizeFor(rowBytes)));
}

void BlockCache::invalidate(std::string_view key) {
  blockIdTo(key, idScratch_);
  cache_.erase(idScratch_);
}

}  // namespace dcache::storage
