// Row values and the row codec. Rows are encoded with the shared wire
// format (column index + 1 as the field number), so storage pays the same
// honest serialization costs as the RPC layer and the codec round-trips are
// testable against corrupted input.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "storage/schema.hpp"

namespace dcache::storage {

using Value = std::variant<std::int64_t, double, std::string>;

[[nodiscard]] std::string valueToString(const Value& v);
[[nodiscard]] std::int64_t valueToInt(const Value& v) noexcept;

/// Compare for WHERE equality; int/double compare numerically.
[[nodiscard]] bool valueEquals(const Value& a, const Value& b) noexcept;

struct Row {
  std::vector<Value> values;

  [[nodiscard]] const Value& at(std::size_t i) const { return values.at(i); }
};

/// Encode a row per the schema. Columns beyond the schema are dropped.
[[nodiscard]] std::string encodeRow(const TableSchema& schema, const Row& row);

/// Decode; nullopt on malformed bytes or type mismatch.
[[nodiscard]] std::optional<Row> decodeRow(const TableSchema& schema,
                                           std::string_view bytes);

/// Encoded size without materializing the buffer.
[[nodiscard]] std::uint64_t encodedRowSize(const TableSchema& schema,
                                           const Row& row);

/// Declared opaque-attachment bytes for a row (0 when the schema declares
/// no payload-size column). See TableSchema::withPayloadSizeColumn.
[[nodiscard]] std::uint64_t declaredPayloadBytes(const TableSchema& schema,
                                                 const Row& row) noexcept;

}  // namespace dcache::storage
