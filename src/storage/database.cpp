#include "storage/database.hpp"

#include <algorithm>

#include "rpc/wire_size.hpp"
#include "sim/trace_hook.hpp"
#include "storage/executor.hpp"
#include "storage/sql_parser.hpp"
#include "util/hash.hpp"

namespace dcache::storage {
namespace {

/// Approximate wire size of the plan fragment shipped front-end -> KV node.
constexpr std::uint64_t kPlanFragmentBytes = 96;

}  // namespace

Database::Database(sim::Tier& sqlTier, sim::Tier& kvTier,
                   rpc::Channel& channel, Config config)
    : sqlTier_(&sqlTier),
      kvTier_(&kvTier),
      channel_(&channel),
      config_(config),
      raft_(kvTier, channel.network(), config.raftCosts,
            config.replicationFactor),
      engines_(kvTier.size()),
      planner_([this](std::string_view table) { return schema(table); }) {
  blockCaches_.reserve(kvTier.size());
  for (std::size_t i = 0; i < kvTier.size(); ++i) {
    blockCaches_.push_back(
        std::make_unique<BlockCache>(config_.blockCachePerNode));
    kvTier.node(i).mem().provision(config_.blockCachePerNode);
  }
}

Database::Database(sim::Tier& sqlTier, sim::Tier& kvTier,
                   rpc::Channel& channel)
    : Database(sqlTier, kvTier, channel, Config{}) {}

// ---- key layout ----

std::string Database::rowKey(std::string_view table, std::string_view pk) {
  std::string key;
  key.reserve(2 + table.size() + 3 + pk.size());
  key.append("t/").append(table).append("/r/").append(pk);
  return key;
}

std::string Database::rowPrefix(std::string_view table) {
  std::string key;
  key.append("t/").append(table).append("/r/");
  return key;
}

std::string Database::indexKey(std::string_view table, std::string_view column,
                               std::string_view value, std::string_view pk) {
  std::string key = indexPrefix(table, column, value);
  key.append(pk);
  return key;
}

std::string Database::indexPrefix(std::string_view table,
                                  std::string_view column,
                                  std::string_view value) {
  std::string key;
  key.append("t/").append(table).append("/i/").append(column).append("/");
  key.append(value).append("/");
  return key;
}

std::string Database::kvKey(std::string_view key) {
  std::string out;
  out.reserve(3 + key.size());
  out.append("kv/").append(key);
  return out;
}

// ---- schema / population ----

void Database::createTable(TableSchema schema) {
  std::string name = schema.name();
  schemas_.insert_or_assign(std::move(name), std::move(schema));
}

const TableSchema* Database::schema(std::string_view table) const {
  const auto it = schemas_.find(table);
  return it == schemas_.end() ? nullptr : &it->second;
}

void Database::loadRow(std::string_view table, const Row& row) {
  const TableSchema* s = schema(table);
  if (!s) return;
  const std::string pk = valueToString(row.values[s->primaryKeyColumn()]);
  const std::string key = rowKey(table, pk);
  StoredValue stored = StoredValue::of(encodeRow(*s, row));
  stored.size += declaredPayloadBytes(*s, row);
  engines_[nodeFor(key)].put(key, std::move(stored), ++ts_);
  for (const std::size_t col : s->indexedColumns()) {
    const std::string ik = indexKey(table, s->columns()[col].name,
                                    valueToString(row.values[col]), pk);
    engines_[nodeFor(ik)].put(ik, StoredValue::sized(0), ++ts_);
  }
}

void Database::loadValue(std::string_view key, std::uint64_t size) {
  const std::string k = kvKey(key);
  engines_[nodeFor(k)].put(k, StoredValue::sized(size), ++ts_);
}

void Database::reserveKeys(std::size_t expectedKeys) {
  // 1/8 slack absorbs hash skew across engines.
  const std::size_t perEngine =
      expectedKeys / engines_.size() + expectedKeys / (engines_.size() * 8);
  for (KvEngine& engine : engines_) engine.reserveKeys(perEngine);
}

// ---- engine-level API ----

std::size_t Database::nodeFor(std::string_view key) const noexcept {
  return util::hashKey(key) % engines_.size();
}

void Database::syncMemoryMeters(std::size_t nodeIndex) {
  kvTier_->node(nodeIndex).mem().use(blockCaches_[nodeIndex]->bytesUsed());
}

const StoredValue* Database::engineGet(std::string_view key,
                                       ExecTrace& trace) {
  const std::size_t idx = nodeFor(key);
  sim::Node& node = kvTier_->node(idx);
  const StorageCosts& costs = config_.costs;

  if (config_.consistentReads) raft_.validateLease(idx);

  const StoredValue* stored = engines_[idx].get(key);
  if (!stored) {
    // Bloom filter / memtable probe only: no block fetch for absent keys.
    node.charge(sim::CpuComponent::kKvExecution, costs.execPerRowMicros);
    trace.latencyMicros += costs.execPerRowMicros;
    return nullptr;
  }

  const double execMicros =
      costs.execPerRowMicros +
      costs.execPerByteMicros * static_cast<double>(stored->size);
  node.charge(sim::CpuComponent::kKvExecution, execMicros);
  trace.latencyMicros += execMicros;

  if (!blockCaches_[idx]->touchRead(key, stored->size)) {
    const std::uint64_t blockBytes = BlockCache::blockSizeFor(stored->size);
    node.charge(sim::CpuComponent::kDiskIo,
                costs.diskFixedMicros +
                    costs.diskPerByteMicros * static_cast<double>(blockBytes));
    trace.latencyMicros += costs.diskLatencyMicros;
    ++trace.blockMisses;
  } else {
    ++trace.blockHits;
  }
  syncMemoryMeters(idx);

  ++trace.rowsRead;
  trace.bytesRead += stored->size;
  trace.nodeBytes[idx] += stored->size;
  return stored;
}

bool Database::enginePut(std::string_view key, StoredValue value,
                         ExecTrace& trace) {
  const std::size_t idx = nodeFor(key);
  sim::Node& node = kvTier_->node(idx);
  const StorageCosts& costs = config_.costs;
  const std::uint64_t bytes = value.size + key.size();

  const double execMicros =
      costs.execPerRowMicros + costs.memtableMicros +
      costs.execPerByteMicros * static_cast<double>(value.size);
  node.charge(sim::CpuComponent::kKvExecution, execMicros);

  const std::uint64_t rowSize = value.size;
  if (!engines_[idx].put(key, std::move(value), ++ts_)) return false;
  trace.latencyMicros += execMicros + raft_.replicate(idx, bytes);
  blockCaches_[idx]->touchWrite(key, rowSize);
  syncMemoryMeters(idx);

  ++trace.rowsWritten;
  trace.bytesWritten += rowSize;
  trace.nodeBytes[idx] += rowSize;
  return true;
}

bool Database::engineDelete(std::string_view key, ExecTrace& trace) {
  const std::size_t idx = nodeFor(key);
  sim::Node& node = kvTier_->node(idx);
  const StorageCosts& costs = config_.costs;

  node.charge(sim::CpuComponent::kKvExecution,
              costs.execPerRowMicros + costs.memtableMicros);
  if (!engines_[idx].erase(key, ++ts_)) return false;
  trace.latencyMicros += raft_.replicate(idx, key.size());
  blockCaches_[idx]->invalidate(key);
  ++trace.rowsWritten;
  return true;
}

void Database::engineScanPrefix(
    std::string_view prefix, ExecTrace& trace,
    const std::function<bool(std::string_view, const StoredValue&)>& fn) {
  const StorageCosts& costs = config_.costs;
  for (std::size_t idx = 0; idx < engines_.size(); ++idx) {
    sim::Node& node = kvTier_->node(idx);
    if (config_.consistentReads) raft_.validateLease(idx);
    engines_[idx].scanPrefix(
        prefix, KvEngine::kLatest,
        [&](std::string_view key, const StoredValue& stored) {
          const double execMicros =
              costs.execPerRowMicros +
              costs.execPerByteMicros * static_cast<double>(stored.size);
          node.charge(sim::CpuComponent::kKvExecution, execMicros);
          trace.latencyMicros += execMicros;
          ++trace.rowsRead;
          trace.bytesRead += stored.size;
          trace.nodeBytes[idx] += stored.size;
          return fn(key, stored);
        });
  }
}

// ---- statement front-end ----

sim::Node& Database::frontendForStatement() {
  sim::Node& frontend = sqlTier_->nextNode();
  const StorageCosts& costs = config_.costs;
  frontend.charge(sim::CpuComponent::kConnectionMgmt, costs.connectionMicros);
  frontend.charge(sim::CpuComponent::kQueryParse, costs.parseMicros);
  frontend.charge(sim::CpuComponent::kQueryPlan, costs.planMicros);
  return frontend;
}

double Database::settleRpc(sim::Node& client, sim::Node& frontend,
                           std::uint64_t requestBytes,
                           std::uint64_t responseBytes,
                           const ExecTrace& trace) {
  // Front-end fans out to the KV nodes it touched (parallel; latency is the
  // slowest leg), then answers the client.
  double kvLatency = 0.0;
  for (const auto& [idx, bytes] : trace.nodeBytes) {
    const auto call = channel_->call(frontend, kvTier_->node(idx),
                                     kPlanFragmentBytes, bytes);
    kvLatency = std::max(kvLatency, call.latencyMicros);
  }
  const auto clientCall =
      channel_->call(client, frontend, requestBytes, responseBytes);
  return kvLatency + clientCall.latencyMicros;
}

Database::QueryResult Database::exec(sim::Node& client, std::string_view sql,
                                     std::span<const Value> params) {
  sim::SpanGuard span("sql.exec", sim::TierKind::kSqlFrontend);
  QueryResult result;
  sim::Node& frontend = frontendForStatement();

  ParseResult parsed = parseSql(sql);
  if (const auto* err = std::get_if<ParseError>(&parsed)) {
    result.error = "parse error: " + err->message;
    result.latencyMicros =
        settleRpc(client, frontend, sql.size(), 32, ExecTrace{});
    return result;
  }
  PlanResult planned = planner_.plan(std::get<Statement>(parsed));
  if (const auto* err = std::get_if<PlanError>(&planned)) {
    result.error = "plan error: " + err->message;
    result.latencyMicros =
        settleRpc(client, frontend, sql.size(), 32, ExecTrace{});
    return result;
  }

  ExecTrace trace;
  Executor executor(*this);
  Executor::Outcome outcome =
      executor.run(std::get<QueryPlan>(planned), params, trace);
  if (!outcome.ok) {
    result.error = outcome.error;
    result.latencyMicros =
        settleRpc(client, frontend, sql.size(), 32, trace);
    return result;
  }

  frontend.charge(sim::CpuComponent::kKvExecution,
                  config_.costs.resultPerRowMicros *
                      static_cast<double>(outcome.rows.size()));

  std::uint64_t requestBytes = sql.size();
  for (const Value& p : params) requestBytes += valueToString(p).size() + 2;
  std::uint64_t responseBytes = 16;
  const TableSchema* outSchema =
      std::get<QueryPlan>(planned).primary.schema;
  for (const Row& row : outcome.rows) {
    // Projection can mix schemas; approximate with the primary schema's
    // encoding, which the projected rows were sized from.
    responseBytes += outSchema ? encodedRowSize(*outSchema, row) + 3 : 32;
  }

  result.ok = true;
  result.rows = std::move(outcome.rows);
  result.rowsAffected = outcome.rowsAffected;
  result.latencyMicros =
      trace.latencyMicros +
      settleRpc(client, frontend, requestBytes, responseBytes, trace);
  return result;
}

// ---- KV path ----

Database::ReadResult Database::readValue(sim::Node& client,
                                         std::string_view key) {
  sim::SpanGuard span("db.read", sim::TierKind::kKvStorage);
  ReadResult result;
  sim::Node& frontend = frontendForStatement();  // SELECT v FROM kv WHERE k=?

  ExecTrace trace;
  const StoredValue* stored = engineGet(kvKey(key), trace);
  result.found = stored != nullptr;
  result.size = stored ? stored->size : 0;
  result.version = stored ? stored->version : 0;

  result.latencyMicros =
      trace.latencyMicros +
      settleRpc(client, frontend, rpc::getRequestWireSize(key.size()),
                rpc::getResponseWireSize() + result.size, trace);
  span.setOutcome(result.found ? sim::SpanOutcome::kOk
                               : sim::SpanOutcome::kMiss);
  return result;
}

Database::WriteResult Database::writeValue(sim::Node& client,
                                           std::string_view key,
                                           std::uint64_t size) {
  sim::SpanGuard span("db.write", sim::TierKind::kKvStorage);
  WriteResult result;
  sim::Node& frontend = frontendForStatement();  // UPDATE kv SET v=? WHERE k=?

  ExecTrace trace;
  enginePut(kvKey(key), StoredValue::sized(size), trace);
  result.version = ts_;

  result.latencyMicros =
      trace.latencyMicros +
      settleRpc(client, frontend, rpc::putRequestWireSize(key.size()) + size,
                rpc::putResponseWireSize(), trace);
  return result;
}

Database::VersionResult Database::versionCheck(sim::Node& client,
                                               std::string_view key) {
  sim::SpanGuard span("db.vcheck", sim::TierKind::kSqlFrontend);
  VersionResult result;
  // §5.5: the version check traverses the full read path — SQL front-end
  // parse/plan, lease validation, and a full row fetch at TiKV that ships
  // the row to the front-end; only the 8-byte version returns to the client.
  sim::Node& frontend = frontendForStatement();

  ExecTrace trace;
  const StoredValue* stored = engineGet(kvKey(key), trace);
  result.found = stored != nullptr;
  result.version = stored ? stored->version : 0;

  result.latencyMicros =
      trace.latencyMicros +
      settleRpc(client, frontend, rpc::versionCheckRequestWireSize(key.size()),
                rpc::versionCheckResponseWireSize(), trace);
  return result;
}

Database::VersionResult Database::versionCheckRow(sim::Node& client,
                                                  std::string_view table,
                                                  std::string_view pk) {
  sim::SpanGuard span("db.vcheck", sim::TierKind::kSqlFrontend);
  VersionResult result;
  sim::Node& frontend = frontendForStatement();

  ExecTrace trace;
  const StoredValue* stored = engineGet(rowKey(table, pk), trace);
  result.found = stored != nullptr;
  result.version = stored ? stored->version : 0;

  result.latencyMicros =
      trace.latencyMicros +
      settleRpc(client, frontend, rpc::versionCheckRequestWireSize(pk.size()),
                rpc::versionCheckResponseWireSize(), trace);
  return result;
}

std::optional<std::uint64_t> Database::peekRowVersion(
    std::string_view table, std::string_view pk) const {
  const std::string key = rowKey(table, pk);
  const StoredValue* stored = engines_[nodeFor(key)].get(key);
  if (!stored) return std::nullopt;
  return stored->version;
}

std::optional<std::uint64_t> Database::peekValueVersion(
    std::string_view key) const {
  const std::string k = kvKey(key);
  const StoredValue* stored = engines_[nodeFor(k)].get(k);
  if (!stored) return std::nullopt;
  return stored->version;
}

void Database::dropBlockCache(std::size_t nodeIndex) {
  if (nodeIndex >= blockCaches_.size()) return;
  blockCaches_[nodeIndex]->clear();
}

// ---- introspection ----

util::Bytes Database::totalStoredBytes() const {
  util::Bytes total;
  for (const KvEngine& engine : engines_) total += engine.liveBytes();
  return total;
}

util::Bytes Database::blockCacheProvisioned() const {
  util::Bytes total;
  for (const auto& bc : blockCaches_) total += bc->capacity();
  return total;
}

std::uint64_t Database::blockCacheHits() const {
  std::uint64_t n = 0;
  for (const auto& bc : blockCaches_) n += bc->stats().hits;
  return n;
}

std::uint64_t Database::blockCacheMisses() const {
  std::uint64_t n = 0;
  for (const auto& bc : blockCaches_) n += bc->stats().misses;
  return n;
}

std::size_t Database::runGc(std::size_t keepVersions) {
  std::size_t reclaimed = 0;
  for (KvEngine& engine : engines_) reclaimed += engine.gc(keepVersions);
  return reclaimed;
}

}  // namespace dcache::storage
