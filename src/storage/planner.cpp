#include "storage/planner.hpp"

namespace dcache::storage {
namespace {

[[nodiscard]] BoundRhs bindRhs(const Condition& cond) {
  return BoundRhs{cond.literal, cond.paramIndex};
}

}  // namespace

PlanResult Planner::plan(const Statement& statement) const {
  switch (statement.kind) {
    case StatementKind::kSelect: return planSelect(statement);
    case StatementKind::kInsert: return planInsert(statement);
    case StatementKind::kUpdate: return planUpdate(statement);
    case StatementKind::kDelete: return planDelete(statement);
  }
  return PlanError{"unknown statement kind"};
}

std::optional<TableAccessPlan> Planner::planAccess(
    const TableSchema& schema, const std::vector<Condition>& where,
    std::string_view tableName) const {
  TableAccessPlan access;
  access.schema = &schema;

  std::vector<BoundCondition> bound;
  for (const Condition& cond : where) {
    if (!cond.table.empty() && cond.table != tableName) continue;
    const auto col = schema.columnIndex(cond.column);
    if (!col) return std::nullopt;  // unknown column
    bound.push_back(BoundCondition{*col, bindRhs(cond)});
  }

  // Primary key equality beats everything.
  for (std::size_t i = 0; i < bound.size(); ++i) {
    if (bound[i].columnIndex == schema.primaryKeyColumn()) {
      access.path = AccessPath::kPointGet;
      access.key = bound[i];
      bound.erase(bound.begin() + static_cast<std::ptrdiff_t>(i));
      access.residual = std::move(bound);
      return access;
    }
  }
  // Then any secondary-index equality.
  for (std::size_t i = 0; i < bound.size(); ++i) {
    if (schema.hasIndexOn(bound[i].columnIndex)) {
      access.path = AccessPath::kIndexLookup;
      access.key = bound[i];
      bound.erase(bound.begin() + static_cast<std::ptrdiff_t>(i));
      access.residual = std::move(bound);
      return access;
    }
  }
  access.path = AccessPath::kTableScan;
  access.residual = std::move(bound);
  return access;
}

PlanResult Planner::planSelect(const Statement& statement) const {
  const SelectStatement& sel = statement.select;
  const TableSchema* schema = catalog_(sel.table);
  if (!schema) return PlanError{"unknown table: " + sel.table};

  QueryPlan plan;
  plan.kind = StatementKind::kSelect;
  plan.limit = sel.limit;

  auto access = planAccess(*schema, sel.where, sel.table);
  if (!access) return PlanError{"unknown column in WHERE of " + sel.table};
  plan.primary = std::move(*access);

  const TableSchema* joinSchema = nullptr;
  if (sel.join) {
    joinSchema = catalog_(sel.join->table);
    if (!joinSchema) return PlanError{"unknown table: " + sel.join->table};
    JoinPlan join;
    join.schema = joinSchema;
    const auto left = schema->columnIndex(sel.join->leftColumn);
    const auto right = joinSchema->columnIndex(sel.join->rightColumn);
    if (!left || !right) return PlanError{"unknown join column"};
    join.leftColumn = *left;
    join.rightColumn = *right;
    if (*right == joinSchema->primaryKeyColumn()) {
      join.path = AccessPath::kPointGet;
    } else if (joinSchema->hasIndexOn(*right)) {
      join.path = AccessPath::kIndexLookup;
    } else {
      join.path = AccessPath::kTableScan;
    }
    plan.join = join;
  }

  // Projection: resolve each named column against primary first, then join.
  for (const std::string& name : sel.columns) {
    if (const auto col = schema->columnIndex(name)) {
      plan.projection.push_back(ProjectionItem{false, *col});
    } else if (joinSchema) {
      const auto jcol = joinSchema->columnIndex(name);
      if (!jcol) return PlanError{"unknown column: " + name};
      plan.projection.push_back(ProjectionItem{true, *jcol});
    } else {
      return PlanError{"unknown column: " + name};
    }
  }
  return plan;
}

PlanResult Planner::planInsert(const Statement& statement) const {
  const InsertStatement& ins = statement.insert;
  const TableSchema* schema = catalog_(ins.table);
  if (!schema) return PlanError{"unknown table: " + ins.table};
  if (ins.values.size() != schema->columnCount()) {
    return PlanError{"value count does not match column count"};
  }
  QueryPlan plan;
  plan.kind = StatementKind::kInsert;
  plan.primary.schema = schema;
  plan.insertValues = ins.values;
  return plan;
}

PlanResult Planner::planUpdate(const Statement& statement) const {
  const UpdateStatement& upd = statement.update;
  const TableSchema* schema = catalog_(upd.table);
  if (!schema) return PlanError{"unknown table: " + upd.table};

  QueryPlan plan;
  plan.kind = StatementKind::kUpdate;
  auto access = planAccess(*schema, upd.where, upd.table);
  if (!access) return PlanError{"unknown column in WHERE of " + upd.table};
  plan.primary = std::move(*access);

  for (const auto& [name, rhs] : upd.assignments) {
    const auto col = schema->columnIndex(name);
    if (!col) return PlanError{"unknown column: " + name};
    plan.assignments.emplace_back(*col, BoundRhs{rhs.literal, rhs.paramIndex});
  }
  return plan;
}

PlanResult Planner::planDelete(const Statement& statement) const {
  const DeleteStatement& del = statement.del;
  const TableSchema* schema = catalog_(del.table);
  if (!schema) return PlanError{"unknown table: " + del.table};

  QueryPlan plan;
  plan.kind = StatementKind::kDelete;
  auto access = planAccess(*schema, del.where, del.table);
  if (!access) return PlanError{"unknown column in WHERE of " + del.table};
  plan.primary = std::move(*access);
  return plan;
}

}  // namespace dcache::storage
