#include "storage/schema.hpp"

#include <algorithm>

namespace dcache::storage {

TableSchema::TableSchema(std::string name, std::vector<Column> columns,
                         std::size_t primaryKeyColumn,
                         std::vector<std::size_t> indexedColumns)
    : name_(std::move(name)),
      columns_(std::move(columns)),
      pk_(primaryKeyColumn < columns_.size() ? primaryKeyColumn : 0),
      indexes_(std::move(indexedColumns)) {
  std::erase_if(indexes_,
                [this](std::size_t c) { return c >= columns_.size(); });
}

std::optional<std::size_t> TableSchema::columnIndex(
    std::string_view name) const noexcept {
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == name) return i;
  }
  return std::nullopt;
}

TableSchema& TableSchema::withPayloadSizeColumn(std::string_view column) {
  const auto idx = columnIndex(column);
  if (idx && columns_[*idx].type == ColumnType::kInt) {
    payloadSizeColumn_ = *idx;
  }
  return *this;
}

bool TableSchema::hasIndexOn(std::size_t column) const noexcept {
  return std::find(indexes_.begin(), indexes_.end(), column) != indexes_.end();
}

}  // namespace dcache::storage
