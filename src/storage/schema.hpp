// Relational schemas for the mini SQL engine. A table has typed columns, a
// single-column primary key and optional single-column secondary indexes —
// exactly the shapes the Unity-Catalog-like catalog schema needs (entity
// tables keyed by id, indexed by parent id / securable id).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace dcache::storage {

enum class ColumnType : std::uint8_t { kInt, kDouble, kString };

struct Column {
  std::string name;
  ColumnType type = ColumnType::kString;
};

class TableSchema {
 public:
  TableSchema() = default;
  TableSchema(std::string name, std::vector<Column> columns,
              std::size_t primaryKeyColumn,
              std::vector<std::size_t> indexedColumns = {});

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] const std::vector<Column>& columns() const noexcept {
    return columns_;
  }
  [[nodiscard]] std::size_t columnCount() const noexcept {
    return columns_.size();
  }
  [[nodiscard]] std::size_t primaryKeyColumn() const noexcept { return pk_; }
  [[nodiscard]] const std::vector<std::size_t>& indexedColumns() const noexcept {
    return indexes_;
  }

  /// Column index by name; nullopt if absent.
  [[nodiscard]] std::optional<std::size_t> columnIndex(
      std::string_view name) const noexcept;

  [[nodiscard]] bool hasIndexOn(std::size_t column) const noexcept;

  /// Declare an int column whose value is counted as that many additional
  /// stored/transferred bytes — an opaque binary attachment (e.g. a column-
  /// metadata blob) carried by the row but not materialized in simulation.
  /// Storage, RPC and serialization accounting all see the declared bytes.
  TableSchema& withPayloadSizeColumn(std::string_view column);
  [[nodiscard]] std::optional<std::size_t> payloadSizeColumn() const noexcept {
    return payloadSizeColumn_;
  }

 private:
  std::string name_;
  std::vector<Column> columns_;
  std::size_t pk_ = 0;
  std::vector<std::size_t> indexes_;
  std::optional<std::size_t> payloadSizeColumn_;
};

}  // namespace dcache::storage
