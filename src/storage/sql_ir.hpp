// Statement IR produced by the SQL parser and consumed by the planner.
// The subset covers what the catalog workloads need: point/indexed SELECTs
// with optional single JOIN, INSERT, UPDATE and DELETE, with positional
// `?` parameters bound at execution.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace dcache::storage {

/// A term in a WHERE conjunction: column = literal-or-parameter.
struct Condition {
  std::string table;            // optional qualifier (for joins)
  std::string column;
  std::optional<std::string> literal;  // set when the RHS is a literal
  std::size_t paramIndex = 0;          // valid when literal is empty
};

struct JoinClause {
  std::string table;        // right-hand table
  std::string leftColumn;   // column on the primary (FROM) table
  std::string rightColumn;  // column on the joined table
};

struct SelectStatement {
  std::vector<std::string> columns;  // "*" alone means all columns
  std::string table;
  std::optional<JoinClause> join;
  std::vector<Condition> where;
  std::optional<std::uint64_t> limit;
};

struct InsertStatement {
  std::string table;
  // Each value is a literal or a parameter slot.
  struct ValueSpec {
    std::optional<std::string> literal;
    std::size_t paramIndex = 0;
  };
  std::vector<ValueSpec> values;
};

struct UpdateStatement {
  std::string table;
  std::vector<std::pair<std::string, Condition>> assignments;  // col = rhs
  std::vector<Condition> where;
};

struct DeleteStatement {
  std::string table;
  std::vector<Condition> where;
};

enum class StatementKind : std::uint8_t { kSelect, kInsert, kUpdate, kDelete };

struct Statement {
  StatementKind kind = StatementKind::kSelect;
  SelectStatement select;
  InsertStatement insert;
  UpdateStatement update;
  DeleteStatement del;
  std::size_t paramCount = 0;  // number of `?` placeholders
};

}  // namespace dcache::storage
