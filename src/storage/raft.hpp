// Raft replication cost model. Writes replicate from the region leader to
// two followers (3-way, the TiKV default); consistent reads validate the
// leader's lease. We model the CPU and network cost of consensus — log
// bookkeeping is kept (terms, indexes, per-node applied counters) so tests
// can assert the replication invariants, but leader election is out of
// scope: the cost study runs in steady state.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/network.hpp"
#include "sim/tier.hpp"

namespace dcache::storage {

struct RaftCosts {
  double leaderAppendMicros = 8.0;   // encode entry, write leader log
  double followerApplyMicros = 5.0;  // append + ack per follower
  double perByteMicros = 0.0009;     // payload handling at each replica
  double leaseValidateMicros = 1.5;  // read-lease check per consistent read
};

class RaftReplicator {
 public:
  RaftReplicator(sim::Tier& kvTier, sim::NetworkModel& network,
                 RaftCosts costs = {}, std::size_t replicationFactor = 3);

  /// Replicate a write of `bytes` from the leader of `regionLeader`'s
  /// region. Charges leader + followers and the network; returns the
  /// commit latency (slower of the two follower round trips).
  double replicate(std::size_t leaderIndex, std::uint64_t bytes);

  /// Lease check for a linearizable read at the leader.
  void validateLease(std::size_t leaderIndex);

  [[nodiscard]] std::uint64_t committedIndex() const noexcept {
    return committedIndex_;
  }
  [[nodiscard]] std::uint64_t appliedIndex(std::size_t node) const noexcept {
    return applied_[node];
  }
  [[nodiscard]] std::uint64_t leaseChecks() const noexcept {
    return leaseChecks_;
  }
  [[nodiscard]] std::size_t replicationFactor() const noexcept {
    return replicationFactor_;
  }

  /// Follower node indexes for a given leader (ring neighbours).
  [[nodiscard]] std::vector<std::size_t> followersOf(
      std::size_t leaderIndex) const;

 private:
  sim::Tier* tier_;
  sim::NetworkModel* network_;
  RaftCosts costs_;
  std::size_t replicationFactor_;
  std::uint64_t committedIndex_ = 0;
  std::uint64_t leaseChecks_ = 0;
  std::vector<std::uint64_t> applied_;
};

}  // namespace dcache::storage
