// Recursive-descent parser for the SQL subset. Grammar (case-insensitive
// keywords, `?` positional parameters, single-quoted string literals):
//
//   select := SELECT cols FROM ident [JOIN ident ON qcol = qcol]
//             [WHERE cond (AND cond)*] [LIMIT int]
//   insert := INSERT INTO ident VALUES ( value (, value)* )
//   update := UPDATE ident SET ident = value (, ident = value)*
//             [WHERE cond (AND cond)*]
//   delete := DELETE FROM ident [WHERE cond (AND cond)*]
//   cond   := qcol = value        qcol := ident | ident.ident
//   value  := ? | int | 'string'
//   cols   := * | ident (, ident)*
#pragma once

#include <string>
#include <string_view>
#include <variant>

#include "storage/sql_ir.hpp"

namespace dcache::storage {

struct ParseError {
  std::string message;
  std::size_t position = 0;
};

using ParseResult = std::variant<Statement, ParseError>;

[[nodiscard]] ParseResult parseSql(std::string_view sql);

/// Convenience for tests: parse-or-throw.
[[nodiscard]] Statement parseSqlOrThrow(std::string_view sql);

}  // namespace dcache::storage
