// Query planner: statement IR + schema catalog -> executable plan.
// Access-path selection is deliberately simple and deterministic — primary
// key equality wins, then a secondary-index equality, then a full scan —
// because what the cost study needs is a *faithful* work profile per query
// shape, not a cost-based optimizer.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "storage/schema.hpp"
#include "storage/sql_ir.hpp"

namespace dcache::storage {

/// Right-hand side of a condition/assignment after planning: either an
/// inline literal or a reference to a positional parameter.
struct BoundRhs {
  std::optional<std::string> literal;
  std::size_t paramIndex = 0;
};

struct BoundCondition {
  std::size_t columnIndex = 0;
  BoundRhs rhs;
};

enum class AccessPath : std::uint8_t { kPointGet, kIndexLookup, kTableScan };

struct TableAccessPlan {
  const TableSchema* schema = nullptr;
  AccessPath path = AccessPath::kTableScan;
  std::optional<BoundCondition> key;    // drives point get / index lookup
  std::vector<BoundCondition> residual;  // re-checked on each row
};

struct JoinPlan {
  const TableSchema* schema = nullptr;  // right table
  std::size_t leftColumn = 0;           // value taken from each primary row
  std::size_t rightColumn = 0;          // matched on the right table
  AccessPath path = AccessPath::kTableScan;  // chosen from rightColumn
};

struct ProjectionItem {
  bool fromJoin = false;
  std::size_t column = 0;
};

struct QueryPlan {
  StatementKind kind = StatementKind::kSelect;
  TableAccessPlan primary;
  std::optional<JoinPlan> join;
  std::vector<ProjectionItem> projection;  // empty = all primary columns
  std::optional<std::uint64_t> limit;

  // INSERT payload.
  std::vector<InsertStatement::ValueSpec> insertValues;
  // UPDATE assignments: (column index, rhs).
  std::vector<std::pair<std::size_t, BoundRhs>> assignments;
};

struct PlanError {
  std::string message;
};

using PlanResult = std::variant<QueryPlan, PlanError>;

class Planner {
 public:
  using CatalogLookup =
      std::function<const TableSchema*(std::string_view)>;

  explicit Planner(CatalogLookup catalog) : catalog_(std::move(catalog)) {}

  [[nodiscard]] PlanResult plan(const Statement& statement) const;

 private:
  [[nodiscard]] PlanResult planSelect(const Statement& statement) const;
  [[nodiscard]] PlanResult planInsert(const Statement& statement) const;
  [[nodiscard]] PlanResult planUpdate(const Statement& statement) const;
  [[nodiscard]] PlanResult planDelete(const Statement& statement) const;

  /// Choose the access path for `table` given WHERE conditions that apply
  /// to it; the rest become residual filters.
  [[nodiscard]] std::optional<TableAccessPlan> planAccess(
      const TableSchema& schema, const std::vector<Condition>& where,
      std::string_view tableName) const;

  CatalogLookup catalog_;
};

}  // namespace dcache::storage
