// Plan executor: runs a QueryPlan against the database's engine-level API.
// Every row touched flows through Database::engineGet/Put/Delete, so all
// CPU, block-cache, disk and replication costs are charged where the work
// happens — the executor adds no accounting of its own.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "storage/database.hpp"
#include "storage/planner.hpp"
#include "storage/row.hpp"

namespace dcache::storage {

class Executor {
 public:
  explicit Executor(Database& db) : db_(&db) {}

  struct Outcome {
    bool ok = false;
    std::string error;
    std::vector<Row> rows;           // SELECT results (projected)
    std::uint64_t rowsAffected = 0;  // writes
  };

  Outcome run(const QueryPlan& plan, std::span<const Value> params,
              ExecTrace& trace);

 private:
  struct FetchedRow {
    std::string pk;
    Row row;
  };

  /// Resolve a bound RHS into a typed Value for the given column.
  [[nodiscard]] static std::optional<Value> resolve(const BoundRhs& rhs,
                                                    std::span<const Value> params,
                                                    ColumnType type);

  /// Fetch rows of the primary table per the access plan (residual filters
  /// applied, limit honoured when there is no join).
  bool fetchPrimary(const TableAccessPlan& access, std::span<const Value> params,
                    std::optional<std::uint64_t> limit, ExecTrace& trace,
                    std::vector<FetchedRow>& out, std::string& error);

  /// Fetch right-table rows matching `key` for a join.
  void fetchJoinMatches(const JoinPlan& join, const Value& key,
                        ExecTrace& trace, std::vector<Row>& out);

  bool writeRow(const TableSchema& schema, const Row& row, ExecTrace& trace);
  void deleteRowIndexes(const TableSchema& schema, const Row& row,
                        std::string_view pk, ExecTrace& trace);

  Outcome runSelect(const QueryPlan& plan, std::span<const Value> params,
                    ExecTrace& trace);
  Outcome runInsert(const QueryPlan& plan, std::span<const Value> params,
                    ExecTrace& trace);
  Outcome runUpdate(const QueryPlan& plan, std::span<const Value> params,
                    ExecTrace& trace);
  Outcome runDelete(const QueryPlan& plan, std::span<const Value> params,
                    ExecTrace& trace);

  Database* db_;
};

}  // namespace dcache::storage
