#include "storage/row.hpp"

#include <cmath>

#include "rpc/messages.hpp"
#include "rpc/wire.hpp"

namespace dcache::storage {

std::string valueToString(const Value& v) {
  if (const auto* i = std::get_if<std::int64_t>(&v)) return std::to_string(*i);
  if (const auto* d = std::get_if<double>(&v)) return std::to_string(*d);
  return std::get<std::string>(v);
}

std::int64_t valueToInt(const Value& v) noexcept {
  if (const auto* i = std::get_if<std::int64_t>(&v)) return *i;
  if (const auto* d = std::get_if<double>(&v)) {
    return static_cast<std::int64_t>(*d);
  }
  const auto& s = std::get<std::string>(v);
  return std::strtoll(s.c_str(), nullptr, 10);
}

bool valueEquals(const Value& a, const Value& b) noexcept {
  if (a.index() == b.index()) return a == b;
  // Numeric cross-type comparison; strings never equal numbers.
  const bool aNum = !std::holds_alternative<std::string>(a);
  const bool bNum = !std::holds_alternative<std::string>(b);
  if (!aNum || !bNum) return false;
  auto asDouble = [](const Value& v) {
    if (const auto* i = std::get_if<std::int64_t>(&v)) {
      return static_cast<double>(*i);
    }
    return std::get<double>(v);
  };
  return asDouble(a) == asDouble(b);
}

std::string encodeRow(const TableSchema& schema, const Row& row) {
  rpc::WireEncoder enc;
  const std::size_t n = std::min(schema.columnCount(), row.values.size());
  for (std::size_t c = 0; c < n; ++c) {
    const auto field = static_cast<std::uint32_t>(c + 1);
    switch (schema.columns()[c].type) {
      case ColumnType::kInt:
        enc.writeSint(field, valueToInt(row.values[c]));
        break;
      case ColumnType::kDouble: {
        double d = 0.0;
        if (const auto* p = std::get_if<double>(&row.values[c])) {
          d = *p;
        } else {
          d = static_cast<double>(valueToInt(row.values[c]));
        }
        enc.writeDouble(field, d);
        break;
      }
      case ColumnType::kString:
        enc.writeString(field, valueToString(row.values[c]));
        break;
    }
  }
  return std::string(enc.view());
}

std::optional<Row> decodeRow(const TableSchema& schema,
                             std::string_view bytes) {
  rpc::WireDecoder dec(bytes);
  Row row;
  row.values.resize(schema.columnCount(), std::int64_t{0});
  // Default-initialize strings for string columns.
  for (std::size_t c = 0; c < schema.columnCount(); ++c) {
    if (schema.columns()[c].type == ColumnType::kString) {
      row.values[c] = std::string{};
    } else if (schema.columns()[c].type == ColumnType::kDouble) {
      row.values[c] = 0.0;
    }
  }
  while (!dec.done()) {
    const auto tag = dec.readTag();
    if (!tag) return std::nullopt;
    const std::size_t c = tag->number == 0 ? schema.columnCount()
                                           : static_cast<std::size_t>(tag->number - 1);
    if (c >= schema.columnCount()) {
      if (!dec.skip(tag->type)) return std::nullopt;
      continue;
    }
    switch (schema.columns()[c].type) {
      case ColumnType::kInt: {
        const auto v = dec.readSint();
        if (!v) return std::nullopt;
        row.values[c] = *v;
        break;
      }
      case ColumnType::kDouble: {
        const auto v = dec.readDouble();
        if (!v) return std::nullopt;
        row.values[c] = *v;
        break;
      }
      case ColumnType::kString: {
        const auto v = dec.readBytes();
        if (!v) return std::nullopt;
        row.values[c] = std::string(*v);
        break;
      }
    }
  }
  return row;
}

std::uint64_t declaredPayloadBytes(const TableSchema& schema,
                                   const Row& row) noexcept {
  const auto col = schema.payloadSizeColumn();
  if (!col || *col >= row.values.size()) return 0;
  const std::int64_t declared = valueToInt(row.values[*col]);
  return declared > 0 ? static_cast<std::uint64_t>(declared) : 0;
}

std::uint64_t encodedRowSize(const TableSchema& schema, const Row& row) {
  std::uint64_t size = 0;
  const std::size_t n = std::min(schema.columnCount(), row.values.size());
  for (std::size_t c = 0; c < n; ++c) {
    switch (schema.columns()[c].type) {
      case ColumnType::kInt:
        size += 1 + rpc::varintSize(rpc::zigzagEncode(valueToInt(row.values[c])));
        break;
      case ColumnType::kDouble:
        size += 9;
        break;
      case ColumnType::kString:
        size += rpc::bytesFieldSize(valueToString(row.values[c]).size());
        break;
    }
  }
  return size;
}

}  // namespace dcache::storage
