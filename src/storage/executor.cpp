#include "storage/executor.hpp"

#include <algorithm>

namespace dcache::storage {
namespace {

[[nodiscard]] Value literalToValue(const std::string& literal,
                                   ColumnType type) {
  switch (type) {
    case ColumnType::kInt:
      return static_cast<std::int64_t>(
          std::strtoll(literal.c_str(), nullptr, 10));
    case ColumnType::kDouble:
      return std::strtod(literal.c_str(), nullptr);
    case ColumnType::kString:
      return literal;
  }
  return literal;
}

[[nodiscard]] Value coerce(const Value& v, ColumnType type) {
  switch (type) {
    case ColumnType::kInt:
      return valueToInt(v);
    case ColumnType::kDouble:
      if (const auto* d = std::get_if<double>(&v)) return *d;
      return static_cast<double>(valueToInt(v));
    case ColumnType::kString:
      return valueToString(v);
  }
  return v;
}

}  // namespace

std::optional<Value> Executor::resolve(const BoundRhs& rhs,
                                       std::span<const Value> params,
                                       ColumnType type) {
  if (rhs.literal) return literalToValue(*rhs.literal, type);
  if (rhs.paramIndex >= params.size()) return std::nullopt;
  return coerce(params[rhs.paramIndex], type);
}

Executor::Outcome Executor::run(const QueryPlan& plan,
                                std::span<const Value> params,
                                ExecTrace& trace) {
  switch (plan.kind) {
    case StatementKind::kSelect: return runSelect(plan, params, trace);
    case StatementKind::kInsert: return runInsert(plan, params, trace);
    case StatementKind::kUpdate: return runUpdate(plan, params, trace);
    case StatementKind::kDelete: return runDelete(plan, params, trace);
  }
  return Outcome{false, "unknown plan kind", {}, 0};
}

bool Executor::fetchPrimary(const TableAccessPlan& access,
                            std::span<const Value> params,
                            std::optional<std::uint64_t> limit,
                            ExecTrace& trace, std::vector<FetchedRow>& out,
                            std::string& error) {
  const TableSchema& schema = *access.schema;

  // Residual filter evaluated against a decoded row.
  auto passesResidual = [&](const Row& row) {
    for (const BoundCondition& cond : access.residual) {
      const ColumnType type = schema.columns()[cond.columnIndex].type;
      const auto want = resolve(cond.rhs, params, type);
      if (!want || !valueEquals(row.values[cond.columnIndex], *want)) {
        return false;
      }
    }
    return true;
  };
  auto atLimit = [&] { return limit && out.size() >= *limit; };

  switch (access.path) {
    case AccessPath::kPointGet: {
      const ColumnType pkType =
          schema.columns()[schema.primaryKeyColumn()].type;
      const auto pkValue = resolve(access.key->rhs, params, pkType);
      if (!pkValue) {
        error = "missing parameter for key condition";
        return false;
      }
      const std::string pk = valueToString(*pkValue);
      const StoredValue* stored =
          db_->engineGet(Database::rowKey(schema.name(), pk), trace);
      if (!stored) return true;  // no row: empty result, not an error
      auto row = decodeRow(schema, stored->payload);
      if (!row) {
        error = "corrupt row for pk " + pk;
        return false;
      }
      if (passesResidual(*row)) out.push_back(FetchedRow{pk, std::move(*row)});
      return true;
    }
    case AccessPath::kIndexLookup: {
      const Column& column = schema.columns()[access.key->columnIndex];
      const auto keyValue = resolve(access.key->rhs, params, column.type);
      if (!keyValue) {
        error = "missing parameter for index condition";
        return false;
      }
      // Collect matching primary keys from the index, then fetch rows.
      std::vector<std::string> pks;
      const std::string prefix = Database::indexPrefix(
          schema.name(), column.name, valueToString(*keyValue));
      db_->engineScanPrefix(prefix, trace,
                            [&](std::string_view key, const StoredValue&) {
                              pks.emplace_back(key.substr(prefix.size()));
                              return true;
                            });
      for (const std::string& pk : pks) {
        if (atLimit()) break;
        const StoredValue* stored =
            db_->engineGet(Database::rowKey(schema.name(), pk), trace);
        if (!stored) continue;  // index entry raced a delete
        auto row = decodeRow(schema, stored->payload);
        if (row && passesResidual(*row)) {
          out.push_back(FetchedRow{pk, std::move(*row)});
        }
      }
      return true;
    }
    case AccessPath::kTableScan: {
      const std::string prefix = Database::rowPrefix(schema.name());
      bool corrupt = false;
      db_->engineScanPrefix(
          prefix, trace, [&](std::string_view key, const StoredValue& stored) {
            if (atLimit()) return false;
            auto row = decodeRow(schema, stored.payload);
            if (!row) {
              corrupt = true;
              return false;
            }
            if (passesResidual(*row)) {
              out.push_back(
                  FetchedRow{std::string(key.substr(prefix.size())),
                             std::move(*row)});
            }
            return true;
          });
      if (corrupt) {
        error = "corrupt row during scan of " + schema.name();
        return false;
      }
      return true;
    }
  }
  error = "unknown access path";
  return false;
}

void Executor::fetchJoinMatches(const JoinPlan& join, const Value& key,
                                ExecTrace& trace, std::vector<Row>& out) {
  const TableSchema& schema = *join.schema;
  const std::string keyString = valueToString(key);

  switch (join.path) {
    case AccessPath::kPointGet: {
      const StoredValue* stored =
          db_->engineGet(Database::rowKey(schema.name(), keyString), trace);
      if (!stored) return;
      if (auto row = decodeRow(schema, stored->payload)) {
        out.push_back(std::move(*row));
      }
      return;
    }
    case AccessPath::kIndexLookup: {
      const std::string& columnName = schema.columns()[join.rightColumn].name;
      std::vector<std::string> pks;
      const std::string prefix =
          Database::indexPrefix(schema.name(), columnName, keyString);
      db_->engineScanPrefix(prefix, trace,
                            [&](std::string_view k, const StoredValue&) {
                              pks.emplace_back(k.substr(prefix.size()));
                              return true;
                            });
      for (const std::string& pk : pks) {
        const StoredValue* stored =
            db_->engineGet(Database::rowKey(schema.name(), pk), trace);
        if (!stored) continue;
        if (auto row = decodeRow(schema, stored->payload)) {
          out.push_back(std::move(*row));
        }
      }
      return;
    }
    case AccessPath::kTableScan: {
      db_->engineScanPrefix(
          Database::rowPrefix(schema.name()), trace,
          [&](std::string_view, const StoredValue& stored) {
            auto row = decodeRow(schema, stored.payload);
            if (row && valueEquals(row->values[join.rightColumn], key)) {
              out.push_back(std::move(*row));
            }
            return true;
          });
      return;
    }
  }
}

Executor::Outcome Executor::runSelect(const QueryPlan& plan,
                                      std::span<const Value> params,
                                      ExecTrace& trace) {
  Outcome outcome;
  std::vector<FetchedRow> primary;
  // With a join the limit applies to joined output, so fetch unbounded.
  const auto primaryLimit = plan.join ? std::nullopt : plan.limit;
  if (!fetchPrimary(plan.primary, params, primaryLimit, trace, primary,
                    outcome.error)) {
    return outcome;
  }

  auto project = [&](const Row& left, const Row* right) {
    if (plan.projection.empty()) return left;  // SELECT *
    Row out;
    out.values.reserve(plan.projection.size());
    for (const ProjectionItem& item : plan.projection) {
      if (item.fromJoin) {
        out.values.push_back(right ? right->values[item.column]
                                   : Value{std::string{}});
      } else {
        out.values.push_back(left.values[item.column]);
      }
    }
    return out;
  };

  for (const FetchedRow& fetched : primary) {
    if (plan.limit && outcome.rows.size() >= *plan.limit) break;
    if (!plan.join) {
      outcome.rows.push_back(project(fetched.row, nullptr));
      continue;
    }
    std::vector<Row> matches;
    fetchJoinMatches(*plan.join, fetched.row.values[plan.join->leftColumn],
                     trace, matches);
    for (const Row& right : matches) {
      if (plan.limit && outcome.rows.size() >= *plan.limit) break;
      outcome.rows.push_back(project(fetched.row, &right));
    }
  }
  outcome.ok = true;
  return outcome;
}

bool Executor::writeRow(const TableSchema& schema, const Row& row,
                        ExecTrace& trace) {
  const std::string pk =
      valueToString(row.values[schema.primaryKeyColumn()]);
  StoredValue stored = StoredValue::of(encodeRow(schema, row));
  stored.size += declaredPayloadBytes(schema, row);
  if (!db_->enginePut(Database::rowKey(schema.name(), pk), std::move(stored),
                      trace)) {
    return false;
  }
  for (const std::size_t col : schema.indexedColumns()) {
    const std::string key =
        Database::indexKey(schema.name(), schema.columns()[col].name,
                           valueToString(row.values[col]), pk);
    db_->enginePut(key, StoredValue::sized(0), trace);
  }
  return true;
}

void Executor::deleteRowIndexes(const TableSchema& schema, const Row& row,
                                std::string_view pk, ExecTrace& trace) {
  for (const std::size_t col : schema.indexedColumns()) {
    const std::string key =
        Database::indexKey(schema.name(), schema.columns()[col].name,
                           valueToString(row.values[col]), pk);
    db_->engineDelete(key, trace);
  }
}

Executor::Outcome Executor::runInsert(const QueryPlan& plan,
                                      std::span<const Value> params,
                                      ExecTrace& trace) {
  Outcome outcome;
  const TableSchema& schema = *plan.primary.schema;
  Row row;
  row.values.reserve(schema.columnCount());
  for (std::size_t c = 0; c < plan.insertValues.size(); ++c) {
    const auto& spec = plan.insertValues[c];
    const auto value =
        resolve(BoundRhs{spec.literal, spec.paramIndex}, params,
                schema.columns()[c].type);
    if (!value) {
      outcome.error = "missing parameter in INSERT";
      return outcome;
    }
    row.values.push_back(*value);
  }
  if (!writeRow(schema, row, trace)) {
    outcome.error = "write conflict";
    return outcome;
  }
  outcome.ok = true;
  outcome.rowsAffected = 1;
  return outcome;
}

Executor::Outcome Executor::runUpdate(const QueryPlan& plan,
                                      std::span<const Value> params,
                                      ExecTrace& trace) {
  Outcome outcome;
  const TableSchema& schema = *plan.primary.schema;
  std::vector<FetchedRow> targets;
  if (!fetchPrimary(plan.primary, params, std::nullopt, trace, targets,
                    outcome.error)) {
    return outcome;
  }
  for (FetchedRow& target : targets) {
    // Remove index entries for columns about to change, then rewrite.
    for (const auto& [col, rhs] : plan.assignments) {
      const auto value = resolve(rhs, params, schema.columns()[col].type);
      if (!value) {
        outcome.error = "missing parameter in SET";
        return outcome;
      }
      if (schema.hasIndexOn(col) &&
          !valueEquals(target.row.values[col], *value)) {
        db_->engineDelete(
            Database::indexKey(schema.name(), schema.columns()[col].name,
                               valueToString(target.row.values[col]),
                               target.pk),
            trace);
      }
      target.row.values[col] = *value;
    }
    if (writeRow(schema, target.row, trace)) ++outcome.rowsAffected;
  }
  outcome.ok = true;
  return outcome;
}

Executor::Outcome Executor::runDelete(const QueryPlan& plan,
                                      std::span<const Value> params,
                                      ExecTrace& trace) {
  Outcome outcome;
  const TableSchema& schema = *plan.primary.schema;
  std::vector<FetchedRow> targets;
  if (!fetchPrimary(plan.primary, params, std::nullopt, trace, targets,
                    outcome.error)) {
    return outcome;
  }
  for (const FetchedRow& target : targets) {
    deleteRowIndexes(schema, target.row, target.pk, trace);
    if (db_->engineDelete(Database::rowKey(schema.name(), target.pk),
                          trace)) {
      ++outcome.rowsAffected;
    }
  }
  outcome.ok = true;
  return outcome;
}

}  // namespace dcache::storage
