// The distributed database facade — our TiDB stand-in. A stateless SQL
// front-end tier parses/plans statements and talks over RPC to a replicated
// KV tier (one MVCC engine + block cache per storage node, Raft-replicated
// writes, lease-validated reads). Three client paths matter to the paper:
//
//   exec()         — real SQL, used by the rich-object workloads (§5.4)
//   readValue()/writeValue() — the single-statement KV path used by the
//                    synthetic / Meta / UC-KV workloads
//   versionCheck() — the §5.5 consistency probe: returns 8 bytes to the
//                    client but traverses the full read path internally
//                    (parse, plan, lease, full row fetch, front-end hop)
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "rpc/channel.hpp"
#include "sim/tier.hpp"
#include "storage/block_cache.hpp"
#include "storage/kv_engine.hpp"
#include "storage/planner.hpp"
#include "storage/raft.hpp"
#include "storage/row.hpp"
#include "storage/schema.hpp"

namespace dcache::storage {

/// CPU cost constants for the storage system, in microseconds of vCPU.
/// Chosen so the paper's §5.3 breakdown holds: connection management, query
/// processing and planning take 40-65% of database cycles, KV execution and
/// communication the rest. See core/calibration.hpp for the derivation.
struct StorageCosts {
  double connectionMicros = 15.0;  // session/connection management per stmt
  double parseMicros = 30.0;       // SQL text -> IR
  double planMicros = 40.0;        // IR -> plan + optimizer bookkeeping
  double resultPerRowMicros = 0.5; // front-end result assembly per row
  double execPerRowMicros = 3.0;   // KV-side per row touched
  double execPerByteMicros = 0.001;  // coprocessor copies/checksums, 1 ns/B
  double memtableMicros = 2.0;     // write path memtable insert
  double diskFixedMicros = 18.0;   // block read on block-cache miss
  double diskPerByteMicros = 0.003;  // NVMe read + checksum + decompression
  double diskLatencyMicros = 90.0; // NVMe read latency (latency only)
};

/// Per-statement execution accounting, accumulated by the executor.
struct ExecTrace {
  std::size_t rowsRead = 0;
  std::size_t rowsWritten = 0;
  std::uint64_t bytesRead = 0;
  std::uint64_t bytesWritten = 0;
  std::size_t blockHits = 0;
  std::size_t blockMisses = 0;
  double latencyMicros = 0.0;
  std::map<std::size_t, std::uint64_t> nodeBytes;  // kv node -> payload bytes
};

class Database {
 public:
  struct Config {
    StorageCosts costs{};
    RaftCosts raftCosts{};
    util::Bytes blockCachePerNode = util::Bytes::gb(15);
    std::size_t replicationFactor = 3;
    bool consistentReads = true;  // validate raft lease on reads
  };

  Database(sim::Tier& sqlTier, sim::Tier& kvTier, rpc::Channel& channel,
           Config config);
  Database(sim::Tier& sqlTier, sim::Tier& kvTier, rpc::Channel& channel);

  // ---- schema / population (no cost accounting: experiment setup) ----
  void createTable(TableSchema schema);
  [[nodiscard]] const TableSchema* schema(std::string_view table) const;
  void loadRow(std::string_view table, const Row& row);
  void loadValue(std::string_view key, std::uint64_t size);
  /// Pre-size every engine's point index for a bulk load of `expectedKeys`
  /// (spread by key hash), avoiding per-engine rehash cascades.
  void reserveKeys(std::size_t expectedKeys);

  // ---- SQL path ----
  struct QueryResult {
    bool ok = false;
    std::string error;
    std::vector<Row> rows;
    std::uint64_t rowsAffected = 0;
    double latencyMicros = 0.0;
  };
  QueryResult exec(sim::Node& client, std::string_view sql,
                   std::span<const Value> params = {});

  // ---- KV path (implicit blob table) ----
  struct ReadResult {
    bool found = false;
    std::uint64_t size = 0;
    std::uint64_t version = 0;
    double latencyMicros = 0.0;
  };
  ReadResult readValue(sim::Node& client, std::string_view key);

  struct WriteResult {
    std::uint64_t version = 0;
    double latencyMicros = 0.0;
  };
  WriteResult writeValue(sim::Node& client, std::string_view key,
                         std::uint64_t size);

  struct VersionResult {
    bool found = false;
    std::uint64_t version = 0;
    double latencyMicros = 0.0;
  };
  VersionResult versionCheck(sim::Node& client, std::string_view key);

  /// Version check against a SQL table row (same full-path cost).
  VersionResult versionCheckRow(sim::Node& client, std::string_view table,
                                std::string_view pk);

  /// Commit version of a table row / KV value without any cost accounting
  /// — for callers that already paid for the read in the same request and
  /// for tests. nullopt if absent.
  [[nodiscard]] std::optional<std::uint64_t> peekRowVersion(
      std::string_view table, std::string_view pk) const;
  [[nodiscard]] std::optional<std::uint64_t> peekValueVersion(
      std::string_view key) const;

  // ---- engine-level API (used by the executor; fully cost-accounted) ----
  [[nodiscard]] const StoredValue* engineGet(std::string_view key,
                                             ExecTrace& trace);
  bool enginePut(std::string_view key, StoredValue value, ExecTrace& trace);
  bool engineDelete(std::string_view key, ExecTrace& trace);
  /// Ordered scan over all shards; fn returns false to stop that shard.
  void engineScanPrefix(
      std::string_view prefix, ExecTrace& trace,
      const std::function<bool(std::string_view, const StoredValue&)>& fn);

  /// Fault injection: a KV node crashed and restarted — its block cache is
  /// cold. Data survives (Raft replication), so reads keep working; they
  /// just pay the disk path until the cache re-warms.
  void dropBlockCache(std::size_t nodeIndex);

  // ---- introspection ----
  [[nodiscard]] util::Bytes totalStoredBytes() const;  // pre-replication
  [[nodiscard]] util::Bytes blockCacheProvisioned() const;
  [[nodiscard]] std::uint64_t blockCacheHits() const;
  [[nodiscard]] std::uint64_t blockCacheMisses() const;
  [[nodiscard]] std::uint64_t commitTimestamp() const noexcept { return ts_; }
  [[nodiscard]] const RaftReplicator& raft() const noexcept { return raft_; }
  [[nodiscard]] sim::Tier& kvTier() noexcept { return *kvTier_; }
  [[nodiscard]] sim::Tier& sqlTier() noexcept { return *sqlTier_; }
  [[nodiscard]] const Config& config() const noexcept { return config_; }
  std::size_t runGc(std::size_t keepVersions = 2);

  // ---- key layout ----
  [[nodiscard]] static std::string rowKey(std::string_view table,
                                          std::string_view pk);
  [[nodiscard]] static std::string rowPrefix(std::string_view table);
  [[nodiscard]] static std::string indexKey(std::string_view table,
                                            std::string_view column,
                                            std::string_view value,
                                            std::string_view pk);
  [[nodiscard]] static std::string indexPrefix(std::string_view table,
                                               std::string_view column,
                                               std::string_view value);
  [[nodiscard]] static std::string kvKey(std::string_view key);

 private:
  [[nodiscard]] std::size_t nodeFor(std::string_view key) const noexcept;
  /// Charge the front-end constants common to every statement and return
  /// the chosen front-end node.
  sim::Node& frontendForStatement();
  /// Settle per-statement RPCs: client<->frontend and frontend<->kv nodes.
  double settleRpc(sim::Node& client, sim::Node& frontend,
                   std::uint64_t requestBytes, std::uint64_t responseBytes,
                   const ExecTrace& trace);
  void syncMemoryMeters(std::size_t nodeIndex);

  sim::Tier* sqlTier_;
  sim::Tier* kvTier_;
  rpc::Channel* channel_;
  Config config_;
  RaftReplicator raft_;
  std::vector<KvEngine> engines_;
  std::vector<std::unique_ptr<BlockCache>> blockCaches_;
  std::map<std::string, TableSchema, std::less<>> schemas_;
  Planner planner_;
  std::uint64_t ts_ = 0;
};

}  // namespace dcache::storage
