#include "storage/sql_parser.hpp"

#include <cctype>
#include <stdexcept>

namespace dcache::storage {
namespace {

enum class TokenKind : std::uint8_t {
  kIdent,
  kNumber,
  kString,
  kSymbol,  // ( ) , = . *
  kParam,   // ?
  kEnd,
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;
  std::size_t position = 0;
};

class Lexer {
 public:
  explicit Lexer(std::string_view sql) : sql_(sql) {}

  Token next() {
    while (pos_ < sql_.size() &&
           std::isspace(static_cast<unsigned char>(sql_[pos_]))) {
      ++pos_;
    }
    if (pos_ >= sql_.size()) return {TokenKind::kEnd, "", pos_};
    const std::size_t start = pos_;
    const char c = sql_[pos_];
    if (c == '?') {
      ++pos_;
      return {TokenKind::kParam, "?", start};
    }
    if (c == '\'') {
      ++pos_;
      std::string text;
      while (pos_ < sql_.size() && sql_[pos_] != '\'') {
        text += sql_[pos_++];
      }
      if (pos_ < sql_.size()) ++pos_;  // closing quote
      return {TokenKind::kString, std::move(text), start};
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '-' && pos_ + 1 < sql_.size() &&
         std::isdigit(static_cast<unsigned char>(sql_[pos_ + 1])))) {
      std::string text(1, c);
      ++pos_;
      while (pos_ < sql_.size() &&
             (std::isdigit(static_cast<unsigned char>(sql_[pos_])) ||
              sql_[pos_] == '.')) {
        text += sql_[pos_++];
      }
      return {TokenKind::kNumber, std::move(text), start};
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::string text;
      while (pos_ < sql_.size() &&
             (std::isalnum(static_cast<unsigned char>(sql_[pos_])) ||
              sql_[pos_] == '_')) {
        text += sql_[pos_++];
      }
      return {TokenKind::kIdent, std::move(text), start};
    }
    ++pos_;
    return {TokenKind::kSymbol, std::string(1, c), start};
  }

 private:
  std::string_view sql_;
  std::size_t pos_ = 0;
};

[[nodiscard]] bool keywordEquals(const Token& token, std::string_view keyword) {
  if (token.kind != TokenKind::kIdent ||
      token.text.size() != keyword.size()) {
    return false;
  }
  for (std::size_t i = 0; i < keyword.size(); ++i) {
    if (std::toupper(static_cast<unsigned char>(token.text[i])) != keyword[i]) {
      return false;
    }
  }
  return true;
}

class Parser {
 public:
  explicit Parser(std::string_view sql) : lexer_(sql) { advance(); }

  ParseResult parse() {
    if (keywordEquals(current_, "SELECT")) return parseSelect();
    if (keywordEquals(current_, "INSERT")) return parseInsert();
    if (keywordEquals(current_, "UPDATE")) return parseUpdate();
    if (keywordEquals(current_, "DELETE")) return parseDelete();
    return fail("expected SELECT, INSERT, UPDATE or DELETE");
  }

 private:
  void advance() { current_ = lexer_.next(); }

  [[nodiscard]] ParseError fail(std::string message) const {
    return ParseError{std::move(message), current_.position};
  }

  bool accept(std::string_view keyword) {
    if (keywordEquals(current_, keyword)) {
      advance();
      return true;
    }
    return false;
  }

  bool acceptSymbol(char c) {
    if (current_.kind == TokenKind::kSymbol && current_.text.size() == 1 &&
        current_.text[0] == c) {
      advance();
      return true;
    }
    return false;
  }

  bool takeIdent(std::string& out) {
    if (current_.kind != TokenKind::kIdent) return false;
    out = current_.text;
    advance();
    return true;
  }

  /// qcol: ident | ident.ident — fills table (optional) and column.
  bool takeQualifiedColumn(std::string& table, std::string& column) {
    std::string first;
    if (!takeIdent(first)) return false;
    if (acceptSymbol('.')) {
      table = std::move(first);
      return takeIdent(column);
    }
    table.clear();
    column = std::move(first);
    return true;
  }

  /// value := ? | number | 'string'. Returns false on anything else.
  bool takeValue(std::optional<std::string>& literal, std::size_t& paramIndex) {
    if (current_.kind == TokenKind::kParam) {
      literal.reset();
      paramIndex = paramCount_++;
      advance();
      return true;
    }
    if (current_.kind == TokenKind::kNumber ||
        current_.kind == TokenKind::kString) {
      literal = current_.text;
      advance();
      return true;
    }
    return false;
  }

  bool parseWhere(std::vector<Condition>& where) {
    do {
      Condition cond;
      if (!takeQualifiedColumn(cond.table, cond.column)) return false;
      if (!acceptSymbol('=')) return false;
      if (!takeValue(cond.literal, cond.paramIndex)) return false;
      where.push_back(std::move(cond));
    } while (accept("AND"));
    return true;
  }

  ParseResult parseSelect() {
    advance();  // SELECT
    Statement statement;
    statement.kind = StatementKind::kSelect;
    SelectStatement& sel = statement.select;

    if (acceptSymbol('*')) {
      sel.columns.clear();  // empty = all
    } else {
      std::string col;
      if (!takeIdent(col)) return fail("expected column list");
      sel.columns.push_back(std::move(col));
      while (acceptSymbol(',')) {
        if (!takeIdent(col)) return fail("expected column after ','");
        sel.columns.push_back(std::move(col));
      }
    }
    if (!accept("FROM")) return fail("expected FROM");
    if (!takeIdent(sel.table)) return fail("expected table name");

    if (accept("JOIN")) {
      JoinClause join;
      if (!takeIdent(join.table)) return fail("expected join table");
      if (!accept("ON")) return fail("expected ON");
      std::string leftTable;
      std::string leftColumn;
      std::string rightTable;
      std::string rightColumn;
      if (!takeQualifiedColumn(leftTable, leftColumn)) {
        return fail("expected join column");
      }
      if (!acceptSymbol('=')) return fail("expected '=' in join condition");
      if (!takeQualifiedColumn(rightTable, rightColumn)) {
        return fail("expected join column");
      }
      // Normalize so leftColumn refers to the FROM table.
      if (leftTable == join.table || rightTable == sel.table) {
        std::swap(leftColumn, rightColumn);
      }
      join.leftColumn = std::move(leftColumn);
      join.rightColumn = std::move(rightColumn);
      sel.join = std::move(join);
    }

    if (accept("WHERE") && !parseWhere(sel.where)) {
      return fail("malformed WHERE clause");
    }
    if (accept("LIMIT")) {
      if (current_.kind != TokenKind::kNumber) return fail("expected limit");
      sel.limit = std::strtoull(current_.text.c_str(), nullptr, 10);
      advance();
    }
    if (current_.kind != TokenKind::kEnd && !acceptSymbol(';')) {
      return fail("unexpected trailing tokens");
    }
    statement.paramCount = paramCount_;
    return statement;
  }

  ParseResult parseInsert() {
    advance();  // INSERT
    if (!accept("INTO")) return fail("expected INTO");
    Statement statement;
    statement.kind = StatementKind::kInsert;
    InsertStatement& ins = statement.insert;
    if (!takeIdent(ins.table)) return fail("expected table name");
    if (!accept("VALUES")) return fail("expected VALUES");
    if (!acceptSymbol('(')) return fail("expected '('");
    do {
      InsertStatement::ValueSpec spec;
      if (!takeValue(spec.literal, spec.paramIndex)) {
        return fail("expected value");
      }
      ins.values.push_back(std::move(spec));
    } while (acceptSymbol(','));
    if (!acceptSymbol(')')) return fail("expected ')'");
    statement.paramCount = paramCount_;
    return statement;
  }

  ParseResult parseUpdate() {
    advance();  // UPDATE
    Statement statement;
    statement.kind = StatementKind::kUpdate;
    UpdateStatement& upd = statement.update;
    if (!takeIdent(upd.table)) return fail("expected table name");
    if (!accept("SET")) return fail("expected SET");
    do {
      std::string column;
      if (!takeIdent(column)) return fail("expected column in SET");
      if (!acceptSymbol('=')) return fail("expected '='");
      Condition rhs;
      if (!takeValue(rhs.literal, rhs.paramIndex)) {
        return fail("expected value in SET");
      }
      upd.assignments.emplace_back(std::move(column), std::move(rhs));
    } while (acceptSymbol(','));
    if (accept("WHERE") && !parseWhere(upd.where)) {
      return fail("malformed WHERE clause");
    }
    statement.paramCount = paramCount_;
    return statement;
  }

  ParseResult parseDelete() {
    advance();  // DELETE
    if (!accept("FROM")) return fail("expected FROM");
    Statement statement;
    statement.kind = StatementKind::kDelete;
    DeleteStatement& del = statement.del;
    if (!takeIdent(del.table)) return fail("expected table name");
    if (accept("WHERE") && !parseWhere(del.where)) {
      return fail("malformed WHERE clause");
    }
    statement.paramCount = paramCount_;
    return statement;
  }

  Lexer lexer_;
  Token current_;
  std::size_t paramCount_ = 0;
};

}  // namespace

ParseResult parseSql(std::string_view sql) { return Parser(sql).parse(); }

Statement parseSqlOrThrow(std::string_view sql) {
  ParseResult result = parseSql(sql);
  if (const auto* err = std::get_if<ParseError>(&result)) {
    throw std::invalid_argument("SQL parse error at position " +
                                std::to_string(err->position) + ": " +
                                err->message);
  }
  return std::get<Statement>(std::move(result));
}

}  // namespace dcache::storage
