// Unified metrics registry: a named, typed, insertion-ordered collection of
// counters, gauges and histogram summaries with a stable JSON export. The
// hand-rolled counter structs (core::ServeCounters, rpc::FaultCounters, the
// tier meters) stay as the hot-path storage; thin adapters re-publish them
// here by name, so every figure bench can emit one machine-readable
// metrics file (--metrics-out) alongside its human-readable tables.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "sim/tier.hpp"
#include "util/histogram.hpp"
#include "util/thread_annotations.hpp"

namespace dcache::obs {

class MetricsRegistry {
 public:
  enum class Kind : std::uint8_t { kCounter, kGauge, kHistogram };

  /// Histogram summaries are exported by value, not by bucket: the JSON is
  /// for dashboards/regression diffing, not for re-aggregation.
  struct HistogramSummary {
    std::uint64_t count = 0;
    double mean = 0.0;
    double p50 = 0.0;
    double p90 = 0.0;
    double p99 = 0.0;
    double max = 0.0;
  };

  struct Metric {
    std::string name;
    Kind kind = Kind::kCounter;
    std::uint64_t counter = 0;
    double gauge = 0.0;
    HistogramSummary histogram{};
  };

  /// Set (insert or overwrite) a monotonically-counted value.
  void setCounter(std::string_view name, std::uint64_t value)
      EXCLUDES(mutex_);
  /// Set (insert or overwrite) a point-in-time value.
  void setGauge(std::string_view name, double value) EXCLUDES(mutex_);
  /// Record a distribution's summary.
  void setHistogram(std::string_view name, const util::Histogram& histogram)
      EXCLUDES(mutex_);

  /// Add `delta` to a counter, creating it at zero first if absent.
  void addToCounter(std::string_view name, std::uint64_t delta)
      EXCLUDES(mutex_);

  [[nodiscard]] const Metric* find(std::string_view name) const noexcept
      EXCLUDES(mutex_);
  /// Borrowed read surface for the export adapters: valid only while no
  /// other thread publishes, i.e. the single-owner phase after a cell's
  /// run — hence the local opt-out from the static analysis.
  [[nodiscard]] const std::vector<Metric>& metrics() const noexcept
      NO_THREAD_SAFETY_ANALYSIS {
    return metrics_;
  }
  [[nodiscard]] std::size_t size() const noexcept NO_THREAD_SAFETY_ANALYSIS {
    return metrics_.size();
  }

  /// Stable JSON document (insertion order, fixed field order):
  /// {"schema":"dcache.metrics.v1","metrics":[{"name":...,"type":...},...]}
  [[nodiscard]] std::string toJson() const EXCLUDES(mutex_);
  /// Write toJson() to `path`; returns false on I/O failure.
  bool writeJsonFile(const std::string& path) const;

  void clear() EXCLUDES(mutex_);

 private:
  Metric& upsert(std::string_view name, Kind kind) REQUIRES(mutex_);
  [[nodiscard]] const Metric* findLocked(std::string_view name) const noexcept
      REQUIRES(mutex_);

  mutable util::Mutex mutex_;
  std::vector<Metric> metrics_ GUARDED_BY(mutex_);
  std::unordered_map<std::string, std::size_t> index_ GUARDED_BY(mutex_);
};

/// Adapter: publish one tier's aggregate meters (total + per-component CPU
/// micros, provisioned/peak memory, node count) under `prefix`.
void exportTierMetrics(MetricsRegistry& registry, std::string_view prefix,
                       const sim::Tier& tier);

}  // namespace dcache::obs
