#include "obs/trace.hpp"

#include "util/rng.hpp"

namespace dcache::obs {

double Trace::subtreeCpuMicros(std::size_t i) const noexcept {
  double total = spans[i].cpuMicros;
  // Children always follow their parent, so one forward pass suffices.
  for (std::size_t j = i + 1; j < spans.size(); ++j) {
    // Walk j's ancestry; cheap because trees are shallow (a handful of
    // hops per request).
    for (std::size_t a = spans[j].parent; a != SpanNode::kNoParent;
         a = spans[a].parent) {
      if (a == i) {
        total += spans[j].cpuMicros;
        break;
      }
    }
  }
  return total;
}

std::uint64_t Trace::subtreeBytes(std::size_t i) const noexcept {
  std::uint64_t total = spans[i].bytesMoved;
  for (std::size_t j = i + 1; j < spans.size(); ++j) {
    for (std::size_t a = spans[j].parent; a != SpanNode::kNoParent;
         a = spans[a].parent) {
      if (a == i) {
        total += spans[j].bytesMoved;
        break;
      }
    }
  }
  return total;
}

double Trace::totalCpuMicros() const noexcept {
  double total = 0.0;
  for (const SpanNode& span : spans) total += span.cpuMicros;
  return total;
}

double TraceSummary::tierCpuMicros(sim::TierKind tier) const noexcept {
  double total = 0.0;
  for (const double micros :
       cpuByTierComponent[static_cast<std::size_t>(tier)]) {
    total += micros;
  }
  return total;
}

Tracer::~Tracer() {
  // A tracer must never die while installed (the deployment outlives every
  // request scope), but stale thread-local pointers would be UB — clear
  // defensively.
  if (sim::activeTraceSink() == this) sim::setTraceSink(nullptr);
}

bool Tracer::sampled(std::uint64_t index) const noexcept {
  if (config_.sampleEvery == 0) return false;
  if (config_.sampleEvery == 1) return true;
  // SplitMix64 over (seed, index): the decision depends on nothing else,
  // so it is reproducible for any worker count.
  util::SplitMix64 mix(config_.seed ^
                       (0x9e3779b97f4a7c15ULL * (index + 1)));
  return mix.next() % config_.sampleEvery == 0;
}

bool Tracer::startRequest(std::string_view name) {
  const std::uint64_t index = totals_.requests++;
  if (!sampled(index)) return false;

  ++totals_.sampledRequests;
  current_ = Trace{};
  current_.requestIndex = index;
  stack_.clear();
  recording_ = true;
  sim::setTraceSink(this);
  beginSpan(name, sim::TierKind::kAppServer);
  return true;
}

void Tracer::finishRequest(sim::SpanOutcome outcome) {
  endSpan(outcome);  // the root span
  sim::setTraceSink(nullptr);
  recording_ = false;
  if (totals_.kept.size() < config_.keepTraces) {
    totals_.kept.push_back(std::move(current_));
  }
  current_ = Trace{};
}

void Tracer::clear() {
  totals_ = TraceSummary{};
  current_ = Trace{};
  stack_.clear();
  recording_ = false;
}

TraceSummary Tracer::summary() const {
  TraceSummary out = totals_;
  out.sampleEvery = config_.sampleEvery;
  return out;
}

void Tracer::beginSpan(std::string_view name, sim::TierKind tier) {
  if (!recording_) return;
  SpanNode span;
  span.name = std::string(name);
  span.tier = tier;
  span.parent = stack_.empty() ? SpanNode::kNoParent : stack_.back();
  stack_.push_back(current_.spans.size());
  current_.spans.push_back(std::move(span));
  ++totals_.spanCount;
}

void Tracer::endSpan(sim::SpanOutcome outcome) {
  if (!recording_ || stack_.empty()) return;
  current_.spans[stack_.back()].outcome = outcome;
  ++totals_.outcomeCounts[static_cast<std::size_t>(outcome)];
  stack_.pop_back();
}

void Tracer::onCpuCharge(const sim::Node& node, sim::CpuComponent component,
                         double micros) {
  if (!recording_) return;
  const auto c = static_cast<std::size_t>(component);
  totals_.cpuMicrosTotal += micros;
  totals_.cpuByTierComponent[static_cast<std::size_t>(node.tier())][c] +=
      micros;
  if (!stack_.empty()) {
    SpanNode& span = current_.spans[stack_.back()];
    span.cpuMicros += micros;
    span.cpuByComponent[c] += micros;
  }
}

void Tracer::onBytesMoved(std::uint64_t bytes) {
  if (!recording_) return;
  totals_.bytesMoved += bytes;
  if (!stack_.empty()) current_.spans[stack_.back()].bytesMoved += bytes;
}

}  // namespace dcache::obs
