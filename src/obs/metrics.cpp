#include "obs/metrics.hpp"

#include <cmath>
#include <cstdio>

namespace dcache::obs {
namespace {

/// JSON-safe number: %.17g round-trips doubles bit-exactly on one
/// platform, which is what the golden/metrics diffing needs; non-finite
/// values (which the simulator never produces, but a registry shouldn't
/// trust that) degrade to 0.
[[nodiscard]] std::string jsonNumber(double value) {
  if (!std::isfinite(value)) return "0";
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", value);
  return buf;
}

[[nodiscard]] std::string jsonString(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 2);
  out.push_back('"');
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

}  // namespace

MetricsRegistry::Metric& MetricsRegistry::upsert(std::string_view name,
                                                 Kind kind) {
  const auto it = index_.find(std::string(name));
  if (it != index_.end()) {
    Metric& metric = metrics_[it->second];
    metric.kind = kind;
    return metric;
  }
  index_.emplace(std::string(name), metrics_.size());
  Metric metric;
  metric.name = std::string(name);
  metric.kind = kind;
  metrics_.push_back(std::move(metric));
  return metrics_.back();
}

void MetricsRegistry::setCounter(std::string_view name, std::uint64_t value) {
  const util::MutexLock lock(mutex_);
  upsert(name, Kind::kCounter).counter = value;
}

void MetricsRegistry::setGauge(std::string_view name, double value) {
  const util::MutexLock lock(mutex_);
  upsert(name, Kind::kGauge).gauge = value;
}

void MetricsRegistry::setHistogram(std::string_view name,
                                   const util::Histogram& histogram) {
  const util::MutexLock lock(mutex_);
  Metric& metric = upsert(name, Kind::kHistogram);
  metric.histogram = HistogramSummary{histogram.count(), histogram.mean(),
                                      histogram.p50(),   histogram.p90(),
                                      histogram.p99(),   histogram.max()};
}

void MetricsRegistry::addToCounter(std::string_view name,
                                   std::uint64_t delta) {
  const util::MutexLock lock(mutex_);
  const Metric* existing = findLocked(name);
  const std::uint64_t base =
      existing && existing->kind == Kind::kCounter ? existing->counter : 0;
  upsert(name, Kind::kCounter).counter = base + delta;
}

const MetricsRegistry::Metric* MetricsRegistry::find(
    std::string_view name) const noexcept {
  const util::MutexLock lock(mutex_);
  return findLocked(name);
}

const MetricsRegistry::Metric* MetricsRegistry::findLocked(
    std::string_view name) const noexcept {
  const auto it = index_.find(std::string(name));
  return it == index_.end() ? nullptr : &metrics_[it->second];
}

std::string MetricsRegistry::toJson() const {
  const util::MutexLock lock(mutex_);
  std::string out = "{\"schema\":\"dcache.metrics.v1\",\"metrics\":[";
  bool first = true;
  for (const Metric& metric : metrics_) {
    if (!first) out.push_back(',');
    first = false;
    out += "{\"name\":" + jsonString(metric.name);
    switch (metric.kind) {
      case Kind::kCounter:
        out += ",\"type\":\"counter\",\"value\":" +
               std::to_string(metric.counter);
        break;
      case Kind::kGauge:
        out += ",\"type\":\"gauge\",\"value\":" + jsonNumber(metric.gauge);
        break;
      case Kind::kHistogram:
        out += ",\"type\":\"histogram\",\"count\":" +
               std::to_string(metric.histogram.count) +
               ",\"mean\":" + jsonNumber(metric.histogram.mean) +
               ",\"p50\":" + jsonNumber(metric.histogram.p50) +
               ",\"p90\":" + jsonNumber(metric.histogram.p90) +
               ",\"p99\":" + jsonNumber(metric.histogram.p99) +
               ",\"max\":" + jsonNumber(metric.histogram.max);
        break;
    }
    out.push_back('}');
  }
  out += "]}\n";
  return out;
}

bool MetricsRegistry::writeJsonFile(const std::string& path) const {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (!file) return false;
  const std::string json = toJson();
  const bool ok = std::fwrite(json.data(), 1, json.size(), file) ==
                  json.size();
  return std::fclose(file) == 0 && ok;
}

void MetricsRegistry::clear() {
  const util::MutexLock lock(mutex_);
  metrics_.clear();
  index_.clear();
}

void exportTierMetrics(MetricsRegistry& registry, std::string_view prefix,
                       const sim::Tier& tier) {
  const std::string base = std::string(prefix) + tier.name();
  const sim::CpuMeter cpu = tier.aggregateCpu();
  registry.setCounter(base + ".nodes", tier.size());
  registry.setGauge(base + ".cpu_micros_total", cpu.totalMicros());
  for (std::size_t c = 0; c < sim::kNumCpuComponents; ++c) {
    const double micros = cpu.micros(static_cast<sim::CpuComponent>(c));
    if (micros <= 0.0) continue;  // keep the export sparse, like the tables
    registry.setGauge(
        base + ".cpu_micros." +
            std::string(sim::cpuComponentName(static_cast<sim::CpuComponent>(c))),
        micros);
  }
  registry.setCounter(base + ".memory_provisioned_bytes",
                      tier.totalProvisionedMemory().count());
  registry.setCounter(base + ".memory_peak_bytes",
                      tier.totalPeakMemory().count());
}

}  // namespace dcache::obs
