// Request-level tracing. A Tracer is the sim::TraceSink implementation one
// deployment installs around each request it serves: the request becomes a
// root span, every hop the request takes (cache probe, RPC attempt, storage
// read, client leg) becomes a child span, and every CPU micro and payload
// byte the simulator charges while the request is in flight lands on the
// innermost open span.
//
// Two products come out:
//  - running aggregates (per tier x component CPU, bytes, span outcome
//    counts) over *all* sampled requests — bounded memory, and the basis of
//    the conservation property: at --trace-sample 1 the traced CPU equals
//    the tier meters exactly, because both are fed by the same charges;
//  - the first `keepTraces` full span trees, for the flamegraph-style
//    per-request cost report (core::traceTreeReport).
//
// Sampling is deterministic and seeded: whether request i is sampled
// depends only on (seed, i), never on threads or timing, so trace output is
// byte-identical across --jobs values.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/node.hpp"
#include "sim/trace_hook.hpp"

namespace dcache::obs {

inline constexpr std::size_t kNumTierKinds =
    static_cast<std::size_t>(sim::TierKind::kCount);
inline constexpr std::size_t kNumSpanOutcomes =
    static_cast<std::size_t>(sim::SpanOutcome::kCount);

struct TraceConfig {
  /// 0 = tracing off, 1 = trace every request, N = seeded 1-in-N sampling.
  std::uint64_t sampleEvery = 0;
  /// Seed for the sampling decision (mixed with the request index).
  std::uint64_t seed = 2026;
  /// Full span trees retained for rendering; aggregates cover everything.
  std::size_t keepTraces = 8;

  [[nodiscard]] bool enabled() const noexcept { return sampleEvery > 0; }
};

/// One node of a trace tree. Charges are *self* charges: work attributed to
/// this span while no child span was open. A span's total is self plus its
/// descendants' totals (Trace::totalCpuMicros / subtreeCpuMicros).
struct SpanNode {
  static constexpr std::size_t kNoParent = static_cast<std::size_t>(-1);

  std::string name;
  sim::TierKind tier = sim::TierKind::kAppServer;
  sim::SpanOutcome outcome = sim::SpanOutcome::kOk;
  std::size_t parent = kNoParent;  // index into Trace::spans
  double cpuMicros = 0.0;          // self CPU
  std::uint64_t bytesMoved = 0;    // self payload bytes
  std::array<double, sim::kNumCpuComponents> cpuByComponent{};
};

/// One sampled request: a tree of spans stored in creation order, so a
/// parent always precedes its children (spans[0] is the root).
struct Trace {
  std::uint64_t requestIndex = 0;
  std::vector<SpanNode> spans;

  /// Self CPU of span `i` plus all of its descendants.
  [[nodiscard]] double subtreeCpuMicros(std::size_t i) const noexcept;
  [[nodiscard]] std::uint64_t subtreeBytes(std::size_t i) const noexcept;
  [[nodiscard]] double totalCpuMicros() const noexcept;
};

/// Copyable snapshot of everything a Tracer accumulated. Rides along in
/// ExperimentResult so matrix cells can be inspected after the run.
struct TraceSummary {
  std::uint64_t sampleEvery = 0;  // 0 = tracing was off
  std::uint64_t requests = 0;     // requests seen (sampled or not)
  std::uint64_t sampledRequests = 0;
  std::uint64_t spanCount = 0;    // spans across sampled requests
  double cpuMicrosTotal = 0.0;    // CPU observed inside sampled requests
  std::uint64_t bytesMoved = 0;
  std::array<std::array<double, sim::kNumCpuComponents>, kNumTierKinds>
      cpuByTierComponent{};
  std::array<std::uint64_t, kNumSpanOutcomes> outcomeCounts{};
  std::vector<Trace> kept;

  [[nodiscard]] bool enabled() const noexcept { return sampleEvery > 0; }
  [[nodiscard]] double tierCpuMicros(sim::TierKind tier) const noexcept;
  [[nodiscard]] std::uint64_t outcomes(sim::SpanOutcome o) const noexcept {
    return outcomeCounts[static_cast<std::size_t>(o)];
  }
};

/// The deployment-owned trace recorder. Not thread-safe by design: one
/// tracer belongs to one deployment, which one matrix worker drives at a
/// time; the sink is installed in the worker's thread-local slot only while
/// a sampled request is in flight.
class Tracer final : public sim::TraceSink {
 public:
  explicit Tracer(TraceConfig config) : config_(config) {}
  ~Tracer() override;

  /// Begin a request: decides sampling, opens the root span and installs
  /// the sink when sampled. Must be paired with finishRequest.
  /// Returns true when the request is being traced.
  bool startRequest(std::string_view name);
  /// Close the root span with `outcome` and uninstall the sink.
  void finishRequest(sim::SpanOutcome outcome);

  /// Reset every aggregate and kept trace (including the sampling counter);
  /// paired with Deployment::clearMeters so traced CPU and metered CPU
  /// always cover the same window.
  void clear();

  [[nodiscard]] const TraceConfig& config() const noexcept { return config_; }
  [[nodiscard]] TraceSummary summary() const;

  /// Would request `index` be sampled? Pure function of (seed, index).
  [[nodiscard]] bool sampled(std::uint64_t index) const noexcept;

  // ---- sim::TraceSink ----
  void beginSpan(std::string_view name, sim::TierKind tier) override;
  void endSpan(sim::SpanOutcome outcome) override;
  void onCpuCharge(const sim::Node& node, sim::CpuComponent component,
                   double micros) override;
  void onBytesMoved(std::uint64_t bytes) override;

 private:
  TraceConfig config_;
  TraceSummary totals_;
  Trace current_;
  std::vector<std::size_t> stack_;  // open span indices, innermost last
  bool recording_ = false;
};

/// RAII request scope for serve paths: inert when `tracer` is null (tracing
/// off) or the request is not sampled.
class RequestScope {
 public:
  RequestScope(Tracer* tracer, std::string_view name) {
    if (tracer && tracer->startRequest(name)) tracer_ = tracer;
  }
  ~RequestScope() {
    if (tracer_) tracer_->finishRequest(outcome_);
  }
  RequestScope(const RequestScope&) = delete;
  RequestScope& operator=(const RequestScope&) = delete;

  void setOutcome(sim::SpanOutcome outcome) noexcept { outcome_ = outcome; }

 private:
  Tracer* tracer_ = nullptr;
  sim::SpanOutcome outcome_ = sim::SpanOutcome::kOk;
};

}  // namespace dcache::obs
