// Batched, arena-backed request buffers: many cache/KV operations coalesced
// into one wire message with a single length-delimited record block. The
// builder appends fixed-layout records into a reusable byte arena (clear()
// keeps capacity, so a steady-state serve loop performs zero allocations
// per batch), and the reader iterates records as string_views into the
// received buffer — no per-op message objects on either side.
//
// Wire layout (codec-compatible with messages.cpp):
//   field 1 (varint)            op count
//   field 2 (length-delimited)  record block
// Record block layout, one record per op:
//   op byte | varint keyLen | key bytes
//   puts additionally carry:  varint valueLen | value bytes | fixed64 version
//
// Like every decoder in this library, BatchReader is total: malformed bytes
// from "the network" yield a clean failure, never UB.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "rpc/wire.hpp"

namespace dcache::rpc {

enum class BatchOp : std::uint8_t {
  kGet = 0,
  kPut = 1,
  kInvalidate = 2,
};

/// One decoded operation. Views point into the reader's buffer and are
/// valid only while that buffer outlives the reader.
struct BatchItem {
  BatchOp op = BatchOp::kGet;
  std::string_view key;
  std::string_view value;        // puts only
  std::uint64_t version = 0;     // puts only
};

class RequestBatch {
 public:
  void appendGet(std::string_view key) { appendKeyOnly(BatchOp::kGet, key); }
  void appendInvalidate(std::string_view key) {
    appendKeyOnly(BatchOp::kInvalidate, key);
  }
  void appendPut(std::string_view key, std::string_view value,
                 std::uint64_t version);

  [[nodiscard]] std::uint32_t size() const noexcept { return count_; }
  [[nodiscard]] bool empty() const noexcept { return count_ == 0; }
  /// Drops all records but keeps the arena allocation for reuse.
  void clear() noexcept {
    arena_.clear();
    count_ = 0;
  }

  /// Bytes this batch occupies on the wire — what a Channel::call should
  /// charge for shipping it. Matches encode()'s output size exactly.
  [[nodiscard]] std::uint64_t encodedSize() const noexcept;
  void encode(WireEncoder& enc) const;

  /// The raw record block (already in wire form).
  [[nodiscard]] std::string_view records() const noexcept {
    return {reinterpret_cast<const char*>(arena_.data()), arena_.size()};
  }

 private:
  void appendKeyOnly(BatchOp op, std::string_view key);
  void appendVarint(std::uint64_t value);
  void appendBytes(std::string_view bytes);

  std::vector<std::uint8_t> arena_;
  std::uint32_t count_ = 0;
};

/// Forward iterator over a batch's record block. Construct via decode()
/// (full wire message) or directly from a record block + count.
class BatchReader {
 public:
  BatchReader(std::string_view records, std::uint32_t count) noexcept
      : data_(records), expected_(count) {}

  /// Parse a full wire message produced by RequestBatch::encode. The views
  /// inside the reader alias `bytes`. Returns nullopt on malformed input.
  [[nodiscard]] static std::optional<BatchReader> decode(
      std::string_view bytes);

  /// Advance to the next record. Returns false at the end of the block or
  /// on malformed bytes (check ok() to distinguish).
  [[nodiscard]] bool next(BatchItem& out) noexcept;

  /// True while no malformed record has been seen.
  [[nodiscard]] bool ok() const noexcept { return ok_; }
  /// Op count claimed by the batch header.
  [[nodiscard]] std::uint32_t expectedCount() const noexcept {
    return expected_;
  }
  /// Records successfully yielded so far.
  [[nodiscard]] std::uint32_t consumed() const noexcept { return consumed_; }

 private:
  [[nodiscard]] bool readVarint(std::uint64_t& out) noexcept;

  std::string_view data_;
  std::size_t pos_ = 0;
  std::uint32_t expected_ = 0;
  std::uint32_t consumed_ = 0;
  bool ok_ = true;
};

/// Wire size of one batched get/invalidate record for `keyLen`-byte keys —
/// lets serve loops account batch growth without building the batch.
[[nodiscard]] constexpr std::uint64_t batchKeyOpWireSize(
    std::uint64_t keyLen) noexcept {
  std::uint64_t lenBytes = 1;
  for (std::uint64_t v = keyLen; v >= 0x80; v >>= 7) ++lenBytes;
  return 1 + lenBytes + keyLen;
}

/// Wire size of one batched put record.
[[nodiscard]] constexpr std::uint64_t batchPutOpWireSize(
    std::uint64_t keyLen, std::uint64_t valueLen) noexcept {
  std::uint64_t valueLenBytes = 1;
  for (std::uint64_t v = valueLen; v >= 0x80; v >>= 7) ++valueLenBytes;
  return batchKeyOpWireSize(keyLen) + valueLenBytes + valueLen + 8;
}

}  // namespace dcache::rpc
