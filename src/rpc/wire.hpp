// Protobuf-compatible wire primitives: base-128 varints, ZigZag signed
// encoding, fixed-width little-endian integers and length-delimited byte
// strings, composed into (tag, value) fields. This is a real codec — the
// micro-benchmarks that calibrate the serialization cost model run on it,
// and the remote-cache and SQL messages round-trip through it in tests.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace dcache::rpc {

enum class WireType : std::uint8_t {
  kVarint = 0,
  kFixed64 = 1,
  kLengthDelimited = 2,
  kFixed32 = 5,
};

[[nodiscard]] constexpr std::uint64_t zigzagEncode(std::int64_t v) noexcept {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}
[[nodiscard]] constexpr std::int64_t zigzagDecode(std::uint64_t v) noexcept {
  return static_cast<std::int64_t>(v >> 1) ^
         -static_cast<std::int64_t>(v & 1);
}

class WireEncoder {
 public:
  void writeVarint(std::uint64_t value);
  void writeTag(std::uint32_t fieldNumber, WireType type);

  void writeUint(std::uint32_t field, std::uint64_t value);
  void writeSint(std::uint32_t field, std::int64_t value);  // zigzag
  void writeBool(std::uint32_t field, bool value);
  void writeFixed64(std::uint32_t field, std::uint64_t value);
  void writeFixed32(std::uint32_t field, std::uint32_t value);
  void writeDouble(std::uint32_t field, double value);
  void writeBytes(std::uint32_t field, std::string_view bytes);
  void writeString(std::uint32_t field, std::string_view s) {
    writeBytes(field, s);
  }
  /// Nested message: encode `bytes` produced by a sub-encoder.
  void writeMessage(std::uint32_t field, const WireEncoder& sub) {
    writeBytes(field, sub.view());
  }

  [[nodiscard]] std::string_view view() const noexcept {
    return {reinterpret_cast<const char*>(buffer_.data()), buffer_.size()};
  }
  [[nodiscard]] std::size_t size() const noexcept { return buffer_.size(); }
  [[nodiscard]] std::vector<std::uint8_t> take() && noexcept {
    return std::move(buffer_);
  }
  void clear() noexcept { buffer_.clear(); }

 private:
  std::vector<std::uint8_t> buffer_;
};

/// Streaming decoder over an immutable buffer. All reads are bounds-checked;
/// malformed input yields std::nullopt rather than UB — decoders face bytes
/// from "the network" and must be total.
class WireDecoder {
 public:
  explicit WireDecoder(std::string_view bytes) noexcept
      : data_(reinterpret_cast<const std::uint8_t*>(bytes.data())),
        size_(bytes.size()) {}

  struct Field {
    std::uint32_t number;
    WireType type;
  };

  [[nodiscard]] bool done() const noexcept { return pos_ >= size_; }

  [[nodiscard]] std::optional<Field> readTag();
  [[nodiscard]] std::optional<std::uint64_t> readVarint();
  [[nodiscard]] std::optional<std::int64_t> readSint();
  [[nodiscard]] std::optional<std::uint64_t> readFixed64();
  [[nodiscard]] std::optional<std::uint32_t> readFixed32();
  [[nodiscard]] std::optional<double> readDouble();
  [[nodiscard]] std::optional<std::string_view> readBytes();

  /// Skip a field of the given wire type. Returns false on malformed input.
  [[nodiscard]] bool skip(WireType type);

 private:
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

}  // namespace dcache::rpc
