// RPC channel: one unary call = marshal request at the client, ship it,
// unmarshal at the server, run the handler, marshal the response, ship it
// back, unmarshal at the client. Every step charges the correct node, which
// is precisely the accounting the paper's architecture comparison rests on:
// Remote pays this full path per cache access, Linked pays none of it on a
// local hit.
//
// Under fault injection (sim/fault.hpp) the channel also owns the failure
// semantics: a call to a down node or through a lossy degradation window
// times out and is retried under a CallPolicy (per-call timeout,
// exponential backoff with seeded jitter, bounded attempt budget). Failed
// and retried legs still charge CPU at whichever endpoints did work —
// retries are a *cost*, and the wasted share is tracked separately so the
// benches can price it.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>
#include <unordered_map>

#include "rpc/serialization_model.hpp"
#include "sim/network.hpp"
#include "sim/node.hpp"
#include "util/histogram.hpp"
#include "util/rng.hpp"

namespace dcache::obs {
class MetricsRegistry;
}

namespace dcache::rpc {

/// Outcome of a unary call as seen by the transport: how long it took and
/// how many payload bytes crossed the wire. `ok` is false when every
/// attempt of a policy-governed call failed (callers fall back — e.g. a
/// cache client degrades to the storage path).
struct CallResult {
  double latencyMicros = 0.0;
  std::uint64_t requestBytes = 0;
  std::uint64_t responseBytes = 0;
  bool ok = true;
};

/// Retry/timeout/backoff policy for calls made while fault injection is
/// active. Defaults model a tuned intra-datacenter RPC stack: tight
/// timeout, 3 attempts, exponential backoff with +/-20% jitter.
struct CallPolicy {
  double timeoutMicros = 2000.0;
  std::size_t maxAttempts = 3;  // 1 initial try + 2 retries
  double backoffBaseMicros = 500.0;
  double backoffMaxMicros = 8000.0;
  double jitterFraction = 0.2;
  /// Overall per-call budget (0 = unbounded, the legacy behaviour).
  /// Attempt timeouts and backoff waits are clamped so the call's total
  /// latency can never exceed it; a call that runs out of budget stops
  /// retrying and fails, counted as budgetExhausted (distinct from the
  /// per-attempt timeouts that ate the budget).
  double deadlineMicros = 0.0;
};

/// Cost shape of a one-sided (RDMA-style) far-memory access. The whole
/// point of the disaggregated architecture is that this shape is unlike a
/// unary RPC: the initiator pays a small fixed issue/completion cost plus a
/// per-byte pull, the target's CPU is barely touched (its NIC serves the
/// read from memory), and the fabric round-trip skips both kernels.
struct OneSidedParams {
  double issueMicros = 1.0;         // initiator: post the work request
  double completionMicros = 0.5;    // initiator: poll/absorb the completion
  double perByteCpuMicros = 0.0002; // initiator per payload byte (0.2 ns/B)
  double targetTouchMicros = 0.02;  // target CPU per access (near zero)
  double oneWayLatencyMicros = 3.0; // no kernel on the path
  double perByteLatencyMicros = 0.0008;  // same 10 Gbps wire as the RPCs
};

/// Per-destination circuit-breaker tuning (enableBreakers).
struct BreakerPolicy {
  std::size_t windowSize = 20;     // sliding outcome window (<= 64)
  std::size_t minSamples = 10;     // don't judge a destination on one call
  double failureRateToOpen = 0.5;  // trip when failures/window reaches this
  double openMicros = 50000.0;     // cool-down before the half-open probe
};

/// Hedged-request tuning (enableHedging). The hedge delay tracks the
/// destination tier's observed latency quantile, floored while the tracker
/// warms up.
struct HedgePolicy {
  double quantile = 0.99;
  double minHedgeDelayMicros = 500.0;
  std::uint64_t minSamples = 64;  // tracker warm-up before the quantile rules
};

/// Closed -> open -> half-open state machine over a sliding window of call
/// outcomes to one destination. Deterministic: driven entirely by the sim
/// clock its owner passes in. Standalone so the state-machine tests can
/// step it directly.
class CircuitBreaker {
 public:
  enum class State : std::uint8_t { kClosed, kOpen, kHalfOpen };

  explicit CircuitBreaker(BreakerPolicy policy = {}) noexcept
      : policy_(policy) {}

  /// May a call proceed now? Open short-circuits until the cool-down
  /// elapses; then exactly one half-open probe is admitted at a time.
  [[nodiscard]] bool allowRequest(double nowMicros) noexcept;
  /// Outcome of an admitted call. A failing closed-state window trips the
  /// breaker; the half-open probe's outcome closes or re-opens it.
  void record(bool ok, double nowMicros) noexcept;

  [[nodiscard]] State state() const noexcept { return state_; }
  /// Total transitions into open (including probe-failure re-opens).
  [[nodiscard]] std::uint64_t opens() const noexcept { return opens_; }
  [[nodiscard]] const BreakerPolicy& policy() const noexcept {
    return policy_;
  }

 private:
  void trip(double nowMicros) noexcept;

  BreakerPolicy policy_;
  State state_ = State::kClosed;
  double openUntilMicros_ = 0.0;
  std::uint64_t window_ = 0;  // outcome bits, newest at bit 0 (1 = failure)
  std::size_t samples_ = 0;
  std::uint64_t opens_ = 0;
  bool probeInFlight_ = false;
};

/// Per-call outcome of the policy path, for callers that need the anatomy
/// (the failure-timeline bench and tests).
struct PolicyCallResult {
  bool ok = false;
  std::size_t attempts = 0;
  std::size_t timedOutLegs = 0;
  double latencyMicros = 0.0;
  double wastedCpuMicros = 0.0;  // CPU charged to legs that never paid off
};

/// Observer of per-destination call outcomes at the channel boundary — the
/// feed a failure detector (core::HealthMonitor) runs on. The channel
/// reports only calls that actually went to the wire: breaker
/// short-circuits carry no fresh evidence about the destination (the
/// breaker already judged it), and the no-fault fast path never reports
/// (nothing to detect when nothing can fail).
class CallObserver {
 public:
  virtual ~CallObserver() = default;
  /// One policy-governed call to `dst` finished: `ok` is the final verdict
  /// after retries, `latencyMicros` the call's total latency (backoff and
  /// timed-out waits included — slowness is the signal), `nowMicros` the
  /// sim clock.
  virtual void onCallOutcome(const sim::Node& dst, bool ok,
                             double latencyMicros,
                             std::uint64_t nowMicros) = 0;
};

class Channel {
 public:
  Channel(sim::NetworkModel& network, SerializationModel serializer) noexcept
      : network_(&network), serializer_(serializer) {}

  /// Unary call with pre-computed encoded sizes. `marshal` toggles value
  /// (de)serialization accounting — a linked in-process access sets it
  /// false, every cross-process RPC sets it true. `framingComponent` lets
  /// callers attribute the hop (client traffic vs inter-tier traffic) so
  /// the Fig. 6 CPU breakdown can separate them. With faults enabled the
  /// call is transparently routed through callWithPolicy. Inline so the
  /// no-fault benches pay one branch, not an extra call frame, per RPC.
  CallResult call(sim::Node& client, sim::Node& server,
                  std::uint64_t requestBytes, std::uint64_t responseBytes,
                  bool marshal = true,
                  sim::CpuComponent framingComponent =
                      sim::CpuComponent::kRpcFraming) noexcept {
    if (!faultsEnabled_) [[likely]] {
      return callDirect(client, server, requestBytes, responseBytes, marshal,
                        framingComponent);
    }
    return callSlow(client, server, requestBytes, responseBytes, marshal,
                    framingComponent);
  }

  /// One-way message (e.g. an invalidation fan-out) — no response leg.
  /// Fire-and-forget: under faults a dropped/unreachable leg charges the
  /// sender and is simply lost (no retry).
  double oneWay(sim::Node& from, sim::Node& to, std::uint64_t bytes,
                bool marshal = true,
                sim::CpuComponent framingComponent =
                    sim::CpuComponent::kRpcFraming) noexcept;

  /// One-sided read: a single round-trip that pulls `payloadBytes` out of
  /// `target`'s memory. No marshal/unmarshal, no per-message framing at the
  /// target — the initiator pays issue + per-byte + completion CPU (all
  /// under kFarMemAccess), the target pays only `targetTouchMicros`, and
  /// the bytes cross the wire via NetworkModel::noteBytes. Under faults the
  /// access retries like a unary call (a down/partitioned/flaky target
  /// times the initiator out) and reports to the breaker/observer feeds so
  /// health monitoring can judge a gray far-memory node.
  CallResult oneSidedRead(sim::Node& initiator, sim::Node& target,
                          std::uint64_t payloadBytes,
                          const OneSidedParams& params) noexcept;

  /// Unary call under an explicit retry policy. Each attempt can lose its
  /// request leg (server down, or a drop rolled from the seeded RNG inside
  /// a degradation window) or its response leg; a lost leg costs the
  /// sender's CPU plus a full timeout wait, then the policy backs off
  /// (exponential, jittered) and retries until the attempt budget runs
  /// out.
  PolicyCallResult callWithPolicy(
      sim::Node& client, sim::Node& server, std::uint64_t requestBytes,
      std::uint64_t responseBytes, const CallPolicy& policy,
      bool marshal = true,
      sim::CpuComponent framingComponent =
          sim::CpuComponent::kRpcFraming) noexcept;

  /// Hedged unary call for replicated destinations: run the primary; if it
  /// fails — or takes longer than the tier's tracked latency quantile —
  /// fire one backup attempt at `backup` and take whichever answer lands
  /// first. Cancel-on-first-win cannot unspend CPU: both attempts stay
  /// billed, and the hedge's cost is the price of the tail latency it
  /// shaves. Falls back to a plain policy call when hedging is off or no
  /// live backup exists.
  PolicyCallResult callHedged(sim::Node& client, sim::Node& primary,
                              sim::Node* backup, std::uint64_t requestBytes,
                              std::uint64_t responseBytes,
                              const CallPolicy& policy, bool marshal = true,
                              sim::CpuComponent framingComponent =
                                  sim::CpuComponent::kRpcFraming) noexcept;

  /// Convenience for typed messages exposing encodedSize().
  template <typename Request, typename Response>
  CallResult callTyped(sim::Node& client, sim::Node& server,
                       const Request& request, const Response& response) {
    return call(client, server, request.encodedSize(), response.encodedSize());
  }

  /// Arm the fault path: seeds the drop/jitter RNG and makes call()
  /// delegate to callWithPolicy(`policy`). Never armed by default, so the
  /// fast path (and its accounting) is byte-identical to a channel built
  /// before fault injection existed.
  void enableFaults(std::uint64_t seed, CallPolicy policy = {}) noexcept {
    faultsEnabled_ = true;
    faultRng_ = util::Pcg32(seed, 0x9e3779b9U);
    defaultPolicy_ = policy;
  }
  [[nodiscard]] bool faultsEnabled() const noexcept { return faultsEnabled_; }
  [[nodiscard]] const CallPolicy& defaultPolicy() const noexcept {
    return defaultPolicy_;
  }

  /// Sim clock, fed by the deployment. Drives the queueing model's drain
  /// and the breaker cool-downs; harmless (a single store) when neither is
  /// in use.
  void setNowMicros(std::uint64_t nowMicros) noexcept {
    nowMicros_ = nowMicros;
  }
  [[nodiscard]] std::uint64_t nowMicros() const noexcept { return nowMicros_; }

  /// Arm per-destination circuit breakers: calls to a destination whose
  /// recent failure rate trips the window are short-circuited (fail fast,
  /// no wire traffic) until a half-open probe succeeds. The short-circuited
  /// caller still pays the request it already built — tripping is cheap,
  /// not free.
  void enableBreakers(BreakerPolicy policy) noexcept {
    breakersEnabled_ = true;
    breakerPolicy_ = policy;
  }
  [[nodiscard]] bool breakersEnabled() const noexcept {
    return breakersEnabled_;
  }
  /// Breaker guarding `server` (null if none has been created yet).
  [[nodiscard]] const CircuitBreaker* breakerFor(
      const sim::Node& server) const noexcept {
    const auto it = breakers_.find(&server);
    return it == breakers_.end() ? nullptr : &it->second;
  }

  /// Install (or clear, with nullptr) the per-destination outcome observer.
  /// Only policy-path calls are reported, so with faults/overload disarmed
  /// an installed observer never fires.
  void setCallObserver(CallObserver* observer) noexcept {
    observer_ = observer;
  }
  [[nodiscard]] CallObserver* callObserver() const noexcept {
    return observer_;
  }

  /// Arm hedged requests (callHedged falls back to callWithPolicy when
  /// this is off).
  void enableHedging(HedgePolicy policy) noexcept {
    hedgingEnabled_ = true;
    hedgePolicy_ = policy;
  }
  [[nodiscard]] bool hedgingEnabled() const noexcept {
    return hedgingEnabled_;
  }
  /// Current hedge-fire threshold for a destination tier.
  [[nodiscard]] double hedgeDelayMicros(sim::TierKind tier) const noexcept;

  /// Cumulative fault-path accounting (cleared by clearFaultCounters).
  struct FaultCounters {
    std::uint64_t retries = 0;      // extra attempts beyond the first
    std::uint64_t timeouts = 0;     // legs that waited out the timeout
    std::uint64_t failedCalls = 0;  // calls that exhausted their budget
    double wastedCpuMicros = 0.0;   // CPU spent on legs that never paid off
    // Overload-path accounting (zero unless the defenses are armed).
    std::uint64_t budgetExhausted = 0;  // calls stopped by deadlineMicros
    std::uint64_t queueTimeouts = 0;    // attempts outwaited by the backlog
    std::uint64_t queueRejections = 0;  // bounced off a full bounded queue
    std::uint64_t breakerOpens = 0;     // transitions into open
    std::uint64_t breakerShortCircuits = 0;  // calls failed fast while open
    std::uint64_t hedgesSent = 0;  // backup attempts fired
    std::uint64_t hedgeWins = 0;   // hedges whose answer landed first
  };
  [[nodiscard]] const FaultCounters& faultCounters() const noexcept {
    return faultCounters_;
  }
  void clearFaultCounters() noexcept { faultCounters_ = FaultCounters{}; }

  [[nodiscard]] std::uint64_t callCount() const noexcept { return calls_; }
  [[nodiscard]] const SerializationModel& serializer() const noexcept {
    return serializer_;
  }
  [[nodiscard]] sim::NetworkModel& network() noexcept { return *network_; }

 private:
  /// Plain two-leg unary call (the pre-fault fast path). Inline: every
  /// simulated RPC in the no-fault benches funnels through here.
  CallResult callDirect(sim::Node& client, sim::Node& server,
                        std::uint64_t requestBytes,
                        std::uint64_t responseBytes, bool marshal,
                        sim::CpuComponent framingComponent) noexcept {
    ++calls_;
    CallResult result;
    result.requestBytes = requestBytes;
    result.responseBytes = responseBytes;

    if (&client == &server) return result;  // in-process: free by design

    if (marshal) {
      serializer_.chargeSerialize(client, requestBytes);
    }
    result.latencyMicros +=
        network_->transfer(client, server, requestBytes, framingComponent);
    if (marshal) {
      serializer_.chargeDeserialize(server, requestBytes);
      serializer_.chargeSerialize(server, responseBytes);
    }
    result.latencyMicros +=
        network_->transfer(server, client, responseBytes, framingComponent);
    if (marshal) {
      serializer_.chargeDeserialize(client, responseBytes);
    }
    return result;
  }
  /// Fault-injection path of call(): routes through callWithPolicy.
  CallResult callSlow(sim::Node& client, sim::Node& server,
                      std::uint64_t requestBytes, std::uint64_t responseBytes,
                      bool marshal,
                      sim::CpuComponent framingComponent) noexcept;
  /// The retry loop behind callWithPolicy (which adds breaker admission
  /// around it).
  PolicyCallResult runAttempts(sim::Node& client, sim::Node& server,
                               std::uint64_t requestBytes,
                               std::uint64_t responseBytes,
                               const CallPolicy& policy, bool marshal,
                               sim::CpuComponent framingComponent) noexcept;
  /// Roll a leg drop from the seeded RNG for the src -> dst leg. Combines
  /// the network degradation window's drop probability with either
  /// endpoint's flaky-node probability; only consumed when some probability
  /// is non-zero, preserving determinism (and the exact draw sequence)
  /// elsewhere.
  [[nodiscard]] bool legDropped(const sim::Node& src,
                                const sim::Node& dst) noexcept;
  /// Feed the hedge-delay tracker (only when hedging is armed).
  void noteHedgeLatency(sim::TierKind tier,
                        const PolicyCallResult& result) noexcept;

  sim::NetworkModel* network_;
  SerializationModel serializer_;
  std::uint64_t calls_ = 0;
  bool faultsEnabled_ = false;
  util::Pcg32 faultRng_{};
  CallPolicy defaultPolicy_{};
  FaultCounters faultCounters_{};
  std::uint64_t nowMicros_ = 0;

  bool breakersEnabled_ = false;
  BreakerPolicy breakerPolicy_{};
  std::unordered_map<const sim::Node*, CircuitBreaker> breakers_;
  CallObserver* observer_ = nullptr;

  bool hedgingEnabled_ = false;
  HedgePolicy hedgePolicy_{};
  /// Observed ok-call latency per destination tier; its quantile is the
  /// hedge-fire threshold.
  std::array<util::Histogram, static_cast<std::size_t>(sim::TierKind::kCount)>
      hedgeLatency_;
};

/// Thin metrics adapter: publish the channel's fault counters under
/// `prefix` (e.g. "cell0.rpc.") in the unified registry, replacing ad-hoc
/// printf plumbing in the benches.
void exportFaultMetrics(obs::MetricsRegistry& registry,
                        std::string_view prefix,
                        const Channel::FaultCounters& counters);

}  // namespace dcache::rpc
