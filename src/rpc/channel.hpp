// RPC channel: one unary call = marshal request at the client, ship it,
// unmarshal at the server, run the handler, marshal the response, ship it
// back, unmarshal at the client. Every step charges the correct node, which
// is precisely the accounting the paper's architecture comparison rests on:
// Remote pays this full path per cache access, Linked pays none of it on a
// local hit.
#pragma once

#include <cstdint>

#include "rpc/serialization_model.hpp"
#include "sim/network.hpp"
#include "sim/node.hpp"

namespace dcache::rpc {

/// Outcome of a unary call as seen by the transport: how long it took and
/// how many payload bytes crossed the wire.
struct CallResult {
  double latencyMicros = 0.0;
  std::uint64_t requestBytes = 0;
  std::uint64_t responseBytes = 0;
};

class Channel {
 public:
  Channel(sim::NetworkModel& network, SerializationModel serializer) noexcept
      : network_(&network), serializer_(serializer) {}

  /// Unary call with pre-computed encoded sizes. `marshal` toggles value
  /// (de)serialization accounting — a linked in-process access sets it
  /// false, every cross-process RPC sets it true. `framingComponent` lets
  /// callers attribute the hop (client traffic vs inter-tier traffic) so
  /// the Fig. 6 CPU breakdown can separate them.
  CallResult call(sim::Node& client, sim::Node& server,
                  std::uint64_t requestBytes, std::uint64_t responseBytes,
                  bool marshal = true,
                  sim::CpuComponent framingComponent =
                      sim::CpuComponent::kRpcFraming) noexcept;

  /// One-way message (e.g. an invalidation fan-out) — no response leg.
  double oneWay(sim::Node& from, sim::Node& to, std::uint64_t bytes,
                bool marshal = true,
                sim::CpuComponent framingComponent =
                    sim::CpuComponent::kRpcFraming) noexcept;

  /// Convenience for typed messages exposing encodedSize().
  template <typename Request, typename Response>
  CallResult callTyped(sim::Node& client, sim::Node& server,
                       const Request& request, const Response& response) {
    return call(client, server, request.encodedSize(), response.encodedSize());
  }

  [[nodiscard]] std::uint64_t callCount() const noexcept { return calls_; }
  [[nodiscard]] const SerializationModel& serializer() const noexcept {
    return serializer_;
  }
  [[nodiscard]] sim::NetworkModel& network() noexcept { return *network_; }

 private:
  sim::NetworkModel* network_;
  SerializationModel serializer_;
  std::uint64_t calls_ = 0;
};

}  // namespace dcache::rpc
