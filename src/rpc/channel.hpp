// RPC channel: one unary call = marshal request at the client, ship it,
// unmarshal at the server, run the handler, marshal the response, ship it
// back, unmarshal at the client. Every step charges the correct node, which
// is precisely the accounting the paper's architecture comparison rests on:
// Remote pays this full path per cache access, Linked pays none of it on a
// local hit.
//
// Under fault injection (sim/fault.hpp) the channel also owns the failure
// semantics: a call to a down node or through a lossy degradation window
// times out and is retried under a CallPolicy (per-call timeout,
// exponential backoff with seeded jitter, bounded attempt budget). Failed
// and retried legs still charge CPU at whichever endpoints did work —
// retries are a *cost*, and the wasted share is tracked separately so the
// benches can price it.
#pragma once

#include <cstdint>

#include <string_view>

#include "rpc/serialization_model.hpp"
#include "sim/network.hpp"
#include "sim/node.hpp"
#include "util/rng.hpp"

namespace dcache::obs {
class MetricsRegistry;
}

namespace dcache::rpc {

/// Outcome of a unary call as seen by the transport: how long it took and
/// how many payload bytes crossed the wire. `ok` is false when every
/// attempt of a policy-governed call failed (callers fall back — e.g. a
/// cache client degrades to the storage path).
struct CallResult {
  double latencyMicros = 0.0;
  std::uint64_t requestBytes = 0;
  std::uint64_t responseBytes = 0;
  bool ok = true;
};

/// Retry/timeout/backoff policy for calls made while fault injection is
/// active. Defaults model a tuned intra-datacenter RPC stack: tight
/// timeout, 3 attempts, exponential backoff with +/-20% jitter.
struct CallPolicy {
  double timeoutMicros = 2000.0;
  std::size_t maxAttempts = 3;  // 1 initial try + 2 retries
  double backoffBaseMicros = 500.0;
  double backoffMaxMicros = 8000.0;
  double jitterFraction = 0.2;
};

/// Per-call outcome of the policy path, for callers that need the anatomy
/// (the failure-timeline bench and tests).
struct PolicyCallResult {
  bool ok = false;
  std::size_t attempts = 0;
  std::size_t timedOutLegs = 0;
  double latencyMicros = 0.0;
  double wastedCpuMicros = 0.0;  // CPU charged to legs that never paid off
};

class Channel {
 public:
  Channel(sim::NetworkModel& network, SerializationModel serializer) noexcept
      : network_(&network), serializer_(serializer) {}

  /// Unary call with pre-computed encoded sizes. `marshal` toggles value
  /// (de)serialization accounting — a linked in-process access sets it
  /// false, every cross-process RPC sets it true. `framingComponent` lets
  /// callers attribute the hop (client traffic vs inter-tier traffic) so
  /// the Fig. 6 CPU breakdown can separate them. With faults enabled the
  /// call is transparently routed through callWithPolicy.
  CallResult call(sim::Node& client, sim::Node& server,
                  std::uint64_t requestBytes, std::uint64_t responseBytes,
                  bool marshal = true,
                  sim::CpuComponent framingComponent =
                      sim::CpuComponent::kRpcFraming) noexcept;

  /// One-way message (e.g. an invalidation fan-out) — no response leg.
  /// Fire-and-forget: under faults a dropped/unreachable leg charges the
  /// sender and is simply lost (no retry).
  double oneWay(sim::Node& from, sim::Node& to, std::uint64_t bytes,
                bool marshal = true,
                sim::CpuComponent framingComponent =
                    sim::CpuComponent::kRpcFraming) noexcept;

  /// Unary call under an explicit retry policy. Each attempt can lose its
  /// request leg (server down, or a drop rolled from the seeded RNG inside
  /// a degradation window) or its response leg; a lost leg costs the
  /// sender's CPU plus a full timeout wait, then the policy backs off
  /// (exponential, jittered) and retries until the attempt budget runs
  /// out.
  PolicyCallResult callWithPolicy(
      sim::Node& client, sim::Node& server, std::uint64_t requestBytes,
      std::uint64_t responseBytes, const CallPolicy& policy,
      bool marshal = true,
      sim::CpuComponent framingComponent =
          sim::CpuComponent::kRpcFraming) noexcept;

  /// Convenience for typed messages exposing encodedSize().
  template <typename Request, typename Response>
  CallResult callTyped(sim::Node& client, sim::Node& server,
                       const Request& request, const Response& response) {
    return call(client, server, request.encodedSize(), response.encodedSize());
  }

  /// Arm the fault path: seeds the drop/jitter RNG and makes call()
  /// delegate to callWithPolicy(`policy`). Never armed by default, so the
  /// fast path (and its accounting) is byte-identical to a channel built
  /// before fault injection existed.
  void enableFaults(std::uint64_t seed, CallPolicy policy = {}) noexcept {
    faultsEnabled_ = true;
    faultRng_ = util::Pcg32(seed, 0x9e3779b9U);
    defaultPolicy_ = policy;
  }
  [[nodiscard]] bool faultsEnabled() const noexcept { return faultsEnabled_; }
  [[nodiscard]] const CallPolicy& defaultPolicy() const noexcept {
    return defaultPolicy_;
  }

  /// Cumulative fault-path accounting (cleared by clearFaultCounters).
  struct FaultCounters {
    std::uint64_t retries = 0;      // extra attempts beyond the first
    std::uint64_t timeouts = 0;     // legs that waited out the timeout
    std::uint64_t failedCalls = 0;  // calls that exhausted their budget
    double wastedCpuMicros = 0.0;   // CPU spent on legs that never paid off
  };
  [[nodiscard]] const FaultCounters& faultCounters() const noexcept {
    return faultCounters_;
  }
  void clearFaultCounters() noexcept { faultCounters_ = FaultCounters{}; }

  [[nodiscard]] std::uint64_t callCount() const noexcept { return calls_; }
  [[nodiscard]] const SerializationModel& serializer() const noexcept {
    return serializer_;
  }
  [[nodiscard]] sim::NetworkModel& network() noexcept { return *network_; }

 private:
  /// Plain two-leg unary call (the pre-fault fast path).
  CallResult callDirect(sim::Node& client, sim::Node& server,
                        std::uint64_t requestBytes,
                        std::uint64_t responseBytes, bool marshal,
                        sim::CpuComponent framingComponent) noexcept;
  /// Roll a leg drop from the seeded RNG (only consumed when the window's
  /// drop probability is non-zero, preserving determinism elsewhere).
  [[nodiscard]] bool legDropped() noexcept;

  sim::NetworkModel* network_;
  SerializationModel serializer_;
  std::uint64_t calls_ = 0;
  bool faultsEnabled_ = false;
  util::Pcg32 faultRng_{};
  CallPolicy defaultPolicy_{};
  FaultCounters faultCounters_{};
};

/// Thin metrics adapter: publish the channel's fault counters under
/// `prefix` (e.g. "cell0.rpc.") in the unified registry, replacing ad-hoc
/// printf plumbing in the benches.
void exportFaultMetrics(obs::MetricsRegistry& registry,
                        std::string_view prefix,
                        const Channel::FaultCounters& counters);

}  // namespace dcache::rpc
