#include "rpc/batch.hpp"

#include <cstring>

#include "rpc/messages.hpp"

namespace dcache::rpc {

void RequestBatch::appendVarint(std::uint64_t value) {
  while (value >= 0x80) {
    arena_.push_back(static_cast<std::uint8_t>(value) | 0x80u);
    value >>= 7;
  }
  arena_.push_back(static_cast<std::uint8_t>(value));
}

void RequestBatch::appendBytes(std::string_view bytes) {
  appendVarint(bytes.size());
  const auto* p = reinterpret_cast<const std::uint8_t*>(bytes.data());
  arena_.insert(arena_.end(), p, p + bytes.size());
}

void RequestBatch::appendKeyOnly(BatchOp op, std::string_view key) {
  arena_.push_back(static_cast<std::uint8_t>(op));
  appendBytes(key);
  ++count_;
}

void RequestBatch::appendPut(std::string_view key, std::string_view value,
                             std::uint64_t version) {
  arena_.push_back(static_cast<std::uint8_t>(BatchOp::kPut));
  appendBytes(key);
  appendBytes(value);
  std::uint8_t fixed[8];
  for (int i = 0; i < 8; ++i) {
    fixed[i] = static_cast<std::uint8_t>(version >> (8 * i));
  }
  arena_.insert(arena_.end(), fixed, fixed + 8);
  ++count_;
}

std::uint64_t RequestBatch::encodedSize() const noexcept {
  // field 1: tag + count varint; field 2: tag + block length + block.
  return 1 + varintSize(count_) + bytesFieldSize(arena_.size());
}

void RequestBatch::encode(WireEncoder& enc) const {
  enc.writeUint(1, count_);
  enc.writeBytes(2, records());
}

std::optional<BatchReader> BatchReader::decode(std::string_view bytes) {
  WireDecoder dec(bytes);
  std::uint64_t count = 0;
  std::string_view records;
  bool haveRecords = false;
  while (!dec.done()) {
    const auto field = dec.readTag();
    if (!field) return std::nullopt;
    switch (field->number) {
      case 1: {
        const auto v = dec.readVarint();
        if (!v) return std::nullopt;
        count = *v;
        break;
      }
      case 2: {
        const auto v = dec.readBytes();
        if (!v) return std::nullopt;
        records = *v;
        haveRecords = true;
        break;
      }
      default:
        if (!dec.skip(field->type)) return std::nullopt;
    }
  }
  if (!haveRecords && count != 0) return std::nullopt;
  if (count > records.size()) return std::nullopt;  // each record is >= 1 byte
  return BatchReader(records, static_cast<std::uint32_t>(count));
}

bool BatchReader::readVarint(std::uint64_t& out) noexcept {
  out = 0;
  for (int shift = 0; shift < 64; shift += 7) {
    if (pos_ >= data_.size()) return false;
    const auto byte = static_cast<std::uint8_t>(data_[pos_++]);
    out |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) return true;
  }
  return false;  // varint longer than 64 bits
}

bool BatchReader::next(BatchItem& out) noexcept {
  if (!ok_ || pos_ >= data_.size() || consumed_ >= expected_) return false;
  const auto op = static_cast<std::uint8_t>(data_[pos_++]);
  if (op > static_cast<std::uint8_t>(BatchOp::kInvalidate)) {
    ok_ = false;
    return false;
  }
  out.op = static_cast<BatchOp>(op);
  out.value = {};
  out.version = 0;

  std::uint64_t len = 0;
  if (!readVarint(len) || len > data_.size() - pos_) {
    ok_ = false;
    return false;
  }
  out.key = data_.substr(pos_, len);
  pos_ += len;

  if (out.op == BatchOp::kPut) {
    if (!readVarint(len) || len > data_.size() - pos_) {
      ok_ = false;
      return false;
    }
    out.value = data_.substr(pos_, len);
    pos_ += len;
    if (data_.size() - pos_ < 8) {
      ok_ = false;
      return false;
    }
    std::uint64_t version = 0;
    for (int i = 0; i < 8; ++i) {
      version |= static_cast<std::uint64_t>(
                     static_cast<std::uint8_t>(data_[pos_ + i]))
                 << (8 * i);
    }
    out.version = version;
    pos_ += 8;
  }
  ++consumed_;
  return true;
}

}  // namespace dcache::rpc
