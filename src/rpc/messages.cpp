#include "rpc/messages.hpp"

namespace dcache::rpc {
namespace {

// Shared field numbers: 1 = key/statement, 2 = value/found, 3 = version.
// Each message documents its own layout next to encode().

}  // namespace

// ---- GetRequest: 1=key ----
void GetRequest::encode(WireEncoder& enc) const { enc.writeString(1, key); }

std::optional<GetRequest> GetRequest::decode(std::string_view bytes) {
  WireDecoder dec(bytes);
  GetRequest out;
  while (!dec.done()) {
    const auto tag = dec.readTag();
    if (!tag) return std::nullopt;
    if (tag->number == 1 && tag->type == WireType::kLengthDelimited) {
      const auto s = dec.readBytes();
      if (!s) return std::nullopt;
      out.key.assign(*s);
    } else if (!dec.skip(tag->type)) {
      return std::nullopt;
    }
  }
  return out;
}

std::uint64_t GetRequest::encodedSize() const noexcept {
  return bytesFieldSize(key.size());
}

// ---- GetResponse: 1=found, 2=version(fixed64), 3=value ----
void GetResponse::encode(WireEncoder& enc) const {
  enc.writeBool(1, found);
  enc.writeFixed64(2, version);
  enc.writeBytes(3, value);
}

std::optional<GetResponse> GetResponse::decode(std::string_view bytes) {
  WireDecoder dec(bytes);
  GetResponse out;
  while (!dec.done()) {
    const auto tag = dec.readTag();
    if (!tag) return std::nullopt;
    if (tag->number == 1 && tag->type == WireType::kVarint) {
      const auto v = dec.readVarint();
      if (!v) return std::nullopt;
      out.found = *v != 0;
    } else if (tag->number == 2 && tag->type == WireType::kFixed64) {
      const auto v = dec.readFixed64();
      if (!v) return std::nullopt;
      out.version = *v;
    } else if (tag->number == 3 && tag->type == WireType::kLengthDelimited) {
      const auto s = dec.readBytes();
      if (!s) return std::nullopt;
      out.value.assign(*s);
    } else if (!dec.skip(tag->type)) {
      return std::nullopt;
    }
  }
  return out;
}

std::uint64_t GetResponse::encodedSize() const noexcept {
  return 2 + 9 + bytesFieldSize(value.size());
}

// ---- PutRequest: 1=key, 2=value, 3=version(fixed64) ----
void PutRequest::encode(WireEncoder& enc) const {
  enc.writeString(1, key);
  enc.writeBytes(2, value);
  enc.writeFixed64(3, version);
}

std::optional<PutRequest> PutRequest::decode(std::string_view bytes) {
  WireDecoder dec(bytes);
  PutRequest out;
  while (!dec.done()) {
    const auto tag = dec.readTag();
    if (!tag) return std::nullopt;
    if (tag->number == 1 && tag->type == WireType::kLengthDelimited) {
      const auto s = dec.readBytes();
      if (!s) return std::nullopt;
      out.key.assign(*s);
    } else if (tag->number == 2 && tag->type == WireType::kLengthDelimited) {
      const auto s = dec.readBytes();
      if (!s) return std::nullopt;
      out.value.assign(*s);
    } else if (tag->number == 3 && tag->type == WireType::kFixed64) {
      const auto v = dec.readFixed64();
      if (!v) return std::nullopt;
      out.version = *v;
    } else if (!dec.skip(tag->type)) {
      return std::nullopt;
    }
  }
  return out;
}

std::uint64_t PutRequest::encodedSize() const noexcept {
  return bytesFieldSize(key.size()) + bytesFieldSize(value.size()) + 9;
}

// ---- PutResponse: 1=ok, 2=version(fixed64) ----
void PutResponse::encode(WireEncoder& enc) const {
  enc.writeBool(1, ok);
  enc.writeFixed64(2, version);
}

std::optional<PutResponse> PutResponse::decode(std::string_view bytes) {
  WireDecoder dec(bytes);
  PutResponse out;
  while (!dec.done()) {
    const auto tag = dec.readTag();
    if (!tag) return std::nullopt;
    if (tag->number == 1 && tag->type == WireType::kVarint) {
      const auto v = dec.readVarint();
      if (!v) return std::nullopt;
      out.ok = *v != 0;
    } else if (tag->number == 2 && tag->type == WireType::kFixed64) {
      const auto v = dec.readFixed64();
      if (!v) return std::nullopt;
      out.version = *v;
    } else if (!dec.skip(tag->type)) {
      return std::nullopt;
    }
  }
  return out;
}

std::uint64_t PutResponse::encodedSize() const noexcept { return 2 + 9; }

// ---- SqlRequest: 1=statement, 2*=params ----
void SqlRequest::encode(WireEncoder& enc) const {
  enc.writeString(1, statement);
  for (const auto& p : params) enc.writeString(2, p);
}

std::optional<SqlRequest> SqlRequest::decode(std::string_view bytes) {
  WireDecoder dec(bytes);
  SqlRequest out;
  while (!dec.done()) {
    const auto tag = dec.readTag();
    if (!tag) return std::nullopt;
    if (tag->number == 1 && tag->type == WireType::kLengthDelimited) {
      const auto s = dec.readBytes();
      if (!s) return std::nullopt;
      out.statement.assign(*s);
    } else if (tag->number == 2 && tag->type == WireType::kLengthDelimited) {
      const auto s = dec.readBytes();
      if (!s) return std::nullopt;
      out.params.emplace_back(*s);
    } else if (!dec.skip(tag->type)) {
      return std::nullopt;
    }
  }
  return out;
}

std::uint64_t SqlRequest::encodedSize() const noexcept {
  std::uint64_t size = bytesFieldSize(statement.size());
  for (const auto& p : params) size += bytesFieldSize(p.size());
  return size;
}

// ---- SqlResponse: 1=ok, 2*=rows ----
void SqlResponse::encode(WireEncoder& enc) const {
  enc.writeBool(1, ok);
  for (const auto& r : rows) enc.writeBytes(2, r);
}

std::optional<SqlResponse> SqlResponse::decode(std::string_view bytes) {
  WireDecoder dec(bytes);
  SqlResponse out;
  while (!dec.done()) {
    const auto tag = dec.readTag();
    if (!tag) return std::nullopt;
    if (tag->number == 1 && tag->type == WireType::kVarint) {
      const auto v = dec.readVarint();
      if (!v) return std::nullopt;
      out.ok = *v != 0;
    } else if (tag->number == 2 && tag->type == WireType::kLengthDelimited) {
      const auto s = dec.readBytes();
      if (!s) return std::nullopt;
      out.rows.emplace_back(*s);
    } else if (!dec.skip(tag->type)) {
      return std::nullopt;
    }
  }
  return out;
}

std::uint64_t SqlResponse::encodedSize() const noexcept {
  std::uint64_t size = 2;
  for (const auto& r : rows) size += bytesFieldSize(r.size());
  return size;
}

// ---- VersionCheckRequest: 1=key ----
void VersionCheckRequest::encode(WireEncoder& enc) const {
  enc.writeString(1, key);
}

std::optional<VersionCheckRequest> VersionCheckRequest::decode(
    std::string_view bytes) {
  const auto get = GetRequest::decode(bytes);  // identical layout
  if (!get) return std::nullopt;
  return VersionCheckRequest{get->key};
}

std::uint64_t VersionCheckRequest::encodedSize() const noexcept {
  return bytesFieldSize(key.size());
}

// ---- VersionCheckResponse: 1=found, 2=version(fixed64) ----
void VersionCheckResponse::encode(WireEncoder& enc) const {
  enc.writeBool(1, found);
  enc.writeFixed64(2, version);
}

std::optional<VersionCheckResponse> VersionCheckResponse::decode(
    std::string_view bytes) {
  const auto put = PutResponse::decode(bytes);  // identical layout
  if (!put) return std::nullopt;
  return VersionCheckResponse{put->ok, put->version};
}

std::uint64_t VersionCheckResponse::encodedSize() const noexcept {
  return 2 + 9;
}

}  // namespace dcache::rpc
