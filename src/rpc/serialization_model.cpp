#include "rpc/serialization_model.hpp"

// Header-only today; the translation unit anchors the library and keeps the
// door open for calibration loading without touching dependents.
