// Serialization cost model. The experiment hot path simulates millions of
// requests, so it charges (de)serialization CPU analytically from encoded
// byte counts instead of materializing buffers. The per-byte constants are
// calibrated against the real wire codec by bench/micro_serialization — the
// model and the measured codec must agree in shape (linear in bytes with a
// small per-message constant), which the tests assert.
#pragma once

#include <cstdint>

#include "sim/node.hpp"

namespace dcache::rpc {

struct SerializationParams {
  // Fixed per-message overhead: allocation, field dispatch, descriptor walk.
  double perMessageMicros = 0.25;
  // Encoding throughput ≈ 1 GB/s on one core.
  double serializePerByteMicros = 0.001;
  // Decoding is slower: validation + string materialization.
  double deserializePerByteMicros = 0.0016;
};

class SerializationModel {
 public:
  SerializationModel() = default;
  explicit SerializationModel(SerializationParams params) noexcept
      : params_(params) {}

  /// Charge `node` for encoding a message of `bytes` encoded size.
  void chargeSerialize(sim::Node& node, std::uint64_t bytes) const noexcept {
    node.charge(sim::CpuComponent::kSerialization, serializeMicros(bytes));
  }

  /// Charge `node` for decoding a message of `bytes` encoded size.
  void chargeDeserialize(sim::Node& node, std::uint64_t bytes) const noexcept {
    node.charge(sim::CpuComponent::kDeserialization, deserializeMicros(bytes));
  }

  [[nodiscard]] double serializeMicros(std::uint64_t bytes) const noexcept {
    return params_.perMessageMicros +
           params_.serializePerByteMicros * static_cast<double>(bytes);
  }
  [[nodiscard]] double deserializeMicros(std::uint64_t bytes) const noexcept {
    return params_.perMessageMicros +
           params_.deserializePerByteMicros * static_cast<double>(bytes);
  }

  [[nodiscard]] const SerializationParams& params() const noexcept {
    return params_;
  }

 private:
  SerializationParams params_{};
};

}  // namespace dcache::rpc
