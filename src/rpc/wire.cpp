#include "rpc/wire.hpp"

#include <bit>
#include <cstring>

namespace dcache::rpc {

void WireEncoder::writeVarint(std::uint64_t value) {
  while (value >= 0x80) {
    buffer_.push_back(static_cast<std::uint8_t>(value) | 0x80);
    value >>= 7;
  }
  buffer_.push_back(static_cast<std::uint8_t>(value));
}

void WireEncoder::writeTag(std::uint32_t fieldNumber, WireType type) {
  writeVarint((static_cast<std::uint64_t>(fieldNumber) << 3) |
              static_cast<std::uint64_t>(type));
}

void WireEncoder::writeUint(std::uint32_t field, std::uint64_t value) {
  writeTag(field, WireType::kVarint);
  writeVarint(value);
}

void WireEncoder::writeSint(std::uint32_t field, std::int64_t value) {
  writeTag(field, WireType::kVarint);
  writeVarint(zigzagEncode(value));
}

void WireEncoder::writeBool(std::uint32_t field, bool value) {
  writeUint(field, value ? 1 : 0);
}

void WireEncoder::writeFixed64(std::uint32_t field, std::uint64_t value) {
  writeTag(field, WireType::kFixed64);
  for (int i = 0; i < 8; ++i) {
    buffer_.push_back(static_cast<std::uint8_t>(value >> (8 * i)));
  }
}

void WireEncoder::writeFixed32(std::uint32_t field, std::uint32_t value) {
  writeTag(field, WireType::kFixed32);
  for (int i = 0; i < 4; ++i) {
    buffer_.push_back(static_cast<std::uint8_t>(value >> (8 * i)));
  }
}

void WireEncoder::writeDouble(std::uint32_t field, double value) {
  writeFixed64(field, std::bit_cast<std::uint64_t>(value));
}

void WireEncoder::writeBytes(std::uint32_t field, std::string_view bytes) {
  writeTag(field, WireType::kLengthDelimited);
  writeVarint(bytes.size());
  const auto* p = reinterpret_cast<const std::uint8_t*>(bytes.data());
  buffer_.insert(buffer_.end(), p, p + bytes.size());
}

std::optional<WireDecoder::Field> WireDecoder::readTag() {
  if (done()) return std::nullopt;
  const auto raw = readVarint();
  if (!raw) return std::nullopt;
  const auto typeBits = static_cast<std::uint8_t>(*raw & 0x7);
  switch (typeBits) {
    case 0:
    case 1:
    case 2:
    case 5:
      break;
    default:
      return std::nullopt;  // unknown wire type
  }
  return Field{static_cast<std::uint32_t>(*raw >> 3),
               static_cast<WireType>(typeBits)};
}

std::optional<std::uint64_t> WireDecoder::readVarint() {
  std::uint64_t result = 0;
  int shift = 0;
  while (pos_ < size_ && shift < 64) {
    const std::uint8_t byte = data_[pos_++];
    result |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) return result;
    shift += 7;
  }
  return std::nullopt;  // truncated or overlong
}

std::optional<std::int64_t> WireDecoder::readSint() {
  const auto raw = readVarint();
  if (!raw) return std::nullopt;
  return zigzagDecode(*raw);
}

std::optional<std::uint64_t> WireDecoder::readFixed64() {
  if (size_ - pos_ < 8) return std::nullopt;
  std::uint64_t value = 0;
  for (int i = 0; i < 8; ++i) {
    value |= static_cast<std::uint64_t>(data_[pos_ + i]) << (8 * i);
  }
  pos_ += 8;
  return value;
}

std::optional<std::uint32_t> WireDecoder::readFixed32() {
  if (size_ - pos_ < 4) return std::nullopt;
  std::uint32_t value = 0;
  for (int i = 0; i < 4; ++i) {
    value |= static_cast<std::uint32_t>(data_[pos_ + i]) << (8 * i);
  }
  pos_ += 4;
  return value;
}

std::optional<double> WireDecoder::readDouble() {
  const auto raw = readFixed64();
  if (!raw) return std::nullopt;
  return std::bit_cast<double>(*raw);
}

std::optional<std::string_view> WireDecoder::readBytes() {
  const auto length = readVarint();
  if (!length || *length > size_ - pos_) return std::nullopt;
  std::string_view out(reinterpret_cast<const char*>(data_ + pos_),
                       static_cast<std::size_t>(*length));
  pos_ += static_cast<std::size_t>(*length);
  return out;
}

bool WireDecoder::skip(WireType type) {
  switch (type) {
    case WireType::kVarint:
      return readVarint().has_value();
    case WireType::kFixed64:
      return readFixed64().has_value();
    case WireType::kFixed32:
      return readFixed32().has_value();
    case WireType::kLengthDelimited:
      return readBytes().has_value();
  }
  return false;
}

}  // namespace dcache::rpc
