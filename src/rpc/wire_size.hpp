// Zero-allocation wire-size helpers for the serve hot path.
//
// The experiment loops only ever need encodedSize() of a message they would
// build from a key/value they already have — constructing a GetRequest just
// to ask its size costs a std::string copy per simulated op. Each helper
// below computes exactly what the corresponding message's encodedSize()
// returns (field layouts in messages.cpp); test_wire.cpp pins the
// equivalence against real messages across a sweep of lengths, so the two
// can never drift silently.
#pragma once

#include <cstdint>

#include "rpc/messages.hpp"

namespace dcache::rpc {

/// GetRequest{key}.encodedSize() — layout: 1=key.
[[nodiscard]] constexpr std::uint64_t getRequestWireSize(
    std::uint64_t keyLen) noexcept {
  return bytesFieldSize(keyLen);
}

/// GetResponse{found, version, value}.encodedSize() — layout: 1=found,
/// 2=version(fixed64), 3=value. Simulation paths pass valueLen = 0 and
/// account the logical value bytes separately.
[[nodiscard]] constexpr std::uint64_t getResponseWireSize(
    std::uint64_t valueLen = 0) noexcept {
  return 2 + 9 + bytesFieldSize(valueLen);
}

/// PutRequest{key, value, version}.encodedSize() — layout: 1=key, 2=value,
/// 3=version(fixed64).
[[nodiscard]] constexpr std::uint64_t putRequestWireSize(
    std::uint64_t keyLen, std::uint64_t valueLen = 0) noexcept {
  return bytesFieldSize(keyLen) + bytesFieldSize(valueLen) + 9;
}

/// PutResponse{ok, version}.encodedSize() — layout: 1=ok,
/// 2=version(fixed64).
[[nodiscard]] constexpr std::uint64_t putResponseWireSize() noexcept {
  return 2 + 9;
}

/// VersionCheckRequest: identical layout to GetRequest.
[[nodiscard]] constexpr std::uint64_t versionCheckRequestWireSize(
    std::uint64_t keyLen) noexcept {
  return getRequestWireSize(keyLen);
}

/// VersionCheckResponse: identical layout to PutResponse.
[[nodiscard]] constexpr std::uint64_t versionCheckResponseWireSize() noexcept {
  return putResponseWireSize();
}

}  // namespace dcache::rpc
