// Concrete RPC message types exchanged between the tiers: key-value cache
// operations, SQL statements and version checks. Each type has a real
// encode/decode through the wire codec (round-trip tested, including against
// corrupted buffers) plus an encodedSize() used by the experiment hot path
// to charge serialization cost without materializing buffers for millions
// of simulated requests.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "rpc/wire.hpp"

namespace dcache::rpc {

/// Cache/KV get.
struct GetRequest {
  std::string key;

  void encode(WireEncoder& enc) const;
  [[nodiscard]] static std::optional<GetRequest> decode(std::string_view bytes);
  [[nodiscard]] std::uint64_t encodedSize() const noexcept;
};

struct GetResponse {
  bool found = false;
  std::uint64_t version = 0;
  std::string value;

  void encode(WireEncoder& enc) const;
  [[nodiscard]] static std::optional<GetResponse> decode(std::string_view bytes);
  [[nodiscard]] std::uint64_t encodedSize() const noexcept;
};

/// Cache/KV put (also used for cache fill and invalidate-with-empty-value).
struct PutRequest {
  std::string key;
  std::string value;
  std::uint64_t version = 0;

  void encode(WireEncoder& enc) const;
  [[nodiscard]] static std::optional<PutRequest> decode(std::string_view bytes);
  [[nodiscard]] std::uint64_t encodedSize() const noexcept;
};

struct PutResponse {
  bool ok = false;
  std::uint64_t version = 0;

  void encode(WireEncoder& enc) const;
  [[nodiscard]] static std::optional<PutResponse> decode(std::string_view bytes);
  [[nodiscard]] std::uint64_t encodedSize() const noexcept;
};

/// SQL statement sent to the SQL front-end tier.
struct SqlRequest {
  std::string statement;
  std::vector<std::string> params;

  void encode(WireEncoder& enc) const;
  [[nodiscard]] static std::optional<SqlRequest> decode(std::string_view bytes);
  [[nodiscard]] std::uint64_t encodedSize() const noexcept;
};

/// Rows come back as pre-encoded row payloads.
struct SqlResponse {
  bool ok = false;
  std::vector<std::string> rows;

  void encode(WireEncoder& enc) const;
  [[nodiscard]] static std::optional<SqlResponse> decode(std::string_view bytes);
  [[nodiscard]] std::uint64_t encodedSize() const noexcept;
};

/// Consistency version check (§5.5): request carries only the key…
struct VersionCheckRequest {
  std::string key;

  void encode(WireEncoder& enc) const;
  [[nodiscard]] static std::optional<VersionCheckRequest> decode(
      std::string_view bytes);
  [[nodiscard]] std::uint64_t encodedSize() const noexcept;
};

/// …and the response only the 8-byte version column.
struct VersionCheckResponse {
  bool found = false;
  std::uint64_t version = 0;

  void encode(WireEncoder& enc) const;
  [[nodiscard]] static std::optional<VersionCheckResponse> decode(
      std::string_view bytes);
  [[nodiscard]] std::uint64_t encodedSize() const noexcept;
};

/// Size in bytes of a varint encoding.
[[nodiscard]] constexpr std::uint64_t varintSize(std::uint64_t v) noexcept {
  std::uint64_t n = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++n;
  }
  return n;
}

/// Size of a length-delimited field with 1-byte tag.
[[nodiscard]] constexpr std::uint64_t bytesFieldSize(std::uint64_t len) noexcept {
  return 1 + varintSize(len) + len;
}

}  // namespace dcache::rpc
