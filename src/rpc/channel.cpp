#include "rpc/channel.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "sim/trace_hook.hpp"

namespace dcache::rpc {

void exportFaultMetrics(obs::MetricsRegistry& registry,
                        std::string_view prefix,
                        const Channel::FaultCounters& counters) {
  const std::string base(prefix);
  registry.setCounter(base + "retries", counters.retries);
  registry.setCounter(base + "timeouts", counters.timeouts);
  registry.setCounter(base + "failed_calls", counters.failedCalls);
  registry.setGauge(base + "wasted_cpu_micros", counters.wastedCpuMicros);
}

CallResult Channel::callDirect(sim::Node& client, sim::Node& server,
                               std::uint64_t requestBytes,
                               std::uint64_t responseBytes, bool marshal,
                               sim::CpuComponent framingComponent) noexcept {
  ++calls_;
  CallResult result;
  result.requestBytes = requestBytes;
  result.responseBytes = responseBytes;

  if (&client == &server) return result;  // in-process: free by design

  if (marshal) {
    serializer_.chargeSerialize(client, requestBytes);
  }
  result.latencyMicros +=
      network_->transfer(client, server, requestBytes, framingComponent);
  if (marshal) {
    serializer_.chargeDeserialize(server, requestBytes);
    serializer_.chargeSerialize(server, responseBytes);
  }
  result.latencyMicros +=
      network_->transfer(server, client, responseBytes, framingComponent);
  if (marshal) {
    serializer_.chargeDeserialize(client, responseBytes);
  }
  return result;
}

CallResult Channel::call(sim::Node& client, sim::Node& server,
                         std::uint64_t requestBytes,
                         std::uint64_t responseBytes, bool marshal,
                         sim::CpuComponent framingComponent) noexcept {
  if (!faultsEnabled_) {
    return callDirect(client, server, requestBytes, responseBytes, marshal,
                      framingComponent);
  }
  const PolicyCallResult policyResult =
      callWithPolicy(client, server, requestBytes, responseBytes,
                     defaultPolicy_, marshal, framingComponent);
  CallResult result;
  result.latencyMicros = policyResult.latencyMicros;
  result.requestBytes = requestBytes;
  result.responseBytes = responseBytes;
  result.ok = policyResult.ok;
  return result;
}

bool Channel::legDropped() noexcept {
  const double p = network_->dropProbability();
  if (p <= 0.0) return false;  // no RNG draw: determinism outside windows
  return util::uniform01(faultRng_) < p;
}

PolicyCallResult Channel::callWithPolicy(
    sim::Node& client, sim::Node& server, std::uint64_t requestBytes,
    std::uint64_t responseBytes, const CallPolicy& policy, bool marshal,
    sim::CpuComponent framingComponent) noexcept {
  PolicyCallResult out;
  if (&client == &server) {  // in-process: nothing can fail or cost
    ++calls_;
    out.ok = true;
    out.attempts = 1;
    return out;
  }

  const std::size_t budget = std::max<std::size_t>(policy.maxAttempts, 1);
  for (std::size_t attempt = 0; attempt < budget; ++attempt) {
    // One span per attempt: a retried call shows up in a trace as a ladder
    // of timed-out legs followed by the leg that paid off (or kFailed
    // silence). All the wasted CPU lands on the timed-out spans, which is
    // how the conservation test sees retry cost attributed exactly once.
    sim::SpanGuard attemptSpan("rpc.attempt", server.tier());
    if (attempt > 0) {
      // Exponential backoff with seeded jitter; pure waiting, no CPU.
      double backoff = policy.backoffBaseMicros *
                       static_cast<double>(1ULL << (attempt - 1));
      backoff = std::min(backoff, policy.backoffMaxMicros);
      if (policy.jitterFraction > 0.0) {
        backoff *= 1.0 + policy.jitterFraction *
                             (2.0 * util::uniform01(faultRng_) - 1.0);
      }
      out.latencyMicros += backoff;
      ++faultCounters_.retries;
    }
    ++out.attempts;
    ++calls_;

    // Request leg. A down server or a dropped packet loses the leg: the
    // client already paid to marshal and send, then waits out the timeout.
    if (!server.isUp() || legDropped()) {
      double wasted = 0.0;
      if (marshal) {
        serializer_.chargeSerialize(client, requestBytes);
        wasted += serializer_.serializeMicros(requestBytes);
      }
      network_->chargeLostLeg(client, requestBytes, framingComponent);
      wasted += network_->params().perMessageCpuMicros +
                network_->params().perByteCpuMicros *
                    static_cast<double>(requestBytes);
      out.latencyMicros += policy.timeoutMicros;
      out.wastedCpuMicros += wasted;
      ++out.timedOutLegs;
      ++faultCounters_.timeouts;
      faultCounters_.wastedCpuMicros += wasted;
      attemptSpan.setOutcome(sim::SpanOutcome::kTimeout);
      continue;
    }

    if (marshal) serializer_.chargeSerialize(client, requestBytes);
    out.latencyMicros +=
        network_->transfer(client, server, requestBytes, framingComponent);
    if (marshal) {
      serializer_.chargeDeserialize(server, requestBytes);
      serializer_.chargeSerialize(server, responseBytes);
    }

    // Response leg. A drop here wastes the whole round so far: the server
    // did its work, but the client never sees the answer.
    if (legDropped()) {
      network_->chargeLostLeg(server, responseBytes, framingComponent);
      double wasted = network_->params().perMessageCpuMicros +
                      network_->params().perByteCpuMicros *
                          static_cast<double>(responseBytes);
      // The request leg's endpoint CPU was spent for nothing too.
      wasted += 2.0 * (network_->params().perMessageCpuMicros +
                       network_->params().perByteCpuMicros *
                           static_cast<double>(requestBytes));
      if (marshal) {
        wasted += serializer_.serializeMicros(requestBytes) +
                  serializer_.deserializeMicros(requestBytes) +
                  serializer_.serializeMicros(responseBytes);
      }
      out.latencyMicros += policy.timeoutMicros;
      out.wastedCpuMicros += wasted;
      ++out.timedOutLegs;
      ++faultCounters_.timeouts;
      faultCounters_.wastedCpuMicros += wasted;
      attemptSpan.setOutcome(sim::SpanOutcome::kTimeout);
      continue;
    }

    out.latencyMicros +=
        network_->transfer(server, client, responseBytes, framingComponent);
    if (marshal) serializer_.chargeDeserialize(client, responseBytes);
    out.ok = true;
    if (attempt > 0) attemptSpan.setOutcome(sim::SpanOutcome::kRetry);
    return out;
  }

  ++faultCounters_.failedCalls;
  return out;
}

double Channel::oneWay(sim::Node& from, sim::Node& to, std::uint64_t bytes,
                       bool marshal,
                       sim::CpuComponent framingComponent) noexcept {
  ++calls_;
  if (&from == &to) return 0.0;
  if (faultsEnabled_ && (!to.isUp() || legDropped())) {
    // Fire-and-forget into the void: the sender pays, the message is lost.
    double wasted = 0.0;
    if (marshal) {
      serializer_.chargeSerialize(from, bytes);
      wasted += serializer_.serializeMicros(bytes);
    }
    const double latency =
        network_->chargeLostLeg(from, bytes, framingComponent);
    wasted += network_->params().perMessageCpuMicros +
              network_->params().perByteCpuMicros * static_cast<double>(bytes);
    faultCounters_.wastedCpuMicros += wasted;
    return latency;
  }
  if (marshal) serializer_.chargeSerialize(from, bytes);
  const double latency = network_->transfer(from, to, bytes, framingComponent);
  if (marshal) serializer_.chargeDeserialize(to, bytes);
  return latency;
}

}  // namespace dcache::rpc
