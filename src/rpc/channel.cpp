#include "rpc/channel.hpp"

#include <algorithm>
#include <bit>

#include "obs/metrics.hpp"
#include "sim/trace_hook.hpp"

namespace dcache::rpc {

void exportFaultMetrics(obs::MetricsRegistry& registry,
                        std::string_view prefix,
                        const Channel::FaultCounters& counters) {
  const std::string base(prefix);
  registry.setCounter(base + "retries", counters.retries);
  registry.setCounter(base + "timeouts", counters.timeouts);
  registry.setCounter(base + "failed_calls", counters.failedCalls);
  registry.setGauge(base + "wasted_cpu_micros", counters.wastedCpuMicros);
  registry.setCounter(base + "budget_exhausted", counters.budgetExhausted);
  registry.setCounter(base + "queue_timeouts", counters.queueTimeouts);
  registry.setCounter(base + "queue_rejections", counters.queueRejections);
  registry.setCounter(base + "breaker_opens", counters.breakerOpens);
  registry.setCounter(base + "breaker_short_circuits",
                      counters.breakerShortCircuits);
  registry.setCounter(base + "hedges_sent", counters.hedgesSent);
  registry.setCounter(base + "hedge_wins", counters.hedgeWins);
}

bool CircuitBreaker::allowRequest(double nowMicros) noexcept {
  switch (state_) {
    case State::kClosed:
      return true;
    case State::kOpen:
      if (nowMicros < openUntilMicros_) return false;
      state_ = State::kHalfOpen;
      probeInFlight_ = false;
      [[fallthrough]];
    case State::kHalfOpen:
      if (probeInFlight_) return false;  // one probe at a time
      probeInFlight_ = true;
      return true;
  }
  return true;
}

void CircuitBreaker::record(bool ok, double nowMicros) noexcept {
  if (state_ == State::kHalfOpen) {
    probeInFlight_ = false;
    if (ok) {
      // Probe paid off: close with a clean slate, so one stray failure
      // right after recovery doesn't re-trip on stale window history.
      state_ = State::kClosed;
      window_ = 0;
      samples_ = 0;
    } else {
      trip(nowMicros);  // destination still sick: straight back to open
    }
    return;
  }
  if (state_ != State::kClosed) return;  // outcomes while open don't count
  const std::size_t cap = std::min<std::size_t>(policy_.windowSize, 64);
  window_ = (window_ << 1) | (ok ? 0ULL : 1ULL);
  if (samples_ < cap) ++samples_;
  const std::uint64_t mask =
      cap >= 64 ? ~0ULL : ((1ULL << cap) - 1ULL);
  const auto failures =
      static_cast<std::size_t>(std::popcount(window_ & mask));
  if (samples_ >= policy_.minSamples &&
      static_cast<double>(failures) >=
          policy_.failureRateToOpen * static_cast<double>(samples_)) {
    trip(nowMicros);
  }
}

void CircuitBreaker::trip(double nowMicros) noexcept {
  state_ = State::kOpen;
  openUntilMicros_ = nowMicros + policy_.openMicros;
  window_ = 0;
  samples_ = 0;
  probeInFlight_ = false;
  ++opens_;
}

CallResult Channel::callSlow(sim::Node& client, sim::Node& server,
                             std::uint64_t requestBytes,
                             std::uint64_t responseBytes, bool marshal,
                             sim::CpuComponent framingComponent) noexcept {
  const PolicyCallResult policyResult =
      callWithPolicy(client, server, requestBytes, responseBytes,
                     defaultPolicy_, marshal, framingComponent);
  CallResult result;
  result.latencyMicros = policyResult.latencyMicros;
  result.requestBytes = requestBytes;
  result.responseBytes = responseBytes;
  result.ok = policyResult.ok;
  return result;
}

bool Channel::legDropped(const sim::Node& src, const sim::Node& dst) noexcept {
  const double p = network_->dropProbability();
  const double fs = src.flakyProbability();
  const double fd = dst.flakyProbability();
  if (fs > 0.0 || fd > 0.0) [[unlikely]] {
    // A flaky endpoint drops legs independently of the degradation window.
    // Combined only when a flaky window is actually open: 1-(1-p) is not p
    // in floating point, so the plain-p path below must stay untouched for
    // byte-identity outside flaky windows.
    const double combined = 1.0 - (1.0 - p) * (1.0 - fs) * (1.0 - fd);
    return util::uniform01(faultRng_) < combined;
  }
  if (p <= 0.0) return false;  // no RNG draw: determinism outside windows
  return util::uniform01(faultRng_) < p;
}

PolicyCallResult Channel::callWithPolicy(
    sim::Node& client, sim::Node& server, std::uint64_t requestBytes,
    std::uint64_t responseBytes, const CallPolicy& policy, bool marshal,
    sim::CpuComponent framingComponent) noexcept {
  if (&client == &server) {  // in-process: nothing can fail or cost
    ++calls_;
    PolicyCallResult out;
    out.ok = true;
    out.attempts = 1;
    return out;
  }

  CircuitBreaker* breaker = nullptr;
  if (breakersEnabled_) {
    breaker = &breakers_.try_emplace(&server, breakerPolicy_).first->second;
    if (!breaker->allowRequest(static_cast<double>(nowMicros_))) {
      // Tripped: fail fast, nothing touches the wire. The caller already
      // built the request, though — a short-circuit is cheap, not free.
      ++calls_;
      PolicyCallResult out;
      double wasted = 0.0;
      if (marshal) {
        serializer_.chargeSerialize(client, requestBytes);
        wasted += serializer_.serializeMicros(requestBytes);
      }
      out.wastedCpuMicros += wasted;
      faultCounters_.wastedCpuMicros += wasted;
      ++faultCounters_.breakerShortCircuits;
      return out;
    }
  }
  const std::uint64_t opensBefore = breaker ? breaker->opens() : 0;
  const PolicyCallResult out = runAttempts(
      client, server, requestBytes, responseBytes, policy, marshal,
      framingComponent);
  if (breaker) {
    breaker->record(out.ok, static_cast<double>(nowMicros_));
    faultCounters_.breakerOpens += breaker->opens() - opensBefore;
  }
  if (observer_ != nullptr) {
    observer_->onCallOutcome(server, out.ok, out.latencyMicros, nowMicros_);
  }
  return out;
}

PolicyCallResult Channel::runAttempts(
    sim::Node& client, sim::Node& server, std::uint64_t requestBytes,
    std::uint64_t responseBytes, const CallPolicy& policy, bool marshal,
    sim::CpuComponent framingComponent) noexcept {
  PolicyCallResult out;
  const bool hasDeadline = policy.deadlineMicros > 0.0;
  const std::size_t budget = std::max<std::size_t>(policy.maxAttempts, 1);
  for (std::size_t attempt = 0; attempt < budget; ++attempt) {
    if (hasDeadline && out.latencyMicros >= policy.deadlineMicros) {
      // The per-call budget is gone: stop retrying even though the attempt
      // budget isn't. Counted apart from the timeouts that drained it.
      ++faultCounters_.budgetExhausted;
      break;
    }
    // One span per attempt: a retried call shows up in a trace as a ladder
    // of timed-out legs followed by the leg that paid off (or kFailed
    // silence). All the wasted CPU lands on the timed-out spans, which is
    // how the conservation test sees retry cost attributed exactly once.
    sim::SpanGuard attemptSpan("rpc.attempt", server.tier());
    if (attempt > 0) {
      // Exponential backoff with seeded jitter; pure waiting, no CPU.
      double backoff = policy.backoffBaseMicros *
                       static_cast<double>(1ULL << (attempt - 1));
      backoff = std::min(backoff, policy.backoffMaxMicros);
      if (policy.jitterFraction > 0.0) {
        backoff *= 1.0 + policy.jitterFraction *
                             (2.0 * util::uniform01(faultRng_) - 1.0);
      }
      if (hasDeadline) {
        backoff = std::min(backoff, policy.deadlineMicros - out.latencyMicros);
      }
      out.latencyMicros += backoff;
      ++faultCounters_.retries;
    }
    ++out.attempts;
    ++calls_;
    // Each failed wait below is capped by the remaining budget, so the
    // total can never overshoot the deadline.
    const double attemptTimeout =
        hasDeadline ? std::min(policy.timeoutMicros,
                               policy.deadlineMicros - out.latencyMicros)
                    : policy.timeoutMicros;

    // Request leg. A down server, a cut client->server link (asymmetric
    // partition) or a dropped packet loses the leg: the client already paid
    // to marshal and send, then waits out the timeout.
    if (!server.isUp() ||
        network_->linkCut(client.tier(), server.tier()) ||
        legDropped(client, server)) {
      double wasted = 0.0;
      if (marshal) {
        serializer_.chargeSerialize(client, requestBytes);
        wasted += serializer_.serializeMicros(requestBytes);
      }
      network_->chargeLostLeg(client, requestBytes, framingComponent);
      wasted += network_->params().perMessageCpuMicros +
                network_->params().perByteCpuMicros *
                    static_cast<double>(requestBytes);
      out.latencyMicros += attemptTimeout;
      out.wastedCpuMicros += wasted;
      ++out.timedOutLegs;
      ++faultCounters_.timeouts;
      faultCounters_.wastedCpuMicros += wasted;
      attemptSpan.setOutcome(sim::SpanOutcome::kTimeout);
      continue;
    }

    // Destination queueing: with a finite capacity configured the attempt
    // waits behind the node's backlog before service.
    if (server.queue().enabled()) {
      sim::NodeQueue& queue = server.queue();
      queue.drainTo(nowMicros_);
      const double wait = queue.waitMicros();
      if (wait >= queue.params().maxWaitMicros) {
        // Bounded queue is full: the node bounces the request at the door.
        // Cheap for the server (that is the point of bounding the queue),
        // but the client's marshal + send is spent, and the retry path
        // will probably bring the request straight back.
        double wasted = 0.0;
        if (marshal) {
          serializer_.chargeSerialize(client, requestBytes);
          wasted += serializer_.serializeMicros(requestBytes);
        }
        network_->chargeLostLeg(client, requestBytes, framingComponent);
        wasted += network_->params().perMessageCpuMicros +
                  network_->params().perByteCpuMicros *
                      static_cast<double>(requestBytes);
        out.latencyMicros += 2.0 * network_->params().oneWayLatencyMicros;
        out.wastedCpuMicros += wasted;
        ++out.timedOutLegs;
        ++faultCounters_.queueRejections;
        faultCounters_.wastedCpuMicros += wasted;
        attemptSpan.setOutcome(sim::SpanOutcome::kQueueTimeout);
        continue;
      }
      if (wait > attemptTimeout) {
        // The client will give up before the server reaches the request —
        // but the server can't know that: the request sits in the queue
        // and is processed anyway. Work the cluster pays for that nobody
        // receives; under retries this is the metastable-failure
        // amplifier (every abandoned attempt deepens the very backlog
        // that caused it).
        double wasted = 0.0;
        if (marshal) {
          serializer_.chargeSerialize(client, requestBytes);
          serializer_.chargeDeserialize(server, requestBytes);
          wasted += serializer_.serializeMicros(requestBytes) +
                    serializer_.deserializeMicros(requestBytes);
        }
        network_->transfer(client, server, requestBytes, framingComponent);
        wasted += 2.0 * (network_->params().perMessageCpuMicros +
                         network_->params().perByteCpuMicros *
                             static_cast<double>(requestBytes));
        out.latencyMicros += attemptTimeout;
        out.wastedCpuMicros += wasted;
        ++out.timedOutLegs;
        ++faultCounters_.timeouts;
        ++faultCounters_.queueTimeouts;
        faultCounters_.wastedCpuMicros += wasted;
        attemptSpan.setOutcome(sim::SpanOutcome::kQueueTimeout);
        continue;
      }
      out.latencyMicros += wait;  // service starts after the backlog drains
    }

    if (marshal) serializer_.chargeSerialize(client, requestBytes);
    out.latencyMicros +=
        network_->transfer(client, server, requestBytes, framingComponent);
    if (marshal) {
      serializer_.chargeDeserialize(server, requestBytes);
      serializer_.chargeSerialize(server, responseBytes);
    }

    // Response leg. A drop here wastes the whole round so far: the server
    // did its work, but the client never sees the answer. A cut
    // server->client link is the expensive asymmetric-partition case: every
    // request gets through, every answer is lost, and the server burns full
    // work per retry.
    if (network_->linkCut(server.tier(), client.tier()) ||
        legDropped(server, client)) {
      network_->chargeLostLeg(server, responseBytes, framingComponent);
      double wasted = network_->params().perMessageCpuMicros +
                      network_->params().perByteCpuMicros *
                          static_cast<double>(responseBytes);
      // The request leg's endpoint CPU was spent for nothing too.
      wasted += 2.0 * (network_->params().perMessageCpuMicros +
                       network_->params().perByteCpuMicros *
                           static_cast<double>(requestBytes));
      if (marshal) {
        wasted += serializer_.serializeMicros(requestBytes) +
                  serializer_.deserializeMicros(requestBytes) +
                  serializer_.serializeMicros(responseBytes);
      }
      out.latencyMicros += attemptTimeout;
      out.wastedCpuMicros += wasted;
      ++out.timedOutLegs;
      ++faultCounters_.timeouts;
      faultCounters_.wastedCpuMicros += wasted;
      attemptSpan.setOutcome(sim::SpanOutcome::kTimeout);
      continue;
    }

    out.latencyMicros +=
        network_->transfer(server, client, responseBytes, framingComponent);
    if (marshal) serializer_.chargeDeserialize(client, responseBytes);
    out.ok = true;
    if (attempt > 0) attemptSpan.setOutcome(sim::SpanOutcome::kRetry);
    return out;
  }

  ++faultCounters_.failedCalls;
  return out;
}

double Channel::hedgeDelayMicros(sim::TierKind tier) const noexcept {
  const util::Histogram& tracked =
      hedgeLatency_[static_cast<std::size_t>(tier)];
  if (tracked.count() < hedgePolicy_.minSamples) {
    return hedgePolicy_.minHedgeDelayMicros;
  }
  return std::max(hedgePolicy_.minHedgeDelayMicros,
                  tracked.quantile(hedgePolicy_.quantile));
}

void Channel::noteHedgeLatency(sim::TierKind tier,
                               const PolicyCallResult& result) noexcept {
  if (!result.ok) return;  // the tracker models healthy-call latency
  hedgeLatency_[static_cast<std::size_t>(tier)].record(result.latencyMicros);
}

PolicyCallResult Channel::callHedged(
    sim::Node& client, sim::Node& primary, sim::Node* backup,
    std::uint64_t requestBytes, std::uint64_t responseBytes,
    const CallPolicy& policy, bool marshal,
    sim::CpuComponent framingComponent) noexcept {
  if (!hedgingEnabled_ || backup == nullptr || backup == &primary ||
      !backup->isUp()) {
    const PolicyCallResult out =
        callWithPolicy(client, primary, requestBytes, responseBytes, policy,
                       marshal, framingComponent);
    if (hedgingEnabled_) noteHedgeLatency(primary.tier(), out);
    return out;
  }

  const double hedgeDelay = hedgeDelayMicros(primary.tier());
  const PolicyCallResult first =
      callWithPolicy(client, primary, requestBytes, responseBytes, policy,
                     marshal, framingComponent);
  noteHedgeLatency(primary.tier(), first);
  if (first.ok && first.latencyMicros <= hedgeDelay) return first;

  // The primary blew through the tracked quantile (or failed outright):
  // fire one backup attempt at the replica. Whichever answer lands first
  // wins; cancel-on-first-win can't unspend the loser's CPU, so both
  // attempts stay billed — the hedge's cost is the price of the tail it
  // shaves.
  sim::SpanGuard hedgeSpan("rpc.hedge", backup->tier());
  hedgeSpan.setOutcome(sim::SpanOutcome::kHedged);
  ++faultCounters_.hedgesSent;
  CallPolicy single = policy;
  single.maxAttempts = 1;  // the hedge is the retry
  const PolicyCallResult hedge =
      callWithPolicy(client, *backup, requestBytes, responseBytes, single,
                     marshal, framingComponent);
  noteHedgeLatency(backup->tier(), hedge);

  PolicyCallResult out = first;
  out.attempts += hedge.attempts;
  out.timedOutLegs += hedge.timedOutLegs;
  out.wastedCpuMicros += hedge.wastedCpuMicros;
  if (hedge.ok) {
    const double viaHedge = hedgeDelay + hedge.latencyMicros;
    if (!first.ok || viaHedge < first.latencyMicros) {
      ++faultCounters_.hedgeWins;
      out.ok = true;
      out.latencyMicros =
          first.ok ? std::min(first.latencyMicros, viaHedge) : viaHedge;
    }
  }
  return out;
}

CallResult Channel::oneSidedRead(sim::Node& initiator, sim::Node& target,
                                 std::uint64_t payloadBytes,
                                 const OneSidedParams& params) noexcept {
  constexpr auto kComp = sim::CpuComponent::kFarMemAccess;
  CallResult result;
  result.responseBytes = payloadBytes;
  if (&initiator == &target) {  // in-process: free by design, like call()
    ++calls_;
    return result;
  }

  const auto wireLatency = [&]() noexcept {
    double latency =
        2.0 * params.oneWayLatencyMicros +
        params.perByteLatencyMicros * static_cast<double>(payloadBytes);
    if (network_->degraded()) latency *= network_->latencyFactor();
    if (network_->anySlowNodes()) [[unlikely]] {
      // A throttled target drags the read even though its CPU is off the
      // path: the NIC and memory bus run on the same starved clock.
      const double s = initiator.slowFactor() > target.slowFactor()
                           ? initiator.slowFactor()
                           : target.slowFactor();
      if (s != 1.0) latency *= s;
    }
    return latency;
  };
  const auto chargeSuccess = [&]() noexcept {
    // Three separate charges, not one fused sum: the byte-accounting test
    // reproduces bytes x per-byte price exactly, which a fused
    // floating-point add order would perturb.
    initiator.charge(kComp, params.issueMicros);
    initiator.charge(
        kComp, params.perByteCpuMicros * static_cast<double>(payloadBytes));
    initiator.charge(kComp, params.completionMicros);
    target.charge(kComp, params.targetTouchMicros);
    network_->noteBytes(payloadBytes);
  };

  if (!faultsEnabled_) [[likely]] {
    ++calls_;
    chargeSuccess();
    result.latencyMicros = wireLatency();
    return result;
  }

  // Fault path: same admission (breaker), retry ladder, and observer feed
  // as a unary call — a far-memory node can be just as down, partitioned,
  // flaky or gray-slow as an RPC server; only the per-leg cost shape
  // differs (a lost read wastes the tiny issue cost, not a marshalled
  // request).
  const CallPolicy& policy = defaultPolicy_;
  CircuitBreaker* breaker = nullptr;
  if (breakersEnabled_) {
    breaker = &breakers_.try_emplace(&target, breakerPolicy_).first->second;
    if (!breaker->allowRequest(static_cast<double>(nowMicros_))) {
      ++calls_;
      initiator.charge(kComp, params.issueMicros);
      faultCounters_.wastedCpuMicros += params.issueMicros;
      ++faultCounters_.breakerShortCircuits;
      result.ok = false;
      return result;
    }
  }
  const std::uint64_t opensBefore = breaker ? breaker->opens() : 0;
  const bool hasDeadline = policy.deadlineMicros > 0.0;
  const std::size_t budget = std::max<std::size_t>(policy.maxAttempts, 1);
  bool ok = false;
  for (std::size_t attempt = 0; attempt < budget; ++attempt) {
    if (hasDeadline && result.latencyMicros >= policy.deadlineMicros) {
      ++faultCounters_.budgetExhausted;
      break;
    }
    sim::SpanGuard attemptSpan("rdma.attempt", target.tier());
    if (attempt > 0) {
      double backoff = policy.backoffBaseMicros *
                       static_cast<double>(1ULL << (attempt - 1));
      backoff = std::min(backoff, policy.backoffMaxMicros);
      if (policy.jitterFraction > 0.0) {
        backoff *= 1.0 + policy.jitterFraction *
                             (2.0 * util::uniform01(faultRng_) - 1.0);
      }
      if (hasDeadline) {
        backoff =
            std::min(backoff, policy.deadlineMicros - result.latencyMicros);
      }
      result.latencyMicros += backoff;
      ++faultCounters_.retries;
    }
    ++calls_;
    const double attemptTimeout =
        hasDeadline ? std::min(policy.timeoutMicros,
                               policy.deadlineMicros - result.latencyMicros)
                    : policy.timeoutMicros;
    // Posting leg: a down target, a cut initiator->target direction, or a
    // dropped leg loses the read before any memory is touched — the
    // initiator spent only the issue cost and waits out the timeout.
    if (!target.isUp() ||
        network_->linkCut(initiator.tier(), target.tier()) ||
        legDropped(initiator, target)) {
      initiator.charge(kComp, params.issueMicros);
      result.latencyMicros += attemptTimeout;
      ++faultCounters_.timeouts;
      faultCounters_.wastedCpuMicros += params.issueMicros;
      attemptSpan.setOutcome(sim::SpanOutcome::kTimeout);
      continue;
    }
    // Data return: the target's memory was read but the payload never
    // lands (reverse-direction cut, or a drop rolled for the return leg).
    if (network_->linkCut(target.tier(), initiator.tier()) ||
        legDropped(target, initiator)) {
      initiator.charge(kComp, params.issueMicros);
      target.charge(kComp, params.targetTouchMicros);
      result.latencyMicros += attemptTimeout;
      ++faultCounters_.timeouts;
      faultCounters_.wastedCpuMicros +=
          params.issueMicros + params.targetTouchMicros;
      attemptSpan.setOutcome(sim::SpanOutcome::kTimeout);
      continue;
    }
    chargeSuccess();
    result.latencyMicros += wireLatency();
    ok = true;
    if (attempt > 0) attemptSpan.setOutcome(sim::SpanOutcome::kRetry);
    break;
  }
  if (!ok) ++faultCounters_.failedCalls;
  result.ok = ok;
  if (breaker) {
    breaker->record(ok, static_cast<double>(nowMicros_));
    faultCounters_.breakerOpens += breaker->opens() - opensBefore;
  }
  if (observer_ != nullptr) {
    observer_->onCallOutcome(target, ok, result.latencyMicros, nowMicros_);
  }
  return result;
}

double Channel::oneWay(sim::Node& from, sim::Node& to, std::uint64_t bytes,
                       bool marshal,
                       sim::CpuComponent framingComponent) noexcept {
  ++calls_;
  if (&from == &to) return 0.0;
  if (faultsEnabled_ &&
      (!to.isUp() || network_->linkCut(from.tier(), to.tier()) ||
       legDropped(from, to))) {
    // Fire-and-forget into the void: the sender pays, the message is lost.
    double wasted = 0.0;
    if (marshal) {
      serializer_.chargeSerialize(from, bytes);
      wasted += serializer_.serializeMicros(bytes);
    }
    const double latency =
        network_->chargeLostLeg(from, bytes, framingComponent);
    wasted += network_->params().perMessageCpuMicros +
              network_->params().perByteCpuMicros * static_cast<double>(bytes);
    faultCounters_.wastedCpuMicros += wasted;
    return latency;
  }
  if (marshal) serializer_.chargeSerialize(from, bytes);
  const double latency = network_->transfer(from, to, bytes, framingComponent);
  if (marshal) serializer_.chargeDeserialize(to, bytes);
  return latency;
}

}  // namespace dcache::rpc
