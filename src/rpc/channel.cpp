#include "rpc/channel.hpp"

namespace dcache::rpc {

CallResult Channel::call(sim::Node& client, sim::Node& server,
                         std::uint64_t requestBytes,
                         std::uint64_t responseBytes, bool marshal,
                         sim::CpuComponent framingComponent) noexcept {
  ++calls_;
  CallResult result;
  result.requestBytes = requestBytes;
  result.responseBytes = responseBytes;

  if (&client == &server) return result;  // in-process: free by design

  if (marshal) {
    serializer_.chargeSerialize(client, requestBytes);
  }
  result.latencyMicros +=
      network_->transfer(client, server, requestBytes, framingComponent);
  if (marshal) {
    serializer_.chargeDeserialize(server, requestBytes);
    serializer_.chargeSerialize(server, responseBytes);
  }
  result.latencyMicros +=
      network_->transfer(server, client, responseBytes, framingComponent);
  if (marshal) {
    serializer_.chargeDeserialize(client, responseBytes);
  }
  return result;
}

double Channel::oneWay(sim::Node& from, sim::Node& to, std::uint64_t bytes,
                       bool marshal,
                       sim::CpuComponent framingComponent) noexcept {
  ++calls_;
  if (&from == &to) return 0.0;
  if (marshal) serializer_.chargeSerialize(from, bytes);
  const double latency = network_->transfer(from, to, bytes, framingComponent);
  if (marshal) serializer_.chargeDeserialize(to, bytes);
  return latency;
}

}  // namespace dcache::rpc
