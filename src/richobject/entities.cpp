#include "richobject/entities.hpp"

namespace dcache::richobject {

std::string_view securableLevelName(SecurableLevel level) noexcept {
  switch (level) {
    case SecurableLevel::kCatalog: return "catalog";
    case SecurableLevel::kSchema: return "schema";
    case SecurableLevel::kTable: return "table";
  }
  return "unknown";
}

bool RichTableObject::allowed(std::string_view principal,
                              std::string_view action) const {
  // Ownership anywhere on the ancestry chain grants everything.
  if (table.owner == principal || schema.owner == principal ||
      catalog.owner == principal) {
    return true;
  }
  for (const Privilege& grant : privileges) {
    if (grant.principal != principal) continue;
    if (grant.action == action || grant.action == "ALL" ||
        grant.action == "OWN") {
      return true;  // grants inherit downward, so any level suffices
    }
  }
  return false;
}

std::uint64_t RichTableObject::approximateSize() const {
  std::uint64_t size = static_cast<std::uint64_t>(
      table.dataBytes > 0 ? table.dataBytes : 0);
  size += table.name.size() + table.owner.size() + table.format.size() + 48;
  size += schema.name.size() + schema.owner.size() + 32;
  size += catalog.name.size() + catalog.owner.size() + 32;
  for (const Privilege& p : privileges) {
    size += p.principal.size() + p.action.size() + 8;
  }
  for (const Constraint& c : constraints) {
    size += c.kind.size() + c.definition.size() + 8;
  }
  size += lineage.size() * 16;
  for (const auto& [key, value] : properties) {
    size += key.size() + value.size() + 8;
  }
  return size;
}

}  // namespace dcache::richobject
