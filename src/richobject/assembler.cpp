#include "richobject/assembler.hpp"

#include <algorithm>

#include "storage/row.hpp"

namespace dcache::richobject {
namespace {

using storage::Row;
using storage::Value;
using storage::valueToInt;
using storage::valueToString;

[[nodiscard]] std::uint64_t rowsBytes(const storage::Database::QueryResult& r,
                                      const storage::TableSchema& schema) {
  std::uint64_t bytes = 0;
  for (const Row& row : r.rows) {
    bytes += storage::encodedRowSize(schema, row) +
             storage::declaredPayloadBytes(schema, row);
  }
  return bytes;
}

}  // namespace

Assembler::Assembler(CatalogStore& store, AppCosts costs)
    : store_(&store), costs_(costs) {}

Assembler::GetTableResult Assembler::getTable(sim::Node& appNode,
                                              std::uint64_t tableId) {
  GetTableResult result;
  storage::Database& db = store_->db();
  const std::size_t budget =
      std::clamp<std::size_t>(store_->trace().statementsFor(tableId), 1, 8);

  auto issue = [&](std::string_view sql, std::span<const Value> params,
                   const char* table) -> storage::Database::QueryResult {
    appNode.charge(sim::CpuComponent::kRequestPrep, costs_.requestPrepMicros);
    auto r = db.exec(appNode, sql, params);
    ++result.statementsIssued;
    result.latencyMicros += r.latencyMicros;
    if (r.ok) {
      if (const auto* schema = db.schema(table)) {
        result.bytesRead += rowsBytes(r, *schema);
      }
    }
    return r;
  };

  const auto id = static_cast<std::int64_t>(tableId);

  // 1. The table row itself (always issued).
  {
    const Value params[] = {Value{id}};
    auto r = issue("SELECT * FROM tables WHERE id = ?", params, "tables");
    if (!r.ok || r.rows.empty()) return result;  // unknown table
    const Row& row = r.rows.front();
    result.object.table =
        TableInfo{valueToInt(row.at(0)), valueToInt(row.at(1)),
                  valueToString(row.at(2)), valueToString(row.at(3)),
                  valueToString(row.at(4)), valueToInt(row.at(5)),
                  valueToInt(row.at(6))};
  }

  // 2. Parent schema.
  if (result.statementsIssued < budget) {
    const Value params[] = {Value{result.object.table.schemaId}};
    auto r = issue("SELECT * FROM schemas WHERE id = ?", params, "schemas");
    if (r.ok && !r.rows.empty()) {
      const Row& row = r.rows.front();
      result.object.schema =
          SchemaInfo{valueToInt(row.at(0)), valueToInt(row.at(1)),
                     valueToString(row.at(2)), valueToString(row.at(3))};
    }
  }

  // 3. Parent catalog.
  if (result.statementsIssued < budget) {
    const Value params[] = {Value{result.object.schema.catalogId}};
    auto r = issue("SELECT * FROM catalogs WHERE id = ?", params, "catalogs");
    if (r.ok && !r.rows.empty()) {
      const Row& row = r.rows.front();
      result.object.catalog =
          CatalogInfo{valueToInt(row.at(0)), valueToInt(row.at(1)),
                      valueToString(row.at(2)), valueToString(row.at(3))};
    }
  }

  // 4. Table-level privileges.
  if (result.statementsIssued < budget) {
    const Value params[] = {Value{CatalogStore::tableSecurable(tableId)}};
    auto r = issue("SELECT * FROM privileges WHERE securable_id = ?", params,
                   "privileges");
    if (r.ok) {
      for (const Row& row : r.rows) {
        result.object.privileges.push_back(
            Privilege{SecurableLevel::kTable, valueToString(row.at(2)),
                      valueToString(row.at(3))});
      }
    }
  }

  // 5. Inherited catalog-level privileges (downward inheritance source).
  if (result.statementsIssued < budget) {
    const Value params[] = {
        Value{CatalogStore::catalogSecurable(result.object.catalog.id)}};
    auto r = issue("SELECT * FROM privileges WHERE securable_id = ?", params,
                   "privileges");
    if (r.ok) {
      for (const Row& row : r.rows) {
        result.object.privileges.push_back(
            Privilege{SecurableLevel::kCatalog, valueToString(row.at(2)),
                      valueToString(row.at(3))});
      }
    }
  }

  // 6. Constraints.
  if (result.statementsIssued < budget) {
    const Value params[] = {Value{id}};
    auto r = issue("SELECT * FROM constraints WHERE table_id = ?", params,
                   "constraints");
    if (r.ok) {
      for (const Row& row : r.rows) {
        result.object.constraints.push_back(Constraint{
            valueToString(row.at(2)), valueToString(row.at(3))});
      }
    }
  }

  // 7. Lineage.
  if (result.statementsIssued < budget) {
    const Value params[] = {Value{id}};
    auto r =
        issue("SELECT * FROM lineage WHERE table_id = ?", params, "lineage");
    if (r.ok) {
      for (const Row& row : r.rows) {
        result.object.lineage.push_back(
            LineageEdge{valueToInt(row.at(2)), valueToString(row.at(3))});
      }
    }
  }

  // 8. Properties.
  if (result.statementsIssued < budget) {
    const Value params[] = {Value{id}};
    auto r = issue("SELECT * FROM properties WHERE table_id = ?", params,
                   "properties");
    if (r.ok) {
      for (const Row& row : r.rows) {
        result.object.properties.emplace(valueToString(row.at(2)),
                                         valueToString(row.at(3)));
      }
    }
  }

  // Application logic: compose results, resolve inheritance, build the
  // object graph. Charged at the app server — this is the §5.4 point that
  // object caches save not just storage work but app work too.
  appNode.charge(
      sim::CpuComponent::kAppLogic,
      costs_.composePerStatementMicros *
              static_cast<double>(result.statementsIssued) +
          costs_.composePerByteMicros * static_cast<double>(result.bytesRead));

  result.ok = true;
  return result;
}

double Assembler::updateTable(sim::Node& appNode, std::uint64_t tableId) {
  storage::Database& db = store_->db();
  appNode.charge(sim::CpuComponent::kRequestPrep, costs_.requestPrepMicros);
  const auto id = static_cast<std::int64_t>(tableId);
  // Version bump matches how the production service invalidates: rewrite
  // the row (blob and all) with a new version.
  const Value params[] = {Value{id}};
  auto read = db.exec(appNode, "SELECT * FROM tables WHERE id = ?", params);
  double latency = read.latencyMicros;
  if (!read.ok || read.rows.empty()) return latency;
  const Row& row = read.rows.front();

  appNode.charge(sim::CpuComponent::kRequestPrep, costs_.requestPrepMicros);
  const Value updateParams[] = {Value{valueToInt(row.at(6)) + 1}, Value{id}};
  auto write = db.exec(
      appNode, "UPDATE tables SET version = ? WHERE id = ?", updateParams);
  latency += write.latencyMicros;
  return latency;
}

}  // namespace dcache::richobject
