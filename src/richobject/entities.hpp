// Unity-Catalog-like entity model (§2.2, §5.2). The hierarchy is
// metastore -> catalog -> schema -> table; privileges are granted to
// principals on any level and inherit downward; tables additionally carry
// constraints, lineage edges and free-form properties. A getTable request
// materializes all of this into one RichTableObject — the "rich application
// object" whose caching behaviour §5.4 studies.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace dcache::richobject {

struct CatalogInfo {
  std::int64_t id = 0;
  std::int64_t metastoreId = 0;
  std::string name;
  std::string owner;
};

struct SchemaInfo {
  std::int64_t id = 0;
  std::int64_t catalogId = 0;
  std::string name;
  std::string owner;
};

struct TableInfo {
  std::int64_t id = 0;
  std::int64_t schemaId = 0;
  std::string name;
  std::string owner;
  std::string format;      // "delta", "parquet", …
  std::int64_t dataBytes = 0;  // column-metadata blob size (declared bytes)
  std::int64_t version = 0;
};

/// Securable levels for privilege grants, ordered by inheritance depth.
enum class SecurableLevel : std::uint8_t { kCatalog, kSchema, kTable };

struct Privilege {
  SecurableLevel level = SecurableLevel::kTable;
  std::string principal;  // "user42", "group7", …
  std::string action;     // "SELECT", "MODIFY", "OWN", …
};

struct Constraint {
  std::string kind;        // "primary_key", "foreign_key", "check"
  std::string definition;
};

struct LineageEdge {
  std::int64_t upstreamTableId = 0;
  std::string kind;  // "read", "transform"
};

/// The fully materialized rich object a getTable returns.
struct RichTableObject {
  TableInfo table;
  SchemaInfo schema;
  CatalogInfo catalog;
  std::vector<Privilege> privileges;
  std::vector<Constraint> constraints;
  std::vector<LineageEdge> lineage;
  std::map<std::string, std::string> properties;

  /// Application-level permission check with downward inheritance: a grant
  /// at catalog or schema level covers the table; owners of any ancestor
  /// are implicitly allowed.
  [[nodiscard]] bool allowed(std::string_view principal,
                             std::string_view action) const;

  /// Logical size in bytes: the declared blob plus the structured parts.
  [[nodiscard]] std::uint64_t approximateSize() const;
};

[[nodiscard]] std::string_view securableLevelName(SecurableLevel level) noexcept;

}  // namespace dcache::richobject
