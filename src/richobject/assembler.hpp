// getTable: the paper's canonical rich-object read (§5.4). Each request
// expands into up to 8 SQL statements against the normalized catalog
// (table row, parents, privileges, constraints, lineage, properties,
// owner), then application logic composes the RichTableObject. This is the
// query amplification that storage pays for on every uncached read, and
// that a linked object cache eliminates entirely.
#pragma once

#include <cstdint>

#include "richobject/catalog_store.hpp"
#include "richobject/entities.hpp"
#include "sim/node.hpp"

namespace dcache::richobject {

/// Application-side CPU for issuing statements and composing the object.
struct AppCosts {
  double requestPrepMicros = 5.0;      // per SQL statement prepared/issued
  double composePerStatementMicros = 2.0;
  double composePerByteMicros = 0.0004;  // object assembly over results
};

class Assembler {
 public:
  Assembler(CatalogStore& store, AppCosts costs = {});

  struct GetTableResult {
    bool ok = false;
    RichTableObject object;
    std::size_t statementsIssued = 0;
    std::uint64_t bytesRead = 0;
    double latencyMicros = 0.0;
  };

  /// Assemble the rich object for `tableId`, issuing
  /// `trace().statementsFor(tableId)` statements (clamped to [1, 8]) from
  /// `appNode`. Fewer statements means a leaner object (some satellites
  /// skipped) — matching how production read paths grow logic over time.
  GetTableResult getTable(sim::Node& appNode, std::uint64_t tableId);

  /// Update path: bump the table row version and rewrite its blob; single
  /// UPDATE statement plus satellite touch, as the production service does.
  double updateTable(sim::Node& appNode, std::uint64_t tableId);

  [[nodiscard]] const AppCosts& costs() const noexcept { return costs_; }

 private:
  CatalogStore* store_;
  AppCosts costs_;
};

}  // namespace dcache::richobject
