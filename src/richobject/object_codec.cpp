#include "richobject/object_codec.hpp"

#include "rpc/wire.hpp"

namespace dcache::richobject {
namespace {

using rpc::WireDecoder;
using rpc::WireEncoder;

// Field layout (top level):
//  1 table(msg)  2 schema(msg)  3 catalog(msg)  4* privilege(msg)
//  5* constraint(msg)  6* lineage(msg)  7* property(msg)

void encodeTable(WireEncoder& enc, const TableInfo& t) {
  WireEncoder sub;
  sub.writeSint(1, t.id);
  sub.writeSint(2, t.schemaId);
  sub.writeString(3, t.name);
  sub.writeString(4, t.owner);
  sub.writeString(5, t.format);
  sub.writeSint(6, t.dataBytes);
  sub.writeSint(7, t.version);
  enc.writeMessage(1, sub);
}

void encodeSchema(WireEncoder& enc, const SchemaInfo& s) {
  WireEncoder sub;
  sub.writeSint(1, s.id);
  sub.writeSint(2, s.catalogId);
  sub.writeString(3, s.name);
  sub.writeString(4, s.owner);
  enc.writeMessage(2, sub);
}

void encodeCatalog(WireEncoder& enc, const CatalogInfo& c) {
  WireEncoder sub;
  sub.writeSint(1, c.id);
  sub.writeSint(2, c.metastoreId);
  sub.writeString(3, c.name);
  sub.writeString(4, c.owner);
  enc.writeMessage(3, sub);
}

template <typename Fn>
bool decodeNested(WireDecoder& dec, Fn&& fn) {
  const auto bytes = dec.readBytes();
  if (!bytes) return false;
  WireDecoder sub(*bytes);
  return fn(sub);
}

}  // namespace

std::string encodeObject(const RichTableObject& object) {
  WireEncoder enc;
  encodeTable(enc, object.table);
  encodeSchema(enc, object.schema);
  encodeCatalog(enc, object.catalog);
  for (const Privilege& p : object.privileges) {
    WireEncoder sub;
    sub.writeUint(1, static_cast<std::uint64_t>(p.level));
    sub.writeString(2, p.principal);
    sub.writeString(3, p.action);
    enc.writeMessage(4, sub);
  }
  for (const Constraint& c : object.constraints) {
    WireEncoder sub;
    sub.writeString(1, c.kind);
    sub.writeString(2, c.definition);
    enc.writeMessage(5, sub);
  }
  for (const LineageEdge& l : object.lineage) {
    WireEncoder sub;
    sub.writeSint(1, l.upstreamTableId);
    sub.writeString(2, l.kind);
    enc.writeMessage(6, sub);
  }
  for (const auto& [key, value] : object.properties) {
    WireEncoder sub;
    sub.writeString(1, key);
    sub.writeString(2, value);
    enc.writeMessage(7, sub);
  }
  return std::string(enc.view());
}

std::optional<RichTableObject> decodeObject(std::string_view bytes) {
  WireDecoder dec(bytes);
  RichTableObject object;
  while (!dec.done()) {
    const auto tag = dec.readTag();
    if (!tag) return std::nullopt;
    if (tag->type != rpc::WireType::kLengthDelimited) {
      if (!dec.skip(tag->type)) return std::nullopt;
      continue;
    }
    bool ok = true;
    switch (tag->number) {
      case 1:
        ok = decodeNested(dec, [&](WireDecoder& sub) {
          // Field order is fixed by our encoder.
          const auto id = sub.readTag() ? sub.readSint() : std::nullopt;
          const auto schemaId = sub.readTag() ? sub.readSint() : std::nullopt;
          const auto name = sub.readTag() ? sub.readBytes() : std::nullopt;
          const auto owner = sub.readTag() ? sub.readBytes() : std::nullopt;
          const auto format = sub.readTag() ? sub.readBytes() : std::nullopt;
          const auto blob = sub.readTag() ? sub.readSint() : std::nullopt;
          const auto version = sub.readTag() ? sub.readSint() : std::nullopt;
          if (!id || !schemaId || !name || !owner || !format || !blob ||
              !version) {
            return false;
          }
          object.table = TableInfo{*id,          *schemaId,
                                   std::string(*name), std::string(*owner),
                                   std::string(*format), *blob,
                                   *version};
          return true;
        });
        break;
      case 2:
        ok = decodeNested(dec, [&](WireDecoder& sub) {
          const auto id = sub.readTag() ? sub.readSint() : std::nullopt;
          const auto catalogId = sub.readTag() ? sub.readSint() : std::nullopt;
          const auto name = sub.readTag() ? sub.readBytes() : std::nullopt;
          const auto owner = sub.readTag() ? sub.readBytes() : std::nullopt;
          if (!id || !catalogId || !name || !owner) return false;
          object.schema = SchemaInfo{*id, *catalogId, std::string(*name),
                                     std::string(*owner)};
          return true;
        });
        break;
      case 3:
        ok = decodeNested(dec, [&](WireDecoder& sub) {
          const auto id = sub.readTag() ? sub.readSint() : std::nullopt;
          const auto msId = sub.readTag() ? sub.readSint() : std::nullopt;
          const auto name = sub.readTag() ? sub.readBytes() : std::nullopt;
          const auto owner = sub.readTag() ? sub.readBytes() : std::nullopt;
          if (!id || !msId || !name || !owner) return false;
          object.catalog = CatalogInfo{*id, *msId, std::string(*name),
                                       std::string(*owner)};
          return true;
        });
        break;
      case 4:
        ok = decodeNested(dec, [&](WireDecoder& sub) {
          std::optional<std::uint64_t> level;
          if (sub.readTag()) level = sub.readVarint();
          const auto principal = sub.readTag() ? sub.readBytes() : std::nullopt;
          const auto action = sub.readTag() ? sub.readBytes() : std::nullopt;
          if (!level || !principal || !action || *level > 2) return false;
          object.privileges.push_back(
              Privilege{static_cast<SecurableLevel>(*level),
                        std::string(*principal), std::string(*action)});
          return true;
        });
        break;
      case 5:
        ok = decodeNested(dec, [&](WireDecoder& sub) {
          const auto kind = sub.readTag() ? sub.readBytes() : std::nullopt;
          const auto def = sub.readTag() ? sub.readBytes() : std::nullopt;
          if (!kind || !def) return false;
          object.constraints.push_back(
              Constraint{std::string(*kind), std::string(*def)});
          return true;
        });
        break;
      case 6:
        ok = decodeNested(dec, [&](WireDecoder& sub) {
          const auto upstream = sub.readTag() ? sub.readSint() : std::nullopt;
          const auto kind = sub.readTag() ? sub.readBytes() : std::nullopt;
          if (!upstream || !kind) return false;
          object.lineage.push_back(
              LineageEdge{*upstream, std::string(*kind)});
          return true;
        });
        break;
      case 7:
        ok = decodeNested(dec, [&](WireDecoder& sub) {
          const auto key = sub.readTag() ? sub.readBytes() : std::nullopt;
          const auto value = sub.readTag() ? sub.readBytes() : std::nullopt;
          if (!key || !value) return false;
          object.properties.emplace(std::string(*key), std::string(*value));
          return true;
        });
        break;
      default:
        ok = dec.skip(tag->type);
        break;
    }
    if (!ok) return std::nullopt;
  }
  return object;
}

std::uint64_t encodedObjectSize(const RichTableObject& object) {
  // Structured parts measured through the real encoder (objects are small
  // enough that this is cheap), plus the declared blob bytes.
  const std::uint64_t structured = encodeObject(object).size();
  const std::uint64_t blob =
      object.table.dataBytes > 0
          ? static_cast<std::uint64_t>(object.table.dataBytes)
          : 0;
  return structured + blob;
}

}  // namespace dcache::richobject
