// Creates and populates the normalized catalog schema inside the SQL
// database: tables for tables/schemas/catalogs/principals plus the
// per-table satellites (privileges, constraints, lineage, properties).
// Population is deterministic from the workload seed, and each table's
// declared blob bytes are fitted so the assembled rich object's size
// matches UcTraceWorkload::valueSizeFor — the two experiments (Object vs
// KV) then serve byte-identical objects through different paths.
#pragma once

#include <cstdint>
#include <string>

#include "storage/database.hpp"
#include "workload/uc_trace.hpp"

namespace dcache::richobject {

struct CatalogStoreConfig {
  std::uint64_t tablesPerSchema = 50;
  std::uint64_t schemasPerCatalog = 20;
  std::uint64_t catalogsPerMetastore = 10;
  std::uint64_t principals = 200;
  std::uint64_t maxPrivilegesPerTable = 5;
  std::uint64_t maxConstraintsPerTable = 3;
  std::uint64_t maxLineagePerTable = 4;
  std::uint64_t maxPropertiesPerTable = 4;
  std::uint64_t seed = 17;
};

class CatalogStore {
 public:
  CatalogStore(storage::Database& db, const workload::UcTraceWorkload& trace,
               CatalogStoreConfig config = {});

  /// DDL: create all catalog tables (idempotent).
  void createSchemas();

  /// Bulk-load the dataset (no cost accounting — experiment setup).
  void populate();

  [[nodiscard]] std::uint64_t tableCount() const noexcept {
    return trace_->keyCount();
  }
  [[nodiscard]] std::int64_t schemaIdFor(std::uint64_t tableId) const noexcept;
  [[nodiscard]] std::int64_t catalogIdFor(std::int64_t schemaId) const noexcept;
  [[nodiscard]] const CatalogStoreConfig& config() const noexcept {
    return config_;
  }
  [[nodiscard]] storage::Database& db() noexcept { return *db_; }
  [[nodiscard]] const workload::UcTraceWorkload& trace() const noexcept {
    return *trace_;
  }

  /// Deterministic satellite-row counts for a table (shared with the
  /// assembler's size expectations and the tests).
  [[nodiscard]] std::uint64_t privilegeCount(std::uint64_t tableId) const;
  [[nodiscard]] std::uint64_t constraintCount(std::uint64_t tableId) const;
  [[nodiscard]] std::uint64_t lineageCount(std::uint64_t tableId) const;
  [[nodiscard]] std::uint64_t propertyCount(std::uint64_t tableId) const;

  /// Securable-id strings used in the privileges table.
  [[nodiscard]] static std::string tableSecurable(std::uint64_t tableId);
  [[nodiscard]] static std::string schemaSecurable(std::int64_t schemaId);
  [[nodiscard]] static std::string catalogSecurable(std::int64_t catalogId);

 private:
  [[nodiscard]] std::uint64_t satelliteCount(std::uint64_t tableId,
                                             std::uint64_t salt,
                                             std::uint64_t maxCount) const;

  storage::Database* db_;
  const workload::UcTraceWorkload* trace_;
  CatalogStoreConfig config_;
};

}  // namespace dcache::richobject
