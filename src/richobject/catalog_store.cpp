#include "richobject/catalog_store.hpp"

#include <array>

#include "util/hash.hpp"
#include "util/rng.hpp"

namespace dcache::richobject {
namespace {

using storage::Column;
using storage::ColumnType;
using storage::Row;
using storage::TableSchema;
using storage::Value;

constexpr std::array<std::string_view, 4> kActions = {"SELECT", "MODIFY",
                                                      "ALL", "OWN"};
constexpr std::array<std::string_view, 3> kConstraintKinds = {
    "primary_key", "foreign_key", "check"};
constexpr std::array<std::string_view, 2> kLineageKinds = {"read",
                                                           "transform"};
constexpr std::array<std::string_view, 2> kFormats = {"delta", "parquet"};

}  // namespace

CatalogStore::CatalogStore(storage::Database& db,
                           const workload::UcTraceWorkload& trace,
                           CatalogStoreConfig config)
    : db_(&db), trace_(&trace), config_(config) {}

std::int64_t CatalogStore::schemaIdFor(std::uint64_t tableId) const noexcept {
  return static_cast<std::int64_t>(tableId / config_.tablesPerSchema);
}

std::int64_t CatalogStore::catalogIdFor(std::int64_t schemaId) const noexcept {
  return schemaId / static_cast<std::int64_t>(config_.schemasPerCatalog);
}

std::string CatalogStore::tableSecurable(std::uint64_t tableId) {
  return "tbl" + std::to_string(tableId);
}
std::string CatalogStore::schemaSecurable(std::int64_t schemaId) {
  return "sch" + std::to_string(schemaId);
}
std::string CatalogStore::catalogSecurable(std::int64_t catalogId) {
  return "cat" + std::to_string(catalogId);
}

std::uint64_t CatalogStore::satelliteCount(std::uint64_t tableId,
                                           std::uint64_t salt,
                                           std::uint64_t maxCount) const {
  if (maxCount == 0) return 0;
  const std::uint64_t h =
      util::hashCombine(util::hashU64(tableId ^ config_.seed), salt);
  return h % (maxCount + 1);
}

std::uint64_t CatalogStore::privilegeCount(std::uint64_t tableId) const {
  return 1 + satelliteCount(tableId, 1, config_.maxPrivilegesPerTable - 1);
}
std::uint64_t CatalogStore::constraintCount(std::uint64_t tableId) const {
  return satelliteCount(tableId, 2, config_.maxConstraintsPerTable);
}
std::uint64_t CatalogStore::lineageCount(std::uint64_t tableId) const {
  return satelliteCount(tableId, 3, config_.maxLineagePerTable);
}
std::uint64_t CatalogStore::propertyCount(std::uint64_t tableId) const {
  return satelliteCount(tableId, 4, config_.maxPropertiesPerTable);
}

void CatalogStore::createSchemas() {
  TableSchema tables(
      "tables",
      {Column{"id", ColumnType::kInt}, Column{"schema_id", ColumnType::kInt},
       Column{"name", ColumnType::kString},
       Column{"owner", ColumnType::kString},
       Column{"format", ColumnType::kString},
       Column{"data_bytes", ColumnType::kInt},
       Column{"version", ColumnType::kInt}},
      0, {1});
  tables.withPayloadSizeColumn("data_bytes");
  db_->createTable(std::move(tables));

  db_->createTable(TableSchema(
      "schemas",
      {Column{"id", ColumnType::kInt}, Column{"catalog_id", ColumnType::kInt},
       Column{"name", ColumnType::kString},
       Column{"owner", ColumnType::kString}},
      0, {1}));

  db_->createTable(TableSchema(
      "catalogs",
      {Column{"id", ColumnType::kInt},
       Column{"metastore_id", ColumnType::kInt},
       Column{"name", ColumnType::kString},
       Column{"owner", ColumnType::kString}},
      0, {1}));

  db_->createTable(TableSchema(
      "principals",
      {Column{"id", ColumnType::kInt}, Column{"name", ColumnType::kString},
       Column{"kind", ColumnType::kString}},
      0));

  db_->createTable(TableSchema(
      "privileges",
      {Column{"id", ColumnType::kInt},
       Column{"securable_id", ColumnType::kString},
       Column{"principal", ColumnType::kString},
       Column{"action", ColumnType::kString}},
      0, {1}));

  db_->createTable(TableSchema(
      "constraints",
      {Column{"id", ColumnType::kInt}, Column{"table_id", ColumnType::kInt},
       Column{"kind", ColumnType::kString},
       Column{"definition", ColumnType::kString}},
      0, {1}));

  db_->createTable(TableSchema(
      "lineage",
      {Column{"id", ColumnType::kInt}, Column{"table_id", ColumnType::kInt},
       Column{"upstream_id", ColumnType::kInt},
       Column{"kind", ColumnType::kString}},
      0, {1}));

  db_->createTable(TableSchema(
      "properties",
      {Column{"id", ColumnType::kInt}, Column{"table_id", ColumnType::kInt},
       Column{"key", ColumnType::kString},
       Column{"value", ColumnType::kString}},
      0, {1}));
}

void CatalogStore::populate() {
  util::Pcg32 rng(config_.seed, 5);
  const std::uint64_t numTables = trace_->keyCount();

  auto principalName = [&](std::uint64_t i) {
    return "user" + std::to_string(i % config_.principals);
  };

  // Principals.
  for (std::uint64_t p = 0; p < config_.principals; ++p) {
    db_->loadRow("principals",
                 Row{{static_cast<std::int64_t>(p), principalName(p),
                      std::string(p % 8 == 0 ? "group" : "user")}});
  }

  // Hierarchy: catalogs and schemas covering all tables.
  const std::int64_t numSchemas =
      schemaIdFor(numTables == 0 ? 0 : numTables - 1) + 1;
  const std::int64_t numCatalogs = catalogIdFor(numSchemas - 1) + 1;
  for (std::int64_t c = 0; c < numCatalogs; ++c) {
    db_->loadRow("catalogs", Row{{c, std::int64_t{0},
                                  "catalog_" + std::to_string(c),
                                  principalName(static_cast<std::uint64_t>(c))}});
    // Catalog-level grants: these are what downward inheritance resolves.
    db_->loadRow("privileges",
                 Row{{static_cast<std::int64_t>(1000000 + c),
                      catalogSecurable(c), principalName(rng.next() % 64),
                      std::string("SELECT")}});
  }
  for (std::int64_t s = 0; s < numSchemas; ++s) {
    db_->loadRow("schemas",
                 Row{{s, catalogIdFor(s), "schema_" + std::to_string(s),
                      principalName(static_cast<std::uint64_t>(s) % 128)}});
  }

  // Tables and satellites.
  std::int64_t privId = 0;
  std::int64_t consId = 0;
  std::int64_t linId = 0;
  std::int64_t propId = 0;
  for (std::uint64_t t = 0; t < numTables; ++t) {
    const std::uint64_t objectSize = trace_->valueSizeFor(t);
    // The blob carries whatever the structured satellites don't: target the
    // workload's object size so Object and KV variants serve equal bytes.
    const std::uint64_t structured =
        privilegeCount(t) * 32 + constraintCount(t) * 48 +
        lineageCount(t) * 24 + propertyCount(t) * 40 + 160;
    const std::int64_t blob =
        objectSize > structured
            ? static_cast<std::int64_t>(objectSize - structured)
            : 0;

    db_->loadRow(
        "tables",
        Row{{static_cast<std::int64_t>(t), schemaIdFor(t),
             "table_" + std::to_string(t), principalName(rng.next() % 256),
             std::string(kFormats[t % kFormats.size()]), blob,
             std::int64_t{1}}});

    const std::string securable = tableSecurable(t);
    for (std::uint64_t i = 0; i < privilegeCount(t); ++i) {
      db_->loadRow("privileges",
                   Row{{privId++, securable, principalName(rng.next() % 256),
                        std::string(kActions[rng.next() % kActions.size()])}});
    }
    for (std::uint64_t i = 0; i < constraintCount(t); ++i) {
      db_->loadRow(
          "constraints",
          Row{{consId++, static_cast<std::int64_t>(t),
               std::string(kConstraintKinds[i % kConstraintKinds.size()]),
               "cols(" + std::to_string(rng.next() % 12) + ")"}});
    }
    for (std::uint64_t i = 0; i < lineageCount(t); ++i) {
      db_->loadRow("lineage",
                   Row{{linId++, static_cast<std::int64_t>(t),
                        static_cast<std::int64_t>(rng.next() % numTables),
                        std::string(kLineageKinds[i % kLineageKinds.size()])}});
    }
    for (std::uint64_t i = 0; i < propertyCount(t); ++i) {
      db_->loadRow("properties",
                   Row{{propId++, static_cast<std::int64_t>(t),
                        "prop" + std::to_string(i),
                        "value" + std::to_string(rng.next() % 1000)}});
    }
  }
}

}  // namespace dcache::richobject
