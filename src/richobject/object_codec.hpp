// Wire codec for RichTableObject. A *remote* cache has to serialize the
// whole object graph on every hit — this codec is that cost made concrete
// (and testable). A linked cache hands out the in-process object and never
// runs it; the encodedObjectSize() is what the cost model charges when the
// object does cross a process boundary.
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "richobject/entities.hpp"

namespace dcache::richobject {

/// Encode the structured parts for real; the declared blob (dataBytes) is
/// represented by its size, exactly as the storage layer stores it.
[[nodiscard]] std::string encodeObject(const RichTableObject& object);

[[nodiscard]] std::optional<RichTableObject> decodeObject(
    std::string_view bytes);

/// Bytes a remote-cache transfer of this object pays: real encoding of the
/// structured parts plus the declared blob bytes.
[[nodiscard]] std::uint64_t encodedObjectSize(const RichTableObject& object);

}  // namespace dcache::richobject
