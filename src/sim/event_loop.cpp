#include "sim/event_loop.hpp"

#include <memory>

namespace dcache::sim {

std::uint64_t EventLoop::schedule(std::uint64_t delayMicros, Action action) {
  auto event = std::make_unique<Event>();
  event->time = now_ + delayMicros;
  event->seq = nextSeq_++;
  event->id = nextId_++;
  event->action = std::move(action);
  queue_.push(event.get());
  storage_.push_back(std::move(event));
  ++live_;
  return storage_.back()->id;
}

bool EventLoop::cancel(std::uint64_t id) {
  // Linear scan is fine: scenario scripts schedule tens of events.
  for (auto& event : storage_) {
    if (event->id == id && !event->cancelled && event->action) {
      event->cancelled = true;
      --live_;
      return true;
    }
  }
  return false;
}

bool EventLoop::popAndRunOne() {
  while (!queue_.empty()) {
    Event* event = queue_.top();
    queue_.pop();
    if (event->cancelled || !event->action) continue;
    now_ = event->time;
    Action action = std::move(event->action);
    event->action = nullptr;
    --live_;
    action();
    return true;
  }
  return false;
}

std::size_t EventLoop::run() {
  std::size_t executed = 0;
  while (popAndRunOne()) ++executed;
  storage_.clear();
  return executed;
}

std::size_t EventLoop::runUntil(std::uint64_t deadlineMicros) {
  std::size_t executed = 0;
  while (!queue_.empty()) {
    const Event* next = queue_.top();
    if (!next->cancelled && next->time > deadlineMicros) break;
    if (popAndRunOne()) ++executed;
  }
  return executed;
}

}  // namespace dcache::sim
