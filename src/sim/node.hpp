// A simulated machine (pod). Nodes belong to a tier (application, remote
// cache, SQL front-end, KV storage) and carry CPU and memory meters that the
// cost model later converts into a monthly bill.
#pragma once

#include <cstdint>
#include <string>

#include "sim/queue.hpp"
#include "sim/resource.hpp"
#include "sim/trace_hook.hpp"

namespace dcache::sim {

/// The role a node plays in the deployment. Tier identity is what the
/// paper's cost breakdowns (app vs cache vs storage) are keyed on.
enum class TierKind : std::uint8_t {
  kClient,       // load generators; their cost is out of scope, tracked anyway
  kAppServer,    // application servers (and linked caches living inside them)
  kRemoteCache,  // memcached/redis-like remote cache pods
  kSqlFrontend,  // TiDB-like stateless SQL layer
  kKvStorage,    // TiKV-like replicated storage nodes
  kFarMemory,    // disaggregated memory pool reached by one-sided reads
  kCount,
};

[[nodiscard]] std::string_view tierKindName(TierKind kind) noexcept;

class Node {
 public:
  Node(std::string name, TierKind tier) : name_(std::move(name)), tier_(tier) {}

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] TierKind tier() const noexcept { return tier_; }

  [[nodiscard]] CpuMeter& cpu() noexcept { return cpu_; }
  [[nodiscard]] const CpuMeter& cpu() const noexcept { return cpu_; }
  [[nodiscard]] MemMeter& mem() noexcept { return mem_; }
  [[nodiscard]] const MemMeter& mem() const noexcept { return mem_; }

  /// Convenience: charge CPU microseconds to this node. Every unit of CPU
  /// the simulator accounts anywhere passes through here, so the active
  /// trace sink (if any) sees charges exactly once — the invariant the
  /// CPU-conservation property tests pin down. A slow-node gray fault
  /// (sim/fault.hpp) stretches every charge by its factor: the same work
  /// takes more core-microseconds, which is exactly how a throttled VM
  /// deepens its queue and inflates its bill. The factor is 1.0 outside a
  /// slow window, so the untaken branch keeps the arithmetic bit-identical
  /// to the pre-gray-fault build.
  void charge(CpuComponent component, double micros) noexcept {
    if (slowFactor_ != 1.0) [[unlikely]] micros *= slowFactor_;
    cpu_.charge(component, micros);
    if (!backgroundWork_) [[likely]] queue_.addWork(micros);
    if (TraceSink* sink = tlsTraceSink) sink->onCpuCharge(*this, component, micros);
  }

  /// Background-QoS mode (membership handoff, rebuild streams): while set,
  /// charge() still meters every microsecond — the bill, the CPU breakdown
  /// and the trace-conservation tests all see the work — but nothing lands
  /// in the foreground queue. This is the deprioritized bulk class real
  /// systems run migrations under: it burns cores the bill pays for without
  /// making foreground requests wait behind a 256 KB batch transfer.
  [[nodiscard]] bool backgroundWork() const noexcept { return backgroundWork_; }
  void setBackgroundWork(bool background) noexcept {
    backgroundWork_ = background;
  }

  /// Capacity/queue model (overload subsystem). Disabled — zero backlog,
  /// zero wait, one dead branch in charge() — unless the deployment
  /// configures a finite capacity.
  [[nodiscard]] NodeQueue& queue() noexcept { return queue_; }
  [[nodiscard]] const NodeQueue& queue() const noexcept { return queue_; }

  /// Liveness, driven by the fault-injection subsystem (sim/fault.hpp). A
  /// down node cannot be reached over the network: RPCs to it time out at
  /// the caller. Meters are preserved across a crash — the bill covers the
  /// whole timeline — but volatile state (caches) is the owner's job to
  /// drop on crash/restart.
  [[nodiscard]] bool isUp() const noexcept { return up_; }
  void setUp(bool up) noexcept {
    up_ = up;
    if (!up) queue_.clear();  // the crashed process takes its run queue
  }

  /// Gray-fault state (sim/fault.hpp). Unlike setUp(false) the node keeps
  /// answering — that is the whole problem: health checks pass while the
  /// node quietly drags the fleet's tail.
  [[nodiscard]] double slowFactor() const noexcept { return slowFactor_; }
  void setSlowFactor(double factor) noexcept {
    slowFactor_ = factor < 1.0 ? 1.0 : factor;
  }
  /// Per-leg message-drop probability while the node is flaky (the seeded
  /// draw itself lives in the RPC channel, which owns the fault RNG).
  [[nodiscard]] double flakyProbability() const noexcept {
    return flakyProbability_;
  }
  void setFlakyProbability(double p) noexcept {
    flakyProbability_ = p < 0.0 ? 0.0 : (p > 1.0 ? 1.0 : p);
  }

 private:
  std::string name_;
  TierKind tier_;
  CpuMeter cpu_;
  MemMeter mem_;
  NodeQueue queue_;
  bool up_ = true;
  bool backgroundWork_ = false;
  double slowFactor_ = 1.0;
  double flakyProbability_ = 0.0;
};

}  // namespace dcache::sim
