// A simulated machine (pod). Nodes belong to a tier (application, remote
// cache, SQL front-end, KV storage) and carry CPU and memory meters that the
// cost model later converts into a monthly bill.
#pragma once

#include <cstdint>
#include <string>

#include "sim/resource.hpp"
#include "sim/trace_hook.hpp"

namespace dcache::sim {

/// The role a node plays in the deployment. Tier identity is what the
/// paper's cost breakdowns (app vs cache vs storage) are keyed on.
enum class TierKind : std::uint8_t {
  kClient,       // load generators; their cost is out of scope, tracked anyway
  kAppServer,    // application servers (and linked caches living inside them)
  kRemoteCache,  // memcached/redis-like remote cache pods
  kSqlFrontend,  // TiDB-like stateless SQL layer
  kKvStorage,    // TiKV-like replicated storage nodes
  kCount,
};

[[nodiscard]] std::string_view tierKindName(TierKind kind) noexcept;

class Node {
 public:
  Node(std::string name, TierKind tier) : name_(std::move(name)), tier_(tier) {}

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] TierKind tier() const noexcept { return tier_; }

  [[nodiscard]] CpuMeter& cpu() noexcept { return cpu_; }
  [[nodiscard]] const CpuMeter& cpu() const noexcept { return cpu_; }
  [[nodiscard]] MemMeter& mem() noexcept { return mem_; }
  [[nodiscard]] const MemMeter& mem() const noexcept { return mem_; }

  /// Convenience: charge CPU microseconds to this node. Every unit of CPU
  /// the simulator accounts anywhere passes through here, so the active
  /// trace sink (if any) sees charges exactly once — the invariant the
  /// CPU-conservation property tests pin down.
  void charge(CpuComponent component, double micros) noexcept {
    cpu_.charge(component, micros);
    if (TraceSink* sink = tlsTraceSink) sink->onCpuCharge(*this, component, micros);
  }

  /// Liveness, driven by the fault-injection subsystem (sim/fault.hpp). A
  /// down node cannot be reached over the network: RPCs to it time out at
  /// the caller. Meters are preserved across a crash — the bill covers the
  /// whole timeline — but volatile state (caches) is the owner's job to
  /// drop on crash/restart.
  [[nodiscard]] bool isUp() const noexcept { return up_; }
  void setUp(bool up) noexcept { up_ = up; }

 private:
  std::string name_;
  TierKind tier_;
  CpuMeter cpu_;
  MemMeter mem_;
  bool up_ = true;
};

}  // namespace dcache::sim
