#include "sim/tier.hpp"

namespace dcache::sim {

Tier::Tier(std::string name, TierKind kind, std::size_t nodeCount)
    : name_(std::move(name)), kind_(kind) {
  if (nodeCount == 0) nodeCount = 1;
  nodes_.reserve(nodeCount);
  for (std::size_t i = 0; i < nodeCount; ++i) {
    nodes_.push_back(
        std::make_unique<Node>(name_ + "-" + std::to_string(i), kind_));
  }
}

std::size_t Tier::upCount() const noexcept {
  std::size_t up = 0;
  for (const auto& n : nodes_) up += n->isUp() ? 1 : 0;
  return up;
}

void Tier::provisionMemoryPerNode(util::Bytes perNode) noexcept {
  for (auto& n : nodes_) n->mem().provision(perNode);
}

CpuMeter Tier::aggregateCpu() const noexcept {
  CpuMeter total;
  for (const auto& n : nodes_) total.merge(n->cpu());
  return total;
}

util::Bytes Tier::totalProvisionedMemory() const noexcept {
  util::Bytes total;
  for (const auto& n : nodes_) total += n->mem().provisioned();
  return total;
}

util::Bytes Tier::totalPeakMemory() const noexcept {
  util::Bytes total;
  for (const auto& n : nodes_) total += n->mem().peak();
  return total;
}

void Tier::clearMeters() noexcept {
  for (auto& n : nodes_) n->cpu().clear();
}

}  // namespace dcache::sim
