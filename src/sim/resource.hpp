// Component-tagged resource accounting. Every unit of work performed
// anywhere in the simulated deployment is charged to exactly one
// (node, component) pair, in microseconds of vCPU time. The per-component
// breakdown is what lets the benches reproduce the paper's Figure 6 CPU
// decomposition, and the conservation property (sum of components == node
// total) is asserted by the property tests.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

#include "util/bytes.hpp"

namespace dcache::sim {

/// Where a unit of CPU work was spent. Mirrors the cost components the
/// paper's Section 5.3 breakdown talks about.
enum class CpuComponent : std::uint8_t {
  kRpcFraming,        // request/response framing, connection handling
  kSerialization,     // encoding values/messages to bytes
  kDeserialization,   // decoding bytes to values/messages
  kConnectionMgmt,    // SQL front-end connection/session management
  kQueryParse,        // SQL text -> IR
  kQueryPlan,         // IR -> execution plan
  kKvExecution,       // KV lookups/scans/writes in the storage engine
  kReplication,       // Raft append/replication work
  kLeaseValidation,   // Raft lease checks for consistent reads
  kDiskIo,            // block reads that miss the block cache
  kCacheOp,           // local cache probe/insert/evict work
  kAppLogic,          // application-level object assembly / business logic
  kRequestPrep,       // preparing and issuing requests to storage/cache
  kClientComm,        // communication between end clients and app servers
  kFarMemAccess,      // one-sided far-memory access: issue + per-byte pull
  kCount,
};

inline constexpr std::size_t kNumCpuComponents =
    static_cast<std::size_t>(CpuComponent::kCount);

[[nodiscard]] std::string_view cpuComponentName(CpuComponent c) noexcept;

/// Accumulates CPU microseconds per component.
class CpuMeter {
 public:
  // Inline: called once per simulated work item (hundreds of millions of
  // times per bench run), where the out-of-line call was measurable.
  void charge(CpuComponent component, double micros) noexcept {
    if (micros <= 0.0) return;
    byComponent_[static_cast<std::size_t>(component)] += micros;
    total_ += micros;
  }

  [[nodiscard]] double totalMicros() const noexcept { return total_; }
  [[nodiscard]] double micros(CpuComponent component) const noexcept {
    return byComponent_[static_cast<std::size_t>(component)];
  }
  /// CPU-seconds, the unit the cost model converts to cores.
  [[nodiscard]] double totalSeconds() const noexcept { return total_ / 1e6; }

  void merge(const CpuMeter& other) noexcept;
  void clear() noexcept;

 private:
  std::array<double, kNumCpuComponents> byComponent_{};
  double total_ = 0.0;
};

/// Tracks provisioned and high-watermark used memory for one node.
class MemMeter {
 public:
  void provision(util::Bytes capacity) noexcept { provisioned_ = capacity; }
  void use(util::Bytes used) noexcept {
    used_ = used;
    if (used > peak_) peak_ = used;
  }

  [[nodiscard]] util::Bytes provisioned() const noexcept { return provisioned_; }
  [[nodiscard]] util::Bytes used() const noexcept { return used_; }
  [[nodiscard]] util::Bytes peak() const noexcept { return peak_; }

 private:
  util::Bytes provisioned_;
  util::Bytes used_;
  util::Bytes peak_;
};

}  // namespace dcache::sim
