// Network cost model. A message transfer charges CPU at both endpoints
// (framing + per-byte work) and contributes propagation/transmission delay
// to the request latency. The CPU side is what feeds the paper's cost
// analysis; latency is tracked so examples can also report the latency
// benefit the paper sets aside.
#pragma once

#include <array>

#include "sim/node.hpp"

namespace dcache::sim {

struct NetworkParams {
  // CPU charged at each endpoint per message (syscalls, framing, interrupt
  // handling). Modeled on a tuned gRPC path.
  double perMessageCpuMicros = 10.0;
  // CPU per payload byte at each endpoint (copies, checksums).
  double perByteCpuMicros = 0.0004;  // 0.4 ns/byte
  // One-way propagation within a datacenter.
  double oneWayLatencyMicros = 25.0;
  // Transmission: 10 Gbps ≈ 0.8 ns/byte.
  double perByteLatencyMicros = 0.0008;
};

class NetworkModel {
 public:
  NetworkModel() = default;
  explicit NetworkModel(NetworkParams params) noexcept : params_(params) {}

  /// Transfer `payloadBytes` from `src` to `dst`. Charges CPU at both ends
  /// under `component` and returns the one-way latency in microseconds.
  /// In-process transfers (src == dst) are free: a linked cache hit must not
  /// pay network cost — that is the architectural point being measured.
  /// Inline: every simulated RPC leg lands here (tens of millions of calls
  /// per bench run).
  double transfer(Node& src, Node& dst, std::uint64_t payloadBytes,
                  CpuComponent component) noexcept {
    if (&src == &dst) return 0.0;  // in-process handoff

    const double perEnd =
        params_.perMessageCpuMicros +
        params_.perByteCpuMicros * static_cast<double>(payloadBytes);
    src.charge(component, perEnd);
    dst.charge(component, perEnd);

    ++messages_;
    bytes_ += payloadBytes;
    if (TraceSink* sink = activeTraceSink()) sink->onBytesMoved(payloadBytes);

    double latency =
        params_.oneWayLatencyMicros +
        params_.perByteLatencyMicros * static_cast<double>(payloadBytes);
    if (degraded_) latency *= latencyFactor_;
    if (anySlowNodes_) [[unlikely]] {
      // A slow node drags every leg it touches: its NIC, kernel and
      // userspace are all running on the throttled clock.
      const double s = src.slowFactor() > dst.slowFactor() ? src.slowFactor()
                                                           : dst.slowFactor();
      if (s != 1.0) latency *= s;
    }
    return latency;
  }

  [[nodiscard]] const NetworkParams& params() const noexcept { return params_; }

  /// Open a degradation window (fault injection): latency is scaled by
  /// `latencyFactor` and each message leg is dropped with
  /// `dropProbability` (the drop decision itself is made by the RPC layer,
  /// which owns the seeded RNG and the retry policy).
  void setDegradation(double latencyFactor, double dropProbability) noexcept {
    latencyFactor_ = latencyFactor >= 0.0 ? latencyFactor : 1.0;
    dropProbability_ =
        dropProbability < 0.0 ? 0.0
                              : (dropProbability > 1.0 ? 1.0 : dropProbability);
    degraded_ = latencyFactor_ != 1.0 || dropProbability_ > 0.0;
  }
  void clearDegradation() noexcept {
    latencyFactor_ = 1.0;
    dropProbability_ = 0.0;
    degraded_ = false;
  }
  [[nodiscard]] bool degraded() const noexcept { return degraded_; }
  [[nodiscard]] double dropProbability() const noexcept {
    return dropProbability_;
  }
  [[nodiscard]] double latencyFactor() const noexcept { return latencyFactor_; }

  /// Partial (asymmetric) partition: messages from `from` to `to` are lost
  /// while the reverse direction still delivers — the classic gray failure
  /// where A can't reach B but B's replies to everyone else look healthy.
  /// The RPC channel consults linkCut() per leg; the drop itself is
  /// deterministic (no RNG draw).
  void cutLink(TierKind from, TierKind to) noexcept {
    linkCut_[static_cast<std::size_t>(from)][static_cast<std::size_t>(to)] =
        true;
    anyLinkCut_ = true;
  }
  void healLink(TierKind from, TierKind to) noexcept {
    linkCut_[static_cast<std::size_t>(from)][static_cast<std::size_t>(to)] =
        false;
    anyLinkCut_ = false;
    for (const auto& row : linkCut_) {
      for (const bool cut : row) {
        if (cut) {
          anyLinkCut_ = true;
          return;
        }
      }
    }
  }
  [[nodiscard]] bool linkCut(TierKind from, TierKind to) const noexcept {
    return anyLinkCut_ &&
           linkCut_[static_cast<std::size_t>(from)]
                   [static_cast<std::size_t>(to)];
  }

  /// Armed by the deployment while any slow-node window is open, so the
  /// transfer hot path pays one bool test — not two Node loads — when no
  /// gray fault is active.
  void setAnySlowNodes(bool any) noexcept { anySlowNodes_ = any; }
  [[nodiscard]] bool anySlowNodes() const noexcept { return anySlowNodes_; }

  /// Charge only the sending side of a transfer — the leg was lost (link
  /// drop) or the receiver is down; the sender still did the syscall and
  /// copy work. Returns the latency the sender spent putting the bytes on
  /// the wire (the wait for the timeout is the RPC layer's to add).
  double chargeLostLeg(Node& src, std::uint64_t payloadBytes,
                       CpuComponent component) noexcept;

  /// Account bytes that crossed the fabric with no endpoint CPU charge —
  /// a one-sided read's data movement: the initiator's NIC pulls straight
  /// out of the target's memory, no kernel or userspace on either side.
  /// The initiator's own (small) issue/completion CPU is the RPC layer's
  /// to charge; here only the wire counters and the trace byte feed move.
  void noteBytes(std::uint64_t payloadBytes) noexcept {
    ++messages_;
    bytes_ += payloadBytes;
    if (TraceSink* sink = activeTraceSink()) sink->onBytesMoved(payloadBytes);
  }

  [[nodiscard]] std::uint64_t messagesSent() const noexcept { return messages_; }
  [[nodiscard]] std::uint64_t bytesSent() const noexcept { return bytes_; }
  void clearCounters() noexcept {
    messages_ = 0;
    bytes_ = 0;
  }

 private:
  static constexpr std::size_t kTiers =
      static_cast<std::size_t>(TierKind::kCount);

  NetworkParams params_{};
  std::uint64_t messages_ = 0;
  std::uint64_t bytes_ = 0;
  bool degraded_ = false;
  double latencyFactor_ = 1.0;
  double dropProbability_ = 0.0;
  bool anySlowNodes_ = false;
  bool anyLinkCut_ = false;
  std::array<std::array<bool, kTiers>, kTiers> linkCut_{};
};

}  // namespace dcache::sim
