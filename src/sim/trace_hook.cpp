#include "sim/trace_hook.hpp"

namespace dcache::sim {

thread_local constinit TraceSink* tlsTraceSink = nullptr;

TraceSink::~TraceSink() = default;

std::string_view spanOutcomeName(SpanOutcome outcome) noexcept {
  switch (outcome) {
    case SpanOutcome::kOk: return "ok";
    case SpanOutcome::kHit: return "hit";
    case SpanOutcome::kMiss: return "miss";
    case SpanOutcome::kRetry: return "retry";
    case SpanOutcome::kTimeout: return "timeout";
    case SpanOutcome::kDegraded: return "degraded";
    case SpanOutcome::kCoalesced: return "coalesced";
    case SpanOutcome::kFailed: return "failed";
    case SpanOutcome::kShed: return "shed";
    case SpanOutcome::kQueueTimeout: return "queue_timeout";
    case SpanOutcome::kHedged: return "hedged";
    case SpanOutcome::kReplicaFallback: return "replica_fallback";
    case SpanOutcome::kCount: break;
  }
  return "?";
}

}  // namespace dcache::sim
