#include "sim/node.hpp"

namespace dcache::sim {

std::string_view tierKindName(TierKind kind) noexcept {
  switch (kind) {
    case TierKind::kClient: return "client";
    case TierKind::kAppServer: return "app_server";
    case TierKind::kRemoteCache: return "remote_cache";
    case TierKind::kSqlFrontend: return "sql_frontend";
    case TierKind::kKvStorage: return "kv_storage";
    case TierKind::kFarMemory: return "far_memory";
    case TierKind::kCount: break;
  }
  return "unknown";
}

}  // namespace dcache::sim
