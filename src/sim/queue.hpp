// Per-node capacity and queueing (the overload model). A node drains CPU
// work at a finite rate — `capacityMicrosPerSec` microseconds of metered
// CPU per simulated second — and everything Node::charge accounts lands in
// a fluid backlog. A request arriving at a busy node therefore waits
// backlog/rate before it is served, which is the queueing-delay half of its
// latency; a backlog deeper than `maxWaitMicros` means the node's bounded
// queue is full and new arrivals are rejected outright.
//
// The model is deliberately fluid (a scalar backlog in µs of work, drained
// deterministically against the sim clock) rather than a discrete event
// queue: it composes with the existing synchronous serve() loop, costs one
// branch when disabled, and stays byte-for-byte deterministic. Capacity 0
// disables the queue entirely — the legacy infinite-capacity behaviour, and
// the default everywhere.
#pragma once

#include <cstdint>

namespace dcache::sim {

struct QueueParams {
  /// Microseconds of CPU work the node can serve per simulated second.
  /// 0 = unlimited (queue disabled; nothing is tracked or charged).
  double capacityMicrosPerSec = 0.0;
  /// Queue bound, expressed as the maximum queueing delay an arriving
  /// request may face; a deeper backlog rejects new arrivals (load has to
  /// go somewhere cheaper than an unbounded queue — that is the metastable
  /// failure the defenses exist to contain).
  double maxWaitMicros = 100000.0;
};

class NodeQueue {
 public:
  void configure(QueueParams params) noexcept { params_ = params; }
  [[nodiscard]] bool enabled() const noexcept {
    return params_.capacityMicrosPerSec > 0.0;
  }
  [[nodiscard]] const QueueParams& params() const noexcept { return params_; }

  /// Drain the backlog against the sim clock (monotone; stale calls no-op).
  void drainTo(std::uint64_t nowMicros) noexcept {
    if (!enabled() || nowMicros <= lastDrainMicros_) return;
    const double elapsedSec =
        static_cast<double>(nowMicros - lastDrainMicros_) * 1e-6;
    backlogMicros_ -= elapsedSec * params_.capacityMicrosPerSec;
    if (backlogMicros_ < 0.0) backlogMicros_ = 0.0;
    lastDrainMicros_ = nowMicros;
  }

  /// Enqueue work (fed by Node::charge, so the backlog sees exactly the
  /// CPU the meters and the bill see).
  void addWork(double micros) noexcept {
    if (enabled()) backlogMicros_ += micros;
  }

  /// Queueing delay a request arriving now would face.
  [[nodiscard]] double waitMicros() const noexcept {
    return enabled() ? backlogMicros_ * 1e6 / params_.capacityMicrosPerSec
                     : 0.0;
  }
  [[nodiscard]] double backlogMicros() const noexcept {
    return backlogMicros_;
  }

  /// Drop the backlog (a crashed process takes its run queue with it).
  void clear() noexcept { backlogMicros_ = 0.0; }

 private:
  QueueParams params_{};
  double backlogMicros_ = 0.0;
  std::uint64_t lastDrainMicros_ = 0;
};

}  // namespace dcache::sim
