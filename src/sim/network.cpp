#include "sim/network.hpp"

namespace dcache::sim {

double NetworkModel::chargeLostLeg(Node& src, std::uint64_t payloadBytes,
                                   CpuComponent component) noexcept {
  const double perEnd = params_.perMessageCpuMicros +
                        params_.perByteCpuMicros *
                            static_cast<double>(payloadBytes);
  src.charge(component, perEnd);
  ++messages_;
  bytes_ += payloadBytes;
  if (TraceSink* sink = activeTraceSink()) sink->onBytesMoved(payloadBytes);
  const double latency =
      params_.oneWayLatencyMicros +
      params_.perByteLatencyMicros * static_cast<double>(payloadBytes);
  return degraded_ ? latency * latencyFactor_ : latency;
}

}  // namespace dcache::sim
