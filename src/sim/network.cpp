#include "sim/network.hpp"

namespace dcache::sim {

double NetworkModel::chargeLostLeg(Node& src, std::uint64_t payloadBytes,
                                   CpuComponent component) noexcept {
  const double perEnd = params_.perMessageCpuMicros +
                        params_.perByteCpuMicros *
                            static_cast<double>(payloadBytes);
  src.charge(component, perEnd);
  ++messages_;
  bytes_ += payloadBytes;
  if (TraceSink* sink = activeTraceSink()) sink->onBytesMoved(payloadBytes);
  double latency =
      params_.oneWayLatencyMicros +
      params_.perByteLatencyMicros * static_cast<double>(payloadBytes);
  if (degraded_) latency *= latencyFactor_;
  if (anySlowNodes_ && src.slowFactor() != 1.0) latency *= src.slowFactor();
  return latency;
}

}  // namespace dcache::sim
