// Request-tracing hook points. The simulator's cost accounting all funnels
// through Node::charge and NetworkModel::transfer; a TraceSink installed in
// the per-thread slot observes every one of those events, which is what
// makes per-request cost attribution *exact*: a span's CPU micros are the
// very same micros the tier meters (and therefore the bill) see. With no
// sink installed every hook is a null-pointer check — the fast path and its
// output are bit-for-bit what they were before tracing existed.
//
// The interface lives in sim (the lowest layer) so that rpc, cache, storage
// and core can all open spans without depending on the obs library that
// implements the sink.
#pragma once

#include <cstdint>
#include <string_view>

#include "sim/resource.hpp"

namespace dcache::sim {

class Node;
enum class TierKind : std::uint8_t;

/// What a span's unit of work amounted to. Mirrors the serve/fault
/// counters so the trace view and the counter view can be cross-checked
/// (a degradedReads increment must pair with a kDegraded span).
enum class SpanOutcome : std::uint8_t {
  kOk,         // completed, no cache semantics attached
  kHit,        // cache probe served from cache
  kMiss,       // cache probe fell through to storage
  kRetry,      // RPC attempt that succeeded after at least one failure
  kTimeout,    // RPC leg that waited out its timeout
  kDegraded,   // cache unreachable; request degraded to the storage path
  kCoalesced,  // miss joined an in-flight storage read (single-flight)
  kFailed,     // call exhausted its retry budget
  kShed,          // admission control turned the request away at the door
  kQueueTimeout,  // attempt abandoned: server queue deeper than the timeout
  kHedged,        // backup attempt fired after the hedge delay
  kReplicaFallback,  // read served by a non-primary replica (gray failure)
  kCount,
};

[[nodiscard]] std::string_view spanOutcomeName(SpanOutcome outcome) noexcept;

/// Observer for everything the simulator charges while a request is being
/// served. Implemented by obs::Tracer; the simulation layers only see this
/// interface.
class TraceSink {
 public:
  virtual ~TraceSink();

  /// Open a child span under the currently open one.
  virtual void beginSpan(std::string_view name, TierKind tier) = 0;
  /// Close the innermost open span.
  virtual void endSpan(SpanOutcome outcome) = 0;
  /// CPU charged to `node` under `component` (called from Node::charge).
  virtual void onCpuCharge(const Node& node, CpuComponent component,
                           double micros) = 0;
  /// Payload bytes that crossed the simulated network (one leg).
  virtual void onBytesMoved(std::uint64_t bytes) = 0;
};

/// Per-thread active sink. Each matrix worker thread runs one deployment at
/// a time, so a thread-local slot gives per-deployment tracing that stays
/// byte-identical for any --jobs value.
///
/// constinit matters here: it guarantees constant initialization at every
/// use site, so the compiler emits a plain TLS load with no init-guard or
/// wrapper call on the Node::charge hot path. (It also sidesteps a GCC 12
/// -fsanitize=null false positive where the address-null check after the
/// guard branch reads stale flags — a `je` right after a flagless `lea`.)
extern thread_local constinit TraceSink* tlsTraceSink;

[[nodiscard]] inline TraceSink* activeTraceSink() noexcept {
  return tlsTraceSink;
}
inline void setTraceSink(TraceSink* sink) noexcept { tlsTraceSink = sink; }

/// RAII span. Captures the sink at construction, so a span opened while
/// tracing is off stays off even if a sink appears mid-scope (it cannot:
/// sinks are installed only at request boundaries — this is belt and
/// braces for exception paths).
class SpanGuard {
 public:
  SpanGuard(std::string_view name, TierKind tier) noexcept
      : sink_(tlsTraceSink) {
    if (sink_) sink_->beginSpan(name, tier);
  }
  ~SpanGuard() {
    if (sink_) sink_->endSpan(outcome_);
  }
  SpanGuard(const SpanGuard&) = delete;
  SpanGuard& operator=(const SpanGuard&) = delete;

  /// Set the outcome reported when the span closes (default kOk).
  void setOutcome(SpanOutcome outcome) noexcept { outcome_ = outcome; }

 private:
  TraceSink* sink_;
  SpanOutcome outcome_ = SpanOutcome::kOk;
};

}  // namespace dcache::sim
