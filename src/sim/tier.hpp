// A tier is a named group of identical nodes (e.g. "3 TiKV pods"). It owns
// its nodes, provides placement (hash-based or round-robin) and aggregates
// their meters for reporting.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "sim/node.hpp"
#include "util/hash.hpp"

namespace dcache::sim {

class Tier {
 public:
  Tier(std::string name, TierKind kind, std::size_t nodeCount);

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] TierKind kind() const noexcept { return kind_; }
  [[nodiscard]] std::size_t size() const noexcept { return nodes_.size(); }

  [[nodiscard]] Node& node(std::size_t i) noexcept { return *nodes_[i]; }
  [[nodiscard]] const Node& node(std::size_t i) const noexcept {
    return *nodes_[i];
  }

  /// Node that owns a key (stable hash placement).
  [[nodiscard]] Node& nodeForKey(std::uint64_t keyHash) noexcept {
    return *nodes_[keyHash % nodes_.size()];
  }
  [[nodiscard]] std::size_t indexForKey(std::uint64_t keyHash) const noexcept {
    return keyHash % nodes_.size();
  }

  /// Round-robin placement for stateless tiers (SQL front-ends, app LB).
  [[nodiscard]] Node& nextNode() noexcept {
    Node& n = *nodes_[rr_ % nodes_.size()];
    ++rr_;
    return n;
  }

  /// Nodes currently alive (fault injection can take nodes down).
  [[nodiscard]] std::size_t upCount() const noexcept;
  /// True when every node of the tier is down (whole-tier outage).
  [[nodiscard]] bool allDown() const noexcept { return upCount() == 0; }

  /// Provision every node in the tier with the same memory capacity.
  void provisionMemoryPerNode(util::Bytes perNode) noexcept;

  [[nodiscard]] CpuMeter aggregateCpu() const noexcept;
  [[nodiscard]] util::Bytes totalProvisionedMemory() const noexcept;
  [[nodiscard]] util::Bytes totalPeakMemory() const noexcept;

  void clearMeters() noexcept;

 private:
  std::string name_;
  TierKind kind_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::size_t rr_ = 0;
};

}  // namespace dcache::sim
