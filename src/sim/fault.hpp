// Deterministic fault injection. A FaultSchedule is a list of timed events
// — node crashes/restarts, whole-tier outages, network-degradation windows
// — applied against the simulated clock by whoever owns the deployment
// state (core::Deployment drives it from setSimTimeMicros). The schedule
// itself is pure data: fully ordered, no hidden randomness, so a matrix
// cell that installs the same schedule with the same seed replays the same
// failure timeline byte-for-byte regardless of worker count. The only
// randomness faults introduce (per-leg message drops, retry-backoff
// jitter) is drawn from the RPC channel's own seeded generator.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "sim/node.hpp"

namespace dcache::sim {

enum class FaultKind : std::uint8_t {
  kNodeCrash,     // node goes down; volatile state (its caches) is lost
  kNodeRestart,   // node rejoins with cold caches
  kTierOutage,    // every node of a tier becomes unreachable (network
                  // partition / rollout gone wrong); state survives
  kTierRecover,   // the tier becomes reachable again
  kDegradeBegin,  // network degradation window opens (latency x, drops)
  kDegradeEnd,    // degradation window closes
  // Gray failures: the node stays *up* — health checks pass, the load
  // balancer keeps routing to it — but it is slow, lossy, or reachable
  // from only one direction. Detecting these is the health monitor's job
  // (core/health.hpp); injecting them is ours.
  kNodeSlowBegin,         // node's CPU and RPC legs slow by latencyFactor
  kNodeSlowEnd,           // slow window closes (factor back to 1)
  kPartialPartitionBegin,  // asymmetric link cut: tier -> dstTier drops
                           // while dstTier -> tier still works
  kPartialPartitionEnd,    // the cut heals
  kNodeFlakyBegin,  // node drops each message leg with dropProbability
  kNodeFlakyEnd,    // flaky window closes
};

[[nodiscard]] std::string_view faultKindName(FaultKind kind) noexcept;

struct FaultEvent {
  std::uint64_t atMicros = 0;
  FaultKind kind = FaultKind::kNodeCrash;
  TierKind tier = TierKind::kAppServer;  // node/tier events; partition source
  std::size_t nodeIndex = 0;             // node events
  double latencyFactor = 1.0;   // kDegradeBegin / kNodeSlowBegin
  double dropProbability = 0.0;  // kDegradeBegin / kNodeFlakyBegin: per leg
  TierKind dstTier = TierKind::kAppServer;  // kPartialPartition*: cut target
};

class FaultSchedule {
 public:
  void add(FaultEvent event);

  // ---- convenience builders ----
  // Every window builder normalizes an inverted window (fromMicros >
  // untilMicros) by clamping the end up to the start: the window becomes
  // empty-length instead of a begin/end pair that stable_sort would reorder
  // into an end-before-begin schedule (close a window that never opened,
  // then open it forever).
  void crashNode(std::uint64_t atMicros, TierKind tier, std::size_t node);
  void restartNode(std::uint64_t atMicros, TierKind tier, std::size_t node);
  /// Crash + restart in one call: down at `fromMicros`, cold restart at
  /// `untilMicros`.
  void crashWindow(std::uint64_t fromMicros, std::uint64_t untilMicros,
                   TierKind tier, std::size_t node);
  /// Rolling-restart wave as the *crash path* sees it: node `firstNode + i`
  /// goes down at `fromMicros + i * stepMicros` and cold-restarts
  /// `downMicros` later. The planned-churn twin is
  /// core::MembershipSchedule::rollingRestart, which drains instead of
  /// crashing; comparing the two postures is fig12's whole point.
  void rollingRestartWave(std::uint64_t fromMicros, TierKind tier,
                          std::size_t firstNode, std::size_t count,
                          std::uint64_t stepMicros, std::uint64_t downMicros);
  void tierOutage(std::uint64_t fromMicros, std::uint64_t untilMicros,
                  TierKind tier);
  void degradeNetwork(std::uint64_t fromMicros, std::uint64_t untilMicros,
                      double latencyFactor, double dropProbability);
  /// Gray failure: the node keeps answering, but every unit of CPU it does
  /// and every RPC leg it touches takes `factor` times longer (a throttled
  /// VM, a dying disk, a neighbor stealing its cores).
  void slowNode(std::uint64_t fromMicros, std::uint64_t untilMicros,
                TierKind tier, std::size_t node, double factor);
  /// Gray failure: asymmetric partition — messages from `fromTier` to
  /// `toTier` are lost while the reverse direction still delivers.
  void partialPartition(std::uint64_t fromMicros, std::uint64_t untilMicros,
                        TierKind fromTier, TierKind toTier);
  /// Gray failure: the node drops each message leg it sends or receives
  /// with `dropProbability` (seeded draw in the RPC channel).
  void flakyNode(std::uint64_t fromMicros, std::uint64_t untilMicros,
                 TierKind tier, std::size_t node, double dropProbability);

  [[nodiscard]] bool empty() const noexcept { return events_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return events_.size(); }

  /// Events in application order: ascending time, insertion order breaking
  /// ties. Sorted lazily on first access after a mutation.
  [[nodiscard]] const std::vector<FaultEvent>& events() const;

 private:
  mutable std::vector<FaultEvent> events_;
  mutable bool sorted_ = true;
};

}  // namespace dcache::sim
