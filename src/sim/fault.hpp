// Deterministic fault injection. A FaultSchedule is a list of timed events
// — node crashes/restarts, whole-tier outages, network-degradation windows
// — applied against the simulated clock by whoever owns the deployment
// state (core::Deployment drives it from setSimTimeMicros). The schedule
// itself is pure data: fully ordered, no hidden randomness, so a matrix
// cell that installs the same schedule with the same seed replays the same
// failure timeline byte-for-byte regardless of worker count. The only
// randomness faults introduce (per-leg message drops, retry-backoff
// jitter) is drawn from the RPC channel's own seeded generator.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "sim/node.hpp"

namespace dcache::sim {

enum class FaultKind : std::uint8_t {
  kNodeCrash,     // node goes down; volatile state (its caches) is lost
  kNodeRestart,   // node rejoins with cold caches
  kTierOutage,    // every node of a tier becomes unreachable (network
                  // partition / rollout gone wrong); state survives
  kTierRecover,   // the tier becomes reachable again
  kDegradeBegin,  // network degradation window opens (latency x, drops)
  kDegradeEnd,    // degradation window closes
};

[[nodiscard]] std::string_view faultKindName(FaultKind kind) noexcept;

struct FaultEvent {
  std::uint64_t atMicros = 0;
  FaultKind kind = FaultKind::kNodeCrash;
  TierKind tier = TierKind::kAppServer;  // node/tier events
  std::size_t nodeIndex = 0;             // node events
  double latencyFactor = 1.0;            // kDegradeBegin
  double dropProbability = 0.0;          // kDegradeBegin: per message leg
};

class FaultSchedule {
 public:
  void add(FaultEvent event);

  // ---- convenience builders ----
  void crashNode(std::uint64_t atMicros, TierKind tier, std::size_t node);
  void restartNode(std::uint64_t atMicros, TierKind tier, std::size_t node);
  /// Crash + restart in one call: down at `fromMicros`, cold restart at
  /// `untilMicros`.
  void crashWindow(std::uint64_t fromMicros, std::uint64_t untilMicros,
                   TierKind tier, std::size_t node);
  void tierOutage(std::uint64_t fromMicros, std::uint64_t untilMicros,
                  TierKind tier);
  void degradeNetwork(std::uint64_t fromMicros, std::uint64_t untilMicros,
                      double latencyFactor, double dropProbability);

  [[nodiscard]] bool empty() const noexcept { return events_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return events_.size(); }

  /// Events in application order: ascending time, insertion order breaking
  /// ties. Sorted lazily on first access after a mutation.
  [[nodiscard]] const std::vector<FaultEvent>& events() const;

 private:
  mutable std::vector<FaultEvent> events_;
  mutable bool sorted_ = true;
};

}  // namespace dcache::sim
