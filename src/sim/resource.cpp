#include "sim/resource.hpp"

#include <algorithm>

namespace dcache::sim {

std::string_view cpuComponentName(CpuComponent c) noexcept {
  switch (c) {
    case CpuComponent::kRpcFraming: return "rpc_framing";
    case CpuComponent::kSerialization: return "serialization";
    case CpuComponent::kDeserialization: return "deserialization";
    case CpuComponent::kConnectionMgmt: return "connection_mgmt";
    case CpuComponent::kQueryParse: return "query_parse";
    case CpuComponent::kQueryPlan: return "query_plan";
    case CpuComponent::kKvExecution: return "kv_execution";
    case CpuComponent::kReplication: return "replication";
    case CpuComponent::kLeaseValidation: return "lease_validation";
    case CpuComponent::kDiskIo: return "disk_io";
    case CpuComponent::kCacheOp: return "cache_op";
    case CpuComponent::kAppLogic: return "app_logic";
    case CpuComponent::kRequestPrep: return "request_prep";
    case CpuComponent::kClientComm: return "client_comm";
    case CpuComponent::kFarMemAccess: return "far_mem_access";
    case CpuComponent::kCount: break;
  }
  return "unknown";
}

void CpuMeter::merge(const CpuMeter& other) noexcept {
  for (std::size_t i = 0; i < kNumCpuComponents; ++i) {
    byComponent_[i] += other.byComponent_[i];
  }
  total_ += other.total_;
}

void CpuMeter::clear() noexcept {
  byComponent_.fill(0.0);
  total_ = 0.0;
}

}  // namespace dcache::sim
