// Deterministic discrete-event loop. The cost experiments charge CPU
// synchronously and do not need it; it exists for the scenarios where
// *interleaving* is the phenomenon under study — most importantly the
// delayed-writes anomaly of Figure 8, where a write RPC is delayed past a
// cache reshard. Events at the same timestamp run in scheduling order, so a
// given seed always produces the same history.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

namespace dcache::sim {

class EventLoop {
 public:
  using Action = std::function<void()>;

  /// Current simulated time in microseconds.
  [[nodiscard]] std::uint64_t now() const noexcept { return now_; }

  /// Schedule `action` to run `delayMicros` after the current time.
  /// Returns an id usable with cancel().
  std::uint64_t schedule(std::uint64_t delayMicros, Action action);

  /// Cancel a scheduled event. Returns false if it already ran / unknown.
  bool cancel(std::uint64_t id);

  /// Run until the queue is empty. Returns the number of events executed.
  std::size_t run();

  /// Run until the queue is empty or simulated time exceeds `deadline`.
  std::size_t runUntil(std::uint64_t deadlineMicros);

  [[nodiscard]] bool empty() const noexcept { return live_ == 0; }

 private:
  struct Event {
    std::uint64_t time;
    std::uint64_t seq;  // tie-breaker: FIFO within a timestamp
    std::uint64_t id;
    Action action;
    bool cancelled = false;
  };
  struct Order {
    bool operator()(const Event* a, const Event* b) const noexcept {
      if (a->time != b->time) return a->time > b->time;
      return a->seq > b->seq;
    }
  };

  bool popAndRunOne();

  std::uint64_t now_ = 0;
  std::uint64_t nextSeq_ = 0;
  std::uint64_t nextId_ = 1;
  std::size_t live_ = 0;
  std::vector<std::unique_ptr<Event>> storage_;
  std::priority_queue<Event*, std::vector<Event*>, Order> queue_;
};

}  // namespace dcache::sim
