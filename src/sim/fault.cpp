#include "sim/fault.hpp"

#include <algorithm>
#include <string_view>

namespace dcache::sim {

std::string_view faultKindName(FaultKind kind) noexcept {
  switch (kind) {
    case FaultKind::kNodeCrash: return "node-crash";
    case FaultKind::kNodeRestart: return "node-restart";
    case FaultKind::kTierOutage: return "tier-outage";
    case FaultKind::kTierRecover: return "tier-recover";
    case FaultKind::kDegradeBegin: return "degrade-begin";
    case FaultKind::kDegradeEnd: return "degrade-end";
    case FaultKind::kNodeSlowBegin: return "node-slow-begin";
    case FaultKind::kNodeSlowEnd: return "node-slow-end";
    case FaultKind::kPartialPartitionBegin: return "partial-partition-begin";
    case FaultKind::kPartialPartitionEnd: return "partial-partition-end";
    case FaultKind::kNodeFlakyBegin: return "node-flaky-begin";
    case FaultKind::kNodeFlakyEnd: return "node-flaky-end";
  }
  return "unknown";
}

namespace {
/// Normalize an inverted window: the end event may never precede the begin
/// event, or the sorted schedule would close a window that never opened and
/// then open it with no matching close.
std::uint64_t clampWindowEnd(std::uint64_t fromMicros,
                             std::uint64_t untilMicros) noexcept {
  return untilMicros < fromMicros ? fromMicros : untilMicros;
}
}  // namespace

void FaultSchedule::add(FaultEvent event) {
  events_.push_back(event);
  sorted_ = events_.size() <= 1 ||
            (sorted_ && events_[events_.size() - 2].atMicros <= event.atMicros);
}

void FaultSchedule::crashNode(std::uint64_t atMicros, TierKind tier,
                              std::size_t node) {
  add({atMicros, FaultKind::kNodeCrash, tier, node, 1.0, 0.0});
}

void FaultSchedule::restartNode(std::uint64_t atMicros, TierKind tier,
                                std::size_t node) {
  add({atMicros, FaultKind::kNodeRestart, tier, node, 1.0, 0.0});
}

void FaultSchedule::crashWindow(std::uint64_t fromMicros,
                                std::uint64_t untilMicros, TierKind tier,
                                std::size_t node) {
  crashNode(fromMicros, tier, node);
  restartNode(clampWindowEnd(fromMicros, untilMicros), tier, node);
}

void FaultSchedule::rollingRestartWave(std::uint64_t fromMicros,
                                       TierKind tier, std::size_t firstNode,
                                       std::size_t count,
                                       std::uint64_t stepMicros,
                                       std::uint64_t downMicros) {
  for (std::size_t i = 0; i < count; ++i) {
    const std::uint64_t at = fromMicros + i * stepMicros;
    crashWindow(at, at + downMicros, tier, firstNode + i);
  }
}

void FaultSchedule::tierOutage(std::uint64_t fromMicros,
                               std::uint64_t untilMicros, TierKind tier) {
  add({fromMicros, FaultKind::kTierOutage, tier, 0, 1.0, 0.0});
  add({clampWindowEnd(fromMicros, untilMicros), FaultKind::kTierRecover, tier,
       0, 1.0, 0.0});
}

void FaultSchedule::degradeNetwork(std::uint64_t fromMicros,
                                   std::uint64_t untilMicros,
                                   double latencyFactor,
                                   double dropProbability) {
  add({fromMicros, FaultKind::kDegradeBegin, TierKind::kAppServer, 0,
       latencyFactor, dropProbability});
  add({clampWindowEnd(fromMicros, untilMicros), FaultKind::kDegradeEnd,
       TierKind::kAppServer, 0, 1.0, 0.0});
}

void FaultSchedule::slowNode(std::uint64_t fromMicros,
                             std::uint64_t untilMicros, TierKind tier,
                             std::size_t node, double factor) {
  add({fromMicros, FaultKind::kNodeSlowBegin, tier, node,
       factor < 1.0 ? 1.0 : factor, 0.0});
  add({clampWindowEnd(fromMicros, untilMicros), FaultKind::kNodeSlowEnd, tier,
       node, 1.0, 0.0});
}

void FaultSchedule::partialPartition(std::uint64_t fromMicros,
                                     std::uint64_t untilMicros,
                                     TierKind fromTier, TierKind toTier) {
  add({fromMicros, FaultKind::kPartialPartitionBegin, fromTier, 0, 1.0, 0.0,
       toTier});
  add({clampWindowEnd(fromMicros, untilMicros),
       FaultKind::kPartialPartitionEnd, fromTier, 0, 1.0, 0.0, toTier});
}

void FaultSchedule::flakyNode(std::uint64_t fromMicros,
                              std::uint64_t untilMicros, TierKind tier,
                              std::size_t node, double dropProbability) {
  const double p = dropProbability < 0.0
                       ? 0.0
                       : (dropProbability > 1.0 ? 1.0 : dropProbability);
  add({fromMicros, FaultKind::kNodeFlakyBegin, tier, node, 1.0, p});
  add({clampWindowEnd(fromMicros, untilMicros), FaultKind::kNodeFlakyEnd,
       tier, node, 1.0, 0.0});
}

const std::vector<FaultEvent>& FaultSchedule::events() const {
  if (!sorted_) {
    std::stable_sort(events_.begin(), events_.end(),
                     [](const FaultEvent& a, const FaultEvent& b) {
                       return a.atMicros < b.atMicros;
                     });
    sorted_ = true;
  }
  return events_;
}

}  // namespace dcache::sim
