#include "cache/sharded.hpp"

#include "cache/lru.hpp"

namespace dcache::cache {

ShardedCache::ShardedCache(util::Bytes totalCapacity, std::size_t shardCount,
                           ShardFactory factory) {
  if (shardCount == 0) shardCount = 1;
  if (!factory) {
    factory = [](util::Bytes cap) { return std::make_unique<LruCache>(cap); };
  }
  const auto perShard =
      totalCapacity * (1.0 / static_cast<double>(shardCount));
  shards_.reserve(shardCount);
  for (std::size_t i = 0; i < shardCount; ++i) {
    shards_.push_back(factory(perShard));
  }
}

const CacheEntry* ShardedCache::get(std::string_view key) {
  const CacheEntry* hit = shards_[shardForKey(key)]->get(key);
  if (hit) {
    ++stats_.hits;
  } else {
    ++stats_.misses;
  }
  return hit;
}

const CacheEntry* ShardedCache::peek(std::string_view key) const {
  return shards_[shardForKey(key)]->peek(key);
}

void ShardedCache::put(std::string_view key, CacheEntry entry) {
  KvCache& shard = *shards_[shardForKey(key)];
  const std::uint64_t insertionsBefore = shard.stats().insertions;
  const std::uint64_t overwritesBefore = shard.stats().overwrites;
  shard.put(key, std::move(entry));
  // Mirror the shard's own verdict so a rejected put counts as neither
  // insertion nor overwrite here either (see CacheStats).
  stats_.insertions += shard.stats().insertions - insertionsBefore;
  stats_.overwrites += shard.stats().overwrites - overwritesBefore;
}

bool ShardedCache::erase(std::string_view key) {
  return shards_[shardForKey(key)]->erase(key);
}

void ShardedCache::clear() {
  for (auto& shard : shards_) shard->clear();
}

std::size_t ShardedCache::itemCount() const noexcept {
  std::size_t n = 0;
  for (const auto& shard : shards_) n += shard->itemCount();
  return n;
}

util::Bytes ShardedCache::bytesUsed() const noexcept {
  util::Bytes total;
  for (const auto& shard : shards_) total += shard->bytesUsed();
  return total;
}

util::Bytes ShardedCache::capacity() const noexcept {
  util::Bytes total;
  for (const auto& shard : shards_) total += shard->capacity();
  return total;
}

void ShardedCache::forEachEntry(
    const std::function<void(std::string_view, const CacheEntry&)>& fn)
    const {
  for (const auto& shard : shards_) shard->forEachEntry(fn);
}

CacheStats ShardedCache::aggregateStats() const noexcept {
  CacheStats total;
  for (const auto& shard : shards_) {
    total.hits += shard->stats().hits;
    total.misses += shard->stats().misses;
    total.insertions += shard->stats().insertions;
    total.overwrites += shard->stats().overwrites;
    total.evictions += shard->stats().evictions;
  }
  return total;
}

}  // namespace dcache::cache
