#include "cache/mrc.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>

namespace dcache::cache {

void MattsonProfiler::growTo(std::size_t minSize) {
  std::size_t size = std::max<std::size_t>(bit_.size(), 1024);
  while (size < minSize) size *= 2;
  marks_.resize(size, 0);
  // O(n) Fenwick build from the raw marks.
  bit_.assign(size, 0);
  for (std::size_t i = 1; i < size; ++i) {
    bit_[i] += marks_[i];
    const std::size_t parent = i + (i & (~i + 1));
    if (parent < size) bit_[parent] += bit_[i];
  }
}

void MattsonProfiler::bitAdd(std::size_t index, std::int64_t delta) {
  marks_[index] = static_cast<std::uint8_t>(
      static_cast<std::int64_t>(marks_[index]) + delta);
  for (; index < bit_.size(); index += index & (~index + 1)) {
    bit_[index] += delta;
  }
}

std::int64_t MattsonProfiler::bitPrefix(std::size_t index) const noexcept {
  if (bit_.empty()) return 0;
  std::int64_t sum = 0;
  index = std::min(index, bit_.size() - 1);
  for (; index > 0; index -= index & (~index + 1)) {
    sum += bit_[index];
  }
  return sum;
}

std::uint64_t MattsonProfiler::access(std::string_view key) {
  ++time_;  // timestamps are 1-based for the Fenwick tree
  if (bit_.size() <= time_) growTo(time_ + 1);

  const auto it = lastAccess_.find(std::string(key));
  std::uint64_t distance;
  if (it == lastAccess_.end()) {
    distance = UINT64_MAX;
    ++coldMisses_;
    lastAccess_.emplace(std::string(key), time_);
  } else {
    const std::uint64_t prev = it->second;
    // Distinct keys accessed strictly after prev: ones in (prev, time_).
    const std::int64_t between = bitPrefix(time_ - 1) - bitPrefix(prev);
    distance = static_cast<std::uint64_t>(between) + 1;  // include the key itself
    bitAdd(prev, -1);
    it->second = time_;
    if (distanceHist_.size() <= distance) distanceHist_.resize(distance + 1, 0);
    ++distanceHist_[distance];
  }
  bitAdd(time_, +1);
  return distance;
}

double MattsonProfiler::missRatio(std::uint64_t items) const noexcept {
  if (time_ == 0) return 1.0;
  std::uint64_t hits = 0;
  const std::uint64_t bound = std::min<std::uint64_t>(items, distanceHist_.size());
  for (std::uint64_t d = 1; d <= bound && d < distanceHist_.size(); ++d) {
    hits += distanceHist_[d];
  }
  return 1.0 - static_cast<double>(hits) / static_cast<double>(time_);
}

std::vector<double> MattsonProfiler::curve(
    std::span<const std::uint64_t> capacities) const {
  std::vector<double> out;
  out.reserve(capacities.size());
  for (const std::uint64_t c : capacities) out.push_back(missRatio(c));
  return out;
}

std::vector<double> zipfPopularity(std::uint64_t numKeys, double alpha) {
  std::vector<double> rates(numKeys);
  double total = 0.0;
  for (std::uint64_t k = 0; k < numKeys; ++k) {
    rates[k] = std::pow(static_cast<double>(k + 1), -alpha);
    total += rates[k];
  }
  for (double& r : rates) r /= total;
  return rates;
}

double cheCharacteristicTime(std::span<const double> rates, double items) {
  if (rates.empty() || items <= 0.0) return 0.0;
  if (items >= static_cast<double>(rates.size())) {
    return std::numeric_limits<double>::infinity();
  }
  auto occupancy = [&](double t) {
    double sum = 0.0;
    for (const double p : rates) sum += -std::expm1(-p * t);
    return sum;
  };
  // Bisection on monotone occupancy(t) = items.
  double lo = 0.0;
  double hi = 1.0;
  while (occupancy(hi) < items) {
    hi *= 2.0;
    if (hi > 1e18) break;
  }
  for (int iter = 0; iter < 64; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (occupancy(mid) < items) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

double cheHitRatio(std::span<const double> rates, double items) {
  if (rates.empty() || items <= 0.0) return 0.0;
  if (items >= static_cast<double>(rates.size())) return 1.0;
  const double t = cheCharacteristicTime(rates, items);
  double hit = 0.0;
  double total = 0.0;
  for (const double p : rates) {
    hit += p * -std::expm1(-p * t);
    total += p;
  }
  return total > 0.0 ? hit / total : 0.0;
}

double zipfMissRatio(std::uint64_t numKeys, double alpha, double items) {
  return 1.0 - cheHitRatio(zipfPopularity(numKeys, alpha), items);
}

}  // namespace dcache::cache
