// Slab/arena storage primitives for the flat cache backend (flat_cache.hpp).
//
// NodeSlab hands out stable uint32 indices into chunked node storage with a
// LIFO free list — the chunking means a grow never moves existing nodes, so
// `get()` results stay valid across later insertions, and the LIFO reuse
// discipline matches ClockCache's slot free list exactly (required for the
// flat clock backend to be sequence-identical to the node one).
//
// KeyArena packs variable-length key bytes into chunked buffers with
// size-class free lists, so cache churn recycles key storage instead of
// allocating per entry. Keys short enough to live inline in the node (the
// common case: workload keys are "k%09llu") never touch the arena at all —
// the same inline-or-chunked split cachegrand's storage_db uses.
#pragma once

#include <cstdint>
#include <cstring>
#include <memory>
#include <string_view>
#include <vector>

namespace dcache::cache {

/// Chunked storage for out-of-line key bytes. Allocations are rounded up to
/// an 8-byte size class; released blocks go on a per-class free list and are
/// reused before the bump pointer advances. Blocks larger than kMaxClassed
/// (rare: keys longer than 4 KiB) use an exact-match scan list instead.
class KeyArena {
 public:
  struct Ref {
    std::uint32_t chunk = 0;
    std::uint32_t offset = 0;
  };

  [[nodiscard]] Ref store(std::string_view key) {
    const std::uint32_t cap = classBytes(key.size());
    Ref ref;
    if (cap <= kMaxClassed) {
      auto& freeList = freeByClass_[cap / kGranularity];
      if (!freeList.empty()) {
        ref = freeList.back();
        freeList.pop_back();
      } else {
        ref = bumpAlloc(cap);
      }
    } else if (!takeLarge(cap, ref)) {
      ref = bumpAlloc(cap);
    }
    if (!key.empty()) {
      std::memcpy(chunks_[ref.chunk].get() + ref.offset, key.data(),
                  key.size());
    }
    return ref;
  }

  void release(Ref ref, std::size_t length) {
    const std::uint32_t cap = classBytes(length);
    if (cap <= kMaxClassed) {
      // dcache-lint: allow(hot-path-alloc, free-list growth is bounded by the live high-water mark, then pure reuse)
      freeByClass_[cap / kGranularity].push_back(ref);
    } else {
      // dcache-lint: allow(hot-path-alloc, large-block free list is bounded by the live high-water mark, then pure reuse)
      largeFree_.push_back(LargeBlock{cap, ref});
    }
  }

  [[nodiscard]] std::string_view view(Ref ref,
                                      std::size_t length) const noexcept {
    return {chunks_[ref.chunk].get() + ref.offset, length};
  }

  void clear() noexcept {
    chunks_.clear();
    chunkBytes_.clear();
    tailUsed_ = 0;
    for (auto& freeList : freeByClass_) freeList.clear();
    largeFree_.clear();
  }

  [[nodiscard]] std::size_t chunkCount() const noexcept {
    return chunks_.size();
  }

 private:
  static constexpr std::size_t kChunkBytes = 64 * 1024;
  static constexpr std::uint32_t kGranularity = 8;
  static constexpr std::uint32_t kMaxClassed = 4096;

  struct LargeBlock {
    std::uint32_t capacity;
    Ref ref;
  };

  [[nodiscard]] static constexpr std::uint32_t classBytes(
      std::size_t length) noexcept {
    const std::size_t len = length ? length : 1;
    return static_cast<std::uint32_t>((len + kGranularity - 1) &
                                      ~std::size_t{kGranularity - 1});
  }

  [[nodiscard]] Ref bumpAlloc(std::uint32_t cap) {
    if (chunks_.empty() || tailUsed_ + cap > chunkBytes_.back()) {
      const std::size_t bytes = cap > kChunkBytes ? cap : kChunkBytes;
      // dcache-lint: allow(hot-path-alloc, amortized arena growth: one chunk per 64 KiB of key bytes, not per entry)
      chunks_.push_back(std::make_unique<char[]>(bytes));
      chunkBytes_.push_back(bytes);  // dcache-lint: allow(hot-path-alloc, grows with the chunk list, one element per 64 KiB chunk)
      tailUsed_ = 0;
    }
    const Ref ref{static_cast<std::uint32_t>(chunks_.size() - 1),
                  static_cast<std::uint32_t>(tailUsed_)};
    tailUsed_ += cap;
    return ref;
  }

  [[nodiscard]] bool takeLarge(std::uint32_t cap, Ref& out) {
    for (std::size_t i = 0; i < largeFree_.size(); ++i) {
      if (largeFree_[i].capacity == cap) {
        out = largeFree_[i].ref;
        largeFree_[i] = largeFree_.back();
        largeFree_.pop_back();
        return true;
      }
    }
    return false;
  }

  std::vector<std::unique_ptr<char[]>> chunks_;
  std::vector<std::size_t> chunkBytes_;
  std::size_t tailUsed_ = 0;
  std::vector<std::vector<Ref>> freeByClass_{kMaxClassed / kGranularity + 1};
  std::vector<LargeBlock> largeFree_;
};

/// Chunked slab of default-constructible nodes addressed by uint32 index.
/// Reuse is LIFO; `highWater()` is the total number of indices ever handed
/// out (free or not) — the flat clock hand sweeps modulo this, mirroring
/// ClockCache's `slots_.size()`.
template <typename T>
class NodeSlab {
 public:
  static constexpr std::uint32_t kNil = 0xffffffffu;

  [[nodiscard]] std::uint32_t acquire() {
    if (!free_.empty()) {
      const std::uint32_t index = free_.back();
      free_.pop_back();
      return index;
    }
    if (allocated_ % kNodesPerChunk == 0) {
      // dcache-lint: allow(hot-path-alloc, amortized slab growth: one chunk per kNodesPerChunk entries, not per entry)
      chunks_.push_back(std::make_unique<T[]>(kNodesPerChunk));
    }
    return allocated_++;
  }

  /// Resets the node to a default-constructed state and recycles its index.
  void release(std::uint32_t index) {
    (*this)[index] = T{};
    // dcache-lint: allow(hot-path-alloc, free-list growth is bounded by the slab high-water mark, then pure reuse)
    free_.push_back(index);
  }

  [[nodiscard]] T& operator[](std::uint32_t index) noexcept {
    return chunks_[index / kNodesPerChunk][index % kNodesPerChunk];
  }
  [[nodiscard]] const T& operator[](std::uint32_t index) const noexcept {
    return chunks_[index / kNodesPerChunk][index % kNodesPerChunk];
  }

  /// Indices ever allocated (including currently-free ones); 0 after clear.
  [[nodiscard]] std::uint32_t highWater() const noexcept { return allocated_; }

  void clear() noexcept {
    chunks_.clear();
    free_.clear();
    allocated_ = 0;
  }

 private:
  static constexpr std::uint32_t kNodesPerChunk = 1024;

  std::vector<std::unique_ptr<T[]>> chunks_;
  std::vector<std::uint32_t> free_;
  std::uint32_t allocated_ = 0;
};

}  // namespace dcache::cache
