#include "cache/clock.hpp"

namespace dcache::cache {

const CacheEntry* ClockCache::get(std::string_view key) {
  const auto it = map_.find(key);
  if (it == map_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  Slot& slot = slots_[it->second];
  slot.referenced = true;
  ++stats_.hits;
  return &slot.entry;
}

const CacheEntry* ClockCache::peek(std::string_view key) const {
  const auto it = map_.find(key);
  return it == map_.end() ? nullptr : &slots_[it->second].entry;
}

void ClockCache::put(std::string_view key, CacheEntry entry) {
  const std::uint64_t need = chargedSize(key, entry);
  if (need > capacity_.count()) return;

  if (const auto it = map_.find(key); it != map_.end()) {
    Slot& slot = slots_[it->second];
    used_ -= chargedSize(key, slot.entry);
    used_ += need;
    slot.entry = std::move(entry);
    slot.referenced = true;
    ++stats_.overwrites;
  } else {
    std::size_t index;
    if (!freeList_.empty()) {
      index = freeList_.back();
      freeList_.pop_back();
    } else {
      index = slots_.size();
      slots_.emplace_back();
    }
    Slot& slot = slots_[index];
    slot.key.assign(key);
    slot.entry = std::move(entry);
    slot.referenced = true;
    slot.occupied = true;
    map_.emplace(std::string(key), index);
    used_ += need;
    ++stats_.insertions;
  }
  while (used_ > capacity_.count()) evictOne();
}

bool ClockCache::erase(std::string_view key) {
  const auto it = map_.find(key);
  if (it == map_.end()) return false;
  Slot& slot = slots_[it->second];
  used_ -= chargedSize(slot.key, slot.entry);
  slot.occupied = false;
  slot.entry = CacheEntry{};
  freeList_.push_back(it->second);
  map_.erase(it);
  return true;
}

void ClockCache::clear() {
  map_.clear();
  slots_.clear();
  freeList_.clear();
  hand_ = 0;
  used_ = 0;
}

void ClockCache::forEachEntry(
    const std::function<void(std::string_view, const CacheEntry&)>& fn)
    const {
  // Slot-index order: the flat backend's node indices follow the same
  // LIFO-freelist/bump discipline, so both backends visit identically.
  for (const Slot& slot : slots_) {
    if (slot.occupied) fn(slot.key, slot.entry);
  }
}

void ClockCache::evictOne() {
  cacheInvariant(!map_.empty(), "clock",
                 "evictOne with no resident entries: accounted bytes "
                 "drifted from the entry set");
  for (;;) {
    hand_ = (hand_ + 1) % slots_.size();
    Slot& slot = slots_[hand_];
    if (!slot.occupied) continue;
    if (slot.referenced) {
      slot.referenced = false;  // second chance
      continue;
    }
    used_ -= chargedSize(slot.key, slot.entry);
    map_.erase(map_.find(std::string_view(slot.key)));
    slot.occupied = false;
    slot.entry = CacheEntry{};
    freeList_.push_back(hand_);
    ++stats_.evictions;
    return;
  }
}

}  // namespace dcache::cache
