// Remote lookaside cache tier (memcached/Redis deployment shape, Fig. 1b).
// Cache pods hold real eviction-policy shards; application servers reach
// them through the RPC channel, paying framing and value (de)serialization
// on every access — the CPU the paper identifies as the gap between Remote
// and Linked.
#pragma once

#include <memory>
#include <string_view>
#include <vector>

#include "cache/hash_ring.hpp"
#include "cache/kv_cache.hpp"
#include "rpc/channel.hpp"
#include "rpc/messages.hpp"
#include "sim/tier.hpp"

namespace dcache::cache {

/// CPU charged inside the cache process for the data-structure work itself
/// (hash probe, eviction, slab bookkeeping). Small next to RPC costs — as
/// in production, where memcached server CPU is dominated by the network
/// stack, which the channel accounts separately.
struct CacheOpCosts {
  double probeMicros = 0.4;
  double insertMicros = 0.7;
};

class RemoteCache {
 public:
  struct GetResult {
    bool hit = false;
    /// The owning cache node was unreachable (down or every retry lost):
    /// the caller should degrade to the storage path.
    bool failed = false;
    std::uint64_t size = 0;
    std::uint64_t version = 0;
    double latencyMicros = 0.0;
  };

  RemoteCache(sim::Tier& tier, util::Bytes perNodeCapacity,
              rpc::Channel& channel, EvictionPolicy policy = EvictionPolicy::kLru,
              CacheOpCosts costs = {});

  /// Lookaside GET issued by an application server.
  GetResult get(sim::Node& client, std::string_view key);

  /// Fill / update after a storage read or write.
  double put(sim::Node& client, std::string_view key, std::uint64_t size,
             std::uint64_t version);

  /// Delete-on-write invalidation.
  double invalidate(sim::Node& client, std::string_view key);

  // ---- replica-aware access (gray-failure survival) ----
  /// Arm replica placement: keys map onto a consistent-hash ring over the
  /// pod indices with `factor` distinct replicas each. With factor <= 1
  /// this is never called and the legacy modulo placement above stays
  /// byte-exact; with it armed the deployment routes through
  /// replicasForKey + the *At accessors and owns the fan-out/fallback
  /// policy.
  void enableReplication(std::size_t factor);
  [[nodiscard]] std::size_t replicationFactor() const noexcept {
    return replicationFactor_;
  }
  /// The key's replica pods, primary first (empty unless replication is
  /// armed).
  [[nodiscard]] std::vector<std::size_t> replicasForKey(
      std::string_view key) const;
  /// GET/PUT/invalidate against an explicit pod (a replica chosen by the
  /// deployment). Cost accounting is identical to the keyed versions.
  GetResult getAt(sim::Node& client, std::size_t nodeIndex,
                  std::string_view key);
  double putAt(sim::Node& client, std::size_t nodeIndex, std::string_view key,
               std::uint64_t size, std::uint64_t version);
  double invalidateAt(sim::Node& client, std::size_t nodeIndex,
                      std::string_view key);
  [[nodiscard]] bool nodeUp(std::size_t nodeIndex) const noexcept {
    return tier_->node(nodeIndex).isUp();
  }

  // ---- planned membership (churn survival) ----
  /// Arm membership-aware placement: keys map onto a consistent-hash ring
  /// over the pod indices (every pod joins up front, so the armed-but-idle
  /// ring and the legacy modulo differ only in placement, not in lifecycle).
  /// Default-off: without this call the legacy modulo placement stays
  /// byte-exact. Armed, joinNode/leaveNode reshard ~1/N of the keyspace
  /// per event instead of remapping almost everything the way a modulo
  /// resize would.
  void enableMembership();
  [[nodiscard]] bool membershipActive() const noexcept {
    return membershipOn_;
  }
  /// Planned join/leave (idempotent: a replayed event is a no-op). Both
  /// mirror into the replica ring when replication is armed. leaveNode
  /// keeps the pod's shard contents — the handoff window migrates them;
  /// dropShard retires whatever remains.
  void joinNode(std::size_t nodeIndex);
  void leaveNode(std::size_t nodeIndex);
  /// Ring membership once armed; every valid pod index before that.
  [[nodiscard]] bool isMember(std::size_t nodeIndex) const noexcept {
    return membershipOn_ ? memberRing_.contains(nodeIndex)
                         : nodeIndex < shards_.size();
  }
  /// Current membership size (the membership director refuses to drain
  /// the last member — keys would have no owner to move to).
  [[nodiscard]] std::size_t memberCount() const noexcept {
    return membershipOn_ ? memberRing_.memberCount() : shards_.size();
  }
  /// Pod owning `key` under the active placement (modulo, or the
  /// membership ring once armed).
  [[nodiscard]] std::size_t ownerOf(std::string_view key) const noexcept {
    return nodeForKey(key);
  }

  /// Crash handling: a cache pod's contents die with the process.
  void dropShard(std::size_t nodeIndex);
  /// Is the node owning `key` currently reachable? Lets clients fail fast
  /// (skip fills) instead of paying another timeout against a known-dead
  /// pod.
  [[nodiscard]] bool nodeUpFor(std::string_view key) const noexcept {
    return tier_->node(nodeForKey(key)).isUp();
  }

  [[nodiscard]] CacheStats aggregateStats() const noexcept;
  [[nodiscard]] util::Bytes bytesUsed() const noexcept;
  [[nodiscard]] const CacheOpCosts& costs() const noexcept { return costs_; }
  [[nodiscard]] const sim::Tier& tier() const noexcept { return *tier_; }
  [[nodiscard]] KvCache& shardForNode(std::size_t i) noexcept {
    return *shards_[i];
  }

 private:
  [[nodiscard]] std::size_t nodeForKey(std::string_view key) const noexcept;

  sim::Tier* tier_;
  rpc::Channel* channel_;
  CacheOpCosts costs_;
  std::vector<std::unique_ptr<KvCache>> shards_;  // one per tier node
  /// Replica placement ring (empty until enableReplication).
  HashRing replicaRing_;
  std::size_t replicationFactor_ = 1;
  /// Membership placement ring (empty until enableMembership).
  HashRing memberRing_;
  bool membershipOn_ = false;
};

}  // namespace dcache::cache
