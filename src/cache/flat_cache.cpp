#include "cache/flat_cache.hpp"

#include <cstring>

#include "util/hash.hpp"

namespace dcache::cache {

namespace {

[[nodiscard]] const char* flatModeName(FlatMode mode) noexcept {
  switch (mode) {
    case FlatMode::kLru: return "flat-lru";
    case FlatMode::kFifo: return "flat-fifo";
    case FlatMode::kClock: return "flat-clock";
  }
  return "flat";
}

}  // namespace

FlatCache::FlatCache(FlatMode mode, util::Bytes capacity)
    : mode_(mode),
      capacity_(capacity),
      table_(kInitialTableSlots),
      mask_(kInitialTableSlots - 1) {}

const CacheEntry* FlatCache::get(std::string_view key) {
  const std::size_t pos = findPos(util::fastHash64(key), key);
  if (pos == kNpos) {
    ++stats_.misses;
    return nullptr;
  }
  Node& node = *table_[pos].node;
  if (mode_ == FlatMode::kLru) {
    moveToFront(node.self);
  } else if (mode_ == FlatMode::kClock) {
    flags_[node.self] |= kReferencedBit;
  }
  ++stats_.hits;
  return &node.entry;
}

const CacheEntry* FlatCache::peek(std::string_view key) const {
  const std::size_t pos = findPos(util::fastHash64(key), key);
  return pos == kNpos ? nullptr : &table_[pos].node->entry;
}

void FlatCache::put(std::string_view key, CacheEntry entry) {
  const std::uint64_t need = chargedSize(key, entry);
  if (need > capacity_.count()) return;  // cannot ever fit; not admitted

  const std::uint64_t hash = util::fastHash64(key);
  bool found = false;
  std::size_t pos = probePos(hash, key, found);
  if (found) {
    Node& node = *table_[pos].node;
    const std::uint32_t index = node.self;
    used_ -= chargedSize(key, node.entry);
    used_ += need;
    node.entry = std::move(entry);
    if (mode_ == FlatMode::kLru) {
      moveToFront(index);
    } else if (mode_ == FlatMode::kClock) {
      flags_[index] |= kReferencedBit;
    }
    ++stats_.overwrites;
  } else {
    if (maybeGrow()) {
      // Table moved: re-derive the insert slot in the grown table.
      pos = probePos(hash, key, found);
    }
    const std::uint32_t index = slab_.acquire();
    ensureSideArrays(index);
    Node& node = slab_[index];
    node.self = index;
    storeKey(node, key);
    node.entry = std::move(entry);
    if (mode_ == FlatMode::kClock) {
      flags_[index] = kOccupiedBit | kReferencedBit;
    } else {
      flags_[index] = kOccupiedBit;
      linkFront(index);
    }
    table_[pos] = TableSlot{hash, &node};
    ++count_;
    used_ += need;
    ++stats_.insertions;
  }
  while (used_ > capacity_.count()) evictOne();
}

bool FlatCache::erase(std::string_view key) {
  const std::size_t pos = findPos(util::fastHash64(key), key);
  if (pos == kNpos) return false;
  const Node& node = *table_[pos].node;
  used_ -= chargedSize(key, node.entry);
  removeNode(pos, node.self);
  return true;
}

void FlatCache::clear() {
  slab_.clear();
  arena_.clear();
  // dcache-lint: allow(hot-path-alloc, clear() resets the whole cache; it is not a per-op path)
  table_.assign(kInitialTableSlots, TableSlot{});
  mask_ = kInitialTableSlots - 1;
  links_.clear();
  flags_.clear();
  head_ = kNil;
  tail_ = kNil;
  hand_ = 0;
  used_ = 0;
  count_ = 0;
}

std::string_view FlatCache::victim() const noexcept {
  return tail_ == kNil ? std::string_view{} : keyOf(slab_[tail_]);
}

void FlatCache::storeKey(Node& node, std::string_view key) {
  node.keyLength = static_cast<std::uint32_t>(key.size());
  if (key.size() <= kInlineKeyBytes) {
    if (!key.empty()) std::memcpy(node.inlineKey, key.data(), key.size());
  } else {
    node.keyRef = arena_.store(key);
  }
}

void FlatCache::releaseKey(Node& node) {
  if (node.keyLength > kInlineKeyBytes) {
    arena_.release(node.keyRef, node.keyLength);
  }
}

std::size_t FlatCache::probePos(std::uint64_t hash, std::string_view key,
                                bool& found) const noexcept {
  std::size_t pos = hash & mask_;
  while (table_[pos].node != nullptr) {
    // Full-hash filter: a node record is only touched when the stored
    // 64-bit hash matches, i.e. at most once per successful lookup.
    if (table_[pos].hash == hash && keyOf(*table_[pos].node) == key) {
      found = true;
      return pos;
    }
    pos = (pos + 1) & mask_;
  }
  found = false;
  return pos;
}

std::size_t FlatCache::findPos(std::uint64_t hash,
                               std::string_view key) const noexcept {
  bool found = false;
  const std::size_t pos = probePos(hash, key, found);
  return found ? pos : kNpos;
}

void FlatCache::tableEraseAt(std::size_t pos) noexcept {
  table_[pos] = TableSlot{};
  std::size_t hole = pos;
  std::size_t i = pos;
  for (;;) {
    i = (i + 1) & mask_;
    if (table_[i].node == nullptr) return;
    const std::size_t ideal = table_[i].hash & mask_;
    // The occupant can move into the hole iff its ideal slot is outside the
    // (hole, i] segment — the standard backward-shift condition.
    if (((i - ideal) & mask_) >= ((i - hole) & mask_)) {
      table_[hole] = table_[i];
      table_[i] = TableSlot{};
      hole = i;
    }
  }
}

bool FlatCache::maybeGrow() {
  // Grow at ~70% load so linear-probe clusters stay short.
  if ((count_ + 1) * 10 <= table_.size() * 7) return false;
  std::vector<TableSlot> old = std::move(table_);
  // dcache-lint: allow(hot-path-alloc, table doubling at 70% load is amortized O(1) per insert)
  table_.assign(old.size() * 2, TableSlot{});
  mask_ = table_.size() - 1;
  for (const TableSlot& slot : old) {
    if (slot.node == nullptr) continue;
    std::size_t pos = slot.hash & mask_;
    while (table_[pos].node != nullptr) pos = (pos + 1) & mask_;
    table_[pos] = slot;
  }
  return true;
}

void FlatCache::growSideArrays(std::uint32_t index) {
  // Amortized growth in whole slab-chunk strides (one resize per 1024
  // inserts, not one per insert); dense vectors keep the per-hit link/flag
  // traffic in cache.
  const std::size_t want = (static_cast<std::size_t>(index) + 1024) & ~std::size_t{1023};
  // dcache-lint: allow(hot-path-alloc, one stride-sized resize per 1024 inserts, tracking the slab high-water mark)
  links_.resize(want);
  flags_.resize(want, 0);  // dcache-lint: allow(hot-path-alloc, grows in lockstep with links_, same amortization)
}

void FlatCache::linkFront(std::uint32_t index) noexcept {
  Links& link = links_[index];
  link.prev = kNil;
  link.next = head_;
  if (head_ != kNil) links_[head_].prev = index;
  head_ = index;
  if (tail_ == kNil) tail_ = index;
}

void FlatCache::unlink(std::uint32_t index) noexcept {
  Links& link = links_[index];
  if (link.prev != kNil) {
    links_[link.prev].next = link.next;
  } else {
    head_ = link.next;
  }
  if (link.next != kNil) {
    links_[link.next].prev = link.prev;
  } else {
    tail_ = link.prev;
  }
  link.prev = kNil;
  link.next = kNil;
}

void FlatCache::moveToFront(std::uint32_t index) noexcept {
  if (head_ == index) return;
  unlink(index);
  linkFront(index);
}

void FlatCache::removeNode(std::size_t pos, std::uint32_t index) {
  Node& node = slab_[index];
  if (mode_ != FlatMode::kClock) unlink(index);
  releaseKey(node);
  flags_[index] = 0;
  tableEraseAt(pos);
  slab_.release(index);
  --count_;
}

void FlatCache::evictOne() {
  if (mode_ == FlatMode::kClock) {
    evictClock();
    return;
  }
  cacheInvariant(tail_ != kNil, flatModeName(mode_),
                 "evictOne with no resident entries: accounted bytes "
                 "drifted from the entry set");
  const std::uint32_t index = tail_;
  const Node& node = slab_[index];
  const std::string_view key = keyOf(node);
  used_ -= chargedSize(key, node.entry);
  const std::size_t pos = findPos(util::fastHash64(key), key);
  removeNode(pos, index);
  ++stats_.evictions;
}

void FlatCache::forEachEntry(
    const std::function<void(std::string_view, const CacheEntry&)>& fn)
    const {
  if (mode_ == FlatMode::kClock) {
    // Node-index order over occupied nodes — index allocation follows the
    // same LIFO-freelist/bump discipline as ClockCache's slot vector, so
    // the visit sequence matches the node backend exactly.
    for (std::uint32_t i = 0; i < slab_.highWater(); ++i) {
      if (flags_[i] & kOccupiedBit) {
        const Node& node = slab_[i];
        fn(keyOf(node), node.entry);
      }
    }
    return;
  }
  for (std::uint32_t index = head_; index != kNil;
       index = links_[index].next) {
    const Node& node = slab_[index];
    fn(keyOf(node), node.entry);
  }
}

void FlatCache::evictClock() {
  cacheInvariant(count_ > 0, "flat-clock",
                 "evictOne with no resident entries: accounted bytes "
                 "drifted from the entry set");
  for (;;) {
    hand_ = (hand_ + 1) % slab_.highWater();
    const auto index = static_cast<std::uint32_t>(hand_);
    const std::uint8_t flags = flags_[index];
    if (!(flags & kOccupiedBit)) continue;
    if (flags & kReferencedBit) {
      flags_[index] = kOccupiedBit;  // second chance
      continue;
    }
    const Node& node = slab_[index];
    const std::string_view key = keyOf(node);
    used_ -= chargedSize(key, node.entry);
    const std::size_t pos = findPos(util::fastHash64(key), key);
    removeNode(pos, index);
    ++stats_.evictions;
    return;
  }
}

}  // namespace dcache::cache
