#include "cache/s3fifo.hpp"

#include <algorithm>

namespace dcache::cache {

S3FifoCache::S3FifoCache(util::Bytes capacity, double smallFraction)
    : capacity_(capacity),
      smallCapacity_(static_cast<std::uint64_t>(
          static_cast<double>(capacity.count()) *
          std::clamp(smallFraction, 0.01, 0.9))) {}

const CacheEntry* S3FifoCache::get(std::string_view key) {
  const auto it = index_.find(key);
  if (it == index_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  Item& item = *it->second;
  if (item.freq < 3) ++item.freq;
  ++stats_.hits;
  return &item.entry;
}

const CacheEntry* S3FifoCache::peek(std::string_view key) const {
  const auto it = index_.find(key);
  return it == index_.end() ? nullptr : &it->second->entry;
}

void S3FifoCache::rememberGhost(const std::string& key) {
  const std::uint64_t h = util::hashKey(key);
  if (ghost_.insert(h).second) {
    ghostOrder_.push_back(h);
  }
  while (ghostOrder_.size() > std::max<std::size_t>(ghostLimit_, 16)) {
    ghost_.erase(ghostOrder_.front());
    ghostOrder_.pop_front();
  }
}

void S3FifoCache::insert(std::string_view key, CacheEntry entry,
                         bool toMain) {
  Queue& queue = toMain ? main_ : small_;
  queue.push_front(Item{std::string(key), std::move(entry), 0, toMain});
  const Item& item = queue.front();
  index_.emplace(std::string_view(item.key), queue.begin());
  (toMain ? usedMain_ : usedSmall_) += chargedSize(item.key, item.entry);
  ++stats_.insertions;
}

void S3FifoCache::put(std::string_view key, CacheEntry entry) {
  const std::uint64_t need = chargedSize(key, entry);
  if (need > capacity_.count()) return;

  if (const auto it = index_.find(key); it != index_.end()) {
    Item& item = *it->second;
    const std::uint64_t old = chargedSize(item.key, item.entry);
    (item.inMain ? usedMain_ : usedSmall_) += need - old;
    item.entry = std::move(entry);
    if (item.freq < 3) ++item.freq;
    ++stats_.overwrites;
  } else {
    // Keys remembered by the ghost queue were recently evicted from small
    // after a single touch — their return proves reuse: admit to main.
    const bool toMain = ghost_.contains(util::hashKey(key));
    insert(key, std::move(entry), toMain);
  }

  while (usedSmall_ + usedMain_ > capacity_.count()) {
    // Either branch must make progress; an empty small queue that still
    // claims bytes (or vice versa) would spin here forever.
    cacheInvariant(!small_.empty() || !main_.empty(), "s3fifo",
                   "eviction loop with no resident entries: accounted "
                   "bytes drifted from the entry set");
    if (usedSmall_ > smallCapacity_ || main_.empty()) {
      evictFromSmall();
    } else {
      evictFromMain();
    }
  }
  ghostLimit_ = main_.size();
}

void S3FifoCache::evictFromSmall() {
  cacheInvariant(!small_.empty(), "s3fifo",
                 "evictFromSmall with an empty small queue: usedSmall_ "
                 "drifted from the queue contents");
  Item& victim = small_.back();
  const std::uint64_t size = chargedSize(victim.key, victim.entry);
  if (victim.freq > 0) {
    // Re-referenced while probationary: promote to main instead.
    usedSmall_ -= size;
    usedMain_ += size;
    victim.inMain = true;
    victim.freq = 0;
    auto last = std::prev(small_.end());
    main_.splice(main_.begin(), small_, last);
    // Iterator stays valid across splice; index_ already points at it.
    return;
  }
  rememberGhost(victim.key);
  usedSmall_ -= size;
  index_.erase(std::string_view(victim.key));
  small_.pop_back();
  ++stats_.evictions;
}

void S3FifoCache::evictFromMain() {
  while (!main_.empty()) {
    Item& victim = main_.back();
    if (victim.freq > 0) {
      // Frequency-aware second chance: decrement and reinsert at head.
      --victim.freq;
      auto last = std::prev(main_.end());
      main_.splice(main_.begin(), main_, last);
      continue;
    }
    usedMain_ -= chargedSize(victim.key, victim.entry);
    index_.erase(std::string_view(victim.key));
    main_.pop_back();
    ++stats_.evictions;
    return;
  }
}

bool S3FifoCache::erase(std::string_view key) {
  const auto it = index_.find(key);
  if (it == index_.end()) return false;
  Item& item = *it->second;
  const std::uint64_t size = chargedSize(item.key, item.entry);
  if (item.inMain) {
    usedMain_ -= size;
    main_.erase(it->second);
  } else {
    usedSmall_ -= size;
    small_.erase(it->second);
  }
  index_.erase(it);
  return true;
}

void S3FifoCache::forEachEntry(
    const std::function<void(std::string_view, const CacheEntry&)>& fn)
    const {
  for (const Item& item : small_) fn(item.key, item.entry);
  for (const Item& item : main_) fn(item.key, item.entry);
}

void S3FifoCache::clear() {
  index_.clear();
  small_.clear();
  main_.clear();
  ghost_.clear();
  ghostOrder_.clear();
  usedSmall_ = usedMain_ = 0;
}

}  // namespace dcache::cache
