// Miss-ratio curve machinery.
//
//  * MattsonProfiler — exact LRU stack distances in O(log n) per access
//    (Fenwick tree over access timestamps), giving the miss ratio of an LRU
//    cache of *any* size from a single trace pass. Used to validate the
//    simulated caches and by the theoretical model when driven by traces.
//  * Che approximation — analytic MR for a cache of C items under
//    independent-reference popularity, used by the Section-4 model where a
//    closed form in (s_A, s_D) is needed.
//  * Zipf helpers tying both to the synthetic workload parameters.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace dcache::cache {

class MattsonProfiler {
 public:
  MattsonProfiler() = default;

  /// Record one access; returns the LRU stack distance (number of distinct
  /// keys touched since this key's previous access), or UINT64_MAX for a
  /// cold (first-ever) access.
  std::uint64_t access(std::string_view key);

  [[nodiscard]] std::uint64_t accessCount() const noexcept { return time_; }
  [[nodiscard]] std::uint64_t distinctKeys() const noexcept {
    return lastAccess_.size();
  }

  /// Miss ratio of an LRU cache holding `items` entries: cold misses plus
  /// accesses whose stack distance exceeds the capacity.
  [[nodiscard]] double missRatio(std::uint64_t items) const noexcept;

  /// The whole curve at the given capacities.
  [[nodiscard]] std::vector<double> curve(
      std::span<const std::uint64_t> capacities) const;

 private:
  void bitAdd(std::size_t index, std::int64_t delta);
  [[nodiscard]] std::int64_t bitPrefix(std::size_t index) const noexcept;
  /// Grow the tree to cover `minSize` indices. A Fenwick tree cannot be
  /// grown by zero-extending (new parent nodes must include existing
  /// range sums), so growth rebuilds from the raw mark array.
  void growTo(std::size_t minSize);

  std::unordered_map<std::string, std::uint64_t> lastAccess_;
  std::vector<std::uint8_t> marks_;  // raw 0/1: timestamp is a key's newest
  std::vector<std::int64_t> bit_;    // Fenwick tree, 1-based over timestamps
  std::vector<std::uint64_t> distanceHist_;
  std::uint64_t coldMisses_ = 0;
  std::uint64_t time_ = 0;
};

/// Zipf popularity over `numKeys` ranks with exponent `alpha`, normalized
/// to request rates summing to 1.
[[nodiscard]] std::vector<double> zipfPopularity(std::uint64_t numKeys,
                                                 double alpha);

/// Che's characteristic time T for a cache of `items` entries under the
/// given per-key request rates: solves sum_i (1 - e^{-p_i T}) = items.
[[nodiscard]] double cheCharacteristicTime(std::span<const double> rates,
                                           double items);

/// Hit ratio under the Che approximation.
[[nodiscard]] double cheHitRatio(std::span<const double> rates, double items);

/// Analytic LRU miss ratio for a Zipf(numKeys, alpha) workload and a cache
/// of `items` entries. This is MR(x) in the paper's Section 4 model.
[[nodiscard]] double zipfMissRatio(std::uint64_t numKeys, double alpha,
                                   double items);

}  // namespace dcache::cache
