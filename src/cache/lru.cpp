#include "cache/lru.hpp"

namespace dcache::cache {

const CacheEntry* LruCache::get(std::string_view key) {
  const auto it = map_.find(key);
  if (it == map_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  list_.splice(list_.begin(), list_, it->second);
  ++stats_.hits;
  return &it->second->entry;
}

const CacheEntry* LruCache::peek(std::string_view key) const {
  const auto it = map_.find(key);
  return it == map_.end() ? nullptr : &it->second->entry;
}

void LruCache::put(std::string_view key, CacheEntry entry) {
  const std::uint64_t need = chargedSize(key, entry);
  if (need > capacity_.count()) return;  // cannot ever fit; not admitted

  if (const auto it = map_.find(key); it != map_.end()) {
    used_ -= chargedSize(key, it->second->entry);
    used_ += need;
    it->second->entry = std::move(entry);
    list_.splice(list_.begin(), list_, it->second);
    ++stats_.overwrites;
  } else {
    list_.push_front(Item{std::string(key), std::move(entry)});
    // string_view key points into the Item's own string: stable address.
    map_.emplace(std::string_view(list_.front().key), list_.begin());
    used_ += need;
    ++stats_.insertions;
  }
  while (used_ > capacity_.count()) evictOne();
}

bool LruCache::erase(std::string_view key) {
  const auto it = map_.find(key);
  if (it == map_.end()) return false;
  used_ -= chargedSize(key, it->second->entry);
  list_.erase(it->second);
  map_.erase(it);
  return true;
}

void LruCache::clear() {
  map_.clear();
  list_.clear();
  used_ = 0;
}

void LruCache::forEachEntry(
    const std::function<void(std::string_view, const CacheEntry&)>& fn)
    const {
  for (const Item& item : list_) fn(item.key, item.entry);
}

std::string_view LruCache::victim() const noexcept {
  return list_.empty() ? std::string_view{} : std::string_view(list_.back().key);
}

void LruCache::evictOne() {
  cacheInvariant(!list_.empty(), "lru",
                 "evictOne with no resident entries: accounted bytes "
                 "drifted from the entry set");
  const Item& last = list_.back();
  used_ -= chargedSize(last.key, last.entry);
  map_.erase(std::string_view(last.key));
  list_.pop_back();
  ++stats_.evictions;
}

}  // namespace dcache::cache
