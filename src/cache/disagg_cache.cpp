#include "cache/disagg_cache.hpp"

#include "sim/trace_hook.hpp"
#include "util/hash.hpp"

namespace dcache::cache {

DisaggCache::DisaggCache(sim::Tier& farTier, util::Bytes perNodeCapacity,
                         sim::Tier& appTier, util::Bytes hotCapacityPerNode,
                         rpc::Channel& channel, EvictionPolicy policy,
                         DisaggCosts costs)
    : farTier_(&farTier),
      appTier_(&appTier),
      channel_(&channel),
      costs_(costs) {
  farShards_.reserve(farTier.size());
  for (std::size_t i = 0; i < farTier.size(); ++i) {
    farShards_.push_back(makeCache(policy, perNodeCapacity));
    farTier.node(i).mem().provision(perNodeCapacity);
  }
  hotShards_.reserve(appTier.size());
  for (std::size_t i = 0; i < appTier.size(); ++i) {
    hotShards_.push_back(makeCache(policy, hotCapacityPerNode));
    // Additive: the app nodes already carry their base working-set memory.
    appTier.node(i).mem().provision(appTier.node(i).mem().provisioned() +
                                    hotCapacityPerNode);
  }
}

DisaggCache::GetResult DisaggCache::hotGet(std::size_t appIndex,
                                           std::string_view key) {
  sim::SpanGuard span("disagg.hot.get", sim::TierKind::kAppServer);
  sim::Node& app = appTier_->node(appIndex);
  app.charge(sim::CpuComponent::kCacheOp, costs_.hotProbeMicros);
  const CacheEntry* entry = hotShards_[appIndex]->get(key);
  GetResult out;
  out.hit = entry != nullptr;
  out.size = out.hit ? entry->size : 0;
  out.version = out.hit ? entry->version : 0;
  out.latencyMicros = costs_.hotProbeMicros;  // in-process: latency == CPU
  span.setOutcome(out.hit ? sim::SpanOutcome::kHit : sim::SpanOutcome::kMiss);
  return out;
}

void DisaggCache::hotFill(std::size_t appIndex, std::string_view key,
                          std::uint64_t size, std::uint64_t version) {
  sim::Node& app = appTier_->node(appIndex);
  app.charge(sim::CpuComponent::kCacheOp, costs_.hotInsertMicros);
  hotShards_[appIndex]->put(key, CacheEntry::sized(size, version));
  appTier_->node(appIndex).mem().use(hotShards_[appIndex]->bytesUsed());
}

void DisaggCache::hotInvalidate(std::size_t appIndex, std::string_view key) {
  sim::Node& app = appTier_->node(appIndex);
  app.charge(sim::CpuComponent::kCacheOp, costs_.hotProbeMicros);
  hotShards_[appIndex]->erase(key);
  appTier_->node(appIndex).mem().use(hotShards_[appIndex]->bytesUsed());
}

void DisaggCache::clearHotCaches() {
  for (auto& shard : hotShards_) shard->clear();
}

std::size_t DisaggCache::nodeForKey(std::string_view key) const noexcept {
  const std::uint64_t hash = util::hashKey(key);
  if (membershipOn_) {
    // Everyone-left fallback keeps routing total; one-sided reads against
    // the departed node then time out, which is the cost of draining the
    // whole pool. No planned schedule the benches run does that.
    return memberRing_.ownerOf(hash).value_or(hash % farShards_.size());
  }
  return hash % farShards_.size();
}

void DisaggCache::enableMembership() {
  if (membershipOn_) return;
  membershipOn_ = true;
  for (std::size_t i = 0; i < farShards_.size(); ++i) {
    memberRing_.addMember(i);
  }
}

void DisaggCache::joinNode(std::size_t nodeIndex) {
  if (!membershipOn_ || nodeIndex >= farShards_.size()) return;
  if (memberRing_.contains(nodeIndex)) return;  // replayed join: no-op
  memberRing_.addMember(nodeIndex);
}

void DisaggCache::leaveNode(std::size_t nodeIndex) {
  if (!membershipOn_ || nodeIndex >= farShards_.size()) return;
  memberRing_.removeMember(nodeIndex);  // idempotent: second leave no-ops
}

DisaggCache::GetResult DisaggCache::farGet(sim::Node& initiator,
                                           std::string_view key) {
  return farGetAt(initiator, nodeForKey(key), key);
}

DisaggCache::GetResult DisaggCache::farGetAt(sim::Node& initiator,
                                             std::size_t nodeIndex,
                                             std::string_view key) {
  sim::SpanGuard span("disagg.far.get", sim::TierKind::kFarMemory);
  sim::Node& target = farTier_->node(nodeIndex);
  // Client-driven placement: the initiator computes the slot itself; there
  // is no directory hop and no CPU at the pool beyond the NIC touch.
  initiator.charge(sim::CpuComponent::kFarMemAccess, costs_.lookupMicros);

  if (!target.isUp()) {
    // The pool node is gone: the posted read times out through the
    // channel's retry budget — the header-sized probe is all that was
    // ever going to cross.
    const auto read = channel_->oneSidedRead(initiator, target,
                                             kFarSlotHeaderBytes,
                                             costs_.oneSided);
    GetResult out;
    out.failed = true;
    out.latencyMicros = read.latencyMicros;
    span.setOutcome(sim::SpanOutcome::kFailed);
    return out;
  }

  KvCache& shard = *farShards_[nodeIndex];
  const CacheEntry* entry = shard.get(key);
  // The slot crosses the wire whole: header plus the value bytes when the
  // slot is occupied; an empty slot is a header-sized read.
  const std::uint64_t bytes =
      kFarSlotHeaderBytes + (entry != nullptr ? entry->size : 0);
  const auto read =
      channel_->oneSidedRead(initiator, target, bytes, costs_.oneSided);

  GetResult out;
  out.failed = !read.ok;
  out.hit = entry != nullptr && read.ok;
  out.size = out.hit ? entry->size : 0;
  out.version = out.hit ? entry->version : 0;
  out.latencyMicros = read.latencyMicros;
  out.wireBytes = read.ok ? bytes : 0;
  farTier_->node(nodeIndex).mem().use(shard.bytesUsed());
  span.setOutcome(out.failed ? sim::SpanOutcome::kFailed
                  : out.hit  ? sim::SpanOutcome::kHit
                             : sim::SpanOutcome::kMiss);
  return out;
}

double DisaggCache::farPut(sim::Node& initiator, std::string_view key,
                           std::uint64_t size, std::uint64_t version) {
  sim::SpanGuard span("disagg.far.put", sim::TierKind::kFarMemory);
  const std::size_t idx = nodeForKey(key);
  sim::Node& target = farTier_->node(idx);
  initiator.charge(sim::CpuComponent::kFarMemAccess, costs_.lookupMicros);
  // One-sided write: identical cost shape to the read (issue + per-byte
  // push + completion at the initiator, NIC touch at the pool).
  const auto write = channel_->oneSidedRead(
      initiator, target, kFarSlotHeaderBytes + size, costs_.oneSided);
  if (target.isUp() && write.ok) {
    farShards_[idx]->put(key, CacheEntry::sized(size, version));
    farTier_->node(idx).mem().use(farShards_[idx]->bytesUsed());
  }
  return write.latencyMicros;
}

double DisaggCache::farInvalidate(sim::Node& initiator, std::string_view key) {
  sim::SpanGuard span("disagg.far.inval", sim::TierKind::kFarMemory);
  const std::size_t idx = nodeForKey(key);
  sim::Node& target = farTier_->node(idx);
  initiator.charge(sim::CpuComponent::kFarMemAccess, costs_.lookupMicros);
  const auto write = channel_->oneSidedRead(initiator, target,
                                            kFarSlotHeaderBytes,
                                            costs_.oneSided);
  if (target.isUp() && write.ok) {
    farShards_[idx]->erase(key);
    farTier_->node(idx).mem().use(farShards_[idx]->bytesUsed());
  }
  return write.latencyMicros;
}

void DisaggCache::dropShard(std::size_t nodeIndex) {
  if (nodeIndex >= farShards_.size()) return;
  farShards_[nodeIndex]->clear();
}

CacheStats DisaggCache::farStats() const noexcept {
  CacheStats total;
  for (const auto& shard : farShards_) {
    total.hits += shard->stats().hits;
    total.misses += shard->stats().misses;
    total.insertions += shard->stats().insertions;
    total.overwrites += shard->stats().overwrites;
    total.evictions += shard->stats().evictions;
  }
  return total;
}

CacheStats DisaggCache::hotStats() const noexcept {
  CacheStats total;
  for (const auto& shard : hotShards_) {
    total.hits += shard->stats().hits;
    total.misses += shard->stats().misses;
    total.insertions += shard->stats().insertions;
    total.overwrites += shard->stats().overwrites;
    total.evictions += shard->stats().evictions;
  }
  return total;
}

util::Bytes DisaggCache::farBytesUsed() const noexcept {
  util::Bytes total;
  for (const auto& shard : farShards_) total += shard->bytesUsed();
  return total;
}

}  // namespace dcache::cache
