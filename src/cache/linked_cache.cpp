#include "cache/linked_cache.hpp"

#include "rpc/wire_size.hpp"
#include "sim/trace_hook.hpp"
#include "util/hash.hpp"

namespace dcache::cache {

LinkedCache::LinkedCache(sim::Tier& appTier, util::Bytes perNodeCapacity,
                         rpc::Channel& channel, EvictionPolicy policy,
                         CacheOpCosts costs)
    : tier_(&appTier),
      channel_(&channel),
      costs_(costs),
      perNodeCapacity_(perNodeCapacity) {
  shards_.reserve(appTier.size());
  for (std::size_t i = 0; i < appTier.size(); ++i) {
    shards_.push_back(makeCache(policy, perNodeCapacity));
    ring_.addMember(i);
    // The linked cache shares the app server's memory; the cache capacity
    // is provisioned on top of the app's working memory.
    appTier.node(i).mem().provision(appTier.node(i).mem().provisioned() +
                                    perNodeCapacity);
  }
}

std::size_t LinkedCache::ownerOf(std::string_view key) const noexcept {
  return ring_.ownerOf(util::hashKey(key)).value_or(0);
}

std::vector<std::size_t> LinkedCache::replicasOf(std::string_view key,
                                                 std::size_t n) const {
  return ring_.replicasOf(util::hashKey(key), n);
}

LinkedCache::GetResult LinkedCache::get(std::size_t serverIndex,
                                        std::string_view key) {
  return getAt(serverIndex, ownerOf(key), key);
}

LinkedCache::GetResult LinkedCache::getAt(std::size_t serverIndex,
                                          std::size_t ownerIndex,
                                          std::string_view key) {
  sim::SpanGuard span("linked.get", sim::TierKind::kAppServer);
  const std::size_t owner = ownerIndex;
  sim::Node& ownerNode = tier_->node(owner);
  KvCache* shard = shards_[owner].get();

  ownerNode.charge(sim::CpuComponent::kCacheOp, costs_.probeMicros);
  const CacheEntry* entry = shard->get(key);

  GetResult out;
  out.hit = entry != nullptr;
  out.local = owner == serverIndex;
  out.size = entry ? entry->size : 0;
  out.version = entry ? entry->version : 0;

  if (!out.local) {
    // Forwarded probe: the value is marshalled between the two app servers.
    const std::uint64_t respBytes = rpc::getResponseWireSize() + out.size;
    const auto call =
        channel_->call(tier_->node(serverIndex), ownerNode,
                       rpc::getRequestWireSize(key.size()), respBytes);
    out.latencyMicros = call.latencyMicros;
  }
  ownerNode.mem().use(shard->bytesUsed());
  span.setOutcome(out.hit ? sim::SpanOutcome::kHit : sim::SpanOutcome::kMiss);
  return out;
}

void LinkedCache::fill(std::string_view key, std::uint64_t size,
                       std::uint64_t version) {
  fillAt(ownerOf(key), key, size, version);
}

void LinkedCache::fillAt(std::size_t ownerIndex, std::string_view key,
                         std::uint64_t size, std::uint64_t version) {
  sim::SpanGuard span("linked.fill", sim::TierKind::kAppServer);
  const std::size_t owner = ownerIndex;
  tier_->node(owner).charge(sim::CpuComponent::kCacheOp, costs_.insertMicros);
  shards_[owner]->put(key, CacheEntry::sized(size, version));
  tier_->node(owner).mem().use(shards_[owner]->bytesUsed());
}

double LinkedCache::invalidate(std::size_t writerIndex, std::string_view key) {
  return invalidateAt(writerIndex, ownerOf(key), key);
}

double LinkedCache::invalidateAt(std::size_t writerIndex,
                                 std::size_t ownerIndex,
                                 std::string_view key) {
  sim::SpanGuard span("linked.inval", sim::TierKind::kAppServer);
  const std::size_t owner = ownerIndex;
  sim::Node& ownerNode = tier_->node(owner);
  ownerNode.charge(sim::CpuComponent::kCacheOp, costs_.probeMicros);
  shards_[owner]->erase(key);
  if (owner == writerIndex) return 0.0;
  return channel_->oneWay(tier_->node(writerIndex), ownerNode,
                          rpc::getRequestWireSize(key.size()));
}

double LinkedCache::update(std::size_t writerIndex, std::string_view key,
                           std::uint64_t size, std::uint64_t version) {
  return updateAt(writerIndex, ownerOf(key), key, size, version);
}

double LinkedCache::updateAt(std::size_t writerIndex, std::size_t ownerIndex,
                             std::string_view key, std::uint64_t size,
                             std::uint64_t version) {
  sim::SpanGuard span("linked.update", sim::TierKind::kAppServer);
  const std::size_t owner = ownerIndex;
  sim::Node& ownerNode = tier_->node(owner);
  ownerNode.charge(sim::CpuComponent::kCacheOp, costs_.insertMicros);
  shards_[owner]->put(key, CacheEntry::sized(size, version));
  ownerNode.mem().use(shards_[owner]->bytesUsed());
  if (owner == writerIndex) return 0.0;
  return channel_->oneWay(tier_->node(writerIndex), ownerNode,
                          rpc::putRequestWireSize(key.size()) + size);
}

void LinkedCache::removeServer(std::size_t serverIndex) {
  if (serverIndex >= shards_.size()) return;
  // Double-apply guard: removing a non-member must be a no-op. Without the
  // check, a replayed crash event would clear a shard the server refilled
  // after rejoining.
  if (!ring_.removeMember(serverIndex)) return;
  shards_[serverIndex]->clear();
}

void LinkedCache::drainServer(std::size_t serverIndex) {
  if (serverIndex >= shards_.size()) return;
  ring_.removeMember(serverIndex);  // idempotent: second drain is a no-op
}

void LinkedCache::dropShard(std::size_t serverIndex) {
  if (serverIndex >= shards_.size()) return;
  shards_[serverIndex]->clear();
  tier_->node(serverIndex).mem().use(shards_[serverIndex]->bytesUsed());
}

void LinkedCache::addServer(std::size_t serverIndex) {
  if (serverIndex >= shards_.size()) return;
  if (ring_.contains(serverIndex)) return;
  shards_[serverIndex]->clear();  // cold restart: nothing survives
  ring_.addMember(serverIndex);
}

CacheStats LinkedCache::aggregateStats() const noexcept {
  CacheStats total;
  for (const auto& shard : shards_) {
    total.hits += shard->stats().hits;
    total.misses += shard->stats().misses;
    total.insertions += shard->stats().insertions;
    total.overwrites += shard->stats().overwrites;
    total.evictions += shard->stats().evictions;
  }
  return total;
}

util::Bytes LinkedCache::bytesUsed() const noexcept {
  util::Bytes total;
  for (const auto& shard : shards_) total += shard->bytesUsed();
  return total;
}

std::size_t LinkedCache::itemCount() const noexcept {
  std::size_t total = 0;
  for (const auto& shard : shards_) total += shard->itemCount();
  return total;
}

}  // namespace dcache::cache
