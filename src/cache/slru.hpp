// Segmented LRU: a probation segment admits new entries; a second hit
// promotes into a protected segment. Scan-resistant, which matters for
// workloads that mix a hot set with one-touch traffic (the Meta trace has
// exactly this shape). The segment split is configurable for the ablation
// bench.
#pragma once

#include <memory>

#include "cache/kv_cache.hpp"

namespace dcache::cache {

class SlruCache final : public KvCache {
 public:
  /// `protectedFraction` of the capacity goes to the protected segment.
  /// Non-finite fractions fall back to the default split; finite ones are
  /// clamped to [0, 1]. The two segment capacities always partition
  /// `capacity` exactly — the fraction math is done in integers so a
  /// floating-point overshoot can never push the protected segment past the
  /// total (and the probation capacity can never wrap).
  explicit SlruCache(util::Bytes capacity, double protectedFraction = 0.8,
                     CacheBackend backend = CacheBackend::kAuto);

  [[nodiscard]] const CacheEntry* get(std::string_view key) override;
  void put(std::string_view key, CacheEntry entry) override;
  bool erase(std::string_view key) override;
  void clear() override;
  [[nodiscard]] const CacheEntry* peek(std::string_view key) const override;
  void forEachEntry(
      const std::function<void(std::string_view, const CacheEntry&)>& fn)
      const override;

  [[nodiscard]] std::size_t itemCount() const noexcept override {
    return probation_->itemCount() + protected_->itemCount();
  }
  [[nodiscard]] util::Bytes bytesUsed() const noexcept override {
    return probation_->bytesUsed() + protected_->bytesUsed();
  }
  [[nodiscard]] util::Bytes capacity() const noexcept override {
    return capacity_;
  }

  [[nodiscard]] const KvCache& probationSegment() const noexcept {
    return *probation_;
  }
  [[nodiscard]] const KvCache& protectedSegment() const noexcept {
    return *protected_;
  }

 private:
  util::Bytes capacity_;
  std::unique_ptr<KvCache> probation_;
  std::unique_ptr<KvCache> protected_;
};

}  // namespace dcache::cache
