#include "cache/lfu.hpp"

namespace dcache::cache {

void LfuCache::bumpFrequency(Bucket::iterator it) {
  const std::uint64_t freq = it->freq;
  Bucket& from = buckets_[freq];
  Bucket& to = buckets_[freq + 1];
  it->freq = freq + 1;
  to.splice(to.begin(), from, it);  // iterator (and index_) stay valid
  if (from.empty()) buckets_.erase(freq);
}

const CacheEntry* LfuCache::get(std::string_view key) {
  const auto it = index_.find(key);
  if (it == index_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  bumpFrequency(it->second);
  ++stats_.hits;
  return &it->second->entry;
}

const CacheEntry* LfuCache::peek(std::string_view key) const {
  const auto it = index_.find(key);
  return it == index_.end() ? nullptr : &it->second->entry;
}

void LfuCache::put(std::string_view key, CacheEntry entry) {
  const std::uint64_t need = chargedSize(key, entry);
  if (need > capacity_.count()) return;

  if (const auto it = index_.find(key); it != index_.end()) {
    used_ -= chargedSize(key, it->second->entry);
    used_ += need;
    it->second->entry = std::move(entry);
    bumpFrequency(it->second);
    ++stats_.overwrites;
  } else {
    Bucket& bucket = buckets_[1];
    bucket.push_front(Item{std::string(key), std::move(entry), 1});
    index_.emplace(std::string_view(bucket.front().key), bucket.begin());
    used_ += need;
    ++stats_.insertions;
  }
  while (used_ > capacity_.count()) evictOne();
}

bool LfuCache::erase(std::string_view key) {
  const auto it = index_.find(key);
  if (it == index_.end()) return false;
  const std::uint64_t freq = it->second->freq;
  used_ -= chargedSize(key, it->second->entry);
  Bucket& bucket = buckets_[freq];
  bucket.erase(it->second);
  if (bucket.empty()) buckets_.erase(freq);
  index_.erase(it);
  return true;
}

void LfuCache::clear() {
  index_.clear();
  buckets_.clear();
  used_ = 0;
}

void LfuCache::forEachEntry(
    const std::function<void(std::string_view, const CacheEntry&)>& fn)
    const {
  for (const auto& [freq, bucket] : buckets_) {
    for (const Item& item : bucket) fn(item.key, item.entry);
  }
}

std::uint64_t LfuCache::frequencyOf(std::string_view key) const {
  const auto it = index_.find(key);
  return it == index_.end() ? 0 : it->second->freq;
}

void LfuCache::evictOne() {
  cacheInvariant(!buckets_.empty(), "lfu",
                 "evictOne with no resident entries: accounted bytes "
                 "drifted from the entry set");
  Bucket& lowest = buckets_.begin()->second;
  const Item& victim = lowest.back();  // LRU within the lowest frequency
  used_ -= chargedSize(victim.key, victim.entry);
  index_.erase(std::string_view(victim.key));
  lowest.pop_back();
  if (lowest.empty()) buckets_.erase(buckets_.begin());
  ++stats_.evictions;
}

}  // namespace dcache::cache
