#include "cache/slru.hpp"

#include <algorithm>

namespace dcache::cache {

SlruCache::SlruCache(util::Bytes capacity, double protectedFraction)
    : capacity_(capacity) {
  protectedFraction = std::clamp(protectedFraction, 0.0, 1.0);
  const auto protectedBytes = capacity * protectedFraction;
  probation_ = std::make_unique<LruCache>(capacity - protectedBytes);
  protected_ = std::make_unique<LruCache>(protectedBytes);
}

const CacheEntry* SlruCache::get(std::string_view key) {
  // Protected first: the hot set lives there.
  if (const CacheEntry* hit = protected_->peek(key)) {
    const CacheEntry* refreshed = protected_->get(key);  // bump recency
    ++stats_.hits;
    return refreshed ? refreshed : hit;
  }
  if (const CacheEntry* hit = probation_->peek(key)) {
    ++stats_.hits;
    // Second touch: promote to protected. Protected may evict its own LRU
    // victim; the demoted key falls out entirely (standard SLRU variant).
    // Entries too large for the protected segment stay in probation.
    if (chargedSize(key, *hit) > protected_->capacity().count()) {
      return probation_->get(key);  // refresh recency in place
    }
    CacheEntry copy = *hit;
    probation_->erase(key);
    protected_->put(key, std::move(copy));
    return protected_->peek(key);
  }
  ++stats_.misses;
  return nullptr;
}

const CacheEntry* SlruCache::peek(std::string_view key) const {
  if (const CacheEntry* hit = protected_->peek(key)) return hit;
  return probation_->peek(key);
}

void SlruCache::put(std::string_view key, CacheEntry entry) {
  if (protected_->peek(key) != nullptr) {
    protected_->put(key, std::move(entry));  // update in place
    return;
  }
  ++stats_.insertions;
  // New entries go to probation; entries the probation segment cannot hold
  // (tiny split, large object) are admitted straight to protected rather
  // than silently dropped.
  if (chargedSize(key, entry) > probation_->capacity().count()) {
    probation_->erase(key);
    protected_->put(key, std::move(entry));
    return;
  }
  probation_->put(key, std::move(entry));
}

bool SlruCache::erase(std::string_view key) {
  const bool a = protected_->erase(key);
  const bool b = probation_->erase(key);
  return a || b;
}

void SlruCache::clear() {
  probation_->clear();
  protected_->clear();
}

}  // namespace dcache::cache
