// dcache-lint: allow-file(hot-path-alloc, segments are built once in the constructor; per-op work is delegated to the segment caches)
#include "cache/slru.hpp"

#include <algorithm>
#include <cmath>

#include "cache/flat_cache.hpp"
#include "cache/lru.hpp"

namespace dcache::cache {

namespace {

[[nodiscard]] std::unique_ptr<KvCache> makeSegment(util::Bytes bytes,
                                                   CacheBackend backend) {
  if (backend == CacheBackend::kAuto) backend = defaultCacheBackend();
  if (backend == CacheBackend::kFlat) {
    return std::make_unique<FlatCache>(FlatMode::kLru, bytes);
  }
  return std::make_unique<LruCache>(bytes);
}

}  // namespace

SlruCache::SlruCache(util::Bytes capacity, double protectedFraction,
                     CacheBackend backend)
    : capacity_(capacity) {
  // Clamp in integer space: `capacity * fraction` goes through a double, so
  // for huge capacities rounding could overshoot the total and leave the
  // probation segment with a wrapped (or zero) capacity.
  const double fraction = std::isfinite(protectedFraction)
                              ? std::clamp(protectedFraction, 0.0, 1.0)
                              : 0.8;
  std::uint64_t protectedBytes = (capacity * fraction).count();
  protectedBytes = std::min(protectedBytes, capacity.count());
  probation_ =
      makeSegment(util::Bytes::of(capacity.count() - protectedBytes), backend);
  protected_ = makeSegment(util::Bytes::of(protectedBytes), backend);
}

const CacheEntry* SlruCache::get(std::string_view key) {
  // Protected first: the hot set lives there.
  if (const CacheEntry* hit = protected_->peek(key)) {
    const CacheEntry* refreshed = protected_->get(key);  // bump recency
    ++stats_.hits;
    return refreshed ? refreshed : hit;
  }
  if (const CacheEntry* hit = probation_->peek(key)) {
    ++stats_.hits;
    // Second touch: promote to protected. Protected may evict its own LRU
    // victim; the demoted key falls out entirely (standard SLRU variant).
    // Entries too large for the protected segment stay in probation.
    if (chargedSize(key, *hit) > protected_->capacity().count()) {
      return probation_->get(key);  // refresh recency in place
    }
    CacheEntry copy = *hit;
    probation_->erase(key);
    protected_->put(key, std::move(copy));
    return protected_->peek(key);
  }
  ++stats_.misses;
  return nullptr;
}

const CacheEntry* SlruCache::peek(std::string_view key) const {
  if (const CacheEntry* hit = protected_->peek(key)) return hit;
  return probation_->peek(key);
}

void SlruCache::put(std::string_view key, CacheEntry entry) {
  const std::uint64_t need = chargedSize(key, entry);
  if (protected_->peek(key) != nullptr) {
    // Update in place. The segment rejects entries larger than its whole
    // capacity, leaving the old entry resident — that counts as neither
    // insertion nor overwrite (see CacheStats).
    if (need <= protected_->capacity().count()) ++stats_.overwrites;
    protected_->put(key, std::move(entry));
    return;
  }
  const bool resident = probation_->peek(key) != nullptr;
  // New entries go to probation; entries the probation segment cannot hold
  // (tiny split, large object) are admitted straight to protected rather
  // than silently dropped.
  if (need > probation_->capacity().count()) {
    probation_->erase(key);
    if (need <= protected_->capacity().count()) {
      resident ? ++stats_.overwrites : ++stats_.insertions;
    }
    protected_->put(key, std::move(entry));
    return;
  }
  resident ? ++stats_.overwrites : ++stats_.insertions;
  probation_->put(key, std::move(entry));
}

bool SlruCache::erase(std::string_view key) {
  const bool a = protected_->erase(key);
  const bool b = probation_->erase(key);
  return a || b;
}

void SlruCache::clear() {
  probation_->clear();
  protected_->clear();
}

void SlruCache::forEachEntry(
    const std::function<void(std::string_view, const CacheEntry&)>& fn)
    const {
  probation_->forEachEntry(fn);
  protected_->forEachEntry(fn);
}

}  // namespace dcache::cache
