#include "cache/hash_ring.hpp"

#include <algorithm>

#include "util/hash.hpp"

namespace dcache::cache {

void HashRing::addMember(std::size_t member) {
  if (contains(member)) return;
  members_.push_back(member);
  for (std::size_t v = 0; v < vnodes_; ++v) {
    const std::uint64_t point =
        util::hashCombine(util::hashU64(member), util::hashU64(v));
    ring_.emplace(point, member);
  }
}

bool HashRing::removeMember(std::size_t member) {
  const auto it = std::find(members_.begin(), members_.end(), member);
  if (it == members_.end()) return false;
  members_.erase(it);
  for (auto ringIt = ring_.begin(); ringIt != ring_.end();) {
    if (ringIt->second == member) {
      ringIt = ring_.erase(ringIt);
    } else {
      ++ringIt;
    }
  }
  return true;
}

std::optional<std::size_t> HashRing::ownerOf(
    std::uint64_t keyHash) const noexcept {
  if (ring_.empty()) return std::nullopt;
  auto it = ring_.lower_bound(keyHash);
  if (it == ring_.end()) it = ring_.begin();  // wrap around
  return it->second;
}

std::vector<std::size_t> HashRing::replicasOf(std::uint64_t keyHash,
                                              std::size_t n) const {
  std::vector<std::size_t> out;
  if (ring_.empty() || n == 0) return out;
  const std::size_t want = std::min(n, members_.size());
  out.reserve(want);
  auto it = ring_.lower_bound(keyHash);
  if (it == ring_.end()) it = ring_.begin();  // wrap around
  const auto start = it;
  do {
    // Linear membership scan: `want` is a replication factor (2–3), not a
    // fleet size, so this beats a set.
    if (std::find(out.begin(), out.end(), it->second) == out.end()) {
      out.push_back(it->second);
      if (out.size() == want) break;
    }
    ++it;
    if (it == ring_.end()) it = ring_.begin();
  } while (it != start);
  return out;
}

bool HashRing::contains(std::size_t member) const noexcept {
  return std::find(members_.begin(), members_.end(), member) !=
         members_.end();
}

std::vector<double> HashRing::ownershipShares(std::size_t sampleKeys) const {
  std::size_t maxMember = 0;
  for (const std::size_t m : members_) maxMember = std::max(maxMember, m);
  std::vector<double> shares(members_.empty() ? 0 : maxMember + 1, 0.0);
  if (ring_.empty() || sampleKeys == 0) return shares;
  for (std::size_t i = 0; i < sampleKeys; ++i) {
    const auto owner = ownerOf(util::hashU64(i));
    if (owner) shares[*owner] += 1.0;
  }
  for (double& s : shares) s /= static_cast<double>(sampleKeys);
  return shares;
}

}  // namespace dcache::cache
