// CLOCK (second-chance) eviction: an LRU approximation with O(1) hits that
// never touches a global list — the structure used by TiKV-style block
// caches where lock contention on a recency list matters. Our storage-layer
// block cache composes this policy.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "cache/kv_cache.hpp"
#include "util/hash.hpp"

namespace dcache::cache {

class ClockCache final : public KvCache {
 public:
  explicit ClockCache(util::Bytes capacity) : capacity_(capacity) {}

  [[nodiscard]] const CacheEntry* get(std::string_view key) override;
  void put(std::string_view key, CacheEntry entry) override;
  bool erase(std::string_view key) override;
  void clear() override;
  [[nodiscard]] const CacheEntry* peek(std::string_view key) const override;
  void forEachEntry(
      const std::function<void(std::string_view, const CacheEntry&)>& fn)
      const override;

  [[nodiscard]] std::size_t itemCount() const noexcept override {
    return map_.size();
  }
  [[nodiscard]] util::Bytes bytesUsed() const noexcept override {
    return util::Bytes::of(used_);
  }
  [[nodiscard]] util::Bytes capacity() const noexcept override {
    return capacity_;
  }

 private:
  struct Slot {
    std::string key;
    CacheEntry entry;
    bool referenced = false;
    bool occupied = false;
  };

  void evictOne();

  util::Bytes capacity_;
  std::uint64_t used_ = 0;
  std::vector<Slot> slots_;
  std::vector<std::size_t> freeList_;
  std::size_t hand_ = 0;
  // Owning keys: slot strings may move when slots_ grows, so the map keys
  // must not alias them. Heterogeneous lookup keeps probes allocation-free.
  std::unordered_map<std::string, std::size_t, util::TransparentStringHash,
                     std::equal_to<>>
      map_;
};

}  // namespace dcache::cache
