// Byte-capacity-bounded key-value cache interface and the entry/statistics
// types shared by all eviction policies. Entries carry an accounted logical
// size separate from the (optional) materialized payload, so a simulation
// over 1 MB values does not need gigabytes of host RAM while the hit/miss
// behaviour stays exact: admission and eviction are driven purely by the
// accounted sizes.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>

#include "util/bytes.hpp"

namespace dcache::cache {

/// Cached value. `size` is the logical value size used for capacity math;
/// `payload` may hold real bytes (functional use) or stay empty (simulation).
struct CacheEntry {
  std::uint64_t size = 0;
  std::uint64_t version = 0;
  std::string payload;

  [[nodiscard]] static CacheEntry sized(std::uint64_t size,
                                        std::uint64_t version = 0) {
    return CacheEntry{size, version, {}};
  }
  [[nodiscard]] static CacheEntry of(std::string payload,
                                     std::uint64_t version = 0) {
    const auto n = static_cast<std::uint64_t>(payload.size());
    return CacheEntry{n, version, std::move(payload)};
  }
};

/// Counter semantics, shared by every policy and backend so identical op
/// streams produce identical stats:
///   - `hits`/`misses` count `get` calls only; `peek` never touches stats.
///   - `insertions` counts puts admitted as a NEW resident key.
///   - `overwrites` counts puts that replaced an already-resident entry.
///   - A put rejected up front (charged size exceeds total capacity) counts
///     as neither insertion nor overwrite.
///   - `evictions` counts entries removed by capacity pressure; explicit
///     `erase` is not an eviction.
///   - `hitRatio()` and `missRatio()` both return 0.0 before any lookup.
struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;
  std::uint64_t overwrites = 0;
  std::uint64_t evictions = 0;

  [[nodiscard]] std::uint64_t lookups() const noexcept { return hits + misses; }
  [[nodiscard]] double hitRatio() const noexcept {
    const auto n = lookups();
    return n ? static_cast<double>(hits) / static_cast<double>(n) : 0.0;
  }
  [[nodiscard]] double missRatio() const noexcept {
    const auto n = lookups();
    return n ? static_cast<double>(misses) / static_cast<double>(n) : 0.0;
  }
  void clear() noexcept { *this = CacheStats{}; }
};

/// Fixed per-entry bookkeeping overhead charged against capacity (hash map
/// node, list links, sizes) — matches what production caches account for.
inline constexpr std::uint64_t kEntryOverheadBytes = 80;

[[nodiscard]] inline std::uint64_t chargedSize(std::string_view key,
                                               const CacheEntry& entry) noexcept {
  return entry.size + key.size() + kEntryOverheadBytes;
}

/// Aborts with a diagnostic on stderr. Split out of cacheInvariant so the
/// inlined fast path is a single predictable branch.
[[noreturn]] void cacheInvariantFailure(const char* policy, const char* what);

/// Always-on accounting invariant (active under NDEBUG too: the eviction
/// loops run in RelWithDebInfo benches where a plain assert would vanish).
/// A violation means byte accounting drifted from the resident entries —
/// aborting beats silently re-zeroing `used_` and masking the drift.
inline void cacheInvariant(bool condition, const char* policy,
                           const char* what) {
  if (!condition) [[unlikely]] {
    cacheInvariantFailure(policy, what);
  }
}

class KvCache {
 public:
  virtual ~KvCache() = default;

  KvCache(const KvCache&) = delete;
  KvCache& operator=(const KvCache&) = delete;

  /// Pointer valid until the next mutating call; nullptr on miss.
  [[nodiscard]] virtual const CacheEntry* get(std::string_view key) = 0;
  /// Insert or overwrite. Evicts as needed; an entry larger than the whole
  /// capacity is not admitted.
  virtual void put(std::string_view key, CacheEntry entry) = 0;
  virtual bool erase(std::string_view key) = 0;
  virtual void clear() = 0;

  /// Peek without affecting recency or hit/miss statistics.
  [[nodiscard]] virtual const CacheEntry* peek(std::string_view key) const = 0;

  /// Enumerate every resident entry (bulk operations: membership handoff
  /// snapshots, audits). Like peek, never touches recency or stats. The
  /// visit order is policy-defined but deterministic, and identical between
  /// the node and flat backends for the policies both implement — the
  /// golden benches stay byte-identical under DCACHE_CACHE_BACKEND either
  /// way. The callback must not mutate the cache.
  virtual void forEachEntry(
      const std::function<void(std::string_view, const CacheEntry&)>& fn)
      const = 0;

  [[nodiscard]] virtual std::size_t itemCount() const noexcept = 0;
  [[nodiscard]] virtual util::Bytes bytesUsed() const noexcept = 0;
  [[nodiscard]] virtual util::Bytes capacity() const noexcept = 0;

  [[nodiscard]] const CacheStats& stats() const noexcept { return stats_; }
  void clearStats() noexcept { stats_.clear(); }

 protected:
  KvCache() = default;
  CacheStats stats_;
};

/// Eviction policy selector for the factory.
enum class EvictionPolicy : std::uint8_t {
  kLru,
  kFifo,
  kClock,
  kSlru,
  kLfu,
  kS3Fifo,
};

[[nodiscard]] std::string_view evictionPolicyName(EvictionPolicy p) noexcept;

/// Storage backend selector. `kNode` is the original std::list +
/// std::unordered_map implementation (one heap allocation per entry);
/// `kFlat` is the slab/arena + open-addressing backend (flat_cache.hpp),
/// sequence-identical to kNode for LRU/FIFO/Clock. `kAuto` picks kFlat for
/// the policies the flat backend implements (LRU/FIFO/Clock, and SLRU via
/// flat LRU segments) and kNode for the rest, honoring the
/// DCACHE_CACHE_BACKEND=node|flat environment override.
enum class CacheBackend : std::uint8_t {
  kAuto,
  kNode,
  kFlat,
};

[[nodiscard]] std::string_view cacheBackendName(CacheBackend b) noexcept;

/// Resolve kAuto against the DCACHE_CACHE_BACKEND override (parsed once).
[[nodiscard]] CacheBackend defaultCacheBackend() noexcept;

/// Build a cache of the given policy and byte capacity.
[[nodiscard]] std::unique_ptr<KvCache> makeCache(
    EvictionPolicy policy, util::Bytes capacity,
    CacheBackend backend = CacheBackend::kAuto);

}  // namespace dcache::cache
