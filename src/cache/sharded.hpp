// Hash-sharded cache: N independent policy instances, each guarding a slice
// of the keyspace. This is how both the remote cache tier (one shard per
// pod) and the linked cache (one shard per app server) are organized.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "cache/kv_cache.hpp"
#include "util/hash.hpp"

namespace dcache::cache {

class ShardedCache final : public KvCache {
 public:
  using ShardFactory = std::function<std::unique_ptr<KvCache>(util::Bytes)>;

  /// `totalCapacity` is split evenly across `shardCount` shards built by
  /// `factory` (defaults to LRU).
  ShardedCache(util::Bytes totalCapacity, std::size_t shardCount,
               ShardFactory factory = {});

  [[nodiscard]] const CacheEntry* get(std::string_view key) override;
  void put(std::string_view key, CacheEntry entry) override;
  bool erase(std::string_view key) override;
  void clear() override;
  [[nodiscard]] const CacheEntry* peek(std::string_view key) const override;
  void forEachEntry(
      const std::function<void(std::string_view, const CacheEntry&)>& fn)
      const override;

  [[nodiscard]] std::size_t itemCount() const noexcept override;
  [[nodiscard]] util::Bytes bytesUsed() const noexcept override;
  [[nodiscard]] util::Bytes capacity() const noexcept override;

  [[nodiscard]] std::size_t shardCount() const noexcept {
    return shards_.size();
  }
  [[nodiscard]] std::size_t shardForKey(std::string_view key) const noexcept {
    return util::hashKey(key) % shards_.size();
  }
  [[nodiscard]] KvCache& shard(std::size_t i) noexcept { return *shards_[i]; }
  [[nodiscard]] const KvCache& shard(std::size_t i) const noexcept {
    return *shards_[i];
  }

  /// Aggregate hit/miss stats across shards (shard stats stay per-shard).
  [[nodiscard]] CacheStats aggregateStats() const noexcept;

 private:
  std::vector<std::unique_ptr<KvCache>> shards_;
};

}  // namespace dcache::cache
