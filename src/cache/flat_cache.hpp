// MICA-style flat cache backend: one open-addressing index (power-of-two,
// linear probing, stored 64-bit hashes, backward-shift deletion) over a
// chunked node slab with intrusive uint32 recency links — zero per-entry
// heap allocations on the serve path. Implements LRU, FIFO and Clock behind
// the KvCache interface, sequence-identical to the node-based policies in
// lru.cpp/fifo.cpp/clock.cpp: the differential fuzz suite
// (tests/test_cache_differential.cpp) drives both backends in lockstep and
// the golden benches are byte-identical under either.
//
// Sequence-identity notes:
//  - LRU/FIFO eviction order is carried entirely by the intrusive list, so
//    slot-allocation order cannot affect behaviour.
//  - Clock replicates ClockCache exactly: node indices are handed out with
//    the same LIFO-freelist/bump discipline as ClockCache's slot vector, and
//    the hand sweeps `(hand + 1) % highWater` over occupied nodes with the
//    same second-chance bit.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "cache/kv_cache.hpp"
#include "cache/slab.hpp"

namespace dcache::cache {

/// Which eviction behaviour a FlatCache instance provides.
enum class FlatMode : std::uint8_t {
  kLru,
  kFifo,
  kClock,
};

class FlatCache final : public KvCache {
 public:
  FlatCache(FlatMode mode, util::Bytes capacity);

  [[nodiscard]] const CacheEntry* get(std::string_view key) override;
  void put(std::string_view key, CacheEntry entry) override;
  bool erase(std::string_view key) override;
  void clear() override;
  [[nodiscard]] const CacheEntry* peek(std::string_view key) const override;
  void forEachEntry(
      const std::function<void(std::string_view, const CacheEntry&)>& fn)
      const override;

  [[nodiscard]] std::size_t itemCount() const noexcept override {
    return count_;
  }
  [[nodiscard]] util::Bytes bytesUsed() const noexcept override {
    return util::Bytes::of(used_);
  }
  [[nodiscard]] util::Bytes capacity() const noexcept override {
    return capacity_;
  }

  [[nodiscard]] FlatMode mode() const noexcept { return mode_; }

  /// Next eviction candidate for LRU/FIFO (empty when the cache is empty or
  /// in clock mode) — parity with LruCache::victim for tests.
  [[nodiscard]] std::string_view victim() const noexcept;

 private:
  static constexpr std::uint32_t kNil = 0xffffffffu;
  static constexpr std::size_t kNpos = static_cast<std::size_t>(-1);
  static constexpr std::uint32_t kInlineKeyBytes = 24;
  static constexpr std::size_t kInitialTableSlots = 16;

  /// Entry payload + key storage. Hot per-probe data lives elsewhere: the
  /// key hash is in the table slot (probes never touch nodes until the
  /// final key verify), recency links are in links_ and clock bits in
  /// flags_ (dense parallel arrays), so the randomly-accessed node records
  /// are touched exactly once per hit.
  struct Node {
    CacheEntry entry;
    KeyArena::Ref keyRef;
    std::uint32_t keyLength = 0;
    /// This node's slab index — links_/flags_ subscript. Kept in the node
    /// so the table can hold direct pointers (one load) and the index is
    /// free once the node is touched.
    std::uint32_t self = 0;
    char inlineKey[kInlineKeyBytes];
  };

  /// Open-addressing slot: full stored hash + direct node pointer (slab
  /// chunks never move, so pointers are stable). Storing the whole hash
  /// keeps probe chains, backward-shift deletion and table growth off the
  /// node records entirely; the pointer keeps the hit path at one
  /// dependent load from slot to entry.
  struct TableSlot {
    std::uint64_t hash = 0;
    Node* node = nullptr;
  };

  struct Links {
    std::uint32_t prev = kNil;
    std::uint32_t next = kNil;
  };

  static constexpr std::uint8_t kOccupiedBit = 1;
  static constexpr std::uint8_t kReferencedBit = 2;

  [[nodiscard]] std::string_view keyOf(const Node& node) const noexcept {
    return node.keyLength <= kInlineKeyBytes
               ? std::string_view(node.inlineKey, node.keyLength)
               : arena_.view(node.keyRef, node.keyLength);
  }
  void storeKey(Node& node, std::string_view key);
  void releaseKey(Node& node);

  /// Single probe serving both lookup and insert: returns the matching
  /// slot (found = true) or the first empty slot where `key` would be
  /// inserted (found = false) — callers never probe a cluster twice.
  [[nodiscard]] std::size_t probePos(std::uint64_t hash, std::string_view key,
                                     bool& found) const noexcept;
  /// Table position whose slot references `key`, or kNpos on miss.
  [[nodiscard]] std::size_t findPos(std::uint64_t hash,
                                    std::string_view key) const noexcept;
  /// Ensure links_/flags_ cover node `index` (slab indices are dense).
  void ensureSideArrays(std::uint32_t index) {
    if (index < links_.size()) [[likely]] return;
    growSideArrays(index);
  }
  void growSideArrays(std::uint32_t index);
  /// Backward-shift deletion: keeps probe chains contiguous without
  /// tombstones, so lookups stay O(cluster) under churn.
  void tableEraseAt(std::size_t pos) noexcept;
  /// Doubles the table at ~70% load; returns true if the table moved.
  bool maybeGrow();

  void linkFront(std::uint32_t index) noexcept;
  void unlink(std::uint32_t index) noexcept;
  void moveToFront(std::uint32_t index) noexcept;

  void evictOne();
  void evictClock();
  void removeNode(std::size_t pos, std::uint32_t index);

  FlatMode mode_;
  util::Bytes capacity_;
  std::uint64_t used_ = 0;
  std::size_t count_ = 0;
  NodeSlab<Node> slab_;
  KeyArena arena_;
  std::vector<TableSlot> table_;
  std::size_t mask_ = 0;
  /// Intrusive recency links (LRU/FIFO), indexed by node — dense so a
  /// moveToFront touches ~24 bytes of contiguous memory, not three nodes.
  std::vector<Links> links_;
  /// Clock occupied/referenced bits, indexed by node — dense so the hand
  /// sweep stays in cache.
  std::vector<std::uint8_t> flags_;
  std::uint32_t head_ = kNil;
  std::uint32_t tail_ = kNil;
  std::size_t hand_ = 0;
};

}  // namespace dcache::cache
