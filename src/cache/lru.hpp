// Classic LRU: intrusive recency list over a hash map. The reference policy
// for the whole library — the Mattson miss-ratio-curve profiler in mrc.hpp
// models exactly this policy, and the tests cross-check the two.
#pragma once

#include <list>
#include <unordered_map>
#include <utility>

#include "cache/kv_cache.hpp"

namespace dcache::cache {

class LruCache final : public KvCache {
 public:
  explicit LruCache(util::Bytes capacity) : capacity_(capacity) {}

  [[nodiscard]] const CacheEntry* get(std::string_view key) override;
  void put(std::string_view key, CacheEntry entry) override;
  bool erase(std::string_view key) override;
  void clear() override;
  [[nodiscard]] const CacheEntry* peek(std::string_view key) const override;
  void forEachEntry(
      const std::function<void(std::string_view, const CacheEntry&)>& fn)
      const override;

  [[nodiscard]] std::size_t itemCount() const noexcept override {
    return map_.size();
  }
  [[nodiscard]] util::Bytes bytesUsed() const noexcept override {
    return util::Bytes::of(used_);
  }
  [[nodiscard]] util::Bytes capacity() const noexcept override {
    return capacity_;
  }

  /// Key that would be evicted next (LRU victim); empty if cache is empty.
  [[nodiscard]] std::string_view victim() const noexcept;

 private:
  struct Item {
    std::string key;
    CacheEntry entry;
  };
  using List = std::list<Item>;

  void evictOne();

  util::Bytes capacity_;
  std::uint64_t used_ = 0;
  List list_;  // front = most recent
  std::unordered_map<std::string_view, List::iterator> map_;
};

}  // namespace dcache::cache
