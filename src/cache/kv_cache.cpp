#include "cache/kv_cache.hpp"

#include "cache/clock.hpp"
#include "cache/fifo.hpp"
#include "cache/lru.hpp"
#include "cache/lfu.hpp"
#include "cache/s3fifo.hpp"
#include "cache/slru.hpp"

namespace dcache::cache {

std::string_view evictionPolicyName(EvictionPolicy p) noexcept {
  switch (p) {
    case EvictionPolicy::kLru: return "lru";
    case EvictionPolicy::kFifo: return "fifo";
    case EvictionPolicy::kClock: return "clock";
    case EvictionPolicy::kSlru: return "slru";
    case EvictionPolicy::kLfu: return "lfu";
    case EvictionPolicy::kS3Fifo: return "s3fifo";
  }
  return "unknown";
}

std::unique_ptr<KvCache> makeCache(EvictionPolicy policy,
                                   util::Bytes capacity) {
  switch (policy) {
    case EvictionPolicy::kLru:
      return std::make_unique<LruCache>(capacity);
    case EvictionPolicy::kFifo:
      return std::make_unique<FifoCache>(capacity);
    case EvictionPolicy::kClock:
      return std::make_unique<ClockCache>(capacity);
    case EvictionPolicy::kSlru:
      return std::make_unique<SlruCache>(capacity);
    case EvictionPolicy::kLfu:
      return std::make_unique<LfuCache>(capacity);
    case EvictionPolicy::kS3Fifo:
      return std::make_unique<S3FifoCache>(capacity);
  }
  return std::make_unique<LruCache>(capacity);
}

}  // namespace dcache::cache
