#include "cache/kv_cache.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "cache/clock.hpp"
#include "cache/fifo.hpp"
#include "cache/flat_cache.hpp"
#include "cache/lru.hpp"
#include "cache/lfu.hpp"
#include "cache/s3fifo.hpp"
#include "cache/slru.hpp"

namespace dcache::cache {

std::string_view evictionPolicyName(EvictionPolicy p) noexcept {
  switch (p) {
    case EvictionPolicy::kLru: return "lru";
    case EvictionPolicy::kFifo: return "fifo";
    case EvictionPolicy::kClock: return "clock";
    case EvictionPolicy::kSlru: return "slru";
    case EvictionPolicy::kLfu: return "lfu";
    case EvictionPolicy::kS3Fifo: return "s3fifo";
  }
  return "unknown";
}

std::string_view cacheBackendName(CacheBackend b) noexcept {
  switch (b) {
    case CacheBackend::kAuto: return "auto";
    case CacheBackend::kNode: return "node";
    case CacheBackend::kFlat: return "flat";
  }
  return "unknown";
}

void cacheInvariantFailure(const char* policy, const char* what) {
  std::fprintf(stderr, "dcache cache invariant violated [%s]: %s\n", policy,
               what);
  std::abort();
}

namespace {

/// DCACHE_CACHE_BACKEND=node|flat forces one backend for every kAuto
/// construction site; unset or unrecognized means flat where implemented.
/// Read once: the override must not change mid-run.
[[nodiscard]] CacheBackend envBackendOverride() {
  static const CacheBackend cached = [] {
    const char* env = std::getenv("DCACHE_CACHE_BACKEND");
    if (env != nullptr) {
      if (std::strcmp(env, "node") == 0) return CacheBackend::kNode;
      if (std::strcmp(env, "flat") == 0) return CacheBackend::kFlat;
    }
    return CacheBackend::kFlat;
  }();
  return cached;
}

}  // namespace

CacheBackend defaultCacheBackend() noexcept { return envBackendOverride(); }

std::unique_ptr<KvCache> makeCache(EvictionPolicy policy, util::Bytes capacity,
                                   CacheBackend backend) {
  if (backend == CacheBackend::kAuto) backend = defaultCacheBackend();
  if (backend == CacheBackend::kFlat) {
    switch (policy) {
      case EvictionPolicy::kLru:
        return std::make_unique<FlatCache>(FlatMode::kLru, capacity);
      case EvictionPolicy::kFifo:
        return std::make_unique<FlatCache>(FlatMode::kFifo, capacity);
      case EvictionPolicy::kClock:
        return std::make_unique<FlatCache>(FlatMode::kClock, capacity);
      case EvictionPolicy::kSlru:
        // SLRU rides the flat backend through its LRU segments.
        return std::make_unique<SlruCache>(capacity, 0.8, backend);
      case EvictionPolicy::kLfu:
      case EvictionPolicy::kS3Fifo:
        break;  // not ported yet: fall through to the node backend
    }
  }
  switch (policy) {
    case EvictionPolicy::kLru:
      return std::make_unique<LruCache>(capacity);
    case EvictionPolicy::kFifo:
      return std::make_unique<FifoCache>(capacity);
    case EvictionPolicy::kClock:
      return std::make_unique<ClockCache>(capacity);
    case EvictionPolicy::kSlru:
      return std::make_unique<SlruCache>(capacity, 0.8, CacheBackend::kNode);
    case EvictionPolicy::kLfu:
      return std::make_unique<LfuCache>(capacity);
    case EvictionPolicy::kS3Fifo:
      return std::make_unique<S3FifoCache>(capacity);
  }
  return std::make_unique<LruCache>(capacity);
}

}  // namespace dcache::cache
