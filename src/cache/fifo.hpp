// FIFO eviction: evicts in insertion order, ignoring recency. Cheapest
// policy to run and — per "FIFO queues are all you need" (SOSP'23, cited by
// the paper) — surprisingly competitive; included as a baseline for the
// eviction-policy ablation bench.
#pragma once

#include <list>
#include <unordered_map>

#include "cache/kv_cache.hpp"

namespace dcache::cache {

class FifoCache final : public KvCache {
 public:
  explicit FifoCache(util::Bytes capacity) : capacity_(capacity) {}

  [[nodiscard]] const CacheEntry* get(std::string_view key) override;
  void put(std::string_view key, CacheEntry entry) override;
  bool erase(std::string_view key) override;
  void clear() override;
  [[nodiscard]] const CacheEntry* peek(std::string_view key) const override;
  void forEachEntry(
      const std::function<void(std::string_view, const CacheEntry&)>& fn)
      const override;

  [[nodiscard]] std::size_t itemCount() const noexcept override {
    return map_.size();
  }
  [[nodiscard]] util::Bytes bytesUsed() const noexcept override {
    return util::Bytes::of(used_);
  }
  [[nodiscard]] util::Bytes capacity() const noexcept override {
    return capacity_;
  }

 private:
  struct Item {
    std::string key;
    CacheEntry entry;
  };
  using List = std::list<Item>;

  void evictOne();

  util::Bytes capacity_;
  std::uint64_t used_ = 0;
  List list_;  // front = newest, back = oldest (next victim)
  std::unordered_map<std::string_view, List::iterator> map_;
};

}  // namespace dcache::cache
