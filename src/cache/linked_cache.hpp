// Linked in-process cache (Fig. 1c). Each application server embeds one
// shard; a consistent-hash ring assigns keys to servers. A local hit costs
// only the probe — no network hop, no (de)serialization, and in object mode
// the application uses the cached object in place. Requests that land on a
// non-owner are forwarded inside the app tier (or, with affinity routing, a
// Slicer-like front-end sends them to the owner directly).
#pragma once

#include <memory>
#include <string_view>
#include <vector>

#include "cache/hash_ring.hpp"
#include "cache/kv_cache.hpp"
#include "cache/remote_cache.hpp"
#include "rpc/channel.hpp"
#include "rpc/messages.hpp"
#include "sim/tier.hpp"

namespace dcache::cache {

class LinkedCache {
 public:
  struct GetResult {
    bool hit = false;
    bool local = false;  // served from the probing server's own shard
    std::uint64_t size = 0;
    std::uint64_t version = 0;
    double latencyMicros = 0.0;
  };

  LinkedCache(sim::Tier& appTier, util::Bytes perNodeCapacity,
              rpc::Channel& channel, EvictionPolicy policy = EvictionPolicy::kLru,
              CacheOpCosts costs = {});

  /// App-server index that owns the key (ring placement). With affinity
  /// routing the deployment sends the client request straight there.
  [[nodiscard]] std::size_t ownerOf(std::string_view key) const noexcept;

  /// Probe from server `serverIndex`. A non-owner probe forwards to the
  /// owner over the tier-internal channel and pays marshalling.
  GetResult get(std::size_t serverIndex, std::string_view key);

  /// Fill the owner's shard after a storage read (charged to the owner).
  void fill(std::string_view key, std::uint64_t size, std::uint64_t version);

  /// Invalidate/update on write. Charged to the writer; cross-server
  /// invalidations pay a one-way message.
  double invalidate(std::size_t writerIndex, std::string_view key);
  double update(std::size_t writerIndex, std::string_view key,
                std::uint64_t size, std::uint64_t version);

  /// Remove a server from the ring (resharding / failure). Its shard is
  /// dropped, mirroring a process restart. Removing a server that is not a
  /// ring member is a no-op (a replayed crash event must not clear the
  /// shard a rejoined server refilled).
  void removeServer(std::size_t serverIndex);

  /// Planned drain: remove the server from the ring but KEEP its shard
  /// contents — the membership handoff migrates them to the new owners
  /// during the transfer window, then dropShard() retires the rest.
  void drainServer(std::size_t serverIndex);

  /// Drop a drained server's remaining shard contents (end of the handoff
  /// window, or a cold leave with no handoff).
  void dropShard(std::size_t serverIndex);

  /// Re-add a previously removed server (restart after a crash). The shard
  /// comes back *cold* — in-process cache contents do not survive the
  /// process — and, because the ring's vnode points depend only on the
  /// member index, ownership returns to exactly the pre-crash partition.
  void addServer(std::size_t serverIndex);

  /// True when the server is a ring member (i.e. currently owns a shard).
  [[nodiscard]] bool hasServer(std::size_t serverIndex) const noexcept {
    return ring_.contains(serverIndex);
  }
  /// Current ring membership size (the membership director refuses to
  /// drain the last member — keys would have no owner to move to).
  [[nodiscard]] std::size_t serverCount() const noexcept {
    return ring_.memberCount();
  }

  // ---- replica-aware access (gray-failure survival) ----
  /// The key's replica shard owners, primary first: the first `n` distinct
  /// ring members clockwise from the key's hash. With n == 1 this is just
  /// {ownerOf(key)}; the deployment's replication knob decides how many
  /// shards actually hold the key.
  [[nodiscard]] std::vector<std::size_t> replicasOf(std::string_view key,
                                                    std::size_t n) const;
  /// Probe/fill/update/invalidate against an explicit shard (a replica
  /// chosen by the deployment). Cost accounting mirrors the keyed
  /// versions: a non-local probe pays the forwarded marshalled hop, a
  /// cross-server update pays the one-way message.
  GetResult getAt(std::size_t serverIndex, std::size_t ownerIndex,
                  std::string_view key);
  void fillAt(std::size_t ownerIndex, std::string_view key,
              std::uint64_t size, std::uint64_t version);
  double updateAt(std::size_t writerIndex, std::size_t ownerIndex,
                  std::string_view key, std::uint64_t size,
                  std::uint64_t version);
  double invalidateAt(std::size_t writerIndex, std::size_t ownerIndex,
                      std::string_view key);

  [[nodiscard]] CacheStats aggregateStats() const noexcept;
  [[nodiscard]] util::Bytes bytesUsed() const noexcept;
  [[nodiscard]] const CacheOpCosts& costs() const noexcept { return costs_; }
  /// Total entries across shards (TTL bookkeeping boundedness checks).
  [[nodiscard]] std::size_t itemCount() const noexcept;
  [[nodiscard]] util::Bytes provisionedPerNode() const noexcept {
    return perNodeCapacity_;
  }
  [[nodiscard]] KvCache& shard(std::size_t i) noexcept { return *shards_[i]; }
  [[nodiscard]] const sim::Tier& tier() const noexcept { return *tier_; }

 private:
  sim::Tier* tier_;
  rpc::Channel* channel_;
  CacheOpCosts costs_;
  util::Bytes perNodeCapacity_;
  HashRing ring_;
  std::vector<std::unique_ptr<KvCache>> shards_;
};

}  // namespace dcache::cache
