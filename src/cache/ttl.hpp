// TTL bounding over any inner policy. Entries expire `ttlMicros` after
// insertion; expired entries count as misses and are reclaimed lazily on
// access plus opportunistically in sweep(). TTL is the freshness mechanism
// the paper's related-work section contrasts with version checks, and the
// consistency ablation uses this wrapper as the "eventual freshness"
// baseline.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>

#include "cache/kv_cache.hpp"

namespace dcache::cache {

class TtlCache {
 public:
  TtlCache(std::unique_ptr<KvCache> inner, std::uint64_t ttlMicros)
      : inner_(std::move(inner)), ttlMicros_(ttlMicros) {}

  /// Lookup at simulated time `nowMicros`. An expired entry is erased and
  /// reported as a miss.
  [[nodiscard]] const CacheEntry* get(std::string_view key,
                                      std::uint64_t nowMicros);

  void put(std::string_view key, CacheEntry entry, std::uint64_t nowMicros);
  bool erase(std::string_view key);
  void clear();

  /// Eagerly drop every resident entry whose deadline has passed. Returns
  /// the number of entries reclaimed; deadlines orphaned by inner-policy
  /// evictions are pruned without counting as expirations. Production
  /// caches run this on a timer.
  std::size_t sweep(std::uint64_t nowMicros);

  [[nodiscard]] std::uint64_t ttlMicros() const noexcept { return ttlMicros_; }
  [[nodiscard]] const KvCache& inner() const noexcept { return *inner_; }
  [[nodiscard]] const CacheStats& stats() const noexcept { return stats_; }
  [[nodiscard]] std::uint64_t expirations() const noexcept {
    return expirations_;
  }
  /// Deadlines currently tracked — bounded by the resident set (plus a
  /// small reconciliation slack), never by the total keys ever inserted.
  [[nodiscard]] std::size_t trackedDeadlines() const noexcept {
    return deadline_.size();
  }

 private:
  /// Drop deadlines whose key the inner policy no longer holds.
  void dropStaleDeadlines();

  std::unique_ptr<KvCache> inner_;
  std::uint64_t ttlMicros_;
  std::unordered_map<std::string, std::uint64_t> deadline_;
  CacheStats stats_;
  std::uint64_t expirations_ = 0;
};

}  // namespace dcache::cache
