#include "cache/fifo.hpp"

namespace dcache::cache {

const CacheEntry* FifoCache::get(std::string_view key) {
  const auto it = map_.find(key);
  if (it == map_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  ++stats_.hits;  // no reordering: FIFO ignores recency
  return &it->second->entry;
}

const CacheEntry* FifoCache::peek(std::string_view key) const {
  const auto it = map_.find(key);
  return it == map_.end() ? nullptr : &it->second->entry;
}

void FifoCache::put(std::string_view key, CacheEntry entry) {
  const std::uint64_t need = chargedSize(key, entry);
  if (need > capacity_.count()) return;

  if (const auto it = map_.find(key); it != map_.end()) {
    used_ -= chargedSize(key, it->second->entry);
    used_ += need;
    it->second->entry = std::move(entry);  // overwrite keeps queue position
    ++stats_.overwrites;
  } else {
    list_.push_front(Item{std::string(key), std::move(entry)});
    map_.emplace(std::string_view(list_.front().key), list_.begin());
    used_ += need;
    ++stats_.insertions;
  }
  while (used_ > capacity_.count()) evictOne();
}

bool FifoCache::erase(std::string_view key) {
  const auto it = map_.find(key);
  if (it == map_.end()) return false;
  used_ -= chargedSize(key, it->second->entry);
  list_.erase(it->second);
  map_.erase(it);
  return true;
}

void FifoCache::clear() {
  map_.clear();
  list_.clear();
  used_ = 0;
}

void FifoCache::forEachEntry(
    const std::function<void(std::string_view, const CacheEntry&)>& fn)
    const {
  for (const Item& item : list_) fn(item.key, item.entry);
}

void FifoCache::evictOne() {
  cacheInvariant(!list_.empty(), "fifo",
                 "evictOne with no resident entries: accounted bytes "
                 "drifted from the entry set");
  const Item& last = list_.back();
  used_ -= chargedSize(last.key, last.entry);
  map_.erase(std::string_view(last.key));
  list_.pop_back();
  ++stats_.evictions;
}

}  // namespace dcache::cache
