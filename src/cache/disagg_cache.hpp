// Memory-disaggregated cache tier (Ditto/DiFache deployment shape). A far
// memory pool holds the cached values; compute nodes reach it with
// one-sided reads that bypass the pool's CPU entirely (rpc::OneSidedParams
// is the cost shape), and each application server keeps a small in-process
// hot cache in front so the per-byte pull is only paid for the cold tail.
// Placement is client-driven — every app server hashes the key to a pool
// slot itself, no directory service on the access path — and coherence is
// DiFache-style decentralized invalidation (the writer fans out to its
// peers over the InvalidationBus; the deployment owns that wiring).
#pragma once

#include <memory>
#include <string_view>
#include <vector>

#include "cache/hash_ring.hpp"
#include "cache/kv_cache.hpp"
#include "rpc/channel.hpp"
#include "sim/tier.hpp"

namespace dcache::cache {

/// Cost knobs for the disaggregated tier beyond the one-sided transport
/// shape itself. The hot cache is an in-process structure at the app
/// server; the lookup cost is the client-side hash/placement computation
/// every far access pays instead of a directory RPC.
struct DisaggCosts {
  rpc::OneSidedParams oneSided{};
  double hotProbeMicros = 0.1;    // in-process hot-cache probe
  double hotInsertMicros = 0.25;  // in-process hot-cache fill
  double lookupMicros = 0.2;      // client-side slot placement per far access
};

/// Fixed slot metadata (version tag, fence epoch, length) that crosses the
/// wire with every one-sided access, hit or miss.
inline constexpr std::uint64_t kFarSlotHeaderBytes = 16;

class DisaggCache {
 public:
  struct GetResult {
    bool hit = false;
    /// The far-pool node was unreachable (down or every retry lost): the
    /// caller should degrade to the storage path.
    bool failed = false;
    std::uint64_t size = 0;
    std::uint64_t version = 0;
    double latencyMicros = 0.0;
    /// Bytes that actually crossed the fabric (0 when the access failed).
    std::uint64_t wireBytes = 0;
  };

  DisaggCache(sim::Tier& farTier, util::Bytes perNodeCapacity,
              sim::Tier& appTier, util::Bytes hotCapacityPerNode,
              rpc::Channel& channel,
              EvictionPolicy policy = EvictionPolicy::kLru,
              DisaggCosts costs = {});

  // ---- hot cache (per app server, in-process) ----
  /// Probe app server `appIndex`'s hot cache. Never touches far memory.
  GetResult hotGet(std::size_t appIndex, std::string_view key);
  /// Fill after a far read or storage miss.
  void hotFill(std::size_t appIndex, std::string_view key, std::uint64_t size,
               std::uint64_t version);
  /// Drop one app server's copy (the InvalidationBus handler's job).
  void hotInvalidate(std::size_t appIndex, std::string_view key);
  /// Epoch fence: drop every hot copy at once (pool membership changed —
  /// client-driven placement would otherwise read slots that moved).
  void clearHotCaches();

  // ---- far pool (one-sided access) ----
  [[nodiscard]] std::size_t nodeForKey(std::string_view key) const noexcept;
  GetResult farGet(sim::Node& initiator, std::string_view key);
  GetResult farGetAt(sim::Node& initiator, std::size_t nodeIndex,
                     std::string_view key);
  /// One-sided write of the value into its slot (same cost shape as the
  /// read: issue + per-byte push + completion at the initiator only).
  double farPut(sim::Node& initiator, std::string_view key,
                std::uint64_t size, std::uint64_t version);
  /// One-sided tombstone: a header-sized write that clears the slot.
  double farInvalidate(sim::Node& initiator, std::string_view key);

  // ---- planned pool membership (churn survival) ----
  /// Arm membership-aware slot placement: keys map onto a consistent-hash
  /// ring over the pool indices (every node joins up front). Default-off so
  /// the legacy modulo placement stays byte-exact. Client-driven placement
  /// means every app server recomputes the ring locally — there is still no
  /// directory on the access path, which is exactly why pool transitions
  /// must be fenced with a hot-cache flush (the deployment owns that).
  void enableMembership();
  [[nodiscard]] bool membershipActive() const noexcept {
    return membershipOn_;
  }
  /// Planned join/leave (idempotent: a replayed event is a no-op).
  /// leaveNode keeps the pool node's slots — the handoff window migrates
  /// them; dropShard retires whatever remains.
  void joinNode(std::size_t nodeIndex);
  void leaveNode(std::size_t nodeIndex);
  /// Ring membership once armed; every valid pool index before that.
  [[nodiscard]] bool isMember(std::size_t nodeIndex) const noexcept {
    return membershipOn_ ? memberRing_.contains(nodeIndex)
                         : nodeIndex < farShards_.size();
  }
  /// Current membership size (the membership director refuses to drain
  /// the last member — keys would have no owner to move to).
  [[nodiscard]] std::size_t memberCount() const noexcept {
    return membershipOn_ ? memberRing_.memberCount() : farShards_.size();
  }

  /// Crash handling: a pool node's contents die with the process.
  void dropShard(std::size_t nodeIndex);
  [[nodiscard]] bool nodeUpFor(std::string_view key) const noexcept {
    return farTier_->node(nodeForKey(key)).isUp();
  }
  [[nodiscard]] bool nodeUp(std::size_t nodeIndex) const noexcept {
    return farTier_->node(nodeIndex).isUp();
  }

  [[nodiscard]] CacheStats farStats() const noexcept;
  [[nodiscard]] CacheStats hotStats() const noexcept;
  [[nodiscard]] util::Bytes farBytesUsed() const noexcept;
  [[nodiscard]] const sim::Tier& farTier() const noexcept { return *farTier_; }
  [[nodiscard]] const DisaggCosts& costs() const noexcept { return costs_; }
  [[nodiscard]] KvCache& farShardForNode(std::size_t i) noexcept {
    return *farShards_[i];
  }
  [[nodiscard]] KvCache& hotShardForNode(std::size_t i) noexcept {
    return *hotShards_[i];
  }

 private:
  sim::Tier* farTier_;
  sim::Tier* appTier_;
  rpc::Channel* channel_;
  DisaggCosts costs_;
  std::vector<std::unique_ptr<KvCache>> farShards_;  // one per pool node
  std::vector<std::unique_ptr<KvCache>> hotShards_;  // one per app server
  /// Pool membership ring (empty until enableMembership).
  HashRing memberRing_;
  bool membershipOn_ = false;
};

}  // namespace dcache::cache
