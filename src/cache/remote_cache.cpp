#include "cache/remote_cache.hpp"

#include "rpc/wire_size.hpp"
#include "sim/trace_hook.hpp"
#include "util/hash.hpp"

namespace dcache::cache {

RemoteCache::RemoteCache(sim::Tier& tier, util::Bytes perNodeCapacity,
                         rpc::Channel& channel, EvictionPolicy policy,
                         CacheOpCosts costs)
    : tier_(&tier), channel_(&channel), costs_(costs) {
  shards_.reserve(tier.size());
  for (std::size_t i = 0; i < tier.size(); ++i) {
    shards_.push_back(makeCache(policy, perNodeCapacity));
    tier.node(i).mem().provision(perNodeCapacity);
  }
}

std::size_t RemoteCache::nodeForKey(std::string_view key) const noexcept {
  const std::uint64_t hash = util::hashKey(key);
  if (membershipOn_) {
    // Everyone-left fallback keeps routing total (calls then time out
    // against the departed pod, which is the cost of draining a whole
    // tier); it cannot fire in any planned schedule the benches run.
    return memberRing_.ownerOf(hash).value_or(hash % shards_.size());
  }
  return hash % shards_.size();
}

RemoteCache::GetResult RemoteCache::get(sim::Node& client,
                                        std::string_view key) {
  return getAt(client, nodeForKey(key), key);
}

RemoteCache::GetResult RemoteCache::getAt(sim::Node& client,
                                          std::size_t nodeIndex,
                                          std::string_view key) {
  sim::SpanGuard span("remote.get", sim::TierKind::kRemoteCache);
  const std::size_t idx = nodeIndex;
  sim::Node& server = tier_->node(idx);
  KvCache& shard = *shards_[idx];

  if (!server.isUp()) {
    // The pod is gone: no probe runs, but the client still pays the full
    // timed-out retry budget against it (the channel's policy path).
    const auto call =
        channel_->call(client, server, rpc::getRequestWireSize(key.size()),
                       rpc::getResponseWireSize());
    GetResult out;
    out.failed = true;
    out.latencyMicros = call.latencyMicros;
    span.setOutcome(sim::SpanOutcome::kFailed);
    return out;
  }

  server.charge(sim::CpuComponent::kCacheOp, costs_.probeMicros);
  const CacheEntry* entry = shard.get(key);

  // The value crosses the wire on a hit: account its bytes without
  // materializing them (CacheEntry::size is the logical value size).
  const std::uint64_t respBytes =
      rpc::getResponseWireSize() + (entry ? entry->size : 0);
  const auto call = channel_->call(
      client, server, rpc::getRequestWireSize(key.size()), respBytes);

  GetResult out;
  // A call lost to a degraded network (every retry dropped) is a failure
  // even though the pod is healthy: the client never saw the value.
  out.failed = !call.ok;
  out.hit = entry != nullptr && call.ok;
  out.size = out.hit ? entry->size : 0;
  out.version = out.hit ? entry->version : 0;
  out.latencyMicros = call.latencyMicros;
  tier_->node(idx).mem().use(shard.bytesUsed());
  span.setOutcome(out.failed ? sim::SpanOutcome::kFailed
                  : out.hit  ? sim::SpanOutcome::kHit
                             : sim::SpanOutcome::kMiss);
  return out;
}

double RemoteCache::put(sim::Node& client, std::string_view key,
                        std::uint64_t size, std::uint64_t version) {
  return putAt(client, nodeForKey(key), key, size, version);
}

double RemoteCache::putAt(sim::Node& client, std::size_t nodeIndex,
                          std::string_view key, std::uint64_t size,
                          std::uint64_t version) {
  sim::SpanGuard span("remote.put", sim::TierKind::kRemoteCache);
  const std::size_t idx = nodeIndex;
  sim::Node& server = tier_->node(idx);

  const auto call = channel_->call(
      client, server, rpc::putRequestWireSize(key.size()) + size,
      rpc::putResponseWireSize());
  if (server.isUp() && call.ok) {
    server.charge(sim::CpuComponent::kCacheOp, costs_.insertMicros);
    shards_[idx]->put(key, CacheEntry::sized(size, version));
    tier_->node(idx).mem().use(shards_[idx]->bytesUsed());
  }
  return call.latencyMicros;
}

double RemoteCache::invalidate(sim::Node& client, std::string_view key) {
  return invalidateAt(client, nodeForKey(key), key);
}

double RemoteCache::invalidateAt(sim::Node& client, std::size_t nodeIndex,
                                 std::string_view key) {
  sim::SpanGuard span("remote.inval", sim::TierKind::kRemoteCache);
  const std::size_t idx = nodeIndex;
  sim::Node& server = tier_->node(idx);

  // Key-only request message, minimal ack back.
  const auto call =
      channel_->call(client, server, rpc::getRequestWireSize(key.size()),
                     rpc::putResponseWireSize());
  if (server.isUp() && call.ok) {
    server.charge(sim::CpuComponent::kCacheOp, costs_.probeMicros);
    shards_[idx]->erase(key);
  }
  return call.latencyMicros;
}

void RemoteCache::enableReplication(std::size_t factor) {
  replicationFactor_ = factor < 1 ? 1 : factor;
  if (replicationFactor_ <= 1) return;
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    replicaRing_.addMember(i);
  }
}

std::vector<std::size_t> RemoteCache::replicasForKey(
    std::string_view key) const {
  if (replicationFactor_ <= 1) return {};
  return replicaRing_.replicasOf(util::hashKey(key), replicationFactor_);
}

void RemoteCache::enableMembership() {
  if (membershipOn_) return;
  membershipOn_ = true;
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    memberRing_.addMember(i);
  }
}

void RemoteCache::joinNode(std::size_t nodeIndex) {
  if (!membershipOn_ || nodeIndex >= shards_.size()) return;
  if (memberRing_.contains(nodeIndex)) return;  // replayed join: no-op
  memberRing_.addMember(nodeIndex);
  if (replicationFactor_ > 1 && !replicaRing_.contains(nodeIndex)) {
    replicaRing_.addMember(nodeIndex);
  }
}

void RemoteCache::leaveNode(std::size_t nodeIndex) {
  if (!membershipOn_ || nodeIndex >= shards_.size()) return;
  memberRing_.removeMember(nodeIndex);  // idempotent: second leave no-ops
  if (replicationFactor_ > 1) replicaRing_.removeMember(nodeIndex);
}

void RemoteCache::dropShard(std::size_t nodeIndex) {
  if (nodeIndex >= shards_.size()) return;
  shards_[nodeIndex]->clear();
}

CacheStats RemoteCache::aggregateStats() const noexcept {
  CacheStats total;
  for (const auto& shard : shards_) {
    total.hits += shard->stats().hits;
    total.misses += shard->stats().misses;
    total.insertions += shard->stats().insertions;
    total.overwrites += shard->stats().overwrites;
    total.evictions += shard->stats().evictions;
  }
  return total;
}

util::Bytes RemoteCache::bytesUsed() const noexcept {
  util::Bytes total;
  for (const auto& shard : shards_) total += shard->bytesUsed();
  return total;
}

}  // namespace dcache::cache
