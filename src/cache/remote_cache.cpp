#include "cache/remote_cache.hpp"

#include "util/hash.hpp"

namespace dcache::cache {

RemoteCache::RemoteCache(sim::Tier& tier, util::Bytes perNodeCapacity,
                         rpc::Channel& channel, EvictionPolicy policy,
                         CacheOpCosts costs)
    : tier_(&tier), channel_(&channel), costs_(costs) {
  shards_.reserve(tier.size());
  for (std::size_t i = 0; i < tier.size(); ++i) {
    shards_.push_back(makeCache(policy, perNodeCapacity));
    tier.node(i).mem().provision(perNodeCapacity);
  }
}

std::size_t RemoteCache::nodeForKey(std::string_view key) const noexcept {
  return util::hashKey(key) % shards_.size();
}

RemoteCache::GetResult RemoteCache::get(sim::Node& client,
                                        std::string_view key) {
  const std::size_t idx = nodeForKey(key);
  sim::Node& server = tier_->node(idx);
  KvCache& shard = *shards_[idx];

  server.charge(sim::CpuComponent::kCacheOp, costs_.probeMicros);
  const CacheEntry* entry = shard.get(key);

  const rpc::GetRequest req{std::string(key)};
  rpc::GetResponse resp;
  resp.found = entry != nullptr;
  if (entry) {
    resp.version = entry->version;
    // The value crosses the wire on a hit: account its bytes without
    // materializing them (CacheEntry::size is the logical value size).
    resp.value.clear();
  }
  const std::uint64_t respBytes =
      resp.encodedSize() + (entry ? entry->size : 0);
  const auto call =
      channel_->call(client, server, req.encodedSize(), respBytes);

  GetResult out;
  out.hit = entry != nullptr;
  out.size = entry ? entry->size : 0;
  out.version = entry ? entry->version : 0;
  out.latencyMicros = call.latencyMicros;
  tier_->node(idx).mem().use(shard.bytesUsed());
  return out;
}

double RemoteCache::put(sim::Node& client, std::string_view key,
                        std::uint64_t size, std::uint64_t version) {
  const std::size_t idx = nodeForKey(key);
  sim::Node& server = tier_->node(idx);

  server.charge(sim::CpuComponent::kCacheOp, costs_.insertMicros);
  shards_[idx]->put(key, CacheEntry::sized(size, version));

  const rpc::PutRequest req{std::string(key), {}, version};
  const rpc::PutResponse resp{true, version};
  const auto call = channel_->call(client, server, req.encodedSize() + size,
                                   resp.encodedSize());
  tier_->node(idx).mem().use(shards_[idx]->bytesUsed());
  return call.latencyMicros;
}

double RemoteCache::invalidate(sim::Node& client, std::string_view key) {
  const std::size_t idx = nodeForKey(key);
  sim::Node& server = tier_->node(idx);

  server.charge(sim::CpuComponent::kCacheOp, costs_.probeMicros);
  shards_[idx]->erase(key);

  const rpc::GetRequest req{std::string(key)};  // key-only message
  const rpc::PutResponse resp{true, 0};
  const auto call =
      channel_->call(client, server, req.encodedSize(), resp.encodedSize());
  return call.latencyMicros;
}

CacheStats RemoteCache::aggregateStats() const noexcept {
  CacheStats total;
  for (const auto& shard : shards_) {
    total.hits += shard->stats().hits;
    total.misses += shard->stats().misses;
    total.insertions += shard->stats().insertions;
    total.evictions += shard->stats().evictions;
  }
  return total;
}

util::Bytes RemoteCache::bytesUsed() const noexcept {
  util::Bytes total;
  for (const auto& shard : shards_) total += shard->bytesUsed();
  return total;
}

}  // namespace dcache::cache
