// LFU with O(1) operations (Shah/Mitzenmacher-style frequency buckets):
// each entry sits in the list of its exact access count; eviction takes
// the least-recently-used entry of the lowest-frequency bucket. The
// classic frequency-biased baseline for the eviction ablation — strong on
// stable skew (precisely the paper's Zipf regime), weak on shifting
// popularity (no aging).
#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <unordered_map>

#include "cache/kv_cache.hpp"

namespace dcache::cache {

class LfuCache final : public KvCache {
 public:
  explicit LfuCache(util::Bytes capacity) : capacity_(capacity) {}

  [[nodiscard]] const CacheEntry* get(std::string_view key) override;
  void put(std::string_view key, CacheEntry entry) override;
  bool erase(std::string_view key) override;
  void clear() override;
  [[nodiscard]] const CacheEntry* peek(std::string_view key) const override;
  void forEachEntry(
      const std::function<void(std::string_view, const CacheEntry&)>& fn)
      const override;

  [[nodiscard]] std::size_t itemCount() const noexcept override {
    return index_.size();
  }
  [[nodiscard]] util::Bytes bytesUsed() const noexcept override {
    return util::Bytes::of(used_);
  }
  [[nodiscard]] util::Bytes capacity() const noexcept override {
    return capacity_;
  }

  /// Access count of a resident key (0 if absent) — for tests.
  [[nodiscard]] std::uint64_t frequencyOf(std::string_view key) const;

 private:
  struct Item {
    std::string key;
    CacheEntry entry;
    std::uint64_t freq = 1;
  };
  using Bucket = std::list<Item>;  // front = most recent within the bucket

  void bumpFrequency(Bucket::iterator it);
  void evictOne();

  util::Bytes capacity_;
  std::uint64_t used_ = 0;
  std::map<std::uint64_t, Bucket> buckets_;  // freq -> entries
  std::unordered_map<std::string_view, Bucket::iterator> index_;
};

}  // namespace dcache::cache
