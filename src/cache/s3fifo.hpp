// S3-FIFO (Yang et al., SOSP '23 — cited by the paper as [51], "FIFO
// queues are all you need for cache eviction"): a small probationary FIFO
// absorbs one-hit wonders, objects re-referenced while in small (or after
// eviction, via a ghost queue of recently evicted keys) enter the main
// FIFO, and main evicts with a frequency-aware second chance. Matches or
// beats LRU on skewed traces while staying queue-structured.
#pragma once

#include <cstdint>
#include <list>
#include <unordered_map>
#include <unordered_set>

#include "cache/kv_cache.hpp"
#include "util/hash.hpp"

namespace dcache::cache {

class S3FifoCache final : public KvCache {
 public:
  /// `smallFraction` of capacity goes to the small queue; the ghost queue
  /// remembers as many keys as main holds entries (the paper's default).
  explicit S3FifoCache(util::Bytes capacity, double smallFraction = 0.1);

  [[nodiscard]] const CacheEntry* get(std::string_view key) override;
  void put(std::string_view key, CacheEntry entry) override;
  bool erase(std::string_view key) override;
  void clear() override;
  [[nodiscard]] const CacheEntry* peek(std::string_view key) const override;
  void forEachEntry(
      const std::function<void(std::string_view, const CacheEntry&)>& fn)
      const override;

  [[nodiscard]] std::size_t itemCount() const noexcept override {
    return index_.size();
  }
  [[nodiscard]] util::Bytes bytesUsed() const noexcept override {
    return util::Bytes::of(usedSmall_ + usedMain_);
  }
  [[nodiscard]] util::Bytes capacity() const noexcept override {
    return capacity_;
  }

  [[nodiscard]] std::size_t ghostSize() const noexcept {
    return ghost_.size();
  }

 private:
  struct Item {
    std::string key;
    CacheEntry entry;
    std::uint8_t freq = 0;  // saturating 2-bit counter
    bool inMain = false;
  };
  using Queue = std::list<Item>;

  void evictFromSmall();
  void evictFromMain();
  void rememberGhost(const std::string& key);
  void insert(std::string_view key, CacheEntry entry, bool toMain);

  util::Bytes capacity_;
  std::uint64_t smallCapacity_;
  std::uint64_t usedSmall_ = 0;
  std::uint64_t usedMain_ = 0;
  Queue small_;  // front = newest
  Queue main_;
  std::unordered_map<std::string_view, Queue::iterator> index_;
  // Ghost queue: FIFO of key hashes of recent small-queue evictions.
  std::list<std::uint64_t> ghostOrder_;
  std::unordered_set<std::uint64_t> ghost_;
  std::size_t ghostLimit_ = 0;
};

}  // namespace dcache::cache
