#include "cache/ttl.hpp"

namespace dcache::cache {

const CacheEntry* TtlCache::get(std::string_view key, std::uint64_t nowMicros) {
  const auto it = deadline_.find(std::string(key));
  if (it != deadline_.end()) {
    if (inner_->peek(key) == nullptr) {
      // The inner policy evicted this key on its own; the leftover deadline
      // is stale. Drop it so a future re-insert starts a fresh TTL instead
      // of inheriting this one, and so the miss below is not misreported as
      // an expiration.
      deadline_.erase(it);
    } else if (it->second <= nowMicros) {
      inner_->erase(key);
      deadline_.erase(it);
      ++expirations_;
      ++stats_.misses;
      return nullptr;
    }
  }
  const CacheEntry* hit = inner_->get(key);
  if (hit) {
    ++stats_.hits;
  } else {
    ++stats_.misses;
  }
  return hit;
}

void TtlCache::put(std::string_view key, CacheEntry entry,
                   std::uint64_t nowMicros) {
  const bool resident = inner_->peek(key) != nullptr;
  inner_->put(key, std::move(entry));
  if (inner_->peek(key) != nullptr) {
    // Admitted (insert or overwrite; a rejected put counts as neither —
    // see CacheStats). The deadline always restarts now.
    resident ? ++stats_.overwrites : ++stats_.insertions;
    deadline_[std::string(key)] = nowMicros + ttlMicros_;
  } else {
    // Not admitted — make sure no deadline from an earlier residency
    // survives to expire a later re-insert prematurely.
    deadline_.erase(std::string(key));
  }
  // Inner evictions orphan deadlines silently; reconcile once the tracking
  // map outgrows the resident set so it stays O(resident keys). Doubling
  // plus slack keeps the scan amortized O(1) per put.
  if (deadline_.size() > 2 * inner_->itemCount() + 64) {
    dropStaleDeadlines();
  }
}

bool TtlCache::erase(std::string_view key) {
  deadline_.erase(std::string(key));
  return inner_->erase(key);
}

void TtlCache::clear() {
  deadline_.clear();
  inner_->clear();
}

std::size_t TtlCache::sweep(std::uint64_t nowMicros) {
  std::size_t reclaimed = 0;
  // dcache-lint: allow(unordered-iter, erase-only sweep — every entry is tested independently and the expiration count is a commutative sum; no output or eviction order depends on visit order)
  for (auto it = deadline_.begin(); it != deadline_.end();) {
    if (inner_->peek(it->first) == nullptr) {
      // Evicted by the inner policy: prune, but this is not an expiration.
      it = deadline_.erase(it);
    } else if (it->second <= nowMicros) {
      inner_->erase(it->first);
      ++expirations_;
      ++reclaimed;
      it = deadline_.erase(it);
    } else {
      ++it;
    }
  }
  return reclaimed;
}

void TtlCache::dropStaleDeadlines() {
  // dcache-lint: allow(unordered-iter, erase-only reconciliation against the inner policy; per-entry predicate with no cross-entry state, so visit order cannot affect the result)
  for (auto it = deadline_.begin(); it != deadline_.end();) {
    if (inner_->peek(it->first) == nullptr) {
      it = deadline_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace dcache::cache
