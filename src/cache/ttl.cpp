#include "cache/ttl.hpp"

#include <vector>

namespace dcache::cache {

const CacheEntry* TtlCache::get(std::string_view key, std::uint64_t nowMicros) {
  const auto it = deadline_.find(std::string(key));
  if (it != deadline_.end() && it->second <= nowMicros) {
    inner_->erase(key);
    deadline_.erase(it);
    ++expirations_;
    ++stats_.misses;
    return nullptr;
  }
  const CacheEntry* hit = inner_->get(key);
  if (hit) {
    ++stats_.hits;
  } else {
    ++stats_.misses;
  }
  return hit;
}

void TtlCache::put(std::string_view key, CacheEntry entry,
                   std::uint64_t nowMicros) {
  ++stats_.insertions;
  inner_->put(key, std::move(entry));
  // Only track a deadline if the inner policy admitted the entry.
  if (inner_->peek(key) != nullptr) {
    deadline_[std::string(key)] = nowMicros + ttlMicros_;
  }
}

bool TtlCache::erase(std::string_view key) {
  deadline_.erase(std::string(key));
  return inner_->erase(key);
}

void TtlCache::clear() {
  deadline_.clear();
  inner_->clear();
}

std::size_t TtlCache::sweep(std::uint64_t nowMicros) {
  std::vector<std::string> dead;
  for (const auto& [key, deadline] : deadline_) {
    if (deadline <= nowMicros) dead.push_back(key);
  }
  for (const auto& key : dead) {
    inner_->erase(key);
    deadline_.erase(key);
    ++expirations_;
  }
  return dead.size();
}

}  // namespace dcache::cache
