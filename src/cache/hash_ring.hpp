// Consistent-hash ring with virtual nodes (Slicer-style auto-sharding).
// Maps key hashes to member indices so that adding or removing a member
// moves only ~1/N of the keyspace — the property the linked cache relies on
// for resharding, and the trigger for the delayed-writes anomaly (Fig. 8)
// when ownership moves while a write is in flight.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

namespace dcache::cache {

class HashRing {
 public:
  /// `vnodesPerMember` controls balance quality: more vnodes, tighter load.
  explicit HashRing(std::size_t vnodesPerMember = 128) noexcept
      : vnodes_(vnodesPerMember == 0 ? 1 : vnodesPerMember) {}

  void addMember(std::size_t member);
  bool removeMember(std::size_t member);

  /// Owner of the given key hash; nullopt if the ring is empty.
  [[nodiscard]] std::optional<std::size_t> ownerOf(
      std::uint64_t keyHash) const noexcept;

  /// The key's replica set (DistCache-style): the first `n` *distinct*
  /// members met walking the ring clockwise from `keyHash`. Element 0 is
  /// ownerOf(keyHash); interleaved vnodes of members already collected are
  /// skipped, so the result never contains a duplicate and holds at most
  /// min(n, memberCount()) entries. Successor-walk placement is what makes
  /// replica sets stable under churn: adding or removing one member
  /// perturbs only the sets that straddle its vnode points.
  [[nodiscard]] std::vector<std::size_t> replicasOf(std::uint64_t keyHash,
                                                    std::size_t n) const;

  [[nodiscard]] std::size_t memberCount() const noexcept {
    return members_.size();
  }
  [[nodiscard]] bool contains(std::size_t member) const noexcept;

  /// Fraction of a sampled keyspace owned by each member (for balance
  /// tests and reshard-impact analysis).
  [[nodiscard]] std::vector<double> ownershipShares(
      std::size_t sampleKeys = 100000) const;

 private:
  std::size_t vnodes_;
  std::map<std::uint64_t, std::size_t> ring_;  // point -> member
  std::vector<std::size_t> members_;
};

}  // namespace dcache::cache
