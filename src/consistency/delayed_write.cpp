#include "consistency/delayed_write.hpp"

#include <sstream>

#include "cache/lru.hpp"
#include "consistency/lease.hpp"
#include "rpc/channel.hpp"
#include "sim/event_loop.hpp"
#include "sim/fault.hpp"
#include "sim/network.hpp"
#include "sim/tier.hpp"
#include "storage/kv_engine.hpp"

namespace dcache::consistency {

DelayedWriteOutcome runDelayedWriteScenario(const DelayedWriteConfig& config) {
  DelayedWriteOutcome outcome;
  std::ostringstream log;

  sim::EventLoop loop;
  storage::KvEngine engine;
  cache::LruCache cacheA(util::Bytes::mb(1));  // owner before the reshard
  cache::LruCache cacheB(util::Bytes::mb(1));  // owner after the reshard

  const std::string key = "acct:42";
  std::uint64_t storageEpoch = 1;  // ownership epoch known to storage

  // Initial state: v1 committed, cached by instance A under epoch 1.
  engine.put(key, storage::StoredValue::sized(100), 1);
  cacheA.put(key, cache::CacheEntry::sized(100, 1));

  // t0: the writer (still instance A, epoch 1) sends v2 — delayed in flight.
  const std::uint64_t writerEpoch = storageEpoch;
  loop.schedule(config.writeDelayMicros, [&] {
    if (config.epochFencing && writerEpoch != storageEpoch) {
      outcome.writeRejected = true;
      log << "[t=" << loop.now() << "] storage REJECTED stale write"
          << " (writer epoch " << writerEpoch << " < " << storageEpoch
          << ")\n";
      return;
    }
    engine.put(key, storage::StoredValue::sized(100), 2);
    log << "[t=" << loop.now() << "] delayed write committed v2\n";
  });

  // t1: reshard — ownership moves to instance B; A's shard is dropped and
  // storage learns the new epoch.
  loop.schedule(config.reshardAtMicros, [&] {
    cacheA.clear();
    ++storageEpoch;
    log << "[t=" << loop.now() << "] reshard: owner A -> B, epoch "
        << storageEpoch << "\n";
  });

  // t1': instance B warms its shard from storage's current value.
  loop.schedule(config.warmReadAtMicros, [&] {
    if (const storage::StoredValue* v = engine.get(key)) {
      cacheB.put(key, cache::CacheEntry::sized(v->size, v->version));
      log << "[t=" << loop.now() << "] new owner warmed v" << v->version
          << " from storage\n";
    }
  });

  loop.run();

  const cache::CacheEntry* cached = cacheB.peek(key);
  const storage::StoredValue* stored = engine.get(key);
  outcome.cacheVersion = cached ? cached->version : 0;
  outcome.storageVersion = stored ? stored->version : 0;
  outcome.anomaly = cached && stored && cached->version != stored->version;
  log << "[final] cache v" << outcome.cacheVersion << " / storage v"
      << outcome.storageVersion << (outcome.anomaly ? "  ** ANOMALY **" : "")
      << "\n";
  outcome.history = log.str();
  return outcome;
}

DelayedWriteOutcome runFaultInjectedReshardScenario(
    const FaultInjectedReshardConfig& config) {
  DelayedWriteOutcome outcome;
  std::ostringstream log;

  sim::EventLoop loop;
  storage::KvEngine engine;
  cache::LruCache cacheA(util::Bytes::mb(1));  // shard of the doomed owner
  cache::LruCache cacheB(util::Bytes::mb(1));  // shard of the successor

  // Real fencing machinery: node 0 owns the key's partition under a lease
  // granted by the storage authority; the crash revokes it.
  sim::NetworkModel network;
  rpc::Channel channel(network, rpc::SerializationModel{});
  sim::Tier appTier("app", sim::TierKind::kAppServer, 2);
  sim::Tier authorityTier("kv", sim::TierKind::kKvStorage, 1);
  LeaseManager leases(appTier, authorityTier.node(0), channel);

  sim::FaultSchedule faults;
  faults.crashNode(config.crashAtMicros, sim::TierKind::kAppServer, 0);

  const std::string key = "acct:42";
  engine.put(key, storage::StoredValue::sized(100), 1);
  cacheA.put(key, cache::CacheEntry::sized(100, 1));

  // t0: the writer on node 0 sends v2, stamped with its lease epoch — the
  // RPC is delayed in flight.
  const std::uint64_t writerEpoch = leases.epoch(0);
  loop.schedule(config.writeDelayMicros, [&] {
    if (config.epochFencing && writerEpoch != leases.epoch(0)) {
      outcome.writeRejected = true;
      log << "[t=" << loop.now() << "] storage REJECTED stale write"
          << " (writer epoch " << writerEpoch << " < lease epoch "
          << leases.epoch(0) << ")\n";
      return;
    }
    engine.put(key, storage::StoredValue::sized(100), 2);
    log << "[t=" << loop.now() << "] delayed write committed v2\n";
  });

  // The reshard is *not* scripted here: the fault schedule's crash event
  // takes node 0 down, its volatile shard dies with it, and the lease
  // manager revokes its lease — bumping the epoch storage fences against.
  for (const sim::FaultEvent& event : faults.events()) {
    loop.schedule(event.atMicros, [&, event] {
      if (event.kind != sim::FaultKind::kNodeCrash ||
          event.tier != sim::TierKind::kAppServer) {
        return;
      }
      appTier.node(event.nodeIndex).setUp(false);
      cacheA.clear();
      leases.revoke(event.nodeIndex);
      log << "[t=" << loop.now() << "] fault: node " << event.nodeIndex
          << " crashed; owner A -> B, lease epoch " << leases.epoch(0)
          << "\n";
    });
  }

  // t1': the successor warms its shard from storage's current value.
  loop.schedule(config.warmReadAtMicros, [&] {
    if (const storage::StoredValue* v = engine.get(key)) {
      cacheB.put(key, cache::CacheEntry::sized(v->size, v->version));
      log << "[t=" << loop.now() << "] new owner warmed v" << v->version
          << " from storage\n";
    }
  });

  loop.run();

  const cache::CacheEntry* cached = cacheB.peek(key);
  const storage::StoredValue* stored = engine.get(key);
  outcome.cacheVersion = cached ? cached->version : 0;
  outcome.storageVersion = stored ? stored->version : 0;
  outcome.anomaly = cached && stored && cached->version != stored->version;
  log << "[final] cache v" << outcome.cacheVersion << " / storage v"
      << outcome.storageVersion << (outcome.anomaly ? "  ** ANOMALY **" : "")
      << "\n";
  outcome.history = log.str();
  return outcome;
}

double delayedWriteAnomalyRate(std::uint64_t trials, bool epochFencing,
                               util::Pcg32& rng) {
  if (trials == 0) return 0.0;
  std::uint64_t anomalies = 0;
  for (std::uint64_t i = 0; i < trials; ++i) {
    DelayedWriteConfig config;
    config.epochFencing = epochFencing;
    // Randomize the race: the write lands anywhere in [0, 10ms); the
    // reshard and warm-read happen anywhere before that or after.
    config.writeDelayMicros = 1 + rng.nextBounded(10000);
    config.reshardAtMicros = 1 + rng.nextBounded(10000);
    config.warmReadAtMicros = config.reshardAtMicros + 1 +
                              rng.nextBounded(2000);
    if (runDelayedWriteScenario(config).anomaly) ++anomalies;
  }
  return static_cast<double>(anomalies) / static_cast<double>(trials);
}

}  // namespace dcache::consistency
