#include "consistency/linearizability.hpp"

#include <algorithm>
#include <map>

namespace dcache::consistency {

std::vector<Violation> checkLinearizable(const History& history) {
  std::vector<Violation> violations;
  const auto& ops = history.ops();

  // Per-session last-read version per key, for monotonic-reads checking.
  std::map<std::pair<std::uint64_t, std::string>, std::uint64_t> sessionRead;

  for (std::size_t i = 0; i < ops.size(); ++i) {
    const HistoryOp& op = ops[i];
    if (op.type != HistoryOpType::kRead) continue;

    // Lower bound: any write on the key that completed before this read
    // began must be visible.
    std::uint64_t mustSee = 0;
    // Upper bound: the read cannot return a version whose write had not
    // even started when the read completed.
    std::uint64_t maxPossible = 0;
    for (const HistoryOp& other : ops) {
      if (other.type != HistoryOpType::kWrite || other.key != op.key) {
        continue;
      }
      if (other.completeMicros <= op.invokeMicros) {
        mustSee = std::max(mustSee, other.version);
      }
      if (other.invokeMicros <= op.completeMicros) {
        maxPossible = std::max(maxPossible, other.version);
      }
    }
    if (op.version < mustSee) {
      violations.push_back(Violation{
          i, "stale read: returned v" + std::to_string(op.version) +
                 " but v" + std::to_string(mustSee) +
                 " completed before the read began (key " + op.key + ")"});
    }
    if (op.version > maxPossible) {
      violations.push_back(Violation{
          i, "read from the future: returned v" + std::to_string(op.version) +
                 " but no such write had started (key " + op.key + ")"});
    }

    auto [it, inserted] =
        sessionRead.try_emplace({op.session, op.key}, op.version);
    if (!inserted) {
      if (op.version < it->second) {
        violations.push_back(Violation{
            i, "non-monotonic read in session " + std::to_string(op.session) +
                   ": v" + std::to_string(op.version) + " after v" +
                   std::to_string(it->second) + " (key " + op.key + ")"});
      } else {
        it->second = op.version;
      }
    }
  }
  return violations;
}

}  // namespace dcache::consistency
