// Linearizability checking for versioned registers. The caches and storage
// expose per-key monotonically increasing versions, which admits a sound
// interval-based check (much cheaper than general Wing & Gong search):
//
//   * a read that returns version v must satisfy
//       v ≥ max version of any write that COMPLETED before the read began
//       v ≤ max version of any write that STARTED before the read ended
//   * reads of the same key must be monotonic per session
//
// The consistency tests run histories produced by the version-check and
// lease read paths through this checker; the eventually-consistent paths
// are shown to violate it under concurrent writes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace dcache::consistency {

enum class HistoryOpType : std::uint8_t { kRead, kWrite };

struct HistoryOp {
  HistoryOpType type = HistoryOpType::kRead;
  std::string key;
  std::uint64_t version = 0;      // written version / version returned
  std::uint64_t invokeMicros = 0;
  std::uint64_t completeMicros = 0;
  std::uint64_t session = 0;      // client/session id for monotonic reads
};

struct Violation {
  std::size_t opIndex = 0;
  std::string reason;
};

class History {
 public:
  void record(HistoryOp op) { ops_.push_back(std::move(op)); }

  [[nodiscard]] const std::vector<HistoryOp>& ops() const noexcept {
    return ops_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return ops_.size(); }
  void clear() noexcept { ops_.clear(); }

 private:
  std::vector<HistoryOp> ops_;
};

/// All linearizability violations in the history (empty = linearizable
/// under versioned-register semantics).
[[nodiscard]] std::vector<Violation> checkLinearizable(const History& history);

/// Convenience predicate.
[[nodiscard]] inline bool isLinearizable(const History& history) {
  return checkLinearizable(history).empty();
}

}  // namespace dcache::consistency
