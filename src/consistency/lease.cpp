#include "consistency/lease.hpp"

namespace dcache::consistency {

LeaseManager::LeaseManager(sim::Tier& appTier, sim::Node& authority,
                           rpc::Channel& channel, LeaseConfig config)
    : tier_(&appTier),
      authority_(&authority),
      channel_(&channel),
      config_(config),
      leases_(appTier.size()) {}

bool LeaseManager::canServeLocally(std::size_t member,
                                   std::uint64_t nowMicros) {
  if (member >= leases_.size()) return false;
  tier_->node(member).charge(sim::CpuComponent::kLeaseValidation,
                             config_.localCheckMicros);
  ++localChecks_;
  const Lease& lease = leases_[member];
  return !lease.revoked && lease.expiry > nowMicros;
}

void LeaseManager::renew(std::size_t member, std::uint64_t nowMicros) {
  if (member >= leases_.size()) return;
  Lease& lease = leases_[member];
  // Renew at half-term, as lease clients do to ride over one lost renewal.
  if (!lease.revoked && lease.expiry > nowMicros + config_.leaseTermMicros / 2) {
    return;
  }
  channel_->call(tier_->node(member), *authority_,
                 config_.renewalMessageBytes, config_.renewalMessageBytes);
  if (lease.revoked) {
    ++lease.epoch;  // re-acquisition after revocation starts a new epoch
    lease.revoked = false;
  }
  lease.expiry = nowMicros + config_.leaseTermMicros;
  ++renewals_;
}

void LeaseManager::revoke(std::size_t member) {
  if (member >= leases_.size()) return;
  leases_[member].revoked = true;
  ++leases_[member].epoch;
}

}  // namespace dcache::consistency
