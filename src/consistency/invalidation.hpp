// Write-invalidation bus: storage (or the writing app server) publishes
// (key, version) events to the cache owners. This is the "cache made
// consistent" style alternative the related-work section contrasts with
// per-read version checks — it moves consistency cost from the read path
// (O(reads)) to the write path (O(writes × subscribers)), which the
// consistency ablation bench quantifies.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "rpc/channel.hpp"
#include "sim/node.hpp"

namespace dcache::consistency {

class InvalidationBus {
 public:
  /// Callback invoked at the subscriber when an event is delivered.
  using Handler =
      std::function<void(std::string_view key, std::uint64_t version)>;

  explicit InvalidationBus(rpc::Channel& channel) : channel_(&channel) {}

  /// Register a subscriber node. Returns its subscriber id.
  std::size_t subscribe(sim::Node& node, Handler handler);

  /// Publish an invalidation from `writer` to every subscriber except
  /// `skipSubscriber` (the writer's own cache, already updated in place).
  /// Returns the slowest delivery latency.
  double publish(sim::Node& writer, std::string_view key,
                 std::uint64_t version,
                 std::size_t skipSubscriber = SIZE_MAX);

  /// Publish to exactly one subscriber (sharded caches: only the owner).
  double publishTo(std::size_t subscriber, sim::Node& writer,
                   std::string_view key, std::uint64_t version);

  [[nodiscard]] std::uint64_t published() const noexcept { return published_; }
  [[nodiscard]] std::uint64_t delivered() const noexcept { return delivered_; }
  [[nodiscard]] std::size_t subscriberCount() const noexcept {
    return subscribers_.size();
  }

 private:
  struct Subscriber {
    sim::Node* node;
    Handler handler;
  };

  rpc::Channel* channel_;
  std::vector<Subscriber> subscribers_;
  std::uint64_t published_ = 0;
  std::uint64_t delivered_ = 0;
};

}  // namespace dcache::consistency
