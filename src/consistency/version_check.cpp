#include "consistency/version_check.hpp"

namespace dcache::consistency {

VersionChecker::Outcome VersionChecker::check(sim::Node& client,
                                              std::string_view key,
                                              std::uint64_t cachedVersion) {
  const auto result = db_->versionCheck(client, key);
  ++checks_;
  Outcome outcome;
  outcome.found = result.found;
  outcome.storageVersion = result.version;
  outcome.latencyMicros = result.latencyMicros;
  outcome.consistent = result.found && result.version == cachedVersion;
  if (!outcome.consistent) ++mismatches_;
  return outcome;
}

}  // namespace dcache::consistency
