// Per-read version check (§2.4 Linked+Version, §5.5). On every cache hit
// the application asks storage for the row's current 8-byte version and
// serves the cached object only if it matches. The check request carries
// just the key — yet it traverses the full storage read path, which is
// precisely the cost this module lets the benches expose.
#pragma once

#include <cstdint>
#include <string_view>

#include "storage/database.hpp"

namespace dcache::consistency {

class VersionChecker {
 public:
  explicit VersionChecker(storage::Database& db) : db_(&db) {}

  struct Outcome {
    bool consistent = false;    // cached version matches storage
    bool found = false;         // key exists in storage
    std::uint64_t storageVersion = 0;
    double latencyMicros = 0.0;
  };

  /// Validate `cachedVersion` for `key` from `client`. The full check cost
  /// (front-end parse/plan, lease validation, row fetch) is charged inside
  /// Database::versionCheck.
  Outcome check(sim::Node& client, std::string_view key,
                std::uint64_t cachedVersion);

  [[nodiscard]] std::uint64_t checks() const noexcept { return checks_; }
  [[nodiscard]] std::uint64_t mismatches() const noexcept {
    return mismatches_;
  }
  [[nodiscard]] double mismatchRate() const noexcept {
    return checks_ ? static_cast<double>(mismatches_) /
                         static_cast<double>(checks_)
                   : 0.0;
  }

 private:
  storage::Database* db_;
  std::uint64_t checks_ = 0;
  std::uint64_t mismatches_ = 0;
};

}  // namespace dcache::consistency
