// The delayed-writes problem (Fig. 8), reproduced on the deterministic
// event loop:
//
//   t0  writer sends W(key, v2) to storage — the RPC is delayed in flight
//   t1  a reshard (node failure / ring change) moves the key's cache
//       ownership to a fresh instance, which warms itself by reading the
//       *current* storage value (v1) and caching it
//   t2  the delayed write lands and commits v2
//   =>  cache (v1) and storage (v2) disagree, silently and indefinitely
//
// The scenario runs with or without epoch fencing: with fencing, the write
// carries the writer's ownership epoch and storage rejects it because the
// reshard bumped the epoch — the anomaly cannot occur (the writer retries
// under the new epoch, through the new owner). sweep() runs many seeds
// with randomized delays/reshard times to measure the anomaly rate.
#pragma once

#include <cstdint>
#include <string>

#include "util/rng.hpp"

namespace dcache::consistency {

struct DelayedWriteConfig {
  std::uint64_t writeDelayMicros = 5000;   // in-flight delay of the write
  std::uint64_t reshardAtMicros = 2000;    // when ownership moves
  std::uint64_t warmReadAtMicros = 3000;   // new owner warms from storage
  bool epochFencing = false;               // the §6 fix under test
};

struct DelayedWriteOutcome {
  bool anomaly = false;        // cache and storage diverged at quiescence
  bool writeRejected = false;  // fencing stopped the stale write
  std::uint64_t cacheVersion = 0;
  std::uint64_t storageVersion = 0;
  std::string history;         // human-readable event log for diagnostics
};

/// Run the scripted Fig. 8 interleaving once.
[[nodiscard]] DelayedWriteOutcome runDelayedWriteScenario(
    const DelayedWriteConfig& config);

/// Randomized sweep: `trials` runs with delays/reshard offsets drawn from
/// `rng`; returns the fraction of runs that ended in an anomaly.
[[nodiscard]] double delayedWriteAnomalyRate(std::uint64_t trials,
                                             bool epochFencing,
                                             util::Pcg32& rng);

/// Same interleaving, but the reshard is not scripted: it is caused by an
/// injected crash of the owning node (a sim::FaultSchedule event), and the
/// fencing epoch comes from a real consistency::LeaseManager whose revoke()
/// fires as part of handling the crash — the path core::Deployment takes
/// when a fault schedule reshards the linked ring.
struct FaultInjectedReshardConfig {
  std::uint64_t writeDelayMicros = 5000;  // in-flight delay of the write
  std::uint64_t crashAtMicros = 2000;     // FaultSchedule: owner A crashes
  std::uint64_t warmReadAtMicros = 3000;  // new owner warms from storage
  bool epochFencing = true;               // validate writes against leases
};

[[nodiscard]] DelayedWriteOutcome runFaultInjectedReshardScenario(
    const FaultInjectedReshardConfig& config);

}  // namespace dcache::consistency
