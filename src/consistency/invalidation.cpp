#include "consistency/invalidation.hpp"

#include <algorithm>

namespace dcache::consistency {
namespace {

/// key + 8-byte version + framing.
[[nodiscard]] std::uint64_t eventBytes(std::string_view key) noexcept {
  return key.size() + 12;
}

}  // namespace

std::size_t InvalidationBus::subscribe(sim::Node& node, Handler handler) {
  subscribers_.push_back(Subscriber{&node, std::move(handler)});
  return subscribers_.size() - 1;
}

double InvalidationBus::publish(sim::Node& writer, std::string_view key,
                                std::uint64_t version,
                                std::size_t skipSubscriber) {
  ++published_;
  double slowest = 0.0;
  for (std::size_t i = 0; i < subscribers_.size(); ++i) {
    if (i == skipSubscriber) continue;
    Subscriber& sub = subscribers_[i];
    const double latency =
        channel_->oneWay(writer, *sub.node, eventBytes(key));
    slowest = std::max(slowest, latency);
    sub.handler(key, version);
    ++delivered_;
  }
  return slowest;
}

double InvalidationBus::publishTo(std::size_t subscriber, sim::Node& writer,
                                  std::string_view key,
                                  std::uint64_t version) {
  if (subscriber >= subscribers_.size()) return 0.0;
  ++published_;
  Subscriber& sub = subscribers_[subscriber];
  const double latency = channel_->oneWay(writer, *sub.node, eventBytes(key));
  sub.handler(key, version);
  ++delivered_;
  return latency;
}

}  // namespace dcache::consistency
