// Ownership leases over key ranges (§6 future work). An auto-sharder
// (Slicer-like) grants each app server a lease with an epoch over its ring
// partition; while the lease is live and all writes are routed through the
// owner, the owner can serve consistent reads *without* a per-read version
// check — replacing O(QPS) storage round-trips with O(shards / lease term)
// renewals. The ablation bench quantifies how much of the §5.5 loss this
// design recovers.
#pragma once

#include <cstdint>
#include <vector>

#include "rpc/channel.hpp"
#include "sim/tier.hpp"

namespace dcache::consistency {

struct LeaseConfig {
  std::uint64_t leaseTermMicros = 2'000'000;  // 2 s, Chubby-style short lease
  double localCheckMicros = 0.15;  // epoch compare on the read path
  std::uint64_t renewalMessageBytes = 64;
};

class LeaseManager {
 public:
  /// `appTier` holds the lease holders; `authority` is the node that grants
  /// leases (the sequencer / lock service; typically a storage node).
  LeaseManager(sim::Tier& appTier, sim::Node& authority,
               rpc::Channel& channel, LeaseConfig config = {});

  /// Can `member` serve a consistent read locally at `nowMicros`?
  /// Charges the (tiny) local epoch check.
  bool canServeLocally(std::size_t member, std::uint64_t nowMicros);

  /// Renew the member's lease (RPC to the authority). Idempotent if the
  /// lease is still fresh enough that renewal isn't due.
  void renew(std::size_t member, std::uint64_t nowMicros);

  /// Revoke on reshard/failure: bumps the epoch so in-flight stale writes
  /// can be fenced (the Fig. 8 fix).
  void revoke(std::size_t member);

  [[nodiscard]] std::uint64_t epoch(std::size_t member) const {
    return leases_.at(member).epoch;
  }
  [[nodiscard]] std::uint64_t renewals() const noexcept { return renewals_; }
  [[nodiscard]] std::uint64_t localChecks() const noexcept {
    return localChecks_;
  }

 private:
  struct Lease {
    std::uint64_t expiry = 0;
    std::uint64_t epoch = 1;
    bool revoked = false;
  };

  sim::Tier* tier_;
  sim::Node* authority_;
  rpc::Channel* channel_;
  LeaseConfig config_;
  std::vector<Lease> leases_;
  std::uint64_t renewals_ = 0;
  std::uint64_t localChecks_ = 0;
};

}  // namespace dcache::consistency
