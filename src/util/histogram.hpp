// Log-bucketed histogram for latencies and sizes. Buckets grow
// geometrically so that relative error is bounded (~3%) across nine orders
// of magnitude while memory stays constant — the standard structure for
// recording microsecond latencies next to multi-second tails.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace dcache::util {

class Histogram {
 public:
  /// `growth` is the geometric bucket growth factor (>1). The default gives
  /// ≈3% relative quantile error.
  explicit Histogram(double growth = 1.06);

  void record(double value) noexcept;
  void recordN(double value, std::uint64_t count) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] double sum() const noexcept { return sum_; }
  [[nodiscard]] double mean() const noexcept;
  [[nodiscard]] double min() const noexcept { return count_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return count_ ? max_ : 0.0; }

  /// Quantile in [0,1]; returns the geometric midpoint of the bucket that
  /// contains the q-th sample. q outside [0,1] is clamped.
  [[nodiscard]] double quantile(double q) const noexcept;
  [[nodiscard]] double p50() const noexcept { return quantile(0.50); }
  [[nodiscard]] double p90() const noexcept { return quantile(0.90); }
  [[nodiscard]] double p99() const noexcept { return quantile(0.99); }

  void merge(const Histogram& other);
  void clear() noexcept;

  /// Multi-line human-readable summary (count/mean/p50/p90/p99/max).
  [[nodiscard]] std::string summary(const std::string& unit = "") const;

 private:
  [[nodiscard]] std::size_t bucketFor(double value) const noexcept;
  [[nodiscard]] double bucketLow(std::size_t index) const noexcept;

  double growth_;
  double logGrowth_;
  std::vector<std::uint64_t> buckets_;  // bucket 0 holds values <= 1.0
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace dcache::util
