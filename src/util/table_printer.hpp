// Aligned ASCII tables. Every benchmark binary reports its figure/table as
// rows printed through this class so all reproduction output has a uniform,
// diffable format.
#pragma once

#include <initializer_list>
#include <string>
#include <vector>

namespace dcache::util {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  void addRow(std::vector<std::string> cells);

  /// Convenience: format doubles/ints/strings into a row.
  template <typename... Ts>
  void row(const Ts&... cells) {
    addRow({toCell(cells)...});
  }

  /// Render with a header rule; optionally a title line above.
  [[nodiscard]] std::string str(const std::string& title = "") const;

  /// Print to stdout.
  void print(const std::string& title = "") const;

  [[nodiscard]] static std::string toCell(const std::string& s) { return s; }
  [[nodiscard]] static std::string toCell(const char* s) { return s; }
  [[nodiscard]] static std::string toCell(double v);
  [[nodiscard]] static std::string toCell(int v);
  [[nodiscard]] static std::string toCell(long v);
  [[nodiscard]] static std::string toCell(long long v);
  [[nodiscard]] static std::string toCell(unsigned long v);
  [[nodiscard]] static std::string toCell(unsigned long long v);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace dcache::util
