// Streaming statistics (Welford) plus small helpers for distribution checks
// used by the workload-generator tests and trace analysis benches.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace dcache::util {

/// Numerically stable running mean/variance accumulator.
class RunningStats {
 public:
  void add(double x) noexcept;
  void merge(const RunningStats& other) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const noexcept;  // population variance
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return n_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const noexcept { return mean_ * static_cast<double>(n_); }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Exact quantile of a sample (copies and sorts; test/analysis use only).
[[nodiscard]] double exactQuantile(std::span<const double> sample, double q);

/// Pearson correlation of two equally sized samples; 0 if degenerate.
[[nodiscard]] double correlation(std::span<const double> xs,
                                 std::span<const double> ys);

/// Least-squares slope of log(y) vs log(x) — used to estimate the Zipf
/// exponent from rank-frequency data. Skips non-positive points.
[[nodiscard]] double logLogSlope(std::span<const double> xs,
                                 std::span<const double> ys);

/// Harmonic-like generalized number H_{n,s} = sum_{k=1..n} k^{-s}.
[[nodiscard]] double generalizedHarmonic(std::uint64_t n, double s);

}  // namespace dcache::util
