#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

namespace dcache::util {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

double RunningStats::variance() const noexcept {
  return n_ ? m2_ / static_cast<double>(n_) : 0.0;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double exactQuantile(std::span<const double> sample, double q) {
  if (sample.empty()) return 0.0;
  std::vector<double> copy(sample.begin(), sample.end());
  std::sort(copy.begin(), copy.end());
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(copy.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, copy.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return copy[lo] * (1.0 - frac) + copy[hi] * frac;
}

double correlation(std::span<const double> xs, std::span<const double> ys) {
  const std::size_t n = std::min(xs.size(), ys.size());
  if (n < 2) return 0.0;
  RunningStats sx;
  RunningStats sy;
  for (std::size_t i = 0; i < n; ++i) {
    sx.add(xs[i]);
    sy.add(ys[i]);
  }
  if (sx.stddev() == 0.0 || sy.stddev() == 0.0) return 0.0;
  double cov = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    cov += (xs[i] - sx.mean()) * (ys[i] - sy.mean());
  }
  cov /= static_cast<double>(n);
  return cov / (sx.stddev() * sy.stddev());
}

double logLogSlope(std::span<const double> xs, std::span<const double> ys) {
  const std::size_t n = std::min(xs.size(), ys.size());
  std::vector<double> lx;
  std::vector<double> ly;
  lx.reserve(n);
  ly.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (xs[i] > 0.0 && ys[i] > 0.0) {
      lx.push_back(std::log(xs[i]));
      ly.push_back(std::log(ys[i]));
    }
  }
  if (lx.size() < 2) return 0.0;
  RunningStats sx;
  RunningStats sy;
  for (std::size_t i = 0; i < lx.size(); ++i) {
    sx.add(lx[i]);
    sy.add(ly[i]);
  }
  double cov = 0.0;
  for (std::size_t i = 0; i < lx.size(); ++i) {
    cov += (lx[i] - sx.mean()) * (ly[i] - sy.mean());
  }
  const double varX = sx.variance() * static_cast<double>(lx.size());
  if (varX == 0.0) return 0.0;
  return cov / varX;
}

double generalizedHarmonic(std::uint64_t n, double s) {
  double h = 0.0;
  for (std::uint64_t k = 1; k <= n; ++k) {
    h += std::pow(static_cast<double>(k), -s);
  }
  return h;
}

}  // namespace dcache::util
