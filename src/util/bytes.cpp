#include "util/bytes.hpp"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace dcache::util {

std::optional<Bytes> Bytes::parse(std::string_view text) {
  // Trim surrounding whitespace.
  while (!text.empty() && std::isspace(static_cast<unsigned char>(text.front()))) {
    text.remove_prefix(1);
  }
  while (!text.empty() && std::isspace(static_cast<unsigned char>(text.back()))) {
    text.remove_suffix(1);
  }
  if (text.empty()) return std::nullopt;

  std::string num(text);
  char* end = nullptr;
  const double value = std::strtod(num.c_str(), &end);
  if (end == num.c_str() || value < 0.0) return std::nullopt;

  std::string_view suffix(end);
  while (!suffix.empty() &&
         std::isspace(static_cast<unsigned char>(suffix.front()))) {
    suffix.remove_prefix(1);
  }
  auto eq = [](std::string_view a, std::string_view b) {
    if (a.size() != b.size()) return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
      if (std::tolower(static_cast<unsigned char>(a[i])) != b[i]) return false;
    }
    return true;
  };
  if (suffix.empty() || eq(suffix, "b")) return of(static_cast<std::uint64_t>(value));
  if (eq(suffix, "kb") || eq(suffix, "k")) return kb(value);
  if (eq(suffix, "mb") || eq(suffix, "m")) return mb(value);
  if (eq(suffix, "gb") || eq(suffix, "g")) return gb(value);
  return std::nullopt;
}

std::string Bytes::str() const {
  char buf[32];
  if (n_ >= 1024ULL * 1024 * 1024) {
    std::snprintf(buf, sizeof buf, "%.1fGB", asGb());
  } else if (n_ >= 1024ULL * 1024) {
    std::snprintf(buf, sizeof buf, "%.1fMB", asMb());
  } else if (n_ >= 1024ULL) {
    std::snprintf(buf, sizeof buf, "%.1fKB", asKb());
  } else {
    std::snprintf(buf, sizeof buf, "%lluB",
                  static_cast<unsigned long long>(n_));
  }
  return buf;
}

}  // namespace dcache::util
