#include "util/thread_pool.hpp"

#include <cstdlib>
#include <string>

namespace dcache::util {

std::size_t resolveJobCount(std::size_t requested) noexcept {
  if (requested > 0) return requested;
  if (const char* env = std::getenv("DCACHE_JOBS")) {
    char* end = nullptr;
    const unsigned long parsed = std::strtoul(env, &end, 10);
    if (end != env && parsed > 0) return static_cast<std::size_t>(parsed);
  }
  const unsigned hardware = std::thread::hardware_concurrency();
  return hardware > 0 ? hardware : 1;
}

ThreadPool::ThreadPool(std::size_t threads) {
  const std::size_t count = resolveJobCount(threads);
  workers_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    workers_.emplace_back([this] { workerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const MutexLock lock(mutex_);
    stop_ = true;
  }
  workAvailable_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    const MutexLock lock(mutex_);
    queue_.push_back(std::move(task));
    ++inFlight_;
  }
  workAvailable_.notify_one();
}

void ThreadPool::wait() {
  std::unique_lock<std::mutex> lock(mutex_.native());
  allDone_.wait(lock,
                [this]() NO_THREAD_SAFETY_ANALYSIS { return inFlight_ == 0; });
}

void ThreadPool::workerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_.native());
      workAvailable_.wait(lock, [this]() NO_THREAD_SAFETY_ANALYSIS {
        return stop_ || !queue_.empty();
      });
      if (queue_.empty()) return;  // stop_ set and nothing left to run
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      const MutexLock lock(mutex_);
      --inFlight_;
    }
    allDone_.notify_all();
  }
}

}  // namespace dcache::util
