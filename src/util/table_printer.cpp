#include "util/table_printer.hpp"

#include <cstdio>
#include <iostream>
#include <sstream>

namespace dcache::util {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::addRow(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::toCell(double v) {
  char buf[40];
  if (v == 0.0) return "0";
  const double a = v < 0 ? -v : v;
  if (a >= 1000.0) {
    std::snprintf(buf, sizeof buf, "%.0f", v);
  } else if (a >= 1.0) {
    std::snprintf(buf, sizeof buf, "%.2f", v);
  } else {
    std::snprintf(buf, sizeof buf, "%.4f", v);
  }
  return buf;
}

std::string TablePrinter::toCell(int v) { return std::to_string(v); }
std::string TablePrinter::toCell(long v) { return std::to_string(v); }
std::string TablePrinter::toCell(long long v) { return std::to_string(v); }
std::string TablePrinter::toCell(unsigned long v) { return std::to_string(v); }
std::string TablePrinter::toCell(unsigned long long v) {
  return std::to_string(v);
}

std::string TablePrinter::str(const std::string& title) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::ostringstream os;
  if (!title.empty()) os << title << '\n';
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << (c ? "  " : "");
      os << cells[c];
      os << std::string(widths[c] - cells[c].size(), ' ');
    }
    os << '\n';
  };
  emit(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c ? 2 : 0);
  }
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
  return os.str();
}

void TablePrinter::print(const std::string& title) const {
  std::cout << str(title) << std::flush;
}

}  // namespace dcache::util
