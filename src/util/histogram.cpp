#include "util/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace dcache::util {

Histogram::Histogram(double growth)
    : growth_(growth > 1.0 ? growth : 1.06), logGrowth_(std::log(growth_)) {}

std::size_t Histogram::bucketFor(double value) const noexcept {
  if (!(value > 1.0)) return 0;  // also catches NaN and negatives
  return static_cast<std::size_t>(std::log(value) / logGrowth_) + 1;
}

double Histogram::bucketLow(std::size_t index) const noexcept {
  if (index == 0) return 0.0;
  return std::exp(static_cast<double>(index - 1) * logGrowth_);
}

void Histogram::record(double value) noexcept { recordN(value, 1); }

void Histogram::recordN(double value, std::uint64_t count) noexcept {
  if (count == 0) return;
  const std::size_t b = bucketFor(value);
  if (b >= buckets_.size()) buckets_.resize(b + 1, 0);
  buckets_[b] += count;
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  count_ += count;
  sum_ += value * static_cast<double>(count);
}

double Histogram::mean() const noexcept {
  return count_ ? sum_ / static_cast<double>(count_) : 0.0;
}

double Histogram::quantile(double q) const noexcept {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(count_ - 1);
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (static_cast<double>(seen) > target) {
      // Geometric midpoint of the bucket bounds; clamp to observed range.
      const double lo = bucketLow(i);
      const double hi = bucketLow(i + 1);
      const double mid = lo > 0.0 ? std::sqrt(lo * hi) : hi * 0.5;
      return std::clamp(mid, min_, max_);
    }
  }
  return max_;
}

void Histogram::merge(const Histogram& other) {
  if (other.count_ == 0) return;
  if (buckets_.size() < other.buckets_.size()) {
    buckets_.resize(other.buckets_.size(), 0);
  }
  for (std::size_t i = 0; i < other.buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

void Histogram::clear() noexcept {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  sum_ = 0.0;
  min_ = max_ = 0.0;
}

std::string Histogram::summary(const std::string& unit) const {
  std::ostringstream os;
  os << "count=" << count_ << " mean=" << mean() << unit << " p50=" << p50()
     << unit << " p90=" << p90() << unit << " p99=" << p99() << unit
     << " max=" << max() << unit;
  return os.str();
}

}  // namespace dcache::util
