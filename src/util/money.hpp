// Fixed-point money type. All costs in the library are monthly USD amounts
// held as integral micro-dollars, so cost accounting is exact and
// associative regardless of summation order — important when we sum millions
// of tiny per-request charges into a monthly bill.
#pragma once

#include <compare>
#include <cstdint>
#include <string>

namespace dcache::util {

class Money {
 public:
  constexpr Money() noexcept = default;

  [[nodiscard]] static constexpr Money fromDollars(double dollars) noexcept {
    return Money(static_cast<std::int64_t>(dollars * kMicrosPerDollar +
                                           (dollars >= 0 ? 0.5 : -0.5)));
  }
  [[nodiscard]] static constexpr Money fromMicros(std::int64_t micros) noexcept {
    return Money(micros);
  }

  [[nodiscard]] constexpr double dollars() const noexcept {
    return static_cast<double>(micros_) / kMicrosPerDollar;
  }
  [[nodiscard]] constexpr std::int64_t micros() const noexcept { return micros_; }

  constexpr Money& operator+=(Money other) noexcept {
    micros_ += other.micros_;
    return *this;
  }
  constexpr Money& operator-=(Money other) noexcept {
    micros_ -= other.micros_;
    return *this;
  }
  [[nodiscard]] friend constexpr Money operator+(Money a, Money b) noexcept {
    return a += b;
  }
  [[nodiscard]] friend constexpr Money operator-(Money a, Money b) noexcept {
    return a -= b;
  }
  [[nodiscard]] friend constexpr Money operator*(Money a, double scale) noexcept {
    return fromDollars(a.dollars() * scale);
  }
  [[nodiscard]] friend constexpr Money operator*(double scale, Money a) noexcept {
    return a * scale;
  }
  /// Ratio of two amounts (e.g. a savings factor). Returns 0 if b is zero.
  [[nodiscard]] friend constexpr double operator/(Money a, Money b) noexcept {
    return b.micros_ == 0 ? 0.0
                          : static_cast<double>(a.micros_) /
                                static_cast<double>(b.micros_);
  }

  friend constexpr auto operator<=>(Money, Money) noexcept = default;

  /// "$123.46" / "$0.0042" style rendering with sensible precision.
  [[nodiscard]] std::string str() const;

 private:
  explicit constexpr Money(std::int64_t micros) noexcept : micros_(micros) {}
  static constexpr double kMicrosPerDollar = 1'000'000.0;

  std::int64_t micros_ = 0;
};

}  // namespace dcache::util
