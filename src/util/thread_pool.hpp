// Fixed-size worker pool for the experiment matrix: figure benches fan
// independent simulation cells out across cores. Deliberately minimal —
// submit + wait, no futures — because the matrix layer owns result slots
// and ordering, so the pool never needs to move values across threads.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

#include "util/thread_annotations.hpp"

namespace dcache::util {

/// Resolve a worker count: an explicit request wins, else the DCACHE_JOBS
/// environment variable, else the hardware concurrency (min 1).
[[nodiscard]] std::size_t resolveJobCount(std::size_t requested) noexcept;

class ThreadPool {
 public:
  /// `threads == 0` resolves via resolveJobCount (DCACHE_JOBS / hardware).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  void submit(std::function<void()> task) EXCLUDES(mutex_);

  /// Block until every submitted task has finished. Opted out of the
  /// static analysis: the condition-variable wait needs the native
  /// std::mutex handle, which the checker cannot see through.
  void wait() NO_THREAD_SAFETY_ANALYSIS;

  [[nodiscard]] std::size_t threadCount() const noexcept {
    return workers_.size();
  }

 private:
  // Same opt-out as wait(): blocks on workAvailable_ via the native handle.
  void workerLoop() NO_THREAD_SAFETY_ANALYSIS;

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_ GUARDED_BY(mutex_);
  Mutex mutex_;
  std::condition_variable workAvailable_;
  std::condition_variable allDone_;
  std::size_t inFlight_ GUARDED_BY(mutex_) = 0;  // queued + currently executing
  bool stop_ GUARDED_BY(mutex_) = false;
};

/// Run `count` independent tasks and return their results in index order —
/// task i writes only slot i, so the output is identical for any worker
/// count. The first task exception (if any) is rethrown after all tasks
/// drain. The result type must be default-constructible.
template <typename Fn>
auto mapOrdered(ThreadPool& pool, std::size_t count, Fn fn)
    -> std::vector<std::invoke_result_t<Fn&, std::size_t>> {
  using Result = std::invoke_result_t<Fn&, std::size_t>;
  std::vector<Result> results(count);
  std::exception_ptr firstError;
  std::mutex errorMutex;
  for (std::size_t i = 0; i < count; ++i) {
    pool.submit([&results, &fn, &firstError, &errorMutex, i] {
      try {
        results[i] = fn(i);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(errorMutex);
        if (!firstError) firstError = std::current_exception();
      }
    });
  }
  pool.wait();
  if (firstError) std::rethrow_exception(firstError);
  return results;
}

}  // namespace dcache::util
