// Strong type for byte quantities (cache capacities, value sizes, memory
// footprints) with parsing ("6GB", "23KB") and human-readable formatting.
// Keeping sizes in a dedicated type prevents the classic KB/GB unit mixups
// in capacity math.
#pragma once

#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace dcache::util {

class Bytes {
 public:
  constexpr Bytes() noexcept = default;

  [[nodiscard]] static constexpr Bytes of(std::uint64_t n) noexcept {
    return Bytes(n);
  }
  [[nodiscard]] static constexpr Bytes kb(double n) noexcept {
    return Bytes(static_cast<std::uint64_t>(n * 1024.0));
  }
  [[nodiscard]] static constexpr Bytes mb(double n) noexcept {
    return Bytes(static_cast<std::uint64_t>(n * 1024.0 * 1024.0));
  }
  [[nodiscard]] static constexpr Bytes gb(double n) noexcept {
    return Bytes(static_cast<std::uint64_t>(n * 1024.0 * 1024.0 * 1024.0));
  }

  /// Parse "512", "16KB", "1.5MB", "6GB" (case-insensitive, optional space).
  [[nodiscard]] static std::optional<Bytes> parse(std::string_view text);

  [[nodiscard]] constexpr std::uint64_t count() const noexcept { return n_; }
  [[nodiscard]] constexpr double asKb() const noexcept {
    return static_cast<double>(n_) / 1024.0;
  }
  [[nodiscard]] constexpr double asMb() const noexcept {
    return asKb() / 1024.0;
  }
  [[nodiscard]] constexpr double asGb() const noexcept {
    return asMb() / 1024.0;
  }

  constexpr Bytes& operator+=(Bytes other) noexcept {
    n_ += other.n_;
    return *this;
  }
  constexpr Bytes& operator-=(Bytes other) noexcept {
    n_ = n_ >= other.n_ ? n_ - other.n_ : 0;  // saturating
    return *this;
  }
  [[nodiscard]] friend constexpr Bytes operator+(Bytes a, Bytes b) noexcept {
    return a += b;
  }
  [[nodiscard]] friend constexpr Bytes operator-(Bytes a, Bytes b) noexcept {
    return a -= b;
  }
  [[nodiscard]] friend constexpr Bytes operator*(Bytes a, double k) noexcept {
    return Bytes(static_cast<std::uint64_t>(static_cast<double>(a.n_) * k));
  }
  friend constexpr auto operator<=>(Bytes, Bytes) noexcept = default;

  /// "23.0KB", "1.5MB", "6.0GB", "512B".
  [[nodiscard]] std::string str() const;

 private:
  explicit constexpr Bytes(std::uint64_t n) noexcept : n_(n) {}
  std::uint64_t n_ = 0;
};

}  // namespace dcache::util
