// Hashing primitives used across the library: stable 64-bit hashes for
// sharding, consistent hashing and key fingerprints. These are deliberately
// self-contained (no std::hash) so that shard placement is identical across
// platforms and runs — experiment results must be reproducible bit-for-bit.
#pragma once

#include <cstdint>
#include <cstring>
#include <string_view>

namespace dcache::util {

/// FNV-1a over an arbitrary byte string. Stable across platforms.
[[nodiscard]] std::uint64_t fnv1a64(std::string_view bytes) noexcept;

/// Strong 64-bit finalizer (xxhash/murmur-style avalanche). Use to derive
/// secondary hashes from a primary one without re-hashing the key.
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

/// Hash of a string key: FNV-1a followed by an avalanche round. This is the
/// canonical key hash used for cache shard selection and ring placement.
[[nodiscard]] std::uint64_t hashKey(std::string_view key) noexcept;

/// Combine two hashes (order-dependent), e.g. key hash + table id.
[[nodiscard]] constexpr std::uint64_t hashCombine(std::uint64_t a,
                                                  std::uint64_t b) noexcept {
  return mix64(a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2)));
}

/// Hash a 64-bit integer key (e.g. a row id) directly.
[[nodiscard]] constexpr std::uint64_t hashU64(std::uint64_t x) noexcept {
  return mix64(x + 0x9e3779b97f4a7c15ULL);
}

/// Fast word-at-a-time 64-bit hash (MurmurHash64A). Roughly 5x cheaper than
/// hashKey's byte-serial FNV on short keys, but NOT part of any observable
/// placement decision: use it ONLY for internal index layout (open-addressing
/// probe positions) where an exact key compare decides equality — never for
/// shard selection, ring placement, or anything else whose value leaks into
/// experiment output.
[[nodiscard]] inline std::uint64_t fastHash64(std::string_view bytes) noexcept {
  constexpr std::uint64_t kMul = 0xc6a4a7935bd1e995ULL;
  constexpr int kShift = 47;
  std::uint64_t h = 0x8445d61a4e774912ULL ^ (bytes.size() * kMul);
  const char* p = bytes.data();
  std::size_t n = bytes.size();
  while (n >= 8) {
    std::uint64_t k;
    std::memcpy(&k, p, 8);
    k *= kMul;
    k ^= k >> kShift;
    k *= kMul;
    h ^= k;
    h *= kMul;
    p += 8;
    n -= 8;
  }
  if (n != 0) {
    std::uint64_t tail = 0;
    std::memcpy(&tail, p, n);
    h ^= tail;
    h *= kMul;
  }
  h ^= h >> kShift;
  h *= kMul;
  h ^= h >> kShift;
  return h;
}

/// Transparent hasher for unordered containers keyed by std::string but
/// probed with string_view (heterogeneous lookup, no temporary strings).
struct TransparentStringHash {
  using is_transparent = void;
  [[nodiscard]] std::size_t operator()(std::string_view s) const noexcept {
    return static_cast<std::size_t>(hashKey(s));
  }
};

}  // namespace dcache::util
