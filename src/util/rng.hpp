// Deterministic random number generation. Experiments must be reproducible,
// so all randomness flows through explicitly seeded generators — never
// std::random_device or global state.
#pragma once

#include <cstdint>
#include <limits>

namespace dcache::util {

/// SplitMix64: used to expand a single user seed into stream seeds.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    state_ += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = state_;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// PCG32 (XSH-RR): small, fast, statistically solid generator. Satisfies
/// UniformRandomBitGenerator so it can drive std distributions as well.
class Pcg32 {
 public:
  using result_type = std::uint32_t;

  constexpr Pcg32() noexcept : Pcg32(0x853c49e6748fea9bULL, 0xda3e39cb94b95bdbULL) {}
  constexpr explicit Pcg32(std::uint64_t seed, std::uint64_t stream = 1) noexcept
      : state_(0), inc_((stream << 1U) | 1U) {
    next();
    state_ += seed;
    next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  constexpr result_type operator()() noexcept { return next(); }

  constexpr result_type next() noexcept {
    const std::uint64_t old = state_;
    state_ = old * 6364136223846793005ULL + inc_;
    const auto xorshifted =
        static_cast<std::uint32_t>(((old >> 18U) ^ old) >> 27U);
    const auto rot = static_cast<std::uint32_t>(old >> 59U);
    return (xorshifted >> rot) | (xorshifted << ((32U - rot) & 31U));
  }

  /// Unbiased uniform integer in [0, bound) via Lemire rejection.
  constexpr std::uint32_t nextBounded(std::uint32_t bound) noexcept {
    if (bound <= 1) return 0;
    std::uint64_t m = static_cast<std::uint64_t>(next()) * bound;
    auto lo = static_cast<std::uint32_t>(m);
    if (lo < bound) {
      const std::uint32_t threshold = (0U - bound) % bound;
      while (lo < threshold) {
        m = static_cast<std::uint64_t>(next()) * bound;
        lo = static_cast<std::uint32_t>(m);
      }
    }
    return static_cast<std::uint32_t>(m >> 32U);
  }

  /// 64-bit draw composed from two 32-bit outputs.
  constexpr std::uint64_t next64() noexcept {
    return (static_cast<std::uint64_t>(next()) << 32U) | next();
  }

 private:
  std::uint64_t state_;
  std::uint64_t inc_;
};

/// Uniform double in [0,1) with full 53-bit mantissa randomness.
[[nodiscard]] double uniform01(Pcg32& rng) noexcept;

/// Normal(0,1) via Marsaglia polar method (deterministic given the rng).
[[nodiscard]] double standardNormal(Pcg32& rng) noexcept;

/// Lognormal draw with the given parameters of the underlying normal.
[[nodiscard]] double logNormal(Pcg32& rng, double mu, double sigma) noexcept;

/// Exponential draw with the given rate.
[[nodiscard]] double exponential(Pcg32& rng, double rate) noexcept;

/// Pareto (Lomax-style, scale xm, shape alpha): heavy-tailed sizes.
[[nodiscard]] double pareto(Pcg32& rng, double xm, double alpha) noexcept;

}  // namespace dcache::util
