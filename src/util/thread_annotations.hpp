// Clang thread-safety annotations (-Wthread-safety) plus a minimally
// annotated mutex wrapper. Under clang the macros expand to the capability
// attributes and the analysis statically checks that every GUARDED_BY
// member is only touched with its mutex held; under gcc (the default
// toolchain here) they expand to nothing and the wrapper is a plain
// std::mutex. Opt into the check lane with RUN_WTHREAD_SAFETY=1
// tools/check.sh (skipped gracefully when clang++ is absent).
//
// libstdc++'s std::mutex/std::lock_guard carry no capability attributes,
// so the analysis cannot see through them; Mutex/MutexLock below are the
// annotated equivalents. Condition-variable waits still need the native
// std::mutex handle — methods that wait expose that seam explicitly.
#pragma once

#include <mutex>

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define DCACHE_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef DCACHE_THREAD_ANNOTATION
#define DCACHE_THREAD_ANNOTATION(x)
#endif

#define CAPABILITY(x) DCACHE_THREAD_ANNOTATION(capability(x))
#define SCOPED_CAPABILITY DCACHE_THREAD_ANNOTATION(scoped_lockable)
#define GUARDED_BY(x) DCACHE_THREAD_ANNOTATION(guarded_by(x))
#define PT_GUARDED_BY(x) DCACHE_THREAD_ANNOTATION(pt_guarded_by(x))
#define REQUIRES(...) \
  DCACHE_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define ACQUIRE(...) DCACHE_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define RELEASE(...) DCACHE_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define EXCLUDES(...) DCACHE_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define NO_THREAD_SAFETY_ANALYSIS \
  DCACHE_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace dcache::util {

/// std::mutex with the capability attribute, so GUARDED_BY(mutex_) means
/// something to the analysis. `native()` hands out the raw handle for
/// std::condition_variable waits, which require std::unique_lock over the
/// real std::mutex — callers of that seam opt out of the analysis locally.
class CAPABILITY("mutex") Mutex {
 public:
  void lock() ACQUIRE() { m_.lock(); }
  void unlock() RELEASE() { m_.unlock(); }
  [[nodiscard]] std::mutex& native() noexcept { return m_; }

 private:
  std::mutex m_;
};

/// Annotated std::lock_guard equivalent for Mutex.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.lock();
  }
  ~MutexLock() RELEASE() { mutex_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mutex_;
};

}  // namespace dcache::util
