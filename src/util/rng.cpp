#include "util/rng.hpp"

#include <cmath>

namespace dcache::util {

double uniform01(Pcg32& rng) noexcept {
  // 53 random mantissa bits -> uniform in [0,1).
  const std::uint64_t bits = rng.next64() >> 11U;
  return static_cast<double>(bits) * 0x1.0p-53;
}

double standardNormal(Pcg32& rng) noexcept {
  // Marsaglia polar method; loop terminates with probability 1.
  for (;;) {
    const double u = 2.0 * uniform01(rng) - 1.0;
    const double v = 2.0 * uniform01(rng) - 1.0;
    const double s = u * u + v * v;
    if (s > 0.0 && s < 1.0) {
      return u * std::sqrt(-2.0 * std::log(s) / s);
    }
  }
}

double logNormal(Pcg32& rng, double mu, double sigma) noexcept {
  return std::exp(mu + sigma * standardNormal(rng));
}

double exponential(Pcg32& rng, double rate) noexcept {
  return -std::log(1.0 - uniform01(rng)) / rate;
}

double pareto(Pcg32& rng, double xm, double alpha) noexcept {
  return xm / std::pow(1.0 - uniform01(rng), 1.0 / alpha);
}

}  // namespace dcache::util
