#include "util/hash.hpp"

namespace dcache::util {

std::uint64_t fnv1a64(std::string_view bytes) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::uint64_t hashKey(std::string_view key) noexcept {
  return mix64(fnv1a64(key));
}

}  // namespace dcache::util
