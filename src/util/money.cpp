#include "util/money.hpp"

#include <cmath>
#include <cstdio>

namespace dcache::util {

std::string Money::str() const {
  const double d = dollars();
  char buf[48];
  if (std::abs(d) >= 100.0) {
    std::snprintf(buf, sizeof buf, "$%.0f", d);
  } else if (std::abs(d) >= 1.0) {
    std::snprintf(buf, sizeof buf, "$%.2f", d);
  } else {
    std::snprintf(buf, sizeof buf, "$%.4f", d);
  }
  return buf;
}

}  // namespace dcache::util
