#include "core/membership.hpp"

#include <algorithm>

#include "rpc/wire_size.hpp"
#include "sim/trace_hook.hpp"

namespace dcache::core {

std::string_view membershipKindName(MembershipKind kind) noexcept {
  switch (kind) {
    case MembershipKind::kJoin:
      return "join";
    case MembershipKind::kLeave:
      return "leave";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// MembershipSchedule
// ---------------------------------------------------------------------------

void MembershipSchedule::add(MembershipEvent event) {
  events_.push_back(event);
  sorted_ = false;
}

void MembershipSchedule::join(std::uint64_t atMicros, sim::TierKind tier,
                              std::size_t nodeIndex) {
  add({atMicros, MembershipKind::kJoin, tier, nodeIndex});
}

void MembershipSchedule::leave(std::uint64_t atMicros, sim::TierKind tier,
                               std::size_t nodeIndex) {
  add({atMicros, MembershipKind::kLeave, tier, nodeIndex});
}

void MembershipSchedule::rollingRestart(std::uint64_t fromMicros,
                                        sim::TierKind tier,
                                        std::size_t firstNode,
                                        std::size_t count,
                                        std::uint64_t stepMicros,
                                        std::uint64_t downMicros) {
  for (std::size_t i = 0; i < count; ++i) {
    const std::uint64_t at = fromMicros + i * stepMicros;
    leave(at, tier, firstNode + i);
    join(at + downMicros, tier, firstNode + i);
  }
}

void MembershipSchedule::scaleOut(std::uint64_t atMicros, sim::TierKind tier,
                                  std::size_t firstNode, std::size_t count) {
  for (std::size_t i = 0; i < count; ++i) {
    join(atMicros, tier, firstNode + i);
  }
}

void MembershipSchedule::scaleIn(std::uint64_t atMicros, sim::TierKind tier,
                                 std::size_t firstNode, std::size_t count) {
  for (std::size_t i = 0; i < count; ++i) {
    leave(atMicros, tier, firstNode + i);
  }
}

void MembershipSchedule::startAbsent(sim::TierKind tier,
                                     std::size_t nodeIndex) {
  absent_.push_back({0, MembershipKind::kLeave, tier, nodeIndex});
}

const std::vector<MembershipEvent>& MembershipSchedule::events() const {
  if (!sorted_) {
    // Stable: events at the same instant keep insertion order, so a
    // schedule replays identically however it was built.
    std::stable_sort(events_.begin(), events_.end(),
                     [](const MembershipEvent& a, const MembershipEvent& b) {
                       return a.atMicros < b.atMicros;
                     });
    sorted_ = true;
  }
  return events_;
}

// ---------------------------------------------------------------------------
// MembershipDirector
// ---------------------------------------------------------------------------

namespace {

/// Batched wire accounting: one (source, dest) transfer per pump batch,
/// however many keys rode in it.
struct TransferGroup {
  std::size_t from = 0;
  std::size_t to = 0;
  std::uint64_t bytes = 0;
};

void accumulate(std::vector<TransferGroup>& groups, std::size_t from,
                std::size_t to, std::uint64_t bytes) {
  for (TransferGroup& g : groups) {
    if (g.from == from && g.to == to) {
      g.bytes += bytes;
      return;
    }
  }
  groups.push_back({from, to, bytes});
}

void markTouched(std::vector<std::size_t>& touched, std::size_t index) {
  if (std::find(touched.begin(), touched.end(), index) == touched.end()) {
    touched.push_back(index);
  }
}

/// Flips every node of the churn tier (plus the far pump's app-side
/// initiator) into background-QoS mode for the duration of a pump batch:
/// migration CPU and wire framing are metered and billed but never enter
/// the foreground queues, the way a deprioritized bulk stream behaves.
class BackgroundPumpScope {
 public:
  BackgroundPumpScope(sim::Tier* tier, sim::Node* initiator) noexcept
      : tier_(tier), initiator_(initiator) {
    if (tier_ != nullptr) {
      for (std::size_t i = 0; i < tier_->size(); ++i) {
        tier_->node(i).setBackgroundWork(true);
      }
    }
    if (initiator_ != nullptr) initiator_->setBackgroundWork(true);
  }
  ~BackgroundPumpScope() {
    if (tier_ != nullptr) {
      for (std::size_t i = 0; i < tier_->size(); ++i) {
        tier_->node(i).setBackgroundWork(false);
      }
    }
    if (initiator_ != nullptr) initiator_->setBackgroundWork(false);
  }
  BackgroundPumpScope(const BackgroundPumpScope&) = delete;
  BackgroundPumpScope& operator=(const BackgroundPumpScope&) = delete;

 private:
  sim::Tier* tier_;
  sim::Node* initiator_;
};

}  // namespace

MembershipDirector::MembershipDirector(MembershipSchedule schedule,
                                       HandoffConfig handoff, Hooks hooks)
    : schedule_(std::move(schedule)), handoff_(handoff), hooks_(hooks) {
  if (handoff_.batchIntervalMicros == 0) handoff_.batchIntervalMicros = 1;
  // Scale-out spares: out of the ring and powered down before the first op,
  // uncounted (they never "left" — they haven't arrived yet).
  for (const MembershipEvent& e : schedule_.absentAtStart()) {
    if (ringTier(e.tier)) {
      if (e.tier == sim::TierKind::kAppServer) {
        hooks_.linked->removeServer(e.nodeIndex);
      } else if (e.tier == sim::TierKind::kRemoteCache) {
        hooks_.remote->leaveNode(e.nodeIndex);
        hooks_.remote->dropShard(e.nodeIndex);
      } else {
        hooks_.disagg->leaveNode(e.nodeIndex);
        hooks_.disagg->dropShard(e.nodeIndex);
      }
    }
    if (sim::Tier* tier = tierFor(e.tier)) {
      if (e.nodeIndex < tier->size()) tier->node(e.nodeIndex).setUp(false);
    }
  }
}

bool MembershipDirector::ringTier(sim::TierKind tier) const noexcept {
  switch (tier) {
    case sim::TierKind::kAppServer:
      return hooks_.linked != nullptr;
    case sim::TierKind::kRemoteCache:
      return hooks_.remote != nullptr;
    case sim::TierKind::kFarMemory:
      return hooks_.disagg != nullptr;
    default:
      return false;
  }
}

bool MembershipDirector::isRingMember(sim::TierKind tier,
                                      std::size_t index) const noexcept {
  switch (tier) {
    case sim::TierKind::kAppServer:
      return hooks_.linked->hasServer(index);
    case sim::TierKind::kRemoteCache:
      return hooks_.remote->isMember(index);
    default:
      return hooks_.disagg->isMember(index);
  }
}

std::size_t MembershipDirector::ringMemberCount(
    sim::TierKind tier) const noexcept {
  switch (tier) {
    case sim::TierKind::kAppServer:
      return hooks_.linked->serverCount();
    case sim::TierKind::kRemoteCache:
      return hooks_.remote->memberCount();
    default:
      return hooks_.disagg->memberCount();
  }
}

sim::Tier* MembershipDirector::tierFor(sim::TierKind tier) const noexcept {
  switch (tier) {
    case sim::TierKind::kAppServer:
      return hooks_.appTier;
    case sim::TierKind::kRemoteCache:
      return hooks_.remoteTier;
    case sim::TierKind::kFarMemory:
      return hooks_.farTier;
    default:
      return nullptr;
  }
}

cache::KvCache* MembershipDirector::shardFor(sim::TierKind tier,
                                             std::size_t index) const {
  switch (tier) {
    case sim::TierKind::kAppServer:
      return hooks_.linked ? &hooks_.linked->shard(index) : nullptr;
    case sim::TierKind::kRemoteCache:
      return hooks_.remote ? &hooks_.remote->shardForNode(index) : nullptr;
    case sim::TierKind::kFarMemory:
      return hooks_.disagg ? &hooks_.disagg->farShardForNode(index) : nullptr;
    default:
      return nullptr;
  }
}

std::size_t MembershipDirector::ownerFor(sim::TierKind tier,
                                         std::string_view key) const {
  switch (tier) {
    case sim::TierKind::kAppServer:
      return hooks_.linked->ownerOf(key);
    case sim::TierKind::kRemoteCache:
      return hooks_.remote->ownerOf(key);
    default:
      return hooks_.disagg->nodeForKey(key);
  }
}

void MembershipDirector::syncShardMemory(sim::TierKind tier,
                                         std::size_t index) {
  cache::KvCache* shard = shardFor(tier, index);
  sim::Tier* t = tierFor(tier);
  if (shard == nullptr || t == nullptr || index >= t->size()) return;
  t->node(index).mem().use(shard->bytesUsed());
}

bool MembershipDirector::hasWorkAt(std::uint64_t nowMicros) const noexcept {
  const auto& events = schedule_.events();
  if (cursor_ < events.size() && events[cursor_].atMicros <= nowMicros) {
    return true;
  }
  for (const Task& task : tasks_) {
    if (task.windowEndMicros <= nowMicros) return true;
    if (task.cursor < task.pending.size() &&
        task.nextBatchMicros <= nowMicros) {
      return true;
    }
  }
  return false;
}

void MembershipDirector::advanceTo(std::uint64_t nowMicros) {
  const auto& events = schedule_.events();
  while (cursor_ < events.size() && events[cursor_].atMicros <= nowMicros) {
    applyEvent(events[cursor_], nowMicros);
    ++cursor_;
  }
  pump(nowMicros);
}

void MembershipDirector::applyEvent(const MembershipEvent& event,
                                    std::uint64_t nowMicros) {
  if (event.kind == MembershipKind::kLeave && ringTier(event.tier) &&
      isRingMember(event.tier, event.nodeIndex) &&
      ringMemberCount(event.tier) <= 1) {
    // Refuse to drain the last ring member: its keys would have no owner
    // to move to and the placement would be empty. The event is dropped
    // whole — uncounted, no deployment-side fencing — the way an operator
    // tool rejects a drain that would take the tier to zero.
    return;
  }
  if (event.kind == MembershipKind::kJoin) {
    applyJoin(event, nowMicros);
  } else {
    applyLeave(event, nowMicros);
  }
  applied_.push_back(event);
}

void MembershipDirector::applyJoin(const MembershipEvent& event,
                                   std::uint64_t nowMicros) {
  ++counters_.plannedJoins;
  sim::Tier* tier = tierFor(event.tier);
  if (tier == nullptr || event.nodeIndex >= tier->size()) return;
  tier->node(event.nodeIndex).setUp(true);

  // A (re)joining app server under disagg restarts its process: the hot
  // cache must come back cold (it missed every invalidation while away).
  if (event.tier == sim::TierKind::kAppServer && hooks_.disagg != nullptr) {
    hooks_.disagg->hotShardForNode(event.nodeIndex).clear();
    syncShardMemory(event.tier, event.nodeIndex);
  }

  if (!ringTier(event.tier)) return;
  // Ring transition first — the join snapshot needs the *post-join*
  // placement to know which keys the newcomer now owns.
  if (event.tier == sim::TierKind::kAppServer) {
    hooks_.linked->addServer(event.nodeIndex);  // idempotent; shard cold
  } else if (event.tier == sim::TierKind::kRemoteCache) {
    hooks_.remote->joinNode(event.nodeIndex);
  } else {
    hooks_.disagg->joinNode(event.nodeIndex);
  }
  ++counters_.epochFences;  // ownership moved: one epoch fence per transition

  if (!handoff_.enabled) return;  // cold: the newcomer warms organically
  Task task;
  task.event = event;
  task.windowEndMicros = nowMicros + handoff_.windowMicros;
  task.nextBatchMicros = nowMicros + handoff_.batchIntervalMicros;
  snapshotJoin(task);
  buildIndex(task);
  tasks_.push_back(std::move(task));
}

void MembershipDirector::applyLeave(const MembershipEvent& event,
                                    std::uint64_t nowMicros) {
  ++counters_.plannedLeaves;
  sim::Tier* tier = tierFor(event.tier);
  if (tier == nullptr || event.nodeIndex >= tier->size()) return;

  if (!ringTier(event.tier)) {
    // Stateless tier (app servers under Base/Remote/Disagg): nothing to
    // migrate, the node just drains out of rotation.
    tier->node(event.nodeIndex).setUp(false);
    return;
  }

  ++counters_.epochFences;  // ownership moves now, whatever the posture

  if (!handoff_.enabled) {
    // Cold reshard: ownership moves and the shard dies with the process.
    if (event.tier == sim::TierKind::kAppServer) {
      hooks_.linked->removeServer(event.nodeIndex);
    } else if (event.tier == sim::TierKind::kRemoteCache) {
      hooks_.remote->leaveNode(event.nodeIndex);
      hooks_.remote->dropShard(event.nodeIndex);
    } else {
      hooks_.disagg->leaveNode(event.nodeIndex);
      hooks_.disagg->dropShard(event.nodeIndex);
    }
    syncShardMemory(event.tier, event.nodeIndex);
    tier->node(event.nodeIndex).setUp(false);
    return;
  }

  // Warm drain: out of the ring immediately (no new keys land here), but
  // the process stays up through the transfer window so the pump and the
  // dual-read fallback can still read its shard.
  if (event.tier == sim::TierKind::kAppServer) {
    hooks_.linked->drainServer(event.nodeIndex);
  } else if (event.tier == sim::TierKind::kRemoteCache) {
    hooks_.remote->leaveNode(event.nodeIndex);
  } else {
    hooks_.disagg->leaveNode(event.nodeIndex);
  }
  Task task;
  task.event = event;
  task.windowEndMicros = nowMicros + handoff_.windowMicros;
  task.nextBatchMicros = nowMicros + handoff_.batchIntervalMicros;
  snapshotLeave(task);
  buildIndex(task);
  tasks_.push_back(std::move(task));
}

void MembershipDirector::snapshotLeave(Task& task) {
  cache::KvCache* source = shardFor(task.event.tier, task.event.nodeIndex);
  if (source == nullptr) return;
  const std::size_t from = task.event.nodeIndex;
  source->forEachEntry(
      [&](std::string_view key, const cache::CacheEntry& entry) {
        task.pending.push_back(
            {std::string(key), from, entry.size, entry.version});
      });
}

void MembershipDirector::snapshotJoin(Task& task) {
  const sim::TierKind tierKind = task.event.tier;
  sim::Tier* tier = tierFor(tierKind);
  if (tier == nullptr) return;
  const std::size_t joiner = task.event.nodeIndex;
  for (std::size_t i = 0; i < tier->size(); ++i) {
    if (i == joiner) continue;
    cache::KvCache* shard = shardFor(tierKind, i);
    if (shard == nullptr) continue;
    shard->forEachEntry(
        [&](std::string_view key, const cache::CacheEntry& entry) {
          if (ownerFor(tierKind, key) == joiner) {
            task.pending.push_back(
                {std::string(key), i, entry.size, entry.version});
          }
        });
  }
}

void MembershipDirector::buildIndex(Task& task) {
  // Views into task.pending's key strings: pending is fully built by now
  // and never mutated afterwards (the pump only advances a cursor), so the
  // views stay valid for the task's lifetime.
  task.byKey.reserve(task.pending.size());
  for (std::size_t i = 0; i < task.pending.size(); ++i) {
    task.byKey.emplace(std::string_view(task.pending[i].key), i);
  }
}

void MembershipDirector::pump(std::uint64_t nowMicros) {
  for (Task& task : tasks_) {
    const std::uint64_t horizon =
        std::min(nowMicros, task.windowEndMicros);
    while (task.nextBatchMicros <= horizon &&
           task.cursor < task.pending.size()) {
      pumpTask(task);
      task.nextBatchMicros += handoff_.batchIntervalMicros;
    }
  }
  // Close expired windows in task order (std::erase_if is stable, so the
  // remaining tasks keep their deterministic order).
  for (const Task& task : tasks_) {
    if (task.windowEndMicros <= nowMicros) finishTask(task);
  }
  std::erase_if(tasks_, [&](const Task& task) {
    return task.windowEndMicros <= nowMicros;
  });
}

void MembershipDirector::pumpTask(Task& task) {
  const sim::TierKind tierKind = task.event.tier;
  sim::Tier* tier = tierFor(tierKind);
  if (tier == nullptr) {
    task.cursor = task.pending.size();
    return;
  }
  sim::SpanGuard span("membership.handoff", tierKind);

  std::vector<TransferGroup> groups;
  std::vector<std::size_t> touched;
  // The far pool is passive (one-sided access only), so a deterministic
  // round-robin of app servers drives its migrations.
  const bool far = tierKind == sim::TierKind::kFarMemory;
  sim::Node* initiator = nullptr;
  if (far) {
    initiator = &hooks_.appTier->node(farInitiator_);
    farInitiator_ = (farInitiator_ + 1) % hooks_.appTier->size();
  }
  BackgroundPumpScope background(tier, initiator);

  std::size_t moved = 0;
  while (moved < handoff_.keysPerBatch &&
         task.cursor < task.pending.size()) {
    const PendingKey& pk = task.pending[task.cursor++];
    // A crash fault can take the source down mid-window; a dead process
    // cannot serve its keys, so the pump drops them (its shard died with
    // it anyway).
    if (pk.fromIndex >= tier->size() || !tier->node(pk.fromIndex).isUp()) {
      continue;
    }
    cache::KvCache* source = shardFor(tierKind, pk.fromIndex);
    if (source == nullptr) continue;
    const cache::CacheEntry* entry = source->peek(pk.key);
    if (entry == nullptr) continue;  // evicted, fenced or already moved
    const std::size_t dest = ownerFor(tierKind, pk.key);
    if (dest == pk.fromIndex) continue;  // ownership did not actually move
    cache::KvCache* destShard = shardFor(tierKind, dest);
    if (destShard == nullptr) continue;
    const cache::CacheEntry* held = destShard->peek(pk.key);
    const std::uint64_t size = entry->size;
    const std::uint64_t version = entry->version;
    if (held != nullptr && held->version >= version) {
      // The new owner already holds a copy at least as fresh (a
      // write-through landed mid-window): transferring would resurrect a
      // stale value. Fence the old copy instead.
      source->erase(pk.key);
      markTouched(touched, pk.fromIndex);
      ++counters_.epochFences;
      continue;
    }
    destShard->put(pk.key, cache::CacheEntry::sized(size, version));
    source->erase(pk.key);
    markTouched(touched, pk.fromIndex);
    markTouched(touched, dest);
    // Per-key CPU at both ends of the move; the wire bytes ride in one
    // batched transfer per (source, dest) pair below.
    if (far) {
      initiator->charge(sim::CpuComponent::kFarMemAccess,
                        hooks_.disagg->costs().lookupMicros);
    } else if (tierKind == sim::TierKind::kAppServer) {
      tier->node(pk.fromIndex)
          .charge(sim::CpuComponent::kCacheOp,
                  hooks_.linked->costs().probeMicros);
      tier->node(dest).charge(sim::CpuComponent::kCacheOp,
                              hooks_.linked->costs().insertMicros);
    } else {
      tier->node(pk.fromIndex)
          .charge(sim::CpuComponent::kCacheOp,
                  hooks_.remote->costs().probeMicros);
      tier->node(dest).charge(sim::CpuComponent::kCacheOp,
                              hooks_.remote->costs().insertMicros);
    }
    accumulate(groups, pk.fromIndex, dest,
               rpc::putRequestWireSize(pk.key.size()) + size);
    ++counters_.migratedKeys;
    counters_.migratedBytes += size;
    ++moved;
  }

  // RPC transfer batching: every key bound for the same destination shares
  // one request/response (or, for the far pool, one posted read + one
  // posted write) — the batching is what keeps handoff bandwidth priced
  // like bulk bytes instead of per-key RPCs.
  for (const TransferGroup& g : groups) {
    if (far) {
      const auto& oneSided = hooks_.disagg->costs().oneSided;
      hooks_.channel->oneSidedRead(*initiator, tier->node(g.from), g.bytes,
                                   oneSided);
      hooks_.channel->oneSidedRead(*initiator, tier->node(g.to), g.bytes,
                                   oneSided);
    } else {
      hooks_.channel->call(tier->node(g.from), tier->node(g.to), g.bytes,
                           rpc::putResponseWireSize());
    }
  }
  for (const std::size_t index : touched) syncShardMemory(tierKind, index);
}

void MembershipDirector::finishTask(const Task& task) {
  if (task.event.kind != MembershipKind::kLeave) return;
  // Whatever the window didn't move is dropped with the process — the
  // window is a bound on transfer time, not a completeness promise.
  const std::size_t index = task.event.nodeIndex;
  if (task.event.tier == sim::TierKind::kAppServer) {
    hooks_.linked->dropShard(index);
  } else if (task.event.tier == sim::TierKind::kRemoteCache) {
    hooks_.remote->dropShard(index);
    syncShardMemory(task.event.tier, index);
  } else {
    hooks_.disagg->dropShard(index);
    syncShardMemory(task.event.tier, index);
  }
  if (sim::Tier* tier = tierFor(task.event.tier)) {
    if (index < tier->size()) tier->node(index).setUp(false);
  }
}

MembershipDirector::FallbackResult MembershipDirector::tryFallback(
    std::size_t appIndex, const std::string& key) {
  FallbackResult out;
  for (Task& task : tasks_) {
    const auto it = task.byKey.find(std::string_view(key));
    if (it == task.byKey.end()) continue;
    const PendingKey& pk = task.pending[it->second];
    const sim::TierKind tierKind = task.event.tier;
    sim::Tier* oldTier = tierFor(tierKind);
    // No dual-read against a crashed old owner — its copy died with it.
    if (oldTier == nullptr || pk.fromIndex >= oldTier->size() ||
        !oldTier->node(pk.fromIndex).isUp()) {
      continue;
    }
    cache::KvCache* source = shardFor(tierKind, pk.fromIndex);
    if (source == nullptr || source->peek(key) == nullptr) continue;
    if (ownerFor(tierKind, key) == pk.fromIndex) continue;
    sim::Node& app = hooks_.appTier->node(appIndex);

    if (tierKind == sim::TierKind::kAppServer) {
      const auto got = hooks_.linked->getAt(appIndex, pk.fromIndex, key);
      if (!got.hit) continue;
      hooks_.linked->fillAt(hooks_.linked->ownerOf(key), key, got.size,
                            got.version);
      hooks_.linked->shard(pk.fromIndex).erase(key);
      out = {true, got.latencyMicros, got.size, got.version};
    } else if (tierKind == sim::TierKind::kRemoteCache) {
      const auto got = hooks_.remote->getAt(app, pk.fromIndex, key);
      if (!got.hit) continue;
      const double putLatency = hooks_.remote->putAt(
          app, hooks_.remote->ownerOf(key), key, got.size, got.version);
      hooks_.remote->shardForNode(pk.fromIndex).erase(key);
      out = {true, got.latencyMicros + putLatency, got.size, got.version};
    } else {
      const auto got = hooks_.disagg->farGetAt(app, pk.fromIndex, key);
      if (!got.hit) continue;
      const double putLatency =
          hooks_.disagg->farPut(app, key, got.size, got.version);
      hooks_.disagg->hotFill(appIndex, key, got.size, got.version);
      hooks_.disagg->farShardForNode(pk.fromIndex).erase(key);
      out = {true, got.latencyMicros + putLatency, got.size, got.version};
    }
    syncShardMemory(tierKind, pk.fromIndex);
    ++counters_.handoffFallbackReads;
    return out;
  }
  return out;
}

void MembershipDirector::fenceWrite(std::size_t appIndex,
                                    const std::string& key) {
  for (Task& task : tasks_) {
    const auto it = task.byKey.find(std::string_view(key));
    if (it == task.byKey.end()) continue;
    const PendingKey& pk = task.pending[it->second];
    const sim::TierKind tierKind = task.event.tier;
    cache::KvCache* source = shardFor(tierKind, pk.fromIndex);
    if (source == nullptr || source->peek(key) == nullptr) continue;
    if (ownerFor(tierKind, key) == pk.fromIndex) continue;
    // The write just landed at the new owner; the old owner's copy is now
    // stale and must never be served (dual-read) or migrated (pump).
    source->erase(key);
    syncShardMemory(tierKind, pk.fromIndex);
    ++counters_.epochFences;

    sim::Node& app = hooks_.appTier->node(appIndex);
    sim::Tier* tier = tierFor(tierKind);
    if (tier == nullptr || pk.fromIndex >= tier->size()) continue;
    sim::Node& old = tier->node(pk.fromIndex);
    if (tierKind == sim::TierKind::kFarMemory) {
      // One-sided tombstone, same shape as farInvalidate.
      hooks_.channel->oneSidedRead(app, old, cache::kFarSlotHeaderBytes,
                                   hooks_.disagg->costs().oneSided);
    } else {
      const double probe = tierKind == sim::TierKind::kAppServer
                               ? hooks_.linked->costs().probeMicros
                               : hooks_.remote->costs().probeMicros;
      old.charge(sim::CpuComponent::kCacheOp, probe);
      if (&old != &app) {
        hooks_.channel->oneWay(app, old,
                               rpc::getRequestWireSize(key.size()));
      }
    }
  }
}

std::vector<MembershipEvent> MembershipDirector::drainApplied() {
  std::vector<MembershipEvent> out;
  out.swap(applied_);
  return out;
}

}  // namespace dcache::core
