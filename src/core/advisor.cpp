#include "core/advisor.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace dcache::core {

util::Money CacheAdvisor::costAt(double missRatio,
                                 util::Bytes cacheSize) const {
  const double busyMicrosPerSecond =
      config_.qps * missRatio * config_.missCostMicros;
  const double cores =
      busyMicrosPerSecond / 1e6 / config_.targetUtilization;
  return config_.pricing.computeCost(cores) +
         config_.pricing.memoryCost(cacheSize * config_.replicas);
}

Recommendation CacheAdvisor::advise(workload::Workload& workload) const {
  cache::MattsonProfiler profiler;
  double objectBytes = 0.0;
  std::uint64_t reads = 0;
  for (std::uint64_t i = 0; i < config_.sampleOps; ++i) {
    const workload::Op op = workload.next();
    if (!op.isRead()) continue;
    profiler.access(workload::keyName(op.keyIndex));
    objectBytes += static_cast<double>(op.valueSize);
    ++reads;
  }
  const double meanBytes =
      reads ? objectBytes / static_cast<double>(reads) : 1.0;
  return adviseFromProfile(profiler, meanBytes);
}

Recommendation CacheAdvisor::adviseFromProfile(
    const cache::MattsonProfiler& profiler, double meanObjectBytes) const {
  Recommendation rec;
  rec.distinctKeys = profiler.distinctKeys();
  rec.sampledOps = profiler.accessCount();
  rec.meanObjectBytes = std::max(meanObjectBytes, 1.0);
  rec.costAtZero = costAt(1.0, util::Bytes::of(0));

  if (rec.distinctKeys == 0) {
    rec.bestSize = util::Bytes::of(0);
    rec.missRatioAtBest = 1.0;
    rec.costAtBest = rec.costAtZero;
    return rec;
  }

  // Candidate sizes: geometric grid from one object to the full footprint.
  const double perDecade =
      std::max<std::size_t>(config_.pointsPerDecade, 1);
  const double step = std::pow(10.0, 1.0 / perDecade);
  const double maxItems = static_cast<double>(rec.distinctKeys);

  rec.costAtBest = rec.costAtZero;
  rec.bestSize = util::Bytes::of(0);
  rec.missRatioAtBest = 1.0;
  for (double items = 1.0; items <= maxItems * step; items *= step) {
    const auto clamped =
        static_cast<std::uint64_t>(std::min(items, maxItems));
    const double missRatio = profiler.missRatio(clamped);
    const auto size = util::Bytes::of(static_cast<std::uint64_t>(
        static_cast<double>(clamped) * rec.meanObjectBytes));
    const util::Money cost = costAt(missRatio, size);
    rec.curve.push_back(CurvePoint{size, missRatio, cost});
    if (cost < rec.costAtBest) {
      rec.costAtBest = cost;
      rec.bestSize = size;
      rec.missRatioAtBest = missRatio;
    }
  }
  return rec;
}

std::string Recommendation::summary() const {
  std::ostringstream os;
  os << "profiled " << sampledOps << " reads over " << distinctKeys
     << " distinct keys (mean object "
     << util::Bytes::of(static_cast<std::uint64_t>(meanObjectBytes)).str()
     << ")\n";
  os << "no cache:    " << costAtZero.str() << "/month\n";
  char tail[96];
  std::snprintf(tail, sizeof tail, "(miss ratio %.3f, saving %.2fx)",
                missRatioAtBest, savingFactor());
  os << "recommended: " << bestSize.str() << " of linked cache -> "
     << costAtBest.str() << "/month " << tail << "\n";
  return os.str();
}

}  // namespace dcache::core
