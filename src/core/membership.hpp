// Planned membership churn: nodes joining and leaving on purpose — rolling
// restarts, scale-out/in steps, drains — as opposed to the crash/gray
// faults of sim/fault.hpp. The distinction matters because a *planned*
// transition can be survived warm: the departing (or arriving) owner's keys
// are migrated during a bounded transfer window instead of being dropped on
// the floor, and the cost of that handoff bandwidth is exactly what the
// fig12 bench weighs against the storage-amplification cliff of a cold
// reshard.
//
// Three pieces live here:
//  - MembershipSchedule: a deterministic timeline of join/leave events with
//    the same builder/lazy-sort idiom as sim::FaultSchedule, replayed
//    byte-identically at any --jobs.
//  - HandoffConfig: the warm-handoff knobs (off = cold reshard).
//  - MembershipDirector: the runtime. It applies due events to the
//    architecture's placement ring, snapshots the keys whose ownership
//    moved, pumps bounded migration batches that charge real CPU and wire
//    bytes through sim::Node::charge and the rpc::Channel, answers
//    dual-read fallbacks at the new owner during the window, and fences
//    writes so an in-flight update can never be resurrected from a stale
//    owner's copy by a later migration batch.
//
// The director is deliberately ignorant of core::Deployment — it sees only
// the tiers, the cache front-ends and the channel (the Hooks struct), so
// unit tests can drive it without a full deployment. Deployment-level
// fencing (ownership-epoch bump, lease revocation, hot-cache flush, health
// (de)registration) is driven by the deployment draining appliedEvents().
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "cache/disagg_cache.hpp"
#include "cache/linked_cache.hpp"
#include "cache/remote_cache.hpp"
#include "rpc/channel.hpp"
#include "sim/tier.hpp"

namespace dcache::core {

enum class MembershipKind : std::uint8_t {
  kJoin,   // node arrives (scale-out step, restart coming back)
  kLeave,  // node departs gracefully (drain, scale-in step)
};

[[nodiscard]] std::string_view membershipKindName(MembershipKind kind) noexcept;

struct MembershipEvent {
  std::uint64_t atMicros = 0;
  MembershipKind kind = MembershipKind::kJoin;
  sim::TierKind tier = sim::TierKind::kAppServer;
  std::size_t nodeIndex = 0;
};

/// A deterministic timeline of planned membership transitions. Builders
/// append in any order; events() lazily stable-sorts by time, so ties keep
/// insertion order — the same replay contract as sim::FaultSchedule.
class MembershipSchedule {
 public:
  void add(MembershipEvent event);
  void join(std::uint64_t atMicros, sim::TierKind tier, std::size_t nodeIndex);
  void leave(std::uint64_t atMicros, sim::TierKind tier,
             std::size_t nodeIndex);
  /// Rolling-restart wave: node `firstNode + i` (i in [0, count)) leaves at
  /// `fromMicros + i * stepMicros` and rejoins `downMicros` later.
  void rollingRestart(std::uint64_t fromMicros, sim::TierKind tier,
                      std::size_t firstNode, std::size_t count,
                      std::uint64_t stepMicros, std::uint64_t downMicros);
  /// Scale-out: nodes [firstNode, firstNode + count) all join at once.
  void scaleOut(std::uint64_t atMicros, sim::TierKind tier,
                std::size_t firstNode, std::size_t count);
  /// Scale-in (flash drain): nodes [firstNode, firstNode + count) all
  /// leave at once.
  void scaleIn(std::uint64_t atMicros, sim::TierKind tier,
               std::size_t firstNode, std::size_t count);
  /// Mark a provisioned node absent from the *initial* placement (a
  /// scale-out spare). It is taken out of the ring and powered down before
  /// the first op, uncounted and windowless — it arrives at its join
  /// event. Tier vectors are fixed at construction, so this is how a
  /// bench provisions headroom to scale into.
  void startAbsent(sim::TierKind tier, std::size_t nodeIndex);

  [[nodiscard]] const std::vector<MembershipEvent>& absentAtStart()
      const noexcept {
    return absent_;
  }
  [[nodiscard]] bool empty() const noexcept { return events_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return events_.size(); }
  /// Events in time order (stable for ties).
  [[nodiscard]] const std::vector<MembershipEvent>& events() const;

 private:
  mutable std::vector<MembershipEvent> events_;
  std::vector<MembershipEvent> absent_;  // kLeave events applied at install
  mutable bool sorted_ = true;
};

/// Warm-handoff tuning. Disabled (the default) is the *cold reshard*
/// posture: ownership moves instantly, the departing shard is dropped, and
/// every moved key is re-fetched from storage on its next read — zero
/// handoff bandwidth, full miss cliff.
struct HandoffConfig {
  bool enabled = false;
  /// Length of the transfer window that starts at each event. A leaving
  /// node keeps serving handoff reads until the window closes; whatever
  /// was not migrated by then is dropped (the window is a bound, not a
  /// promise).
  std::uint64_t windowMicros = 200'000;
  /// Keys migrated per pump batch (the rate limit, together with the
  /// interval below).
  std::size_t keysPerBatch = 64;
  /// Sim-time between pump batches.
  std::uint64_t batchIntervalMicros = 2'000;
};

/// The six churn counters, mirrored into ServeCounters by the deployment.
struct MembershipCounters {
  std::uint64_t plannedJoins = 0;
  std::uint64_t plannedLeaves = 0;
  /// Keys moved to their new owner by the background pump (dual-read
  /// rescues are counted separately, under handoffFallbackReads).
  std::uint64_t migratedKeys = 0;
  /// Value bytes those migrations pushed across the wire.
  std::uint64_t migratedBytes = 0;
  /// Misses at the new owner served by reading the old owner during the
  /// transfer window (at most one per read).
  std::uint64_t handoffFallbackReads = 0;
  /// Fencing actions: one per cache-ownership transition (epoch bump),
  /// plus one per stale copy fenced — a migration skipped because the new
  /// owner already held a fresher version, or an old-owner copy erased
  /// because a write landed during the window.
  std::uint64_t epochFences = 0;

  void clear() noexcept { *this = MembershipCounters{}; }
};

class MembershipDirector {
 public:
  /// Everything the director may touch. Null members are simply absent
  /// (the architecture has no such tier); events against them reduce to
  /// node up/down.
  struct Hooks {
    sim::Tier* appTier = nullptr;
    sim::Tier* remoteTier = nullptr;
    sim::Tier* farTier = nullptr;
    cache::LinkedCache* linked = nullptr;
    cache::RemoteCache* remote = nullptr;
    cache::DisaggCache* disagg = nullptr;
    rpc::Channel* channel = nullptr;
  };

  MembershipDirector(MembershipSchedule schedule, HandoffConfig handoff,
                     Hooks hooks);

  /// Apply every event due at or before `nowMicros`, then pump due
  /// migration batches and close expired transfer windows. Deterministic:
  /// driven entirely by the sim clock.
  void advanceTo(std::uint64_t nowMicros);
  /// Would advanceTo(nowMicros) do anything? Lets the deployment skip the
  /// call (and its trace scope) on the vast majority of ops.
  [[nodiscard]] bool hasWorkAt(std::uint64_t nowMicros) const noexcept;
  /// Any transfer window still open (dual-read fallback is live)?
  [[nodiscard]] bool anyWindowActive() const noexcept {
    return !tasks_.empty();
  }

  /// Dual-read fallback: the new owner missed on `key` — try the old owner
  /// before falling through to storage. On a hit the real probe + wire
  /// costs are charged, the entry is installed at the new owner and erased
  /// at the old one (migration by access), and the caller skips the
  /// storage read entirely.
  struct FallbackResult {
    bool hit = false;
    double latencyMicros = 0.0;
    std::uint64_t size = 0;
    std::uint64_t version = 0;
  };
  FallbackResult tryFallback(std::size_t appIndex, const std::string& key);

  /// Write fencing: a write to `key` landed at its *new* owner while a
  /// transfer window is open. Erase the old owner's now-stale copy so no
  /// later migration batch (or fallback read) can resurrect the
  /// overwritten value. Charges the invalidation's one-way wire cost.
  void fenceWrite(std::size_t appIndex, const std::string& key);

  [[nodiscard]] const MembershipCounters& counters() const noexcept {
    return counters_;
  }
  void clearCounters() noexcept { counters_.clear(); }

  /// Events applied since the last drain, in application order. The
  /// deployment consumes these for the fencing it owns: ownership-epoch
  /// bumps, lease revocation (linked), hot-cache flushes (disagg) and
  /// health-monitor (de)registration.
  [[nodiscard]] std::vector<MembershipEvent> drainApplied();

  [[nodiscard]] const MembershipSchedule& schedule() const noexcept {
    return schedule_;
  }
  [[nodiscard]] const HandoffConfig& handoff() const noexcept {
    return handoff_;
  }

 private:
  /// One key whose ownership moved, snapshotted at event time.
  struct PendingKey {
    std::string key;
    std::size_t fromIndex = 0;  // shard that held it when the event fired
    std::uint64_t size = 0;
    std::uint64_t version = 0;
  };
  /// One in-flight transfer window.
  struct Task {
    MembershipEvent event;
    std::uint64_t windowEndMicros = 0;
    std::uint64_t nextBatchMicros = 0;
    std::vector<PendingKey> pending;  // fixed after the snapshot
    /// Key -> index into pending, views into the (immutable) pending
    /// vector. Lookups only — never iterated (hash order must not leak).
    std::unordered_map<std::string_view, std::size_t> byKey;
    std::size_t cursor = 0;  // next pending entry the pump will consider
  };

  void applyEvent(const MembershipEvent& event, std::uint64_t nowMicros);
  void applyJoin(const MembershipEvent& event, std::uint64_t nowMicros);
  void applyLeave(const MembershipEvent& event, std::uint64_t nowMicros);
  void pump(std::uint64_t nowMicros);
  void pumpTask(Task& task);
  void finishTask(const Task& task);
  /// Snapshot the keys a join pulls toward `event.nodeIndex` / a leave
  /// pushes off it, then index them for the dual-read and write fences.
  void snapshotJoin(Task& task);
  void snapshotLeave(Task& task);
  static void buildIndex(Task& task);

  /// True when the event's tier carries a placement ring under this
  /// architecture (linked app tier, remote pods, far pool) — i.e. the
  /// event actually moves key ownership.
  [[nodiscard]] bool ringTier(sim::TierKind tier) const noexcept;
  [[nodiscard]] bool isRingMember(sim::TierKind tier,
                                  std::size_t index) const noexcept;
  [[nodiscard]] std::size_t ringMemberCount(sim::TierKind tier) const noexcept;
  [[nodiscard]] sim::Tier* tierFor(sim::TierKind tier) const noexcept;
  /// Shard for (tier, index) — the raw KvCache behind the front-end.
  [[nodiscard]] cache::KvCache* shardFor(sim::TierKind tier,
                                         std::size_t index) const;
  /// Current owner of `key` on the tier's ring.
  [[nodiscard]] std::size_t ownerFor(sim::TierKind tier,
                                     std::string_view key) const;
  /// Refresh a shard node's memory meter after bulk erases/fills.
  void syncShardMemory(sim::TierKind tier, std::size_t index);

  MembershipSchedule schedule_;
  HandoffConfig handoff_;
  Hooks hooks_;
  MembershipCounters counters_;
  std::size_t cursor_ = 0;  // next schedule event
  std::vector<Task> tasks_;
  std::vector<MembershipEvent> applied_;
  /// Rotating initiator for far-pool migrations: the pool is passive, so a
  /// deterministic round-robin of app servers drives the one-sided
  /// read/write pairs.
  std::size_t farInitiator_ = 0;
};

}  // namespace dcache::core
