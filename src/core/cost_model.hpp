// Resource usage -> monthly bill (§5.1 "Cost model"). Compute is priced at
// the vCPU cores a tier must provision: measured CPU-seconds divided by the
// simulated wall-clock duration, headroom-adjusted by a target utilization
// (production platforms provision for peak; auto-scalers trigger on CPU).
// Memory is priced on *provisioned* bytes — you pay for the GB you reserve,
// not the GB you touch. Persistent storage is priced on replicated bytes.
#pragma once

#include <array>
#include <string>
#include <vector>

#include "core/pricing.hpp"
#include "sim/resource.hpp"
#include "sim/tier.hpp"

namespace dcache::core {

struct TierUsage {
  std::string name;
  sim::TierKind kind = sim::TierKind::kAppServer;
  std::size_t nodes = 0;
  double cores = 0.0;  // provisioned cores (headroom-adjusted)
  std::array<double, sim::kNumCpuComponents> cpuMicrosByComponent{};
  double cpuMicrosTotal = 0.0;
  util::Bytes memoryProvisioned;
  util::Money computeCost;
  util::Money memoryCost;

  [[nodiscard]] util::Money total() const { return computeCost + memoryCost; }
};

struct CostBreakdown {
  std::vector<TierUsage> tiers;
  util::Money computeCost;
  util::Money memoryCost;
  util::Money storageCost;   // persistent (disk) bytes, all architectures
  util::Money totalCost;
  double simulatedSeconds = 0.0;

  [[nodiscard]] const TierUsage* tier(sim::TierKind kind) const noexcept;
  /// Fraction of the total bill that is memory (the §5.3 "6-22% for
  /// Linked, 1-5% for Base" number).
  [[nodiscard]] double memoryShare() const noexcept;
};

class CostModel {
 public:
  CostModel(Pricing pricing, double targetUtilization = 0.7)
      : pricing_(pricing),
        utilization_(targetUtilization > 0.0 ? targetUtilization : 0.7) {}

  /// Account one tier's meters over `simulatedSeconds` of traffic.
  [[nodiscard]] TierUsage tierUsage(const sim::Tier& tier,
                                    double simulatedSeconds) const;

  /// Assemble the full bill. `storedBytes` are pre-replication persistent
  /// bytes; `replicationFactor` multiplies them.
  [[nodiscard]] CostBreakdown breakdown(
      const std::vector<const sim::Tier*>& tiers, double simulatedSeconds,
      util::Bytes storedBytes, std::size_t replicationFactor) const;

  [[nodiscard]] const Pricing& pricing() const noexcept { return pricing_; }
  [[nodiscard]] double targetUtilization() const noexcept {
    return utilization_;
  }

 private:
  Pricing pricing_;
  double utilization_;
};

}  // namespace dcache::core
