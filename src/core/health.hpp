// Deterministic failure detector for gray failures. Circuit breakers
// (rpc/channel.hpp) answer "is this destination failing my calls right
// now?" — a binary, per-window judgment that fail-fasts hard failures.
// They are blind to the defining property of a gray failure: the node
// still answers, just slowly or lossily enough to drag the fleet's tail.
//
// The HealthMonitor closes that gap with a phi-accrual-style suspicion
// score per destination, fed from every policy-path call outcome at the
// channel boundary (rpc::CallObserver). Failures accrue suspicion
// directly; successful calls update a latency EWMA that is compared
// against the tier's median — a node whose smoothed latency is an outlier
// among its peers accrues suspicion too, which is the signal breakers
// never see. Past the threshold the node is *ejected*: routing stops
// sending it live traffic and grants it one probe per probe interval;
// enough consecutive clean probes re-admit it with a clean slate.
//
// Division of labor, by design:
//   breaker  — per-destination fail-fast on outright call failures; acts
//              in microseconds; no cross-node context; recovers via its
//              own half-open probe.
//   monitor  — cross-node *comparative* judgment (outlier vs tier median),
//              latency-sensitive, bounded by a per-tier ejection quota so
//              a tier-wide event (outage, overload) can never eject the
//              quorum — tier-wide sickness is the breakers' and shedder's
//              problem, ejection is for the one bad apple.
//
// Everything is driven by the sim clock and the deterministic call-outcome
// order: no wall clock, no RNG, so a matrix cell replays byte-for-byte at
// any --jobs (the dcache_lint determinism rule holds here like everywhere
// else).
#pragma once

#include <array>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "rpc/channel.hpp"
#include "sim/node.hpp"

namespace dcache::core {

/// Tuning for the failure detector. Defaults are sized for the benches'
/// tiers (3–24 nodes, RPC latencies in the tens of microseconds): a hard
/// failure ejects after ~6 consecutive failed calls, a 10x-slow node after
/// ~minSamples + a few dozen outlier observations.
struct HealthPolicy {
  bool enabled = false;
  /// Smoothing for the per-node ok-call latency EWMA.
  double ewmaAlpha = 0.2;
  /// Suspicion level at which a node is ejected.
  double suspicionToEject = 6.0;
  /// Suspicion accrued per failed call.
  double failureSuspicion = 1.0;
  /// A node whose latency EWMA exceeds `outlierFactor` x the tier median
  /// is an outlier; each ok call observed in that state accrues
  /// `outlierSuspicion`.
  double outlierFactor = 4.0;
  double outlierSuspicion = 1.0;
  /// Suspicion shed per healthy (ok, non-outlier) call.
  double okDecay = 0.25;
  /// Ok-call samples a node needs before outlier judgment applies (a cold
  /// EWMA is noise, not evidence).
  std::size_t minSamples = 16;
  /// While ejected, one probe request is admitted per interval.
  double probeIntervalMicros = 20000.0;
  /// Consecutive clean probes required to re-admit an ejected node.
  std::size_t reAdmitProbes = 3;
  /// Quorum guard: at most this many nodes may be ejected per tier. The
  /// cap is what keeps a tier-wide partition or overload from reading as
  /// "every node is an outlier" and ejecting the whole tier.
  std::size_t maxEjectedPerTier = 1;
};

class HealthMonitor final : public rpc::CallObserver {
 public:
  explicit HealthMonitor(HealthPolicy policy) noexcept : policy_(policy) {}

  /// Register a destination under its (tier, tier-local index) identity.
  /// Outcomes for unregistered nodes are ignored.
  void registerNode(const sim::Node& node, sim::TierKind tier,
                    std::size_t index);

  /// Drop a node's probe/ejection state immediately (planned leave). A
  /// departed node must not be granted probes, hold an ejection slot, or
  /// accrue suspicion from straggler call outcomes — ghost probes against
  /// a node that left on purpose would double-count as detection lag.
  /// Re-registering after a planned join starts from a clean slate.
  void deregisterNode(const sim::Node& node, sim::TierKind tier,
                      std::size_t index);

  // rpc::CallObserver
  void onCallOutcome(const sim::Node& dst, bool ok, double latencyMicros,
                     std::uint64_t nowMicros) override;

  /// Is the node currently ejected?
  [[nodiscard]] bool ejected(sim::TierKind tier,
                             std::size_t index) const noexcept;
  /// Routing gate: true for healthy nodes always; for an ejected node,
  /// true once per probe interval (the call so admitted is the probe —
  /// its outcome feeds re-admission). Mutates probe bookkeeping, so the
  /// caller must route to the node when this returns true.
  [[nodiscard]] bool allowRequest(sim::TierKind tier, std::size_t index,
                                  std::uint64_t nowMicros) noexcept;

  /// One ejection record per transition into the ejected state, in the
  /// order they happened (the deployment turns these into detection-lag
  /// accounting).
  struct Ejection {
    sim::TierKind tier = sim::TierKind::kAppServer;
    std::size_t index = 0;
    std::uint64_t atMicros = 0;
  };
  [[nodiscard]] const std::vector<Ejection>& ejections() const noexcept {
    return ejections_;
  }
  [[nodiscard]] std::uint64_t totalEjections() const noexcept {
    return ejections_.size();
  }
  [[nodiscard]] std::uint64_t readmissions() const noexcept {
    return readmissions_;
  }
  [[nodiscard]] std::uint64_t probesGranted() const noexcept {
    return probesGranted_;
  }
  [[nodiscard]] std::size_t currentlyEjected(
      sim::TierKind tier) const noexcept {
    return ejectedInTier_[static_cast<std::size_t>(tier)];
  }

  // ---- introspection (tests) ----
  [[nodiscard]] double suspicion(sim::TierKind tier,
                                 std::size_t index) const noexcept;
  [[nodiscard]] double latencyEwma(sim::TierKind tier,
                                   std::size_t index) const noexcept;
  /// Median ok-latency EWMA over the tier's qualified nodes (lower median;
  /// 0 while no node has minSamples yet).
  [[nodiscard]] double tierReferenceLatency(sim::TierKind tier) const;
  [[nodiscard]] const HealthPolicy& policy() const noexcept {
    return policy_;
  }

 private:
  struct NodeState {
    double latencyEwma = 0.0;
    double suspicion = 0.0;
    std::uint64_t samples = 0;
    bool ejected = false;
    std::uint64_t lastProbeMicros = 0;
    std::size_t probeOks = 0;
  };

  static constexpr std::size_t kTiers =
      static_cast<std::size_t>(sim::TierKind::kCount);

  [[nodiscard]] const NodeState* state(sim::TierKind tier,
                                       std::size_t index) const noexcept;
  [[nodiscard]] NodeState* state(sim::TierKind tier,
                                 std::size_t index) noexcept;

  HealthPolicy policy_;
  /// Per-tier node state, tier-local-index ordered — the only containers
  /// ever iterated, so visit order is deterministic by construction.
  std::array<std::vector<NodeState>, kTiers> tiers_;
  std::array<std::size_t, kTiers> ejectedInTier_{};
  /// Pointer -> (tier, index) lookup for onCallOutcome; never iterated.
  std::unordered_map<const sim::Node*, std::pair<std::size_t, std::size_t>>
      index_;
  std::vector<Ejection> ejections_;
  std::uint64_t readmissions_ = 0;
  std::uint64_t probesGranted_ = 0;
  /// Scratch for the median computation (reused, so steady-state calls
  /// allocate nothing).
  mutable std::vector<double> medianScratch_;
};

}  // namespace dcache::core
