// Parallel experiment matrix: the figure benches queue their
// (architecture, workload, sweep-point) cells here and the matrix runs
// each cell on a worker thread. Every cell is an independent deterministic
// simulation, so the only requirements for reproducibility are (a) results
// come back in submission order and (b) any randomness a cell consumes is
// seeded from (rootSeed, cell index) alone — both guaranteed here, which
// makes output byte-identical for any --jobs value.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "core/experiment.hpp"
#include "util/histogram.hpp"
#include "util/rng.hpp"

namespace dcache::core {

struct MatrixOptions {
  /// Worker threads; 0 = --jobs / DCACHE_JOBS / hardware concurrency.
  std::size_t jobs = 0;
  /// Root of every per-cell RNG stream (cell i gets cellRng(rootSeed, i)).
  std::uint64_t rootSeed = 2026;
};

/// Parse `--jobs N` (or `--jobs=N`) and `--seed S` (or `--seed=S`) out of a
/// bench's argv; unrecognized arguments are ignored.
[[nodiscard]] MatrixOptions parseMatrixOptions(int argc, char** argv);

/// Seed for cell `index`: a SplitMix64 expansion of the root seed that
/// depends only on (rootSeed, index), never on scheduling order.
[[nodiscard]] std::uint64_t cellSeed(std::uint64_t rootSeed,
                                     std::size_t index) noexcept;

/// Per-cell generator: seeded with cellSeed and streamed by cell index so
/// no two cells ever share an RNG sequence.
[[nodiscard]] util::Pcg32 cellRng(std::uint64_t rootSeed,
                                  std::size_t index) noexcept;

class ExperimentMatrix {
 public:
  /// A cell receives its private, index-derived generator. Cells must not
  /// touch shared mutable state: each builds its own deployment/workload.
  using Cell = std::function<ExperimentResult(util::Pcg32&)>;
  using WorkloadFactory =
      std::function<std::unique_ptr<workload::Workload>(util::Pcg32&)>;

  explicit ExperimentMatrix(MatrixOptions options = {})
      : options_(options) {}

  /// Queue a fully custom cell. Returns the cell's index (= result slot).
  std::size_t add(Cell cell);

  /// Queue a standard cell: build a deployment for `arch`, populate it for
  /// the factory's workload, run, price.
  std::size_t add(Architecture arch, WorkloadFactory factory,
                  DeploymentConfig deployment, ExperimentConfig experiment);

  /// Run every queued cell across `options().jobs` workers and return the
  /// results in submission order.
  [[nodiscard]] std::vector<ExperimentResult> run() const;

  [[nodiscard]] std::size_t cellCount() const noexcept {
    return cells_.size();
  }
  [[nodiscard]] const MatrixOptions& options() const noexcept {
    return options_;
  }

 private:
  MatrixOptions options_;
  std::vector<Cell> cells_;
};

/// Cross-cell latency aggregation: merge every cell's histogram
/// (Histogram::merge) into one matrix-wide distribution.
[[nodiscard]] util::Histogram mergedLatencies(
    std::span<const ExperimentResult> results);

}  // namespace dcache::core
