#include "core/calibration.hpp"

// Constants live in the parameter structs' default member initializers;
// this TU anchors the header in the library.
