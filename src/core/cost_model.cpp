#include "core/cost_model.hpp"

namespace dcache::core {

const TierUsage* CostBreakdown::tier(sim::TierKind kind) const noexcept {
  for (const TierUsage& usage : tiers) {
    if (usage.kind == kind) return &usage;
  }
  return nullptr;
}

double CostBreakdown::memoryShare() const noexcept {
  return totalCost.micros() != 0 ? memoryCost / totalCost : 0.0;
}

TierUsage CostModel::tierUsage(const sim::Tier& tier,
                               double simulatedSeconds) const {
  TierUsage usage;
  usage.name = tier.name();
  usage.kind = tier.kind();
  usage.nodes = tier.size();

  const sim::CpuMeter cpu = tier.aggregateCpu();
  for (std::size_t c = 0; c < sim::kNumCpuComponents; ++c) {
    usage.cpuMicrosByComponent[c] =
        cpu.micros(static_cast<sim::CpuComponent>(c));
  }
  usage.cpuMicrosTotal = cpu.totalMicros();

  const double busyCores =
      simulatedSeconds > 0.0 ? cpu.totalSeconds() / simulatedSeconds : 0.0;
  usage.cores = busyCores / utilization_;
  usage.memoryProvisioned = tier.totalProvisionedMemory();

  usage.computeCost = pricing_.computeCost(usage.cores);
  // A far-memory pool's GBs bill at the disaggregated rate, not the
  // server-DRAM rate — the distinct cost shape the fifth architecture
  // trades its per-read transfer charges against.
  usage.memoryCost = tier.kind() == sim::TierKind::kFarMemory
                         ? pricing_.farMemoryCost(usage.memoryProvisioned)
                         : pricing_.memoryCost(usage.memoryProvisioned);
  return usage;
}

CostBreakdown CostModel::breakdown(const std::vector<const sim::Tier*>& tiers,
                                   double simulatedSeconds,
                                   util::Bytes storedBytes,
                                   std::size_t replicationFactor) const {
  CostBreakdown breakdown;
  breakdown.simulatedSeconds = simulatedSeconds;
  for (const sim::Tier* tier : tiers) {
    if (!tier) continue;
    // Client tiers model the load generators; their cost belongs to the
    // callers of the service, not to the deployment under study.
    if (tier->kind() == sim::TierKind::kClient) continue;
    breakdown.tiers.push_back(tierUsage(*tier, simulatedSeconds));
    breakdown.computeCost += breakdown.tiers.back().computeCost;
    breakdown.memoryCost += breakdown.tiers.back().memoryCost;
  }
  breakdown.storageCost = pricing_.storageCost(
      storedBytes * static_cast<double>(replicationFactor));
  breakdown.totalCost =
      breakdown.computeCost + breakdown.memoryCost + breakdown.storageCost;
  return breakdown;
}

}  // namespace dcache::core
