#include "core/health.hpp"

#include <algorithm>

namespace dcache::core {

void HealthMonitor::registerNode(const sim::Node& node, sim::TierKind tier,
                                 std::size_t index) {
  const auto t = static_cast<std::size_t>(tier);
  if (t >= kTiers) return;
  if (tiers_[t].size() <= index) tiers_[t].resize(index + 1);
  index_[&node] = {t, index};
}

void HealthMonitor::deregisterNode(const sim::Node& node, sim::TierKind tier,
                                   std::size_t index) {
  const auto t = static_cast<std::size_t>(tier);
  if (t >= kTiers || index >= tiers_[t].size()) return;
  NodeState& s = tiers_[t][index];
  if (s.ejected) --ejectedInTier_[t];  // release the tier's ejection slot
  s = NodeState{};
  index_.erase(&node);
}

const HealthMonitor::NodeState* HealthMonitor::state(
    sim::TierKind tier, std::size_t index) const noexcept {
  const auto t = static_cast<std::size_t>(tier);
  if (t >= kTiers || index >= tiers_[t].size()) return nullptr;
  return &tiers_[t][index];
}

HealthMonitor::NodeState* HealthMonitor::state(sim::TierKind tier,
                                               std::size_t index) noexcept {
  return const_cast<NodeState*>(
      static_cast<const HealthMonitor*>(this)->state(tier, index));
}

double HealthMonitor::tierReferenceLatency(sim::TierKind tier) const {
  const auto t = static_cast<std::size_t>(tier);
  if (t >= kTiers) return 0.0;
  medianScratch_.clear();
  for (const NodeState& s : tiers_[t]) {
    if (s.samples >= policy_.minSamples) {
      medianScratch_.push_back(s.latencyEwma);
    }
  }
  if (medianScratch_.empty()) return 0.0;
  // Lower median: in a 2-node tier [healthy, slow] the reference must be
  // the healthy node, or the slow one could never read as an outlier.
  const std::size_t mid = (medianScratch_.size() - 1) / 2;
  std::nth_element(medianScratch_.begin(), medianScratch_.begin() + mid,
                   medianScratch_.end());
  return medianScratch_[mid];
}

void HealthMonitor::onCallOutcome(const sim::Node& dst, bool ok,
                                  double latencyMicros,
                                  std::uint64_t nowMicros) {
  const auto it = index_.find(&dst);
  if (it == index_.end()) return;
  const auto [t, i] = it->second;
  NodeState& s = tiers_[t][i];
  const auto tier = static_cast<sim::TierKind>(t);

  if (s.ejected) {
    // This call was a probe (routing only lets probes through). Clean =
    // succeeded at unremarkable latency; a probe that crawls home is not
    // evidence of recovery.
    const double ref = tierReferenceLatency(tier);
    const bool slow =
        ref > 0.0 && latencyMicros > policy_.outlierFactor * ref;
    if (ok && !slow) {
      if (++s.probeOks >= policy_.reAdmitProbes) {
        // Re-admit with a fresh EWMA (the pre-ejection latency history is
        // stale; judging the recovered node on it would re-eject it
        // instantly) but NOT a fresh suspicion score: a node that just got
        // ejected re-enters half-way to the threshold. The hysteresis is
        // what stops flap cycles — a flaky node whose probes happen to
        // land needs only a couple of fresh failures to be re-ejected,
        // instead of a full window's worth of damage.
        s.ejected = false;
        s.suspicion = 0.5 * policy_.suspicionToEject;
        s.latencyEwma = 0.0;
        s.samples = 0;
        s.probeOks = 0;
        --ejectedInTier_[t];
        ++readmissions_;
      }
    } else {
      s.probeOks = 0;
    }
    return;
  }

  if (!ok) {
    s.suspicion += policy_.failureSuspicion;
  } else {
    s.latencyEwma = s.samples == 0
                        ? latencyMicros
                        : policy_.ewmaAlpha * latencyMicros +
                              (1.0 - policy_.ewmaAlpha) * s.latencyEwma;
    ++s.samples;
    const double ref = tierReferenceLatency(tier);
    if (s.samples >= policy_.minSamples && ref > 0.0 &&
        s.latencyEwma > policy_.outlierFactor * ref) {
      // The gray-failure signal: the call *succeeded*, but this node's
      // smoothed latency stands apart from its peers.
      s.suspicion += policy_.outlierSuspicion;
    } else {
      s.suspicion -= policy_.okDecay;
      if (s.suspicion < 0.0) s.suspicion = 0.0;
    }
  }

  if (s.suspicion >= policy_.suspicionToEject &&
      ejectedInTier_[t] < policy_.maxEjectedPerTier) {
    s.ejected = true;
    s.probeOks = 0;
    s.lastProbeMicros = nowMicros;
    ++ejectedInTier_[t];
    ejections_.push_back({tier, i, nowMicros});
  }
}

bool HealthMonitor::ejected(sim::TierKind tier,
                            std::size_t index) const noexcept {
  const NodeState* s = state(tier, index);
  return s != nullptr && s->ejected;
}

bool HealthMonitor::allowRequest(sim::TierKind tier, std::size_t index,
                                 std::uint64_t nowMicros) noexcept {
  NodeState* s = state(tier, index);
  if (s == nullptr || !s->ejected) return true;
  const auto interval =
      static_cast<std::uint64_t>(policy_.probeIntervalMicros);
  if (nowMicros >= s->lastProbeMicros + interval) {
    s->lastProbeMicros = nowMicros;
    ++probesGranted_;
    return true;  // this request is the probe
  }
  return false;
}

double HealthMonitor::suspicion(sim::TierKind tier,
                                std::size_t index) const noexcept {
  const NodeState* s = state(tier, index);
  return s != nullptr ? s->suspicion : 0.0;
}

double HealthMonitor::latencyEwma(sim::TierKind tier,
                                  std::size_t index) const noexcept {
  const NodeState* s = state(tier, index);
  return s != nullptr ? s->latencyEwma : 0.0;
}

}  // namespace dcache::core
