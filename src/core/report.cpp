#include "core/report.hpp"

#include <cstdio>

#include "util/table_printer.hpp"

namespace dcache::core {
namespace {

[[nodiscard]] std::string percent(double fraction) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "%.1f%%", fraction * 100.0);
  return buf;
}

}  // namespace

std::string costComparisonTable(std::span<const ExperimentResult> results,
                                const std::string& title) {
  util::TablePrinter table({"architecture", "compute", "memory", "storage",
                            "total", "hit%", "mean_lat_us", "saving"});
  for (const ExperimentResult& r : results) {
    const double saving =
        results.empty() ? 1.0 : savingsVs(results.front(), r);
    char savingBuf[16];
    std::snprintf(savingBuf, sizeof savingBuf, "%.2fx", saving);
    table.addRow({r.architecture, r.cost.computeCost.str(),
                  r.cost.memoryCost.str(), r.cost.storageCost.str(),
                  r.cost.totalCost.str(), percent(r.counters.hitRatio()),
                  util::TablePrinter::toCell(r.meanLatencyMicros),
                  savingBuf});
  }
  return table.str(title);
}

std::string cpuBreakdownTable(const ExperimentResult& result,
                              const std::string& title) {
  util::TablePrinter table({"tier", "cores", "component", "share"});
  for (const TierUsage& tier : result.cost.tiers) {
    if (tier.cpuMicrosTotal <= 0.0) continue;
    bool first = true;
    for (std::size_t c = 0; c < sim::kNumCpuComponents; ++c) {
      const double micros = tier.cpuMicrosByComponent[c];
      if (micros <= 0.0) continue;
      table.addRow({first ? tier.name : "",
                    first ? util::TablePrinter::toCell(tier.cores) : "",
                    std::string(sim::cpuComponentName(
                        static_cast<sim::CpuComponent>(c))),
                    percent(micros / tier.cpuMicrosTotal)});
      first = false;
    }
  }
  return table.str(title);
}

double memoryCostShare(const ExperimentResult& result) {
  return result.cost.memoryShare();
}

double savingsVs(const ExperimentResult& baseline,
                 const ExperimentResult& result) {
  return result.cost.totalCost.micros() != 0
             ? baseline.cost.totalCost / result.cost.totalCost
             : 0.0;
}

double queryProcessingShare(const ExperimentResult& result) {
  double queryMicros = 0.0;
  double totalMicros = 0.0;
  for (const TierUsage& tier : result.cost.tiers) {
    if (tier.kind != sim::TierKind::kSqlFrontend &&
        tier.kind != sim::TierKind::kKvStorage) {
      continue;
    }
    totalMicros += tier.cpuMicrosTotal;
    queryMicros +=
        tier.cpuMicrosByComponent[static_cast<std::size_t>(
            sim::CpuComponent::kConnectionMgmt)] +
        tier.cpuMicrosByComponent[static_cast<std::size_t>(
            sim::CpuComponent::kQueryParse)] +
        tier.cpuMicrosByComponent[static_cast<std::size_t>(
            sim::CpuComponent::kQueryPlan)];
  }
  return totalMicros > 0.0 ? queryMicros / totalMicros : 0.0;
}

}  // namespace dcache::core
