#include "core/report.hpp"

#include <algorithm>
#include <array>
#include <cstdio>

#include "util/table_printer.hpp"

namespace dcache::core {
namespace {

[[nodiscard]] std::string percent(double fraction) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "%.1f%%", fraction * 100.0);
  return buf;
}

}  // namespace

std::string costComparisonTable(std::span<const ExperimentResult> results,
                                const std::string& title) {
  util::TablePrinter table({"architecture", "compute", "memory", "storage",
                            "total", "hit%", "mean_lat_us", "saving"});
  for (const ExperimentResult& r : results) {
    const double saving =
        results.empty() ? 1.0 : savingsVs(results.front(), r);
    char savingBuf[16];
    std::snprintf(savingBuf, sizeof savingBuf, "%.2fx", saving);
    table.addRow({r.architecture, r.cost.computeCost.str(),
                  r.cost.memoryCost.str(), r.cost.storageCost.str(),
                  r.cost.totalCost.str(), percent(r.counters.hitRatio()),
                  util::TablePrinter::toCell(r.meanLatencyMicros),
                  savingBuf});
  }
  return table.str(title);
}

std::string cpuBreakdownTable(const ExperimentResult& result,
                              const std::string& title) {
  util::TablePrinter table({"tier", "cores", "component", "share"});
  for (const TierUsage& tier : result.cost.tiers) {
    if (tier.cpuMicrosTotal <= 0.0) continue;
    bool first = true;
    for (std::size_t c = 0; c < sim::kNumCpuComponents; ++c) {
      const double micros = tier.cpuMicrosByComponent[c];
      if (micros <= 0.0) continue;
      table.addRow({first ? tier.name : "",
                    first ? util::TablePrinter::toCell(tier.cores) : "",
                    std::string(sim::cpuComponentName(
                        static_cast<sim::CpuComponent>(c))),
                    percent(micros / tier.cpuMicrosTotal)});
      first = false;
    }
  }
  return table.str(title);
}

double memoryCostShare(const ExperimentResult& result) {
  return result.cost.memoryShare();
}

double savingsVs(const ExperimentResult& baseline,
                 const ExperimentResult& result) {
  return result.cost.totalCost.micros() != 0
             ? baseline.cost.totalCost / result.cost.totalCost
             : 0.0;
}

namespace {

[[nodiscard]] std::string microsCell(double micros) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.3fus", micros);
  return buf;
}

/// One span line: indent ladder, name, tier, outcome, subtree/self charges.
void renderSpan(std::string& out, const obs::Trace& trace, std::size_t i,
                std::size_t depth) {
  const obs::SpanNode& span = trace.spans[i];
  out.append(2 * depth, ' ');
  out += span.name;
  out += " [" + std::string(sim::tierKindName(span.tier)) + "/" +
         std::string(sim::spanOutcomeName(span.outcome)) + "]";
  out += " total=" + microsCell(trace.subtreeCpuMicros(i));
  out += " self=" + microsCell(span.cpuMicros);
  if (const std::uint64_t bytes = trace.subtreeBytes(i); bytes > 0) {
    out += " bytes=" + std::to_string(bytes);
  }
  out.push_back('\n');
  for (std::size_t j = i + 1; j < trace.spans.size(); ++j) {
    if (trace.spans[j].parent == i) renderSpan(out, trace, j, depth + 1);
  }
}

}  // namespace

std::string traceTreeReport(const ExperimentResult& result,
                            const std::string& title,
                            std::size_t maxTraces) {
  const obs::TraceSummary& trace = result.trace;
  if (!trace.enabled()) return {};

  std::string out = "== " + title + " ==\n";
  char line[160];
  std::snprintf(line, sizeof line,
                "sampling: 1 in %llu | requests=%llu sampled=%llu spans=%llu\n",
                static_cast<unsigned long long>(trace.sampleEvery),
                static_cast<unsigned long long>(trace.requests),
                static_cast<unsigned long long>(trace.sampledRequests),
                static_cast<unsigned long long>(trace.spanCount));
  out += line;

  out += "traced cpu by tier:";
  for (std::size_t t = 0; t < obs::kNumTierKinds; ++t) {
    const double micros =
        trace.tierCpuMicros(static_cast<sim::TierKind>(t));
    if (micros <= 0.0) continue;
    const double share =
        trace.cpuMicrosTotal > 0.0 ? micros / trace.cpuMicrosTotal : 0.0;
    std::snprintf(line, sizeof line, " %s=%s (%s)",
                  std::string(sim::tierKindName(static_cast<sim::TierKind>(t)))
                      .c_str(),
                  microsCell(micros).c_str(), percent(share).c_str());
    out += line;
  }
  out.push_back('\n');

  out += "span outcomes:";
  for (std::size_t o = 0; o < obs::kNumSpanOutcomes; ++o) {
    const std::uint64_t n = trace.outcomeCounts[o];
    if (n == 0) continue;
    out += " " +
           std::string(sim::spanOutcomeName(static_cast<sim::SpanOutcome>(o))) +
           "=" + std::to_string(n);
  }
  out.push_back('\n');

  const std::size_t shown = std::min(maxTraces, trace.kept.size());
  for (std::size_t k = 0; k < shown; ++k) {
    const obs::Trace& t = trace.kept[k];
    std::snprintf(line, sizeof line,
                  "trace #%llu (request %llu): cpu=%s\n",
                  static_cast<unsigned long long>(k),
                  static_cast<unsigned long long>(t.requestIndex),
                  microsCell(t.totalCpuMicros()).c_str());
    out += line;
    if (!t.spans.empty()) renderSpan(out, t, 0, 1);
    // Component ladder: where this one request's CPU went, enum order so
    // the rendering is stable.
    std::array<double, sim::kNumCpuComponents> byComponent{};
    double total = 0.0;
    for (const obs::SpanNode& span : t.spans) {
      for (std::size_t c = 0; c < sim::kNumCpuComponents; ++c) {
        byComponent[c] += span.cpuByComponent[c];
        total += span.cpuByComponent[c];
      }
    }
    out += "  components:";
    for (std::size_t c = 0; c < sim::kNumCpuComponents; ++c) {
      if (byComponent[c] <= 0.0) continue;
      std::snprintf(
          line, sizeof line, " %s=%s",
          std::string(
              sim::cpuComponentName(static_cast<sim::CpuComponent>(c)))
              .c_str(),
          percent(total > 0.0 ? byComponent[c] / total : 0.0).c_str());
      out += line;
    }
    out.push_back('\n');
  }
  return out;
}

void exportExperimentMetrics(obs::MetricsRegistry& registry,
                             std::string_view prefix,
                             const ExperimentResult& result) {
  const std::string base(prefix);
  const ServeCounters& c = result.counters;
  registry.setCounter(base + "reads", c.reads);
  registry.setCounter(base + "writes", c.writes);
  registry.setCounter(base + "cache_hits", c.cacheHits);
  registry.setCounter(base + "cache_misses", c.cacheMisses);
  registry.setCounter(base + "version_checks", c.versionChecks);
  registry.setCounter(base + "version_mismatches", c.versionMismatches);
  registry.setCounter(base + "statements_issued", c.statementsIssued);
  registry.setCounter(base + "ttl_expirations", c.ttlExpirations);
  registry.setCounter(base + "storage_reads", c.storageReads);
  registry.setCounter(base + "retries", c.retries);
  registry.setCounter(base + "timeouts", c.timeouts);
  registry.setCounter(base + "failed_calls", c.failedCalls);
  registry.setCounter(base + "degraded_reads", c.degradedReads);
  registry.setCounter(base + "coalesced_misses", c.coalescedMisses);
  registry.setGauge(base + "wasted_cpu_micros", c.wastedCpuMicros);
  registry.setGauge(base + "hit_ratio", c.hitRatio());
  registry.setCounter(base + "shedded_requests", c.sheddedRequests);
  registry.setCounter(base + "queue_timeouts", c.queueTimeouts);
  registry.setCounter(base + "queue_rejections", c.queueRejections);
  registry.setCounter(base + "breaker_opens", c.breakerOpens);
  registry.setCounter(base + "breaker_short_circuits",
                      c.breakerShortCircuits);
  registry.setCounter(base + "hedges_sent", c.hedgesSent);
  registry.setCounter(base + "hedge_wins", c.hedgeWins);
  registry.setCounter(base + "budget_exhausted", c.budgetExhausted);
  registry.setCounter(base + "failed_ops", c.failedOps);
  registry.setCounter(base + "ejected_nodes", c.ejectedNodes);
  registry.setCounter(base + "replica_fallback_reads",
                      c.replicaFallbackReads);
  registry.setCounter(base + "stale_replica_reads", c.staleReplicaReads);
  registry.setCounter(base + "replica_write_fanout", c.replicaWriteFanout);
  registry.setGauge(base + "detection_lag_micros", c.detectionLagMicros);
  registry.setCounter(base + "far_memory_reads", c.farMemoryReads);
  registry.setCounter(base + "far_memory_bytes", c.farMemoryBytes);
  registry.setCounter(base + "hot_cache_hits", c.hotCacheHits);
  registry.setCounter(base + "client_invalidations", c.clientInvalidations);
  registry.setCounter(base + "planned_joins", c.plannedJoins);
  registry.setCounter(base + "planned_leaves", c.plannedLeaves);
  registry.setCounter(base + "migrated_keys", c.migratedKeys);
  registry.setCounter(base + "migrated_bytes", c.migratedBytes);
  registry.setCounter(base + "handoff_fallback_reads",
                      c.handoffFallbackReads);
  registry.setCounter(base + "epoch_fences", c.epochFences);

  registry.setGauge(base + "cost.compute_usd", result.cost.computeCost.dollars());
  registry.setGauge(base + "cost.memory_usd", result.cost.memoryCost.dollars());
  registry.setGauge(base + "cost.storage_usd", result.cost.storageCost.dollars());
  registry.setGauge(base + "cost.total_usd", result.cost.totalCost.dollars());
  registry.setHistogram(base + "latency_us", result.latencies);

  for (const TierUsage& tier : result.cost.tiers) {
    const std::string tbase = base + "tier." + tier.name + ".";
    registry.setCounter(tbase + "nodes", tier.nodes);
    registry.setGauge(tbase + "cores", tier.cores);
    registry.setGauge(tbase + "cpu_micros_total", tier.cpuMicrosTotal);
    registry.setCounter(tbase + "memory_provisioned_bytes",
                        tier.memoryProvisioned.count());
  }

  if (result.trace.enabled()) {
    const obs::TraceSummary& t = result.trace;
    registry.setCounter(base + "trace.sample_every", t.sampleEvery);
    registry.setCounter(base + "trace.requests", t.requests);
    registry.setCounter(base + "trace.sampled_requests", t.sampledRequests);
    registry.setCounter(base + "trace.spans", t.spanCount);
    registry.setGauge(base + "trace.cpu_micros", t.cpuMicrosTotal);
    registry.setCounter(base + "trace.bytes_moved", t.bytesMoved);
    for (std::size_t o = 0; o < obs::kNumSpanOutcomes; ++o) {
      if (t.outcomeCounts[o] == 0) continue;
      registry.setCounter(
          base + "trace.outcome." +
              std::string(sim::spanOutcomeName(
                  static_cast<sim::SpanOutcome>(o))),
          t.outcomeCounts[o]);
    }
  }
}

double queryProcessingShare(const ExperimentResult& result) {
  double queryMicros = 0.0;
  double totalMicros = 0.0;
  for (const TierUsage& tier : result.cost.tiers) {
    if (tier.kind != sim::TierKind::kSqlFrontend &&
        tier.kind != sim::TierKind::kKvStorage) {
      continue;
    }
    totalMicros += tier.cpuMicrosTotal;
    queryMicros +=
        tier.cpuMicrosByComponent[static_cast<std::size_t>(
            sim::CpuComponent::kConnectionMgmt)] +
        tier.cpuMicrosByComponent[static_cast<std::size_t>(
            sim::CpuComponent::kQueryParse)] +
        tier.cpuMicrosByComponent[static_cast<std::size_t>(
            sim::CpuComponent::kQueryPlan)];
  }
  return totalMicros > 0.0 ? queryMicros / totalMicros : 0.0;
}

}  // namespace dcache::core
