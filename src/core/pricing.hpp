// Cloud resource prices (§3): on GCP, one vCPU costs ≈ $17/month, DRAM
// ≈ $2/GB-month, and persistent storage ≈ $2 per 100 GB-month. The memory
// price multiplier exists for the Fig. 2 sensitivity sweep ("even at 40×
// today's DRAM price, caches still save money").
#pragma once

#include "util/bytes.hpp"
#include "util/money.hpp"

namespace dcache::core {

struct Pricing {
  util::Money vcpuPerMonth = util::Money::fromDollars(17.0);
  util::Money dramPerGbMonth = util::Money::fromDollars(2.0);
  util::Money storagePerGbMonth = util::Money::fromDollars(0.02);
  /// Disaggregated far memory: pooled DRAM behind one-sided NICs is billed
  /// below server DRAM because the GB is stranded-capacity harvested from
  /// hosts with idle memory and amortized over no per-GB CPU (Ditto's
  /// elasticity argument). ≈40% of the server-DRAM rate.
  util::Money farMemoryPerGbMonth = util::Money::fromDollars(0.80);

  [[nodiscard]] util::Money computeCost(double cores) const {
    return vcpuPerMonth * cores;
  }
  [[nodiscard]] util::Money memoryCost(util::Bytes bytes) const {
    return dramPerGbMonth * bytes.asGb();
  }
  [[nodiscard]] util::Money farMemoryCost(util::Bytes bytes) const {
    return farMemoryPerGbMonth * bytes.asGb();
  }
  [[nodiscard]] util::Money storageCost(util::Bytes bytes) const {
    return storagePerGbMonth * bytes.asGb();
  }

  /// Same prices with DRAM scaled by `multiplier` (Fig. 2b sweep).
  [[nodiscard]] Pricing withMemoryMultiplier(double multiplier) const {
    Pricing scaled = *this;
    scaled.dramPerGbMonth = dramPerGbMonth * multiplier;
    return scaled;
  }

  [[nodiscard]] static Pricing gcp() { return Pricing{}; }
};

}  // namespace dcache::core
