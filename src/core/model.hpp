// The Section-4 theoretical model.
//
//   T = QPS · ( MR(s_A)·c_A + MR(s_A + s_D)·c_D ) + c_M · (s_A·N_r + s_D)
//
// s_A: linked-cache size per replica set, s_D: storage-layer cache size,
// MR(x): LRU miss ratio at capacity x (Che approximation over the Zipf
// popularity), c_A: CPU cost of a linked-cache miss (the request must travel
// to storage), c_D: extra cost when the storage-layer cache also misses
// (disk path), c_M: memory price, N_r: cache replicas. The model backs the
// Fig. 2 sweeps and the optimal-allocation takeaway |∂T/∂s_A| > |∂T/∂s_D|.
#pragma once

#include <cstdint>
#include <vector>

#include "core/pricing.hpp"
#include "util/bytes.hpp"

namespace dcache::core {

struct ModelParams {
  double qps = 40000.0;
  std::uint64_t numKeys = 1000000;  // 1M × 23KB ≈ 22GB of cacheable data
  double alpha = 1.2;
  double avgObjectBytes = 23.0 * 1024;
  /// CPU per app-cache miss: the full storage round trip measured from the
  /// simulation (EXPERIMENTS.md documents the measured value).
  double missCostAppMicros = 220.0;
  /// Extra CPU when the storage-layer cache misses too (disk path).
  double missCostStorageMicros = 60.0;
  /// Disaggregated variant: fixed CPU per one-sided far read (post +
  /// completion poll + client-side placement; matches DisaggCosts/
  /// OneSidedParams) and the per-byte pull paid only for bytes that
  /// actually cross (i.e. far hits).
  double farReadFixedMicros = 1.7;
  double farReadPerByteMicros = 0.0002;
  double replicas = 1.0;  // N_r
  double utilization = 0.7;
  Pricing pricing = Pricing::gcp();
};

class TheoreticalModel {
 public:
  explicit TheoreticalModel(ModelParams params);

  /// LRU miss ratio of a cache of `bytes` capacity under the workload.
  [[nodiscard]] double missRatio(util::Bytes bytes) const;

  /// Total monthly cost at the given cache allocation.
  [[nodiscard]] util::Money totalCost(util::Bytes appCache,
                                      util::Bytes storageCache) const;

  /// Disaggregated variant: a small DRAM hot cache per replica set, a far
  /// memory pool priced at the far-memory $/GB rate, and the storage-layer
  /// cache behind both. Every hot miss pays the fixed one-sided read cost;
  /// only far *hits* pay the per-byte pull (a miss moves just the slot
  /// header).
  [[nodiscard]] util::Money totalCostDisagg(util::Bytes hotCache,
                                            util::Bytes farPool,
                                            util::Bytes storageCache) const;

  /// Numeric partial derivatives in $/GB (central difference).
  [[nodiscard]] double dTdAppCache(util::Bytes appCache,
                                   util::Bytes storageCache) const;
  [[nodiscard]] double dTdStorageCache(util::Bytes appCache,
                                       util::Bytes storageCache) const;

  /// Optimal s_A for a fixed s_D: grows the linked cache until the marginal
  /// benefit equals the marginal memory cost (∂T/∂s_A = 0), via ternary
  /// search over [0, maxBytes] — T is unimodal in s_A.
  [[nodiscard]] util::Bytes optimalAppCache(util::Bytes storageCache,
                                            util::Bytes maxBytes) const;

  /// Cost saving factor of (appCache, storageCache) vs a baseline with no
  /// linked cache and `baselineStorageCache` of in-storage cache — the
  /// Fig. 2 y-axis.
  [[nodiscard]] double savingVsBase(util::Bytes appCache,
                                    util::Bytes storageCache,
                                    util::Bytes baselineStorageCache) const;

  [[nodiscard]] const ModelParams& params() const noexcept { return params_; }

 private:
  /// Popularity bucket: `count` keys sharing (approximately) request rate
  /// `rate`. The Che fixed point only needs rate sums, so geometric rank
  /// binning turns every evaluation from O(numKeys) into O(bins) with
  /// negligible error — the Fig. 2 sweeps evaluate the model thousands of
  /// times.
  struct PopularityBin {
    double rate = 0.0;
    double count = 0.0;
  };

  [[nodiscard]] double hitRatio(double items) const;

  ModelParams params_;
  std::vector<PopularityBin> bins_;
  double totalRate_ = 0.0;
};

}  // namespace dcache::core
