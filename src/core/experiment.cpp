#include "core/experiment.hpp"

#include <algorithm>
#include <cstdlib>

#include "workload/uc_trace.hpp"

namespace dcache::core {

std::uint64_t goldenOpsCap() noexcept {
  static const std::uint64_t cap = [] {
    const char* env = std::getenv("DCACHE_GOLDEN_OPS");
    if (!env || !*env) return std::uint64_t{0};
    char* end = nullptr;
    const unsigned long long value = std::strtoull(env, &end, 10);
    if (!end || *end != '\0') return std::uint64_t{0};
    return static_cast<std::uint64_t>(value);
  }();
  return cap;
}

ExperimentRunner::ExperimentRunner(ExperimentConfig config)
    : config_(config) {
  if (const std::uint64_t cap = goldenOpsCap(); cap > 0) {
    config_.operations = std::min(config_.operations, cap);
    config_.warmupOperations = std::min(config_.warmupOperations, cap);
  }
}

ExperimentResult ExperimentRunner::run(Deployment& deployment,
                                       workload::Workload& workload) {
  // Drive the deployment's wall clock from the offered load so that
  // time-based behaviour (TTL freshness) sees realistic inter-arrival gaps.
  const double microsPerOp = config_.qps > 0.0 ? 1e6 / config_.qps : 0.0;
  std::uint64_t opIndex = 0;
  auto serveOne = [&] {
    deployment.setSimTimeMicros(
        static_cast<std::uint64_t>(microsPerOp * static_cast<double>(opIndex)));
    ++opIndex;
    const workload::Op op = workload.next();
    if (config_.richObjects) {
      deployment.serveObject(op);
    } else {
      deployment.serve(op);
    }
  };

  // Warm caches and block caches; warmup work is not priced.
  for (std::uint64_t i = 0; i < config_.warmupOperations; ++i) serveOne();
  deployment.clearMeters();
  for (std::uint64_t i = 0; i < config_.operations; ++i) serveOne();

  ExperimentResult result;
  result.architecture =
      std::string(architectureName(deployment.config().architecture));
  result.workload = workload.name();
  result.simulatedSeconds =
      config_.qps > 0.0 ? static_cast<double>(config_.operations) / config_.qps
                        : 1.0;

  const CostModel model(config_.pricing, config_.targetUtilization);
  result.cost = model.breakdown(
      deployment.tiers(), result.simulatedSeconds,
      deployment.db().totalStoredBytes(),
      deployment.config().replicationFactor);
  result.counters = deployment.counters();
  if (const obs::Tracer* tracer = deployment.tracer()) {
    result.trace = tracer->summary();
  }
  result.latencies = deployment.latencies();
  result.meanLatencyMicros = deployment.latencies().mean();
  result.p99LatencyMicros = deployment.latencies().p99();
  return result;
}

ExperimentResult runArchitecture(Architecture arch,
                                 workload::Workload& workload,
                                 DeploymentConfig deploymentConfig,
                                 ExperimentConfig experimentConfig) {
  deploymentConfig.architecture = arch;
  Deployment deployment(deploymentConfig);
  if (experimentConfig.richObjects) {
    const auto* trace = dynamic_cast<workload::UcTraceWorkload*>(&workload);
    if (trace) {
      deployment.populateCatalog(*trace);
    }
  } else {
    deployment.populateKv(workload);
  }
  ExperimentRunner runner(experimentConfig);
  return runner.run(deployment, workload);
}

}  // namespace dcache::core
