#include "core/architecture.hpp"

namespace dcache::core {

std::string_view architectureName(Architecture arch) noexcept {
  switch (arch) {
    case Architecture::kBase: return "Base";
    case Architecture::kRemote: return "Remote";
    case Architecture::kLinked: return "Linked";
    case Architecture::kLinkedVersion: return "Linked+Version";
    case Architecture::kDisaggregated: return "Disaggregated";
  }
  return "unknown";
}

std::optional<Architecture> parseArchitecture(std::string_view name) noexcept {
  if (name == "Base" || name == "base") return Architecture::kBase;
  if (name == "Remote" || name == "remote") return Architecture::kRemote;
  if (name == "Linked" || name == "linked") return Architecture::kLinked;
  if (name == "Linked+Version" || name == "linked+version" ||
      name == "linked_version" || name == "LinkedVersion") {
    return Architecture::kLinkedVersion;
  }
  if (name == "Disaggregated" || name == "disaggregated" ||
      name == "disagg") {
    return Architecture::kDisaggregated;
  }
  return std::nullopt;
}

}  // namespace dcache::core
