// Experiment runner: populate, warm, measure, price. One call produces the
// CostBreakdown + counters a figure bench needs for one (architecture,
// workload) cell.
#pragma once

#include <memory>
#include <string>

#include "core/cost_model.hpp"
#include "core/deployment.hpp"
#include "util/histogram.hpp"
#include "workload/workload.hpp"

namespace dcache::core {

struct ExperimentConfig {
  std::uint64_t operations = 200000;   // measured ops
  std::uint64_t warmupOperations = 100000;
  double qps = 40000.0;                // offered load (§5.2: UC serves 40K)
  double targetUtilization = 0.7;      // peak-provisioning headroom
  Pricing pricing = Pricing::gcp();
  bool richObjects = false;            // serveObject() instead of serve()
};

/// Golden-regression fast mode: when the DCACHE_GOLDEN_OPS environment
/// variable is a positive integer, every ExperimentRunner caps operations
/// and warmupOperations at that value. Goldens are recorded and checked
/// under the same cap, so the comparison stays byte-exact while ctest runs
/// in seconds instead of minutes. Returns 0 when unset/invalid.
[[nodiscard]] std::uint64_t goldenOpsCap() noexcept;

struct ExperimentResult {
  std::string architecture;
  std::string workload;
  CostBreakdown cost;
  ServeCounters counters;
  /// Full measured-window latency distribution; cross-cell aggregation
  /// merges these (see core::mergedLatencies).
  util::Histogram latencies;
  double meanLatencyMicros = 0.0;
  double p99LatencyMicros = 0.0;
  double simulatedSeconds = 0.0;
  /// Trace aggregates + kept span trees (empty unless the deployment was
  /// configured with trace.sampleEvery > 0).
  obs::TraceSummary trace;

  [[nodiscard]] util::Money totalCost() const { return cost.totalCost; }
};

class ExperimentRunner {
 public:
  /// Applies the DCACHE_GOLDEN_OPS cap (see goldenOpsCap) to `config`.
  explicit ExperimentRunner(ExperimentConfig config = {});

  /// Run `workload` through `deployment`. The deployment must already be
  /// populated (populateKv / populateCatalog). Meters are cleared after
  /// warmup so only steady-state work is priced.
  ExperimentResult run(Deployment& deployment, workload::Workload& workload);

  [[nodiscard]] const ExperimentConfig& config() const noexcept {
    return config_;
  }

 private:
  ExperimentConfig config_;
};

/// Convenience: build a deployment for `arch`, populate it for `workload`,
/// run, and return the result. `deploymentConfig.architecture` is
/// overridden by `arch`.
ExperimentResult runArchitecture(Architecture arch,
                                 workload::Workload& workload,
                                 DeploymentConfig deploymentConfig,
                                 ExperimentConfig experimentConfig);

}  // namespace dcache::core
