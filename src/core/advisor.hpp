// Cache-sizing advisor: the practical tool the paper's analysis implies.
// Feed it a workload (or a recorded trace); it profiles the exact LRU
// miss-ratio curve (Mattson), attaches the deployment's measured per-miss
// CPU costs and cloud prices, and reports the cost-optimal linked-cache
// size — the point where the marginal CPU saving of one more byte of cache
// equals its DRAM price (§4's |∂T/∂s_A| = 0 condition, computed from the
// real trace instead of a Zipf closed form).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cache/mrc.hpp"
#include "core/pricing.hpp"
#include "util/bytes.hpp"
#include "workload/workload.hpp"

namespace dcache::core {

struct AdvisorConfig {
  /// Accesses profiled from the workload.
  std::uint64_t sampleOps = 200000;
  /// Offered load the recommendation is for.
  double qps = 40000.0;
  /// CPU per linked-cache miss (the full storage round trip). The default
  /// is the simulator's measured Base read path; pass your own measurement
  /// when advising a real system.
  double missCostMicros = 220.0;
  double targetUtilization = 0.7;
  Pricing pricing = Pricing::gcp();
  /// Cache replica sets paying for the same bytes (the model's N_r).
  double replicas = 1.0;
  /// Candidate curve resolution: points per decade of cache size.
  std::size_t pointsPerDecade = 8;
};

struct CurvePoint {
  util::Bytes cacheSize;
  double missRatio = 0.0;
  util::Money monthlyCost;  // compute-from-misses + cache DRAM
};

struct Recommendation {
  util::Bytes bestSize;
  double missRatioAtBest = 0.0;
  util::Money costAtBest;
  util::Money costAtZero;  // no cache: every read pays the miss cost
  std::vector<CurvePoint> curve;
  std::uint64_t distinctKeys = 0;
  std::uint64_t sampledOps = 0;
  double meanObjectBytes = 0.0;

  [[nodiscard]] double savingFactor() const noexcept {
    return costAtBest.micros() != 0 ? costAtZero / costAtBest : 0.0;
  }
  /// Human-readable report.
  [[nodiscard]] std::string summary() const;
};

class CacheAdvisor {
 public:
  explicit CacheAdvisor(AdvisorConfig config = {}) : config_(config) {}

  /// Profile `workload` (reads only — writes don't populate a lookaside
  /// cache's reuse distances) and recommend a linked-cache size.
  [[nodiscard]] Recommendation advise(workload::Workload& workload) const;

  /// Advise from an already-built profiler + mean object size (e.g. from a
  /// recorded production trace).
  [[nodiscard]] Recommendation adviseFromProfile(
      const cache::MattsonProfiler& profiler, double meanObjectBytes) const;

  [[nodiscard]] const AdvisorConfig& config() const noexcept {
    return config_;
  }

 private:
  [[nodiscard]] util::Money costAt(double missRatio,
                                   util::Bytes cacheSize) const;

  AdvisorConfig config_;
};

}  // namespace dcache::core
