#include "core/model.hpp"

#include <algorithm>
#include <cmath>

#include "util/stats.hpp"

namespace dcache::core {

TheoreticalModel::TheoreticalModel(ModelParams params) : params_(params) {
  // Bin ranks geometrically (~160 bins for 1M keys): ranks r..1.09r share
  // nearly equal Zipf rates, so each bin keeps the exact rate mass.
  const double h = util::generalizedHarmonic(params_.numKeys, params_.alpha);
  std::uint64_t lo = 1;
  while (lo <= params_.numKeys) {
    std::uint64_t hi =
        std::max(lo + 1, static_cast<std::uint64_t>(
                             static_cast<double>(lo) * 1.09));
    hi = std::min(hi, params_.numKeys + 1);
    double mass = 0.0;
    for (std::uint64_t r = lo; r < hi; ++r) {
      mass += std::pow(static_cast<double>(r), -params_.alpha) / h;
    }
    const double count = static_cast<double>(hi - lo);
    bins_.push_back(PopularityBin{mass / count, count});
    totalRate_ += mass;
    lo = hi;
  }
}

double TheoreticalModel::hitRatio(double items) const {
  if (items <= 0.0) return 0.0;
  if (items >= static_cast<double>(params_.numKeys)) return 1.0;
  auto occupancy = [&](double t) {
    double sum = 0.0;
    for (const PopularityBin& bin : bins_) {
      sum += bin.count * -std::expm1(-bin.rate * t);
    }
    return sum;
  };
  double lo = 0.0;
  double hi = 1.0;
  while (occupancy(hi) < items && hi < 1e18) hi *= 2.0;
  for (int iter = 0; iter < 64; ++iter) {
    const double mid = 0.5 * (lo + hi);
    (occupancy(mid) < items ? lo : hi) = mid;
  }
  const double t = 0.5 * (lo + hi);
  double hit = 0.0;
  for (const PopularityBin& bin : bins_) {
    hit += bin.count * bin.rate * -std::expm1(-bin.rate * t);
  }
  return totalRate_ > 0.0 ? hit / totalRate_ : 0.0;
}

double TheoreticalModel::missRatio(util::Bytes bytes) const {
  const double items =
      static_cast<double>(bytes.count()) / params_.avgObjectBytes;
  return 1.0 - hitRatio(items);
}

util::Money TheoreticalModel::totalCost(util::Bytes appCache,
                                        util::Bytes storageCache) const {
  const double mrApp = missRatio(appCache);
  const double mrBoth = missRatio(appCache + storageCache);
  const double busyMicrosPerSecond =
      params_.qps * (mrApp * params_.missCostAppMicros +
                     mrBoth * params_.missCostStorageMicros);
  const double cores = busyMicrosPerSecond / 1e6 / params_.utilization;

  const util::Bytes memory =
      appCache * params_.replicas + storageCache;
  return params_.pricing.computeCost(cores) +
         params_.pricing.memoryCost(memory);
}

util::Money TheoreticalModel::totalCostDisagg(
    util::Bytes hotCache, util::Bytes farPool,
    util::Bytes storageCache) const {
  const double mrHot = missRatio(hotCache);
  const double mrFar = missRatio(hotCache + farPool);
  const double mrAll = missRatio(hotCache + farPool + storageCache);
  // Fixed one-sided cost on every hot miss; the per-byte pull only for the
  // fraction the far pool actually answers; the full storage round trip on
  // the misses that fall through the pool.
  const double busyMicrosPerSecond =
      params_.qps *
      (mrHot * params_.farReadFixedMicros +
       (mrHot - mrFar) * params_.farReadPerByteMicros *
           params_.avgObjectBytes +
       mrFar * params_.missCostAppMicros +
       mrAll * params_.missCostStorageMicros);
  const double cores = busyMicrosPerSecond / 1e6 / params_.utilization;

  return params_.pricing.computeCost(cores) +
         params_.pricing.memoryCost(hotCache * params_.replicas +
                                    storageCache) +
         params_.pricing.farMemoryCost(farPool);
}

double TheoreticalModel::dTdAppCache(util::Bytes appCache,
                                     util::Bytes storageCache) const {
  const util::Bytes h = util::Bytes::mb(64);
  const util::Money up = totalCost(appCache + h, storageCache);
  const util::Money down =
      totalCost(appCache >= h ? appCache - h : util::Bytes::of(0),
                storageCache);
  const double span =
      appCache >= h ? 2.0 * h.asGb() : appCache.asGb() + h.asGb();
  return span > 0.0 ? (up - down).dollars() / span : 0.0;
}

double TheoreticalModel::dTdStorageCache(util::Bytes appCache,
                                         util::Bytes storageCache) const {
  const util::Bytes h = util::Bytes::mb(64);
  const util::Money up = totalCost(appCache, storageCache + h);
  const util::Money down = totalCost(
      appCache, storageCache >= h ? storageCache - h : util::Bytes::of(0));
  const double span =
      storageCache >= h ? 2.0 * h.asGb() : storageCache.asGb() + h.asGb();
  return span > 0.0 ? (up - down).dollars() / span : 0.0;
}

util::Bytes TheoreticalModel::optimalAppCache(util::Bytes storageCache,
                                              util::Bytes maxBytes) const {
  double lo = 0.0;
  double hi = static_cast<double>(maxBytes.count());
  for (int iter = 0; iter < 120 && hi - lo > 1024.0; ++iter) {
    const double m1 = lo + (hi - lo) / 3.0;
    const double m2 = hi - (hi - lo) / 3.0;
    const auto c1 = totalCost(util::Bytes::of(static_cast<std::uint64_t>(m1)),
                              storageCache);
    const auto c2 = totalCost(util::Bytes::of(static_cast<std::uint64_t>(m2)),
                              storageCache);
    if (c1 < c2) {
      hi = m2;
    } else {
      lo = m1;
    }
  }
  return util::Bytes::of(static_cast<std::uint64_t>((lo + hi) / 2.0));
}

double TheoreticalModel::savingVsBase(util::Bytes appCache,
                                      util::Bytes storageCache,
                                      util::Bytes baselineStorageCache) const {
  const util::Money base =
      totalCost(util::Bytes::of(0), baselineStorageCache);
  const util::Money withCache = totalCost(appCache, storageCache);
  return withCache.micros() != 0 ? base / withCache : 0.0;
}

}  // namespace dcache::core
