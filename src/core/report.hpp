// Report formatting shared by the figure benches and examples: cost
// comparison tables across architectures, per-tier CPU component breakdowns
// (Fig. 6) and savings factors.
#pragma once

#include <span>
#include <string>

#include "core/experiment.hpp"
#include "obs/metrics.hpp"

namespace dcache::core {

/// One row per experiment: compute / memory / storage / total cost, hit
/// ratio, latency and the saving factor vs the first row (the baseline).
[[nodiscard]] std::string costComparisonTable(
    std::span<const ExperimentResult> results, const std::string& title);

/// Per-tier CPU share by component for one experiment (Fig. 6 panels).
[[nodiscard]] std::string cpuBreakdownTable(const ExperimentResult& result,
                                            const std::string& title);

/// Fraction of total cost spent on memory (§5.3: 6-22% Linked, 1-5% Base).
[[nodiscard]] double memoryCostShare(const ExperimentResult& result);

/// Savings factor baseline/result (>1 means `result` is cheaper).
[[nodiscard]] double savingsVs(const ExperimentResult& baseline,
                               const ExperimentResult& result);

/// Share of a tier's CPU attributable to "query processing" (connection
/// management + parse + plan) — the §5.3 40-65% claim for storage.
[[nodiscard]] double queryProcessingShare(const ExperimentResult& result);

/// Per-request cost-breakdown report: sampling aggregates (traced CPU per
/// tier, span outcome counts) followed by up to `maxTraces` sampled span
/// trees rendered as flamegraph-style component ladders — each span line
/// carries its subtree/self CPU and bytes, and each trace closes with its
/// CPU split by component. Empty string when the result carries no trace
/// (trace.sampleEvery == 0). Output is deterministic: it depends only on
/// the trace summary, never on threads or timing.
[[nodiscard]] std::string traceTreeReport(const ExperimentResult& result,
                                          const std::string& title,
                                          std::size_t maxTraces = 2);

/// Adapter: publish one experiment cell's results — serve counters, cost,
/// latency summary, per-tier CPU/memory usage, and trace aggregates when
/// present — into the unified registry under `prefix` (e.g. "fig4.Linked.").
void exportExperimentMetrics(obs::MetricsRegistry& registry,
                             std::string_view prefix,
                             const ExperimentResult& result);

}  // namespace dcache::core
