// Report formatting shared by the figure benches and examples: cost
// comparison tables across architectures, per-tier CPU component breakdowns
// (Fig. 6) and savings factors.
#pragma once

#include <span>
#include <string>

#include "core/experiment.hpp"

namespace dcache::core {

/// One row per experiment: compute / memory / storage / total cost, hit
/// ratio, latency and the saving factor vs the first row (the baseline).
[[nodiscard]] std::string costComparisonTable(
    std::span<const ExperimentResult> results, const std::string& title);

/// Per-tier CPU share by component for one experiment (Fig. 6 panels).
[[nodiscard]] std::string cpuBreakdownTable(const ExperimentResult& result,
                                            const std::string& title);

/// Fraction of total cost spent on memory (§5.3: 6-22% Linked, 1-5% Base).
[[nodiscard]] double memoryCostShare(const ExperimentResult& result);

/// Savings factor baseline/result (>1 means `result` is cheaper).
[[nodiscard]] double savingsVs(const ExperimentResult& baseline,
                               const ExperimentResult& result);

/// Share of a tier's CPU attributable to "query processing" (connection
/// management + parse + plan) — the §5.3 40-65% claim for storage.
[[nodiscard]] double queryProcessingShare(const ExperimentResult& result);

}  // namespace dcache::core
