// A full simulated service deployment: client tier, app-server tier,
// optional remote-cache or far-memory tier, SQL front-end tier and KV
// storage tier, wired per one of the five architectures. serve() pushes one workload operation
// through the deployment, charging every hop and every byte; afterwards the
// tiers' meters hold exactly the CPU/memory picture the cost model prices.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "cache/disagg_cache.hpp"
#include "cache/linked_cache.hpp"
#include "cache/remote_cache.hpp"
#include "consistency/invalidation.hpp"
#include "consistency/lease.hpp"
#include "consistency/version_check.hpp"
#include "core/architecture.hpp"
#include "core/calibration.hpp"
#include "core/health.hpp"
#include "core/membership.hpp"
#include "core/overload.hpp"
#include "obs/trace.hpp"
#include "richobject/assembler.hpp"
#include "richobject/catalog_store.hpp"
#include "rpc/channel.hpp"
#include "sim/fault.hpp"
#include "sim/network.hpp"
#include "sim/tier.hpp"
#include "storage/database.hpp"
#include "util/histogram.hpp"
#include "workload/uc_trace.hpp"
#include "workload/workload.hpp"

namespace dcache::core {

struct DeploymentConfig {
  Architecture architecture = Architecture::kLinked;

  std::size_t appServers = 3;
  std::size_t remoteCacheNodes = 3;  // only instantiated for kRemote
  std::size_t farMemoryNodes = 3;    // only instantiated for kDisaggregated
  std::size_t sqlFrontends = 3;
  std::size_t kvStorageNodes = 3;

  // §5.1: each app server gets 6 GB of cache; TiKV pods get block cache.
  util::Bytes appCachePerNode = util::Bytes::gb(6);
  util::Bytes remoteCachePerNode = util::Bytes::gb(6);
  util::Bytes blockCachePerNode = util::Bytes::gb(1);
  util::Bytes appBaseMemoryPerNode = util::Bytes::gb(2);
  util::Bytes sqlBaseMemoryPerNode = util::Bytes::gb(1);
  /// kDisaggregated: capacity of each far-memory pool node (priced at the
  /// far-memory $/GB rate, not DRAM), and the small in-process hot cache
  /// each app server keeps in front of the pool.
  util::Bytes farMemoryPerNode = util::Bytes::gb(16);
  util::Bytes hotCachePerNode = util::Bytes::mb(512);

  cache::EvictionPolicy evictionPolicy = cache::EvictionPolicy::kLru;
  /// Slicer-style affinity routing: client requests for a key land directly
  /// on the app server whose linked-cache shard owns it. When false, the
  /// load balancer sprays round-robin and non-owners forward probes inside
  /// the app tier (§2.4), paying an extra marshalled hop on ~(N-1)/N of
  /// requests — the cost of running a linked cache without an auto-sharder.
  bool affinityRouting = true;
  /// Writes refresh the cache in place (write-through); false = invalidate.
  bool writeThroughCache = true;
  std::size_t replicationFactor = 3;

  /// TTL freshness bound for linked-cache hits (0 = off). A hit older than
  /// the TTL is revalidated from storage — the classic bounded-staleness
  /// compromise the paper's related work surveys: far cheaper than a
  /// per-read version check, but only *eventually* consistent within the
  /// bound. Requires the clock: ExperimentRunner drives it from QPS, or
  /// call setSimTimeMicros() directly.
  std::uint64_t ttlFreshnessMicros = 0;

  /// Retry/timeout/backoff policy for every RPC while a fault schedule is
  /// installed (installFaultSchedule arms the channel with it). Unused —
  /// and cost-free — otherwise.
  rpc::CallPolicy rpcPolicy{};
  /// Seed for fault-path randomness (message drops, backoff jitter). Part
  /// of the deployment config so matrix cells stay deterministic per cell.
  std::uint64_t faultSeed = 2026;

  /// Request tracing (off by default — sampleEvery == 0 instantiates no
  /// tracer and leaves serve() on its pre-tracing path).
  obs::TraceConfig trace{};

  /// Overload model: per-tier capacities (finite queues, queueing delay)
  /// and the defenses — load shedding, circuit breakers, hedged requests.
  /// Off by default: every node keeps infinite capacity and serve() stays
  /// on its pre-overload path.
  OverloadConfig overload{};

  /// Gray-failure defense: deterministic health monitoring with outlier
  /// ejection + probing re-admission (see core/health.hpp). Off by
  /// default; enabling it arms the channel's policy path the way overload
  /// does, so latencies and drop draws match the fault-injection paths.
  HealthPolicy health{};
  /// Cache-tier replica placement for the KV serve path: each key lives on
  /// this many distinct cache shards (Remote pods / Linked app shards).
  /// Reads fall back to the next usable replica when the primary is down
  /// or ejected; fills/writes fan out to every usable replica. 1 = off —
  /// the legacy single-owner routing stays byte-exact.
  std::size_t cacheReplicationFactor = 1;

  Calibration calibration{};
};

struct ServeCounters {
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t cacheHits = 0;
  std::uint64_t cacheMisses = 0;
  std::uint64_t versionChecks = 0;
  std::uint64_t versionMismatches = 0;
  std::uint64_t statementsIssued = 0;
  std::uint64_t ttlExpirations = 0;
  /// Read-path storage round trips (cache misses + Base-path reads) — the
  /// numerator of the failure bench's storage-QPS-amplification column.
  std::uint64_t storageReads = 0;

  // Fault-path accounting (all zero unless a FaultSchedule is installed).
  std::uint64_t retries = 0;      // extra RPC attempts beyond the first
  std::uint64_t timeouts = 0;     // RPC legs that waited out their timeout
  std::uint64_t failedCalls = 0;  // RPCs that exhausted their retry budget
  std::uint64_t degradedReads = 0;    // cache unreachable -> storage path
  std::uint64_t coalescedMisses = 0;  // misses that joined an in-flight read
  double wastedCpuMicros = 0.0;  // CPU charged to legs that never paid off

  // Overload-path accounting (all zero unless OverloadConfig is enabled).
  std::uint64_t sheddedRequests = 0;  // turned away by admission control
  std::uint64_t queueTimeouts = 0;    // attempts outwaited by a backlog
  std::uint64_t queueRejections = 0;  // bounced off a full bounded queue
  std::uint64_t breakerOpens = 0;     // circuit-breaker trips (into open)
  std::uint64_t breakerShortCircuits = 0;  // calls failed fast while open
  std::uint64_t hedgesSent = 0;       // backup attempts fired
  std::uint64_t hedgeWins = 0;        // hedges whose answer landed first
  std::uint64_t budgetExhausted = 0;  // calls stopped by the deadline budget
  /// Operations whose client leg ultimately failed — the client never got
  /// an answer (distinct from sheddedRequests, where it got a fast error).
  std::uint64_t failedOps = 0;

  // Gray-failure accounting (all zero unless health monitoring and/or
  // cache replication is enabled).
  std::uint64_t ejectedNodes = 0;  // transitions into the ejected state
  /// Reads served by a non-primary replica because the primary was down,
  /// ejected or failing.
  std::uint64_t replicaFallbackReads = 0;
  /// Replica hits whose version trails storage — the consistency anomaly a
  /// fallback read risks (served anyway; this counts, it doesn't fix).
  std::uint64_t staleReplicaReads = 0;
  /// Extra replica copies written beyond the first (fan-out cost of
  /// write-all replication).
  std::uint64_t replicaWriteFanout = 0;
  /// Sum over ejections of (ejection time - gray-fault onset): how long
  /// the detector let each injected gray failure drag the tail.
  double detectionLagMicros = 0.0;

  // Disaggregated-path accounting (all zero unless the architecture is
  // kDisaggregated).
  /// One-sided reads posted against the far-memory pool (at most one per
  /// serve — the hot cache absorbs the rest).
  std::uint64_t farMemoryReads = 0;
  /// Bytes those one-sided reads actually pulled across the fabric
  /// (slot header + value on a hit; header-sized on a miss; 0 on a
  /// failed access).
  std::uint64_t farMemoryBytes = 0;
  /// Reads answered by the app server's in-process hot cache without
  /// touching far memory (a subset of cacheHits).
  std::uint64_t hotCacheHits = 0;
  /// DiFache-style decentralized invalidations delivered: writer-fanned
  /// hot-cache drops received by peer app servers (no coordinator hop).
  std::uint64_t clientInvalidations = 0;

  // Membership-churn accounting (all zero unless a MembershipSchedule is
  // installed; mirrored from core::MembershipCounters).
  std::uint64_t plannedJoins = 0;   // join events applied
  std::uint64_t plannedLeaves = 0;  // graceful-leave events applied
  /// Keys moved to their new owner by the background handoff pump.
  std::uint64_t migratedKeys = 0;
  /// Value bytes those migrations pushed across the wire.
  std::uint64_t migratedBytes = 0;
  /// New-owner misses served by reading the old owner during a transfer
  /// window (the dual-read rescue; each one is a storage read avoided).
  std::uint64_t handoffFallbackReads = 0;
  /// Epoch-fencing actions: ownership transitions plus stale copies fenced
  /// (migration skipped for a fresher new-owner version, or an old-owner
  /// copy erased because a write landed mid-window).
  std::uint64_t epochFences = 0;

  [[nodiscard]] double hitRatio() const noexcept {
    const std::uint64_t n = cacheHits + cacheMisses;
    return n ? static_cast<double>(cacheHits) / static_cast<double>(n) : 0.0;
  }
  void clear() noexcept { *this = ServeCounters{}; }
};

class Deployment {
 public:
  explicit Deployment(DeploymentConfig config);

  // ---- population (cost-free experiment setup) ----
  /// Load every key of a KV-style workload into storage.
  void populateKv(const workload::Workload& workload);
  /// Create and load the catalog dataset for rich-object serving.
  void populateCatalog(const workload::UcTraceWorkload& trace,
                       richobject::CatalogStoreConfig storeConfig = {});

  // ---- serving ----
  struct OpResult {
    bool cacheHit = false;
    double latencyMicros = 0.0;
  };
  /// KV-style operation (synthetic / Meta / UC-KV).
  OpResult serve(const workload::Op& op);
  /// Rich-object operation (UC-Object): kObjectRead assembles via SQL.
  OpResult serveObject(const workload::Op& op);

  /// Advance the simulated wall clock (drives TTL freshness and fault
  /// injection: any scheduled fault events up to `nowMicros` fire here).
  void setSimTimeMicros(std::uint64_t nowMicros) noexcept {
    simNowMicros_ = nowMicros;
    channel_->setNowMicros(nowMicros);  // queue drains + breaker cool-downs
    if (faultsInstalled_) applyPendingFaults();
    if (membershipInstalled_ && membership_->hasWorkAt(nowMicros)) {
      advanceMembership();
    }
  }
  [[nodiscard]] std::uint64_t simTimeMicros() const noexcept {
    return simNowMicros_;
  }

  // ---- fault injection ----
  /// Install a fault schedule and arm the RPC channel with the config's
  /// retry policy + seeded drop/jitter RNG. Events fire as the sim clock
  /// passes them. Without this call every fault hook is dormant and the
  /// deployment's behaviour is bit-for-bit what it was before faults
  /// existed.
  void installFaultSchedule(sim::FaultSchedule schedule);
  [[nodiscard]] bool faultsInstalled() const noexcept {
    return faultsInstalled_;
  }

  // ---- planned membership churn ----
  /// Install a planned join/leave schedule (and the warm-handoff posture).
  /// Ring tiers switch to explicit membership, `startAbsent` spares are
  /// taken out of the initial placement, and events fire as the sim clock
  /// passes them — with handoff enabled, each ownership transition opens a
  /// bounded transfer window that migrates moved keys to their new owner.
  /// Without this call every membership hook is dormant and the deployment
  /// is bit-for-bit what it was before churn existed.
  void installMembershipSchedule(MembershipSchedule schedule,
                                 HandoffConfig handoff = {});
  [[nodiscard]] bool membershipInstalled() const noexcept {
    return membershipInstalled_;
  }
  /// Churn director (null unless installMembershipSchedule was called).
  [[nodiscard]] MembershipDirector* membership() noexcept {
    return membership_.get();
  }
  /// True when config.overload armed the queueing model / defenses.
  [[nodiscard]] bool overloadInstalled() const noexcept {
    return overloadInstalled_;
  }
  /// Admission controller (null unless config.overload.shed.enabled).
  [[nodiscard]] Shedder* shedder() noexcept { return shedder_.get(); }
  /// Failure detector (null unless config.health.enabled).
  [[nodiscard]] HealthMonitor* healthMonitor() noexcept {
    return monitor_.get();
  }
  /// True when config.cacheReplicationFactor armed replica routing (>1 and
  /// the architecture has a cache tier to replicate).
  [[nodiscard]] bool replicationInstalled() const noexcept {
    return replicationOn_;
  }
  [[nodiscard]] rpc::Channel& channel() noexcept { return *channel_; }
  /// Ring-ownership epoch: bumped every time cache ownership moves (an app
  /// node crash or restart resharding the linked ring). Stale in-flight
  /// writes carrying an older epoch are the Fig. 8 anomaly; the lease
  /// manager's per-node epochs (leases()) provide the fencing.
  [[nodiscard]] std::uint64_t ownershipEpoch() const noexcept {
    return ownershipEpoch_;
  }
  /// Lease manager (linked architectures with faults installed; else null).
  [[nodiscard]] consistency::LeaseManager* leases() noexcept {
    return leases_.get();
  }
  /// Size of the TTL fill-time bookkeeping map (boundedness regression
  /// tests: it must track cache occupancy, not keyspace size).
  [[nodiscard]] std::size_t ttlBookkeepingSize() const noexcept {
    return fillTimes_.size();
  }

  // ---- metering ----
  void clearMeters();
  [[nodiscard]] std::vector<const sim::Tier*> tiers() const;
  [[nodiscard]] const ServeCounters& counters() const noexcept {
    return counters_;
  }
  [[nodiscard]] const util::Histogram& latencies() const noexcept {
    return latency_;
  }
  /// Trace recorder (null unless config.trace.sampleEvery > 0).
  [[nodiscard]] obs::Tracer* tracer() noexcept { return tracer_.get(); }
  [[nodiscard]] const obs::Tracer* tracer() const noexcept {
    return tracer_.get();
  }

  // ---- component access ----
  [[nodiscard]] const DeploymentConfig& config() const noexcept {
    return config_;
  }
  [[nodiscard]] storage::Database& db() noexcept { return *db_; }
  [[nodiscard]] sim::Tier& appTier() noexcept { return *app_; }
  [[nodiscard]] cache::LinkedCache* linkedCache() noexcept {
    return linked_.get();
  }
  [[nodiscard]] cache::RemoteCache* remoteCache() noexcept {
    return remote_.get();
  }
  [[nodiscard]] cache::DisaggCache* disaggCache() noexcept {
    return disagg_.get();
  }
  /// Decentralized invalidation fan-out (kDisaggregated only; else null).
  [[nodiscard]] consistency::InvalidationBus* invalidationBus() noexcept {
    return invalidationBus_.get();
  }
  [[nodiscard]] richobject::CatalogStore* catalogStore() noexcept {
    return catalogStore_.get();
  }
  [[nodiscard]] util::Bytes totalCacheMemoryProvisioned() const;

 private:
  OpResult serveRead(const std::string& key, const workload::Op& op);
  OpResult serveWrite(const std::string& key, const workload::Op& op);
  OpResult serveObjectRead(const workload::Op& op);
  OpResult serveObjectWrite(const workload::Op& op);

  /// App server handling this key under the active routing policy
  /// (affinity to the linked-cache owner; round-robin otherwise).
  [[nodiscard]] std::size_t appIndexFor(const std::string& key);

  /// Client <-> app leg: every architecture pays it, with the value bytes.
  /// `appIndex` names the primary so the hedged path can pick a live
  /// backup replica. `countFailure` is false on the shed path — the op is
  /// already accounted as shed, not failed.
  double clientLeg(sim::Node& app, std::size_t appIndex,
                   std::uint64_t requestBytes, std::uint64_t responseBytes,
                   bool countFailure = true);
  /// Admission control for the read path: returns true (and accounts the
  /// shed) when the app node's queueing delay says to turn the request
  /// away. Writes are never offered — they carry invalidation state the
  /// caches need.
  bool shouldShedRead(sim::Node& app);

  /// Read through storage and fill the architecture's cache. With faults
  /// installed, concurrent misses for one key are single-flight coalesced:
  /// followers join the in-flight storage read instead of issuing their
  /// own (a cold restart must not become a thundering herd).
  double readFromStorageAndFill(sim::Node& app, std::size_t appIndex,
                                const std::string& key);

  // ---- gray-failure machinery (replication + health monitoring) ----
  /// Routing gate for one replica: node up, and (when the monitor is on)
  /// not ejected — or ejected but due a probe, in which case the caller
  /// must route this request to it (allowRequest mutates probe state).
  [[nodiscard]] bool replicaUsable(sim::TierKind tier, std::size_t index);
  /// First usable replica of the key's linked-cache replica set (primary
  /// first); `fallback` reports whether a non-primary was picked. Called
  /// at most once per op — replicaUsable grants probe slots.
  [[nodiscard]] std::size_t chooseLinkedReplica(const std::string& key,
                                                bool& fallback);
  /// Count a replica hit whose version trails storage (fallback-read
  /// staleness anomaly — counted, not fixed).
  void noteReplicaStaleness(const std::string& key, std::uint64_t version);

  // ---- membership machinery ----
  /// True when topology can change mid-run (faults or planned churn):
  /// routing must re-check node liveness, misses must single-flight, and
  /// cache front-ends must gate on their breaker idiom.
  [[nodiscard]] bool dynamicTopology() const noexcept {
    return faultsInstalled_ || membershipInstalled_;
  }
  /// Apply due membership events and pump handoff batches, then run the
  /// deployment-owned fencing for each applied event (epoch bump, lease
  /// revocation, hot-cache flush, health (de)registration).
  void advanceMembership();
  /// Mirror the director's counters into counters_.
  void syncMembershipCounters() noexcept;

  // ---- fault machinery ----
  void applyPendingFaults();
  void applyFault(const sim::FaultEvent& event);
  [[nodiscard]] sim::Tier* tierFor(sim::TierKind kind) noexcept;
  void setNodeUp(sim::TierKind kind, std::size_t index, bool up);
  /// Mirror the channel's cumulative fault counters into counters_.
  void syncFaultCounters() noexcept;
  /// Drop expired single-flight entries once the map grows past its cap.
  void pruneInflight();

  DeploymentConfig config_;
  sim::NetworkModel network_;
  std::unique_ptr<rpc::Channel> channel_;

  std::unique_ptr<sim::Tier> client_;
  std::unique_ptr<sim::Tier> app_;
  std::unique_ptr<sim::Tier> remoteTier_;
  std::unique_ptr<sim::Tier> farTier_;
  std::unique_ptr<sim::Tier> sql_;
  std::unique_ptr<sim::Tier> kv_;

  std::unique_ptr<storage::Database> db_;
  std::unique_ptr<cache::RemoteCache> remote_;
  std::unique_ptr<cache::LinkedCache> linked_;
  std::unique_ptr<cache::DisaggCache> disagg_;
  std::unique_ptr<consistency::InvalidationBus> invalidationBus_;
  std::unique_ptr<consistency::VersionChecker> versionChecker_;

  std::unique_ptr<richobject::CatalogStore> catalogStore_;
  std::unique_ptr<richobject::Assembler> assembler_;

  /// TTL bookkeeping: last fill time per cached key (only when the TTL
  /// freshness bound is enabled). The map is swept lazily against cache
  /// occupancy so evictions don't leak entries (see maybeSweepFillTimes).
  [[nodiscard]] bool ttlExpired(const std::string& key) const;
  void noteFill(const std::string& key);
  void maybeSweepFillTimes();

  ServeCounters counters_;
  util::Histogram latency_;
  std::unique_ptr<obs::Tracer> tracer_;
  /// Per-op key/primary-key scratch: serve() formats into these instead of
  /// allocating a fresh std::string per simulated operation. Valid only for
  /// the duration of one serve call.
  std::string keyScratch_;
  std::string pkScratch_;
  std::size_t rrApp_ = 0;
  std::uint64_t simNowMicros_ = 0;
  std::unordered_map<std::string, std::uint64_t> fillTimes_;

  std::unique_ptr<Shedder> shedder_;
  bool overloadInstalled_ = false;

  std::unique_ptr<HealthMonitor> monitor_;
  bool replicationOn_ = false;
  /// Linked-replica pick made by appIndexFor (affinity routing) so the
  /// serve path probes the same shard the client leg was routed to —
  /// choosing twice would double-grant probe slots. Valid for one op.
  std::size_t linkedPick_ = 0;
  bool linkedPickFallback_ = false;
  bool linkedPickValid_ = false;
  /// Gray-fault onsets (slow/flaky begin events) for detection-lag
  /// accounting, and the cursor over monitor ejections already consumed
  /// into counters_.
  struct GrayFaultStart {
    sim::TierKind tier = sim::TierKind::kAppServer;
    std::size_t index = 0;
    std::uint64_t atMicros = 0;
  };
  std::vector<GrayFaultStart> grayFaultStarts_;
  std::size_t ejectionCursor_ = 0;
  std::size_t activeSlowNodes_ = 0;

  std::unique_ptr<consistency::LeaseManager> leases_;
  std::unique_ptr<MembershipDirector> membership_;
  bool membershipInstalled_ = false;
  sim::FaultSchedule faultSchedule_;
  std::size_t faultCursor_ = 0;
  bool faultsInstalled_ = false;
  std::uint64_t ownershipEpoch_ = 1;
  /// Single-flight table: key -> completion time of the in-flight storage
  /// read (fault mode only).
  std::unordered_map<std::string, std::uint64_t> inflight_;
};

}  // namespace dcache::core
