// A full simulated service deployment: client tier, app-server tier,
// optional remote-cache tier, SQL front-end tier and KV storage tier, wired
// per one of the four architectures. serve() pushes one workload operation
// through the deployment, charging every hop and every byte; afterwards the
// tiers' meters hold exactly the CPU/memory picture the cost model prices.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "cache/linked_cache.hpp"
#include "cache/remote_cache.hpp"
#include "consistency/version_check.hpp"
#include "core/architecture.hpp"
#include "core/calibration.hpp"
#include "richobject/assembler.hpp"
#include "richobject/catalog_store.hpp"
#include "rpc/channel.hpp"
#include "sim/network.hpp"
#include "sim/tier.hpp"
#include "storage/database.hpp"
#include "util/histogram.hpp"
#include "workload/uc_trace.hpp"
#include "workload/workload.hpp"

namespace dcache::core {

struct DeploymentConfig {
  Architecture architecture = Architecture::kLinked;

  std::size_t appServers = 3;
  std::size_t remoteCacheNodes = 3;  // only instantiated for kRemote
  std::size_t sqlFrontends = 3;
  std::size_t kvStorageNodes = 3;

  // §5.1: each app server gets 6 GB of cache; TiKV pods get block cache.
  util::Bytes appCachePerNode = util::Bytes::gb(6);
  util::Bytes remoteCachePerNode = util::Bytes::gb(6);
  util::Bytes blockCachePerNode = util::Bytes::gb(1);
  util::Bytes appBaseMemoryPerNode = util::Bytes::gb(2);
  util::Bytes sqlBaseMemoryPerNode = util::Bytes::gb(1);

  cache::EvictionPolicy evictionPolicy = cache::EvictionPolicy::kLru;
  /// Slicer-style affinity routing: client requests for a key land directly
  /// on the app server whose linked-cache shard owns it. When false, the
  /// load balancer sprays round-robin and non-owners forward probes inside
  /// the app tier (§2.4), paying an extra marshalled hop on ~(N-1)/N of
  /// requests — the cost of running a linked cache without an auto-sharder.
  bool affinityRouting = true;
  /// Writes refresh the cache in place (write-through); false = invalidate.
  bool writeThroughCache = true;
  std::size_t replicationFactor = 3;

  /// TTL freshness bound for linked-cache hits (0 = off). A hit older than
  /// the TTL is revalidated from storage — the classic bounded-staleness
  /// compromise the paper's related work surveys: far cheaper than a
  /// per-read version check, but only *eventually* consistent within the
  /// bound. Requires the clock: ExperimentRunner drives it from QPS, or
  /// call setSimTimeMicros() directly.
  std::uint64_t ttlFreshnessMicros = 0;

  Calibration calibration{};
};

struct ServeCounters {
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t cacheHits = 0;
  std::uint64_t cacheMisses = 0;
  std::uint64_t versionChecks = 0;
  std::uint64_t versionMismatches = 0;
  std::uint64_t statementsIssued = 0;
  std::uint64_t ttlExpirations = 0;

  [[nodiscard]] double hitRatio() const noexcept {
    const std::uint64_t n = cacheHits + cacheMisses;
    return n ? static_cast<double>(cacheHits) / static_cast<double>(n) : 0.0;
  }
  void clear() noexcept { *this = ServeCounters{}; }
};

class Deployment {
 public:
  explicit Deployment(DeploymentConfig config);

  // ---- population (cost-free experiment setup) ----
  /// Load every key of a KV-style workload into storage.
  void populateKv(const workload::Workload& workload);
  /// Create and load the catalog dataset for rich-object serving.
  void populateCatalog(const workload::UcTraceWorkload& trace,
                       richobject::CatalogStoreConfig storeConfig = {});

  // ---- serving ----
  struct OpResult {
    bool cacheHit = false;
    double latencyMicros = 0.0;
  };
  /// KV-style operation (synthetic / Meta / UC-KV).
  OpResult serve(const workload::Op& op);
  /// Rich-object operation (UC-Object): kObjectRead assembles via SQL.
  OpResult serveObject(const workload::Op& op);

  /// Advance the simulated wall clock (drives TTL freshness).
  void setSimTimeMicros(std::uint64_t nowMicros) noexcept {
    simNowMicros_ = nowMicros;
  }
  [[nodiscard]] std::uint64_t simTimeMicros() const noexcept {
    return simNowMicros_;
  }

  // ---- metering ----
  void clearMeters();
  [[nodiscard]] std::vector<const sim::Tier*> tiers() const;
  [[nodiscard]] const ServeCounters& counters() const noexcept {
    return counters_;
  }
  [[nodiscard]] const util::Histogram& latencies() const noexcept {
    return latency_;
  }

  // ---- component access ----
  [[nodiscard]] const DeploymentConfig& config() const noexcept {
    return config_;
  }
  [[nodiscard]] storage::Database& db() noexcept { return *db_; }
  [[nodiscard]] sim::Tier& appTier() noexcept { return *app_; }
  [[nodiscard]] cache::LinkedCache* linkedCache() noexcept {
    return linked_.get();
  }
  [[nodiscard]] cache::RemoteCache* remoteCache() noexcept {
    return remote_.get();
  }
  [[nodiscard]] richobject::CatalogStore* catalogStore() noexcept {
    return catalogStore_.get();
  }
  [[nodiscard]] util::Bytes totalCacheMemoryProvisioned() const;

 private:
  OpResult serveRead(const std::string& key, const workload::Op& op);
  OpResult serveWrite(const std::string& key, const workload::Op& op);
  OpResult serveObjectRead(const workload::Op& op);
  OpResult serveObjectWrite(const workload::Op& op);

  /// App server handling this key under the active routing policy
  /// (affinity to the linked-cache owner; round-robin otherwise).
  [[nodiscard]] std::size_t appIndexFor(const std::string& key);

  /// Client <-> app leg: every architecture pays it, with the value bytes.
  double clientLeg(sim::Node& app, std::uint64_t requestBytes,
                   std::uint64_t responseBytes);

  /// Read through storage and fill the architecture's cache.
  double readFromStorageAndFill(sim::Node& app, std::size_t appIndex,
                                const std::string& key);

  DeploymentConfig config_;
  sim::NetworkModel network_;
  std::unique_ptr<rpc::Channel> channel_;

  std::unique_ptr<sim::Tier> client_;
  std::unique_ptr<sim::Tier> app_;
  std::unique_ptr<sim::Tier> remoteTier_;
  std::unique_ptr<sim::Tier> sql_;
  std::unique_ptr<sim::Tier> kv_;

  std::unique_ptr<storage::Database> db_;
  std::unique_ptr<cache::RemoteCache> remote_;
  std::unique_ptr<cache::LinkedCache> linked_;
  std::unique_ptr<consistency::VersionChecker> versionChecker_;

  std::unique_ptr<richobject::CatalogStore> catalogStore_;
  std::unique_ptr<richobject::Assembler> assembler_;

  /// TTL bookkeeping: last fill time per cached key (only when the TTL
  /// freshness bound is enabled).
  [[nodiscard]] bool ttlExpired(const std::string& key) const;
  void noteFill(const std::string& key);

  ServeCounters counters_;
  util::Histogram latency_;
  std::size_t rrApp_ = 0;
  std::uint64_t simNowMicros_ = 0;
  std::unordered_map<std::string, std::uint64_t> fillTimes_;
};

}  // namespace dcache::core
