// Overload-control configuration and the deployment-level admission
// controller. The queueing model itself lives in sim/queue.hpp and the
// wire-level defenses (circuit breakers, hedged requests, deadline budgets)
// in rpc/channel.hpp; this header is where a deployment decides how much
// capacity each tier has and which defenses are armed. Everything defaults
// to off: a default-constructed OverloadConfig leaves every node with
// infinite capacity and every serve() path bit-for-bit what it was before
// the overload subsystem existed.
#pragma once

#include <cstdint>

#include "rpc/channel.hpp"

namespace dcache::core {

/// CoDel-style load shedder tuning. The controller watches the app tier's
/// standing queueing delay: below `targetDelayMicros` nothing is ever shed;
/// above it, shedding starts only after the delay has persisted for
/// `graceMicros` (a burst shorter than the grace window rides the queue),
/// then ramps linearly with the overshoot up to `maxShedFraction`.
struct ShedPolicy {
  bool enabled = false;
  double targetDelayMicros = 2000.0;
  double graceMicros = 5000.0;
  /// Overshoot (µs above target) at which the shed fraction reaches 100%
  /// (before the maxShedFraction cap).
  double rampMicros = 20000.0;
  /// Never shed everything: the surviving trickle is how the controller
  /// observes recovery.
  double maxShedFraction = 0.95;
};

/// Deterministic admission controller. Randomized dropping would break the
/// simulator's byte-for-byte reproducibility, so the shed fraction is
/// realized by error diffusion instead: the fraction accumulates per
/// offered request and a request is shed each time the accumulator crosses
/// 1. Same long-run rate as a random drop, zero RNG draws, and a monotone
/// guarantee the unit tests can pin: a deeper queue never sheds less.
class Shedder {
 public:
  explicit Shedder(ShedPolicy policy = {}) noexcept : policy_(policy) {}

  /// Offer one admission decision for a request arriving at `nowMicros`
  /// that would face `queueDelayMicros` of queueing. Returns true to shed.
  [[nodiscard]] bool offer(double queueDelayMicros,
                           std::uint64_t nowMicros) noexcept;

  /// Currently past the grace window and actively shedding?
  [[nodiscard]] bool dropping() const noexcept { return dropping_; }
  [[nodiscard]] std::uint64_t shedCount() const noexcept { return shed_; }
  [[nodiscard]] const ShedPolicy& policy() const noexcept { return policy_; }
  void clear() noexcept {
    aboveTarget_ = false;
    dropping_ = false;
    accumulator_ = 0.0;
  }

 private:
  ShedPolicy policy_;
  bool aboveTarget_ = false;
  std::uint64_t aboveSinceMicros_ = 0;
  bool dropping_ = false;
  double accumulator_ = 0.0;
  std::uint64_t shed_ = 0;
};

/// Per-deployment overload model: tier capacities (µs of CPU per simulated
/// second; 0 = unlimited, i.e. the legacy no-queue behaviour) plus the
/// three defenses. `enabled()` gates all Deployment-side wiring.
struct OverloadConfig {
  double appCapacityMicrosPerSec = 0.0;
  double remoteCacheCapacityMicrosPerSec = 0.0;
  double sqlCapacityMicrosPerSec = 0.0;
  double kvCapacityMicrosPerSec = 0.0;
  /// Queue bound for every capacity-limited node (sim::QueueParams).
  double maxQueueWaitMicros = 100000.0;

  ShedPolicy shed{};
  bool breakersEnabled = false;
  rpc::BreakerPolicy breaker{};
  bool hedgingEnabled = false;
  rpc::HedgePolicy hedge{};

  [[nodiscard]] bool anyCapacity() const noexcept {
    return appCapacityMicrosPerSec > 0.0 ||
           remoteCacheCapacityMicrosPerSec > 0.0 ||
           sqlCapacityMicrosPerSec > 0.0 || kvCapacityMicrosPerSec > 0.0;
  }
  [[nodiscard]] bool enabled() const noexcept {
    return anyCapacity() || shed.enabled || breakersEnabled || hedgingEnabled;
  }
};

}  // namespace dcache::core
