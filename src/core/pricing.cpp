#include "core/pricing.hpp"

// Header-only; TU anchors the library.
