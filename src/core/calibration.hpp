// Single source of truth for every CPU/network cost constant in the
// simulation, with the reasoning behind each number. All values are
// microseconds of one ~3.2 GHz vCPU.
//
// Derivations (see also EXPERIMENTS.md "Calibration"):
//  * RPC per-message 10 µs/side: tuned gRPC unary overhead (connection
//    handling, HTTP/2 framing, syscalls) measured in public gRPC benchmarks
//    lands at 5–20 µs per side; 10 µs is the midpoint.
//  * Serialization 1 ns/B, deserialization 1.6 ns/B: protobuf-style codecs
//    sustain ~1 GB/s encode, ~0.6 GB/s decode on one core; our own wire
//    codec (bench/micro_serialization) shows the same linear shape.
//  * SQL front-end 85 µs/statement (15 connection + 30 parse + 40 plan):
//    TiDB point selects burn 50–150 µs of CPU in the front end; the split
//    is sized so that, on small-value workloads, connection/parse/plan take
//    40–65 % of database cycles — the §5.3 breakdown.
//  * KV execution 3 µs/row + 1 ns/B (coprocessor copies), memtable 2 µs.
//  * Raft leader 8 µs + 2 followers × 5 µs + 0.9 ns/B; lease check 1.5 µs.
//  * Block-cache miss: 18 µs + 3 ns/B CPU (NVMe submission, checksum,
//    decompression) and 90 µs device latency.
//  * App server: 5 µs to prepare/issue a storage or cache request; object
//    composition 2 µs per statement + 0.4 ns/B — sized so a Linked app's
//    cycles split ≈60 % request prep / ≈31 % client comm as in §5.3.
//  * One-sided far memory: ~1 µs to post the read + 0.5 µs completion
//    poll, 0.2 ns/B initiator-side pull (DMA engine copies, no marshal),
//    0.02 µs at the pool (the NIC serves from memory; the host CPU sees
//    almost nothing) — the RDMA cost shape Ditto/DiFache build on.
#pragma once

#include "cache/disagg_cache.hpp"
#include "cache/remote_cache.hpp"
#include "richobject/assembler.hpp"
#include "rpc/serialization_model.hpp"
#include "sim/network.hpp"
#include "storage/database.hpp"
#include "storage/raft.hpp"

namespace dcache::core {

struct Calibration {
  sim::NetworkParams network{};
  rpc::SerializationParams serialization{};
  storage::StorageCosts storage{};
  storage::RaftCosts raft{};
  cache::CacheOpCosts cacheOps{};
  richobject::AppCosts app{};
  cache::DisaggCosts disagg{};

  /// The defaults above; named constructor for emphasis at call sites.
  [[nodiscard]] static Calibration defaults() { return Calibration{}; }
};

}  // namespace dcache::core
