#include "core/matrix.hpp"

#include <cstdlib>
#include <string_view>

#include "util/thread_pool.hpp"

namespace dcache::core {
namespace {

[[nodiscard]] std::uint64_t parseUint(std::string_view text,
                                      std::uint64_t fallback) noexcept {
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(text.data(), &end, 10);
  return end != text.data() ? parsed : fallback;
}

}  // namespace

MatrixOptions parseMatrixOptions(int argc, char** argv) {
  MatrixOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg(argv[i]);
    if (arg == "--jobs" && i + 1 < argc) {
      options.jobs = static_cast<std::size_t>(parseUint(argv[++i], 0));
    } else if (arg.starts_with("--jobs=")) {
      options.jobs = static_cast<std::size_t>(
          parseUint(arg.substr(sizeof("--jobs=") - 1), 0));
    } else if (arg == "--seed" && i + 1 < argc) {
      options.rootSeed = parseUint(argv[++i], options.rootSeed);
    } else if (arg.starts_with("--seed=")) {
      options.rootSeed =
          parseUint(arg.substr(sizeof("--seed=") - 1), options.rootSeed);
    }
  }
  return options;
}

std::uint64_t cellSeed(std::uint64_t rootSeed, std::size_t index) noexcept {
  // Offset by the golden-ratio increment so adjacent indices land far apart
  // in SplitMix64's state space; the expansion depends only on the inputs.
  util::SplitMix64 expander(rootSeed +
                            0x9e3779b97f4a7c15ULL *
                                (static_cast<std::uint64_t>(index) + 1));
  return expander.next();
}

util::Pcg32 cellRng(std::uint64_t rootSeed, std::size_t index) noexcept {
  return util::Pcg32(cellSeed(rootSeed, index),
                     static_cast<std::uint64_t>(index) + 1);
}

std::size_t ExperimentMatrix::add(Cell cell) {
  cells_.push_back(std::move(cell));
  return cells_.size() - 1;
}

std::size_t ExperimentMatrix::add(Architecture arch, WorkloadFactory factory,
                                  DeploymentConfig deployment,
                                  ExperimentConfig experiment) {
  return add([arch, factory = std::move(factory), deployment,
              experiment](util::Pcg32& rng) {
    const std::unique_ptr<workload::Workload> workload = factory(rng);
    return runArchitecture(arch, *workload, deployment, experiment);
  });
}

std::vector<ExperimentResult> ExperimentMatrix::run() const {
  util::ThreadPool pool(options_.jobs);
  // dcache-lint: allow(race-capture, per-cell discipline, members read-only)
  return util::mapOrdered(pool, cells_.size(), [this](std::size_t index) {
    util::Pcg32 rng = cellRng(options_.rootSeed, index);
    return cells_[index](rng);
  });
}

util::Histogram mergedLatencies(std::span<const ExperimentResult> results) {
  util::Histogram merged;
  for (const ExperimentResult& result : results) {
    merged.merge(result.latencies);
  }
  return merged;
}

}  // namespace dcache::core
