#include "core/overload.hpp"

#include <algorithm>

namespace dcache::core {

bool Shedder::offer(double queueDelayMicros, std::uint64_t nowMicros) noexcept {
  if (!policy_.enabled) return false;
  if (queueDelayMicros <= policy_.targetDelayMicros) {
    // Healthy: reset everything, including the diffusion accumulator —
    // residual credit must not cause a shed on the first over-target
    // request of the next episode (the no-shed-below-threshold guarantee).
    clear();
    return false;
  }
  if (!aboveTarget_) {
    aboveTarget_ = true;
    aboveSinceMicros_ = nowMicros;
  }
  if (static_cast<double>(nowMicros - aboveSinceMicros_) <
      policy_.graceMicros) {
    return false;  // short burst: let the queue absorb it
  }
  dropping_ = true;
  const double overshoot = queueDelayMicros - policy_.targetDelayMicros;
  const double fraction =
      std::min(policy_.maxShedFraction,
               policy_.rampMicros > 0.0 ? overshoot / policy_.rampMicros
                                        : policy_.maxShedFraction);
  accumulator_ += fraction;
  if (accumulator_ >= 1.0) {
    accumulator_ -= 1.0;
    ++shed_;
    return true;
  }
  return false;
}

}  // namespace dcache::core
