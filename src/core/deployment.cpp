#include "core/deployment.hpp"

#include <cstdio>

#include "rpc/wire_size.hpp"
#include "workload/workload.hpp"

namespace dcache::core {
namespace {

// The serve loops run once per simulated op; key formatting reuses the
// caller's scratch string so steady state allocates nothing.

void objectKeyTo(std::uint64_t tableId, std::string& out) {
  char buf[32];
  const int n = std::snprintf(buf, sizeof buf, "obj:tbl%llu",
                              static_cast<unsigned long long>(tableId));
  out.assign(buf, static_cast<std::size_t>(n));
}

void tablePkTo(std::uint64_t tableId, std::string& out) {
  char buf[24];
  const int n = std::snprintf(buf, sizeof buf, "%llu",
                              static_cast<unsigned long long>(tableId));
  out.assign(buf, static_cast<std::size_t>(n));
}

/// Triage cost of turning a request away at admission control: parse the
/// header, decide, answer. Far below a served request, deliberately not
/// zero — shedding at scale is itself CPU the bill sees.
constexpr double kShedTriageMicros = 0.5;
/// Encoded size of the "try again later" error response.
constexpr std::uint64_t kShedResponseBytes = 16;

}  // namespace

Deployment::Deployment(DeploymentConfig config) : config_(config) {
  const Calibration& cal = config_.calibration;
  network_ = sim::NetworkModel(cal.network);
  channel_ = std::make_unique<rpc::Channel>(
      network_, rpc::SerializationModel(cal.serialization));

  client_ = std::make_unique<sim::Tier>("client", sim::TierKind::kClient, 1);
  app_ = std::make_unique<sim::Tier>("app", sim::TierKind::kAppServer,
                                     config_.appServers);
  app_->provisionMemoryPerNode(config_.appBaseMemoryPerNode);
  sql_ = std::make_unique<sim::Tier>("sql", sim::TierKind::kSqlFrontend,
                                     config_.sqlFrontends);
  sql_->provisionMemoryPerNode(config_.sqlBaseMemoryPerNode);
  kv_ = std::make_unique<sim::Tier>("kv", sim::TierKind::kKvStorage,
                                    config_.kvStorageNodes);

  storage::Database::Config dbConfig;
  dbConfig.costs = cal.storage;
  dbConfig.raftCosts = cal.raft;
  dbConfig.blockCachePerNode = config_.blockCachePerNode;
  dbConfig.replicationFactor = config_.replicationFactor;
  db_ = std::make_unique<storage::Database>(*sql_, *kv_, *channel_, dbConfig);

  switch (config_.architecture) {
    case Architecture::kBase:
      break;
    case Architecture::kRemote:
      remoteTier_ = std::make_unique<sim::Tier>(
          "remote-cache", sim::TierKind::kRemoteCache,
          config_.remoteCacheNodes);
      remote_ = std::make_unique<cache::RemoteCache>(
          *remoteTier_, config_.remoteCachePerNode, *channel_,
          config_.evictionPolicy, cal.cacheOps);
      break;
    case Architecture::kLinked:
    case Architecture::kLinkedVersion:
      linked_ = std::make_unique<cache::LinkedCache>(
          *app_, config_.appCachePerNode, *channel_, config_.evictionPolicy,
          cal.cacheOps);
      break;
    case Architecture::kDisaggregated: {
      farTier_ = std::make_unique<sim::Tier>(
          "far-memory", sim::TierKind::kFarMemory, config_.farMemoryNodes);
      disagg_ = std::make_unique<cache::DisaggCache>(
          *farTier_, config_.farMemoryPerNode, *app_, config_.hotCachePerNode,
          *channel_, config_.evictionPolicy, cal.disagg);
      // DiFache-style decentralized coherence: every app server subscribes
      // its own hot cache; a writer fans invalidations straight to its
      // peers — no coordinator on the path. Subscriber id == app index
      // (subscription order), which lets the writer skip itself.
      invalidationBus_ =
          std::make_unique<consistency::InvalidationBus>(*channel_);
      for (std::size_t i = 0; i < app_->size(); ++i) {
        invalidationBus_->subscribe(
            app_->node(i), [this, i](std::string_view key, std::uint64_t) {
              disagg_->hotInvalidate(i, key);
            });
      }
      break;
    }
  }
  versionChecker_ = std::make_unique<consistency::VersionChecker>(*db_);
  if (config_.trace.enabled()) {
    tracer_ = std::make_unique<obs::Tracer>(config_.trace);
  }

  if (config_.overload.enabled()) {
    overloadInstalled_ = true;
    const OverloadConfig& ov = config_.overload;
    const auto limitTier = [&](sim::Tier* tier, double capacity) {
      if (!tier || capacity <= 0.0) return;
      for (std::size_t i = 0; i < tier->size(); ++i) {
        tier->node(i).queue().configure(
            {capacity, ov.maxQueueWaitMicros});
      }
    };
    limitTier(app_.get(), ov.appCapacityMicrosPerSec);
    limitTier(remoteTier_.get(), ov.remoteCacheCapacityMicrosPerSec);
    limitTier(sql_.get(), ov.sqlCapacityMicrosPerSec);
    limitTier(kv_.get(), ov.kvCapacityMicrosPerSec);
    // Queueing and the defenses ride the channel's policy path, so arm it
    // exactly the way installFaultSchedule does.
    channel_->enableFaults(config_.faultSeed, config_.rpcPolicy);
    if (ov.breakersEnabled) channel_->enableBreakers(ov.breaker);
    if (ov.hedgingEnabled) channel_->enableHedging(ov.hedge);
    if (ov.shed.enabled) shedder_ = std::make_unique<Shedder>(ov.shed);
  }

  if (config_.health.enabled) {
    monitor_ = std::make_unique<HealthMonitor>(config_.health);
    const auto registerTier = [&](sim::Tier* tier) {
      if (!tier) return;
      for (std::size_t i = 0; i < tier->size(); ++i) {
        monitor_->registerNode(tier->node(i), tier->kind(), i);
      }
    };
    registerTier(app_.get());
    registerTier(remoteTier_.get());
    registerTier(farTier_.get());
    registerTier(sql_.get());
    registerTier(kv_.get());
    channel_->setCallObserver(monitor_.get());
    // The monitor listens at the channel's policy path; arm it the way
    // overload and installFaultSchedule do.
    channel_->enableFaults(config_.faultSeed, config_.rpcPolicy);
  }
  if (config_.cacheReplicationFactor > 1 && (remote_ || linked_)) {
    replicationOn_ = true;
    if (remote_) remote_->enableReplication(config_.cacheReplicationFactor);
  }
}

void Deployment::populateKv(const workload::Workload& workload) {
  db_->reserveKeys(workload.keyCount());
  std::string key;
  for (std::uint64_t k = 0; k < workload.keyCount(); ++k) {
    workload::keyNameTo(k, key);
    db_->loadValue(key, workload.valueSizeFor(k));
  }
}

void Deployment::populateCatalog(const workload::UcTraceWorkload& trace,
                                 richobject::CatalogStoreConfig storeConfig) {
  catalogStore_ = std::make_unique<richobject::CatalogStore>(*db_, trace,
                                                             storeConfig);
  catalogStore_->createSchemas();
  catalogStore_->populate();
  assembler_ = std::make_unique<richobject::Assembler>(
      *catalogStore_, config_.calibration.app);
}

bool Deployment::replicaUsable(sim::TierKind tier, std::size_t index) {
  sim::Tier* t = tierFor(tier);
  if (!t || index >= t->size() || !t->node(index).isUp()) return false;
  if (monitor_ && !monitor_->allowRequest(tier, index, simNowMicros_)) {
    return false;
  }
  return true;
}

std::size_t Deployment::chooseLinkedReplica(const std::string& key,
                                            bool& fallback) {
  const auto replicas =
      linked_->replicasOf(key, config_.cacheReplicationFactor);
  fallback = false;
  if (replicas.empty()) return linked_->ownerOf(key);
  for (std::size_t r = 0; r < replicas.size(); ++r) {
    if (replicaUsable(sim::TierKind::kAppServer, replicas[r])) {
      fallback = r > 0;
      return replicas[r];
    }
  }
  return replicas[0];  // nothing usable: the primary's failure is counted
}

void Deployment::noteReplicaStaleness(const std::string& key,
                                      std::uint64_t version) {
  // peek*, not read*: anomaly accounting is the experimenter's x-ray, it
  // must not charge CPU or change cache state.
  const auto stored = db_->peekValueVersion(key);
  if (stored && *stored != version) ++counters_.staleReplicaReads;
}

std::size_t Deployment::appIndexFor(const std::string& key) {
  linkedPickValid_ = false;
  if (linked_ && config_.affinityRouting) {
    if (replicationOn_) {
      // Replica-aware affinity: the client leg lands on the shard the
      // probe will use, so an ejected/slow owner is bypassed end to end.
      linkedPick_ = chooseLinkedReplica(key, linkedPickFallback_);
      linkedPickValid_ = true;
      if (!dynamicTopology() || app_->node(linkedPick_).isUp()) {
        return linkedPick_;
      }
    }
    const std::size_t owner = linked_->ownerOf(key);
    if (!dynamicTopology() || app_->node(owner).isUp()) {
      return owner;  // Slicer-style affinity
    }
    // The ring still names a down node (a tier outage doesn't reshard —
    // the shards' contents survive); spray over the live servers below.
  }
  if (!dynamicTopology() && !monitor_) {
    const std::size_t idx = rrApp_ % app_->size();
    ++rrApp_;
    return idx;
  }
  // Load-balancer health checks: round-robin over live servers only, and —
  // with the health monitor on — skip ejected servers too (an ejected node
  // still gets its periodic probe request routed through here).
  for (std::size_t probe = 0; probe < app_->size(); ++probe) {
    const std::size_t idx = rrApp_ % app_->size();
    ++rrApp_;
    if (!app_->node(idx).isUp()) continue;
    if (monitor_ &&
        !monitor_->allowRequest(sim::TierKind::kAppServer, idx,
                                simNowMicros_)) {
      continue;
    }
    return idx;
  }
  return rrApp_ % app_->size();  // whole tier down: calls will time out
}

double Deployment::clientLeg(sim::Node& app, std::size_t appIndex,
                             std::uint64_t requestBytes,
                             std::uint64_t responseBytes, bool countFailure) {
  sim::SpanGuard span("client.leg", sim::TierKind::kClient);
  if (overloadInstalled_ && config_.overload.hedgingEnabled) {
    // The app tier is the replicated tier every architecture has: any live
    // server can answer (a non-owner pays the forward/miss path — the
    // hedge trades that cost for the tail it cuts). Backup = next live
    // server after the primary.
    sim::Node* backup = nullptr;
    for (std::size_t probe = 1; probe < app_->size(); ++probe) {
      sim::Node& candidate = app_->node((appIndex + probe) % app_->size());
      if (candidate.isUp()) {
        backup = &candidate;
        break;
      }
    }
    const rpc::PolicyCallResult hedged = channel_->callHedged(
        client_->node(0), app, backup, requestBytes, responseBytes,
        config_.rpcPolicy, /*marshal=*/true, sim::CpuComponent::kClientComm);
    if (!hedged.ok && countFailure) ++counters_.failedOps;
    return hedged.latencyMicros;
  }
  const rpc::CallResult result =
      channel_->call(client_->node(0), app, requestBytes, responseBytes,
                     /*marshal=*/true, sim::CpuComponent::kClientComm);
  if (!result.ok && countFailure) ++counters_.failedOps;
  return result.latencyMicros;
}

bool Deployment::shouldShedRead(sim::Node& app) {
  if (!shedder_) return false;
  sim::NodeQueue& queue = app.queue();
  queue.drainTo(simNowMicros_);
  if (!shedder_->offer(queue.waitMicros(), simNowMicros_)) return false;
  ++counters_.sheddedRequests;
  // Turning a request away costs triage CPU, not a queue's worth of work —
  // which is the entire trade admission control makes.
  app.charge(sim::CpuComponent::kRequestPrep, kShedTriageMicros);
  return true;
}

double Deployment::readFromStorageAndFill(sim::Node& app,
                                          std::size_t appIndex,
                                          const std::string& key) {
  sim::SpanGuard span("storage.fill", sim::TierKind::kKvStorage);
  app.charge(sim::CpuComponent::kRequestPrep,
             config_.calibration.app.requestPrepMicros);
  if (membershipInstalled_ && membership_->anyWindowActive()) {
    // Dual-read fallback: the key's ownership just moved and the old owner
    // may still hold it — rescue the entry from there instead of paying a
    // storage round trip (the storage-amplification saving warm handoff is
    // measured on).
    const auto fb = membership_->tryFallback(appIndex, key);
    if (fb.hit) {
      span.setOutcome(sim::SpanOutcome::kCoalesced);
      return fb.latencyMicros;
    }
  }
  if (dynamicTopology()) {
    // Single-flight: a miss whose storage read is already in flight joins
    // it instead of issuing a duplicate — a cold restart must not turn the
    // miss storm into a storage-QPS storm. The follower only pays the
    // remaining wait.
    const auto it = inflight_.find(key);
    if (it != inflight_.end() && it->second > simNowMicros_) {
      ++counters_.coalescedMisses;
      span.setOutcome(sim::SpanOutcome::kCoalesced);
      return static_cast<double>(it->second - simNowMicros_);
    }
  }
  const auto read = db_->readValue(app, key);
  ++counters_.storageReads;
  if (dynamicTopology()) {
    inflight_[key] =
        simNowMicros_ + static_cast<std::uint64_t>(read.latencyMicros);
    pruneInflight();
  }
  if (!read.found) return read.latencyMicros;
  if (remote_) {
    if (replicationOn_) {
      // Write-all fill: every usable replica gets the value. The copies
      // ship in parallel, so the op pays the slowest one; the extra
      // copies' CPU/bytes land on the meters and replicaWriteFanout.
      double maxLat = 0.0;
      std::size_t copies = 0;
      for (const std::size_t idx : remote_->replicasForKey(key)) {
        if (!replicaUsable(sim::TierKind::kRemoteCache, idx)) continue;
        const double lat = remote_->putAt(app, idx, key, read.size,
                                          read.version);
        if (lat > maxLat) maxLat = lat;
        ++copies;
      }
      if (copies > 1) counters_.replicaWriteFanout += copies - 1;
      return read.latencyMicros + maxLat;
    }
    if (dynamicTopology() && !remote_->nodeUpFor(key)) {
      // Circuit breaker: don't burn a timed-out retry budget filling a
      // pod known to be dead; the value simply isn't cached this round.
      return read.latencyMicros;
    }
    return read.latencyMicros +
           remote_->put(app, key, read.size, read.version);
  }
  if (disagg_) {
    // The hot copy is in-process and always fillable; the far slot is
    // skipped when its pool node is known dead (same breaker idiom as the
    // remote tier — don't burn a timed-out retry budget on a corpse).
    disagg_->hotFill(appIndex, key, read.size, read.version);
    if (!dynamicTopology() || disagg_->nodeUpFor(key)) {
      return read.latencyMicros +
             disagg_->farPut(app, key, read.size, read.version);
    }
    return read.latencyMicros;
  }
  if (linked_) {
    if (replicationOn_) {
      double maxLat = 0.0;
      std::size_t copies = 0;
      const auto replicas =
          linked_->replicasOf(key, config_.cacheReplicationFactor);
      for (const std::size_t idx : replicas) {
        if (!replicaUsable(sim::TierKind::kAppServer, idx)) continue;
        if (config_.affinityRouting && idx == appIndex) {
          linked_->fillAt(idx, key, read.size, read.version);
        } else {
          const double lat =
              linked_->updateAt(appIndex, idx, key, read.size, read.version);
          if (lat > maxLat) maxLat = lat;
        }
        ++copies;
      }
      if (copies > 1) counters_.replicaWriteFanout += copies - 1;
      noteFill(key);
      return read.latencyMicros + maxLat;
    }
    if (config_.affinityRouting) {
      linked_->fill(key, read.size, read.version);
    } else {
      // The receiving server read the value; shipping it to the owning
      // shard is a marshalled intra-tier transfer.
      linked_->update(appIndex, key, read.size, read.version);
    }
    noteFill(key);
  }
  return read.latencyMicros;
}

bool Deployment::ttlExpired(const std::string& key) const {
  if (config_.ttlFreshnessMicros == 0) return false;
  const auto it = fillTimes_.find(key);
  if (it == fillTimes_.end()) return false;  // age unknown: trust the entry
  return it->second + config_.ttlFreshnessMicros <= simNowMicros_;
}

void Deployment::noteFill(const std::string& key) {
  if (config_.ttlFreshnessMicros == 0) return;
  fillTimes_[key] = simNowMicros_;
  maybeSweepFillTimes();
}

void Deployment::maybeSweepFillTimes() {
  // Evictions don't report back here, so the map accretes entries for keys
  // the cache no longer holds; unchecked it grows with the keyspace, not
  // with cache occupancy. Dropping an entry for an un-cached key can't
  // change any decision (ttlExpired is only consulted after a cache *hit*),
  // so sweep dead entries whenever the map outgrows occupancy 2x. The
  // floor keeps the sweep amortized O(1) per fill for small runs.
  if (!linked_) return;
  if (fillTimes_.size() < 1024) return;
  if (fillTimes_.size() <= 2 * linked_->itemCount()) return;
  bool anyServer = false;
  for (std::size_t i = 0; i < app_->size(); ++i) {
    if (linked_->hasServer(i)) {
      anyServer = true;
      break;
    }
  }
  if (!anyServer) {  // ring empty mid-outage: everything is un-cached
    fillTimes_.clear();
    return;
  }
  // dcache-lint: allow(unordered-iter, erase-only sweep dropping fill times whose key left the resharded ring; per-entry predicate, order cannot leak into serving or accounting)
  for (auto it = fillTimes_.begin(); it != fillTimes_.end();) {
    const std::size_t owner = linked_->ownerOf(it->first);
    if (linked_->shard(owner).peek(it->first) == nullptr) {
      it = fillTimes_.erase(it);
    } else {
      ++it;
    }
  }
}

Deployment::OpResult Deployment::serve(const workload::Op& op) {
  workload::keyNameTo(op.keyIndex, keyScratch_);
  const std::string& key = keyScratch_;
  obs::RequestScope scope(tracer_.get(), op.isRead() ? "read" : "write");
  const std::uint64_t degradedBefore = counters_.degradedReads;
  const std::uint64_t shedBefore = counters_.sheddedRequests;
  const std::uint64_t fallbackBefore = counters_.replicaFallbackReads;
  OpResult result =
      op.isRead() ? serveRead(key, op) : serveWrite(key, op);
  if (op.isRead()) {
    scope.setOutcome(counters_.sheddedRequests > shedBefore
                         ? sim::SpanOutcome::kShed
                     : counters_.degradedReads > degradedBefore
                         ? sim::SpanOutcome::kDegraded
                     : counters_.replicaFallbackReads > fallbackBefore
                         ? sim::SpanOutcome::kReplicaFallback
                     : result.cacheHit ? sim::SpanOutcome::kHit
                                       : sim::SpanOutcome::kMiss);
  }
  latency_.record(result.latencyMicros);
  if (faultsInstalled_ || overloadInstalled_ || monitor_) syncFaultCounters();
  if (membershipInstalled_) syncMembershipCounters();
  return result;
}

Deployment::OpResult Deployment::serveRead(const std::string& key,
                                           const workload::Op& op) {
  ++counters_.reads;
  OpResult result;
  const std::size_t appIndex = appIndexFor(key);
  sim::Node& app = app_->node(appIndex);
  std::uint64_t servedBytes = op.valueSize;

  if (shouldShedRead(app)) {
    result.latencyMicros +=
        clientLeg(app, appIndex, rpc::getRequestWireSize(key.size()),
                  kShedResponseBytes,
                  /*countFailure=*/false);
    return result;
  }

  switch (config_.architecture) {
    case Architecture::kBase: {
      app.charge(sim::CpuComponent::kRequestPrep,
                 config_.calibration.app.requestPrepMicros);
      const auto read = db_->readValue(app, key);
      ++counters_.storageReads;
      servedBytes = read.size;
      result.latencyMicros += read.latencyMicros;
      break;
    }
    case Architecture::kRemote: {
      cache::RemoteCache::GetResult hit;
      bool contacted = false;
      if (replicationOn_) {
        // Walk the replica set primary-first; skip down/ejected pods and
        // fall through a failed call to the next replica.
        const auto replicas = remote_->replicasForKey(key);
        for (std::size_t r = 0; r < replicas.size(); ++r) {
          if (!replicaUsable(sim::TierKind::kRemoteCache, replicas[r])) {
            continue;
          }
          hit = remote_->getAt(app, replicas[r], key);
          result.latencyMicros += hit.latencyMicros;
          contacted = true;
          if (!hit.failed) {
            if (r > 0) ++counters_.replicaFallbackReads;
            break;
          }
        }
      } else {
        hit = remote_->get(app, key);
        result.latencyMicros += hit.latencyMicros;
        contacted = true;
      }
      if (hit.hit) {
        ++counters_.cacheHits;
        result.cacheHit = true;
        servedBytes = hit.size;
        if (replicationOn_) noteReplicaStaleness(key, hit.version);
      } else {
        // A failed call (pod down / every retry dropped) degrades to the
        // storage path — availability is preserved, the cost moves.
        if (!contacted || hit.failed) ++counters_.degradedReads;
        ++counters_.cacheMisses;
        result.latencyMicros += readFromStorageAndFill(app, appIndex, key);
      }
      break;
    }
    case Architecture::kLinked:
    case Architecture::kLinkedVersion: {
      cache::LinkedCache::GetResult hit;
      if (replicationOn_) {
        // Probe the shard the routing layer picked (appIndexFor stashes
        // its choice so probe slots aren't granted twice per op).
        bool fallback = false;
        std::size_t owner;
        if (linkedPickValid_) {
          owner = linkedPick_;
          fallback = linkedPickFallback_;
          linkedPickValid_ = false;
        } else {
          owner = chooseLinkedReplica(key, fallback);
        }
        hit = linked_->getAt(appIndex, owner, key);
        if (fallback) ++counters_.replicaFallbackReads;
        if (hit.hit) noteReplicaStaleness(key, hit.version);
      } else {
        hit = linked_->get(appIndex, key);
      }
      result.latencyMicros += hit.latencyMicros;
      if (hit.hit && ttlExpired(key)) {
        // Bounded-staleness mode: the entry outlived its freshness bound;
        // revalidate from storage (far cheaper than per-read version
        // checks, but only TTL-consistent).
        ++counters_.ttlExpirations;
        ++counters_.cacheMisses;
        result.latencyMicros += readFromStorageAndFill(app, appIndex, key);
        break;
      }
      if (hit.hit) {
        servedBytes = hit.size;
        bool consistent = true;
        if (config_.architecture == Architecture::kLinkedVersion) {
          // §5.5: every read validates the cached version against storage.
          const auto check = versionChecker_->check(app, key, hit.version);
          ++counters_.versionChecks;
          result.latencyMicros += check.latencyMicros;
          if (!check.consistent) {
            ++counters_.versionMismatches;
            consistent = false;
            result.latencyMicros +=
                readFromStorageAndFill(app, appIndex, key);
          }
        }
        if (consistent) {
          ++counters_.cacheHits;
          result.cacheHit = true;
        } else {
          ++counters_.cacheMisses;
        }
      } else {
        ++counters_.cacheMisses;
        result.latencyMicros += readFromStorageAndFill(app, appIndex, key);
      }
      break;
    }
    case Architecture::kDisaggregated: {
      // Hot cache first: an in-process hit never touches far memory.
      const auto hot = disagg_->hotGet(appIndex, key);
      result.latencyMicros += hot.latencyMicros;
      if (hot.hit) {
        ++counters_.cacheHits;
        ++counters_.hotCacheHits;
        result.cacheHit = true;
        servedBytes = hot.size;
        break;
      }
      // Cold: one one-sided read against the key's pool slot. The gate is
      // the same replica gate the other tiers use — a down or ejected pool
      // node degrades the op to the storage path instead of burning the
      // retry budget.
      const std::size_t farIdx = disagg_->nodeForKey(key);
      cache::DisaggCache::GetResult far;
      bool contacted = false;
      if (replicaUsable(sim::TierKind::kFarMemory, farIdx)) {
        far = disagg_->farGetAt(app, farIdx, key);
        result.latencyMicros += far.latencyMicros;
        ++counters_.farMemoryReads;
        counters_.farMemoryBytes += far.wireBytes;
        contacted = true;
      }
      if (far.hit) {
        ++counters_.cacheHits;
        result.cacheHit = true;
        servedBytes = far.size;
        disagg_->hotFill(appIndex, key, far.size, far.version);
      } else {
        if (!contacted || far.failed) ++counters_.degradedReads;
        ++counters_.cacheMisses;
        result.latencyMicros += readFromStorageAndFill(app, appIndex, key);
      }
      break;
    }
  }

  result.latencyMicros +=
      clientLeg(app, appIndex, rpc::getRequestWireSize(key.size()),
                rpc::getResponseWireSize() + servedBytes);
  return result;
}

Deployment::OpResult Deployment::serveWrite(const std::string& key,
                                            const workload::Op& op) {
  ++counters_.writes;
  OpResult result;
  const std::size_t appIndex = appIndexFor(key);
  sim::Node& app = app_->node(appIndex);

  app.charge(sim::CpuComponent::kRequestPrep,
             config_.calibration.app.requestPrepMicros);
  const auto write = db_->writeValue(app, key, op.valueSize);
  result.latencyMicros += write.latencyMicros;

  if (remote_) {
    if (replicationOn_) {
      // Write-all: every usable replica is refreshed (or invalidated) in
      // parallel; a skipped replica goes stale, which fallback reads will
      // surface as staleReplicaReads.
      double maxLat = 0.0;
      std::size_t copies = 0;
      for (const std::size_t idx : remote_->replicasForKey(key)) {
        if (!replicaUsable(sim::TierKind::kRemoteCache, idx)) continue;
        const double lat =
            config_.writeThroughCache
                ? remote_->putAt(app, idx, key, op.valueSize, write.version)
                : remote_->invalidateAt(app, idx, key);
        if (lat > maxLat) maxLat = lat;
        ++copies;
      }
      if (copies > 1) counters_.replicaWriteFanout += copies - 1;
      result.latencyMicros += maxLat;
    } else {
      result.latencyMicros +=
          config_.writeThroughCache
              ? remote_->put(app, key, op.valueSize, write.version)
              : remote_->invalidate(app, key);
    }
  } else if (linked_) {
    if (replicationOn_) {
      double maxLat = 0.0;
      std::size_t copies = 0;
      const auto replicas =
          linked_->replicasOf(key, config_.cacheReplicationFactor);
      for (const std::size_t idx : replicas) {
        if (!replicaUsable(sim::TierKind::kAppServer, idx)) continue;
        const double lat =
            config_.writeThroughCache
                ? linked_->updateAt(appIndex, idx, key, op.valueSize,
                                    write.version)
                : linked_->invalidateAt(appIndex, idx, key);
        if (lat > maxLat) maxLat = lat;
        ++copies;
      }
      if (copies > 1) counters_.replicaWriteFanout += copies - 1;
      result.latencyMicros += maxLat;
      if (config_.writeThroughCache) {
        noteFill(key);
      } else {
        fillTimes_.erase(key);
      }
    } else if (config_.writeThroughCache) {
      result.latencyMicros +=
          linked_->update(appIndex, key, op.valueSize, write.version);
      noteFill(key);
    } else {
      result.latencyMicros += linked_->invalidate(appIndex, key);
      fillTimes_.erase(key);
    }
  } else if (disagg_) {
    // Writer updates (or tombstones) the far slot and its own hot copy,
    // then fans the invalidation to its peers itself — DiFache-style, no
    // coordinator on the coherence path. Peers drop their hot copies via
    // the bus handler; the next read re-pulls from the far pool.
    if (config_.writeThroughCache) {
      if (!dynamicTopology() || disagg_->nodeUpFor(key)) {
        result.latencyMicros +=
            disagg_->farPut(app, key, op.valueSize, write.version);
      }
      disagg_->hotFill(appIndex, key, op.valueSize, write.version);
    } else {
      if (!dynamicTopology() || disagg_->nodeUpFor(key)) {
        result.latencyMicros += disagg_->farInvalidate(app, key);
      }
      disagg_->hotInvalidate(appIndex, key);
    }
    const std::uint64_t deliveredBefore = invalidationBus_->delivered();
    result.latencyMicros +=
        invalidationBus_->publish(app, key, write.version, appIndex);
    counters_.clientInvalidations +=
        invalidationBus_->delivered() - deliveredBefore;
  }

  if (membershipInstalled_ && membership_->anyWindowActive()) {
    // The write landed at the key's *new* owner; erase any copy the old
    // owner still holds so a later migration batch (or dual read) can't
    // resurrect the overwritten value.
    membership_->fenceWrite(appIndex, key);
  }

  result.latencyMicros += clientLeg(
      app, appIndex, rpc::putRequestWireSize(key.size()) + op.valueSize,
      rpc::putResponseWireSize());
  return result;
}

Deployment::OpResult Deployment::serveObject(const workload::Op& op) {
  obs::RequestScope scope(tracer_.get(),
                          op.isRead() ? "object.read" : "object.write");
  const std::uint64_t degradedBefore = counters_.degradedReads;
  const std::uint64_t shedBefore = counters_.sheddedRequests;
  OpResult result = op.isRead() ? serveObjectRead(op) : serveObjectWrite(op);
  if (op.isRead()) {
    scope.setOutcome(counters_.sheddedRequests > shedBefore
                         ? sim::SpanOutcome::kShed
                     : counters_.degradedReads > degradedBefore
                         ? sim::SpanOutcome::kDegraded
                     : result.cacheHit ? sim::SpanOutcome::kHit
                                       : sim::SpanOutcome::kMiss);
  }
  latency_.record(result.latencyMicros);
  if (faultsInstalled_ || overloadInstalled_ || monitor_) syncFaultCounters();
  if (membershipInstalled_) syncMembershipCounters();
  return result;
}

Deployment::OpResult Deployment::serveObjectRead(const workload::Op& op) {
  ++counters_.reads;
  OpResult result;
  objectKeyTo(op.keyIndex, keyScratch_);
  const std::string& key = keyScratch_;
  const std::size_t appIndex = appIndexFor(key);
  sim::Node& app = app_->node(appIndex);
  std::uint64_t servedBytes = op.valueSize;

  if (shouldShedRead(app)) {
    result.latencyMicros +=
        clientLeg(app, appIndex, rpc::getRequestWireSize(key.size()),
                  kShedResponseBytes,
                  /*countFailure=*/false);
    return result;
  }

  auto assembleAndFill = [&]() {
    const auto assembled = assembler_->getTable(app, op.keyIndex);
    counters_.statementsIssued += assembled.statementsIssued;
    result.latencyMicros += assembled.latencyMicros;
    if (!assembled.ok) return;
    servedBytes = assembled.object.approximateSize();
    tablePkTo(op.keyIndex, pkScratch_);
    const auto version = db_->peekRowVersion("tables", pkScratch_).value_or(0);
    if (remote_) {
      // The remote cache stores the *encoded* object; encoding it is real
      // work charged at the app before the cache RPC ships it.
      channel_->serializer().chargeSerialize(app, servedBytes);
      result.latencyMicros += remote_->put(app, key, servedBytes, version);
    } else if (linked_) {
      linked_->fill(key, servedBytes, version);
    } else if (disagg_) {
      // The far slot stores the *encoded* object (encoding is app work,
      // like the remote fill); the hot cache keeps the live in-process
      // graph alongside, so hot hits skip the decode entirely.
      channel_->serializer().chargeSerialize(app, servedBytes);
      if (!dynamicTopology() || disagg_->nodeUpFor(key)) {
        result.latencyMicros +=
            disagg_->farPut(app, key, servedBytes, version);
      }
      disagg_->hotFill(appIndex, key, servedBytes, version);
    }
  };

  switch (config_.architecture) {
    case Architecture::kBase:
      assembleAndFill();  // no cache to fill: plain assembly
      break;
    case Architecture::kRemote: {
      const auto hit = remote_->get(app, key);
      result.latencyMicros += hit.latencyMicros;
      if (hit.hit) {
        ++counters_.cacheHits;
        result.cacheHit = true;
        servedBytes = hit.size;
        // The app must decode the cached object before using it — the cost
        // a linked cache avoids. The channel already charged the transfer
        // deserialization; object graph materialization is app logic.
        app.charge(sim::CpuComponent::kAppLogic,
                   config_.calibration.app.composePerByteMicros *
                       static_cast<double>(hit.size));
      } else {
        if (hit.failed) ++counters_.degradedReads;
        ++counters_.cacheMisses;
        assembleAndFill();
      }
      break;
    }
    case Architecture::kLinked:
    case Architecture::kLinkedVersion: {
      const auto hit = linked_->get(appIndex, key);
      result.latencyMicros += hit.latencyMicros;
      if (hit.hit) {
        servedBytes = hit.size;
        bool consistent = true;
        if (config_.architecture == Architecture::kLinkedVersion) {
          tablePkTo(op.keyIndex, pkScratch_);
          const auto check = db_->versionCheckRow(app, "tables", pkScratch_);
          ++counters_.versionChecks;
          result.latencyMicros += check.latencyMicros;
          if (!check.found || check.version != hit.version) {
            ++counters_.versionMismatches;
            consistent = false;
            assembleAndFill();
          }
        }
        if (consistent) {
          ++counters_.cacheHits;
          result.cacheHit = true;
        } else {
          ++counters_.cacheMisses;
        }
      } else {
        ++counters_.cacheMisses;
        assembleAndFill();
      }
      break;
    }
    case Architecture::kDisaggregated: {
      const auto hot = disagg_->hotGet(appIndex, key);
      result.latencyMicros += hot.latencyMicros;
      if (hot.hit) {
        // The hot cache holds the live object graph: no decode, no wire.
        ++counters_.cacheHits;
        ++counters_.hotCacheHits;
        result.cacheHit = true;
        servedBytes = hot.size;
        break;
      }
      const std::size_t farIdx = disagg_->nodeForKey(key);
      cache::DisaggCache::GetResult far;
      bool contacted = false;
      if (replicaUsable(sim::TierKind::kFarMemory, farIdx)) {
        far = disagg_->farGetAt(app, farIdx, key);
        result.latencyMicros += far.latencyMicros;
        ++counters_.farMemoryReads;
        counters_.farMemoryBytes += far.wireBytes;
        contacted = true;
      }
      if (far.hit) {
        ++counters_.cacheHits;
        result.cacheHit = true;
        servedBytes = far.size;
        // The one-sided read pulled the encoded bytes; materializing the
        // object graph is app logic — the cost a hot (or linked) hit
        // avoids.
        app.charge(sim::CpuComponent::kAppLogic,
                   config_.calibration.app.composePerByteMicros *
                       static_cast<double>(far.size));
        disagg_->hotFill(appIndex, key, far.size, far.version);
      } else {
        if (!contacted || far.failed) ++counters_.degradedReads;
        ++counters_.cacheMisses;
        assembleAndFill();
      }
      break;
    }
  }

  result.latencyMicros +=
      clientLeg(app, appIndex, rpc::getRequestWireSize(key.size()),
                rpc::getResponseWireSize() + servedBytes);
  return result;
}

Deployment::OpResult Deployment::serveObjectWrite(const workload::Op& op) {
  ++counters_.writes;
  OpResult result;
  objectKeyTo(op.keyIndex, keyScratch_);
  const std::string& key = keyScratch_;
  const std::size_t appIndex = appIndexFor(key);
  sim::Node& app = app_->node(appIndex);

  result.latencyMicros += assembler_->updateTable(app, op.keyIndex);
  counters_.statementsIssued += 2;  // read + update statements

  tablePkTo(op.keyIndex, pkScratch_);
  const auto version = db_->peekRowVersion("tables", pkScratch_).value_or(0);
  if (remote_) {
    result.latencyMicros += remote_->invalidate(app, key);
  } else if (linked_) {
    if (config_.writeThroughCache &&
        linked_->shard(linked_->ownerOf(key)).peek(key) != nullptr) {
      result.latencyMicros +=
          linked_->update(appIndex, key, op.valueSize, version);
    } else {
      result.latencyMicros += linked_->invalidate(appIndex, key);
    }
  } else if (disagg_) {
    // Object writes invalidate rather than refresh (assembly is too
    // expensive to redo inline), then fan the drop to the peers.
    if (!dynamicTopology() || disagg_->nodeUpFor(key)) {
      result.latencyMicros += disagg_->farInvalidate(app, key);
    }
    disagg_->hotInvalidate(appIndex, key);
    const std::uint64_t deliveredBefore = invalidationBus_->delivered();
    result.latencyMicros +=
        invalidationBus_->publish(app, key, version, appIndex);
    counters_.clientInvalidations +=
        invalidationBus_->delivered() - deliveredBefore;
  }

  if (membershipInstalled_ && membership_->anyWindowActive()) {
    membership_->fenceWrite(appIndex, key);
  }

  result.latencyMicros +=
      clientLeg(app, appIndex, rpc::putRequestWireSize(key.size()) + 256,
                rpc::putResponseWireSize());
  return result;
}

void Deployment::installMembershipSchedule(MembershipSchedule schedule,
                                           HandoffConfig handoff) {
  membershipInstalled_ = true;
  // Ring tiers switch to explicit membership so joins/leaves move key
  // ownership instead of being invisible to placement. (The linked ring
  // already supports add/remove/drain natively.)
  if (remote_) remote_->enableMembership();
  if (disagg_) disagg_->enableMembership();
  if (linked_ && !leases_) {
    // Same fencing authority as the crash path: leases are revoked when a
    // planned transition moves ownership (see advanceMembership).
    leases_ = std::make_unique<consistency::LeaseManager>(*app_, kv_->node(0),
                                                          *channel_);
  }
  if (monitor_) {
    // Scale-out spares start absent: the monitor must not probe a node
    // that was never placed (it registers again at its join event).
    for (const MembershipEvent& e : schedule.absentAtStart()) {
      sim::Tier* tier = tierFor(e.tier);
      if (tier && e.nodeIndex < tier->size()) {
        monitor_->deregisterNode(tier->node(e.nodeIndex), e.tier,
                                 e.nodeIndex);
      }
    }
  }
  MembershipDirector::Hooks hooks;
  hooks.appTier = app_.get();
  hooks.remoteTier = remoteTier_.get();
  hooks.farTier = farTier_.get();
  hooks.linked = linked_.get();
  hooks.remote = remote_.get();
  hooks.disagg = disagg_.get();
  hooks.channel = channel_.get();
  membership_ = std::make_unique<MembershipDirector>(std::move(schedule),
                                                     handoff, hooks);
  // Events at/before the current clock fire now (installFaultSchedule's
  // contract, kept here for symmetry).
  if (membership_->hasWorkAt(simNowMicros_)) advanceMembership();
}

void Deployment::advanceMembership() {
  // The pump's CPU and wire charges must land inside an open request scope
  // or the traced-vs-metered conservation invariant would break at
  // sample 1 — background migration is real work the bill sees.
  obs::RequestScope scope(tracer_.get(), "membership.pump");
  membership_->advanceTo(simNowMicros_);
  for (const MembershipEvent& e : membership_->drainApplied()) {
    // Deployment-owned fencing. The director already moved the ring and
    // (warm) opened the transfer window; what's left is the machinery the
    // director deliberately can't see.
    const bool linkedRing = linked_ && e.tier == sim::TierKind::kAppServer;
    const bool remoteRing = remote_ && e.tier == sim::TierKind::kRemoteCache;
    const bool farRing = disagg_ && e.tier == sim::TierKind::kFarMemory;
    if (linkedRing || remoteRing || farRing) {
      // Ownership moved: in-flight writes carrying the old epoch are
      // fenced exactly as on the crash path (Fig. 8).
      ++ownershipEpoch_;
    }
    if (linkedRing && leases_) leases_->revoke(e.nodeIndex);
    if (monitor_) {
      sim::Tier* tier = tierFor(e.tier);
      if (tier && e.nodeIndex < tier->size()) {
        if (e.kind == MembershipKind::kLeave) {
          // Planned leave: drop probe/ejection state immediately — ghost
          // probes against a node that left on purpose would hold an
          // ejection slot and pollute detection-lag accounting.
          monitor_->deregisterNode(tier->node(e.nodeIndex), e.tier,
                                   e.nodeIndex);
        } else {
          monitor_->registerNode(tier->node(e.nodeIndex), e.tier,
                                 e.nodeIndex);
        }
      }
    }
  }
  syncMembershipCounters();
}

void Deployment::syncMembershipCounters() noexcept {
  const MembershipCounters& mc = membership_->counters();
  counters_.plannedJoins = mc.plannedJoins;
  counters_.plannedLeaves = mc.plannedLeaves;
  counters_.migratedKeys = mc.migratedKeys;
  counters_.migratedBytes = mc.migratedBytes;
  counters_.handoffFallbackReads = mc.handoffFallbackReads;
  counters_.epochFences = mc.epochFences;
}

void Deployment::installFaultSchedule(sim::FaultSchedule schedule) {
  faultSchedule_ = std::move(schedule);
  faultCursor_ = 0;
  faultsInstalled_ = true;
  channel_->enableFaults(config_.faultSeed, config_.rpcPolicy);
  if (linked_ && !leases_) {
    // The Fig. 8 fencing authority: a storage node grants ownership leases
    // over the ring partitions; revocation on reshard bumps the epoch.
    leases_ = std::make_unique<consistency::LeaseManager>(*app_, kv_->node(0),
                                                          *channel_);
  }
  applyPendingFaults();  // events at/before the current clock fire now
}

void Deployment::applyPendingFaults() {
  const auto& events = faultSchedule_.events();
  while (faultCursor_ < events.size() &&
         events[faultCursor_].atMicros <= simNowMicros_) {
    applyFault(events[faultCursor_]);
    ++faultCursor_;
  }
}

sim::Tier* Deployment::tierFor(sim::TierKind kind) noexcept {
  switch (kind) {
    case sim::TierKind::kClient:
      return client_.get();
    case sim::TierKind::kAppServer:
      return app_.get();
    case sim::TierKind::kRemoteCache:
      return remoteTier_.get();
    case sim::TierKind::kFarMemory:
      return farTier_.get();
    case sim::TierKind::kSqlFrontend:
      return sql_.get();
    case sim::TierKind::kKvStorage:
      return kv_.get();
    case sim::TierKind::kCount:
      break;
  }
  return nullptr;
}

void Deployment::setNodeUp(sim::TierKind kind, std::size_t index, bool up) {
  sim::Tier* tier = tierFor(kind);
  if (!tier || index >= tier->size()) return;
  tier->node(index).setUp(up);
}

void Deployment::applyFault(const sim::FaultEvent& event) {
  switch (event.kind) {
    case sim::FaultKind::kNodeCrash: {
      if (event.tier == sim::TierKind::kKvStorage) {
        // Raft-replicated storage: leadership fails over in lease-time, so
        // the tier keeps serving; the crash's lasting cost is the restarted
        // node's cold block cache.
        db_->dropBlockCache(event.nodeIndex);
        break;
      }
      setNodeUp(event.tier, event.nodeIndex, false);
      if (event.tier == sim::TierKind::kAppServer && linked_ &&
          linked_->hasServer(event.nodeIndex)) {
        // Reshard: the dead server's range moves to the survivors and any
        // lease it held is revoked, fencing its in-flight stale writes.
        linked_->removeServer(event.nodeIndex);
        ++ownershipEpoch_;
        if (leases_) leases_->revoke(event.nodeIndex);
      }
      if (event.tier == sim::TierKind::kRemoteCache && remote_) {
        remote_->dropShard(event.nodeIndex);  // pod memory is gone
      }
      if (event.tier == sim::TierKind::kFarMemory && disagg_) {
        // Pool memory dies with the node. Client-driven placement means no
        // coordinator can quiesce readers, so fence coarsely: bump the
        // ownership epoch and drop every hot copy — a stale hot hit for a
        // key whose far slot just vanished is now impossible.
        disagg_->dropShard(event.nodeIndex);
        disagg_->clearHotCaches();
        ++ownershipEpoch_;
      }
      break;
    }
    case sim::FaultKind::kNodeRestart: {
      if (event.tier == sim::TierKind::kKvStorage) break;  // never left
      setNodeUp(event.tier, event.nodeIndex, true);
      if (event.tier == sim::TierKind::kAppServer && linked_ &&
          !linked_->hasServer(event.nodeIndex)) {
        // Rejoin cold; ownership returns to the exact pre-crash partition
        // (vnode points depend only on the member index), and the epoch
        // bumps again — entries the survivors filled for this range are
        // now unreachable, which is the restart's hit-ratio cost.
        linked_->addServer(event.nodeIndex);
        ++ownershipEpoch_;
        if (leases_) leases_->revoke(event.nodeIndex);
      }
      break;
    }
    case sim::FaultKind::kTierOutage: {
      // Unreachable, not dead: state survives, so no reshard and no shard
      // drops — when the partition heals the caches are still warm.
      sim::Tier* tier = tierFor(event.tier);
      if (!tier) break;
      for (std::size_t i = 0; i < tier->size(); ++i) {
        tier->node(i).setUp(false);
      }
      break;
    }
    case sim::FaultKind::kTierRecover: {
      sim::Tier* tier = tierFor(event.tier);
      if (!tier) break;
      for (std::size_t i = 0; i < tier->size(); ++i) {
        tier->node(i).setUp(true);
      }
      break;
    }
    case sim::FaultKind::kDegradeBegin:
      network_.setDegradation(event.latencyFactor, event.dropProbability);
      break;
    case sim::FaultKind::kDegradeEnd:
      network_.clearDegradation();
      break;
    case sim::FaultKind::kNodeSlowBegin: {
      sim::Tier* tier = tierFor(event.tier);
      if (!tier || event.nodeIndex >= tier->size()) break;
      tier->node(event.nodeIndex).setSlowFactor(event.latencyFactor);
      ++activeSlowNodes_;
      network_.setAnySlowNodes(true);
      grayFaultStarts_.push_back(
          {event.tier, event.nodeIndex, event.atMicros});
      break;
    }
    case sim::FaultKind::kNodeSlowEnd: {
      sim::Tier* tier = tierFor(event.tier);
      if (!tier || event.nodeIndex >= tier->size()) break;
      tier->node(event.nodeIndex).setSlowFactor(1.0);
      if (activeSlowNodes_ > 0) --activeSlowNodes_;
      network_.setAnySlowNodes(activeSlowNodes_ > 0);
      break;
    }
    case sim::FaultKind::kPartialPartitionBegin:
      // Asymmetric: only the tier->dstTier direction drops; replies and
      // independent traffic the other way still flow.
      network_.cutLink(event.tier, event.dstTier);
      break;
    case sim::FaultKind::kPartialPartitionEnd:
      network_.healLink(event.tier, event.dstTier);
      break;
    case sim::FaultKind::kNodeFlakyBegin: {
      sim::Tier* tier = tierFor(event.tier);
      if (!tier || event.nodeIndex >= tier->size()) break;
      tier->node(event.nodeIndex).setFlakyProbability(event.dropProbability);
      grayFaultStarts_.push_back(
          {event.tier, event.nodeIndex, event.atMicros});
      break;
    }
    case sim::FaultKind::kNodeFlakyEnd: {
      sim::Tier* tier = tierFor(event.tier);
      if (!tier || event.nodeIndex >= tier->size()) break;
      tier->node(event.nodeIndex).setFlakyProbability(0.0);
      break;
    }
  }
}

void Deployment::syncFaultCounters() noexcept {
  const auto& fc = channel_->faultCounters();
  counters_.retries = fc.retries;
  counters_.timeouts = fc.timeouts;
  counters_.failedCalls = fc.failedCalls;
  counters_.wastedCpuMicros = fc.wastedCpuMicros;
  counters_.budgetExhausted = fc.budgetExhausted;
  counters_.queueTimeouts = fc.queueTimeouts;
  counters_.queueRejections = fc.queueRejections;
  counters_.breakerOpens = fc.breakerOpens;
  counters_.breakerShortCircuits = fc.breakerShortCircuits;
  counters_.hedgesSent = fc.hedgesSent;
  counters_.hedgeWins = fc.hedgeWins;
  if (monitor_) {
    // Consume new ejections incrementally so clearMeters() gives windowed
    // counts (the cursor survives the clear; the counters don't).
    const auto& ejections = monitor_->ejections();
    while (ejectionCursor_ < ejections.size()) {
      const auto& e = ejections[ejectionCursor_];
      ++counters_.ejectedNodes;
      // Detection lag = ejection time minus the latest injected gray-fault
      // onset on that node. Ejections with no matching injection (e.g. a
      // crashed pod racking up failures) contribute no lag.
      std::uint64_t onset = 0;
      bool found = false;
      for (const GrayFaultStart& s : grayFaultStarts_) {
        if (s.tier == e.tier && s.index == e.index &&
            s.atMicros <= e.atMicros && (!found || s.atMicros > onset)) {
          onset = s.atMicros;
          found = true;
        }
      }
      if (found) {
        counters_.detectionLagMicros +=
            static_cast<double>(e.atMicros - onset);
      }
      ++ejectionCursor_;
    }
  }
}

void Deployment::pruneInflight() {
  if (inflight_.size() < 4096) return;
  // dcache-lint: allow(unordered-iter, erase-only expiry of single-flight entries; each entry is judged against the sim clock alone, so visit order is immaterial)
  for (auto it = inflight_.begin(); it != inflight_.end();) {
    if (it->second <= simNowMicros_) {
      it = inflight_.erase(it);
    } else {
      ++it;
    }
  }
}

void Deployment::clearMeters() {
  client_->clearMeters();
  app_->clearMeters();
  if (remoteTier_) remoteTier_->clearMeters();
  if (farTier_) farTier_->clearMeters();
  sql_->clearMeters();
  kv_->clearMeters();
  counters_.clear();
  latency_.clear();
  network_.clearCounters();
  channel_->clearFaultCounters();
  // Same windowing contract as the channel's fault counters: a measurement
  // window opened after warmup must not inherit warmup-era churn counts.
  if (membership_) membership_->clearCounters();
  // Traced CPU and metered CPU must cover the same window, or the
  // conservation invariant (traced <= metered, equal at sample 1) breaks.
  if (tracer_) tracer_->clear();
}

std::vector<const sim::Tier*> Deployment::tiers() const {
  std::vector<const sim::Tier*> out{client_.get(), app_.get()};
  if (remoteTier_) out.push_back(remoteTier_.get());
  if (farTier_) out.push_back(farTier_.get());
  out.push_back(sql_.get());
  out.push_back(kv_.get());
  return out;
}

util::Bytes Deployment::totalCacheMemoryProvisioned() const {
  util::Bytes total;
  if (linked_) total += config_.appCachePerNode * double(app_->size());
  if (remote_) {
    total += config_.remoteCachePerNode * double(remoteTier_->size());
  }
  if (disagg_) {
    total += config_.farMemoryPerNode * double(farTier_->size());
    total += config_.hotCachePerNode * double(app_->size());
  }
  total += config_.blockCachePerNode * double(kv_->size());
  return total;
}

}  // namespace dcache::core
