#include "core/deployment.hpp"

#include <cstdio>

#include "rpc/wire_size.hpp"
#include "workload/workload.hpp"

namespace dcache::core {
namespace {

// The serve loops run once per simulated op; key formatting reuses the
// caller's scratch string so steady state allocates nothing.

void objectKeyTo(std::uint64_t tableId, std::string& out) {
  char buf[32];
  const int n = std::snprintf(buf, sizeof buf, "obj:tbl%llu",
                              static_cast<unsigned long long>(tableId));
  out.assign(buf, static_cast<std::size_t>(n));
}

void tablePkTo(std::uint64_t tableId, std::string& out) {
  char buf[24];
  const int n = std::snprintf(buf, sizeof buf, "%llu",
                              static_cast<unsigned long long>(tableId));
  out.assign(buf, static_cast<std::size_t>(n));
}

/// Triage cost of turning a request away at admission control: parse the
/// header, decide, answer. Far below a served request, deliberately not
/// zero — shedding at scale is itself CPU the bill sees.
constexpr double kShedTriageMicros = 0.5;
/// Encoded size of the "try again later" error response.
constexpr std::uint64_t kShedResponseBytes = 16;

}  // namespace

Deployment::Deployment(DeploymentConfig config) : config_(config) {
  const Calibration& cal = config_.calibration;
  network_ = sim::NetworkModel(cal.network);
  channel_ = std::make_unique<rpc::Channel>(
      network_, rpc::SerializationModel(cal.serialization));

  client_ = std::make_unique<sim::Tier>("client", sim::TierKind::kClient, 1);
  app_ = std::make_unique<sim::Tier>("app", sim::TierKind::kAppServer,
                                     config_.appServers);
  app_->provisionMemoryPerNode(config_.appBaseMemoryPerNode);
  sql_ = std::make_unique<sim::Tier>("sql", sim::TierKind::kSqlFrontend,
                                     config_.sqlFrontends);
  sql_->provisionMemoryPerNode(config_.sqlBaseMemoryPerNode);
  kv_ = std::make_unique<sim::Tier>("kv", sim::TierKind::kKvStorage,
                                    config_.kvStorageNodes);

  storage::Database::Config dbConfig;
  dbConfig.costs = cal.storage;
  dbConfig.raftCosts = cal.raft;
  dbConfig.blockCachePerNode = config_.blockCachePerNode;
  dbConfig.replicationFactor = config_.replicationFactor;
  db_ = std::make_unique<storage::Database>(*sql_, *kv_, *channel_, dbConfig);

  switch (config_.architecture) {
    case Architecture::kBase:
      break;
    case Architecture::kRemote:
      remoteTier_ = std::make_unique<sim::Tier>(
          "remote-cache", sim::TierKind::kRemoteCache,
          config_.remoteCacheNodes);
      remote_ = std::make_unique<cache::RemoteCache>(
          *remoteTier_, config_.remoteCachePerNode, *channel_,
          config_.evictionPolicy, cal.cacheOps);
      break;
    case Architecture::kLinked:
    case Architecture::kLinkedVersion:
      linked_ = std::make_unique<cache::LinkedCache>(
          *app_, config_.appCachePerNode, *channel_, config_.evictionPolicy,
          cal.cacheOps);
      break;
  }
  versionChecker_ = std::make_unique<consistency::VersionChecker>(*db_);
  if (config_.trace.enabled()) {
    tracer_ = std::make_unique<obs::Tracer>(config_.trace);
  }

  if (config_.overload.enabled()) {
    overloadInstalled_ = true;
    const OverloadConfig& ov = config_.overload;
    const auto limitTier = [&](sim::Tier* tier, double capacity) {
      if (!tier || capacity <= 0.0) return;
      for (std::size_t i = 0; i < tier->size(); ++i) {
        tier->node(i).queue().configure(
            {capacity, ov.maxQueueWaitMicros});
      }
    };
    limitTier(app_.get(), ov.appCapacityMicrosPerSec);
    limitTier(remoteTier_.get(), ov.remoteCacheCapacityMicrosPerSec);
    limitTier(sql_.get(), ov.sqlCapacityMicrosPerSec);
    limitTier(kv_.get(), ov.kvCapacityMicrosPerSec);
    // Queueing and the defenses ride the channel's policy path, so arm it
    // exactly the way installFaultSchedule does.
    channel_->enableFaults(config_.faultSeed, config_.rpcPolicy);
    if (ov.breakersEnabled) channel_->enableBreakers(ov.breaker);
    if (ov.hedgingEnabled) channel_->enableHedging(ov.hedge);
    if (ov.shed.enabled) shedder_ = std::make_unique<Shedder>(ov.shed);
  }
}

void Deployment::populateKv(const workload::Workload& workload) {
  db_->reserveKeys(workload.keyCount());
  std::string key;
  for (std::uint64_t k = 0; k < workload.keyCount(); ++k) {
    workload::keyNameTo(k, key);
    db_->loadValue(key, workload.valueSizeFor(k));
  }
}

void Deployment::populateCatalog(const workload::UcTraceWorkload& trace,
                                 richobject::CatalogStoreConfig storeConfig) {
  catalogStore_ = std::make_unique<richobject::CatalogStore>(*db_, trace,
                                                             storeConfig);
  catalogStore_->createSchemas();
  catalogStore_->populate();
  assembler_ = std::make_unique<richobject::Assembler>(
      *catalogStore_, config_.calibration.app);
}

std::size_t Deployment::appIndexFor(const std::string& key) {
  if (linked_ && config_.affinityRouting) {
    const std::size_t owner = linked_->ownerOf(key);
    if (!faultsInstalled_ || app_->node(owner).isUp()) {
      return owner;  // Slicer-style affinity
    }
    // The ring still names a down node (a tier outage doesn't reshard —
    // the shards' contents survive); spray over the live servers below.
  }
  if (!faultsInstalled_) {
    const std::size_t idx = rrApp_ % app_->size();
    ++rrApp_;
    return idx;
  }
  // Load-balancer health checks: round-robin over live servers only.
  for (std::size_t probe = 0; probe < app_->size(); ++probe) {
    const std::size_t idx = rrApp_ % app_->size();
    ++rrApp_;
    if (app_->node(idx).isUp()) return idx;
  }
  return rrApp_ % app_->size();  // whole tier down: calls will time out
}

double Deployment::clientLeg(sim::Node& app, std::size_t appIndex,
                             std::uint64_t requestBytes,
                             std::uint64_t responseBytes, bool countFailure) {
  sim::SpanGuard span("client.leg", sim::TierKind::kClient);
  if (overloadInstalled_ && config_.overload.hedgingEnabled) {
    // The app tier is the replicated tier every architecture has: any live
    // server can answer (a non-owner pays the forward/miss path — the
    // hedge trades that cost for the tail it cuts). Backup = next live
    // server after the primary.
    sim::Node* backup = nullptr;
    for (std::size_t probe = 1; probe < app_->size(); ++probe) {
      sim::Node& candidate = app_->node((appIndex + probe) % app_->size());
      if (candidate.isUp()) {
        backup = &candidate;
        break;
      }
    }
    const rpc::PolicyCallResult hedged = channel_->callHedged(
        client_->node(0), app, backup, requestBytes, responseBytes,
        config_.rpcPolicy, /*marshal=*/true, sim::CpuComponent::kClientComm);
    if (!hedged.ok && countFailure) ++counters_.failedOps;
    return hedged.latencyMicros;
  }
  const rpc::CallResult result =
      channel_->call(client_->node(0), app, requestBytes, responseBytes,
                     /*marshal=*/true, sim::CpuComponent::kClientComm);
  if (!result.ok && countFailure) ++counters_.failedOps;
  return result.latencyMicros;
}

bool Deployment::shouldShedRead(sim::Node& app) {
  if (!shedder_) return false;
  sim::NodeQueue& queue = app.queue();
  queue.drainTo(simNowMicros_);
  if (!shedder_->offer(queue.waitMicros(), simNowMicros_)) return false;
  ++counters_.sheddedRequests;
  // Turning a request away costs triage CPU, not a queue's worth of work —
  // which is the entire trade admission control makes.
  app.charge(sim::CpuComponent::kRequestPrep, kShedTriageMicros);
  return true;
}

double Deployment::readFromStorageAndFill(sim::Node& app,
                                          std::size_t appIndex,
                                          const std::string& key) {
  sim::SpanGuard span("storage.fill", sim::TierKind::kKvStorage);
  app.charge(sim::CpuComponent::kRequestPrep,
             config_.calibration.app.requestPrepMicros);
  if (faultsInstalled_) {
    // Single-flight: a miss whose storage read is already in flight joins
    // it instead of issuing a duplicate — a cold restart must not turn the
    // miss storm into a storage-QPS storm. The follower only pays the
    // remaining wait.
    const auto it = inflight_.find(key);
    if (it != inflight_.end() && it->second > simNowMicros_) {
      ++counters_.coalescedMisses;
      span.setOutcome(sim::SpanOutcome::kCoalesced);
      return static_cast<double>(it->second - simNowMicros_);
    }
  }
  const auto read = db_->readValue(app, key);
  ++counters_.storageReads;
  if (faultsInstalled_) {
    inflight_[key] =
        simNowMicros_ + static_cast<std::uint64_t>(read.latencyMicros);
    pruneInflight();
  }
  if (!read.found) return read.latencyMicros;
  if (remote_) {
    if (faultsInstalled_ && !remote_->nodeUpFor(key)) {
      // Circuit breaker: don't burn a timed-out retry budget filling a
      // pod known to be dead; the value simply isn't cached this round.
      return read.latencyMicros;
    }
    return read.latencyMicros +
           remote_->put(app, key, read.size, read.version);
  }
  if (linked_) {
    if (config_.affinityRouting) {
      linked_->fill(key, read.size, read.version);
    } else {
      // The receiving server read the value; shipping it to the owning
      // shard is a marshalled intra-tier transfer.
      linked_->update(appIndex, key, read.size, read.version);
    }
    noteFill(key);
  }
  return read.latencyMicros;
}

bool Deployment::ttlExpired(const std::string& key) const {
  if (config_.ttlFreshnessMicros == 0) return false;
  const auto it = fillTimes_.find(key);
  if (it == fillTimes_.end()) return false;  // age unknown: trust the entry
  return it->second + config_.ttlFreshnessMicros <= simNowMicros_;
}

void Deployment::noteFill(const std::string& key) {
  if (config_.ttlFreshnessMicros == 0) return;
  fillTimes_[key] = simNowMicros_;
  maybeSweepFillTimes();
}

void Deployment::maybeSweepFillTimes() {
  // Evictions don't report back here, so the map accretes entries for keys
  // the cache no longer holds; unchecked it grows with the keyspace, not
  // with cache occupancy. Dropping an entry for an un-cached key can't
  // change any decision (ttlExpired is only consulted after a cache *hit*),
  // so sweep dead entries whenever the map outgrows occupancy 2x. The
  // floor keeps the sweep amortized O(1) per fill for small runs.
  if (!linked_) return;
  if (fillTimes_.size() < 1024) return;
  if (fillTimes_.size() <= 2 * linked_->itemCount()) return;
  bool anyServer = false;
  for (std::size_t i = 0; i < app_->size(); ++i) {
    if (linked_->hasServer(i)) {
      anyServer = true;
      break;
    }
  }
  if (!anyServer) {  // ring empty mid-outage: everything is un-cached
    fillTimes_.clear();
    return;
  }
  // dcache-lint: allow(unordered-iter, erase-only sweep dropping fill times whose key left the resharded ring; per-entry predicate, order cannot leak into serving or accounting)
  for (auto it = fillTimes_.begin(); it != fillTimes_.end();) {
    const std::size_t owner = linked_->ownerOf(it->first);
    if (linked_->shard(owner).peek(it->first) == nullptr) {
      it = fillTimes_.erase(it);
    } else {
      ++it;
    }
  }
}

Deployment::OpResult Deployment::serve(const workload::Op& op) {
  workload::keyNameTo(op.keyIndex, keyScratch_);
  const std::string& key = keyScratch_;
  obs::RequestScope scope(tracer_.get(), op.isRead() ? "read" : "write");
  const std::uint64_t degradedBefore = counters_.degradedReads;
  const std::uint64_t shedBefore = counters_.sheddedRequests;
  OpResult result =
      op.isRead() ? serveRead(key, op) : serveWrite(key, op);
  if (op.isRead()) {
    scope.setOutcome(counters_.sheddedRequests > shedBefore
                         ? sim::SpanOutcome::kShed
                     : counters_.degradedReads > degradedBefore
                         ? sim::SpanOutcome::kDegraded
                     : result.cacheHit ? sim::SpanOutcome::kHit
                                       : sim::SpanOutcome::kMiss);
  }
  latency_.record(result.latencyMicros);
  if (faultsInstalled_ || overloadInstalled_) syncFaultCounters();
  return result;
}

Deployment::OpResult Deployment::serveRead(const std::string& key,
                                           const workload::Op& op) {
  ++counters_.reads;
  OpResult result;
  const std::size_t appIndex = appIndexFor(key);
  sim::Node& app = app_->node(appIndex);
  std::uint64_t servedBytes = op.valueSize;

  if (shouldShedRead(app)) {
    result.latencyMicros +=
        clientLeg(app, appIndex, rpc::getRequestWireSize(key.size()),
                  kShedResponseBytes,
                  /*countFailure=*/false);
    return result;
  }

  switch (config_.architecture) {
    case Architecture::kBase: {
      app.charge(sim::CpuComponent::kRequestPrep,
                 config_.calibration.app.requestPrepMicros);
      const auto read = db_->readValue(app, key);
      ++counters_.storageReads;
      servedBytes = read.size;
      result.latencyMicros += read.latencyMicros;
      break;
    }
    case Architecture::kRemote: {
      const auto hit = remote_->get(app, key);
      result.latencyMicros += hit.latencyMicros;
      if (hit.hit) {
        ++counters_.cacheHits;
        result.cacheHit = true;
        servedBytes = hit.size;
      } else {
        // A failed call (pod down / every retry dropped) degrades to the
        // storage path — availability is preserved, the cost moves.
        if (hit.failed) ++counters_.degradedReads;
        ++counters_.cacheMisses;
        result.latencyMicros += readFromStorageAndFill(app, appIndex, key);
      }
      break;
    }
    case Architecture::kLinked:
    case Architecture::kLinkedVersion: {
      const auto hit = linked_->get(appIndex, key);
      result.latencyMicros += hit.latencyMicros;
      if (hit.hit && ttlExpired(key)) {
        // Bounded-staleness mode: the entry outlived its freshness bound;
        // revalidate from storage (far cheaper than per-read version
        // checks, but only TTL-consistent).
        ++counters_.ttlExpirations;
        ++counters_.cacheMisses;
        result.latencyMicros += readFromStorageAndFill(app, appIndex, key);
        break;
      }
      if (hit.hit) {
        servedBytes = hit.size;
        bool consistent = true;
        if (config_.architecture == Architecture::kLinkedVersion) {
          // §5.5: every read validates the cached version against storage.
          const auto check = versionChecker_->check(app, key, hit.version);
          ++counters_.versionChecks;
          result.latencyMicros += check.latencyMicros;
          if (!check.consistent) {
            ++counters_.versionMismatches;
            consistent = false;
            result.latencyMicros +=
                readFromStorageAndFill(app, appIndex, key);
          }
        }
        if (consistent) {
          ++counters_.cacheHits;
          result.cacheHit = true;
        } else {
          ++counters_.cacheMisses;
        }
      } else {
        ++counters_.cacheMisses;
        result.latencyMicros += readFromStorageAndFill(app, appIndex, key);
      }
      break;
    }
  }

  result.latencyMicros +=
      clientLeg(app, appIndex, rpc::getRequestWireSize(key.size()),
                rpc::getResponseWireSize() + servedBytes);
  return result;
}

Deployment::OpResult Deployment::serveWrite(const std::string& key,
                                            const workload::Op& op) {
  ++counters_.writes;
  OpResult result;
  const std::size_t appIndex = appIndexFor(key);
  sim::Node& app = app_->node(appIndex);

  app.charge(sim::CpuComponent::kRequestPrep,
             config_.calibration.app.requestPrepMicros);
  const auto write = db_->writeValue(app, key, op.valueSize);
  result.latencyMicros += write.latencyMicros;

  if (remote_) {
    result.latencyMicros +=
        config_.writeThroughCache
            ? remote_->put(app, key, op.valueSize, write.version)
            : remote_->invalidate(app, key);
  } else if (linked_) {
    if (config_.writeThroughCache) {
      result.latencyMicros +=
          linked_->update(appIndex, key, op.valueSize, write.version);
      noteFill(key);
    } else {
      result.latencyMicros += linked_->invalidate(appIndex, key);
      fillTimes_.erase(key);
    }
  }

  result.latencyMicros += clientLeg(
      app, appIndex, rpc::putRequestWireSize(key.size()) + op.valueSize,
      rpc::putResponseWireSize());
  return result;
}

Deployment::OpResult Deployment::serveObject(const workload::Op& op) {
  obs::RequestScope scope(tracer_.get(),
                          op.isRead() ? "object.read" : "object.write");
  const std::uint64_t degradedBefore = counters_.degradedReads;
  const std::uint64_t shedBefore = counters_.sheddedRequests;
  OpResult result = op.isRead() ? serveObjectRead(op) : serveObjectWrite(op);
  if (op.isRead()) {
    scope.setOutcome(counters_.sheddedRequests > shedBefore
                         ? sim::SpanOutcome::kShed
                     : counters_.degradedReads > degradedBefore
                         ? sim::SpanOutcome::kDegraded
                     : result.cacheHit ? sim::SpanOutcome::kHit
                                       : sim::SpanOutcome::kMiss);
  }
  latency_.record(result.latencyMicros);
  if (faultsInstalled_ || overloadInstalled_) syncFaultCounters();
  return result;
}

Deployment::OpResult Deployment::serveObjectRead(const workload::Op& op) {
  ++counters_.reads;
  OpResult result;
  objectKeyTo(op.keyIndex, keyScratch_);
  const std::string& key = keyScratch_;
  const std::size_t appIndex = appIndexFor(key);
  sim::Node& app = app_->node(appIndex);
  std::uint64_t servedBytes = op.valueSize;

  if (shouldShedRead(app)) {
    result.latencyMicros +=
        clientLeg(app, appIndex, rpc::getRequestWireSize(key.size()),
                  kShedResponseBytes,
                  /*countFailure=*/false);
    return result;
  }

  auto assembleAndFill = [&]() {
    const auto assembled = assembler_->getTable(app, op.keyIndex);
    counters_.statementsIssued += assembled.statementsIssued;
    result.latencyMicros += assembled.latencyMicros;
    if (!assembled.ok) return;
    servedBytes = assembled.object.approximateSize();
    tablePkTo(op.keyIndex, pkScratch_);
    const auto version = db_->peekRowVersion("tables", pkScratch_).value_or(0);
    if (remote_) {
      // The remote cache stores the *encoded* object; encoding it is real
      // work charged at the app before the cache RPC ships it.
      channel_->serializer().chargeSerialize(app, servedBytes);
      result.latencyMicros += remote_->put(app, key, servedBytes, version);
    } else if (linked_) {
      linked_->fill(key, servedBytes, version);
    }
  };

  switch (config_.architecture) {
    case Architecture::kBase:
      assembleAndFill();  // no cache to fill: plain assembly
      break;
    case Architecture::kRemote: {
      const auto hit = remote_->get(app, key);
      result.latencyMicros += hit.latencyMicros;
      if (hit.hit) {
        ++counters_.cacheHits;
        result.cacheHit = true;
        servedBytes = hit.size;
        // The app must decode the cached object before using it — the cost
        // a linked cache avoids. The channel already charged the transfer
        // deserialization; object graph materialization is app logic.
        app.charge(sim::CpuComponent::kAppLogic,
                   config_.calibration.app.composePerByteMicros *
                       static_cast<double>(hit.size));
      } else {
        if (hit.failed) ++counters_.degradedReads;
        ++counters_.cacheMisses;
        assembleAndFill();
      }
      break;
    }
    case Architecture::kLinked:
    case Architecture::kLinkedVersion: {
      const auto hit = linked_->get(appIndex, key);
      result.latencyMicros += hit.latencyMicros;
      if (hit.hit) {
        servedBytes = hit.size;
        bool consistent = true;
        if (config_.architecture == Architecture::kLinkedVersion) {
          tablePkTo(op.keyIndex, pkScratch_);
          const auto check = db_->versionCheckRow(app, "tables", pkScratch_);
          ++counters_.versionChecks;
          result.latencyMicros += check.latencyMicros;
          if (!check.found || check.version != hit.version) {
            ++counters_.versionMismatches;
            consistent = false;
            assembleAndFill();
          }
        }
        if (consistent) {
          ++counters_.cacheHits;
          result.cacheHit = true;
        } else {
          ++counters_.cacheMisses;
        }
      } else {
        ++counters_.cacheMisses;
        assembleAndFill();
      }
      break;
    }
  }

  result.latencyMicros +=
      clientLeg(app, appIndex, rpc::getRequestWireSize(key.size()),
                rpc::getResponseWireSize() + servedBytes);
  return result;
}

Deployment::OpResult Deployment::serveObjectWrite(const workload::Op& op) {
  ++counters_.writes;
  OpResult result;
  objectKeyTo(op.keyIndex, keyScratch_);
  const std::string& key = keyScratch_;
  const std::size_t appIndex = appIndexFor(key);
  sim::Node& app = app_->node(appIndex);

  result.latencyMicros += assembler_->updateTable(app, op.keyIndex);
  counters_.statementsIssued += 2;  // read + update statements

  tablePkTo(op.keyIndex, pkScratch_);
  const auto version = db_->peekRowVersion("tables", pkScratch_).value_or(0);
  if (remote_) {
    result.latencyMicros += remote_->invalidate(app, key);
  } else if (linked_) {
    if (config_.writeThroughCache &&
        linked_->shard(linked_->ownerOf(key)).peek(key) != nullptr) {
      result.latencyMicros +=
          linked_->update(appIndex, key, op.valueSize, version);
    } else {
      result.latencyMicros += linked_->invalidate(appIndex, key);
    }
  }

  result.latencyMicros +=
      clientLeg(app, appIndex, rpc::putRequestWireSize(key.size()) + 256,
                rpc::putResponseWireSize());
  return result;
}

void Deployment::installFaultSchedule(sim::FaultSchedule schedule) {
  faultSchedule_ = std::move(schedule);
  faultCursor_ = 0;
  faultsInstalled_ = true;
  channel_->enableFaults(config_.faultSeed, config_.rpcPolicy);
  if (linked_ && !leases_) {
    // The Fig. 8 fencing authority: a storage node grants ownership leases
    // over the ring partitions; revocation on reshard bumps the epoch.
    leases_ = std::make_unique<consistency::LeaseManager>(*app_, kv_->node(0),
                                                          *channel_);
  }
  applyPendingFaults();  // events at/before the current clock fire now
}

void Deployment::applyPendingFaults() {
  const auto& events = faultSchedule_.events();
  while (faultCursor_ < events.size() &&
         events[faultCursor_].atMicros <= simNowMicros_) {
    applyFault(events[faultCursor_]);
    ++faultCursor_;
  }
}

sim::Tier* Deployment::tierFor(sim::TierKind kind) noexcept {
  switch (kind) {
    case sim::TierKind::kClient:
      return client_.get();
    case sim::TierKind::kAppServer:
      return app_.get();
    case sim::TierKind::kRemoteCache:
      return remoteTier_.get();
    case sim::TierKind::kSqlFrontend:
      return sql_.get();
    case sim::TierKind::kKvStorage:
      return kv_.get();
    case sim::TierKind::kCount:
      break;
  }
  return nullptr;
}

void Deployment::setNodeUp(sim::TierKind kind, std::size_t index, bool up) {
  sim::Tier* tier = tierFor(kind);
  if (!tier || index >= tier->size()) return;
  tier->node(index).setUp(up);
}

void Deployment::applyFault(const sim::FaultEvent& event) {
  switch (event.kind) {
    case sim::FaultKind::kNodeCrash: {
      if (event.tier == sim::TierKind::kKvStorage) {
        // Raft-replicated storage: leadership fails over in lease-time, so
        // the tier keeps serving; the crash's lasting cost is the restarted
        // node's cold block cache.
        db_->dropBlockCache(event.nodeIndex);
        break;
      }
      setNodeUp(event.tier, event.nodeIndex, false);
      if (event.tier == sim::TierKind::kAppServer && linked_ &&
          linked_->hasServer(event.nodeIndex)) {
        // Reshard: the dead server's range moves to the survivors and any
        // lease it held is revoked, fencing its in-flight stale writes.
        linked_->removeServer(event.nodeIndex);
        ++ownershipEpoch_;
        if (leases_) leases_->revoke(event.nodeIndex);
      }
      if (event.tier == sim::TierKind::kRemoteCache && remote_) {
        remote_->dropShard(event.nodeIndex);  // pod memory is gone
      }
      break;
    }
    case sim::FaultKind::kNodeRestart: {
      if (event.tier == sim::TierKind::kKvStorage) break;  // never left
      setNodeUp(event.tier, event.nodeIndex, true);
      if (event.tier == sim::TierKind::kAppServer && linked_ &&
          !linked_->hasServer(event.nodeIndex)) {
        // Rejoin cold; ownership returns to the exact pre-crash partition
        // (vnode points depend only on the member index), and the epoch
        // bumps again — entries the survivors filled for this range are
        // now unreachable, which is the restart's hit-ratio cost.
        linked_->addServer(event.nodeIndex);
        ++ownershipEpoch_;
        if (leases_) leases_->revoke(event.nodeIndex);
      }
      break;
    }
    case sim::FaultKind::kTierOutage: {
      // Unreachable, not dead: state survives, so no reshard and no shard
      // drops — when the partition heals the caches are still warm.
      sim::Tier* tier = tierFor(event.tier);
      if (!tier) break;
      for (std::size_t i = 0; i < tier->size(); ++i) {
        tier->node(i).setUp(false);
      }
      break;
    }
    case sim::FaultKind::kTierRecover: {
      sim::Tier* tier = tierFor(event.tier);
      if (!tier) break;
      for (std::size_t i = 0; i < tier->size(); ++i) {
        tier->node(i).setUp(true);
      }
      break;
    }
    case sim::FaultKind::kDegradeBegin:
      network_.setDegradation(event.latencyFactor, event.dropProbability);
      break;
    case sim::FaultKind::kDegradeEnd:
      network_.clearDegradation();
      break;
  }
}

void Deployment::syncFaultCounters() noexcept {
  const auto& fc = channel_->faultCounters();
  counters_.retries = fc.retries;
  counters_.timeouts = fc.timeouts;
  counters_.failedCalls = fc.failedCalls;
  counters_.wastedCpuMicros = fc.wastedCpuMicros;
  counters_.budgetExhausted = fc.budgetExhausted;
  counters_.queueTimeouts = fc.queueTimeouts;
  counters_.queueRejections = fc.queueRejections;
  counters_.breakerOpens = fc.breakerOpens;
  counters_.breakerShortCircuits = fc.breakerShortCircuits;
  counters_.hedgesSent = fc.hedgesSent;
  counters_.hedgeWins = fc.hedgeWins;
}

void Deployment::pruneInflight() {
  if (inflight_.size() < 4096) return;
  // dcache-lint: allow(unordered-iter, erase-only expiry of single-flight entries; each entry is judged against the sim clock alone, so visit order is immaterial)
  for (auto it = inflight_.begin(); it != inflight_.end();) {
    if (it->second <= simNowMicros_) {
      it = inflight_.erase(it);
    } else {
      ++it;
    }
  }
}

void Deployment::clearMeters() {
  client_->clearMeters();
  app_->clearMeters();
  if (remoteTier_) remoteTier_->clearMeters();
  sql_->clearMeters();
  kv_->clearMeters();
  counters_.clear();
  latency_.clear();
  network_.clearCounters();
  channel_->clearFaultCounters();
  // Traced CPU and metered CPU must cover the same window, or the
  // conservation invariant (traced <= metered, equal at sample 1) breaks.
  if (tracer_) tracer_->clear();
}

std::vector<const sim::Tier*> Deployment::tiers() const {
  std::vector<const sim::Tier*> out{client_.get(), app_.get()};
  if (remoteTier_) out.push_back(remoteTier_.get());
  out.push_back(sql_.get());
  out.push_back(kv_.get());
  return out;
}

util::Bytes Deployment::totalCacheMemoryProvisioned() const {
  util::Bytes total;
  if (linked_) total += config_.appCachePerNode * double(app_->size());
  if (remote_) {
    total += config_.remoteCachePerNode * double(remoteTier_->size());
  }
  total += config_.blockCachePerNode * double(kv_->size());
  return total;
}

}  // namespace dcache::core
