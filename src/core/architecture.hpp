// The five deployment shapes under study (Fig. 1 plus the
// memory-disaggregated contender from the Ditto/DiFache line of work).
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

namespace dcache::core {

enum class Architecture : std::uint8_t {
  kBase,           // storage-layer cache only (Fig. 1a)
  kRemote,         // + remote lookaside cache tier (Fig. 1b)
  kLinked,         // + in-process sharded cache (Fig. 1c)
  kLinkedVersion,  // linked + per-read version check (Fig. 1d)
  kDisaggregated,  // far-memory pool via one-sided reads + hot caches
};

inline constexpr Architecture kAllArchitectures[] = {
    Architecture::kBase, Architecture::kRemote, Architecture::kLinked,
    Architecture::kLinkedVersion, Architecture::kDisaggregated};

[[nodiscard]] std::string_view architectureName(Architecture arch) noexcept;
[[nodiscard]] std::optional<Architecture> parseArchitecture(
    std::string_view name) noexcept;

}  // namespace dcache::core
