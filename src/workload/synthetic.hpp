// Synthetic workload from §5.2: 100K keys, Zipfian(α = 1.2) popularity,
// read ratio swept 50–99 %, value size swept 1 KB–1 MB. The Figure 4
// benches build one of these per sweep point.
#pragma once

#include "workload/size_dist.hpp"
#include "workload/workload.hpp"
#include "workload/zipf.hpp"

namespace dcache::workload {

struct SyntheticConfig {
  std::uint64_t numKeys = 100000;
  double alpha = 1.2;
  double readRatio = 0.93;
  std::uint64_t valueSize = 4096;
  std::uint64_t seed = 42;
};

class SyntheticWorkload final : public Workload {
 public:
  explicit SyntheticWorkload(SyntheticConfig config);

  [[nodiscard]] Op next() override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::uint64_t keyCount() const override {
    return config_.numKeys;
  }
  [[nodiscard]] std::uint64_t valueSizeFor(std::uint64_t) const override {
    return config_.valueSize;
  }
  [[nodiscard]] double readFraction() const override {
    return config_.readRatio;
  }
  [[nodiscard]] const SyntheticConfig& config() const noexcept {
    return config_;
  }

 private:
  SyntheticConfig config_;
  ZipfianGenerator zipf_;
  util::Pcg32 rng_;
};

}  // namespace dcache::workload
