// Unity-Catalog-style workload (§5.2, Fig. 3): read-heavy (≈ 93 %),
// ~40K QPS of catalog operations dominated by getTable. Object sizes are
// lognormal with a 23 KB median and a Pareto tail into the MBs; popularity
// is Zipfian over tables. Reads are emitted as kObjectRead so the rich-
// object experiment (Fig. 7) can expand each into its 8-statement SQL plan,
// while the UC-KV variant (Fig. 5a) treats the same stream as single-row
// denormalized lookups.
#pragma once

#include "workload/size_dist.hpp"
#include "workload/workload.hpp"
#include "workload/zipf.hpp"

namespace dcache::workload {

struct UcTraceConfig {
  std::uint64_t numTables = 50000;
  double alpha = 1.05;
  double readRatio = 0.93;
  double medianValueBytes = 23.0 * 1024;
  double sigma = 1.1;
  double tailProbability = 0.02;          // large objects at the tail
  double tailStartBytes = 256.0 * 1024;   // Pareto tail from 256 KB…
  double tailShape = 1.1;                 // …reaching multi-MB objects
  std::uint64_t maxValueBytes = 8ULL * 1024 * 1024;
  std::uint64_t seed = 11;
};

class UcTraceWorkload final : public Workload {
 public:
  explicit UcTraceWorkload(UcTraceConfig config);

  [[nodiscard]] Op next() override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::uint64_t keyCount() const override {
    return config_.numTables;
  }
  [[nodiscard]] std::uint64_t valueSizeFor(std::uint64_t keyIndex) const override;
  [[nodiscard]] double readFraction() const override {
    return config_.readRatio;
  }
  [[nodiscard]] const UcTraceConfig& config() const noexcept {
    return config_;
  }

  /// Number of SQL statements a getTable for this table expands to in the
  /// rich-object experiment (2–8, deterministic per table — tables with
  /// more metadata need more queries, see richobject::Assembler).
  [[nodiscard]] std::size_t statementsFor(std::uint64_t keyIndex) const;

 private:
  UcTraceConfig config_;
  ZipfianGenerator zipf_;
  LogNormalParetoTailSize sizes_;
  util::Pcg32 rng_;
};

}  // namespace dcache::workload
