// Surge workload for the overload bench: a SyntheticWorkload wrapped in a
// phase schedule. Each phase scales the offered arrival rate (the bench
// paces the sim clock by the phase's QPS multiplier) and can concentrate a
// fraction of reads onto one hot key — the single-key Zipf spike of a
// celebrity object or a viral cache entry, the skew regime load-balancing
// caches are built for. Phases with no hot-key fraction draw nothing from
// the redirection RNG, so a schedule of all-steady phases emits the exact
// byte-identical op stream of the underlying SyntheticWorkload.
#pragma once

#include <string>
#include <vector>

#include "workload/synthetic.hpp"

namespace dcache::workload {

struct SurgePhase {
  std::uint64_t ops = 0;        // phase length in operations
  double qpsMultiplier = 1.0;   // arrival-rate scale vs the steady baseline
  double hotKeyFraction = 0.0;  // fraction of reads redirected to hotKey
  std::uint64_t hotKey = 0;
  const char* name = "steady";
};

class SurgeWorkload final : public Workload {
 public:
  SurgeWorkload(SyntheticConfig base, std::vector<SurgePhase> phases,
                std::uint64_t redirectSeed);

  [[nodiscard]] Op next() override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::uint64_t keyCount() const override {
    return base_.keyCount();
  }
  [[nodiscard]] std::uint64_t valueSizeFor(
      std::uint64_t keyIndex) const override {
    return base_.valueSizeFor(keyIndex);
  }
  [[nodiscard]] double readFraction() const override {
    return base_.readFraction();
  }

  /// Phase governing op number `opIndex` (ops past the schedule get the
  /// last phase; an empty schedule acts as one endless steady phase).
  [[nodiscard]] const SurgePhase& phaseAt(std::uint64_t opIndex) const;
  /// Phase the next() call will draw from.
  [[nodiscard]] const SurgePhase& currentPhase() const {
    return phaseAt(opIndex_);
  }
  [[nodiscard]] std::uint64_t opsEmitted() const noexcept { return opIndex_; }

 private:
  SyntheticWorkload base_;
  std::vector<SurgePhase> phases_;
  std::vector<std::uint64_t> phaseEnds_;  // cumulative op boundaries
  std::uint64_t opIndex_ = 0;
  util::Pcg32 redirectRng_;
};

}  // namespace dcache::workload
