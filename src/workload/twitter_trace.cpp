#include "workload/twitter_trace.hpp"

#include <cstdio>

namespace dcache::workload {

TwitterTraceWorkload::TwitterTraceWorkload(TwitterTraceConfig config)
    : config_(config),
      zipf_(config.numKeys, config.alpha),
      sizes_(config.medianValueBytes, config.sigma, 1, config.maxValueBytes),
      rng_(config.seed, 4) {}

std::uint64_t TwitterTraceWorkload::valueSizeFor(std::uint64_t keyIndex) const {
  return sizes_.sizeForKey(keyIndex);
}

Op TwitterTraceWorkload::next() {
  Op op;
  op.keyIndex = zipf_.nextKey(rng_);
  op.type = util::uniform01(rng_) < config_.readRatio ? OpType::kRead
                                                      : OpType::kWrite;
  op.valueSize = valueSizeFor(op.keyIndex);
  return op;
}

std::string TwitterTraceWorkload::name() const {
  char buf[96];
  std::snprintf(buf, sizeof buf, "twitter(n=%llu,a=%.2f,r=%.2f,med=%.0fB)",
                static_cast<unsigned long long>(config_.numKeys),
                config_.alpha, config_.readRatio, config_.medianValueBytes);
  return buf;
}

}  // namespace dcache::workload
