// Zipf(α) rank sampler using Hörmann's rejection-inversion method —
// O(1) per sample for any α ≥ 0 (including α = 1), no per-rank tables, so
// 100K-key synthetic workloads sample in nanoseconds. Ranks are 1-based;
// rank 1 is the hottest. A multiplicative permutation optionally scrambles
// rank → key index so the hot set spreads uniformly over the keyspace (and
// therefore over cache/storage shards), as in YCSB.
#pragma once

#include <cstdint>

#include "util/rng.hpp"

namespace dcache::workload {

class ZipfianGenerator {
 public:
  ZipfianGenerator(std::uint64_t numKeys, double alpha);

  /// Draw a rank in [1, numKeys], P(k) ∝ k^-alpha.
  [[nodiscard]] std::uint64_t nextRank(util::Pcg32& rng) const;

  /// Draw a scrambled key index in [0, numKeys).
  [[nodiscard]] std::uint64_t nextKey(util::Pcg32& rng) const {
    return permuteRank(nextRank(rng));
  }

  /// Bijective rank -> key-index mapping (1-based rank to 0-based index).
  [[nodiscard]] std::uint64_t permuteRank(std::uint64_t rank) const noexcept;

  [[nodiscard]] std::uint64_t numKeys() const noexcept { return n_; }
  [[nodiscard]] double alpha() const noexcept { return alpha_; }
  /// Scramble multiplier in effect (already reduced mod numKeys); always
  /// coprime to numKeys so permuteRank is a bijection.
  [[nodiscard]] std::uint64_t scrambleMultiplier() const noexcept {
    return scramble_;
  }

 private:
  [[nodiscard]] double h(double x) const;
  [[nodiscard]] double hIntegral(double x) const;
  [[nodiscard]] double hIntegralInverse(double x) const;

  std::uint64_t n_;
  double alpha_;
  std::uint64_t scramble_;
  double hIntegralX1_;
  double hIntegralN_;
  double s_;
};

}  // namespace dcache::workload
