#include "workload/surge.hpp"

namespace dcache::workload {

namespace {
const SurgePhase kSteadyForever{};
}  // namespace

SurgeWorkload::SurgeWorkload(SyntheticConfig base,
                             std::vector<SurgePhase> phases,
                             std::uint64_t redirectSeed)
    : base_(base),
      phases_(std::move(phases)),
      redirectRng_(redirectSeed, 7) {
  std::uint64_t end = 0;
  phaseEnds_.reserve(phases_.size());
  for (const SurgePhase& phase : phases_) {
    end += phase.ops;
    phaseEnds_.push_back(end);
  }
}

const SurgePhase& SurgeWorkload::phaseAt(std::uint64_t opIndex) const {
  if (phases_.empty()) return kSteadyForever;
  for (std::size_t i = 0; i < phaseEnds_.size(); ++i) {
    if (opIndex < phaseEnds_[i]) return phases_[i];
  }
  return phases_.back();
}

Op SurgeWorkload::next() {
  const SurgePhase& phase = phaseAt(opIndex_);
  ++opIndex_;
  Op op = base_.next();
  // The redirect RNG is only consumed inside hot-key phases, so a schedule
  // without them replays the base workload byte-for-byte.
  if (phase.hotKeyFraction > 0.0 && op.isRead() &&
      util::uniform01(redirectRng_) < phase.hotKeyFraction) {
    op.keyIndex = phase.hotKey;
    op.valueSize = base_.valueSizeFor(phase.hotKey);
  }
  return op;
}

std::string SurgeWorkload::name() const {
  return "surge[" + base_.name() + "," + std::to_string(phases_.size()) +
         " phases]";
}

}  // namespace dcache::workload
