// Meta/CacheLib-style key-value workload (§5.2): ~30 % writes, tiny values
// with a median around 10 bytes, heavy popularity skew. Parameters follow
// the published characterization of the open-sourced kvcache traces (Berg
// et al., OSDI '20). A trace-file constructor accepts real CacheLib CSV
// traces when available; by default the generator synthesizes the same
// distribution — the substitution recorded in DESIGN.md.
#pragma once

#include <vector>

#include "workload/size_dist.hpp"
#include "workload/trace_io.hpp"
#include "workload/workload.hpp"
#include "workload/zipf.hpp"

namespace dcache::workload {

struct MetaTraceConfig {
  std::uint64_t numKeys = 500000;
  double alpha = 1.1;        // kvcache traces are heavily skewed (hot keys dominate)
  double readRatio = 0.70;   // "30% writes"
  double medianValueBytes = 10.0;
  double sigma = 1.4;        // long but small-valued tail
  std::uint64_t maxValueBytes = 16 * 1024;
  std::uint64_t seed = 7;
};

class MetaTraceWorkload final : public Workload {
 public:
  explicit MetaTraceWorkload(MetaTraceConfig config);

  /// Replay a pre-recorded trace (e.g. converted CacheLib CSV) instead of
  /// synthesizing. Records loop when exhausted.
  MetaTraceWorkload(MetaTraceConfig config, std::vector<TraceRecord> records);

  [[nodiscard]] Op next() override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::uint64_t keyCount() const override {
    return config_.numKeys;
  }
  [[nodiscard]] std::uint64_t valueSizeFor(std::uint64_t keyIndex) const override;
  [[nodiscard]] double readFraction() const override {
    return config_.readRatio;
  }

 private:
  MetaTraceConfig config_;
  ZipfianGenerator zipf_;
  LogNormalSize sizes_;
  util::Pcg32 rng_;
  std::vector<TraceRecord> replay_;
  std::size_t replayPos_ = 0;
};

}  // namespace dcache::workload
