// Workload abstraction: a deterministic, seeded stream of operations. Each
// concrete workload reproduces one of the paper's traffic sources (§5.2):
// the synthetic Zipf sweep, the Meta key-value trace, the Unity Catalog
// trace, plus a Twitter-style trace as an extension.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "util/rng.hpp"

namespace dcache::workload {

enum class OpType : std::uint8_t {
  kRead,       // point read (KV get / denormalized row)
  kWrite,      // update of one key/object
  kObjectRead  // rich-object read (fans out into multiple SQL statements)
};

struct Op {
  OpType type = OpType::kRead;
  std::uint64_t keyIndex = 0;
  std::uint64_t valueSize = 0;  // logical object size for this key

  [[nodiscard]] bool isRead() const noexcept { return type != OpType::kWrite; }
};

/// Canonical key string for a key index ("k000000042"): fixed width so key
/// bytes on the wire don't vary with the index.
[[nodiscard]] std::string keyName(std::uint64_t keyIndex);

/// keyName without the return-value allocation: formats into `out`,
/// reusing its capacity. The serve hot path calls this once per op.
void keyNameTo(std::uint64_t keyIndex, std::string& out);

class Workload {
 public:
  virtual ~Workload() = default;

  /// Next operation in the stream (deterministic given the seed).
  [[nodiscard]] virtual Op next() = 0;

  [[nodiscard]] virtual std::string name() const = 0;
  [[nodiscard]] virtual std::uint64_t keyCount() const = 0;
  /// Deterministic per-key object size.
  [[nodiscard]] virtual std::uint64_t valueSizeFor(std::uint64_t keyIndex) const = 0;
  /// Configured fraction of reads (the target, not the sample estimate).
  [[nodiscard]] virtual double readFraction() const = 0;

  /// Mean object size estimated from the per-key distribution (sampled).
  [[nodiscard]] double meanValueSize(std::uint64_t sampleKeys = 2000) const;
};

}  // namespace dcache::workload
