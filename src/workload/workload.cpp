#include "workload/workload.hpp"

#include <algorithm>
#include <cstdio>

namespace dcache::workload {

std::string keyName(std::uint64_t keyIndex) {
  std::string out;
  keyNameTo(keyIndex, out);
  return out;
}

void keyNameTo(std::uint64_t keyIndex, std::string& out) {
  // Hand-rolled "k%09llu": the serve loop formats one key per simulated op,
  // where snprintf's format parsing is measurable.
  char buf[24];
  char* const end = buf + sizeof buf;
  char* p = end;
  do {
    *--p = static_cast<char>('0' + keyIndex % 10);
    keyIndex /= 10;
  } while (keyIndex != 0);
  while (end - p < 9) *--p = '0';
  *--p = 'k';
  out.assign(p, static_cast<std::size_t>(end - p));
}

double Workload::meanValueSize(std::uint64_t sampleKeys) const {
  const std::uint64_t n = std::min(sampleKeys, keyCount());
  if (n == 0) return 0.0;
  double total = 0.0;
  // Stride across the keyspace so the sample is not biased to low indexes.
  const std::uint64_t stride = std::max<std::uint64_t>(1, keyCount() / n);
  std::uint64_t counted = 0;
  for (std::uint64_t k = 0; k < keyCount() && counted < n; k += stride) {
    total += static_cast<double>(valueSizeFor(k));
    ++counted;
  }
  return counted ? total / static_cast<double>(counted) : 0.0;
}

}  // namespace dcache::workload
