#include "workload/workload.hpp"

#include <algorithm>
#include <cstdio>

namespace dcache::workload {

std::string keyName(std::uint64_t keyIndex) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "k%09llu",
                static_cast<unsigned long long>(keyIndex));
  return buf;
}

double Workload::meanValueSize(std::uint64_t sampleKeys) const {
  const std::uint64_t n = std::min(sampleKeys, keyCount());
  if (n == 0) return 0.0;
  double total = 0.0;
  // Stride across the keyspace so the sample is not biased to low indexes.
  const std::uint64_t stride = std::max<std::uint64_t>(1, keyCount() / n);
  std::uint64_t counted = 0;
  for (std::uint64_t k = 0; k < keyCount() && counted < n; k += stride) {
    total += static_cast<double>(valueSizeFor(k));
    ++counted;
  }
  return counted ? total / static_cast<double>(counted) : 0.0;
}

}  // namespace dcache::workload
