#include "workload/trace_io.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "rpc/wire.hpp"

namespace dcache::workload {
namespace {

constexpr std::string_view kBinaryMagic = "DCTR1";

}  // namespace

bool writeCsvTrace(const std::string& path,
                   const std::vector<TraceRecord>& records) {
  std::ofstream out(path);
  if (!out) return false;
  out << "op,key,size\n";
  for (const TraceRecord& rec : records) {
    out << (rec.write ? "set" : "get") << ',' << rec.keyIndex << ','
        << rec.valueSize << '\n';
  }
  return static_cast<bool>(out);
}

std::optional<std::vector<TraceRecord>> readCsvTrace(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::vector<TraceRecord> records;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line.rfind("op,", 0) == 0) continue;  // header/blank
    std::istringstream ls(line);
    std::string op;
    std::string key;
    std::string size;
    if (!std::getline(ls, op, ',') || !std::getline(ls, key, ',') ||
        !std::getline(ls, size, ',')) {
      return std::nullopt;
    }
    TraceRecord rec;
    rec.write = op == "set" || op == "SET" || op == "put";
    rec.keyIndex = std::strtoull(key.c_str(), nullptr, 10);
    rec.valueSize = std::strtoull(size.c_str(), nullptr, 10);
    records.push_back(rec);
  }
  return records;
}

std::string encodeTrace(const std::vector<TraceRecord>& records) {
  rpc::WireEncoder enc;
  for (const TraceRecord& rec : records) {
    enc.writeVarint(rec.write ? 1 : 0);
    enc.writeVarint(rec.keyIndex);
    enc.writeVarint(rec.valueSize);
  }
  std::string out(kBinaryMagic);
  out.append(enc.view());
  return out;
}

std::optional<std::vector<TraceRecord>> decodeTrace(std::string_view bytes) {
  if (bytes.substr(0, kBinaryMagic.size()) != kBinaryMagic) {
    return std::nullopt;
  }
  rpc::WireDecoder dec(bytes.substr(kBinaryMagic.size()));
  std::vector<TraceRecord> records;
  while (!dec.done()) {
    const auto op = dec.readVarint();
    const auto key = dec.readVarint();
    const auto size = dec.readVarint();
    if (!op || !key || !size) return std::nullopt;
    records.push_back(TraceRecord{*op != 0, *key, *size});
  }
  return records;
}

bool writeBinaryTrace(const std::string& path,
                      const std::vector<TraceRecord>& records) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  const std::string encoded = encodeTrace(records);
  out.write(encoded.data(), static_cast<std::streamsize>(encoded.size()));
  return static_cast<bool>(out);
}

std::optional<std::vector<TraceRecord>> readBinaryTrace(
    const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return decodeTrace(buffer.str());
}

}  // namespace dcache::workload
