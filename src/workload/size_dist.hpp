// Value-size distributions. Sizes are a first-order input to the cost
// study (they drive serialization, replication and disk bytes), so each
// workload declares its distribution explicitly:
//   Fixed         — synthetic sweeps (1KB … 1MB)
//   LogNormal     — Meta-style small objects (median ≈ 10 B)
//   LogNormalParetoTail — Unity-Catalog-style objects (median ≈ 23 KB with
//                   MB-scale tail, Fig. 3a)
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "util/rng.hpp"

namespace dcache::workload {

class SizeDistribution {
 public:
  virtual ~SizeDistribution() = default;
  [[nodiscard]] virtual std::uint64_t sample(util::Pcg32& rng) const = 0;
  [[nodiscard]] virtual std::string describe() const = 0;

  /// Deterministic size for a key: every access to a key sees one size, as
  /// for a real stored object. Derived by sampling from a key-seeded rng.
  [[nodiscard]] std::uint64_t sizeForKey(std::uint64_t keyIndex) const;
};

class FixedSize final : public SizeDistribution {
 public:
  explicit FixedSize(std::uint64_t bytes) : bytes_(bytes) {}
  [[nodiscard]] std::uint64_t sample(util::Pcg32&) const override {
    return bytes_;
  }
  [[nodiscard]] std::string describe() const override;

 private:
  std::uint64_t bytes_;
};

class LogNormalSize final : public SizeDistribution {
 public:
  /// `medianBytes` sets mu = ln(median); sigma controls spread. Samples are
  /// clamped to [minBytes, maxBytes].
  LogNormalSize(double medianBytes, double sigma, std::uint64_t minBytes = 1,
                std::uint64_t maxBytes = UINT64_MAX);
  [[nodiscard]] std::uint64_t sample(util::Pcg32& rng) const override;
  [[nodiscard]] std::string describe() const override;

 private:
  double mu_;
  double sigma_;
  std::uint64_t min_;
  std::uint64_t max_;
};

class LogNormalParetoTailSize final : public SizeDistribution {
 public:
  /// Lognormal body; with probability `tailProbability` the sample instead
  /// comes from a Pareto tail starting at `tailStartBytes`.
  LogNormalParetoTailSize(double medianBytes, double sigma,
                          double tailProbability, double tailStartBytes,
                          double tailShape, std::uint64_t maxBytes);
  [[nodiscard]] std::uint64_t sample(util::Pcg32& rng) const override;
  [[nodiscard]] std::string describe() const override;

 private:
  LogNormalSize body_;
  double tailProbability_;
  double tailStart_;
  double tailShape_;
  std::uint64_t max_;
};

}  // namespace dcache::workload
