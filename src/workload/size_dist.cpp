#include "workload/size_dist.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "util/hash.hpp"

namespace dcache::workload {

std::uint64_t SizeDistribution::sizeForKey(std::uint64_t keyIndex) const {
  util::Pcg32 rng(util::hashU64(keyIndex), 0x5e<<1 | 1);
  return sample(rng);
}

std::string FixedSize::describe() const {
  char buf[48];
  std::snprintf(buf, sizeof buf, "fixed(%llu B)",
                static_cast<unsigned long long>(bytes_));
  return buf;
}

LogNormalSize::LogNormalSize(double medianBytes, double sigma,
                             std::uint64_t minBytes, std::uint64_t maxBytes)
    : mu_(std::log(std::max(medianBytes, 1.0))),
      sigma_(sigma),
      min_(minBytes),
      max_(maxBytes) {}

std::uint64_t LogNormalSize::sample(util::Pcg32& rng) const {
  const double v = util::logNormal(rng, mu_, sigma_);
  const auto n = static_cast<std::uint64_t>(std::llround(std::max(v, 1.0)));
  return std::clamp(n, min_, max_);
}

std::string LogNormalSize::describe() const {
  char buf[64];
  std::snprintf(buf, sizeof buf, "lognormal(median=%.0fB, sigma=%.2f)",
                std::exp(mu_), sigma_);
  return buf;
}

LogNormalParetoTailSize::LogNormalParetoTailSize(
    double medianBytes, double sigma, double tailProbability,
    double tailStartBytes, double tailShape, std::uint64_t maxBytes)
    : body_(medianBytes, sigma, 1, maxBytes),
      tailProbability_(std::clamp(tailProbability, 0.0, 1.0)),
      tailStart_(tailStartBytes),
      tailShape_(tailShape),
      max_(maxBytes) {}

std::uint64_t LogNormalParetoTailSize::sample(util::Pcg32& rng) const {
  if (util::uniform01(rng) < tailProbability_) {
    const double v = util::pareto(rng, tailStart_, tailShape_);
    const auto n = static_cast<std::uint64_t>(std::llround(v));
    return std::min(n, max_);
  }
  return body_.sample(rng);
}

std::string LogNormalParetoTailSize::describe() const {
  char buf[96];
  std::snprintf(buf, sizeof buf, "%s + pareto tail(p=%.3f, xm=%.0fB, a=%.2f)",
                body_.describe().c_str(), tailProbability_, tailStart_,
                tailShape_);
  return buf;
}

}  // namespace dcache::workload
