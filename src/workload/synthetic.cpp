#include "workload/synthetic.hpp"

#include <cstdio>

namespace dcache::workload {

SyntheticWorkload::SyntheticWorkload(SyntheticConfig config)
    : config_(config),
      zipf_(config.numKeys, config.alpha),
      rng_(config.seed, 1) {}

Op SyntheticWorkload::next() {
  Op op;
  op.keyIndex = zipf_.nextKey(rng_);
  op.type = util::uniform01(rng_) < config_.readRatio ? OpType::kRead
                                                      : OpType::kWrite;
  op.valueSize = config_.valueSize;
  return op;
}

std::string SyntheticWorkload::name() const {
  char buf[96];
  std::snprintf(buf, sizeof buf, "synthetic(n=%llu,a=%.2f,r=%.2f,v=%lluB)",
                static_cast<unsigned long long>(config_.numKeys),
                config_.alpha, config_.readRatio,
                static_cast<unsigned long long>(config_.valueSize));
  return buf;
}

}  // namespace dcache::workload
