// Trace persistence: CSV (human-readable, CacheLib-convertible) and a
// compact varint binary format built on the shared wire codec. Lets users
// capture a generated workload once and replay it across architecture runs,
// or feed in real production traces.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace dcache::workload {

struct TraceRecord {
  bool write = false;
  std::uint64_t keyIndex = 0;
  std::uint64_t valueSize = 0;

  friend bool operator==(const TraceRecord&, const TraceRecord&) = default;
};

/// CSV: one "op,key,size" line per record; op ∈ {get, set}. A header line
/// is written and tolerated on read.
bool writeCsvTrace(const std::string& path,
                   const std::vector<TraceRecord>& records);
[[nodiscard]] std::optional<std::vector<TraceRecord>> readCsvTrace(
    const std::string& path);

/// Binary: magic + varint-encoded records (delta-friendly, ~3 bytes/record
/// for small keys).
bool writeBinaryTrace(const std::string& path,
                      const std::vector<TraceRecord>& records);
[[nodiscard]] std::optional<std::vector<TraceRecord>> readBinaryTrace(
    const std::string& path);

/// In-memory encode/decode used by both the binary file format and tests.
[[nodiscard]] std::string encodeTrace(const std::vector<TraceRecord>& records);
[[nodiscard]] std::optional<std::vector<TraceRecord>> decodeTrace(
    std::string_view bytes);

}  // namespace dcache::workload
