#include "workload/meta_trace.hpp"

#include <cstdio>

namespace dcache::workload {

MetaTraceWorkload::MetaTraceWorkload(MetaTraceConfig config)
    : config_(config),
      zipf_(config.numKeys, config.alpha),
      sizes_(config.medianValueBytes, config.sigma, 1, config.maxValueBytes),
      rng_(config.seed, 2) {}

MetaTraceWorkload::MetaTraceWorkload(MetaTraceConfig config,
                                     std::vector<TraceRecord> records)
    : MetaTraceWorkload(config) {
  replay_ = std::move(records);
}

std::uint64_t MetaTraceWorkload::valueSizeFor(std::uint64_t keyIndex) const {
  return sizes_.sizeForKey(keyIndex);
}

Op MetaTraceWorkload::next() {
  Op op;
  if (!replay_.empty()) {
    const TraceRecord& rec = replay_[replayPos_];
    replayPos_ = (replayPos_ + 1) % replay_.size();
    op.type = rec.write ? OpType::kWrite : OpType::kRead;
    op.keyIndex = rec.keyIndex % config_.numKeys;
    op.valueSize = rec.valueSize ? rec.valueSize : valueSizeFor(op.keyIndex);
    return op;
  }
  op.keyIndex = zipf_.nextKey(rng_);
  op.type = util::uniform01(rng_) < config_.readRatio ? OpType::kRead
                                                      : OpType::kWrite;
  op.valueSize = valueSizeFor(op.keyIndex);
  return op;
}

std::string MetaTraceWorkload::name() const {
  char buf[96];
  std::snprintf(buf, sizeof buf, "meta(n=%llu,a=%.2f,r=%.2f,med=%.0fB)%s",
                static_cast<unsigned long long>(config_.numKeys),
                config_.alpha, config_.readRatio, config_.medianValueBytes,
                replay_.empty() ? "" : "[replay]");
  return buf;
}

}  // namespace dcache::workload
