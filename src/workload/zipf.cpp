#include "workload/zipf.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace dcache::workload {
namespace {

/// log1p(t)/t with its t -> 0 limit.
[[nodiscard]] double helper1(double t) noexcept {
  return std::abs(t) > 1e-8 ? std::log1p(t) / t : 1.0 - t * 0.5 + t * t / 3.0;
}

/// expm1(t)/t with its t -> 0 limit.
[[nodiscard]] double helper2(double t) noexcept {
  return std::abs(t) > 1e-8 ? std::expm1(t) / t : 1.0 + t * 0.5 + t * t / 6.0;
}

// Candidate scramble multipliers, largest-entropy first. (rank * m) mod n
// is a permutation iff gcd(m mod n, n) = 1; a single prime fails when n is
// a multiple of it (for n = p the map even collapses to 0), so a second,
// coprime prime covers every representable n — two distinct primes cannot
// both divide a uint64.
constexpr std::uint64_t kScramblePrimes[] = {2654435761ULL,
                                             18446744073709551557ULL};

/// Reduced multiplier for modulus `n`, falling back across candidates and
/// ultimately to the identity (unreachable for n <= 2^64 - 1, kept so the
/// permutation contract can never silently break).
[[nodiscard]] std::uint64_t pickScramble(std::uint64_t n) noexcept {
  for (const std::uint64_t prime : kScramblePrimes) {
    const std::uint64_t m = prime % n;
    if (m != 0 && std::gcd(m, n) == 1) return m;
  }
  return 1;
}

}  // namespace

ZipfianGenerator::ZipfianGenerator(std::uint64_t numKeys, double alpha)
    : n_(numKeys == 0 ? 1 : numKeys),
      alpha_(alpha < 0.0 ? 0.0 : alpha),
      scramble_(pickScramble(n_)) {
  hIntegralX1_ = hIntegral(1.5) - 1.0;
  hIntegralN_ = hIntegral(static_cast<double>(n_) + 0.5);
  s_ = 2.0 - hIntegralInverse(hIntegral(2.5) - h(2.0));
}

double ZipfianGenerator::h(double x) const {
  return std::exp(-alpha_ * std::log(x));
}

double ZipfianGenerator::hIntegral(double x) const {
  const double logX = std::log(x);
  return helper2((1.0 - alpha_) * logX) * logX;
}

double ZipfianGenerator::hIntegralInverse(double x) const {
  double t = x * (1.0 - alpha_);
  if (t < -1.0) t = -1.0;  // numerical guard near the distribution head
  return std::exp(helper1(t) * x);
}

std::uint64_t ZipfianGenerator::nextRank(util::Pcg32& rng) const {
  if (n_ == 1) return 1;
  for (;;) {
    const double u =
        hIntegralN_ + util::uniform01(rng) * (hIntegralX1_ - hIntegralN_);
    const double x = hIntegralInverse(u);
    std::uint64_t k = static_cast<std::uint64_t>(x + 0.5);
    k = std::clamp<std::uint64_t>(k, 1, n_);
    const double kd = static_cast<double>(k);
    // Accept immediately within the squeeze, otherwise do the exact test.
    if (kd - x <= s_ || u >= hIntegral(kd + 0.5) - h(kd)) {
      return k;
    }
  }
}

std::uint64_t ZipfianGenerator::permuteRank(std::uint64_t rank) const noexcept {
  // rank is 1-based; output is a 0-based key index. The product of two
  // values below n_ can exceed 64 bits (n_ > 2^32), so reduce through a
  // 128-bit intermediate.
  const auto product =
      static_cast<unsigned __int128>((rank - 1) % n_) * scramble_;
  return static_cast<std::uint64_t>(product % n_);
}

}  // namespace dcache::workload
