// Twitter-style cache workload (extension; Yang et al., TOS '21 cite in the
// paper's §2.2): median value ≈ 230 B, mixed read/write clusters. Used by
// the ablation benches to show the cost conclusions hold beyond the two
// workloads the paper evaluates.
#pragma once

#include "workload/size_dist.hpp"
#include "workload/workload.hpp"
#include "workload/zipf.hpp"

namespace dcache::workload {

struct TwitterTraceConfig {
  std::uint64_t numKeys = 300000;
  double alpha = 1.0;
  double readRatio = 0.8;
  double medianValueBytes = 230.0;
  double sigma = 1.2;
  std::uint64_t maxValueBytes = 64 * 1024;
  std::uint64_t seed = 13;
};

class TwitterTraceWorkload final : public Workload {
 public:
  explicit TwitterTraceWorkload(TwitterTraceConfig config);

  [[nodiscard]] Op next() override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::uint64_t keyCount() const override {
    return config_.numKeys;
  }
  [[nodiscard]] std::uint64_t valueSizeFor(std::uint64_t keyIndex) const override;
  [[nodiscard]] double readFraction() const override {
    return config_.readRatio;
  }

 private:
  TwitterTraceConfig config_;
  ZipfianGenerator zipf_;
  LogNormalSize sizes_;
  util::Pcg32 rng_;
};

}  // namespace dcache::workload
