#include "workload/uc_trace.hpp"

#include <cstdio>

#include "util/hash.hpp"

namespace dcache::workload {

UcTraceWorkload::UcTraceWorkload(UcTraceConfig config)
    : config_(config),
      zipf_(config.numTables, config.alpha),
      sizes_(config.medianValueBytes, config.sigma, config.tailProbability,
             config.tailStartBytes, config.tailShape, config.maxValueBytes),
      rng_(config.seed, 3) {}

std::uint64_t UcTraceWorkload::valueSizeFor(std::uint64_t keyIndex) const {
  return sizes_.sizeForKey(keyIndex);
}

std::size_t UcTraceWorkload::statementsFor(std::uint64_t keyIndex) const {
  // 4..8 statements; bigger objects (more metadata) need more queries, so
  // couple the count to the size bucket deterministically. getTable is the
  // dominant, most expensive operation (§5.2): even the lean case reads the
  // table row plus parents and table privileges, and the common case runs
  // close to the 8-query worst case.
  const std::uint64_t size = valueSizeFor(keyIndex);
  std::size_t base = 4;
  for (std::uint64_t threshold = 4096; threshold < size && base < 8;
       threshold *= 4) {
    ++base;
  }
  // Spread within the bucket by key identity.
  const std::size_t jitter = util::hashU64(keyIndex) % 2;
  return std::min<std::size_t>(8, base + jitter);
}

Op UcTraceWorkload::next() {
  Op op;
  op.keyIndex = zipf_.nextKey(rng_);
  op.type = util::uniform01(rng_) < config_.readRatio ? OpType::kObjectRead
                                                      : OpType::kWrite;
  op.valueSize = valueSizeFor(op.keyIndex);
  return op;
}

std::string UcTraceWorkload::name() const {
  char buf[96];
  std::snprintf(buf, sizeof buf, "unity-catalog(n=%llu,a=%.2f,r=%.2f)",
                static_cast<unsigned long long>(config_.numTables),
                config_.alpha, config_.readRatio);
  return buf;
}

}  // namespace dcache::workload
