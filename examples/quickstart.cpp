// Quickstart: price one synthetic workload on all four architectures.
//
//   $ ./build/examples/quickstart
//
// Builds a 3-app-server / 3-SQL / 3-KV deployment per architecture, runs a
// Zipf(1.2) workload of 4 KB values at 93% reads, and prints the monthly
// bill each architecture would pay on GCP — the paper's headline comparison
// in one screen of code.
#include <iostream>
#include <vector>

#include "core/experiment.hpp"
#include "core/report.hpp"
#include "workload/synthetic.hpp"

int main() {
  using namespace dcache;

  workload::SyntheticConfig workloadConfig;
  workloadConfig.numKeys = 100000;
  workloadConfig.alpha = 1.2;
  workloadConfig.readRatio = 0.93;
  workloadConfig.valueSize = 4096;

  core::DeploymentConfig deployment;   // 3/3/3 nodes, 6 GB linked cache
  core::ExperimentConfig experiment;
  experiment.operations = 200000;
  experiment.warmupOperations = 150000;
  experiment.qps = 40000.0;

  std::vector<core::ExperimentResult> results;
  for (const core::Architecture arch : core::kAllArchitectures) {
    workload::SyntheticWorkload workload(workloadConfig);  // same seed each run
    results.push_back(
        core::runArchitecture(arch, workload, deployment, experiment));
  }

  std::cout << core::costComparisonTable(
      results, "Monthly cost, synthetic Zipf(1.2), 4KB values, r=0.93, "
               "40K QPS (baseline: Base)");
  std::cout << "\nMemory share of total cost:\n";
  for (const auto& result : results) {
    std::cout << "  " << result.architecture << ": "
              << core::memoryCostShare(result) * 100.0 << "%\n";
  }
  std::cout << "\nStorage-tier query-processing share (paper: 40-65%):\n";
  for (const auto& result : results) {
    std::cout << "  " << result.architecture << ": "
              << core::queryProcessingShare(result) * 100.0 << "%\n";
  }
  return 0;
}
