// Interactive cost explorer: price any (architecture, workload, cluster)
// combination from the command line — the tool a capacity planner would
// actually run.
//
//   $ ./build/examples/cost_explorer --arch=linked --value-size=64KB
//         --read-ratio=0.95 --qps=80000 --app-cache=6GB --alpha=1.2
//   $ ./build/examples/cost_explorer --all
//
// Flags (all optional): --arch=base|remote|linked|linked_version | --all
//   --keys=N --alpha=F --read-ratio=F --value-size=BYTES|KB|MB
//   --qps=F --ops=N --app-servers=N --app-cache=SIZE --block-cache=SIZE
//   --policy=lru|fifo|clock|slru|lfu|s3fifo --memory-price-multiplier=F
//   --breakdown (per-tier CPU shares)  --advise (cost-optimal cache size)
//   --no-affinity (spray clients round-robin; linked probes forward)
#include <cstdio>
#include <cstring>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "core/advisor.hpp"
#include "core/experiment.hpp"
#include "core/report.hpp"
#include "workload/synthetic.hpp"

using namespace dcache;

namespace {

struct Options {
  core::Architecture architecture = core::Architecture::kLinked;
  bool allArchitectures = false;
  workload::SyntheticConfig workload;
  core::DeploymentConfig deployment;
  core::ExperimentConfig experiment;
  bool showBreakdown = false;
  bool advise = false;
};

[[nodiscard]] std::optional<std::string> flagValue(std::string_view arg,
                                                   std::string_view name) {
  if (arg.size() <= name.size() + 3 || arg.substr(0, 2) != "--" ||
      arg.substr(2, name.size()) != name || arg[2 + name.size()] != '=') {
    return std::nullopt;
  }
  return std::string(arg.substr(name.size() + 3));
}

bool parseArgs(int argc, char** argv, Options& options) {
  options.experiment.operations = 100000;
  options.experiment.warmupOperations = 150000;
  options.experiment.qps = 120000;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--all") {
      options.allArchitectures = true;
    } else if (arg == "--breakdown") {
      options.showBreakdown = true;
    } else if (arg == "--advise") {
      options.advise = true;
    } else if (arg == "--no-affinity") {
      options.deployment.affinityRouting = false;
    } else if (auto v = flagValue(arg, "arch")) {
      const auto parsed = core::parseArchitecture(*v);
      if (!parsed) {
        std::fprintf(stderr, "unknown architecture: %s\n", v->c_str());
        return false;
      }
      options.architecture = *parsed;
    } else if (auto v = flagValue(arg, "keys")) {
      options.workload.numKeys = std::strtoull(v->c_str(), nullptr, 10);
    } else if (auto v = flagValue(arg, "alpha")) {
      options.workload.alpha = std::strtod(v->c_str(), nullptr);
    } else if (auto v = flagValue(arg, "read-ratio")) {
      options.workload.readRatio = std::strtod(v->c_str(), nullptr);
    } else if (auto v = flagValue(arg, "value-size")) {
      const auto bytes = util::Bytes::parse(*v);
      if (!bytes) {
        std::fprintf(stderr, "bad --value-size: %s\n", v->c_str());
        return false;
      }
      options.workload.valueSize = bytes->count();
    } else if (auto v = flagValue(arg, "qps")) {
      options.experiment.qps = std::strtod(v->c_str(), nullptr);
    } else if (auto v = flagValue(arg, "ops")) {
      options.experiment.operations = std::strtoull(v->c_str(), nullptr, 10);
      options.experiment.warmupOperations = options.experiment.operations;
    } else if (auto v = flagValue(arg, "app-servers")) {
      options.deployment.appServers =
          std::strtoull(v->c_str(), nullptr, 10);
    } else if (auto v = flagValue(arg, "app-cache")) {
      const auto bytes = util::Bytes::parse(*v);
      if (!bytes) return false;
      options.deployment.appCachePerNode = *bytes;
      options.deployment.remoteCachePerNode = *bytes;
    } else if (auto v = flagValue(arg, "block-cache")) {
      const auto bytes = util::Bytes::parse(*v);
      if (!bytes) return false;
      options.deployment.blockCachePerNode = *bytes;
    } else if (auto v = flagValue(arg, "policy")) {
      if (*v == "lru") {
        options.deployment.evictionPolicy = cache::EvictionPolicy::kLru;
      } else if (*v == "fifo") {
        options.deployment.evictionPolicy = cache::EvictionPolicy::kFifo;
      } else if (*v == "clock") {
        options.deployment.evictionPolicy = cache::EvictionPolicy::kClock;
      } else if (*v == "slru") {
        options.deployment.evictionPolicy = cache::EvictionPolicy::kSlru;
      } else if (*v == "lfu") {
        options.deployment.evictionPolicy = cache::EvictionPolicy::kLfu;
      } else if (*v == "s3fifo") {
        options.deployment.evictionPolicy = cache::EvictionPolicy::kS3Fifo;
      } else {
        std::fprintf(stderr, "unknown policy: %s\n", v->c_str());
        return false;
      }
    } else if (auto v = flagValue(arg, "memory-price-multiplier")) {
      options.experiment.pricing = core::Pricing::gcp().withMemoryMultiplier(
          std::strtod(v->c_str(), nullptr));
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", std::string(arg).c_str());
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  if (!parseArgs(argc, argv, options)) {
    std::fputs("see the header comment for usage\n", stderr);
    return 1;
  }

  std::vector<core::Architecture> architectures;
  if (options.allArchitectures) {
    architectures.assign(std::begin(core::kAllArchitectures),
                         std::end(core::kAllArchitectures));
  } else {
    architectures.push_back(options.architecture);
  }

  std::vector<core::ExperimentResult> results;
  for (const core::Architecture arch : architectures) {
    workload::SyntheticWorkload workload(options.workload);
    results.push_back(core::runArchitecture(arch, workload,
                                            options.deployment,
                                            options.experiment));
  }

  char title[160];
  std::snprintf(title, sizeof title,
                "Monthly cost: %llu keys, alpha=%.2f, r=%.2f, value=%s, "
                "%.0f QPS",
                static_cast<unsigned long long>(options.workload.numKeys),
                options.workload.alpha, options.workload.readRatio,
                util::Bytes::of(options.workload.valueSize).str().c_str(),
                options.experiment.qps);
  std::cout << core::costComparisonTable(results, title);

  if (options.advise) {
    core::AdvisorConfig advisorConfig;
    advisorConfig.qps = options.experiment.qps;
    advisorConfig.pricing = options.experiment.pricing;
    workload::SyntheticWorkload workload(options.workload);
    const auto rec = core::CacheAdvisor(advisorConfig).advise(workload);
    std::cout << "\nCache advisor (exact MRC from this workload):\n"
              << rec.summary();
  }

  if (options.showBreakdown) {
    for (const auto& result : results) {
      std::cout << "\n"
                << core::cpuBreakdownTable(
                       result, result.architecture + " CPU breakdown");
    }
  }
  return 0;
}
