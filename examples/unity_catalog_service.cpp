// A working catalog service on top of the library: builds the normalized
// Unity-Catalog-style schema inside the SQL substrate, serves getTable as a
// real rich object (assembled from up to 8 SQL statements), runs the
// application-level permission check with downward inheritance, and shows
// what a linked object cache does to the bill.
//
//   $ ./build/examples/unity_catalog_service
#include <cstdio>
#include <iostream>

#include "core/deployment.hpp"
#include "core/experiment.hpp"
#include "core/report.hpp"
#include "richobject/object_codec.hpp"
#include "workload/uc_trace.hpp"

using namespace dcache;

namespace {

void inspectOneObject(core::Deployment& deployment) {
  // Assemble one rich object through the real SQL path and poke at it the
  // way application code would.
  richobject::Assembler assembler(*deployment.catalogStore());
  sim::Node& app = deployment.appTier().node(0);
  const auto result = assembler.getTable(app, 7);
  if (!result.ok) {
    std::puts("getTable(7) failed");
    return;
  }
  const richobject::RichTableObject& object = result.object;
  std::printf(
      "getTable(7) -> %s.%s.%s (format=%s, owner=%s)\n"
      "  assembled from %zu SQL statements, %llu bytes read\n"
      "  %zu privileges, %zu constraints, %zu lineage edges, %zu "
      "properties\n",
      object.catalog.name.c_str(), object.schema.name.c_str(),
      object.table.name.c_str(), object.table.format.c_str(),
      object.table.owner.c_str(), result.statementsIssued,
      static_cast<unsigned long long>(result.bytesRead),
      object.privileges.size(), object.constraints.size(),
      object.lineage.size(), object.properties.size());

  // Application logic: permission checks resolve against the whole chain.
  for (const char* principal : {object.table.owner.c_str(), "user3",
                                "mallory"}) {
    std::printf("  allowed(%s, SELECT) = %s\n", principal,
                object.allowed(principal, "SELECT") ? "yes" : "no");
  }

  // What a remote cache would ship per hit (and a linked cache would not):
  std::printf("  encoded object size: %s\n",
              util::Bytes::of(richobject::encodedObjectSize(object))
                  .str()
                  .c_str());
}

}  // namespace

int main() {
  workload::UcTraceConfig traceConfig;
  traceConfig.numTables = 20000;  // scaled-down catalog, same shape
  workload::UcTraceWorkload trace(traceConfig);

  std::puts("== Building the catalog (normalized schema + data) ==");
  core::DeploymentConfig config;
  config.architecture = core::Architecture::kLinked;
  core::Deployment linked(config);
  linked.populateCatalog(trace);
  std::printf("catalog populated: %s of table/satellite data in storage\n\n",
              linked.db().totalStoredBytes().str().c_str());

  std::puts("== One rich object, up close ==");
  inspectOneObject(linked);

  std::puts("\n== Serving the production-shaped trace (40K QPS) ==");
  core::ExperimentConfig experiment;
  experiment.operations = 40000;
  experiment.warmupOperations = 120000;
  experiment.qps = 40000;
  experiment.richObjects = true;

  core::ExperimentRunner runner(experiment);
  workload::UcTraceWorkload linkedTrace(traceConfig);
  const auto linkedResult = runner.run(linked, linkedTrace);

  core::DeploymentConfig baseConfig;
  baseConfig.architecture = core::Architecture::kBase;
  core::Deployment base(baseConfig);
  workload::UcTraceWorkload baseTrace(traceConfig);
  base.populateCatalog(baseTrace);
  workload::UcTraceWorkload baseRun(traceConfig);
  const auto baseResult = runner.run(base, baseRun);

  const core::ExperimentResult results[] = {baseResult, linkedResult};
  std::cout << core::costComparisonTable(
      results, "Unity Catalog service: assemble-per-read vs linked object "
               "cache");
  std::printf("\nlinked object cache hit ratio: %.1f%%; statements avoided "
              "per hit: up to 8\n",
              100.0 * linkedResult.counters.hitRatio());
  return 0;
}
