// Consistency walk-through (§5.5, §6): what strong consistency does to a
// cache's cost, why, and what can be done about it.
//   1. Linearizability: version-checked reads pass the checker; serving
//      cached data blindly after a concurrent write does not.
//   2. Cost: the per-read version check erases most of the linked cache's
//      savings (the §5.5 result), while ownership leases keep them.
//   3. Correctness: the Fig. 8 delayed-write anomaly, shown live, and the
//      epoch-fencing fix.
//
//   $ ./build/examples/consistent_cache_demo
#include <cstdio>
#include <iostream>

#include "consistency/delayed_write.hpp"
#include "consistency/linearizability.hpp"
#include "consistency/version_check.hpp"
#include "core/experiment.hpp"
#include "core/report.hpp"
#include "workload/synthetic.hpp"

using namespace dcache;

namespace {

void linearizabilityDemo() {
  std::puts("== 1. Why caches break linearizability ==\n");
  // A storage system with one key; two cache behaviours under a racing
  // write: serve-cached-blindly vs validate-then-serve.
  consistency::History blind;
  consistency::History checked;

  // t0-10: write v1. t20-30: write v2 completes. t40+: reads.
  for (auto* history : {&blind, &checked}) {
    history->record({consistency::HistoryOpType::kWrite, "acct", 1, 0, 10, 0});
    history->record({consistency::HistoryOpType::kWrite, "acct", 2, 20, 30, 0});
  }
  // The blind cache still holds v1 and serves it after v2 committed.
  blind.record({consistency::HistoryOpType::kRead, "acct", 1, 40, 41, 1});
  // The version-checked cache detects the mismatch and refetches v2.
  checked.record({consistency::HistoryOpType::kRead, "acct", 2, 40, 55, 1});

  const auto violations = consistency::checkLinearizable(blind);
  std::printf("eventually-consistent cache: %zu violation(s)\n",
              violations.size());
  for (const auto& violation : violations) {
    std::printf("  -> %s\n", violation.reason.c_str());
  }
  std::printf("version-checked cache:       %s\n\n",
              consistency::isLinearizable(checked) ? "linearizable"
                                                   : "VIOLATION");
}

void costDemo() {
  std::puts("== 2. What the version check costs (§5.5) ==\n");
  workload::SyntheticConfig workload;
  workload.valueSize = 16384;
  workload.readRatio = 0.93;

  core::ExperimentConfig experiment;
  experiment.operations = 60000;
  experiment.warmupOperations = 60000;
  experiment.qps = 120000;

  std::vector<core::ExperimentResult> results;
  for (const core::Architecture arch :
       {core::Architecture::kBase, core::Architecture::kLinked,
        core::Architecture::kLinkedVersion}) {
    workload::SyntheticWorkload instance(workload);
    results.push_back(core::runArchitecture(arch, instance,
                                            core::DeploymentConfig{},
                                            experiment));
  }
  std::cout << core::costComparisonTable(
                   results, "Eventual vs per-read-version-checked cache")
            << "\n";
  std::printf("Even though the check returns 8 bytes, it traverses the "
              "full SQL read path:\nparse, plan, lease validation, row "
              "fetch, and two RPC hops — %llu checks issued.\n\n",
              static_cast<unsigned long long>(
                  results[2].counters.versionChecks));
}

void delayedWriteDemo() {
  std::puts("== 3. The delayed-writes hazard (Fig. 8) and epoch fencing ==\n");
  consistency::DelayedWriteConfig config;
  const auto outcome = consistency::runDelayedWriteScenario(config);
  std::fputs(outcome.history.c_str(), stdout);
  std::puts("\nwith epoch fencing:");
  config.epochFencing = true;
  const auto fenced = consistency::runDelayedWriteScenario(config);
  std::fputs(fenced.history.c_str(), stdout);

  util::Pcg32 rng(99, 1);
  util::Pcg32 rng2(99, 1);
  std::printf(
      "\nrandomized sweep (2000 trials): anomaly rate %.1f%% unfenced, "
      "%.1f%% fenced\n",
      100.0 * consistency::delayedWriteAnomalyRate(2000, false, rng),
      100.0 * consistency::delayedWriteAnomalyRate(2000, true, rng2));
}

}  // namespace

int main() {
  linearizabilityDemo();
  costDemo();
  delayedWriteDemo();
  return 0;
}
