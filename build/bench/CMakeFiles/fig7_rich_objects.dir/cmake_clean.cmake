file(REMOVE_RECURSE
  "CMakeFiles/fig7_rich_objects.dir/fig7_rich_objects.cpp.o"
  "CMakeFiles/fig7_rich_objects.dir/fig7_rich_objects.cpp.o.d"
  "fig7_rich_objects"
  "fig7_rich_objects.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_rich_objects.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
