# Empty dependencies file for fig7_rich_objects.
# This may be replaced when dependencies are built.
