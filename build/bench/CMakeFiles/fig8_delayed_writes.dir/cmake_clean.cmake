file(REMOVE_RECURSE
  "CMakeFiles/fig8_delayed_writes.dir/fig8_delayed_writes.cpp.o"
  "CMakeFiles/fig8_delayed_writes.dir/fig8_delayed_writes.cpp.o.d"
  "fig8_delayed_writes"
  "fig8_delayed_writes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_delayed_writes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
