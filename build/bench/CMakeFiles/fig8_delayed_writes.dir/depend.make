# Empty dependencies file for fig8_delayed_writes.
# This may be replaced when dependencies are built.
