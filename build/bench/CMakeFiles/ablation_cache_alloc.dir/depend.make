# Empty dependencies file for ablation_cache_alloc.
# This may be replaced when dependencies are built.
