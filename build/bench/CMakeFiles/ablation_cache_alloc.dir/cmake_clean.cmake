file(REMOVE_RECURSE
  "CMakeFiles/ablation_cache_alloc.dir/ablation_cache_alloc.cpp.o"
  "CMakeFiles/ablation_cache_alloc.dir/ablation_cache_alloc.cpp.o.d"
  "ablation_cache_alloc"
  "ablation_cache_alloc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_cache_alloc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
