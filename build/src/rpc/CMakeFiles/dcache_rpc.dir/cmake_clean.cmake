file(REMOVE_RECURSE
  "CMakeFiles/dcache_rpc.dir/channel.cpp.o"
  "CMakeFiles/dcache_rpc.dir/channel.cpp.o.d"
  "CMakeFiles/dcache_rpc.dir/messages.cpp.o"
  "CMakeFiles/dcache_rpc.dir/messages.cpp.o.d"
  "CMakeFiles/dcache_rpc.dir/serialization_model.cpp.o"
  "CMakeFiles/dcache_rpc.dir/serialization_model.cpp.o.d"
  "CMakeFiles/dcache_rpc.dir/wire.cpp.o"
  "CMakeFiles/dcache_rpc.dir/wire.cpp.o.d"
  "libdcache_rpc.a"
  "libdcache_rpc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcache_rpc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
