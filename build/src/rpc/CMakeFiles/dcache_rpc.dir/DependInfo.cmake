
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rpc/channel.cpp" "src/rpc/CMakeFiles/dcache_rpc.dir/channel.cpp.o" "gcc" "src/rpc/CMakeFiles/dcache_rpc.dir/channel.cpp.o.d"
  "/root/repo/src/rpc/messages.cpp" "src/rpc/CMakeFiles/dcache_rpc.dir/messages.cpp.o" "gcc" "src/rpc/CMakeFiles/dcache_rpc.dir/messages.cpp.o.d"
  "/root/repo/src/rpc/serialization_model.cpp" "src/rpc/CMakeFiles/dcache_rpc.dir/serialization_model.cpp.o" "gcc" "src/rpc/CMakeFiles/dcache_rpc.dir/serialization_model.cpp.o.d"
  "/root/repo/src/rpc/wire.cpp" "src/rpc/CMakeFiles/dcache_rpc.dir/wire.cpp.o" "gcc" "src/rpc/CMakeFiles/dcache_rpc.dir/wire.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/dcache_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dcache_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
