file(REMOVE_RECURSE
  "libdcache_rpc.a"
)
