# Empty compiler generated dependencies file for dcache_rpc.
# This may be replaced when dependencies are built.
