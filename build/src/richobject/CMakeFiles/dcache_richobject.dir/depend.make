# Empty dependencies file for dcache_richobject.
# This may be replaced when dependencies are built.
