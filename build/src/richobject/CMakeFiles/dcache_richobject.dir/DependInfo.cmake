
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/richobject/assembler.cpp" "src/richobject/CMakeFiles/dcache_richobject.dir/assembler.cpp.o" "gcc" "src/richobject/CMakeFiles/dcache_richobject.dir/assembler.cpp.o.d"
  "/root/repo/src/richobject/catalog_store.cpp" "src/richobject/CMakeFiles/dcache_richobject.dir/catalog_store.cpp.o" "gcc" "src/richobject/CMakeFiles/dcache_richobject.dir/catalog_store.cpp.o.d"
  "/root/repo/src/richobject/entities.cpp" "src/richobject/CMakeFiles/dcache_richobject.dir/entities.cpp.o" "gcc" "src/richobject/CMakeFiles/dcache_richobject.dir/entities.cpp.o.d"
  "/root/repo/src/richobject/object_codec.cpp" "src/richobject/CMakeFiles/dcache_richobject.dir/object_codec.cpp.o" "gcc" "src/richobject/CMakeFiles/dcache_richobject.dir/object_codec.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/storage/CMakeFiles/dcache_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/dcache_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/dcache_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/rpc/CMakeFiles/dcache_rpc.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dcache_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dcache_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
