file(REMOVE_RECURSE
  "libdcache_richobject.a"
)
