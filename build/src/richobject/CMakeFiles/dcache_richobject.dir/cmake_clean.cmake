file(REMOVE_RECURSE
  "CMakeFiles/dcache_richobject.dir/assembler.cpp.o"
  "CMakeFiles/dcache_richobject.dir/assembler.cpp.o.d"
  "CMakeFiles/dcache_richobject.dir/catalog_store.cpp.o"
  "CMakeFiles/dcache_richobject.dir/catalog_store.cpp.o.d"
  "CMakeFiles/dcache_richobject.dir/entities.cpp.o"
  "CMakeFiles/dcache_richobject.dir/entities.cpp.o.d"
  "CMakeFiles/dcache_richobject.dir/object_codec.cpp.o"
  "CMakeFiles/dcache_richobject.dir/object_codec.cpp.o.d"
  "libdcache_richobject.a"
  "libdcache_richobject.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcache_richobject.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
