file(REMOVE_RECURSE
  "libdcache_consistency.a"
)
