# Empty compiler generated dependencies file for dcache_consistency.
# This may be replaced when dependencies are built.
