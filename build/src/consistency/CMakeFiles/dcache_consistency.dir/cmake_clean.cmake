file(REMOVE_RECURSE
  "CMakeFiles/dcache_consistency.dir/delayed_write.cpp.o"
  "CMakeFiles/dcache_consistency.dir/delayed_write.cpp.o.d"
  "CMakeFiles/dcache_consistency.dir/invalidation.cpp.o"
  "CMakeFiles/dcache_consistency.dir/invalidation.cpp.o.d"
  "CMakeFiles/dcache_consistency.dir/lease.cpp.o"
  "CMakeFiles/dcache_consistency.dir/lease.cpp.o.d"
  "CMakeFiles/dcache_consistency.dir/linearizability.cpp.o"
  "CMakeFiles/dcache_consistency.dir/linearizability.cpp.o.d"
  "CMakeFiles/dcache_consistency.dir/version_check.cpp.o"
  "CMakeFiles/dcache_consistency.dir/version_check.cpp.o.d"
  "libdcache_consistency.a"
  "libdcache_consistency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcache_consistency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
