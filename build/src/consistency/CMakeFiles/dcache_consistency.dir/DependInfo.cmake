
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/consistency/delayed_write.cpp" "src/consistency/CMakeFiles/dcache_consistency.dir/delayed_write.cpp.o" "gcc" "src/consistency/CMakeFiles/dcache_consistency.dir/delayed_write.cpp.o.d"
  "/root/repo/src/consistency/invalidation.cpp" "src/consistency/CMakeFiles/dcache_consistency.dir/invalidation.cpp.o" "gcc" "src/consistency/CMakeFiles/dcache_consistency.dir/invalidation.cpp.o.d"
  "/root/repo/src/consistency/lease.cpp" "src/consistency/CMakeFiles/dcache_consistency.dir/lease.cpp.o" "gcc" "src/consistency/CMakeFiles/dcache_consistency.dir/lease.cpp.o.d"
  "/root/repo/src/consistency/linearizability.cpp" "src/consistency/CMakeFiles/dcache_consistency.dir/linearizability.cpp.o" "gcc" "src/consistency/CMakeFiles/dcache_consistency.dir/linearizability.cpp.o.d"
  "/root/repo/src/consistency/version_check.cpp" "src/consistency/CMakeFiles/dcache_consistency.dir/version_check.cpp.o" "gcc" "src/consistency/CMakeFiles/dcache_consistency.dir/version_check.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/storage/CMakeFiles/dcache_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/dcache_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/rpc/CMakeFiles/dcache_rpc.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dcache_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dcache_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
