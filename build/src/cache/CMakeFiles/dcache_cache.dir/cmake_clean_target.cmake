file(REMOVE_RECURSE
  "libdcache_cache.a"
)
