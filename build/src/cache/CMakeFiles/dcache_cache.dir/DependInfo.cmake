
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cache/clock.cpp" "src/cache/CMakeFiles/dcache_cache.dir/clock.cpp.o" "gcc" "src/cache/CMakeFiles/dcache_cache.dir/clock.cpp.o.d"
  "/root/repo/src/cache/fifo.cpp" "src/cache/CMakeFiles/dcache_cache.dir/fifo.cpp.o" "gcc" "src/cache/CMakeFiles/dcache_cache.dir/fifo.cpp.o.d"
  "/root/repo/src/cache/hash_ring.cpp" "src/cache/CMakeFiles/dcache_cache.dir/hash_ring.cpp.o" "gcc" "src/cache/CMakeFiles/dcache_cache.dir/hash_ring.cpp.o.d"
  "/root/repo/src/cache/kv_cache.cpp" "src/cache/CMakeFiles/dcache_cache.dir/kv_cache.cpp.o" "gcc" "src/cache/CMakeFiles/dcache_cache.dir/kv_cache.cpp.o.d"
  "/root/repo/src/cache/lfu.cpp" "src/cache/CMakeFiles/dcache_cache.dir/lfu.cpp.o" "gcc" "src/cache/CMakeFiles/dcache_cache.dir/lfu.cpp.o.d"
  "/root/repo/src/cache/linked_cache.cpp" "src/cache/CMakeFiles/dcache_cache.dir/linked_cache.cpp.o" "gcc" "src/cache/CMakeFiles/dcache_cache.dir/linked_cache.cpp.o.d"
  "/root/repo/src/cache/lru.cpp" "src/cache/CMakeFiles/dcache_cache.dir/lru.cpp.o" "gcc" "src/cache/CMakeFiles/dcache_cache.dir/lru.cpp.o.d"
  "/root/repo/src/cache/mrc.cpp" "src/cache/CMakeFiles/dcache_cache.dir/mrc.cpp.o" "gcc" "src/cache/CMakeFiles/dcache_cache.dir/mrc.cpp.o.d"
  "/root/repo/src/cache/remote_cache.cpp" "src/cache/CMakeFiles/dcache_cache.dir/remote_cache.cpp.o" "gcc" "src/cache/CMakeFiles/dcache_cache.dir/remote_cache.cpp.o.d"
  "/root/repo/src/cache/s3fifo.cpp" "src/cache/CMakeFiles/dcache_cache.dir/s3fifo.cpp.o" "gcc" "src/cache/CMakeFiles/dcache_cache.dir/s3fifo.cpp.o.d"
  "/root/repo/src/cache/sharded.cpp" "src/cache/CMakeFiles/dcache_cache.dir/sharded.cpp.o" "gcc" "src/cache/CMakeFiles/dcache_cache.dir/sharded.cpp.o.d"
  "/root/repo/src/cache/slru.cpp" "src/cache/CMakeFiles/dcache_cache.dir/slru.cpp.o" "gcc" "src/cache/CMakeFiles/dcache_cache.dir/slru.cpp.o.d"
  "/root/repo/src/cache/ttl.cpp" "src/cache/CMakeFiles/dcache_cache.dir/ttl.cpp.o" "gcc" "src/cache/CMakeFiles/dcache_cache.dir/ttl.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rpc/CMakeFiles/dcache_rpc.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dcache_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dcache_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
