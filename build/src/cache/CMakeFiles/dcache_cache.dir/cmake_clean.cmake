file(REMOVE_RECURSE
  "CMakeFiles/dcache_cache.dir/clock.cpp.o"
  "CMakeFiles/dcache_cache.dir/clock.cpp.o.d"
  "CMakeFiles/dcache_cache.dir/fifo.cpp.o"
  "CMakeFiles/dcache_cache.dir/fifo.cpp.o.d"
  "CMakeFiles/dcache_cache.dir/hash_ring.cpp.o"
  "CMakeFiles/dcache_cache.dir/hash_ring.cpp.o.d"
  "CMakeFiles/dcache_cache.dir/kv_cache.cpp.o"
  "CMakeFiles/dcache_cache.dir/kv_cache.cpp.o.d"
  "CMakeFiles/dcache_cache.dir/lfu.cpp.o"
  "CMakeFiles/dcache_cache.dir/lfu.cpp.o.d"
  "CMakeFiles/dcache_cache.dir/linked_cache.cpp.o"
  "CMakeFiles/dcache_cache.dir/linked_cache.cpp.o.d"
  "CMakeFiles/dcache_cache.dir/lru.cpp.o"
  "CMakeFiles/dcache_cache.dir/lru.cpp.o.d"
  "CMakeFiles/dcache_cache.dir/mrc.cpp.o"
  "CMakeFiles/dcache_cache.dir/mrc.cpp.o.d"
  "CMakeFiles/dcache_cache.dir/remote_cache.cpp.o"
  "CMakeFiles/dcache_cache.dir/remote_cache.cpp.o.d"
  "CMakeFiles/dcache_cache.dir/s3fifo.cpp.o"
  "CMakeFiles/dcache_cache.dir/s3fifo.cpp.o.d"
  "CMakeFiles/dcache_cache.dir/sharded.cpp.o"
  "CMakeFiles/dcache_cache.dir/sharded.cpp.o.d"
  "CMakeFiles/dcache_cache.dir/slru.cpp.o"
  "CMakeFiles/dcache_cache.dir/slru.cpp.o.d"
  "CMakeFiles/dcache_cache.dir/ttl.cpp.o"
  "CMakeFiles/dcache_cache.dir/ttl.cpp.o.d"
  "libdcache_cache.a"
  "libdcache_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcache_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
