# Empty compiler generated dependencies file for dcache_cache.
# This may be replaced when dependencies are built.
