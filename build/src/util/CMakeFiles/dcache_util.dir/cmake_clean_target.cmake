file(REMOVE_RECURSE
  "libdcache_util.a"
)
