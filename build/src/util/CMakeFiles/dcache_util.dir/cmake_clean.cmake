file(REMOVE_RECURSE
  "CMakeFiles/dcache_util.dir/bytes.cpp.o"
  "CMakeFiles/dcache_util.dir/bytes.cpp.o.d"
  "CMakeFiles/dcache_util.dir/hash.cpp.o"
  "CMakeFiles/dcache_util.dir/hash.cpp.o.d"
  "CMakeFiles/dcache_util.dir/histogram.cpp.o"
  "CMakeFiles/dcache_util.dir/histogram.cpp.o.d"
  "CMakeFiles/dcache_util.dir/money.cpp.o"
  "CMakeFiles/dcache_util.dir/money.cpp.o.d"
  "CMakeFiles/dcache_util.dir/rng.cpp.o"
  "CMakeFiles/dcache_util.dir/rng.cpp.o.d"
  "CMakeFiles/dcache_util.dir/stats.cpp.o"
  "CMakeFiles/dcache_util.dir/stats.cpp.o.d"
  "CMakeFiles/dcache_util.dir/table_printer.cpp.o"
  "CMakeFiles/dcache_util.dir/table_printer.cpp.o.d"
  "libdcache_util.a"
  "libdcache_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcache_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
