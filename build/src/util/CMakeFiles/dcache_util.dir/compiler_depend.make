# Empty compiler generated dependencies file for dcache_util.
# This may be replaced when dependencies are built.
