
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/advisor.cpp" "src/core/CMakeFiles/dcache_core.dir/advisor.cpp.o" "gcc" "src/core/CMakeFiles/dcache_core.dir/advisor.cpp.o.d"
  "/root/repo/src/core/architecture.cpp" "src/core/CMakeFiles/dcache_core.dir/architecture.cpp.o" "gcc" "src/core/CMakeFiles/dcache_core.dir/architecture.cpp.o.d"
  "/root/repo/src/core/calibration.cpp" "src/core/CMakeFiles/dcache_core.dir/calibration.cpp.o" "gcc" "src/core/CMakeFiles/dcache_core.dir/calibration.cpp.o.d"
  "/root/repo/src/core/cost_model.cpp" "src/core/CMakeFiles/dcache_core.dir/cost_model.cpp.o" "gcc" "src/core/CMakeFiles/dcache_core.dir/cost_model.cpp.o.d"
  "/root/repo/src/core/deployment.cpp" "src/core/CMakeFiles/dcache_core.dir/deployment.cpp.o" "gcc" "src/core/CMakeFiles/dcache_core.dir/deployment.cpp.o.d"
  "/root/repo/src/core/experiment.cpp" "src/core/CMakeFiles/dcache_core.dir/experiment.cpp.o" "gcc" "src/core/CMakeFiles/dcache_core.dir/experiment.cpp.o.d"
  "/root/repo/src/core/model.cpp" "src/core/CMakeFiles/dcache_core.dir/model.cpp.o" "gcc" "src/core/CMakeFiles/dcache_core.dir/model.cpp.o.d"
  "/root/repo/src/core/pricing.cpp" "src/core/CMakeFiles/dcache_core.dir/pricing.cpp.o" "gcc" "src/core/CMakeFiles/dcache_core.dir/pricing.cpp.o.d"
  "/root/repo/src/core/report.cpp" "src/core/CMakeFiles/dcache_core.dir/report.cpp.o" "gcc" "src/core/CMakeFiles/dcache_core.dir/report.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/consistency/CMakeFiles/dcache_consistency.dir/DependInfo.cmake"
  "/root/repo/build/src/richobject/CMakeFiles/dcache_richobject.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/dcache_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/dcache_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/dcache_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/rpc/CMakeFiles/dcache_rpc.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dcache_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dcache_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
