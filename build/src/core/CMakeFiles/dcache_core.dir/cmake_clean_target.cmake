file(REMOVE_RECURSE
  "libdcache_core.a"
)
