# Empty compiler generated dependencies file for dcache_core.
# This may be replaced when dependencies are built.
