file(REMOVE_RECURSE
  "CMakeFiles/dcache_core.dir/advisor.cpp.o"
  "CMakeFiles/dcache_core.dir/advisor.cpp.o.d"
  "CMakeFiles/dcache_core.dir/architecture.cpp.o"
  "CMakeFiles/dcache_core.dir/architecture.cpp.o.d"
  "CMakeFiles/dcache_core.dir/calibration.cpp.o"
  "CMakeFiles/dcache_core.dir/calibration.cpp.o.d"
  "CMakeFiles/dcache_core.dir/cost_model.cpp.o"
  "CMakeFiles/dcache_core.dir/cost_model.cpp.o.d"
  "CMakeFiles/dcache_core.dir/deployment.cpp.o"
  "CMakeFiles/dcache_core.dir/deployment.cpp.o.d"
  "CMakeFiles/dcache_core.dir/experiment.cpp.o"
  "CMakeFiles/dcache_core.dir/experiment.cpp.o.d"
  "CMakeFiles/dcache_core.dir/model.cpp.o"
  "CMakeFiles/dcache_core.dir/model.cpp.o.d"
  "CMakeFiles/dcache_core.dir/pricing.cpp.o"
  "CMakeFiles/dcache_core.dir/pricing.cpp.o.d"
  "CMakeFiles/dcache_core.dir/report.cpp.o"
  "CMakeFiles/dcache_core.dir/report.cpp.o.d"
  "libdcache_core.a"
  "libdcache_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcache_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
