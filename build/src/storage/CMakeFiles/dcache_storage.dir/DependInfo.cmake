
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/block_cache.cpp" "src/storage/CMakeFiles/dcache_storage.dir/block_cache.cpp.o" "gcc" "src/storage/CMakeFiles/dcache_storage.dir/block_cache.cpp.o.d"
  "/root/repo/src/storage/database.cpp" "src/storage/CMakeFiles/dcache_storage.dir/database.cpp.o" "gcc" "src/storage/CMakeFiles/dcache_storage.dir/database.cpp.o.d"
  "/root/repo/src/storage/executor.cpp" "src/storage/CMakeFiles/dcache_storage.dir/executor.cpp.o" "gcc" "src/storage/CMakeFiles/dcache_storage.dir/executor.cpp.o.d"
  "/root/repo/src/storage/kv_engine.cpp" "src/storage/CMakeFiles/dcache_storage.dir/kv_engine.cpp.o" "gcc" "src/storage/CMakeFiles/dcache_storage.dir/kv_engine.cpp.o.d"
  "/root/repo/src/storage/planner.cpp" "src/storage/CMakeFiles/dcache_storage.dir/planner.cpp.o" "gcc" "src/storage/CMakeFiles/dcache_storage.dir/planner.cpp.o.d"
  "/root/repo/src/storage/raft.cpp" "src/storage/CMakeFiles/dcache_storage.dir/raft.cpp.o" "gcc" "src/storage/CMakeFiles/dcache_storage.dir/raft.cpp.o.d"
  "/root/repo/src/storage/row.cpp" "src/storage/CMakeFiles/dcache_storage.dir/row.cpp.o" "gcc" "src/storage/CMakeFiles/dcache_storage.dir/row.cpp.o.d"
  "/root/repo/src/storage/schema.cpp" "src/storage/CMakeFiles/dcache_storage.dir/schema.cpp.o" "gcc" "src/storage/CMakeFiles/dcache_storage.dir/schema.cpp.o.d"
  "/root/repo/src/storage/sql_parser.cpp" "src/storage/CMakeFiles/dcache_storage.dir/sql_parser.cpp.o" "gcc" "src/storage/CMakeFiles/dcache_storage.dir/sql_parser.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cache/CMakeFiles/dcache_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/rpc/CMakeFiles/dcache_rpc.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dcache_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dcache_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
