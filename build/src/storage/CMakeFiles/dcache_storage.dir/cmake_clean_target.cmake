file(REMOVE_RECURSE
  "libdcache_storage.a"
)
