file(REMOVE_RECURSE
  "CMakeFiles/dcache_storage.dir/block_cache.cpp.o"
  "CMakeFiles/dcache_storage.dir/block_cache.cpp.o.d"
  "CMakeFiles/dcache_storage.dir/database.cpp.o"
  "CMakeFiles/dcache_storage.dir/database.cpp.o.d"
  "CMakeFiles/dcache_storage.dir/executor.cpp.o"
  "CMakeFiles/dcache_storage.dir/executor.cpp.o.d"
  "CMakeFiles/dcache_storage.dir/kv_engine.cpp.o"
  "CMakeFiles/dcache_storage.dir/kv_engine.cpp.o.d"
  "CMakeFiles/dcache_storage.dir/planner.cpp.o"
  "CMakeFiles/dcache_storage.dir/planner.cpp.o.d"
  "CMakeFiles/dcache_storage.dir/raft.cpp.o"
  "CMakeFiles/dcache_storage.dir/raft.cpp.o.d"
  "CMakeFiles/dcache_storage.dir/row.cpp.o"
  "CMakeFiles/dcache_storage.dir/row.cpp.o.d"
  "CMakeFiles/dcache_storage.dir/schema.cpp.o"
  "CMakeFiles/dcache_storage.dir/schema.cpp.o.d"
  "CMakeFiles/dcache_storage.dir/sql_parser.cpp.o"
  "CMakeFiles/dcache_storage.dir/sql_parser.cpp.o.d"
  "libdcache_storage.a"
  "libdcache_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcache_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
