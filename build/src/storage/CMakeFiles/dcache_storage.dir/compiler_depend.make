# Empty compiler generated dependencies file for dcache_storage.
# This may be replaced when dependencies are built.
