file(REMOVE_RECURSE
  "libdcache_workload.a"
)
