# Empty dependencies file for dcache_workload.
# This may be replaced when dependencies are built.
