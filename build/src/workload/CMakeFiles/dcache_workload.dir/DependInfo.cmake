
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/meta_trace.cpp" "src/workload/CMakeFiles/dcache_workload.dir/meta_trace.cpp.o" "gcc" "src/workload/CMakeFiles/dcache_workload.dir/meta_trace.cpp.o.d"
  "/root/repo/src/workload/size_dist.cpp" "src/workload/CMakeFiles/dcache_workload.dir/size_dist.cpp.o" "gcc" "src/workload/CMakeFiles/dcache_workload.dir/size_dist.cpp.o.d"
  "/root/repo/src/workload/synthetic.cpp" "src/workload/CMakeFiles/dcache_workload.dir/synthetic.cpp.o" "gcc" "src/workload/CMakeFiles/dcache_workload.dir/synthetic.cpp.o.d"
  "/root/repo/src/workload/trace_io.cpp" "src/workload/CMakeFiles/dcache_workload.dir/trace_io.cpp.o" "gcc" "src/workload/CMakeFiles/dcache_workload.dir/trace_io.cpp.o.d"
  "/root/repo/src/workload/twitter_trace.cpp" "src/workload/CMakeFiles/dcache_workload.dir/twitter_trace.cpp.o" "gcc" "src/workload/CMakeFiles/dcache_workload.dir/twitter_trace.cpp.o.d"
  "/root/repo/src/workload/uc_trace.cpp" "src/workload/CMakeFiles/dcache_workload.dir/uc_trace.cpp.o" "gcc" "src/workload/CMakeFiles/dcache_workload.dir/uc_trace.cpp.o.d"
  "/root/repo/src/workload/workload.cpp" "src/workload/CMakeFiles/dcache_workload.dir/workload.cpp.o" "gcc" "src/workload/CMakeFiles/dcache_workload.dir/workload.cpp.o.d"
  "/root/repo/src/workload/zipf.cpp" "src/workload/CMakeFiles/dcache_workload.dir/zipf.cpp.o" "gcc" "src/workload/CMakeFiles/dcache_workload.dir/zipf.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rpc/CMakeFiles/dcache_rpc.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dcache_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dcache_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
