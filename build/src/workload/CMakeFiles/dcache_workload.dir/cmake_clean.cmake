file(REMOVE_RECURSE
  "CMakeFiles/dcache_workload.dir/meta_trace.cpp.o"
  "CMakeFiles/dcache_workload.dir/meta_trace.cpp.o.d"
  "CMakeFiles/dcache_workload.dir/size_dist.cpp.o"
  "CMakeFiles/dcache_workload.dir/size_dist.cpp.o.d"
  "CMakeFiles/dcache_workload.dir/synthetic.cpp.o"
  "CMakeFiles/dcache_workload.dir/synthetic.cpp.o.d"
  "CMakeFiles/dcache_workload.dir/trace_io.cpp.o"
  "CMakeFiles/dcache_workload.dir/trace_io.cpp.o.d"
  "CMakeFiles/dcache_workload.dir/twitter_trace.cpp.o"
  "CMakeFiles/dcache_workload.dir/twitter_trace.cpp.o.d"
  "CMakeFiles/dcache_workload.dir/uc_trace.cpp.o"
  "CMakeFiles/dcache_workload.dir/uc_trace.cpp.o.d"
  "CMakeFiles/dcache_workload.dir/workload.cpp.o"
  "CMakeFiles/dcache_workload.dir/workload.cpp.o.d"
  "CMakeFiles/dcache_workload.dir/zipf.cpp.o"
  "CMakeFiles/dcache_workload.dir/zipf.cpp.o.d"
  "libdcache_workload.a"
  "libdcache_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcache_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
