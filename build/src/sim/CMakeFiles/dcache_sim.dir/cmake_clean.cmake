file(REMOVE_RECURSE
  "CMakeFiles/dcache_sim.dir/event_loop.cpp.o"
  "CMakeFiles/dcache_sim.dir/event_loop.cpp.o.d"
  "CMakeFiles/dcache_sim.dir/network.cpp.o"
  "CMakeFiles/dcache_sim.dir/network.cpp.o.d"
  "CMakeFiles/dcache_sim.dir/node.cpp.o"
  "CMakeFiles/dcache_sim.dir/node.cpp.o.d"
  "CMakeFiles/dcache_sim.dir/resource.cpp.o"
  "CMakeFiles/dcache_sim.dir/resource.cpp.o.d"
  "CMakeFiles/dcache_sim.dir/tier.cpp.o"
  "CMakeFiles/dcache_sim.dir/tier.cpp.o.d"
  "libdcache_sim.a"
  "libdcache_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcache_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
