# Empty dependencies file for dcache_sim.
# This may be replaced when dependencies are built.
