file(REMOVE_RECURSE
  "libdcache_sim.a"
)
