# Empty dependencies file for test_storage_sql.
# This may be replaced when dependencies are built.
