file(REMOVE_RECURSE
  "CMakeFiles/test_storage_sql.dir/test_storage_sql.cpp.o"
  "CMakeFiles/test_storage_sql.dir/test_storage_sql.cpp.o.d"
  "test_storage_sql"
  "test_storage_sql.pdb"
  "test_storage_sql[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_storage_sql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
