# Empty compiler generated dependencies file for test_sharded_ring.
# This may be replaced when dependencies are built.
