file(REMOVE_RECURSE
  "CMakeFiles/test_sharded_ring.dir/test_sharded_ring.cpp.o"
  "CMakeFiles/test_sharded_ring.dir/test_sharded_ring.cpp.o.d"
  "test_sharded_ring"
  "test_sharded_ring.pdb"
  "test_sharded_ring[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sharded_ring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
