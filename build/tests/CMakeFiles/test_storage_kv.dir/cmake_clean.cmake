file(REMOVE_RECURSE
  "CMakeFiles/test_storage_kv.dir/test_storage_kv.cpp.o"
  "CMakeFiles/test_storage_kv.dir/test_storage_kv.cpp.o.d"
  "test_storage_kv"
  "test_storage_kv.pdb"
  "test_storage_kv[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_storage_kv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
