
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_fuzz.cpp" "tests/CMakeFiles/test_fuzz.dir/test_fuzz.cpp.o" "gcc" "tests/CMakeFiles/test_fuzz.dir/test_fuzz.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/dcache_core.dir/DependInfo.cmake"
  "/root/repo/build/src/consistency/CMakeFiles/dcache_consistency.dir/DependInfo.cmake"
  "/root/repo/build/src/richobject/CMakeFiles/dcache_richobject.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/dcache_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/dcache_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/dcache_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/rpc/CMakeFiles/dcache_rpc.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dcache_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dcache_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
