file(REMOVE_RECURSE
  "CMakeFiles/test_lfu_s3fifo.dir/test_lfu_s3fifo.cpp.o"
  "CMakeFiles/test_lfu_s3fifo.dir/test_lfu_s3fifo.cpp.o.d"
  "test_lfu_s3fifo"
  "test_lfu_s3fifo.pdb"
  "test_lfu_s3fifo[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lfu_s3fifo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
