# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for test_lfu_s3fifo.
