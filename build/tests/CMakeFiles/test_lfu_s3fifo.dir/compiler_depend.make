# Empty compiler generated dependencies file for test_lfu_s3fifo.
# This may be replaced when dependencies are built.
