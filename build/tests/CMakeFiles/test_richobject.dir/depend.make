# Empty dependencies file for test_richobject.
# This may be replaced when dependencies are built.
