file(REMOVE_RECURSE
  "CMakeFiles/test_richobject.dir/test_richobject.cpp.o"
  "CMakeFiles/test_richobject.dir/test_richobject.cpp.o.d"
  "test_richobject"
  "test_richobject.pdb"
  "test_richobject[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_richobject.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
