# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_wire[1]_include.cmake")
include("/root/repo/build/tests/test_cache_policies[1]_include.cmake")
include("/root/repo/build/tests/test_sharded_ring[1]_include.cmake")
include("/root/repo/build/tests/test_mrc[1]_include.cmake")
include("/root/repo/build/tests/test_storage_kv[1]_include.cmake")
include("/root/repo/build/tests/test_storage_sql[1]_include.cmake")
include("/root/repo/build/tests/test_database[1]_include.cmake")
include("/root/repo/build/tests/test_raft[1]_include.cmake")
include("/root/repo/build/tests/test_workload[1]_include.cmake")
include("/root/repo/build/tests/test_richobject[1]_include.cmake")
include("/root/repo/build/tests/test_consistency[1]_include.cmake")
include("/root/repo/build/tests/test_core_model[1]_include.cmake")
include("/root/repo/build/tests/test_deployment[1]_include.cmake")
include("/root/repo/build/tests/test_experiment[1]_include.cmake")
include("/root/repo/build/tests/test_advisor[1]_include.cmake")
include("/root/repo/build/tests/test_channel[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_fuzz[1]_include.cmake")
include("/root/repo/build/tests/test_lfu_s3fifo[1]_include.cmake")
