file(REMOVE_RECURSE
  "CMakeFiles/unity_catalog_service.dir/unity_catalog_service.cpp.o"
  "CMakeFiles/unity_catalog_service.dir/unity_catalog_service.cpp.o.d"
  "unity_catalog_service"
  "unity_catalog_service.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unity_catalog_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
