# Empty dependencies file for unity_catalog_service.
# This may be replaced when dependencies are built.
