# Empty dependencies file for consistent_cache_demo.
# This may be replaced when dependencies are built.
