file(REMOVE_RECURSE
  "CMakeFiles/consistent_cache_demo.dir/consistent_cache_demo.cpp.o"
  "CMakeFiles/consistent_cache_demo.dir/consistent_cache_demo.cpp.o.d"
  "consistent_cache_demo"
  "consistent_cache_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/consistent_cache_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
