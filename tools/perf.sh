#!/usr/bin/env bash
# Perf-trajectory harness over the deterministic benches.
#
#   tools/perf.sh record [build-dir]   run every deterministic bench with
#                                      --bench-json and store the records
#                                      as perf/BENCH_<name>.json (the
#                                      committed baseline for this machine
#                                      generation)
#   tools/perf.sh check  [build-dir]   re-run the benches and fail if any
#                                      wall-clock regresses more than
#                                      PERF_TOLERANCE_PCT (default 20) vs
#                                      the committed baseline
#
# The records use schema dcache.bench.v1 (see bench_common.hpp): wall_ms,
# ops/sec of simulated requests, peak RSS. Timing goes only to these JSON
# sidecars — bench stdout stays byte-deterministic and golden-diffed.
#
# Wall-clock on shared machines is noisy; `check` takes the best of
# PERF_RUNS (default 3) runs per bench before comparing, which filters
# scheduler hiccups while still catching real regressions.
set -euo pipefail

cd "$(dirname "$0")/.."
MODE="${1:-check}"
BUILD_DIR="${2:-build}"
PERF_DIR="perf"
TOLERANCE_PCT="${PERF_TOLERANCE_PCT:-20}"
RUNS="${PERF_RUNS:-3}"

BENCHES=(fig2_model fig3_uc_trace fig4_synthetic fig5_kv_workloads
         fig6_breakdown fig7_rich_objects fig8_delayed_writes
         fig9_failure_timeline fig10_overload fig11_gray_failures
         fig12_churn ablation_cache_alloc ablation_consistency ext_workloads)

if [[ ! -d "$BUILD_DIR/bench" ]]; then
  echo "perf.sh: build dir '$BUILD_DIR' has no bench/ — build first" >&2
  exit 1
fi

wall_ms() { # file -> wall_ms value
  sed -n 's/.*"wall_ms": \([0-9.]*\).*/\1/p' "$1"
}

best_run() { # bench -> writes best-of-$RUNS record to $2
  local bench="$1" out="$2" tmp best_ms="" r
  for ((r = 0; r < RUNS; ++r)); do
    tmp="$(mktemp)"
    "$BUILD_DIR/bench/$bench" --bench-json "$tmp" > /dev/null
    local ms
    ms="$(wall_ms "$tmp")"
    if [[ -z "$best_ms" ]] || awk -v a="$ms" -v b="$best_ms" \
        'BEGIN { exit !(a < b) }'; then
      best_ms="$ms"
      cp "$tmp" "$out"
    fi
    rm -f "$tmp"
  done
}

case "$MODE" in
  record)
    mkdir -p "$PERF_DIR"
    for bench in "${BENCHES[@]}"; do
      best_run "$bench" "$PERF_DIR/BENCH_${bench}.json"
      echo "perf.sh: recorded $PERF_DIR/BENCH_${bench}.json" \
           "($(wall_ms "$PERF_DIR/BENCH_${bench}.json") ms)"
    done
    ;;
  check)
    failed=0
    for bench in "${BENCHES[@]}"; do
      baseline="$PERF_DIR/BENCH_${bench}.json"
      if [[ ! -f "$baseline" ]]; then
        echo "perf.sh: no baseline for $bench — run 'tools/perf.sh record'" >&2
        failed=1
        continue
      fi
      current="$(mktemp)"
      best_run "$bench" "$current"
      base_ms="$(wall_ms "$baseline")"
      cur_ms="$(wall_ms "$current")"
      limit="$(awk -v b="$base_ms" -v t="$TOLERANCE_PCT" \
               'BEGIN { printf "%.1f", b * (1 + t / 100) }')"
      if awk -v c="$cur_ms" -v l="$limit" 'BEGIN { exit !(c > l) }'; then
        echo "perf.sh: REGRESSION $bench: ${cur_ms} ms vs baseline" \
             "${base_ms} ms (limit ${limit} ms at +${TOLERANCE_PCT}%)" >&2
        failed=1
      else
        echo "perf.sh: ok $bench: ${cur_ms} ms (baseline ${base_ms} ms)"
      fi
      rm -f "$current"
    done
    exit "$failed"
    ;;
  *)
    echo "usage: tools/perf.sh {record|check} [build-dir]" >&2
    exit 2
    ;;
esac
