// Symbol- and flow-aware layer for dcache-lint: a cross-translation-unit
// declaration index (functions, methods, member fields, using/typedef
// chains, lambda captures) and a lightweight by-name call graph, built on
// the comment/raw-string-correct lexer in lexer.cpp. Still no libclang:
// the index is a deliberately lexical over-approximation — names are
// resolved without types, so reachability queries err on the side of
// "reaches" (fewer false findings, documented in INVARIANTS.md). Every
// structure is derived purely from LintInput::files, which is what keeps
// the JSON report byte-stable.
#pragma once

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "lint.hpp"

namespace dcache::lint {

// ---------------------------------------------------------------------------
// Declarations
// ---------------------------------------------------------------------------

/// A function or method definition (declarations without bodies are not
/// indexed — the rules reason about behavior, which lives in bodies).
struct FunctionDecl {
  std::string name;       // unqualified ("charge", "operator==", ...)
  std::string className;  // enclosing class/struct ("" for free functions)
  std::size_t fileIndex = 0;  // into LintInput::files
  int line = 0;
  std::vector<std::string> paramNames;  // declared order; "" when unnamed
  std::size_t bodyBegin = 0;  // token index of '{' in the file's tokens
  std::size_t bodyEnd = 0;    // token index of the matching '}'
  bool isConstructor = false;
  bool isDestructor = false;
  /// Unqualified names this body calls (member and free calls alike).
  std::vector<std::string> callees;
};

/// A non-static data member. `typeTokens` is the raw declaration prefix
/// ("std :: atomic < int >"), joined with single spaces — enough for the
/// race rules to recognize atomics, mutexes and const.
struct FieldDecl {
  std::string className;
  std::string name;
  std::string typeTokens;
  std::size_t fileIndex = 0;
  int line = 0;
};

/// `using A = B<...>;` or `typedef B<...> A;`. `targetTokens` is the
/// space-joined right-hand side; `targetHead` is its first identifier
/// after stripping std:: qualifiers (the hook for alias-chain walking).
struct AliasDecl {
  std::string name;
  std::string targetTokens;
  std::string targetHead;
  std::size_t fileIndex = 0;
  int line = 0;
};

/// One lambda capture-list entry.
struct LambdaCapture {
  enum class Kind : unsigned char {
    kRefDefault,  // [&]
    kValDefault,  // [=]
    kByRef,       // [&name]
    kByVal,       // [name]
    kThis,        // [this]
    kStarThis,    // [*this]
    kInitVal,     // [name = expr]
    kInitRef,     // [&name = expr]
  };
  Kind kind;
  std::string name;  // "" for defaults / this
};

/// A lambda expression: capture list, parameters, body token range, and
/// the function whose body it appears in (by index into Index::functions,
/// npos when at namespace scope).
struct LambdaDecl {
  std::size_t fileIndex = 0;
  int line = 0;
  std::vector<LambdaCapture> captures;
  std::vector<std::string> paramNames;
  std::size_t bodyBegin = 0;
  std::size_t bodyEnd = 0;
  std::size_t enclosingFunction = static_cast<std::size_t>(-1);
};

// ---------------------------------------------------------------------------
// Index
// ---------------------------------------------------------------------------

struct Index {
  std::vector<FunctionDecl> functions;
  std::vector<FieldDecl> fields;
  std::vector<AliasDecl> aliases;
  std::vector<LambdaDecl> lambdas;

  /// name -> indices into `functions` (collisions kept; callers decide).
  std::map<std::string, std::vector<std::size_t>> functionsByName;
  /// field name -> indices into `fields`.
  std::map<std::string, std::vector<std::size_t>> fieldsByName;
  /// alias name -> index into `aliases` (first wins on collision).
  std::map<std::string, std::size_t> aliasesByName;

  /// Walk `using`/`typedef` chains from `name` and return the space-joined
  /// target of the last alias in the chain ("" when `name` is not an
  /// alias). Cycles terminate via a visited set.
  [[nodiscard]] std::string resolveAliasChain(const std::string& name) const;

  /// True when any function named `from` can reach (via the by-name call
  /// graph, transitively) a call to any name in `sinks`. Memoized per
  /// query set by the caller; this helper is a plain DFS.
  [[nodiscard]] bool reaches(const std::string& from,
                             const std::set<std::string>& sinks) const;

  /// The function whose body range [bodyBegin, bodyEnd] contains token
  /// index `tokenIdx` of file `fileIndex` (innermost wins); npos if none.
  [[nodiscard]] std::size_t enclosingFunctionAt(std::size_t fileIndex,
                                                std::size_t tokenIdx) const;
};

/// Build the index over every lexed file. Deterministic: files are already
/// sorted by relPath, and all maps are ordered.
[[nodiscard]] Index buildIndex(const LintInput& input);

/// Parse the lambda whose '[' is at token index `open` in `toks`; returns
/// false when the bracket is a subscript rather than a lambda introducer.
/// On success fills captures/params/body range (body may be empty for a
/// degenerate lambda).
[[nodiscard]] bool parseLambdaAt(const std::vector<Token>& toks,
                                 std::size_t open, LambdaDecl& out);

/// Dimension suffix of an identifier for the units rule: "Micros",
/// "Millis", "Seconds", "Bytes", "Dollars", a rate ("Micros/s", "Ops/s",
/// ...) for *PerSec names, or "" when the name carries no dimension.
[[nodiscard]] std::string dimensionOf(const std::string& identifier);

}  // namespace dcache::lint
