// The six dcache invariant rules plus the suppression audit. Each rule is
// a pure function of the LintInput snapshot; see INVARIANTS.md for the
// contract each one enforces and the approved ways to suppress it.
#include "lint.hpp"

#include <algorithm>
#include <array>
#include <string_view>

#include "index.hpp"

namespace dcache::lint {

namespace {

using Tokens = std::vector<Token>;

[[nodiscard]] bool isId(const Token& t, std::string_view s) {
  return t.kind == TokenKind::kIdentifier && t.text == s;
}
[[nodiscard]] bool isPunct(const Token& t, std::string_view s) {
  return t.kind == TokenKind::kPunct && t.text == s;
}

/// Index of the ')' matching the '(' at `open`, or tokens.size().
[[nodiscard]] std::size_t matchParen(const Tokens& toks, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < toks.size(); ++i) {
    if (isPunct(toks[i], "(")) ++depth;
    else if (isPunct(toks[i], ")") && --depth == 0) return i;
  }
  return toks.size();
}

/// Skip a balanced template argument list: `openAngle` indexes '<'; returns
/// the index *after* the matching '>'. '>' tokens are single chars, so
/// nested ">>" closes two levels naturally.
[[nodiscard]] std::size_t skipAngles(const Tokens& toks,
                                     std::size_t openAngle) {
  int depth = 0;
  for (std::size_t i = openAngle; i < toks.size(); ++i) {
    if (isPunct(toks[i], "<")) ++depth;
    else if (isPunct(toks[i], ">") && --depth == 0) return i + 1;
    else if (isPunct(toks[i], ";")) break;  // malformed; bail out
  }
  return toks.size();
}

void add(std::vector<Finding>& out, std::string rule,
         const std::string& file, int line, std::string message) {
  out.push_back({std::move(rule), file, line, std::move(message)});
}

[[nodiscard]] bool fileIs(const SourceFile& f,
                          std::initializer_list<std::string_view> paths) {
  for (const std::string_view p : paths) {
    if (f.relPath == p) return true;
  }
  return false;
}

[[nodiscard]] const SourceFile* findFile(const LintInput& in,
                                         std::string_view relPath) {
  for (const SourceFile& f : in.files) {
    if (f.relPath == relPath) return &f;
  }
  return nullptr;
}

[[nodiscard]] bool hasIdentToken(const SourceFile& f, std::string_view name) {
  return std::any_of(f.tokens.begin(), f.tokens.end(),
                     [&](const Token& t) { return isId(t, name); });
}

[[nodiscard]] bool hasStringContaining(const SourceFile& f,
                                       std::string_view needle) {
  return std::any_of(f.tokens.begin(), f.tokens.end(), [&](const Token& t) {
    return t.kind == TokenKind::kString &&
           t.text.find(needle) != std::string::npos;
  });
}

[[nodiscard]] std::string snakeCase(std::string_view camel) {
  std::string out;
  for (const char c : camel) {
    if (std::isupper(static_cast<unsigned char>(c))) {
      out.push_back('_');
      out.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
    } else {
      out.push_back(c);
    }
  }
  return out;
}

}  // namespace

const std::vector<std::string>& knownRules() {
  static const std::vector<std::string> kRules = {
      "determinism",    "unordered-iter", "charge-funnel",
      "counter-registration", "bench-hygiene", "hot-path-alloc",
      "units",          "race-capture",   "charge-path",
      "guard-pairing",  "suppression"};
  return kRules;
}

// ---------------------------------------------------------------------------
// Rule: determinism
// ---------------------------------------------------------------------------
// Experiments must be bit-for-bit reproducible for any --jobs N, so no
// source of entropy other than the experiment seed may exist. Wall clocks,
// std::random_device, C rand(), and thread ids are banned; std RNG engines
// are banned outside src/util/rng.* (the repo's seeded Pcg32/SplitMix64
// are the only approved generators).

void ruleDeterminism(const LintInput& in, std::vector<Finding>& out) {
  static constexpr std::array<std::string_view, 3> kClocks = {
      "steady_clock", "system_clock", "high_resolution_clock"};
  static constexpr std::array<std::string_view, 3> kClockCalls = {
      "clock_gettime", "gettimeofday", "timespec_get"};
  static constexpr std::array<std::string_view, 10> kEngines = {
      "mt19937",        "mt19937_64",    "minstd_rand",
      "minstd_rand0",   "ranlux24",      "ranlux24_base",
      "ranlux48",       "ranlux48_base", "knuth_b",
      "default_random_engine"};

  for (const SourceFile& f : in.files) {
    if (fileIs(f, {"src/util/rng.hpp", "src/util/rng.cpp"})) continue;
    const Tokens& t = f.tokens;
    for (std::size_t i = 0; i < t.size(); ++i) {
      if (t[i].kind != TokenKind::kIdentifier) continue;
      const std::string& s = t[i].text;
      const Token* prev = i > 0 ? &t[i - 1] : nullptr;
      const Token* next = i + 1 < t.size() ? &t[i + 1] : nullptr;
      const bool memberAccess =
          prev && (isPunct(*prev, ".") || isPunct(*prev, "->"));

      if (s == "random_device") {
        add(out, "determinism", f.relPath, t[i].line,
            "std::random_device is nondeterministic; expand the experiment "
            "seed with util::SplitMix64 instead");
        continue;
      }
      if (std::find(kClocks.begin(), kClocks.end(), s) != kClocks.end()) {
        add(out, "determinism", f.relPath, t[i].line,
            "wall-clock (" + s + ") breaks --jobs determinism; use the "
            "simulated clock (Deployment::simTimeMicros)");
        continue;
      }
      if (std::find(kClockCalls.begin(), kClockCalls.end(), s) !=
          kClockCalls.end()) {
        add(out, "determinism", f.relPath, t[i].line,
            "wall-clock call " + s + "() breaks --jobs determinism; use the "
            "simulated clock");
        continue;
      }
      if (std::find(kEngines.begin(), kEngines.end(), s) != kEngines.end()) {
        add(out, "determinism", f.relPath, t[i].line,
            "std RNG engine std::" + s + " outside src/util/rng.hpp; use "
            "util::Pcg32 seeded from the experiment seed");
        continue;
      }
      if ((s == "rand" || s == "srand") && next && isPunct(*next, "(") &&
          !memberAccess) {
        add(out, "determinism", f.relPath, t[i].line,
            s + "() draws from C global RNG state; use util::Pcg32 seeded "
            "from the experiment seed");
        continue;
      }
      if (s == "time" && next && isPunct(*next, "(") && !memberAccess) {
        // Only the wall-clock forms: time(nullptr) / time(NULL) / time(0)
        // and std::time(...).
        const bool stdQualified =
            i >= 2 && isPunct(t[i - 1], "::") && isId(t[i - 2], "std");
        const bool nullArg =
            i + 3 < t.size() &&
            (isId(t[i + 2], "nullptr") || isId(t[i + 2], "NULL") ||
             (t[i + 2].kind == TokenKind::kNumber && t[i + 2].text == "0")) &&
            isPunct(t[i + 3], ")");
        if (stdQualified || nullArg) {
          add(out, "determinism", f.relPath, t[i].line,
              "time() reads the wall clock; experiments must derive all "
              "timestamps from the simulated clock");
        }
        continue;
      }
      if (s == "get_id" && next && isPunct(*next, "(")) {
        add(out, "determinism", f.relPath, t[i].line,
            "thread ids vary run to run; results must not depend on which "
            "worker computed them");
        continue;
      }
      if (s == "thread" && next && isPunct(*next, "::") && i + 2 < t.size() &&
          isId(t[i + 2], "id")) {
        add(out, "determinism", f.relPath, t[i].line,
            "std::thread::id in data paths breaks determinism; key results "
            "by cell index, not by worker");
        continue;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: unordered-iter
// ---------------------------------------------------------------------------
// Iterating a std::unordered_{map,set} visits elements in hash order —
// stable for one libstdc++ but unspecified, so any iteration that feeds
// output, accounting, or eviction order is a latent golden-diff break.
// Declarations are collected across the whole tree (members declared in a
// header, iterated in the .cpp), then every range-for and .begin() loop
// over a collected name is flagged. Alias resolution rides the declaration
// index: `using`/`typedef` chains of any depth, across files.

void ruleUnorderedIter(const LintInput& in, const Index& index,
                       std::vector<Finding>& out) {
  static constexpr std::array<std::string_view, 4> kContainers = {
      "unordered_map", "unordered_set", "unordered_multimap",
      "unordered_multiset"};
  const auto isContainer = [&](const Token& t) {
    return t.kind == TokenKind::kIdentifier &&
           std::find(kContainers.begin(), kContainers.end(), t.text) !=
               kContainers.end();
  };

  // Pass A: names declared with an unordered type, plus alias names whose
  // using/typedef chain bottoms out in an unordered container (resolved
  // transitively through the index, so `using A = B; using B = Map;`
  // and typedef spellings are all caught, wherever the links live).
  std::set<std::string> unorderedNames;
  std::set<std::string> unorderedAliases;
  for (const AliasDecl& alias : index.aliases) {
    const bool direct =
        alias.targetTokens.find("unordered_") != std::string::npos;
    const bool chained =
        index.resolveAliasChain(alias.name).find("unordered_") !=
        std::string::npos;
    if (direct || chained) unorderedAliases.insert(alias.name);
  }
  for (const SourceFile& f : in.files) {
    const Tokens& t = f.tokens;
    for (std::size_t i = 0; i < t.size(); ++i) {
      if (!isContainer(t[i]) || i + 1 >= t.size() || !isPunct(t[i + 1], "<")) {
        continue;
      }
      std::size_t j = skipAngles(t, i + 1);
      // Skip declarator decorations to reach the declared name.
      while (j < t.size() && (isPunct(t[j], "&") || isPunct(t[j], "*") ||
                              isId(t[j], "const"))) {
        ++j;
      }
      if (j < t.size() && t[j].kind == TokenKind::kIdentifier) {
        unorderedNames.insert(t[j].text);
      }
    }
  }
  // Alias-typed declarations: `Alias name`.
  for (const SourceFile& f : in.files) {
    const Tokens& t = f.tokens;
    for (std::size_t i = 0; i + 1 < t.size(); ++i) {
      if (t[i].kind == TokenKind::kIdentifier &&
          unorderedAliases.count(t[i].text) &&
          t[i + 1].kind == TokenKind::kIdentifier) {
        unorderedNames.insert(t[i + 1].text);
      }
    }
  }

  // Pass B: flag iteration.
  for (const SourceFile& f : in.files) {
    const Tokens& t = f.tokens;
    for (std::size_t i = 0; i + 1 < t.size(); ++i) {
      if (!isId(t[i], "for") || !isPunct(t[i + 1], "(")) continue;
      const std::size_t close = matchParen(t, i + 1);
      if (close >= t.size()) continue;

      // Range-for: a ':' at top nesting depth inside the header.
      std::size_t colon = t.size();
      int depth = 0;
      for (std::size_t j = i + 2; j < close; ++j) {
        if (isPunct(t[j], "(") || isPunct(t[j], "[") || isPunct(t[j], "{")) {
          ++depth;
        } else if (isPunct(t[j], ")") || isPunct(t[j], "]") ||
                   isPunct(t[j], "}")) {
          --depth;
        } else if (depth == 0 && isPunct(t[j], ":")) {
          colon = j;
          break;
        } else if (depth == 0 && isPunct(t[j], ";")) {
          break;  // classic for loop
        }
      }
      if (colon < t.size()) {
        // Terminal identifier of the range expression, unless it is a call
        // or subscript result (those return fresh/ordered values).
        const Token& last = t[close - 1];
        if (last.kind == TokenKind::kIdentifier &&
            unorderedNames.count(last.text)) {
          add(out, "unordered-iter", f.relPath, t[i].line,
              "range-for over unordered container '" + last.text +
                  "' leaks hash order; emit in sorted order or annotate "
                  "why the aggregation is commutative");
        }
        continue;
      }
      // Iterator sweep: `for (auto it = X.begin(); ...`.
      for (std::size_t j = i + 2; j + 4 < close; ++j) {
        if (t[j].kind == TokenKind::kIdentifier &&
            unorderedNames.count(t[j].text) &&
            (isPunct(t[j + 1], ".") || isPunct(t[j + 1], "->")) &&
            (isId(t[j + 2], "begin") || isId(t[j + 2], "cbegin")) &&
            isPunct(t[j + 3], "(") && isPunct(t[j + 4], ")")) {
          add(out, "unordered-iter", f.relPath, t[i].line,
              "iterator sweep over unordered container '" + t[j].text +
                  "' visits elements in hash order; sort the keys or "
                  "annotate why the sweep is commutative");
          break;
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: charge-funnel
// ---------------------------------------------------------------------------
// Every CPU microsecond must flow through sim::Node::charge — the one
// point where the queue model, the trace sink and the meters all observe
// it. Charging a CpuMeter directly, or poking a span's cpuMicros field,
// silently bypasses part of that pipeline and breaks the CPU-conservation
// property tests.

void ruleChargeFunnel(const LintInput& in, std::vector<Finding>& out) {
  for (const SourceFile& f : in.files) {
    // The funnel itself, the meter implementation, and the trace sink's
    // span aggregation (fed *by* the funnel) are the short whitelist.
    if (fileIs(f, {"src/sim/node.hpp", "src/sim/resource.hpp",
                   "src/sim/resource.cpp", "src/obs/trace.cpp"})) {
      continue;
    }
    const Tokens& t = f.tokens;

    // Names declared as CpuMeter in this file (locals, members, params).
    std::set<std::string> meterNames;
    for (std::size_t i = 0; i + 1 < t.size(); ++i) {
      if (!isId(t[i], "CpuMeter")) continue;
      std::size_t j = i + 1;
      while (j < t.size() && (isPunct(t[j], "&") || isPunct(t[j], "*") ||
                              isId(t[j], "const"))) {
        ++j;
      }
      if (j < t.size() && t[j].kind == TokenKind::kIdentifier) {
        meterNames.insert(t[j].text);
      }
    }

    for (std::size_t i = 0; i < t.size(); ++i) {
      if (t[i].kind != TokenKind::kIdentifier) continue;
      const std::string& s = t[i].text;

      // `<meter>.charge(` where <meter> is `cpu_`, `cpu()` or a declared
      // CpuMeter variable.
      if (isId(t[i], "charge") && i + 1 < t.size() && isPunct(t[i + 1], "(") &&
          i >= 2 && (isPunct(t[i - 1], ".") || isPunct(t[i - 1], "->"))) {
        const Token& recv = t[i - 2];
        const bool viaCpuCall = isPunct(recv, ")") && i >= 4 &&
                                isPunct(t[i - 3], "(") && isId(t[i - 4], "cpu");
        const bool viaMeter =
            recv.kind == TokenKind::kIdentifier &&
            (recv.text == "cpu_" || meterNames.count(recv.text));
        if (viaCpuCall || viaMeter) {
          add(out, "charge-funnel", f.relPath, t[i].line,
              "CPU charged directly on a meter, bypassing sim::Node::charge "
              "— the queue model, trace sink and conservation tests will "
              "not see this cost");
        }
        continue;
      }

      // Direct mutation of a span/aggregate `cpuMicros` field.
      if (s == "cpuMicros" && i + 1 < t.size()) {
        const Token& next = t[i + 1];
        const bool compound = isPunct(next, "+=") || isPunct(next, "-=");
        const bool memberAssign =
            isPunct(next, "=") && i >= 1 &&
            (isPunct(t[i - 1], ".") || isPunct(t[i - 1], "->"));
        if (compound || memberAssign) {
          add(out, "charge-funnel", f.relPath, t[i].line,
              "direct mutation of a cpuMicros field outside the trace sink; "
              "all CPU accounting must flow through sim::Node::charge");
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: counter-registration
// ---------------------------------------------------------------------------
// A ServeCounters field that is not exported and not conserved is a counter
// that can silently rot. Every field declared in core/deployment.hpp must
// (a) be read by core/report.cpp's metrics adapter, (b) have its
// snake_case metric key registered there, and (c) appear in a conservation
// test (tests/test_chaos_fuzz.cpp or tests/test_obs_conservation.cpp).

void ruleCounterRegistration(const LintInput& in, const Index& index,
                             std::vector<Finding>& out) {
  // Data members come from the declaration index: every FieldDecl whose
  // class is ServeCounters and whose file is the canonical declaration
  // header. (The index already skips statics, usings and member functions,
  // and survives inline method bodies between fields.)
  const SourceFile* decl = findFile(in, "src/core/deployment.hpp");
  if (decl == nullptr) return;  // layout changed; nothing to check against

  struct Field {
    std::string name;
    int line;
  };
  std::vector<Field> fields;
  for (const FieldDecl& field : index.fields) {
    if (field.className != "ServeCounters") continue;
    if (in.files[field.fileIndex].relPath != "src/core/deployment.hpp") {
      continue;
    }
    fields.push_back({field.name, field.line});
  }

  const SourceFile* report = findFile(in, "src/core/report.cpp");
  const SourceFile* chaos = findFile(in, "tests/test_chaos_fuzz.cpp");
  const SourceFile* conservation =
      findFile(in, "tests/test_obs_conservation.cpp");

  for (const Field& field : fields) {
    std::vector<std::string> missing;
    if (report == nullptr || !hasIdentToken(*report, field.name)) {
      missing.push_back("read by the metrics adapter in src/core/report.cpp");
    }
    if (report == nullptr ||
        !hasStringContaining(*report, snakeCase(field.name))) {
      missing.push_back("registered under metric key \"" +
                        snakeCase(field.name) + "\" in src/core/report.cpp");
    }
    const bool conserved =
        (chaos != nullptr && hasIdentToken(*chaos, field.name)) ||
        (conservation != nullptr && hasIdentToken(*conservation, field.name));
    if (!conserved) {
      missing.push_back(
          "asserted by a conservation test (tests/test_chaos_fuzz.cpp or "
          "tests/test_obs_conservation.cpp)");
    }
    if (missing.empty()) continue;
    std::string msg = "ServeCounters::" + field.name + " is not ";
    for (std::size_t k = 0; k < missing.size(); ++k) {
      if (k) msg += "; not ";
      msg += missing[k];
    }
    add(out, "counter-registration", decl->relPath, field.line,
        std::move(msg));
  }
}

// ---------------------------------------------------------------------------
// Rule: bench-hygiene
// ---------------------------------------------------------------------------
// Every bench target must be held by both determinism gates: the --jobs
// byte-diff in tools/check.sh and a golden file in tests/golden/. A bench
// that is inherently nondeterministic (wall-clock microbenchmarks) carries
// a file-wide allow instead.

void ruleBenchHygiene(const LintInput& in, std::vector<Finding>& out) {
  if (!in.hasCheckSh) return;  // fixture roots without CI are not checked
  for (const std::string& src : in.benchSources) {
    // "bench/NAME.cpp" -> NAME
    const std::size_t slash = src.rfind('/');
    std::string name = src.substr(slash + 1);
    name = name.substr(0, name.size() - 4);
    if (name == "bench_common") continue;

    const bool inCheckSh = in.checkShText.find(name) != std::string::npos;
    bool hasGolden = false;
    for (const std::string& g : in.goldenFiles) {
      if (g.rfind(name, 0) == 0) {
        hasGolden = true;
        break;
      }
    }
    if (inCheckSh && hasGolden) continue;
    std::string msg = "bench target '" + name + "' is not ";
    if (!inCheckSh) {
      msg += "registered in tools/check.sh's determinism diff";
      if (!hasGolden) msg += " and not ";
    }
    if (!hasGolden) {
      msg += "covered by a golden in tests/golden/";
    }
    msg += "; register it or add a file-wide allow with the reason it "
           "cannot be deterministic";
    add(out, "bench-hygiene", src, 1, std::move(msg));
  }
}

// ---------------------------------------------------------------------------
// Rule: hot-path-alloc
// ---------------------------------------------------------------------------
// The flat serve path — the node slab, the key arena, the open-addressing
// table and the SLRU segments built on them — is allocation-free per
// operation by design; that property is where the cold-fill speedups come
// from and it regresses silently (a stray per-entry resize() costs 2x and
// no test fails). In the serve-path files every allocation-shaped token
// (operator new, make_unique/make_shared, malloc-family calls, and
// container growth like .push_back/.resize) must carry an allow stating
// its amortization argument.

void ruleHotPathAlloc(const LintInput& in, std::vector<Finding>& out) {
  static constexpr std::array<std::string_view, 5> kAllocCalls = {
      "make_unique", "make_shared", "malloc", "calloc", "realloc"};
  static constexpr std::array<std::string_view, 6> kGrowthCalls = {
      "push_back", "emplace_back", "resize", "reserve", "assign", "insert"};

  for (const SourceFile& f : in.files) {
    // The serve-path whitelist: the slab/arena storage, the flat cache, and
    // the SLRU wrapper whose segments are flat caches. The node-based
    // reference backends (lru.cpp, clock.cpp, ...) allocate per entry by
    // design and are deliberately out of scope.
    if (!fileIs(f, {"src/cache/slab.hpp", "src/cache/flat_cache.hpp",
                    "src/cache/flat_cache.cpp", "src/cache/slru.cpp"})) {
      continue;
    }
    const Tokens& t = f.tokens;
    for (std::size_t i = 0; i < t.size(); ++i) {
      if (t[i].kind != TokenKind::kIdentifier) continue;
      const std::string& s = t[i].text;
      const Token* prev = i > 0 ? &t[i - 1] : nullptr;
      const Token* next = i + 1 < t.size() ? &t[i + 1] : nullptr;

      if (s == "new" && (!prev || !isPunct(*prev, "::"))) {
        add(out, "hot-path-alloc", f.relPath, t[i].line,
            "operator new in a serve-path file; nodes and keys must come "
            "from the slab/arena (src/cache/slab.hpp)");
        continue;
      }
      if (std::find(kAllocCalls.begin(), kAllocCalls.end(), s) !=
              kAllocCalls.end() &&
          next && (isPunct(*next, "(") || isPunct(*next, "<"))) {
        add(out, "hot-path-alloc", f.relPath, t[i].line,
            "heap allocation (" + s + ") in a serve-path file; allocate in "
            "amortized chunks and annotate the amortization argument");
        continue;
      }
      if (std::find(kGrowthCalls.begin(), kGrowthCalls.end(), s) !=
              kGrowthCalls.end() &&
          next && isPunct(*next, "(") && prev &&
          (isPunct(*prev, ".") || isPunct(*prev, "->"))) {
        add(out, "hot-path-alloc", f.relPath, t[i].line,
            "container growth (." + s + ") in a serve-path file can "
            "reallocate per entry; grow in amortized strides and annotate "
            "the amortization argument");
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Driver: rules -> suppression filtering -> suppression audit -> sort
// ---------------------------------------------------------------------------

std::vector<Finding> runLint(LintInput& input) {
  const Index index = buildIndex(input);

  std::vector<Finding> raw;
  ruleDeterminism(input, raw);
  ruleUnorderedIter(input, index, raw);
  ruleChargeFunnel(input, raw);
  ruleCounterRegistration(input, index, raw);
  ruleBenchHygiene(input, raw);
  ruleHotPathAlloc(input, raw);
  runFlowRules(input, index, raw);

  std::vector<Finding> kept;
  for (Finding& finding : raw) {
    bool suppressed = false;
    for (SourceFile& f : input.files) {
      if (f.relPath != finding.file) continue;
      for (Suppression& s : f.suppressions) {
        if (s.rule != finding.rule || s.reason.empty()) continue;
        if (s.fileWide || s.line == finding.line ||
            s.line + 1 == finding.line) {
          s.used = true;
          suppressed = true;
          break;
        }
      }
      break;
    }
    if (!suppressed) kept.push_back(std::move(finding));
  }

  // Audit the suppressions themselves: they must name a real rule, carry a
  // reason, and actually suppress something. (Audit findings are not
  // suppressible — that way lies turtles.)
  const std::vector<std::string>& rules = knownRules();
  for (const SourceFile& f : input.files) {
    for (const Suppression& s : f.suppressions) {
      if (s.rule.empty()) {
        add(kept, "suppression", f.relPath, s.line,
            "malformed dcache-lint directive; use "
            "`dcache-lint: allow(rule-id, reason)`");
        continue;
      }
      if (std::find(rules.begin(), rules.end(), s.rule) == rules.end()) {
        add(kept, "suppression", f.relPath, s.line,
            "unknown rule '" + s.rule + "' (see dcache_lint --list-rules)");
        continue;
      }
      if (s.reason.empty()) {
        add(kept, "suppression", f.relPath, s.line,
            "suppression of '" + s.rule +
                "' is missing its mandatory reason: "
                "allow(" + s.rule + ", <why this site is safe>)");
        continue;
      }
      if (!s.used) {
        add(kept, "suppression", f.relPath, s.line,
            "stale suppression: no '" + s.rule +
                "' finding at this site — delete the allow");
      }
    }
  }

  std::sort(kept.begin(), kept.end(), findingLess);
  return kept;
}

}  // namespace dcache::lint
