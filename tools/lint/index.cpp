// Index construction: one linear walk per file with a scope stack. The
// classifier for '{' is the heart of it — function body vs class body vs
// namespace vs initializer — and is deliberately conservative: anything it
// cannot classify becomes an anonymous block, which only ever *widens*
// what the rules treat as reachable.
#include "index.hpp"

#include <algorithm>
#include <array>
#include <cctype>

namespace dcache::lint {

namespace {

using Tokens = std::vector<Token>;

[[nodiscard]] bool isId(const Token& t, std::string_view s) {
  return t.kind == TokenKind::kIdentifier && t.text == s;
}
[[nodiscard]] bool isPunct(const Token& t, std::string_view s) {
  return t.kind == TokenKind::kPunct && t.text == s;
}

[[nodiscard]] bool isControlKeyword(const std::string& s) {
  static constexpr std::array<std::string_view, 7> kControl = {
      "if", "for", "while", "switch", "catch", "return", "sizeof"};
  return std::find(kControl.begin(), kControl.end(), s) != kControl.end();
}

/// Matching partner for every paren/brace/bracket token, or npos. An
/// unbalanced file (half of an #ifdef pair) degrades to npos matches,
/// which the walkers treat as "skip to end".
constexpr std::size_t kNpos = static_cast<std::size_t>(-1);

struct Matcher {
  std::vector<std::size_t> match;

  explicit Matcher(const Tokens& toks) : match(toks.size(), kNpos) {
    std::vector<std::size_t> parens, braces, brackets;
    for (std::size_t i = 0; i < toks.size(); ++i) {
      if (toks[i].kind != TokenKind::kPunct) continue;
      const std::string& s = toks[i].text;
      if (s == "(") parens.push_back(i);
      else if (s == "[") brackets.push_back(i);
      else if (s == "{") braces.push_back(i);
      else if (s == ")" && !parens.empty()) {
        match[i] = parens.back();
        match[parens.back()] = i;
        parens.pop_back();
      } else if (s == "]" && !brackets.empty()) {
        match[i] = brackets.back();
        match[brackets.back()] = i;
        brackets.pop_back();
      } else if (s == "}" && !braces.empty()) {
        match[i] = braces.back();
        match[braces.back()] = i;
        braces.pop_back();
      }
    }
  }
};

enum class ScopeKind : unsigned char {
  kNamespace,
  kClass,
  kFunction,
  kEnum,
  kBlock,  // initializer lists, control blocks, anything unclassified
};

struct Classified {
  ScopeKind kind = ScopeKind::kBlock;
  std::string name;              // class/namespace/function name
  /// For qualified out-of-class definitions (`Tracer::startRequest(...)`)
  /// the qualifier; "" when the definition is lexically inside its class.
  std::string qualifier;
  std::vector<std::string> paramNames;  // functions only
  bool isConstructor = false;
  bool isDestructor = false;
};

/// Tokens that may sit between a function's ')' and its '{':
/// `const noexcept override final -> Type && requires(...)` etc.
[[nodiscard]] bool isTrailingToken(const Token& t) {
  if (t.kind == TokenKind::kIdentifier) {
    // Keywords and type names alike: trailing-return types are plain
    // identifiers, so every identifier is a plausible trailing token.
    return true;
  }
  if (t.kind != TokenKind::kPunct) return false;
  static constexpr std::array<std::string_view, 8> kPunctTrail = {
      "::", "<", ">", "*", "&", "&&", "->", ","};
  return std::find(kPunctTrail.begin(), kPunctTrail.end(), t.text) !=
         kPunctTrail.end();
}

/// Collect parameter names from the '(' at `open` to its matching ')':
/// for each top-level comma-separated slice, the last identifier before
/// any '=' default is the name (or "" when unnamed / "void").
void collectParams(const Tokens& toks, const Matcher& m, std::size_t open,
                   std::vector<std::string>& out) {
  const std::size_t close = m.match[open];
  if (close == kNpos) return;
  std::size_t sliceStart = open + 1;
  int angle = 0;  // `std::map<K, V> m` — angle commas don't split slices
  for (std::size_t i = open + 1; i <= close; ++i) {
    const bool atEnd = (i == close);
    const bool topComma = !atEnd && isPunct(toks[i], ",") && angle == 0;
    if (!topComma && !atEnd) {
      if (isPunct(toks[i], "(") || isPunct(toks[i], "[") ||
          isPunct(toks[i], "{")) {
        const std::size_t jump = m.match[i];
        if (jump != kNpos && jump > i && jump < close) i = jump;
      } else if (isPunct(toks[i], "<")) {
        ++angle;
      } else if (isPunct(toks[i], ">") && angle > 0) {
        --angle;
      }
      continue;
    }
    // Slice [sliceStart, i): last identifier before '='.
    std::size_t stop = i;
    for (std::size_t k = sliceStart; k < i; ++k) {
      if (isPunct(toks[k], "=")) {
        stop = k;
        break;
      }
    }
    std::string name;
    for (std::size_t k = stop; k-- > sliceStart;) {
      if (toks[k].kind == TokenKind::kIdentifier && toks[k].text != "const" &&
          toks[k].text != "void") {
        name = toks[k].text;
        break;
      }
    }
    if (!(name.empty() && sliceStart == open + 1 && i == close)) {
      out.push_back(name);
    }
    sliceStart = i + 1;
  }
}

/// Classify the '{' at index `bracePos`. `enclosingClass` is the innermost
/// class scope's name (constructor/destructor detection).
[[nodiscard]] Classified classifyBrace(const Tokens& toks, const Matcher& m,
                                       std::size_t bracePos,
                                       const std::string& enclosingClass) {
  Classified out;
  if (bracePos == 0) return out;

  // Walk back over trailing decorations to find ')' / class header / etc.
  std::size_t j = bracePos;
  while (j > 0) {
    const Token& t = toks[j - 1];
    if (t.kind == TokenKind::kIdentifier) {
      const std::string& s = t.text;
      if (s == "class" || s == "struct" || s == "union") {
        // `class NAME ... {` — the name is the first identifier after the
        // keyword (walk forward from the keyword, not backward: bases and
        // attributes may follow the name).
        if (j >= 2 && isId(toks[j - 2], "enum")) {
          out.kind = ScopeKind::kEnum;
          return out;
        }
        out.kind = ScopeKind::kClass;
        for (std::size_t k = j; k < bracePos; ++k) {
          if (toks[k].kind == TokenKind::kIdentifier &&
              toks[k].text != "final" && toks[k].text != "alignas") {
            out.name = toks[k].text;
            break;
          }
          if (isPunct(toks[k], ":")) break;  // anonymous with bases — rare
        }
        return out;
      }
      if (s == "namespace") {
        out.kind = ScopeKind::kNamespace;
        if (j < bracePos && toks[j].kind == TokenKind::kIdentifier) {
          out.name = toks[j].text;
        }
        return out;
      }
      if (s == "enum") {
        out.kind = ScopeKind::kEnum;
        return out;
      }
      if (s == "do" || s == "else" || s == "try" || s == "return") {
        return out;  // block
      }
      --j;  // plain identifier (trailing-return type, const, ...) — skip
      continue;
    }
    if (t.kind == TokenKind::kPunct) {
      const std::string& s = t.text;
      if (s == ")") {
        break;  // candidate function/lambda/control header
      }
      if (isTrailingToken(t)) {
        --j;
        continue;
      }
      return out;  // `= {`, `, {`, `; {`, `} {`, `({`, `[{` … — block
    }
    return out;  // literal before '{' — initializer
  }
  if (j == 0 || !isPunct(toks[j - 1], ")")) return out;

  // Resolve ctor-init lists and noexcept(...) chains: hop '(' groups
  // leftward until the one whose preceding token names the function.
  std::size_t closeIdx = j - 1;
  for (int hops = 0; hops < 64; ++hops) {
    const std::size_t open = m.match[closeIdx];
    if (open == kNpos || open == 0) return out;
    const Token& before = toks[open - 1];
    if (before.kind == TokenKind::kIdentifier) {
      const std::string& name = before.text;
      if (isControlKeyword(name)) return out;  // if/for/while/switch/catch
      if (name == "noexcept") {
        // `) noexcept(...)` — keep walking back from before `noexcept`.
        std::size_t k = open - 1;
        while (k > 0 && isTrailingToken(toks[k - 1]) &&
               !isPunct(toks[k - 1], ")")) {
          --k;
        }
        if (k == 0 || !isPunct(toks[k - 1], ")")) return out;
        closeIdx = k - 1;
        continue;
      }
      // Ctor-init-list entry `X(...)` preceded by ':' or ','? Then the
      // real parameter list is further left: `Ctor(args) : X(1), Y(2) {`.
      if (open >= 2 &&
          (isPunct(toks[open - 2], ":") || isPunct(toks[open - 2], ","))) {
        // Scan left for a ')' that closes the parameter list.
        std::size_t k = open - 2;
        while (k > 0 && !isPunct(toks[k - 1], ")") &&
               !isPunct(toks[k - 1], ";") && !isPunct(toks[k - 1], "}") &&
               !isPunct(toks[k - 1], "{")) {
          --k;
        }
        if (k == 0 || !isPunct(toks[k - 1], ")")) return out;
        closeIdx = k - 1;
        continue;
      }
      out.kind = ScopeKind::kFunction;
      out.name = name;
      out.isDestructor = open >= 2 && isPunct(toks[open - 2], "~");
      // Qualified definition? `Qual::name(` or `Qual::~name(`. The
      // qualifier may be a namespace rather than a class — acceptable
      // over-approximation, documented with the index.
      const std::size_t tilde = out.isDestructor ? 1 : 0;
      if (open >= 3 + tilde && isPunct(toks[open - 2 - tilde], "::") &&
          toks[open - 3 - tilde].kind == TokenKind::kIdentifier) {
        out.qualifier = toks[open - 3 - tilde].text;
      }
      out.isConstructor =
          !out.isDestructor &&
          ((!enclosingClass.empty() && name == enclosingClass) ||
           (!out.qualifier.empty() && name == out.qualifier));
      collectParams(toks, m, open, out.paramNames);
      return out;
    }
    if (before.kind == TokenKind::kPunct) {
      if (before.text == "]") {
        // Lambda `[...](...)...{` — indexed separately by the lambda pass.
        return out;
      }
      if (before.text == ">") {
        // `operator>` / `operator>>`/ template-id call operators: accept
        // only the explicit `operator` spelling.
        if (open >= 3 && isId(toks[open - 3], "operator")) {
          out.kind = ScopeKind::kFunction;
          out.name = "operator" + toks[open - 2].text;
          collectParams(toks, m, open, out.paramNames);
          return out;
        }
        return out;
      }
      if (open >= 2 && isId(toks[open - 2], "operator")) {
        out.kind = ScopeKind::kFunction;
        out.name = "operator" + before.text;
        collectParams(toks, m, open, out.paramNames);
        return out;
      }
    }
    return out;
  }
  return out;
}

/// First identifier of an alias target after stripping std/leading '::'.
[[nodiscard]] std::string headIdentifier(const Tokens& toks, std::size_t from,
                                         std::size_t to) {
  for (std::size_t k = from; k < to; ++k) {
    if (toks[k].kind == TokenKind::kIdentifier && toks[k].text != "std" &&
        toks[k].text != "const" && toks[k].text != "typename") {
      return toks[k].text;
    }
  }
  return "";
}

[[nodiscard]] std::string joinTokens(const Tokens& toks, std::size_t from,
                                     std::size_t to) {
  std::string out;
  for (std::size_t k = from; k < to; ++k) {
    if (!out.empty()) out.push_back(' ');
    out += toks[k].text;
  }
  return out;
}

void collectCallees(const Tokens& toks, std::size_t from, std::size_t to,
                    std::vector<std::string>& out) {
  std::set<std::string> seen;
  for (std::size_t i = from; i + 1 < to; ++i) {
    if (toks[i].kind != TokenKind::kIdentifier || !isPunct(toks[i + 1], "(")) {
      continue;
    }
    const std::string& s = toks[i].text;
    if (isControlKeyword(s) || s == "assert" || s == "defined") continue;
    if (seen.insert(s).second) out.push_back(s);
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Lambda parsing
// ---------------------------------------------------------------------------

bool parseLambdaAt(const std::vector<Token>& toks, std::size_t open,
                   LambdaDecl& out) {
  if (open >= toks.size() || !isPunct(toks[open], "[")) return false;
  // Subscript if preceded by a value-producing token.
  if (open > 0) {
    const Token& prev = toks[open - 1];
    if (prev.kind == TokenKind::kIdentifier || prev.kind == TokenKind::kNumber ||
        prev.kind == TokenKind::kString || isPunct(prev, ")") ||
        isPunct(prev, "]")) {
      return false;
    }
  }
  const Matcher m(toks);
  const std::size_t close = m.match[open];
  if (close == kNpos) return false;

  // After ']' must come '(' (params), '{' (body), '<' (template lambda),
  // or the `mutable`/`noexcept`/'->' decorations.
  std::size_t after = close + 1;
  if (after >= toks.size()) return false;
  if (!isPunct(toks[after], "(") && !isPunct(toks[after], "{") &&
      !isPunct(toks[after], "<") && !isId(toks[after], "mutable") &&
      !isId(toks[after], "noexcept")) {
    return false;
  }

  out.line = toks[open].line;
  out.captures.clear();
  out.paramNames.clear();

  // Parse captures: top-level comma slices of (open, close).
  std::size_t sliceStart = open + 1;
  for (std::size_t i = open + 1; i <= close; ++i) {
    if (i < close && (isPunct(toks[i], "(") || isPunct(toks[i], "[") ||
                      isPunct(toks[i], "{"))) {
      const std::size_t jump = m.match[i];
      if (jump != kNpos && jump < close) i = jump;
      continue;
    }
    if (i < close && !isPunct(toks[i], ",")) continue;
    if (sliceStart < i) {
      LambdaCapture cap{LambdaCapture::Kind::kByVal, ""};
      const Token& first = toks[sliceStart];
      const std::size_t len = i - sliceStart;
      bool hasInit = false;
      for (std::size_t k = sliceStart; k < i; ++k) {
        if (isPunct(toks[k], "=")) hasInit = true;
      }
      if (isPunct(first, "&")) {
        if (len == 1) {
          cap.kind = LambdaCapture::Kind::kRefDefault;
        } else {
          cap.kind = hasInit ? LambdaCapture::Kind::kInitRef
                             : LambdaCapture::Kind::kByRef;
          if (toks[sliceStart + 1].kind == TokenKind::kIdentifier) {
            cap.name = toks[sliceStart + 1].text;
          }
        }
      } else if (isPunct(first, "=")) {
        cap.kind = LambdaCapture::Kind::kValDefault;
      } else if (isId(first, "this")) {
        cap.kind = LambdaCapture::Kind::kThis;
        cap.name = "this";
      } else if (isPunct(first, "*") && len >= 2 &&
                 isId(toks[sliceStart + 1], "this")) {
        cap.kind = LambdaCapture::Kind::kStarThis;
        cap.name = "this";
      } else if (first.kind == TokenKind::kIdentifier) {
        cap.kind = hasInit ? LambdaCapture::Kind::kInitVal
                           : LambdaCapture::Kind::kByVal;
        cap.name = first.text;
      }
      out.captures.push_back(std::move(cap));
    }
    sliceStart = i + 1;
  }

  // Parameters + body.
  std::size_t cursor = close + 1;
  if (cursor < toks.size() && isPunct(toks[cursor], "<")) {
    // Template lambda: skip to past '>' (single-char angles).
    int depth = 0;
    while (cursor < toks.size()) {
      if (isPunct(toks[cursor], "<")) ++depth;
      else if (isPunct(toks[cursor], ">") && --depth == 0) {
        ++cursor;
        break;
      }
      ++cursor;
    }
  }
  if (cursor < toks.size() && isPunct(toks[cursor], "(")) {
    collectParams(toks, m, cursor, out.paramNames);
    const std::size_t pclose = m.match[cursor];
    if (pclose == kNpos) return false;
    cursor = pclose + 1;
  }
  while (cursor < toks.size() && !isPunct(toks[cursor], "{")) {
    if (isPunct(toks[cursor], ";") || isPunct(toks[cursor], ")")) return false;
    ++cursor;
  }
  if (cursor >= toks.size()) return false;
  out.bodyBegin = cursor;
  out.bodyEnd = m.match[cursor] == kNpos ? toks.size() - 1 : m.match[cursor];
  return true;
}

// ---------------------------------------------------------------------------
// dimensionOf
// ---------------------------------------------------------------------------

std::string dimensionOf(const std::string& identifier) {
  const auto endsWith = [&](std::string_view suffix) {
    return identifier.size() >= suffix.size() &&
           identifier.compare(identifier.size() - suffix.size(),
                              suffix.size(), suffix) == 0;
  };
  // Rates first: `fooMicrosPerSec` is micros-per-second, not micros.
  if (endsWith("PerSec")) {
    const std::string base =
        identifier.substr(0, identifier.size() - 6);  // strip "PerSec"
    static constexpr std::array<std::string_view, 4> kBases = {
        "Micros", "Millis", "Bytes", "Ops"};
    for (const std::string_view b : kBases) {
      if (base.size() >= b.size() &&
          base.compare(base.size() - b.size(), b.size(), b) == 0) {
        return std::string(b) + "/s";
      }
    }
    return "PerSec";
  }
  static constexpr std::array<std::string_view, 5> kSuffixes = {
      "Micros", "Millis", "Seconds", "Bytes", "Dollars"};
  for (const std::string_view s : kSuffixes) {
    if (endsWith(s)) return std::string(s);
  }
  // Bare lowercase parameter names carry the dimension too ("micros",
  // "bytes", ...) — sim::Node::charge(component, micros) is the canonical
  // case the argument-passing check needs.
  static constexpr std::array<std::string_view, 5> kBare = {
      "micros", "millis", "seconds", "bytes", "dollars"};
  for (const std::string_view s : kBare) {
    if (identifier == s) {
      std::string dim(s);
      dim[0] = static_cast<char>(
          std::toupper(static_cast<unsigned char>(dim[0])));
      return dim;
    }
  }
  return "";
}

// ---------------------------------------------------------------------------
// Index build
// ---------------------------------------------------------------------------

Index buildIndex(const LintInput& input) {
  Index out;

  for (std::size_t fi = 0; fi < input.files.size(); ++fi) {
    const Tokens& toks = input.files[fi].tokens;
    const Matcher m(toks);

    struct Scope {
      ScopeKind kind;
      std::string name;
      std::size_t closeIdx;           // token index of the matching '}'
      std::size_t functionIdx = kNpos;  // into out.functions, if kFunction
      std::vector<Token> stmt;          // class scopes: statement buffer
    };
    std::vector<Scope> scopes;

    const auto innermostClass = [&]() -> std::string {
      for (std::size_t s = scopes.size(); s-- > 0;) {
        if (scopes[s].kind == ScopeKind::kClass) return scopes[s].name;
      }
      return "";
    };
    const auto inFunction = [&]() {
      for (std::size_t s = scopes.size(); s-- > 0;) {
        if (scopes[s].kind == ScopeKind::kFunction) return true;
      }
      return false;
    };

    for (std::size_t i = 0; i < toks.size(); ++i) {
      // Pop scopes whose close brace we just reached. When the popped
      // scope had a header (a method, nested class or enum declared inside
      // a class), the header tokens are sitting in the class's statement
      // buffer — drop them so the next field starts clean. Plain blocks
      // (brace-init `hits{0}`) keep the buffer: the declaration continues.
      while (!scopes.empty() && scopes.back().closeIdx == i) {
        const ScopeKind popped = scopes.back().kind;
        scopes.pop_back();
        if (popped != ScopeKind::kBlock && !scopes.empty() &&
            scopes.back().kind == ScopeKind::kClass) {
          scopes.back().stmt.clear();
        }
      }

      const Token& t = toks[i];

      // Alias declarations (any scope): `using A = ...;` / `typedef ... A;`
      if (isId(t, "using") && i + 2 < toks.size() &&
          toks[i + 1].kind == TokenKind::kIdentifier &&
          isPunct(toks[i + 2], "=")) {
        std::size_t end = i + 3;
        while (end < toks.size() && !isPunct(toks[end], ";")) ++end;
        AliasDecl alias;
        alias.name = toks[i + 1].text;
        alias.targetTokens = joinTokens(toks, i + 3, end);
        alias.targetHead = headIdentifier(toks, i + 3, end);
        alias.fileIndex = fi;
        alias.line = t.line;
        out.aliasesByName.emplace(alias.name,
                                  out.aliases.size());
        out.aliases.push_back(std::move(alias));
      } else if (isId(t, "typedef")) {
        std::size_t end = i + 1;
        while (end < toks.size() && !isPunct(toks[end], ";")) ++end;
        // Name is the last identifier before ';'.
        for (std::size_t k = end; k-- > i + 1;) {
          if (toks[k].kind == TokenKind::kIdentifier) {
            AliasDecl alias;
            alias.name = toks[k].text;
            alias.targetTokens = joinTokens(toks, i + 1, k);
            alias.targetHead = headIdentifier(toks, i + 1, k);
            alias.fileIndex = fi;
            alias.line = t.line;
            out.aliasesByName.emplace(alias.name, out.aliases.size());
            out.aliases.push_back(std::move(alias));
            break;
          }
        }
      }

      // Lambdas: indexed wherever they appear (body ranges power the
      // race-capture rule). Parsed against the shared matcher lazily.
      if (isPunct(t, "[")) {
        LambdaDecl lambda;
        if (parseLambdaAt(toks, i, lambda)) {
          lambda.fileIndex = fi;
          lambda.enclosingFunction = kNpos;
          for (std::size_t s = scopes.size(); s-- > 0;) {
            if (scopes[s].kind == ScopeKind::kFunction) {
              lambda.enclosingFunction = scopes[s].functionIdx;
              break;
            }
          }
          out.lambdas.push_back(std::move(lambda));
        }
      }

      // Class-scope field extraction: buffer statement tokens at class
      // depth; ';' terminates a candidate field.
      if (!scopes.empty() && scopes.back().kind == ScopeKind::kClass) {
        Scope& cls = scopes.back();
        if (isPunct(t, ";")) {
          const std::vector<Token>& stmt = cls.stmt;
          bool isFunc = false, skip = false;
          std::size_t eq = stmt.size();
          for (std::size_t k = 0; k < stmt.size(); ++k) {
            if (isPunct(stmt[k], "=") && eq == stmt.size()) eq = k;
            if (isPunct(stmt[k], "(") && k < eq) isFunc = true;
            if (isId(stmt[k], "using") || isId(stmt[k], "static") ||
                isId(stmt[k], "typedef") || isId(stmt[k], "friend") ||
                isId(stmt[k], "enum")) {
              skip = true;
            }
          }
          if (!stmt.empty() && !isFunc && !skip) {
            const std::size_t nameEnd = eq;
            for (std::size_t k = nameEnd; k-- > 0;) {
              if (stmt[k].kind == TokenKind::kIdentifier) {
                FieldDecl field;
                field.className = cls.name;
                field.name = stmt[k].text;
                field.typeTokens = [&] {
                  std::string s;
                  for (std::size_t q = 0; q < k; ++q) {
                    if (!s.empty()) s.push_back(' ');
                    s += stmt[q].text;
                  }
                  return s;
                }();
                field.fileIndex = fi;
                field.line = stmt[k].line;
                out.fieldsByName[field.name].push_back(out.fields.size());
                out.fields.push_back(std::move(field));
                break;
              }
            }
          }
          cls.stmt.clear();
        } else if (isPunct(t, ":") && cls.stmt.size() == 1 &&
                   (isId(cls.stmt[0], "public") ||
                    isId(cls.stmt[0], "private") ||
                    isId(cls.stmt[0], "protected"))) {
          cls.stmt.clear();  // access specifier
        } else if (!isPunct(t, "{") && !isPunct(t, "}")) {
          cls.stmt.push_back(t);
        }
      }

      if (!isPunct(t, "{")) continue;

      const std::size_t closeIdx =
          m.match[i] == kNpos ? toks.size() : m.match[i];
      Classified c = classifyBrace(toks, m, i, innermostClass());

      Scope scope;
      scope.kind = c.kind;
      scope.name = c.name;
      scope.closeIdx = closeIdx;

      if (c.kind == ScopeKind::kFunction && !inFunction()) {
        FunctionDecl fn;
        fn.name = c.name;
        fn.className =
            c.qualifier.empty() ? innermostClass() : c.qualifier;
        fn.fileIndex = fi;
        fn.line = toks[i].line;
        fn.paramNames = std::move(c.paramNames);
        fn.bodyBegin = i;
        fn.bodyEnd = closeIdx;
        fn.isConstructor = c.isConstructor;
        fn.isDestructor = c.isDestructor;
        collectCallees(toks, i + 1, closeIdx, fn.callees);
        scope.functionIdx = out.functions.size();
        out.functionsByName[fn.name].push_back(out.functions.size());
        out.functions.push_back(std::move(fn));
      } else if (c.kind == ScopeKind::kFunction) {
        scope.kind = ScopeKind::kBlock;  // local helper inside a function
      }

      // If the brace-scope closes immediately degenerate ('{}'), pop now.
      if (closeIdx <= i) continue;
      scopes.push_back(std::move(scope));
    }
  }

  return out;
}

// ---------------------------------------------------------------------------
// Queries
// ---------------------------------------------------------------------------

std::string Index::resolveAliasChain(const std::string& name) const {
  std::set<std::string> visited;
  std::string cur = name;
  std::string lastTarget;
  while (visited.insert(cur).second) {
    const auto it = aliasesByName.find(cur);
    if (it == aliasesByName.end()) break;
    lastTarget = aliases[it->second].targetTokens;
    cur = aliases[it->second].targetHead;
    if (cur.empty()) break;
  }
  return lastTarget;
}

bool Index::reaches(const std::string& from,
                    const std::set<std::string>& sinks) const {
  std::set<std::string> visited;
  std::vector<std::string> stack{from};
  while (!stack.empty()) {
    const std::string cur = stack.back();
    stack.pop_back();
    if (!visited.insert(cur).second) continue;
    const auto it = functionsByName.find(cur);
    if (it == functionsByName.end()) continue;
    for (const std::size_t idx : it->second) {
      for (const std::string& callee : functions[idx].callees) {
        if (sinks.count(callee)) return true;
        if (!visited.count(callee)) stack.push_back(callee);
      }
    }
  }
  return false;
}

std::size_t Index::enclosingFunctionAt(std::size_t fileIndex,
                                       std::size_t tokenIdx) const {
  std::size_t best = kNpos;
  std::size_t bestSpan = kNpos;
  for (std::size_t i = 0; i < functions.size(); ++i) {
    const FunctionDecl& fn = functions[i];
    if (fn.fileIndex != fileIndex) continue;
    if (tokenIdx < fn.bodyBegin || tokenIdx > fn.bodyEnd) continue;
    const std::size_t span = fn.bodyEnd - fn.bodyBegin;
    if (span < bestSpan) {
      best = i;
      bestSpan = span;
    }
  }
  return best;
}

}  // namespace dcache::lint
