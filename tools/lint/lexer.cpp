// Tokenizer for dcache-lint. Light but honest: comments and literals are
// handled for real (including raw strings and escapes) because the rules
// must never fire on a banned token that only appears inside a comment or
// a string — and must still see string *contents* for the metric-name
// checks. Suppression directives live in comments, so they are parsed here.
#include "lint.hpp"

#include <cctype>

namespace dcache::lint {

namespace {

[[nodiscard]] bool isIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
[[nodiscard]] bool isIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

[[nodiscard]] std::string trim(std::string s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

/// Parse every `allow(...)` / `allow-file(...)` directive out of one
/// comment's text. Malformed directives (no closing paren) are recorded
/// with an empty rule so the suppression audit can flag them.
void parseDirectives(const std::string& comment, int line, bool /*block*/,
                     std::vector<Suppression>& out) {
  static const std::string kMarker = "dcache-lint:";
  std::size_t pos = comment.find(kMarker);
  while (pos != std::string::npos) {
    std::size_t p = pos + kMarker.size();
    while (p < comment.size() &&
           std::isspace(static_cast<unsigned char>(comment[p]))) {
      ++p;
    }
    bool fileWide = false;
    static const std::string kAllowFile = "allow-file(";
    static const std::string kAllow = "allow(";
    std::size_t argStart = std::string::npos;
    if (comment.compare(p, kAllowFile.size(), kAllowFile) == 0) {
      fileWide = true;
      argStart = p + kAllowFile.size();
    } else if (comment.compare(p, kAllow.size(), kAllow) == 0) {
      argStart = p + kAllow.size();
    }
    if (argStart == std::string::npos) {
      // A "dcache-lint:" marker with no recognizable directive: record it
      // malformed so it cannot silently do nothing.
      out.push_back({"", "", line, false, false});
      pos = comment.find(kMarker, p);
      continue;
    }
    const std::size_t close = comment.find(')', argStart);
    if (close == std::string::npos) {
      out.push_back({"", "", line, fileWide, false});
      return;
    }
    const std::string args = comment.substr(argStart, close - argStart);
    const std::size_t comma = args.find(',');
    Suppression s;
    s.line = line;
    s.fileWide = fileWide;
    if (comma == std::string::npos) {
      s.rule = trim(args);
      s.reason.clear();  // missing reason -> audited, does not suppress
    } else {
      s.rule = trim(args.substr(0, comma));
      s.reason = trim(args.substr(comma + 1));
    }
    out.push_back(std::move(s));
    pos = comment.find(kMarker, close);
  }
}

/// Multi-char operators the rules care about. Everything else is emitted
/// one char at a time ('<' and '>' stay single so template scanning can
/// count depth without untangling ">>").
[[nodiscard]] std::size_t matchOperator(const std::string& text,
                                        std::size_t i) {
  static const char* kTwo[] = {"::", "->", "+=", "-=", "*=", "/=", "==",
                               "!=", "&&", "||", "++", "--", "|=", "&=",
                               "^=", "%="};
  for (const char* op : kTwo) {
    if (text.compare(i, 2, op) == 0) return 2;
  }
  return 1;
}

}  // namespace

SourceFile lexFile(const std::string& relPath, const std::string& text) {
  SourceFile out;
  out.relPath = relPath;
  int line = 1;
  std::size_t i = 0;
  const std::size_t n = text.size();

  const auto advanceOver = [&](char c) {
    if (c == '\n') ++line;
  };

  while (i < n) {
    const char c = text[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Line comment.
    if (c == '/' && i + 1 < n && text[i + 1] == '/') {
      const std::size_t start = i + 2;
      std::size_t end = text.find('\n', start);
      if (end == std::string::npos) end = n;
      parseDirectives(text.substr(start, end - start), line, false,
                      out.suppressions);
      i = end;
      continue;
    }
    // Block comment.
    if (c == '/' && i + 1 < n && text[i + 1] == '*') {
      const int startLine = line;
      std::size_t j = i + 2;
      while (j + 1 < n && !(text[j] == '*' && text[j + 1] == '/')) {
        advanceOver(text[j]);
        ++j;
      }
      parseDirectives(text.substr(i + 2, j - (i + 2)), startLine, true,
                      out.suppressions);
      i = (j + 1 < n) ? j + 2 : n;
      continue;
    }
    // Raw string literal: (u8|u|U|L)?R"delim( ... )delim".
    // (An identifier ending in R would have been consumed by the
    // identifier branch, so reaching 'R' here means a fresh token.)
    if (c == 'R' && i + 1 < n && text[i + 1] == '"') {
      std::size_t j = i + 2;
      std::string delim;
      while (j < n && text[j] != '(' && delim.size() < 16) {
        delim.push_back(text[j]);
        ++j;
      }
      const std::string closer = ")" + delim + "\"";
      const int startLine = line;
      const std::size_t bodyStart = j + 1;
      const std::size_t end = text.find(closer, bodyStart);
      const std::size_t stop = (end == std::string::npos) ? n : end;
      for (std::size_t k = i; k < stop; ++k) advanceOver(text[k]);
      out.tokens.push_back({TokenKind::kString,
                            text.substr(bodyStart, stop - bodyStart),
                            startLine});
      i = (end == std::string::npos) ? n : end + closer.size();
      continue;
    }
    // String / char literal with escapes.
    if (c == '"' || c == '\'') {
      const char quote = c;
      const int startLine = line;
      std::size_t j = i + 1;
      std::string contents;
      while (j < n && text[j] != quote) {
        if (text[j] == '\\' && j + 1 < n) {
          contents.push_back(text[j]);
          contents.push_back(text[j + 1]);
          advanceOver(text[j + 1]);
          j += 2;
          continue;
        }
        advanceOver(text[j]);
        contents.push_back(text[j]);
        ++j;
      }
      out.tokens.push_back({quote == '"' ? TokenKind::kString
                                         : TokenKind::kCharLit,
                            std::move(contents), startLine});
      i = (j < n) ? j + 1 : n;
      continue;
    }
    // Identifier / keyword.
    if (isIdentStart(c)) {
      std::size_t j = i + 1;
      while (j < n && isIdentChar(text[j])) ++j;
      out.tokens.push_back({TokenKind::kIdentifier, text.substr(i, j - i),
                            line});
      i = j;
      continue;
    }
    // Number (loose pp-number: digits, idents, dots, exponent signs).
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(text[i + 1])))) {
      std::size_t j = i + 1;
      while (j < n && (isIdentChar(text[j]) || text[j] == '.' ||
                       ((text[j] == '+' || text[j] == '-') &&
                        (text[j - 1] == 'e' || text[j - 1] == 'E' ||
                         text[j - 1] == 'p' || text[j - 1] == 'P')))) {
        ++j;
      }
      out.tokens.push_back({TokenKind::kNumber, text.substr(i, j - i), line});
      i = j;
      continue;
    }
    // Preprocessor directives are lexed like ordinary tokens; the rules
    // only match semantic token sequences, so this is harmless.
    const std::size_t len = matchOperator(text, i);
    out.tokens.push_back({TokenKind::kPunct, text.substr(i, len), line});
    i += len;
  }
  return out;
}

bool findingLess(const Finding& a, const Finding& b) {
  if (a.file != b.file) return a.file < b.file;
  if (a.line != b.line) return a.line < b.line;
  if (a.rule != b.rule) return a.rule < b.rule;
  return a.message < b.message;
}

}  // namespace dcache::lint
