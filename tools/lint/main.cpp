// dcache_lint CLI: walk <root>/{src,bench,tests}, run every rule, print a
// human report and (optionally) a byte-stable JSON report, exit nonzero on
// findings. Run with no arguments from the repo root; tools/check.sh runs
// it as the first blocking lane and tools/update_goldens.sh refuses to
// record goldens while it is red.
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "lint.hpp"

namespace fs = std::filesystem;
using dcache::lint::Finding;
using dcache::lint::LintInput;
using dcache::lint::SourceFile;

namespace {

[[nodiscard]] bool readWholeFile(const fs::path& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  out = ss.str();
  return true;
}

[[nodiscard]] bool hasLintableExtension(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".h";
}

/// Root-relative path with '/' separators (byte-stable across platforms).
[[nodiscard]] std::string relPathOf(const fs::path& file,
                                    const fs::path& root) {
  return file.lexically_relative(root).generic_string();
}

/// Directories whose contents are deliberate violations or data files.
[[nodiscard]] bool isExcludedDir(const fs::path& dir) {
  const std::string name = dir.filename().string();
  return name == "lint_fixtures" || name == "golden";
}

void collectFiles(const fs::path& dir, std::vector<fs::path>& out) {
  if (!fs::exists(dir)) return;
  for (fs::recursive_directory_iterator it(dir), end; it != end; ++it) {
    if (it->is_directory()) {
      if (isExcludedDir(it->path())) it.disable_recursion_pending();
      continue;
    }
    if (it->is_regular_file() && hasLintableExtension(it->path())) {
      out.push_back(it->path());
    }
  }
}

[[nodiscard]] std::string jsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

/// The JSON report is byte-stable: findings are sorted, keys are emitted in
/// a fixed order, and nothing environment-dependent (absolute paths,
/// timestamps, host names) is included.
[[nodiscard]] std::string jsonReport(const std::vector<Finding>& findings,
                                     std::size_t filesScanned,
                                     std::size_t suppressionsUsed) {
  std::string out;
  out += "{\n";
  out += "  \"tool\": \"dcache-lint\",\n";
  out += "  \"version\": 1,\n";
  out += "  \"filesScanned\": " + std::to_string(filesScanned) + ",\n";
  out += "  \"suppressionsUsed\": " + std::to_string(suppressionsUsed) + ",\n";
  out += "  \"findings\": [";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    out += i ? ",\n    {" : "\n    {";
    out += "\"rule\": \"" + jsonEscape(f.rule) + "\", ";
    out += "\"file\": \"" + jsonEscape(f.file) + "\", ";
    out += "\"line\": " + std::to_string(f.line) + ", ";
    out += "\"message\": \"" + jsonEscape(f.message) + "\"}";
  }
  out += findings.empty() ? "]\n" : "\n  ]\n";
  out += "}\n";
  return out;
}

void usage(std::FILE* to) {
  std::fprintf(
      to,
      "usage: dcache_lint [--root DIR] [--json FILE|-] [--quiet] "
      "[--list-rules]\n"
      "\n"
      "Scans DIR/{src,bench,tests} for dcache invariant violations.\n"
      "Exit status: 0 clean, 1 findings, 2 usage/environment error.\n"
      "See INVARIANTS.md for the rule catalogue and suppression syntax.\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  std::string jsonOut;
  bool quiet = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg == "--json" && i + 1 < argc) {
      jsonOut = argv[++i];
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--list-rules") {
      for (const std::string& r : dcache::lint::knownRules()) {
        std::printf("%s\n", r.c_str());
      }
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      usage(stdout);
      return 0;
    } else {
      std::fprintf(stderr, "dcache_lint: unknown argument '%s'\n",
                   arg.c_str());
      usage(stderr);
      return 2;
    }
  }

  const fs::path rootPath(root);
  if (!fs::exists(rootPath / "src")) {
    std::fprintf(stderr,
                 "dcache_lint: '%s' does not look like the repo root "
                 "(no src/ directory)\n",
                 root.c_str());
    return 2;
  }

  LintInput input;

  std::vector<fs::path> files;
  for (const char* dir : {"src", "bench", "tests"}) {
    collectFiles(rootPath / dir, files);
  }
  std::vector<std::string> rels;
  rels.reserve(files.size());
  for (const fs::path& p : files) rels.push_back(relPathOf(p, rootPath));
  // Sort by relative path so the scan (and therefore the report) is
  // independent of directory enumeration order.
  std::vector<std::size_t> order(files.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return rels[a] < rels[b];
  });
  for (const std::size_t idx : order) {
    std::string text;
    if (!readWholeFile(files[idx], text)) {
      std::fprintf(stderr, "dcache_lint: cannot read %s\n",
                   rels[idx].c_str());
      return 2;
    }
    input.files.push_back(dcache::lint::lexFile(rels[idx], text));
    if (rels[idx].rfind("bench/", 0) == 0 &&
        files[idx].extension() == ".cpp") {
      input.benchSources.push_back(rels[idx]);
    }
  }

  input.hasCheckSh = readWholeFile(rootPath / "tools" / "check.sh",
                                   input.checkShText);
  const fs::path goldenDir = rootPath / "tests" / "golden";
  if (fs::exists(goldenDir)) {
    for (const auto& entry : fs::directory_iterator(goldenDir)) {
      if (entry.is_regular_file()) {
        input.goldenFiles.insert(entry.path().filename().string());
      }
    }
  }

  const std::vector<Finding> findings = dcache::lint::runLint(input);
  std::size_t suppressionsUsed = 0;
  for (const SourceFile& f : input.files) {
    for (const auto& s : f.suppressions) suppressionsUsed += s.used ? 1 : 0;
  }

  if (!quiet) {
    for (const Finding& f : findings) {
      std::printf("%s:%d: [%s] %s\n", f.file.c_str(), f.line, f.rule.c_str(),
                  f.message.c_str());
    }
    std::printf(
        "dcache-lint: %zu finding%s, %zu file%s scanned, %zu suppression%s "
        "honored\n",
        findings.size(), findings.size() == 1 ? "" : "s", input.files.size(),
        input.files.size() == 1 ? "" : "s", suppressionsUsed,
        suppressionsUsed == 1 ? "" : "s");
  }

  if (!jsonOut.empty()) {
    const std::string report =
        jsonReport(findings, input.files.size(), suppressionsUsed);
    if (jsonOut == "-") {
      std::fputs(report.c_str(), stdout);
    } else {
      std::ofstream out(jsonOut, std::ios::binary);
      if (!out) {
        std::fprintf(stderr, "dcache_lint: cannot write %s\n",
                     jsonOut.c_str());
        return 2;
      }
      out << report;
    }
  }

  return findings.empty() ? 0 : 1;
}
