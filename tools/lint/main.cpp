// dcache_lint CLI: walk <root>/{src,bench,tests}, run every rule, print a
// human report and (optionally) a byte-stable JSON report, exit nonzero on
// findings. Run with no arguments from the repo root; tools/check.sh runs
// it as the first blocking lane and tools/update_goldens.sh refuses to
// record goldens while it is red.
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "lint.hpp"

namespace fs = std::filesystem;
using dcache::lint::Finding;
using dcache::lint::LintInput;
using dcache::lint::SourceFile;

namespace {

[[nodiscard]] bool readWholeFile(const fs::path& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  out = ss.str();
  return true;
}

[[nodiscard]] bool hasLintableExtension(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".h";
}

/// Root-relative path with '/' separators (byte-stable across platforms).
[[nodiscard]] std::string relPathOf(const fs::path& file,
                                    const fs::path& root) {
  return file.lexically_relative(root).generic_string();
}

/// Directories whose contents are deliberate violations or data files.
[[nodiscard]] bool isExcludedDir(const fs::path& dir) {
  const std::string name = dir.filename().string();
  return name == "lint_fixtures" || name == "golden";
}

void collectFiles(const fs::path& dir, std::vector<fs::path>& out) {
  if (!fs::exists(dir)) return;
  for (fs::recursive_directory_iterator it(dir), end; it != end; ++it) {
    if (it->is_directory()) {
      if (isExcludedDir(it->path())) it.disable_recursion_pending();
      continue;
    }
    if (it->is_regular_file() && hasLintableExtension(it->path())) {
      out.push_back(it->path());
    }
  }
}

[[nodiscard]] std::string jsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

/// The JSON report is byte-stable: findings are sorted, keys are emitted in
/// a fixed order, and nothing environment-dependent (absolute paths,
/// timestamps, host names) is included.
[[nodiscard]] std::string jsonReport(const std::vector<Finding>& findings,
                                     std::size_t filesScanned,
                                     std::size_t suppressionsUsed) {
  std::string out;
  out += "{\n";
  out += "  \"tool\": \"dcache-lint\",\n";
  out += "  \"version\": 1,\n";
  out += "  \"filesScanned\": " + std::to_string(filesScanned) + ",\n";
  out += "  \"suppressionsUsed\": " + std::to_string(suppressionsUsed) + ",\n";
  out += "  \"findings\": [";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    out += i ? ",\n    {" : "\n    {";
    out += "\"rule\": \"" + jsonEscape(f.rule) + "\", ";
    out += "\"file\": \"" + jsonEscape(f.file) + "\", ";
    out += "\"line\": " + std::to_string(f.line) + ", ";
    out += "\"message\": \"" + jsonEscape(f.message) + "\"}";
  }
  out += findings.empty() ? "]\n" : "\n  ]\n";
  out += "}\n";
  return out;
}

/// Per-rule findings-count trend artifact: a byte-stable JSON object with
/// every known rule as a key (alphabetical), written next to the perf
/// baselines so lint coverage growth is visible like the perf trajectory.
[[nodiscard]] std::string trendReport(const std::vector<Finding>& findings,
                                      std::size_t filesScanned,
                                      std::size_t suppressionsUsed) {
  std::vector<std::string> rules = dcache::lint::knownRules();
  std::sort(rules.begin(), rules.end());
  std::string out;
  out += "{\n";
  out += "  \"tool\": \"dcache-lint\",\n";
  out += "  \"filesScanned\": " + std::to_string(filesScanned) + ",\n";
  out += "  \"suppressionsUsed\": " + std::to_string(suppressionsUsed) + ",\n";
  out += "  \"findingsByRule\": {\n";
  for (std::size_t i = 0; i < rules.size(); ++i) {
    std::size_t n = 0;
    for (const Finding& f : findings) n += f.rule == rules[i] ? 1 : 0;
    out += "    \"" + jsonEscape(rules[i]) + "\": " + std::to_string(n);
    out += i + 1 < rules.size() ? ",\n" : "\n";
  }
  out += "  }\n";
  out += "}\n";
  return out;
}

// ---------------------------------------------------------------------------
// --fix-suppressions: delete stale allow(...) directives
// ---------------------------------------------------------------------------

struct StaleSite {
  std::string relPath;
  int line;  // 1-based line holding the directive comment
};

/// Remove the dcache-lint directive comment from `lineText`: the whole
/// line when nothing but the comment lives there, else just the trailing
/// comment. Returns false when the directive is not in a // comment (block
/// comments are left for a human).
[[nodiscard]] bool stripDirective(const std::string& lineText,
                                  std::string& fixed, bool& dropLine) {
  const std::size_t mark = lineText.find("dcache-lint:");
  if (mark == std::string::npos) return false;
  const std::size_t slashes = lineText.rfind("//", mark);
  if (slashes == std::string::npos) return false;
  // Only leading whitespace before the comment? Then drop the whole line.
  bool onlyComment = true;
  for (std::size_t i = 0; i < slashes; ++i) {
    if (lineText[i] != ' ' && lineText[i] != '\t') {
      onlyComment = false;
      break;
    }
  }
  if (onlyComment) {
    dropLine = true;
    fixed.clear();
    return true;
  }
  dropLine = false;
  fixed = lineText.substr(0, slashes);
  while (!fixed.empty() && (fixed.back() == ' ' || fixed.back() == '\t')) {
    fixed.pop_back();
  }
  return true;
}

/// Apply (or preview) the deletions. Returns the number of directives
/// removed; prints a unified-style diff of every touched line.
std::size_t fixSuppressions(const fs::path& rootPath,
                            const std::vector<StaleSite>& sites, bool apply) {
  std::size_t removed = 0;
  // Group by file, preserving the (already sorted) site order.
  for (std::size_t s = 0; s < sites.size();) {
    const std::string& relPath = sites[s].relPath;
    std::size_t e = s;
    while (e < sites.size() && sites[e].relPath == relPath) ++e;

    std::string text;
    if (!readWholeFile(rootPath / relPath, text)) {
      std::fprintf(stderr, "dcache_lint: cannot read %s\n", relPath.c_str());
      s = e;
      continue;
    }
    std::vector<std::string> lines;
    std::string cur;
    for (const char c : text) {
      if (c == '\n') {
        lines.push_back(cur);
        cur.clear();
      } else {
        cur.push_back(c);
      }
    }
    const bool trailingNewline = cur.empty();
    if (!cur.empty()) lines.push_back(cur);

    std::vector<std::size_t> dropIdx;
    bool touched = false;
    for (std::size_t k = s; k < e; ++k) {
      const std::size_t idx = static_cast<std::size_t>(sites[k].line) - 1;
      if (idx >= lines.size()) continue;
      std::string fixed;
      bool dropLine = false;
      if (!stripDirective(lines[idx], fixed, dropLine)) {
        std::printf("%s:%d: directive not in a // comment; fix by hand\n",
                    relPath.c_str(), sites[k].line);
        continue;
      }
      std::printf("--- %s:%d\n-%s\n", relPath.c_str(), sites[k].line,
                  lines[idx].c_str());
      if (dropLine) {
        dropIdx.push_back(idx);
      } else {
        std::printf("+%s\n", fixed.c_str());
        lines[idx] = fixed;
      }
      ++removed;
      touched = true;
    }

    if (apply && touched) {
      std::string out;
      for (std::size_t i = 0; i < lines.size(); ++i) {
        if (std::find(dropIdx.begin(), dropIdx.end(), i) != dropIdx.end()) {
          continue;
        }
        out += lines[i];
        if (i + 1 < lines.size() || trailingNewline) out.push_back('\n');
      }
      std::ofstream ofs(rootPath / relPath, std::ios::binary);
      ofs << out;
    }
    s = e;
  }
  return removed;
}

void usage(std::FILE* to) {
  std::fprintf(
      to,
      "usage: dcache_lint [--root DIR] [--json FILE|-] [--trend FILE]\n"
      "                   [--quiet] [--list-rules]\n"
      "       dcache_lint --fix-suppressions [--apply] [--root DIR]\n"
      "\n"
      "Scans DIR/{src,bench,tests} for dcache invariant violations.\n"
      "Exit status: 0 clean, 1 findings, 2 usage/environment error.\n"
      "--trend writes a per-rule findings-count JSON artifact.\n"
      "--fix-suppressions deletes stale allow(...) directives: dry-run\n"
      "diff by default, --apply to edit files in place.\n"
      "See INVARIANTS.md for the rule catalogue and suppression syntax.\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  std::string jsonOut;
  std::string trendOut;
  bool quiet = false;
  bool fixMode = false;
  bool applyFixes = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg == "--json" && i + 1 < argc) {
      jsonOut = argv[++i];
    } else if (arg == "--trend" && i + 1 < argc) {
      trendOut = argv[++i];
    } else if (arg == "--fix-suppressions") {
      fixMode = true;
    } else if (arg == "--apply") {
      applyFixes = true;
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--list-rules") {
      for (const std::string& r : dcache::lint::knownRules()) {
        std::printf("%s\n", r.c_str());
      }
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      usage(stdout);
      return 0;
    } else {
      std::fprintf(stderr, "dcache_lint: unknown argument '%s'\n",
                   arg.c_str());
      usage(stderr);
      return 2;
    }
  }

  const fs::path rootPath(root);
  if (!fs::exists(rootPath / "src")) {
    std::fprintf(stderr,
                 "dcache_lint: '%s' does not look like the repo root "
                 "(no src/ directory)\n",
                 root.c_str());
    return 2;
  }

  LintInput input;

  std::vector<fs::path> files;
  for (const char* dir : {"src", "bench", "tests"}) {
    collectFiles(rootPath / dir, files);
  }
  std::vector<std::string> rels;
  rels.reserve(files.size());
  for (const fs::path& p : files) rels.push_back(relPathOf(p, rootPath));
  // Sort by relative path so the scan (and therefore the report) is
  // independent of directory enumeration order.
  std::vector<std::size_t> order(files.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return rels[a] < rels[b];
  });
  for (const std::size_t idx : order) {
    std::string text;
    if (!readWholeFile(files[idx], text)) {
      std::fprintf(stderr, "dcache_lint: cannot read %s\n",
                   rels[idx].c_str());
      return 2;
    }
    input.files.push_back(dcache::lint::lexFile(rels[idx], text));
    if (rels[idx].rfind("bench/", 0) == 0 &&
        files[idx].extension() == ".cpp") {
      input.benchSources.push_back(rels[idx]);
    }
  }

  input.hasCheckSh = readWholeFile(rootPath / "tools" / "check.sh",
                                   input.checkShText);
  const fs::path goldenDir = rootPath / "tests" / "golden";
  if (fs::exists(goldenDir)) {
    for (const auto& entry : fs::directory_iterator(goldenDir)) {
      if (entry.is_regular_file()) {
        input.goldenFiles.insert(entry.path().filename().string());
      }
    }
  }

  if (applyFixes && !fixMode) {
    std::fprintf(stderr,
                 "dcache_lint: --apply requires --fix-suppressions\n");
    usage(stderr);
    return 2;
  }

  const std::vector<Finding> findings = dcache::lint::runLint(input);
  std::size_t suppressionsUsed = 0;
  for (const SourceFile& f : input.files) {
    for (const auto& s : f.suppressions) suppressionsUsed += s.used ? 1 : 0;
  }

  if (fixMode) {
    // Stale = well-formed (known rule, has a reason) but suppressing
    // nothing. Malformed or unknown-rule directives stay: those are
    // mistakes a human should look at, not dead weight to sweep.
    const std::vector<std::string>& rules = dcache::lint::knownRules();
    std::vector<StaleSite> sites;
    for (const SourceFile& f : input.files) {
      for (const auto& s : f.suppressions) {
        if (s.used || s.rule.empty() || s.reason.empty()) continue;
        if (std::find(rules.begin(), rules.end(), s.rule) == rules.end()) {
          continue;
        }
        sites.push_back({f.relPath, s.line});
      }
    }
    const std::size_t removed = fixSuppressions(rootPath, sites, applyFixes);
    std::printf("dcache-lint: %zu stale suppression%s %s\n", removed,
                removed == 1 ? "" : "s",
                applyFixes ? "removed" : "found (dry run; --apply to edit)");
    return 0;
  }

  if (!quiet) {
    for (const Finding& f : findings) {
      std::printf("%s:%d: [%s] %s\n", f.file.c_str(), f.line, f.rule.c_str(),
                  f.message.c_str());
    }
    std::printf(
        "dcache-lint: %zu finding%s, %zu file%s scanned, %zu suppression%s "
        "honored\n",
        findings.size(), findings.size() == 1 ? "" : "s", input.files.size(),
        input.files.size() == 1 ? "" : "s", suppressionsUsed,
        suppressionsUsed == 1 ? "" : "s");
  }

  if (!jsonOut.empty()) {
    const std::string report =
        jsonReport(findings, input.files.size(), suppressionsUsed);
    if (jsonOut == "-") {
      std::fputs(report.c_str(), stdout);
    } else {
      std::ofstream out(jsonOut, std::ios::binary);
      if (!out) {
        std::fprintf(stderr, "dcache_lint: cannot write %s\n",
                     jsonOut.c_str());
        return 2;
      }
      out << report;
    }
  }

  if (!trendOut.empty()) {
    const std::string trend =
        trendReport(findings, input.files.size(), suppressionsUsed);
    std::ofstream out(trendOut, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "dcache_lint: cannot write %s\n",
                   trendOut.c_str());
      return 2;
    }
    out << trend;
  }

  return findings.empty() ? 0 : 1;
}
