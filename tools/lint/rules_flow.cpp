// The four symbol/flow-aware rules built on the declaration index and the
// by-name call graph (index.hpp): `units` (suffix-driven dimensional
// analysis), `race-capture` (by-reference captures into worker cells),
// `charge-path` (latency/wire-byte writers must reach the charge funnel),
// and `guard-pairing` (RAII discards + open/close protocol halves). All
// four are lexical over-approximations; the documented false-positive
// escape is a reasoned `// dcache-lint: allow(rule, reason)`.
#include <algorithm>
#include <array>
#include <string_view>

#include "index.hpp"
#include "lint.hpp"

namespace dcache::lint {

namespace {

using Tokens = std::vector<Token>;

constexpr std::size_t kNpos = static_cast<std::size_t>(-1);

[[nodiscard]] bool isId(const Token& t, std::string_view s) {
  return t.kind == TokenKind::kIdentifier && t.text == s;
}
[[nodiscard]] bool isPunct(const Token& t, std::string_view s) {
  return t.kind == TokenKind::kPunct && t.text == s;
}

void add(std::vector<Finding>& out, std::string rule,
         const std::string& file, int line, std::string message) {
  out.push_back({std::move(rule), file, line, std::move(message)});
}

/// Forward paren/brace/bracket matcher (duplicated from index.cpp's
/// internal one on purpose: both are implementation details and sharing
/// would couple the files for ~30 lines).
struct Matcher {
  std::vector<std::size_t> match;
  explicit Matcher(const Tokens& toks) : match(toks.size(), kNpos) {
    std::vector<std::size_t> parens, braces, brackets;
    for (std::size_t i = 0; i < toks.size(); ++i) {
      if (toks[i].kind != TokenKind::kPunct) continue;
      const std::string& s = toks[i].text;
      if (s == "(") parens.push_back(i);
      else if (s == "[") brackets.push_back(i);
      else if (s == "{") braces.push_back(i);
      else if (s == ")" && !parens.empty()) {
        match[i] = parens.back();
        match[parens.back()] = i;
        parens.pop_back();
      } else if (s == "]" && !brackets.empty()) {
        match[i] = brackets.back();
        match[brackets.back()] = i;
        brackets.pop_back();
      } else if (s == "}" && !braces.empty()) {
        match[i] = braces.back();
        match[braces.back()] = i;
        braces.pop_back();
      }
    }
  }
};

// ---------------------------------------------------------------------------
// Rule: units
// ---------------------------------------------------------------------------
// Suffix-driven dimensional analysis: identifiers ending in Micros / Millis
// / Seconds / Bytes / Dollars / *PerSec carry a dimension, and adding,
// subtracting, comparing or assigning across dimensions without a named
// conversion is how a micros value ends up on a millis axis (or a byte
// count in a latency column). Multiplication and division are exempt —
// they *are* the conversions (`millis * 1000`, `bytes / windowSeconds`).

struct Primary {
  std::string name;  // terminal identifier ("" = not a simple primary)
  std::size_t begin = 0;
  std::size_t end = 0;  // one past the primary
};

/// The simple primary ending at token `j` (identifier, member chain,
/// zero-/n-arg call result, or subscript), walking qualifier chains left.
[[nodiscard]] Primary primaryEndingAt(const Tokens& toks, const Matcher& m,
                                      std::size_t j) {
  Primary p;
  std::size_t nameIdx = kNpos;
  if (toks[j].kind == TokenKind::kIdentifier) {
    nameIdx = j;
    p.end = j + 1;
  } else if (isPunct(toks[j], ")") || isPunct(toks[j], "]")) {
    const std::size_t open = m.match[j];
    if (open == kNpos || open == 0) return p;
    if (toks[open - 1].kind != TokenKind::kIdentifier) return p;
    nameIdx = open - 1;
    p.end = j + 1;
  } else {
    return p;
  }
  std::size_t begin = nameIdx;
  while (begin >= 2 &&
         (isPunct(toks[begin - 1], ".") || isPunct(toks[begin - 1], "->") ||
          isPunct(toks[begin - 1], "::")) &&
         toks[begin - 2].kind == TokenKind::kIdentifier) {
    begin -= 2;
  }
  p.name = toks[nameIdx].text;
  p.begin = begin;
  return p;
}

/// The simple primary starting at token `k` (after an operator).
[[nodiscard]] Primary primaryStartingAt(const Tokens& toks, const Matcher& m,
                                        std::size_t k) {
  Primary p;
  if (k >= toks.size() || toks[k].kind != TokenKind::kIdentifier) return p;
  p.begin = k;
  std::string name = toks[k].text;
  std::size_t i = k + 1;
  while (i + 1 < toks.size() &&
         (isPunct(toks[i], ".") || isPunct(toks[i], "->") ||
          isPunct(toks[i], "::")) &&
         toks[i + 1].kind == TokenKind::kIdentifier) {
    name = toks[i + 1].text;
    i += 2;
  }
  if (i < toks.size() && (isPunct(toks[i], "(") || isPunct(toks[i], "["))) {
    const std::size_t close = m.match[i];
    if (close == kNpos) return p;
    i = close + 1;
  }
  p.name = std::move(name);
  p.end = i;
  return p;
}

[[nodiscard]] bool isScaleContext(const Tokens& toks, std::size_t idx) {
  return idx < toks.size() &&
         (isPunct(toks[idx], "*") || isPunct(toks[idx], "/"));
}

/// Top-level argument slices of the call parenthesis at `open`; angle
/// depth is tracked so `foo<a, b>(x)`-style template commas don't split.
void argSlices(const Tokens& toks, const Matcher& m, std::size_t open,
               std::vector<std::pair<std::size_t, std::size_t>>& out) {
  const std::size_t close = m.match[open];
  if (close == kNpos || close == open + 1) return;
  std::size_t sliceStart = open + 1;
  int angle = 0;
  for (std::size_t i = open + 1; i <= close; ++i) {
    if (i < close) {
      if (isPunct(toks[i], "(") || isPunct(toks[i], "[") ||
          isPunct(toks[i], "{")) {
        const std::size_t jump = m.match[i];
        if (jump != kNpos && jump < close) i = jump;
        continue;
      }
      if (isPunct(toks[i], "<")) ++angle;
      else if (isPunct(toks[i], ">") && angle > 0) --angle;
      if (!isPunct(toks[i], ",") || angle > 0) continue;
    }
    out.emplace_back(sliceStart, i);
    sliceStart = i + 1;
  }
}

void ruleUnits(const LintInput& in, const Index& index,
               std::vector<Finding>& out) {
  static constexpr std::array<std::string_view, 11> kOps = {
      "+", "-", "<", ">", "<=", ">=", "==", "!=", "=", "+=", "-="};

  for (const SourceFile& f : in.files) {
    const Tokens& t = f.tokens;
    const Matcher m(t);

    for (std::size_t i = 1; i + 1 < t.size(); ++i) {
      if (t[i].kind != TokenKind::kPunct) continue;
      if (std::find(kOps.begin(), kOps.end(), t[i].text) == kOps.end()) {
        continue;
      }
      const Primary lhs = primaryEndingAt(t, m, i - 1);
      if (lhs.name.empty()) continue;
      const Primary rhs = primaryStartingAt(t, m, i + 1);
      if (rhs.name.empty()) continue;
      // Multiplicative neighbors mean a conversion is in progress.
      if (lhs.begin > 0 && isScaleContext(t, lhs.begin - 1)) continue;
      if (isScaleContext(t, rhs.end)) continue;
      const std::string dimL = dimensionOf(lhs.name);
      const std::string dimR = dimensionOf(rhs.name);
      if (dimL.empty() || dimR.empty() || dimL == dimR) continue;
      add(out, "units", f.relPath, t[i].line,
          "dimensional mix: '" + lhs.name + "' (" + dimL + ") " + t[i].text +
              " '" + rhs.name + "' (" + dimR +
              ") without a named conversion; convert explicitly or fix the "
              "unit suffix");
    }

    // Argument passing: a dimension-suffixed value handed to a parameter
    // declared with a different dimension suffix.
    for (std::size_t i = 0; i + 1 < t.size(); ++i) {
      if (t[i].kind != TokenKind::kIdentifier || !isPunct(t[i + 1], "(")) {
        continue;
      }
      const auto decls = index.functionsByName.find(t[i].text);
      if (decls == index.functionsByName.end()) continue;
      std::vector<std::pair<std::size_t, std::size_t>> slices;
      argSlices(t, m, i + 1, slices);
      for (std::size_t pos = 0; pos < slices.size(); ++pos) {
        // Every indexed overload with this arity must agree on the
        // parameter's dimension, else the call is ambiguous and skipped.
        std::string paramDim;
        bool consistent = true, any = false;
        for (const std::size_t fnIdx : decls->second) {
          const FunctionDecl& fn = index.functions[fnIdx];
          if (fn.paramNames.size() != slices.size()) continue;
          const std::string d = dimensionOf(fn.paramNames[pos]);
          if (!any) {
            paramDim = d;
            any = true;
          } else if (d != paramDim) {
            consistent = false;
          }
        }
        if (!any || !consistent || paramDim.empty()) continue;
        // The argument must be one simple primary spanning its slice.
        const auto [aBegin, aEnd] = slices[pos];
        if (aBegin >= aEnd) continue;
        const Primary arg = primaryStartingAt(t, m, aBegin);
        if (arg.name.empty() || arg.end != aEnd) continue;
        const std::string argDim = dimensionOf(arg.name);
        if (argDim.empty() || argDim == paramDim) continue;
        add(out, "units", f.relPath, t[aBegin].line,
            "dimensional mix: '" + arg.name + "' (" + argDim +
                ") passed to parameter '" +
                [&] {
                  for (const std::size_t fnIdx : decls->second) {
                    const FunctionDecl& fn = index.functions[fnIdx];
                    if (fn.paramNames.size() == slices.size()) {
                      return fn.paramNames[pos];
                    }
                  }
                  return std::string();
                }() +
                "' (" + paramDim + ") of " + t[i].text +
                "(); convert explicitly or fix the unit suffix");
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: race-capture
// ---------------------------------------------------------------------------
// Lambdas submitted to util::ThreadPool (submit / mapOrdered) run on
// worker threads; mutable shared state captured by reference is a data
// race unless it is atomic, a mutex/cv, declared const, written strictly
// per-cell (every use subscripted), or accessed under a lock the body
// takes. Default [&] captures are flagged unconditionally: the race
// surface must be enumerable to be auditable.

/// Declaration-type text for `name` inside token range [from, to): up to 8
/// tokens preceding the first declaration-shaped occurrence.
[[nodiscard]] std::string declTypeIn(const Tokens& t, std::size_t from,
                                     std::size_t to, const std::string& name) {
  for (std::size_t i = from; i < to && i < t.size(); ++i) {
    if (!isId(t[i], name)) continue;
    if (i + 1 >= t.size()) break;
    const Token& next = t[i + 1];
    const bool declShaped = isPunct(next, "=") || isPunct(next, ";") ||
                            isPunct(next, "{") || isPunct(next, "(") ||
                            isPunct(next, ",") || isPunct(next, ")");
    if (!declShaped || i == 0) continue;
    const Token& prev = t[i - 1];
    const bool typeBefore = prev.kind == TokenKind::kIdentifier ||
                            isPunct(prev, ">") || isPunct(prev, "&") ||
                            isPunct(prev, "*");
    if (!typeBefore) continue;
    std::string type;
    const std::size_t lo = i >= 8 ? i - 8 : 0;
    for (std::size_t k = lo; k < i; ++k) {
      if (!type.empty()) type.push_back(' ');
      type += t[k].text;
    }
    return type;
  }
  return "";
}

[[nodiscard]] bool typeIsSynchronized(const std::string& type) {
  return type.find("atomic") != std::string::npos ||
         type.find("mutex") != std::string::npos ||
         type.find("condition_variable") != std::string::npos;
}
[[nodiscard]] bool typeIsConst(const std::string& type) {
  return type.find("const") != std::string::npos;
}

[[nodiscard]] bool isAssignOp(const Token& t) {
  if (t.kind != TokenKind::kPunct) return false;
  static constexpr std::array<std::string_view, 10> kOps = {
      "=", "+=", "-=", "*=", "/=", "|=", "&=", "^=", "++", "--"};
  return std::find(kOps.begin(), kOps.end(), t.text) != kOps.end();
}

/// The lambda body writes `name` directly: `name = / += / ++`, a member
/// write `name.field =`, or a pre-inc/dec. Subscripted writes
/// (`name[i] = ...`) are the per-cell slot pattern and do not count —
/// task i owning slot i is the sanctioned sharing discipline.
[[nodiscard]] bool bodyWritesName(const Tokens& t, std::size_t from,
                                  std::size_t to, const std::string& name) {
  for (std::size_t i = from; i < to && i < t.size(); ++i) {
    if (!isId(t[i], name)) continue;
    if (i > from && (isPunct(t[i - 1], "++") || isPunct(t[i - 1], "--"))) {
      return true;
    }
    if (i + 1 < t.size() && isAssignOp(t[i + 1])) return true;
    if (i + 3 < t.size() &&
        (isPunct(t[i + 1], ".") || isPunct(t[i + 1], "->")) &&
        t[i + 2].kind == TokenKind::kIdentifier && isAssignOp(t[i + 3])) {
      return true;
    }
  }
  return false;
}

[[nodiscard]] bool bodyTakesLock(const Tokens& t, std::size_t from,
                                 std::size_t to) {
  for (std::size_t i = from; i < to && i < t.size(); ++i) {
    if (isId(t[i], "lock_guard") || isId(t[i], "scoped_lock") ||
        isId(t[i], "unique_lock")) {
      return true;
    }
  }
  return false;
}

void ruleRaceCapture(const LintInput& in, const Index& index,
                     std::vector<Finding>& out) {
  for (std::size_t fi = 0; fi < in.files.size(); ++fi) {
    const SourceFile& f = in.files[fi];
    const Tokens& t = f.tokens;
    const Matcher m(t);

    for (std::size_t i = 0; i + 1 < t.size(); ++i) {
      if (t[i].kind != TokenKind::kIdentifier ||
          (t[i].text != "submit" && t[i].text != "mapOrdered") ||
          !isPunct(t[i + 1], "(")) {
        continue;
      }
      const std::size_t close = m.match[i + 1];
      if (close == kNpos) continue;

      for (const LambdaDecl& lambda : index.lambdas) {
        if (lambda.fileIndex != fi) continue;
        if (lambda.bodyBegin <= i + 1 || lambda.bodyBegin >= close) continue;

        // Enclosing-scope token range for declaration lookups: the
        // function this submission site lives in (falls back to the whole
        // file for namespace-scope submissions).
        std::size_t declFrom = 0, declTo = t.size();
        const std::size_t fnIdx = index.enclosingFunctionAt(fi, i);
        if (fnIdx != kNpos) {
          declFrom = index.functions[fnIdx].bodyBegin;
          declTo = index.functions[fnIdx].bodyEnd;
        }
        const bool locked =
            bodyTakesLock(t, lambda.bodyBegin, lambda.bodyEnd);

        for (const LambdaCapture& cap : lambda.captures) {
          switch (cap.kind) {
            case LambdaCapture::Kind::kRefDefault:
              add(out, "race-capture", f.relPath, lambda.line,
                  "default by-reference capture [&] on a lambda submitted "
                  "to a worker thread; enumerate the captures explicitly "
                  "so the shared state is auditable");
              break;
            case LambdaCapture::Kind::kThis: {
              if (locked) break;
              add(out, "race-capture", f.relPath, lambda.line,
                  "raw `this` captured into a worker-thread lambda; every "
                  "member touched becomes shared state — capture the "
                  "needed members explicitly, or annotate the per-cell "
                  "discipline");
              break;
            }
            case LambdaCapture::Kind::kByRef:
            case LambdaCapture::Kind::kInitRef: {
              if (cap.name.empty()) break;
              // Reads of fork-join inputs are fine; the race surface is a
              // direct write to the captured name from the worker.
              if (!bodyWritesName(t, lambda.bodyBegin, lambda.bodyEnd,
                                  cap.name)) {
                break;
              }
              const std::string type =
                  declTypeIn(t, declFrom, declTo, cap.name);
              if (typeIsSynchronized(type) || typeIsConst(type)) break;
              if (locked) break;  // body takes a lock: declared discipline
              add(out, "race-capture", f.relPath, lambda.line,
                  "'" + cap.name +
                      "' captured by reference and written from a "
                      "worker-thread lambda without atomics, a lock, or "
                      "per-cell subscripting; synchronize it or annotate "
                      "why the sharing is safe");
              break;
            }
            default:
              break;  // by-value copies are private to the worker
          }
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: charge-path
// ---------------------------------------------------------------------------
// Every serve-path function that claims latency or wire bytes (writes a
// latencyMicros / wireBytes result) must reach the billing funnel —
// sim::Node::charge, NetworkModel::transfer, or the rpc::Channel call
// surface (which charges internally) — through the call graph. A tier
// call that computes a latency but never bills the CPU/wire behind it is
// exactly the bug class the one-sided read and handoff paths hand-audited.

[[nodiscard]] bool inChargePathScope(const std::string& relPath) {
  return relPath.rfind("src/cache/", 0) == 0 ||
         relPath.rfind("src/rpc/", 0) == 0 ||
         relPath.rfind("src/storage/", 0) == 0 ||
         relPath.rfind("src/consistency/", 0) == 0 ||
         relPath == "src/core/deployment.cpp" ||
         relPath == "src/core/membership.cpp";
}

void ruleChargePath(const LintInput& in, const Index& index,
                    std::vector<Finding>& out) {
  static const std::set<std::string> kFunnel = {
      "charge",      "transfer",       "onBytesMoved", "call",
      "callWithPolicy", "callHedged",  "oneSidedRead"};

  for (const FunctionDecl& fn : index.functions) {
    const SourceFile& f = in.files[fn.fileIndex];
    if (!inChargePathScope(f.relPath)) continue;

    // Does the body write a latency/wire-byte result?
    const Tokens& t = f.tokens;
    int writeLine = 0;
    std::string writeName;
    for (std::size_t i = fn.bodyBegin; i < fn.bodyEnd && i + 1 < t.size();
         ++i) {
      if (t[i].kind != TokenKind::kIdentifier) continue;
      if (t[i].text != "latencyMicros" && t[i].text != "wireBytes") continue;
      if (isPunct(t[i + 1], "=") || isPunct(t[i + 1], "+=")) {
        writeLine = t[i].line;
        writeName = t[i].text;
        break;
      }
    }
    if (writeLine == 0) continue;

    // Direct or transitive reach into the funnel?
    bool reaches = false;
    for (const std::string& callee : fn.callees) {
      if (kFunnel.count(callee)) {
        reaches = true;
        break;
      }
    }
    if (!reaches) reaches = index.reaches(fn.name, kFunnel);
    if (reaches) continue;

    add(out, "charge-path", f.relPath, writeLine,
        "'" + (fn.className.empty() ? fn.name
                                    : fn.className + "::" + fn.name) +
            "' writes " + writeName +
            " but cannot reach the charge funnel (sim::Node::charge, "
            "NetworkModel::transfer or the rpc::Channel call surface) — "
            "this latency/wire cost is never billed");
  }
}

// ---------------------------------------------------------------------------
// Rule: guard-pairing
// ---------------------------------------------------------------------------
// Two shapes. (1) RAII discards: a guard object constructed as a bare
// temporary (`sim::SpanGuard("x", tier);`) is destroyed at the semicolon
// and guards nothing. (2) Protocol halves: an `open` call whose `close`
// must follow on every path — background-QoS windows, trace-sink
// installs, manual span opens, ring drain/rejoin. The close may live in
// the same body, or (RAII / paired-API classes) anywhere in the same
// class; an early `return` between open and close in one body is flagged
// because the straight-line pairing does not cover that path.

struct Protocol {
  std::string_view open;   // identifier called to open
  std::string_view close;  // identifier called to close
  /// Argument that distinguishes open from close when both halves go
  /// through one function name ("" = any argument).
  std::string_view openArg;
  std::string_view closeArg;
};

[[nodiscard]] bool callMatches(const Tokens& t, const Matcher& m,
                               std::size_t i, std::string_view name,
                               std::string_view arg) {
  if (!isId(t[i], name) || i + 1 >= t.size() || !isPunct(t[i + 1], "(")) {
    return false;
  }
  if (arg.empty()) return true;
  const std::size_t close = m.match[i + 1];
  if (close == kNpos) return false;
  // Exact single-token argument match (true / false / nullptr).
  return close == i + 3 && t[i + 2].kind == TokenKind::kIdentifier &&
         t[i + 2].text == arg;
}

/// `setTraceSink(<anything but nullptr/0>)` — the install half.
[[nodiscard]] bool isSinkInstall(const Tokens& t, const Matcher& m,
                                 std::size_t i) {
  if (!isId(t[i], "setTraceSink") || i + 1 >= t.size() ||
      !isPunct(t[i + 1], "(")) {
    return false;
  }
  const std::size_t close = m.match[i + 1];
  if (close == kNpos || close <= i + 2) return false;
  if (close == i + 3 &&
      (isId(t[i + 2], "nullptr") ||
       (t[i + 2].kind == TokenKind::kNumber && t[i + 2].text == "0"))) {
    return false;
  }
  return true;
}
[[nodiscard]] bool isSinkClear(const Tokens& t, const Matcher& m,
                               std::size_t i) {
  if (!isId(t[i], "setTraceSink") || i + 1 >= t.size() ||
      !isPunct(t[i + 1], "(")) {
    return false;
  }
  const std::size_t close = m.match[i + 1];
  return close == i + 3 &&
         (isId(t[i + 2], "nullptr") ||
          (t[i + 2].kind == TokenKind::kNumber && t[i + 2].text == "0"));
}

void ruleGuardPairing(const LintInput& in, const Index& index,
                      std::vector<Finding>& out) {
  static constexpr std::array<std::string_view, 7> kGuardTypes = {
      "SpanGuard",   "lock_guard",          "unique_lock", "scoped_lock",
      "shared_lock", "BackgroundPumpScope", "MutexLock"};
  static constexpr std::array<Protocol, 3> kProtocols = {{
      {"setBackgroundWork", "setBackgroundWork", "true", "false"},
      {"beginSpan", "endSpan", "", ""},
      {"drainServer", "addServer", "", ""},
  }};
  // A warm drain closes by rejoining (addServer) OR by retiring the node
  // for good (removeServer / dropShard) once the transfer window ends.
  static constexpr std::array<std::string_view, 2> kDrainAltClosers = {
      "removeServer", "dropShard"};

  // (1) RAII discards. Only statements inside an indexed function body
  // qualify: `Type(args);` at class scope is a constructor declaration,
  // and `class Type { ... };` is the definition itself — neither guards
  // anything, and neither is a discard.
  for (std::size_t fi = 0; fi < in.files.size(); ++fi) {
    const SourceFile& f = in.files[fi];
    const Tokens& t = f.tokens;
    const Matcher m(t);
    for (std::size_t i = 0; i + 1 < t.size(); ++i) {
      if (t[i].kind != TokenKind::kIdentifier) continue;
      if (std::find(kGuardTypes.begin(), kGuardTypes.end(), t[i].text) ==
          kGuardTypes.end()) {
        continue;
      }
      if (index.enclosingFunctionAt(fi, i) == kNpos) continue;
      std::size_t j = i + 1;
      if (isPunct(t[j], "<")) {
        // Skip the template argument list (single-char angles).
        int depth = 0;
        while (j < t.size()) {
          if (isPunct(t[j], "<")) ++depth;
          else if (isPunct(t[j], ">") && --depth == 0) {
            ++j;
            break;
          }
          ++j;
        }
      }
      if (j >= t.size() || (!isPunct(t[j], "(") && !isPunct(t[j], "{"))) {
        continue;
      }
      const std::size_t close = m.match[j];
      if (close == kNpos || close + 1 >= t.size()) continue;
      if (!isPunct(t[close + 1], ";")) continue;  // named var / arg / decl
      add(out, "guard-pairing", f.relPath, t[i].line,
          t[i].text +
              " constructed as a bare temporary is destroyed at the "
              "semicolon and guards nothing; bind it to a named local "
              "(e.g. `" +
              t[i].text + " guard(...);`)");
    }
  }

  // (2) Protocol halves, per function body with class-level credit.
  const auto classHasCall = [&](const std::string& className,
                                std::string_view callee) {
    if (className.empty()) return false;
    for (const FunctionDecl& fn : index.functions) {
      if (fn.className != className) continue;
      for (const std::string& c : fn.callees) {
        if (c == callee) return true;
      }
    }
    return false;
  };

  for (const FunctionDecl& fn : index.functions) {
    const SourceFile& f = in.files[fn.fileIndex];
    const Tokens& t = f.tokens;
    const Matcher m(t);

    for (const Protocol& proto : kProtocols) {
      std::size_t firstOpen = kNpos, firstCloseAfterOpen = kNpos;
      int openLine = 0;
      for (std::size_t i = fn.bodyBegin; i < fn.bodyEnd && i < t.size();
           ++i) {
        const bool opens =
            proto.open == "setTraceSink"
                ? isSinkInstall(t, m, i)
                : callMatches(t, m, i, proto.open, proto.openArg);
        bool closes =
            proto.close == "setTraceSink"
                ? isSinkClear(t, m, i)
                : callMatches(t, m, i, proto.close, proto.closeArg);
        if (!closes && proto.open == "drainServer") {
          for (const std::string_view alt : kDrainAltClosers) {
            if (callMatches(t, m, i, alt, "")) {
              closes = true;
              break;
            }
          }
        }
        if (opens && firstOpen == kNpos) {
          firstOpen = i;
          openLine = t[i].line;
        } else if (closes && firstOpen != kNpos &&
                   firstCloseAfterOpen == kNpos) {
          firstCloseAfterOpen = i;
        }
      }
      if (firstOpen == kNpos) continue;

      if (firstCloseAfterOpen == kNpos) {
        // No close in this body: credit RAII/paired-API classes where the
        // closing half lives in another member (destructor, the paired
        // method) of the same class.
        if (classHasCall(fn.className, proto.close)) continue;
        if (proto.open == "drainServer" &&
            (classHasCall(fn.className, kDrainAltClosers[0]) ||
             classHasCall(fn.className, kDrainAltClosers[1]))) {
          continue;
        }
        add(out, "guard-pairing", f.relPath, openLine,
            std::string(proto.open) + "(" + std::string(proto.openArg) +
                ") opened here is never closed with " +
                std::string(proto.close) + "(" +
                std::string(proto.closeArg) +
                ") in this function or its class; every path must restore "
                "the protocol state");
        continue;
      }

      // Both halves present: an early return between them skips the close
      // (returns inside nested lambda bodies belong to the lambda).
      for (std::size_t i = firstOpen; i < firstCloseAfterOpen; ++i) {
        if (!isId(t[i], "return")) continue;
        bool inLambda = false;
        for (const LambdaDecl& lambda : index.lambdas) {
          if (lambda.fileIndex == fn.fileIndex &&
              lambda.bodyBegin < i && i < lambda.bodyEnd &&
              lambda.bodyBegin > firstOpen) {
            inLambda = true;
            break;
          }
        }
        if (inLambda) continue;
        add(out, "guard-pairing", f.relPath, t[i].line,
            "early return between " + std::string(proto.open) + "(" +
                std::string(proto.openArg) + ") and " +
                std::string(proto.close) + "(" +
                std::string(proto.closeArg) +
                ") skips the closing half; close before returning or use "
                "an RAII scope");
        break;  // one finding per (function, protocol)
      }
    }
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Entry points (driven from runLint in rules.cpp)
// ---------------------------------------------------------------------------

void runFlowRules(const LintInput& in, const Index& index,
                  std::vector<Finding>& out) {
  ruleUnits(in, index, out);
  ruleRaceCapture(in, index, out);
  ruleChargePath(in, index, out);
  ruleGuardPairing(in, index, out);
}

}  // namespace dcache::lint
