// dcache-lint: repo-specific invariant checker for the dcache simulator.
//
// The simulator's headline guarantees — byte-identical output for any
// `--jobs N`, every CPU cycle priced through the single `sim::Node::charge`
// funnel, every ServeCounters field exported and conserved — are properties
// of the *source*, not just of a lucky seed. This tool enforces them at
// build time with light tokenization (no libclang): see INVARIANTS.md for
// the rule catalogue and the suppression syntax.
#pragma once

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace dcache::lint {

// ---------------------------------------------------------------------------
// Tokens
// ---------------------------------------------------------------------------

enum class TokenKind : unsigned char {
  kIdentifier,  // [A-Za-z_][A-Za-z0-9_]*
  kNumber,      // numeric literal (pp-number, loosely)
  kString,      // "..." or R"(...)" — text holds the *contents*
  kCharLit,     // '...'
  kPunct,       // operators/punctuation; multi-char ops are merged
};

struct Token {
  TokenKind kind;
  std::string text;
  int line;  // 1-based line of the token's first character
};

/// One inline suppression directive:
///   // dcache-lint: allow(rule-id, reason text)        — same or next line
///   // dcache-lint: allow-file(rule-id, reason text)   — whole file
/// The reason is mandatory; an allow without one does not suppress and is
/// itself reported by the `suppression` rule.
struct Suppression {
  std::string rule;
  std::string reason;
  int line = 0;
  bool fileWide = false;
  bool used = false;
};

/// A lexed source file. `relPath` is root-relative with '/' separators so
/// reports are byte-stable across checkouts.
struct SourceFile {
  std::string relPath;
  std::vector<Token> tokens;
  std::vector<Suppression> suppressions;
};

/// Tokenize C/C++ source: strips comments and collects suppression
/// directives from them; string/char literal contents are kept as single
/// tokens (the counter-registration rule matches metric-name strings).
[[nodiscard]] SourceFile lexFile(const std::string& relPath,
                                 const std::string& text);

// ---------------------------------------------------------------------------
// Findings
// ---------------------------------------------------------------------------

struct Finding {
  std::string rule;
  std::string file;
  int line = 0;
  std::string message;
};

/// Deterministic report order: (file, line, rule, message).
[[nodiscard]] bool findingLess(const Finding& a, const Finding& b);

// ---------------------------------------------------------------------------
// Lint driver
// ---------------------------------------------------------------------------

/// Everything the rules need, loaded up front so each rule is a pure
/// function of this snapshot (no filesystem access inside rules — that is
/// what keeps the JSON report byte-stable across runs).
struct LintInput {
  /// Lexed .cpp/.hpp/.h files under <root>/{src,bench,tests}, sorted by
  /// relPath. tests/lint_fixtures and tests/golden are excluded (fixtures
  /// contain deliberate violations).
  std::vector<SourceFile> files;
  /// Raw text of tools/check.sh ("" when absent — bench-hygiene skips).
  std::string checkShText;
  bool hasCheckSh = false;
  /// Basenames of files in tests/golden/ (e.g. "fig4_synthetic.txt").
  std::set<std::string> goldenFiles;
  /// Root-relative paths of bench sources ("bench/fig2_model.cpp", ...).
  std::vector<std::string> benchSources;
};

/// Run every rule, apply suppressions, audit the suppressions themselves,
/// and return the findings sorted by findingLess. Builds the declaration
/// index (index.hpp) internally for the symbol- and flow-aware rules.
[[nodiscard]] std::vector<Finding> runLint(LintInput& input);

/// Rule ids, for --list-rules and directive validation.
[[nodiscard]] const std::vector<std::string>& knownRules();

// The declaration index (see index.hpp) powering the symbol-aware rules.
struct Index;

// Individual rules (exposed for focused testing; runLint calls them all).
void ruleDeterminism(const LintInput& in, std::vector<Finding>& out);
void ruleUnorderedIter(const LintInput& in, const Index& index,
                       std::vector<Finding>& out);
void ruleChargeFunnel(const LintInput& in, std::vector<Finding>& out);
void ruleCounterRegistration(const LintInput& in, const Index& index,
                             std::vector<Finding>& out);
void ruleBenchHygiene(const LintInput& in, std::vector<Finding>& out);
void ruleHotPathAlloc(const LintInput& in, std::vector<Finding>& out);
/// The four symbol/flow rules (units, race-capture, charge-path,
/// guard-pairing), implemented in rules_flow.cpp.
void runFlowRules(const LintInput& in, const Index& index,
                  std::vector<Finding>& out);

}  // namespace dcache::lint
