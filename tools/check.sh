#!/usr/bin/env bash
# Sanitizer gate: build everything with ASan + UBSan and run the test
# suite, then rebuild the thread-heavy tests under ThreadSanitizer and run
# the ctest `tsan` label (the matrix runner, thread pool, fault paths and
# the trace --jobs determinism tests). The figure benches run their cells
# on a thread pool, so this is the data-race/lifetime gate for all of it.
#
# Usage: tools/check.sh [build-dir]   (default: build-asan)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-asan}"
TSAN_BUILD_DIR="${TSAN_BUILD_DIR:-build-tsan}"

cmake -B "$BUILD_DIR" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all -fno-omit-frame-pointer"
cmake --build "$BUILD_DIR" -j "$(nproc)"

(cd "$BUILD_DIR" && ctest --output-on-failure -j "$(nproc)")

# One parallel bench end-to-end under the sanitizers: worker threads,
# per-cell deployments, ordered result collection.
"$BUILD_DIR/bench/fig4_synthetic" --jobs 8 > /dev/null

# The failure-timeline bench exercises the fault-injection paths (crashes,
# resharding, RPC retries, single-flight coalescing) under the sanitizers,
# and its output must be byte-identical regardless of worker count.
"$BUILD_DIR/bench/fig9_failure_timeline" --jobs 1 > "$BUILD_DIR/fig9_j1.txt"
"$BUILD_DIR/bench/fig9_failure_timeline" --jobs 8 > "$BUILD_DIR/fig9_j8.txt"
if ! diff -q "$BUILD_DIR/fig9_j1.txt" "$BUILD_DIR/fig9_j8.txt" > /dev/null; then
  echo "check.sh: fig9_failure_timeline output differs between --jobs 1 and --jobs 8" >&2
  diff "$BUILD_DIR/fig9_j1.txt" "$BUILD_DIR/fig9_j8.txt" >&2 || true
  exit 1
fi

# The overload bench exercises the queueing model, load shedding, circuit
# breakers, hedged requests and deadline budgets under the sanitizers, with
# the same byte-identical --jobs contract.
"$BUILD_DIR/bench/fig10_overload" --jobs 1 > "$BUILD_DIR/fig10_j1.txt"
"$BUILD_DIR/bench/fig10_overload" --jobs 8 > "$BUILD_DIR/fig10_j8.txt"
if ! diff -q "$BUILD_DIR/fig10_j1.txt" "$BUILD_DIR/fig10_j8.txt" > /dev/null; then
  echo "check.sh: fig10_overload output differs between --jobs 1 and --jobs 8" >&2
  diff "$BUILD_DIR/fig10_j1.txt" "$BUILD_DIR/fig10_j8.txt" >&2 || true
  exit 1
fi

echo "check.sh: all tests, the parallel benches, and the fig9/fig10 determinism gates passed under ASan/UBSan"

# ThreadSanitizer lane: TSan cannot be combined with ASan, so it gets its
# own build tree and runs only the tests labeled `tsan` — the ones that
# actually spin up worker threads.
cmake -B "$TSAN_BUILD_DIR" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCMAKE_CXX_FLAGS="-fsanitize=thread -fno-omit-frame-pointer"
cmake --build "$TSAN_BUILD_DIR" -j "$(nproc)"
(cd "$TSAN_BUILD_DIR" && ctest -L tsan --output-on-failure -j "$(nproc)")

# Traced parallel bench under TSan: the trace sink is thread-local and each
# deployment owns its tracer, so sampling with 8 workers must be race-free.
"$TSAN_BUILD_DIR/bench/fig6_breakdown" --jobs 8 --trace-sample 500 > /dev/null

echo "check.sh: tsan-labeled tests and the traced parallel bench passed under TSan"
