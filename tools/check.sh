#!/usr/bin/env bash
# CI gate, in lane order:
#
#   1. dcache_lint — the invariant checker (INVARIANTS.md) runs first and
#      blocks everything else: a determinism / charge-funnel /
#      counter-registration / bench-hygiene violation fails the build
#      before a single sanitized test runs.
#   2. ASan+UBSan build of everything, full ctest, parallel benches, and a
#      byte-identical --jobs 1 vs --jobs 8 diff of every deterministic
#      bench (micro_* are wall-clock and carry lint allows instead).
#   3. ThreadSanitizer build running the `tsan`-labeled tests and a traced
#      parallel bench.
#   4. (opt-in) clang-tidy over src/ when RUN_CLANG_TIDY=1; skipped
#      gracefully when clang-tidy is not installed.
#
# Usage: tools/check.sh [build-dir]   (default: build-asan)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-asan}"
TSAN_BUILD_DIR="${TSAN_BUILD_DIR:-build-tsan}"

cmake -B "$BUILD_DIR" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all -fno-omit-frame-pointer"

# Lint lane: build only the linter and run it before anything else. The
# run also writes two artifacts: the full findings report (build tree,
# transient) and the per-rule trend file that lives next to the perf
# baselines in perf/ — committing it makes findings-count drift reviewable
# the same way bench wall-clock drift is.
cmake --build "$BUILD_DIR" --target dcache_lint -j "$(nproc)"
if ! "$BUILD_DIR/tools/lint/dcache_lint" --root . \
       --json "$BUILD_DIR/lint_report.json" --trend perf/LINT_TREND.json; then
  echo "check.sh: dcache_lint found invariant violations (see INVARIANTS.md); fix or suppress with a reason" >&2
  exit 1
fi
if ! git diff --quiet -- perf/LINT_TREND.json 2>/dev/null; then
  echo "check.sh: perf/LINT_TREND.json changed — review the per-rule counts and commit it with this change" >&2
fi

cmake --build "$BUILD_DIR" -j "$(nproc)"

(cd "$BUILD_DIR" && ctest --output-on-failure -j "$(nproc)")

# One parallel bench end-to-end under the sanitizers: worker threads,
# per-cell deployments, ordered result collection.
"$BUILD_DIR/bench/fig4_synthetic" --jobs 8 > /dev/null

# Disaggregated lane: the fifth architecture's one-sided read path, hot
# caches and invalidation fan-out run under ASan explicitly (fig2's
# analytic panel + fig4's experiment cells), and the --disagg gate itself
# holds the determinism contract in both positions — the gate-closed runs
# must also be byte-identical across worker counts.
"$BUILD_DIR/bench/fig2_model" --disagg 1 > /dev/null
DCACHE_GOLDEN_OPS="${DCACHE_GOLDEN_OPS:-2000}" \
  "$BUILD_DIR/bench/fig4_synthetic" --disagg 1 --jobs 8 > /dev/null
for bench in fig2_model fig4_synthetic; do
  DCACHE_GOLDEN_OPS="${DCACHE_GOLDEN_OPS:-2000}" \
    "$BUILD_DIR/bench/$bench" --disagg 0 --jobs 1 > "$BUILD_DIR/${bench}_off_j1.txt"
  DCACHE_GOLDEN_OPS="${DCACHE_GOLDEN_OPS:-2000}" \
    "$BUILD_DIR/bench/$bench" --disagg 0 --jobs 8 > "$BUILD_DIR/${bench}_off_j8.txt"
  if ! diff -q "$BUILD_DIR/${bench}_off_j1.txt" "$BUILD_DIR/${bench}_off_j8.txt" > /dev/null; then
    echo "check.sh: $bench --disagg 0 output differs between --jobs 1 and --jobs 8" >&2
    diff "$BUILD_DIR/${bench}_off_j1.txt" "$BUILD_DIR/${bench}_off_j8.txt" >&2 || true
    exit 1
  fi
done

# Determinism diff: every deterministic bench must emit byte-identical
# stdout for --jobs 1 and --jobs 8. The golden-op cap keeps the sanitized
# runs fast while still driving the full matrix (same cells, same seeds).
# fig9/fig10 additionally run at full scale below, because their fault and
# overload paths only saturate with the complete timeline.
DET_BENCHES=(fig2_model fig3_uc_trace fig4_synthetic fig5_kv_workloads
             fig6_breakdown fig7_rich_objects fig8_delayed_writes
             ablation_cache_alloc ablation_consistency ext_workloads)
for bench in "${DET_BENCHES[@]}"; do
  DCACHE_GOLDEN_OPS="${DCACHE_GOLDEN_OPS:-2000}" \
    "$BUILD_DIR/bench/$bench" --jobs 1 > "$BUILD_DIR/${bench}_j1.txt"
  DCACHE_GOLDEN_OPS="${DCACHE_GOLDEN_OPS:-2000}" \
    "$BUILD_DIR/bench/$bench" --jobs 8 > "$BUILD_DIR/${bench}_j8.txt"
  if ! diff -q "$BUILD_DIR/${bench}_j1.txt" "$BUILD_DIR/${bench}_j8.txt" > /dev/null; then
    echo "check.sh: $bench output differs between --jobs 1 and --jobs 8" >&2
    diff "$BUILD_DIR/${bench}_j1.txt" "$BUILD_DIR/${bench}_j8.txt" >&2 || true
    exit 1
  fi
done

# The failure-timeline bench exercises the fault-injection paths (crashes,
# resharding, RPC retries, single-flight coalescing) under the sanitizers,
# and its output must be byte-identical regardless of worker count.
"$BUILD_DIR/bench/fig9_failure_timeline" --jobs 1 > "$BUILD_DIR/fig9_j1.txt"
"$BUILD_DIR/bench/fig9_failure_timeline" --jobs 8 > "$BUILD_DIR/fig9_j8.txt"
if ! diff -q "$BUILD_DIR/fig9_j1.txt" "$BUILD_DIR/fig9_j8.txt" > /dev/null; then
  echo "check.sh: fig9_failure_timeline output differs between --jobs 1 and --jobs 8" >&2
  diff "$BUILD_DIR/fig9_j1.txt" "$BUILD_DIR/fig9_j8.txt" >&2 || true
  exit 1
fi

# The overload bench exercises the queueing model, load shedding, circuit
# breakers, hedged requests and deadline budgets under the sanitizers, with
# the same byte-identical --jobs contract.
"$BUILD_DIR/bench/fig10_overload" --jobs 1 > "$BUILD_DIR/fig10_j1.txt"
"$BUILD_DIR/bench/fig10_overload" --jobs 8 > "$BUILD_DIR/fig10_j8.txt"
if ! diff -q "$BUILD_DIR/fig10_j1.txt" "$BUILD_DIR/fig10_j8.txt" > /dev/null; then
  echo "check.sh: fig10_overload output differs between --jobs 1 and --jobs 8" >&2
  diff "$BUILD_DIR/fig10_j1.txt" "$BUILD_DIR/fig10_j8.txt" >&2 || true
  exit 1
fi

# The gray-failure bench exercises slow-node / partial-partition / flaky
# injection, the health monitor's ejection + probing loop, and replica
# fallback routing under the sanitizers. Full scale for the same reason as
# fig9/fig10: the detection and recovery dynamics need the whole timeline.
"$BUILD_DIR/bench/fig11_gray_failures" --jobs 1 > "$BUILD_DIR/fig11_j1.txt"
"$BUILD_DIR/bench/fig11_gray_failures" --jobs 8 > "$BUILD_DIR/fig11_j8.txt"
if ! diff -q "$BUILD_DIR/fig11_j1.txt" "$BUILD_DIR/fig11_j8.txt" > /dev/null; then
  echo "check.sh: fig11_gray_failures output differs between --jobs 1 and --jobs 8" >&2
  diff "$BUILD_DIR/fig11_j1.txt" "$BUILD_DIR/fig11_j8.txt" >&2 || true
  exit 1
fi

# The membership-churn bench replays planned join/leave timelines with the
# warm-handoff pump, dual-read fallback and epoch fencing under the
# sanitizers. Full scale so the transfer windows actually span the
# rolling-restart wave, and byte-diffed across worker counts like the rest.
"$BUILD_DIR/bench/fig12_churn" --jobs 1 > "$BUILD_DIR/fig12_j1.txt"
"$BUILD_DIR/bench/fig12_churn" --jobs 8 > "$BUILD_DIR/fig12_j8.txt"
if ! diff -q "$BUILD_DIR/fig12_j1.txt" "$BUILD_DIR/fig12_j8.txt" > /dev/null; then
  echo "check.sh: fig12_churn output differs between --jobs 1 and --jobs 8" >&2
  diff "$BUILD_DIR/fig12_j1.txt" "$BUILD_DIR/fig12_j8.txt" >&2 || true
  exit 1
fi

echo "check.sh: lint, all tests, the parallel benches, and the determinism gates passed under ASan/UBSan"

# ThreadSanitizer lane: TSan cannot be combined with ASan, so it gets its
# own build tree and runs only the tests labeled `tsan` — the ones that
# actually spin up worker threads.
cmake -B "$TSAN_BUILD_DIR" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCMAKE_CXX_FLAGS="-fsanitize=thread -fno-omit-frame-pointer"
cmake --build "$TSAN_BUILD_DIR" -j "$(nproc)"
(cd "$TSAN_BUILD_DIR" && ctest -L tsan --output-on-failure -j "$(nproc)")

# Traced parallel bench under TSan: the trace sink is thread-local and each
# deployment owns its tracer, so sampling with 8 workers must be race-free.
"$TSAN_BUILD_DIR/bench/fig6_breakdown" --jobs 8 --trace-sample 500 > /dev/null

echo "check.sh: tsan-labeled tests and the traced parallel bench passed under TSan"

# Perf lane (RUN_PERF=1, needs a plain RelWithDebInfo tree — sanitizer
# timing is meaningless): re-runs the deterministic benches and fails on a
# >20% wall-clock regression vs the committed perf/BENCH_*.json baselines.
# Opt-in because wall-clock gates on shared CI machines need a deliberate
# quiet-machine run; tools/perf.sh takes best-of-3 to filter scheduler
# noise either way.
if [[ "${RUN_PERF:-0}" == "1" ]]; then
  PERF_BUILD_DIR="${PERF_BUILD_DIR:-build}"
  cmake -B "$PERF_BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build "$PERF_BUILD_DIR" -j "$(nproc)"
  tools/perf.sh check "$PERF_BUILD_DIR"
  echo "check.sh: perf lane passed (no bench regressed >20% vs perf/ baselines)"
else
  echo "check.sh: perf lane skipped (opt in with RUN_PERF=1)"
fi

# Opt-in clang thread-safety lane (RUN_WTHREAD_SAFETY=1): -Wthread-safety
# statically checks the GUARDED_BY/REQUIRES annotations on ThreadPool and
# MetricsRegistry (src/util/thread_annotations.hpp). Syntax-only over the
# annotated translation units, promoted to errors so a lock-discipline
# break fails the lane. Skipped gracefully when clang++ is not installed —
# the annotations compile to nothing under gcc.
if [[ "${RUN_WTHREAD_SAFETY:-0}" == "1" ]]; then
  if command -v clang++ > /dev/null 2>&1; then
    echo "check.sh: running clang -Wthread-safety over the annotated units"
    clang++ -fsyntax-only -std=c++20 -I src \
      -Wthread-safety -Werror=thread-safety-analysis \
      src/util/thread_pool.cpp src/obs/metrics.cpp
    echo "check.sh: thread-safety lane passed"
  else
    echo "check.sh: clang++ not found — skipping the opt-in thread-safety lane"
  fi
fi

# Opt-in clang-tidy lane (RUN_CLANG_TIDY=1): uses the compile database the
# ASan tree exported. Skipped gracefully when clang-tidy is not installed,
# so the gate never depends on optional tooling.
if [[ "${RUN_CLANG_TIDY:-0}" == "1" ]]; then
  if command -v clang-tidy > /dev/null 2>&1; then
    echo "check.sh: running clang-tidy (config: .clang-tidy)"
    find src -name '*.cpp' -print0 \
      | xargs -0 clang-tidy -p "$BUILD_DIR" --quiet
    echo "check.sh: clang-tidy lane passed"
  else
    echo "check.sh: clang-tidy not found — skipping the opt-in tidy lane"
  fi
fi
