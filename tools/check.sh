#!/usr/bin/env bash
# Sanitizer gate: build everything with ASan + UBSan and run the test
# suite. The figure benches now run their cells on a thread pool, so this
# is also the data-race/lifetime smoke test for the matrix runner.
#
# Usage: tools/check.sh [build-dir]   (default: build-asan)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-asan}"

cmake -B "$BUILD_DIR" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all -fno-omit-frame-pointer"
cmake --build "$BUILD_DIR" -j "$(nproc)"

(cd "$BUILD_DIR" && ctest --output-on-failure -j "$(nproc)")

# One parallel bench end-to-end under the sanitizers: worker threads,
# per-cell deployments, ordered result collection.
"$BUILD_DIR/bench/fig4_synthetic" --jobs 8 > /dev/null

echo "check.sh: all tests and the parallel bench passed under ASan/UBSan"
