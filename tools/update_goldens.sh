#!/usr/bin/env bash
# Re-record the golden-output regression files in tests/golden/.
#
# Run this only after verifying that an output change is intentional; the
# golden ctest entries (ctest -L golden) byte-diff against these files.
#
# Usage: tools/update_goldens.sh [build-dir]   (default: build)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"
GOLDEN_DIR="tests/golden"
export DCACHE_GOLDEN_OPS="${DCACHE_GOLDEN_OPS:-2000}"

record() {
  local bench="$1" out="$2"
  shift 2
  echo "recording $out (${bench} $*)"
  "$BUILD_DIR/bench/$bench" "$@" > "$GOLDEN_DIR/$out"
}

record fig2_model fig2_model.txt
record fig4_synthetic fig4_synthetic.txt
record fig6_breakdown fig6_breakdown.txt
record fig8_delayed_writes fig8_delayed_writes.txt
record fig6_breakdown fig6_breakdown_traced.txt --trace-sample 500 --trace-keep 1
record fig10_overload fig10_overload.txt

echo "goldens updated under $GOLDEN_DIR (DCACHE_GOLDEN_OPS=$DCACHE_GOLDEN_OPS)"
