#!/usr/bin/env bash
# Re-record the golden-output regression files in tests/golden/.
#
# Run this only after verifying that an output change is intentional; the
# golden ctest entries (ctest -L golden) byte-diff against these files.
# The lint lane must be green first: recording goldens on top of an
# invariant violation (say, an unordered iteration feeding a table) would
# freeze hash-order output into the regression baseline.
#
# Usage: tools/update_goldens.sh [build-dir]   (default: build)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"
GOLDEN_DIR="tests/golden"
export DCACHE_GOLDEN_OPS="${DCACHE_GOLDEN_OPS:-2000}"

LINT="$BUILD_DIR/tools/lint/dcache_lint"
if [[ ! -x "$LINT" ]]; then
  echo "update_goldens.sh: $LINT not built; run cmake --build $BUILD_DIR --target dcache_lint first" >&2
  exit 1
fi
if ! "$LINT" --root . --quiet; then
  "$LINT" --root . || true
  echo "update_goldens.sh: refusing to record goldens while dcache_lint is red (see INVARIANTS.md)" >&2
  exit 1
fi

record() {
  local bench="$1" out="$2"
  shift 2
  echo "recording $out (${bench} $*)"
  "$BUILD_DIR/bench/$bench" "$@" > "$GOLDEN_DIR/$out"
}

record fig2_model fig2_model.txt
record fig3_uc_trace fig3_uc_trace.txt
record fig4_synthetic fig4_synthetic.txt
record fig5_kv_workloads fig5_kv_workloads.txt
record fig6_breakdown fig6_breakdown.txt
record fig7_rich_objects fig7_rich_objects.txt
record fig8_delayed_writes fig8_delayed_writes.txt
record fig9_failure_timeline fig9_failure_timeline.txt
record fig6_breakdown fig6_breakdown_traced.txt --trace-sample 500 --trace-keep 1
record fig10_overload fig10_overload.txt
record fig11_gray_failures fig11_gray_failures.txt
record fig12_churn fig12_churn.txt
record ablation_cache_alloc ablation_cache_alloc.txt
record ablation_consistency ablation_consistency.txt
record ext_workloads ext_workloads.txt

echo "goldens updated under $GOLDEN_DIR (DCACHE_GOLDEN_OPS=$DCACHE_GOLDEN_OPS)"
