// Tests for the simulation substrate: resource meters, tiers, the network
// cost model and the deterministic event loop.
//
// dcache-lint: allow-file(charge-funnel, unit tests for CpuMeter itself — charges exercise the meter in isolation and are not part of any deployment's cost accounting)
#include <gtest/gtest.h>

#include <vector>

#include "sim/event_loop.hpp"
#include "sim/network.hpp"
#include "sim/node.hpp"
#include "sim/resource.hpp"
#include "sim/tier.hpp"

namespace dcache::sim {
namespace {

TEST(CpuMeter, ComponentsSumToTotal) {
  CpuMeter meter;
  meter.charge(CpuComponent::kQueryParse, 10.0);
  meter.charge(CpuComponent::kKvExecution, 5.5);
  meter.charge(CpuComponent::kQueryParse, 4.5);
  double sum = 0.0;
  for (std::size_t c = 0; c < kNumCpuComponents; ++c) {
    sum += meter.micros(static_cast<CpuComponent>(c));
  }
  EXPECT_DOUBLE_EQ(sum, meter.totalMicros());
  EXPECT_DOUBLE_EQ(meter.totalMicros(), 20.0);
  EXPECT_DOUBLE_EQ(meter.micros(CpuComponent::kQueryParse), 14.5);
}

TEST(CpuMeter, IgnoresNonPositiveCharges) {
  CpuMeter meter;
  meter.charge(CpuComponent::kDiskIo, 0.0);
  meter.charge(CpuComponent::kDiskIo, -5.0);
  EXPECT_DOUBLE_EQ(meter.totalMicros(), 0.0);
}

TEST(CpuMeter, MergeAddsComponentwise) {
  CpuMeter a;
  CpuMeter b;
  a.charge(CpuComponent::kReplication, 3.0);
  b.charge(CpuComponent::kReplication, 4.0);
  b.charge(CpuComponent::kDiskIo, 1.0);
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.micros(CpuComponent::kReplication), 7.0);
  EXPECT_DOUBLE_EQ(a.totalMicros(), 8.0);
}

TEST(CpuMeter, AllComponentsHaveNames) {
  for (std::size_t c = 0; c < kNumCpuComponents; ++c) {
    EXPECT_NE(cpuComponentName(static_cast<CpuComponent>(c)), "unknown");
  }
}

TEST(MemMeter, TracksPeak) {
  MemMeter meter;
  meter.provision(util::Bytes::gb(4));
  meter.use(util::Bytes::mb(100));
  meter.use(util::Bytes::mb(500));
  meter.use(util::Bytes::mb(200));
  EXPECT_EQ(meter.peak().count(), util::Bytes::mb(500).count());
  EXPECT_EQ(meter.used().count(), util::Bytes::mb(200).count());
  EXPECT_EQ(meter.provisioned().count(), util::Bytes::gb(4).count());
}

TEST(Tier, AggregatesAcrossNodes) {
  Tier tier("kv", TierKind::kKvStorage, 3);
  tier.node(0).charge(CpuComponent::kKvExecution, 10.0);
  tier.node(2).charge(CpuComponent::kKvExecution, 20.0);
  EXPECT_DOUBLE_EQ(tier.aggregateCpu().totalMicros(), 30.0);
  tier.provisionMemoryPerNode(util::Bytes::gb(15));
  EXPECT_EQ(tier.totalProvisionedMemory().count(),
            util::Bytes::gb(45).count());
}

TEST(Tier, StablePlacementByKey) {
  Tier tier("app", TierKind::kAppServer, 5);
  for (std::uint64_t h : {0ULL, 17ULL, 123456789ULL}) {
    EXPECT_EQ(&tier.nodeForKey(h), &tier.nodeForKey(h));
    EXPECT_EQ(tier.indexForKey(h), h % 5);
  }
}

TEST(Tier, RoundRobinCyclesAllNodes) {
  Tier tier("sql", TierKind::kSqlFrontend, 3);
  std::vector<const Node*> seen;
  for (int i = 0; i < 3; ++i) seen.push_back(&tier.nextNode());
  EXPECT_NE(seen[0], seen[1]);
  EXPECT_NE(seen[1], seen[2]);
  EXPECT_EQ(&tier.nextNode(), seen[0]);  // wraps
}

TEST(Tier, ZeroNodesClampedToOne) {
  Tier tier("x", TierKind::kAppServer, 0);
  EXPECT_EQ(tier.size(), 1u);
}

TEST(Network, ChargesBothEndpoints) {
  NetworkModel net;
  Node a("a", TierKind::kAppServer);
  Node b("b", TierKind::kKvStorage);
  const double latency = net.transfer(a, b, 1000, CpuComponent::kRpcFraming);
  const double expectedPerEnd =
      net.params().perMessageCpuMicros + net.params().perByteCpuMicros * 1000;
  EXPECT_DOUBLE_EQ(a.cpu().totalMicros(), expectedPerEnd);
  EXPECT_DOUBLE_EQ(b.cpu().totalMicros(), expectedPerEnd);
  EXPECT_DOUBLE_EQ(latency, net.params().oneWayLatencyMicros +
                                net.params().perByteLatencyMicros * 1000);
  EXPECT_EQ(net.messagesSent(), 1u);
  EXPECT_EQ(net.bytesSent(), 1000u);
}

TEST(Network, InProcessTransferIsFree) {
  NetworkModel net;
  Node a("a", TierKind::kAppServer);
  EXPECT_DOUBLE_EQ(net.transfer(a, a, 1 << 20, CpuComponent::kRpcFraming),
                   0.0);
  EXPECT_DOUBLE_EQ(a.cpu().totalMicros(), 0.0);
  EXPECT_EQ(net.messagesSent(), 0u);
}

TEST(EventLoop, RunsInTimeOrder) {
  EventLoop loop;
  std::vector<int> order;
  loop.schedule(30, [&] { order.push_back(3); });
  loop.schedule(10, [&] { order.push_back(1); });
  loop.schedule(20, [&] { order.push_back(2); });
  EXPECT_EQ(loop.run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventLoop, FifoWithinSameTimestamp) {
  EventLoop loop;
  std::vector<int> order;
  loop.schedule(5, [&] { order.push_back(1); });
  loop.schedule(5, [&] { order.push_back(2); });
  loop.schedule(5, [&] { order.push_back(3); });
  loop.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventLoop, NestedSchedulingAdvancesClock) {
  EventLoop loop;
  std::vector<std::uint64_t> times;
  loop.schedule(10, [&] {
    times.push_back(loop.now());
    loop.schedule(15, [&] { times.push_back(loop.now()); });
  });
  loop.run();
  EXPECT_EQ(times, (std::vector<std::uint64_t>{10, 25}));
}

TEST(EventLoop, CancelPreventsExecution) {
  EventLoop loop;
  bool ran = false;
  const auto id = loop.schedule(10, [&] { ran = true; });
  EXPECT_TRUE(loop.cancel(id));
  EXPECT_FALSE(loop.cancel(id));  // second cancel is a no-op
  loop.run();
  EXPECT_FALSE(ran);
}

TEST(EventLoop, RunUntilStopsAtDeadline) {
  EventLoop loop;
  int count = 0;
  loop.schedule(10, [&] { ++count; });
  loop.schedule(20, [&] { ++count; });
  loop.schedule(30, [&] { ++count; });
  EXPECT_EQ(loop.runUntil(20), 2u);
  EXPECT_EQ(count, 2);
  EXPECT_FALSE(loop.empty());
  loop.run();
  EXPECT_EQ(count, 3);
}

TEST(TierKindNames, AllNamed) {
  for (std::uint8_t k = 0; k < static_cast<std::uint8_t>(TierKind::kCount);
       ++k) {
    EXPECT_NE(tierKindName(static_cast<TierKind>(k)), "unknown");
  }
}

}  // namespace
}  // namespace dcache::sim
