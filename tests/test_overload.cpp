// Overload-control subsystem tests: the queueing model's drain math, the
// circuit-breaker state machine (hysteresis, probe accounting, reopen on a
// failed probe), the deterministic CoDel-style shedder (grace window,
// monotone shed rate, error-diffusion accuracy), the per-call deadline
// budget, hedged requests, and — end to end — that arming the defenses
// strictly reduces the retry-storm amplification of a saturated
// deployment.
#include <gtest/gtest.h>

#include <cstdint>

#include "core/deployment.hpp"
#include "core/overload.hpp"
#include "rpc/channel.hpp"
#include "sim/network.hpp"
#include "sim/node.hpp"
#include "sim/queue.hpp"
#include "workload/synthetic.hpp"

namespace dcache {
namespace {

// ---------------------------------------------------------------- NodeQueue

TEST(NodeQueue, DisabledByDefaultAndCostFree) {
  sim::NodeQueue queue;
  EXPECT_FALSE(queue.enabled());
  queue.addWork(1e9);
  EXPECT_DOUBLE_EQ(queue.waitMicros(), 0.0);
  EXPECT_DOUBLE_EQ(queue.backlogMicros(), 0.0);
}

TEST(NodeQueue, DrainMathAgainstSimClock) {
  sim::NodeQueue queue;
  queue.configure({/*capacityMicrosPerSec=*/1e6, /*maxWaitMicros=*/1e5});
  ASSERT_TRUE(queue.enabled());

  queue.addWork(1000.0);  // at capacity 1 µs/µs: wait == backlog
  EXPECT_DOUBLE_EQ(queue.waitMicros(), 1000.0);

  queue.drainTo(400);  // 400 µs elapsed drains 400 µs of work
  EXPECT_DOUBLE_EQ(queue.backlogMicros(), 600.0);

  queue.drainTo(300);  // stale clock: monotone no-op
  EXPECT_DOUBLE_EQ(queue.backlogMicros(), 600.0);

  queue.drainTo(10000);  // over-draining floors at empty, never negative
  EXPECT_DOUBLE_EQ(queue.backlogMicros(), 0.0);
  EXPECT_DOUBLE_EQ(queue.waitMicros(), 0.0);
}

TEST(NodeQueue, WaitScalesInverselyWithCapacity) {
  sim::NodeQueue fast, slow;
  fast.configure({2e6, 1e5});
  slow.configure({5e5, 1e5});
  fast.addWork(1000.0);
  slow.addWork(1000.0);
  EXPECT_DOUBLE_EQ(fast.waitMicros(), 500.0);
  EXPECT_DOUBLE_EQ(slow.waitMicros(), 2000.0);
}

TEST(NodeQueue, NodeChargeFeedsBacklogAndCrashClearsIt) {
  sim::Node node("n", sim::TierKind::kAppServer);
  node.queue().configure({1e6, 1e5});
  node.charge(sim::CpuComponent::kRequestPrep, 250.0);
  EXPECT_DOUBLE_EQ(node.queue().backlogMicros(), 250.0);
  // The meters saw the same charge: one funnel, one accounting.
  EXPECT_DOUBLE_EQ(node.cpu().totalMicros(), 250.0);
  node.setUp(false);  // a crashed process takes its run queue with it
  EXPECT_DOUBLE_EQ(node.queue().backlogMicros(), 0.0);
}

// ----------------------------------------------------------- CircuitBreaker

rpc::BreakerPolicy tinyBreaker() {
  rpc::BreakerPolicy policy;
  policy.windowSize = 8;
  policy.minSamples = 4;
  policy.failureRateToOpen = 0.5;
  policy.openMicros = 1000.0;
  return policy;
}

TEST(CircuitBreaker, StaysClosedBelowMinSamples) {
  rpc::CircuitBreaker breaker(tinyBreaker());
  for (int i = 0; i < 3; ++i) breaker.record(false, 0.0);
  EXPECT_EQ(breaker.state(), rpc::CircuitBreaker::State::kClosed);
  EXPECT_TRUE(breaker.allowRequest(0.0));
  EXPECT_EQ(breaker.opens(), 0u);
}

TEST(CircuitBreaker, HysteresisBelowFailureRate) {
  rpc::CircuitBreaker breaker(tinyBreaker());
  // 3 failures in a window of 8 = 37.5% < 50%: never trips.
  for (int round = 0; round < 10; ++round) {
    breaker.record(round % 3 == 0, 0.0);
    breaker.record(true, 0.0);
  }
  EXPECT_EQ(breaker.state(), rpc::CircuitBreaker::State::kClosed);
  EXPECT_EQ(breaker.opens(), 0u);
}

TEST(CircuitBreaker, TripsAtFailureRateAndShortCircuits) {
  rpc::CircuitBreaker breaker(tinyBreaker());
  for (int i = 0; i < 4; ++i) breaker.record(false, 100.0);
  EXPECT_EQ(breaker.state(), rpc::CircuitBreaker::State::kOpen);
  EXPECT_EQ(breaker.opens(), 1u);
  EXPECT_FALSE(breaker.allowRequest(100.0));
  EXPECT_FALSE(breaker.allowRequest(1099.0));  // cool-down not yet elapsed
}

TEST(CircuitBreaker, HalfOpenAdmitsExactlyOneProbe) {
  rpc::CircuitBreaker breaker(tinyBreaker());
  for (int i = 0; i < 4; ++i) breaker.record(false, 0.0);
  ASSERT_EQ(breaker.state(), rpc::CircuitBreaker::State::kOpen);

  EXPECT_TRUE(breaker.allowRequest(1000.0));  // cool-down elapsed: the probe
  EXPECT_EQ(breaker.state(), rpc::CircuitBreaker::State::kHalfOpen);
  EXPECT_FALSE(breaker.allowRequest(1000.0));  // probe in flight: hold

  breaker.record(true, 1000.0);  // probe succeeds: closed, window reset
  EXPECT_EQ(breaker.state(), rpc::CircuitBreaker::State::kClosed);
  EXPECT_TRUE(breaker.allowRequest(1000.0));
  // A single post-probe failure must not trip a freshly reset window.
  breaker.record(false, 1000.0);
  EXPECT_EQ(breaker.state(), rpc::CircuitBreaker::State::kClosed);
}

TEST(CircuitBreaker, FailedProbeReopensWithFreshCooldown) {
  rpc::CircuitBreaker breaker(tinyBreaker());
  for (int i = 0; i < 4; ++i) breaker.record(false, 0.0);
  ASSERT_TRUE(breaker.allowRequest(1000.0));  // probe admitted
  breaker.record(false, 1000.0);              // probe fails
  EXPECT_EQ(breaker.state(), rpc::CircuitBreaker::State::kOpen);
  EXPECT_EQ(breaker.opens(), 2u);
  EXPECT_FALSE(breaker.allowRequest(1500.0));  // new cool-down from t=1000
  EXPECT_TRUE(breaker.allowRequest(2000.0));
}

// ----------------------------------------------------------------- Shedder

core::ShedPolicy shedPolicy() {
  core::ShedPolicy policy;
  policy.enabled = true;
  policy.targetDelayMicros = 1000.0;
  policy.graceMicros = 500.0;
  policy.rampMicros = 2000.0;
  policy.maxShedFraction = 0.95;
  return policy;
}

TEST(Shedder, NeverShedsBelowTarget) {
  core::Shedder shedder(shedPolicy());
  for (std::uint64_t t = 0; t < 10000; t += 10) {
    EXPECT_FALSE(shedder.offer(999.0, t));
  }
  EXPECT_FALSE(shedder.dropping());
  EXPECT_EQ(shedder.shedCount(), 0u);
}

TEST(Shedder, DisabledPolicyIsInert) {
  core::Shedder shedder{core::ShedPolicy{}};  // enabled defaults to false
  for (std::uint64_t t = 0; t < 1000; t += 10) {
    EXPECT_FALSE(shedder.offer(1e9, t));
  }
}

TEST(Shedder, GraceWindowRidesShortBursts) {
  core::Shedder shedder(shedPolicy());
  // Overshoot appears at t=0 but shedding must hold off for graceMicros.
  EXPECT_FALSE(shedder.offer(5000.0, 0));
  EXPECT_FALSE(shedder.offer(5000.0, 499));
  EXPECT_FALSE(shedder.dropping());
  // A dip below target before the grace elapses resets the clock entirely.
  EXPECT_FALSE(shedder.offer(500.0, 500));
  EXPECT_FALSE(shedder.offer(5000.0, 600));
  EXPECT_FALSE(shedder.offer(5000.0, 1099));
  EXPECT_FALSE(shedder.dropping());
}

/// Sheds observed over `offers` consecutive offers at a constant delay,
/// starting past the grace window.
std::uint64_t shedsAtDelay(double delayMicros, int offers) {
  core::Shedder shedder(shedPolicy());
  (void)shedder.offer(delayMicros, 0);  // starts the grace clock
  std::uint64_t shed = 0;
  for (int i = 0; i < offers; ++i) {
    if (shedder.offer(delayMicros, 1000 + static_cast<std::uint64_t>(i))) {
      ++shed;
    }
  }
  return shed;
}

TEST(Shedder, ShedRateIsMonotoneInQueueDelay) {
  std::uint64_t previous = 0;
  for (double delay = 1200.0; delay <= 6000.0; delay += 400.0) {
    const std::uint64_t shed = shedsAtDelay(delay, 1000);
    EXPECT_GE(shed, previous) << "delay " << delay;
    previous = shed;
  }
  EXPECT_GT(previous, 0u);
}

TEST(Shedder, ErrorDiffusionHitsTheExactRate) {
  // Overshoot of half the ramp => shed fraction 0.5 => exactly every other
  // offer, no RNG involved.
  const std::uint64_t shed = shedsAtDelay(2000.0, 1000);
  EXPECT_EQ(shed, 500u);
}

TEST(Shedder, MaxShedFractionCapsTheRate) {
  // Overshoot way past the ramp: fraction capped at 0.95, never 100%
  // (float accumulation may land one shy of the exact product).
  const std::uint64_t shed = shedsAtDelay(1e6, 1000);
  EXPECT_GE(shed, 949u);
  EXPECT_LE(shed, 950u);
}

TEST(Shedder, RecoveryBelowTargetStopsSheddingImmediately) {
  core::Shedder shedder(shedPolicy());
  (void)shedder.offer(5000.0, 0);
  std::uint64_t shed = 0;
  for (int i = 0; i < 100; ++i) {
    if (shedder.offer(5000.0, 1000 + static_cast<std::uint64_t>(i))) ++shed;
  }
  ASSERT_TRUE(shedder.dropping());
  ASSERT_GT(shed, 0u);
  EXPECT_FALSE(shedder.offer(200.0, 2000));
  EXPECT_FALSE(shedder.dropping());
  EXPECT_FALSE(shedder.offer(999.0, 2001));
}

// --------------------------------------------------- Channel-level defenses

class OverloadChannelTest : public ::testing::Test {
 protected:
  OverloadChannelTest()
      : client_("client", sim::TierKind::kClient),
        server_("server", sim::TierKind::kAppServer),
        backup_("backup", sim::TierKind::kAppServer),
        channel_(network_, rpc::SerializationModel{}) {
    channel_.enableFaults(/*seed=*/7, rpc::CallPolicy{});
  }

  sim::NetworkModel network_;
  sim::Node client_;
  sim::Node server_;
  sim::Node backup_;
  rpc::Channel channel_;
};

TEST_F(OverloadChannelTest, DeadlineBudgetStopsTheRetryLadder) {
  server_.setUp(false);
  rpc::CallPolicy unbounded;  // deadlineMicros == 0: the legacy ladder
  const auto full =
      channel_.callWithPolicy(client_, server_, 64, 64, unbounded);
  EXPECT_FALSE(full.ok);
  EXPECT_EQ(full.attempts, unbounded.maxAttempts);
  EXPECT_EQ(channel_.faultCounters().budgetExhausted, 0u);

  rpc::CallPolicy bounded = unbounded;
  bounded.deadlineMicros = bounded.timeoutMicros * 1.25;  // < 2 full waits
  const auto capped =
      channel_.callWithPolicy(client_, server_, 64, 64, bounded);
  EXPECT_FALSE(capped.ok);
  EXPECT_LT(capped.attempts, unbounded.maxAttempts);
  EXPECT_LE(capped.latencyMicros, bounded.deadlineMicros + 1e-9);
  EXPECT_LT(capped.latencyMicros, full.latencyMicros);
  EXPECT_EQ(channel_.faultCounters().budgetExhausted, 1u);
}

TEST_F(OverloadChannelTest, GenerousDeadlineChangesNothing) {
  // Twin channels with identical RNG seeds, so the backoff jitter streams
  // match call for call; only the deadline differs.
  sim::NetworkModel networkA, networkB;
  rpc::Channel a(networkA, rpc::SerializationModel{});
  rpc::Channel b(networkB, rpc::SerializationModel{});
  a.enableFaults(/*seed=*/11, rpc::CallPolicy{});
  b.enableFaults(/*seed=*/11, rpc::CallPolicy{});
  server_.setUp(false);

  rpc::CallPolicy unbounded;
  rpc::CallPolicy generous;
  generous.deadlineMicros = 1e9;
  const auto full = a.callWithPolicy(client_, server_, 64, 64, unbounded);
  const auto same = b.callWithPolicy(client_, server_, 64, 64, generous);
  EXPECT_EQ(same.attempts, full.attempts);
  EXPECT_DOUBLE_EQ(same.latencyMicros, full.latencyMicros);
  EXPECT_EQ(b.faultCounters().budgetExhausted, 0u);
}

TEST_F(OverloadChannelTest, QueueBacklogAddsWaitToLatency) {
  server_.queue().configure({1e6, 1e5});
  server_.queue().addWork(300.0);  // 300 µs of standing backlog
  channel_.setNowMicros(0);
  const auto baseline = [&] {
    sim::Node idle("idle", sim::TierKind::kAppServer);
    return channel_.callWithPolicy(client_, idle, 64, 64, rpc::CallPolicy{});
  }();
  const auto queued =
      channel_.callWithPolicy(client_, server_, 64, 64, rpc::CallPolicy{});
  ASSERT_TRUE(queued.ok);
  EXPECT_NEAR(queued.latencyMicros - baseline.latencyMicros, 300.0, 1e-6);
}

TEST_F(OverloadChannelTest, DeepBacklogTimesOutButStillChargesTheServer) {
  server_.queue().configure({1e6, 1e5});
  server_.queue().addWork(5000.0);  // wait 5000 µs > 2000 µs timeout
  channel_.setNowMicros(0);
  const double serverCpuBefore = server_.cpu().totalMicros();
  const auto result =
      channel_.callWithPolicy(client_, server_, 64, 64, rpc::CallPolicy{});
  EXPECT_FALSE(result.ok);
  EXPECT_GT(channel_.faultCounters().queueTimeouts, 0u);
  // The metastable amplifier: the abandoned attempts still did server-side
  // request work, deepening the very backlog that timed them out.
  EXPECT_GT(server_.cpu().totalMicros(), serverCpuBefore);
  EXPECT_GT(server_.queue().backlogMicros(), 5000.0);
}

TEST_F(OverloadChannelTest, FullQueueRejectsWithoutServerWork) {
  server_.queue().configure({1e6, /*maxWaitMicros=*/1000.0});
  server_.queue().addWork(2000.0);  // wait 2000 µs >= 1000 µs bound
  channel_.setNowMicros(0);
  const auto result =
      channel_.callWithPolicy(client_, server_, 64, 64, rpc::CallPolicy{});
  EXPECT_FALSE(result.ok);
  EXPECT_GT(channel_.faultCounters().queueRejections, 0u);
  // Rejection bounces at the listener: no request work enters the backlog.
  EXPECT_DOUBLE_EQ(server_.queue().backlogMicros(), 2000.0);
}

TEST_F(OverloadChannelTest, BreakerOpensThenShortCircuitsWithoutWire) {
  rpc::BreakerPolicy policy = tinyBreaker();
  policy.openMicros = 1e9;  // never cools down within this test
  channel_.enableBreakers(policy);
  server_.setUp(false);
  channel_.setNowMicros(0);

  for (int i = 0; i < 4; ++i) {
    (void)channel_.callWithPolicy(client_, server_, 64, 64,
                                  rpc::CallPolicy{});
  }
  const rpc::CircuitBreaker* breaker = channel_.breakerFor(server_);
  ASSERT_NE(breaker, nullptr);
  EXPECT_EQ(breaker->state(), rpc::CircuitBreaker::State::kOpen);
  EXPECT_GE(channel_.faultCounters().breakerOpens, 1u);

  const std::uint64_t wireBefore = network_.messagesSent();
  const auto fast =
      channel_.callWithPolicy(client_, server_, 64, 64, rpc::CallPolicy{});
  EXPECT_FALSE(fast.ok);
  EXPECT_EQ(fast.attempts, 0u);
  EXPECT_DOUBLE_EQ(fast.latencyMicros, 0.0);
  EXPECT_EQ(network_.messagesSent(), wireBefore);  // failed fast, no traffic
  EXPECT_GE(channel_.faultCounters().breakerShortCircuits, 1u);
  // Tripping is cheap, not free: the caller still built the request.
  EXPECT_GT(fast.wastedCpuMicros, 0.0);
}

TEST_F(OverloadChannelTest, HalfOpenProbeRecoversARestartedServer) {
  channel_.enableBreakers(tinyBreaker());  // openMicros = 1000
  server_.setUp(false);
  channel_.setNowMicros(0);
  for (int i = 0; i < 4; ++i) {
    (void)channel_.callWithPolicy(client_, server_, 64, 64,
                                  rpc::CallPolicy{});
  }
  ASSERT_EQ(channel_.breakerFor(server_)->state(),
            rpc::CircuitBreaker::State::kOpen);

  server_.setUp(true);
  channel_.setNowMicros(2000);  // past the cool-down: next call is the probe
  const auto probe =
      channel_.callWithPolicy(client_, server_, 64, 64, rpc::CallPolicy{});
  EXPECT_TRUE(probe.ok);
  EXPECT_EQ(channel_.breakerFor(server_)->state(),
            rpc::CircuitBreaker::State::kClosed);
}

TEST_F(OverloadChannelTest, HedgeRescuesADownPrimary) {
  channel_.enableHedging(rpc::HedgePolicy{});
  server_.setUp(false);
  const auto result = channel_.callHedged(client_, server_, &backup_, 64, 64,
                                          rpc::CallPolicy{});
  EXPECT_TRUE(result.ok);
  EXPECT_EQ(channel_.faultCounters().hedgesSent, 1u);
  EXPECT_EQ(channel_.faultCounters().hedgeWins, 1u);
  // The rescued call is faster than riding the primary's full retry ladder
  // (its latency includes the hedge delay, not three timeouts).
  const rpc::CallPolicy policy;
  EXPECT_LT(result.latencyMicros,
            policy.timeoutMicros * static_cast<double>(policy.maxAttempts));
}

TEST_F(OverloadChannelTest, HedgingOffFallsBackToPolicyCall) {
  server_.setUp(false);
  const auto result = channel_.callHedged(client_, server_, &backup_, 64, 64,
                                          rpc::CallPolicy{});
  EXPECT_FALSE(result.ok);
  EXPECT_EQ(channel_.faultCounters().hedgesSent, 0u);
  EXPECT_EQ(channel_.faultCounters().hedgeWins, 0u);
}

TEST_F(OverloadChannelTest, HedgeDelayFloorsDuringTrackerWarmup) {
  rpc::HedgePolicy policy;
  policy.minSamples = 4;
  channel_.enableHedging(policy);
  EXPECT_DOUBLE_EQ(channel_.hedgeDelayMicros(sim::TierKind::kAppServer),
                   policy.minHedgeDelayMicros);
  // Feed the tracker past warm-up: the threshold becomes the p99, floored.
  for (int i = 0; i < 8; ++i) {
    (void)channel_.callHedged(client_, server_, &backup_, 64, 64,
                              rpc::CallPolicy{});
  }
  EXPECT_GE(channel_.hedgeDelayMicros(sim::TierKind::kAppServer),
            policy.minHedgeDelayMicros);
}

// ------------------------------------------------ Deployment-level wiring

TEST(DeploymentOverload, OffByDefault) {
  core::DeploymentConfig config;
  config.architecture = core::Architecture::kLinked;
  core::Deployment deployment(config);
  EXPECT_FALSE(deployment.overloadInstalled());
  EXPECT_EQ(deployment.shedder(), nullptr);
  EXPECT_FALSE(deployment.channel().breakersEnabled());
  EXPECT_FALSE(deployment.channel().hedgingEnabled());
}

/// Counters after driving `arch` through a saturating open-loop surge.
core::ServeCounters runSaturated(core::Architecture arch, bool defenses) {
  constexpr std::uint64_t kCalibrateOps = 2000;
  constexpr std::uint64_t kSurgeOps = 4000;
  constexpr double kQps = 120000.0;
  constexpr double kSurgeFactor = 6.0;

  // Calibrate: steady per-node app-tier demand with infinite capacity.
  double appDemandPerSec = 0.0;
  {
    core::DeploymentConfig config;
    config.architecture = arch;
    core::Deployment calibration(config);
    workload::SyntheticWorkload workload{workload::SyntheticConfig{}};
    calibration.populateKv(workload);
    for (std::uint64_t i = 0; i < kCalibrateOps; ++i) {
      calibration.setSimTimeMicros(
          static_cast<std::uint64_t>(1e6 / kQps * static_cast<double>(i)));
      calibration.serve(workload.next());
    }
    for (const sim::Tier* tier : calibration.tiers()) {
      if (tier->kind() == sim::TierKind::kAppServer) {
        appDemandPerSec = tier->aggregateCpu().totalMicros() /
                          (static_cast<double>(kCalibrateOps) / kQps) /
                          static_cast<double>(tier->size());
      }
    }
  }

  core::DeploymentConfig config;
  config.architecture = arch;
  config.overload.appCapacityMicrosPerSec = appDemandPerSec * 2.0;
  if (defenses) {
    config.overload.shed.enabled = true;
    config.overload.shed.targetDelayMicros =
        config.rpcPolicy.timeoutMicros * 0.5;
    config.overload.shed.graceMicros = config.rpcPolicy.timeoutMicros;
    config.overload.shed.rampMicros = config.rpcPolicy.timeoutMicros;
    config.overload.breakersEnabled = true;
    config.overload.hedgingEnabled = true;
    config.rpcPolicy.deadlineMicros = config.rpcPolicy.timeoutMicros * 2.5;
  }
  core::Deployment deployment(config);
  workload::SyntheticWorkload workload{workload::SyntheticConfig{}};
  deployment.populateKv(workload);

  // Warm at steady pace, then an open-loop surge at kSurgeFactor x the
  // calibrated rate: 3x the provisioned capacity, guaranteed saturation.
  double simMicros = 0.0;
  for (std::uint64_t i = 0; i < kCalibrateOps; ++i) {
    deployment.setSimTimeMicros(static_cast<std::uint64_t>(simMicros));
    simMicros += 1e6 / kQps;
    deployment.serve(workload.next());
  }
  deployment.clearMeters();
  for (std::uint64_t i = 0; i < kSurgeOps; ++i) {
    deployment.setSimTimeMicros(static_cast<std::uint64_t>(simMicros));
    simMicros += 1e6 / (kQps * kSurgeFactor);
    deployment.serve(workload.next());
  }
  return deployment.counters();
}

TEST(DeploymentOverload, DefensesStrictlyReduceRetryAmplification) {
  const core::ServeCounters off =
      runSaturated(core::Architecture::kLinked, false);
  const core::ServeCounters on =
      runSaturated(core::Architecture::kLinked, true);

  // The bare deployment melts: queue timeouts feed retries feed backlog.
  EXPECT_GT(off.queueTimeouts + off.queueRejections, 0u);
  EXPECT_GT(off.retries, 0u);
  EXPECT_EQ(off.sheddedRequests, 0u);

  // Armed, the shedder + breakers + budget turn the storm into shed load.
  EXPECT_GT(on.sheddedRequests, 0u);
  EXPECT_LT(on.retries, off.retries);
  EXPECT_LT(on.queueTimeouts + on.queueRejections,
            off.queueTimeouts + off.queueRejections);
}

TEST(DeploymentOverload, ShedsPreserveReadConservation) {
  const core::ServeCounters on =
      runSaturated(core::Architecture::kLinked, true);
  ASSERT_GT(on.sheddedRequests, 0u);
  // Every read either probed the cache (hit or miss) or was shed at
  // admission — nothing double-counted, nothing lost.
  EXPECT_EQ(on.cacheHits + on.cacheMisses + on.sheddedRequests, on.reads);
  // Writes are never shed.
  EXPECT_GT(on.writes, 0u);
}

TEST(DeploymentOverload, WritesAreNeverShed) {
  // A read-free workload through a collapsed deployment sheds nothing.
  core::DeploymentConfig config;
  config.architecture = core::Architecture::kLinked;
  config.overload.appCapacityMicrosPerSec = 1.0;  // hopelessly undersized
  config.overload.shed.enabled = true;
  core::Deployment deployment(config);
  workload::SyntheticConfig writeOnly;
  writeOnly.readRatio = 0.0;
  workload::SyntheticWorkload workload{writeOnly};
  deployment.populateKv(workload);
  for (std::uint64_t i = 0; i < 500; ++i) {
    deployment.setSimTimeMicros(i * 8);
    deployment.serve(workload.next());
  }
  EXPECT_GT(deployment.counters().writes, 0u);
  EXPECT_EQ(deployment.counters().sheddedRequests, 0u);
}

}  // namespace
}  // namespace dcache
