#!/usr/bin/env bash
# Golden-output check: run one bench binary under the pinned fast config
# and byte-diff its stdout against the recorded golden file.
#
# Usage: check_golden.sh <bench-binary> <golden-file> [extra bench args...]
#
# DCACHE_GOLDEN_OPS caps every ExperimentRunner's operation/warmup counts,
# so the full matrix still runs — same cells, same seeds, same code paths —
# just short enough for ctest. Goldens are recorded with the same cap by
# tools/update_goldens.sh; a diff here means the simulation's observable
# behaviour changed and the golden must be consciously re-recorded.
set -euo pipefail

bench="$1"
golden="$2"
shift 2

if [[ ! -f "$golden" ]]; then
  echo "check_golden.sh: missing golden file $golden" >&2
  echo "record it with tools/update_goldens.sh" >&2
  exit 1
fi

actual="$(mktemp)"
trap 'rm -f "$actual"' EXIT

DCACHE_GOLDEN_OPS="${DCACHE_GOLDEN_OPS:-2000}" "$bench" "$@" > "$actual"

if ! diff -u "$golden" "$actual"; then
  echo "check_golden.sh: $(basename "$bench") diverged from $(basename "$golden")" >&2
  exit 1
fi
