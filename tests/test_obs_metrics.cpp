// MetricsRegistry: typed upserts, insertion-ordered stable JSON, the tier
// adapter, and the file export the benches use for --metrics-out.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/metrics.hpp"
#include "util/histogram.hpp"

namespace dcache {
namespace {

TEST(MetricsRegistry, UpsertsByNameAndKeepsInsertionOrder) {
  obs::MetricsRegistry registry;
  registry.setCounter("b.reads", 10);
  registry.setGauge("a.hit_ratio", 0.5);
  registry.setCounter("b.reads", 12);  // overwrite, not duplicate

  ASSERT_EQ(registry.size(), 2u);
  EXPECT_EQ(registry.metrics()[0].name, "b.reads");  // insertion order wins
  EXPECT_EQ(registry.metrics()[1].name, "a.hit_ratio");

  const obs::MetricsRegistry::Metric* reads = registry.find("b.reads");
  ASSERT_NE(reads, nullptr);
  EXPECT_EQ(reads->kind, obs::MetricsRegistry::Kind::kCounter);
  EXPECT_EQ(reads->counter, 12u);

  registry.addToCounter("b.reads", 3);
  EXPECT_EQ(registry.find("b.reads")->counter, 15u);
  registry.addToCounter("fresh", 4);  // created at zero first
  EXPECT_EQ(registry.find("fresh")->counter, 4u);

  EXPECT_EQ(registry.find("missing"), nullptr);
}

TEST(MetricsRegistry, HistogramsExportSummaryStatistics) {
  util::Histogram histogram;
  for (int i = 1; i <= 100; ++i) histogram.record(static_cast<double>(i));

  obs::MetricsRegistry registry;
  registry.setHistogram("latency_us", histogram);
  const obs::MetricsRegistry::Metric* metric = registry.find("latency_us");
  ASSERT_NE(metric, nullptr);
  EXPECT_EQ(metric->kind, obs::MetricsRegistry::Kind::kHistogram);
  EXPECT_EQ(metric->histogram.count, 100u);
  EXPECT_NEAR(metric->histogram.mean, 50.5, 1.0);
  EXPECT_GE(metric->histogram.p99, metric->histogram.p50);
  EXPECT_GE(metric->histogram.max, metric->histogram.p99);
}

TEST(MetricsRegistry, JsonIsStableAndCarriesTheSchemaTag) {
  obs::MetricsRegistry registry;
  registry.setCounter("reads", 7);
  registry.setGauge("ratio", 0.25);

  const std::string json = registry.toJson();
  EXPECT_NE(json.find("\"schema\":\"dcache.metrics.v1\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"reads\""), std::string::npos);
  EXPECT_NE(json.find("\"type\":\"counter\""), std::string::npos);
  EXPECT_NE(json.find("\"type\":\"gauge\""), std::string::npos);
  // Deterministic: same registry, same document.
  EXPECT_EQ(json, registry.toJson());
  // Counters appear before gauges here because insertion order is the
  // export order.
  EXPECT_LT(json.find("\"reads\""), json.find("\"ratio\""));
}

TEST(MetricsRegistry, WritesTheJsonDocumentToAFile) {
  obs::MetricsRegistry registry;
  registry.setCounter("x", 1);

  const std::string path = ::testing::TempDir() + "dcache_metrics_test.json";
  ASSERT_TRUE(registry.writeJsonFile(path));
  std::ifstream in(path);
  std::stringstream content;
  content << in.rdbuf();
  EXPECT_EQ(content.str(), registry.toJson());
  std::remove(path.c_str());

  EXPECT_FALSE(registry.writeJsonFile("/nonexistent-dir/metrics.json"));
}

TEST(MetricsRegistry, TierAdapterPublishesMetersUnderThePrefix) {
  sim::Tier tier("kv", sim::TierKind::kKvStorage, 2);
  tier.node(0).charge(sim::CpuComponent::kKvExecution, 120.0);
  tier.node(1).charge(sim::CpuComponent::kSerialization, 30.0);

  obs::MetricsRegistry registry;
  obs::exportTierMetrics(registry, "tier.", tier);  // names: tier.<name>.*

  const auto* nodes = registry.find("tier.kv.nodes");
  ASSERT_NE(nodes, nullptr);
  EXPECT_EQ(nodes->counter, 2u);
  const auto* total = registry.find("tier.kv.cpu_micros_total");
  ASSERT_NE(total, nullptr);
  EXPECT_DOUBLE_EQ(total->gauge, 150.0);
}

TEST(MetricsRegistry, ClearEmptiesTheRegistry) {
  obs::MetricsRegistry registry;
  registry.setCounter("x", 1);
  registry.clear();
  EXPECT_EQ(registry.size(), 0u);
  EXPECT_EQ(registry.find("x"), nullptr);
  registry.setCounter("y", 2);  // reusable after clear
  EXPECT_EQ(registry.size(), 1u);
}

}  // namespace
}  // namespace dcache
