// Cross-module integration tests, parameterized over all four
// architectures: serving invariants, accounting conservation, determinism,
// and failure injection (reshard mid-run).
#include <gtest/gtest.h>

#include <string>

#include "core/deployment.hpp"
#include "core/experiment.hpp"
#include "workload/synthetic.hpp"

namespace dcache::core {
namespace {

[[nodiscard]] DeploymentConfig smallConfig(Architecture arch) {
  DeploymentConfig config;
  config.architecture = arch;
  config.appCachePerNode = util::Bytes::mb(64);
  config.remoteCachePerNode = util::Bytes::mb(64);
  config.blockCachePerNode = util::Bytes::mb(64);
  return config;
}

[[nodiscard]] workload::SyntheticConfig smallWorkload() {
  workload::SyntheticConfig config;
  config.numKeys = 1500;
  config.valueSize = 2048;
  config.readRatio = 0.9;
  return config;
}

class ArchitectureContract : public ::testing::TestWithParam<Architecture> {
 protected:
  [[nodiscard]] Architecture arch() const { return GetParam(); }
};

TEST_P(ArchitectureContract, CountersAddUp) {
  Deployment deployment(smallConfig(arch()));
  workload::SyntheticWorkload workload(smallWorkload());
  deployment.populateKv(workload);
  constexpr std::uint64_t kOps = 5000;
  for (std::uint64_t i = 0; i < kOps; ++i) deployment.serve(workload.next());

  const ServeCounters& counters = deployment.counters();
  EXPECT_EQ(counters.reads + counters.writes, kOps);
  EXPECT_EQ(deployment.latencies().count(), kOps);
  if (arch() == Architecture::kBase) {
    EXPECT_EQ(counters.cacheHits + counters.cacheMisses, 0u);
  } else {
    EXPECT_EQ(counters.cacheHits + counters.cacheMisses, counters.reads);
  }
}

TEST_P(ArchitectureContract, CpuConservationAcrossAllTiers) {
  Deployment deployment(smallConfig(arch()));
  workload::SyntheticWorkload workload(smallWorkload());
  deployment.populateKv(workload);
  for (int i = 0; i < 3000; ++i) deployment.serve(workload.next());

  for (const sim::Tier* tier : deployment.tiers()) {
    for (std::size_t n = 0; n < tier->size(); ++n) {
      const sim::CpuMeter& cpu = tier->node(n).cpu();
      double sum = 0.0;
      for (std::size_t c = 0; c < sim::kNumCpuComponents; ++c) {
        sum += cpu.micros(static_cast<sim::CpuComponent>(c));
      }
      EXPECT_NEAR(sum, cpu.totalMicros(), 1e-6)
          << tier->name() << "[" << n << "]";
    }
  }
}

TEST_P(ArchitectureContract, EveryRequestReachesTheClientLeg) {
  // The client node pays framing for every request under every
  // architecture — no request is served without answering someone.
  Deployment deployment(smallConfig(arch()));
  workload::SyntheticWorkload workload(smallWorkload());
  deployment.populateKv(workload);
  for (int i = 0; i < 1000; ++i) deployment.serve(workload.next());
  const sim::Tier* clients = deployment.tiers().front();
  ASSERT_EQ(clients->kind(), sim::TierKind::kClient);
  EXPECT_GT(clients->aggregateCpu().micros(sim::CpuComponent::kClientComm),
            0.0);
}

TEST_P(ArchitectureContract, DeterministicAcrossRuns) {
  auto runOnce = [&] {
    Deployment deployment(smallConfig(arch()));
    workload::SyntheticWorkload workload(smallWorkload());
    deployment.populateKv(workload);
    ExperimentConfig experiment;
    experiment.operations = 4000;
    experiment.warmupOperations = 2000;
    ExperimentRunner runner(experiment);
    return runner.run(deployment, workload);
  };
  const auto a = runOnce();
  const auto b = runOnce();
  EXPECT_EQ(a.cost.totalCost.micros(), b.cost.totalCost.micros());
  EXPECT_EQ(a.counters.cacheHits, b.counters.cacheHits);
  EXPECT_DOUBLE_EQ(a.meanLatencyMicros, b.meanLatencyMicros);
}

TEST_P(ArchitectureContract, ReadsAfterWritesSeeLatestSize) {
  // Functional correctness through the full stack: write a new size, read
  // it back through whatever path the architecture uses.
  Deployment deployment(smallConfig(arch()));
  workload::SyntheticWorkload workload(smallWorkload());
  deployment.populateKv(workload);

  workload::Op write;
  write.type = workload::OpType::kWrite;
  write.keyIndex = 42;
  write.valueSize = 7777;
  deployment.serve(write);

  workload::Op read;
  read.type = workload::OpType::kRead;
  read.keyIndex = 42;
  read.valueSize = 7777;
  deployment.serve(read);

  // Storage must hold the new size regardless of architecture.
  sim::Node probe("probe", sim::TierKind::kClient);
  const auto stored = deployment.db().readValue(
      probe, workload::keyName(42));
  EXPECT_TRUE(stored.found);
  EXPECT_EQ(stored.size, 7777u);
}

INSTANTIATE_TEST_SUITE_P(
    AllArchitectures, ArchitectureContract,
    ::testing::ValuesIn(kAllArchitectures),
    [](const auto& info) {
      std::string name(architectureName(info.param));
      for (char& c : name) {
        if (c == '+') c = '_';
      }
      return name;
    });

TEST(FailureInjection, ReshardDropsShardButServiceRecovers) {
  DeploymentConfig config = smallConfig(Architecture::kLinked);
  Deployment deployment(config);
  workload::SyntheticWorkload workload(smallWorkload());
  deployment.populateKv(workload);

  // Warm, then kill one app server's shard (ring removal).
  for (int i = 0; i < 10000; ++i) deployment.serve(workload.next());
  deployment.clearMeters();
  ASSERT_NE(deployment.linkedCache(), nullptr);
  deployment.linkedCache()->removeServer(1);

  // Service continues; the lost shard's keys re-warm via misses.
  for (int i = 0; i < 10000; ++i) deployment.serve(workload.next());
  EXPECT_GT(deployment.counters().cacheMisses, 0u);
  EXPECT_GT(deployment.counters().hitRatio(), 0.5);

  // Steady state again after the re-warm.
  deployment.clearMeters();
  for (int i = 0; i < 5000; ++i) deployment.serve(workload.next());
  EXPECT_GT(deployment.counters().hitRatio(), 0.8);
}

TEST(FailureInjection, ReshardNeverServesStaleUnderVersionChecks) {
  // Even across a reshard, the Linked+Version path must never serve a
  // version that storage has already superseded.
  DeploymentConfig config = smallConfig(Architecture::kLinkedVersion);
  Deployment deployment(config);
  workload::SyntheticWorkload workload(smallWorkload());
  deployment.populateKv(workload);
  for (int i = 0; i < 5000; ++i) deployment.serve(workload.next());
  deployment.linkedCache()->removeServer(0);
  for (int i = 0; i < 5000; ++i) deployment.serve(workload.next());
  // Mismatches may occur (that is the check working); what may not happen
  // is a served stale hit: every mismatch was refilled, so hits + misses
  // still account for all reads.
  const ServeCounters& counters = deployment.counters();
  EXPECT_EQ(counters.cacheHits + counters.cacheMisses, counters.reads);
  EXPECT_GT(counters.versionChecks, 0u);
}

TEST(Integration, NonAffinityRoutingCostsMoreButWorks) {
  // Without Slicer-style affinity, ~2/3 of probes forward to the owning
  // shard over the app tier: same hit ratio, strictly more CPU.
  auto runWith = [&](bool affinity) {
    DeploymentConfig config = smallConfig(Architecture::kLinked);
    config.affinityRouting = affinity;
    workload::SyntheticWorkload workload(smallWorkload());
    ExperimentConfig experiment;
    experiment.operations = 10000;
    experiment.warmupOperations = 10000;
    experiment.qps = 100000;
    return runArchitecture(Architecture::kLinked, workload, config,
                           experiment);
  };
  const auto affinity = runWith(true);
  const auto sprayed = runWith(false);
  EXPECT_NEAR(affinity.counters.hitRatio(), sprayed.counters.hitRatio(),
              0.01);
  EXPECT_GT(sprayed.cost.computeCost.micros(),
            affinity.cost.computeCost.micros());
  // Forwarding adds latency too.
  EXPECT_GT(sprayed.meanLatencyMicros, affinity.meanLatencyMicros);
}

TEST(Integration, ColderCacheCostsMore) {
  // Same workload, smaller cache, higher bill — the MRC connection.
  auto runWithCache = [&](util::Bytes perNode) {
    DeploymentConfig config = smallConfig(Architecture::kLinked);
    config.appCachePerNode = perNode;
    workload::SyntheticWorkload workload(smallWorkload());
    ExperimentConfig experiment;
    experiment.operations = 10000;
    experiment.warmupOperations = 10000;
    experiment.qps = 100000;
    return runArchitecture(Architecture::kLinked, workload, config,
                           experiment);
  };
  const auto big = runWithCache(util::Bytes::mb(64));
  const auto tiny = runWithCache(util::Bytes::of(100 * 1024));
  EXPECT_GT(big.counters.hitRatio(), tiny.counters.hitRatio());
  EXPECT_LT(big.cost.computeCost.micros(), tiny.cost.computeCost.micros());
}

TEST(Integration, RemoteCacheSharableAcrossAppServers) {
  // §2.4: remote caches are shared — a fill from one app server serves
  // hits probed via any other.
  DeploymentConfig config = smallConfig(Architecture::kRemote);
  Deployment deployment(config);
  workload::SyntheticWorkload workload(smallWorkload());
  deployment.populateKv(workload);
  ASSERT_NE(deployment.remoteCache(), nullptr);

  const std::string key = workload::keyName(7);
  auto& appTier = deployment.appTier();
  deployment.remoteCache()->put(appTier.node(0), key, 2048, 1);
  const auto hit = deployment.remoteCache()->get(appTier.node(2), key);
  EXPECT_TRUE(hit.hit);
  EXPECT_EQ(hit.size, 2048u);
}

}  // namespace
}  // namespace dcache::core
