// Core library tests: pricing, cost model math, architecture plumbing, the
// Section-4 theoretical model (including the paper's takeaways) and report
// formatting helpers.
#include <gtest/gtest.h>

#include "core/architecture.hpp"
#include "core/cost_model.hpp"
#include "core/model.hpp"
#include "core/pricing.hpp"

namespace dcache::core {
namespace {

TEST(Pricing, PaperConstants) {
  const Pricing gcp = Pricing::gcp();
  EXPECT_DOUBLE_EQ(gcp.vcpuPerMonth.dollars(), 17.0);
  EXPECT_DOUBLE_EQ(gcp.dramPerGbMonth.dollars(), 2.0);
  // $2 per 100 GB.
  EXPECT_DOUBLE_EQ(gcp.storageCost(util::Bytes::gb(100)).dollars(), 2.0);
}

TEST(Pricing, MemoryMultiplier) {
  const Pricing scaled = Pricing::gcp().withMemoryMultiplier(40.0);
  EXPECT_DOUBLE_EQ(scaled.dramPerGbMonth.dollars(), 80.0);
  EXPECT_DOUBLE_EQ(scaled.vcpuPerMonth.dollars(), 17.0);  // unchanged
}

TEST(CostModel, CoresFromBusyTime) {
  sim::Tier tier("app", sim::TierKind::kAppServer, 2);
  // 7 busy seconds over a 10-second window at 70% utilization = 1 core.
  tier.node(0).charge(sim::CpuComponent::kAppLogic, 7e6);
  const CostModel model(Pricing::gcp(), 0.7);
  const TierUsage usage = model.tierUsage(tier, 10.0);
  EXPECT_NEAR(usage.cores, 1.0, 1e-9);
  EXPECT_NEAR(usage.computeCost.dollars(), 17.0, 1e-6);
}

TEST(CostModel, BreakdownSumsTiersAndExcludesClients) {
  sim::Tier clients("client", sim::TierKind::kClient, 1);
  sim::Tier app("app", sim::TierKind::kAppServer, 1);
  clients.node(0).charge(sim::CpuComponent::kClientComm, 1e9);
  app.node(0).charge(sim::CpuComponent::kAppLogic, 7e6);
  app.node(0).mem().provision(util::Bytes::gb(3));

  const CostModel model(Pricing::gcp(), 0.7);
  const auto breakdown = model.breakdown({&clients, &app}, 10.0,
                                         util::Bytes::gb(100), 3);
  ASSERT_EQ(breakdown.tiers.size(), 1u);  // client tier excluded
  EXPECT_NEAR(breakdown.computeCost.dollars(), 17.0, 1e-6);
  EXPECT_NEAR(breakdown.memoryCost.dollars(), 6.0, 1e-6);
  EXPECT_NEAR(breakdown.storageCost.dollars(), 6.0, 1e-6);  // 300 GB × $0.02
  EXPECT_NEAR(breakdown.totalCost.dollars(), 29.0, 1e-6);
  EXPECT_NEAR(breakdown.memoryShare(), 6.0 / 29.0, 1e-6);
  EXPECT_NE(breakdown.tier(sim::TierKind::kAppServer), nullptr);
  EXPECT_EQ(breakdown.tier(sim::TierKind::kKvStorage), nullptr);
}

TEST(Architecture, NamesRoundtrip) {
  for (const Architecture arch : kAllArchitectures) {
    const auto parsed = parseArchitecture(architectureName(arch));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, arch);
  }
  EXPECT_FALSE(parseArchitecture("bogus").has_value());
  EXPECT_EQ(parseArchitecture("linked"), Architecture::kLinked);
}

class ModelTest : public ::testing::Test {
 protected:
  ModelTest() : model_(ModelParams{}) {}
  TheoreticalModel model_;
};

TEST_F(ModelTest, MissRatioMonotone) {
  // Strictly decreasing until the cache covers the whole keyspace
  // (1M × 23KB ≈ 22 GB), then pinned at zero.
  double previous = 1.1;
  for (const double gb : {0.05, 0.25, 1.0, 4.0, 8.0, 16.0}) {
    const double mr = model_.missRatio(util::Bytes::gb(gb));
    EXPECT_LT(mr, previous) << gb;
    previous = mr;
  }
  EXPECT_DOUBLE_EQ(model_.missRatio(util::Bytes::gb(32)), 0.0);
}

TEST_F(ModelTest, AppCacheBeatsStorageCacheAtTheMargin) {
  // §4 takeaway: |∂T/∂s_A| > |∂T/∂s_D| — a GB of linked cache removes the
  // full miss cost, a GB of storage cache only the disk residual.
  const util::Bytes sA = util::Bytes::gb(1);
  const util::Bytes sD = util::Bytes::gb(1);
  EXPECT_GT(std::abs(model_.dTdAppCache(sA, sD)),
            std::abs(model_.dTdStorageCache(sA, sD)));
}

TEST_F(ModelTest, MoreSkewMorePronounced) {
  // Fig. 2a: the s_A advantage grows with workload skew — evaluated on the
  // steep part of the curve, where provisioning decisions actually live.
  ModelParams lowSkew;
  lowSkew.alpha = 0.8;
  ModelParams highSkew;
  highSkew.alpha = 1.3;
  const TheoreticalModel low(lowSkew);
  const TheoreticalModel high(highSkew);
  const util::Bytes sA = util::Bytes::mb(128);
  const util::Bytes sD = util::Bytes::mb(128);
  const double advLow =
      std::abs(low.dTdAppCache(sA, sD)) / std::abs(low.dTdStorageCache(sA, sD));
  const double advHigh = std::abs(high.dTdAppCache(sA, sD)) /
                         std::abs(high.dTdStorageCache(sA, sD));
  EXPECT_GT(advLow, 1.0);   // the §4 inequality holds at both skews…
  EXPECT_GT(advHigh, advLow);  // …and strengthens with skew
}

TEST_F(ModelTest, LinkedCacheSavesVsBase) {
  // Fig. 2 configuration: Linked (s_A = 8 GB, s_D = 1 GB) vs Base (1 GB).
  const double saving = model_.savingVsBase(
      util::Bytes::gb(8), util::Bytes::gb(1), util::Bytes::gb(1));
  EXPECT_GT(saving, 1.5);
}

TEST_F(ModelTest, SavingsSurviveExpensiveMemory) {
  // §4: even at 40× memory prices, adding linked cache (at its then-optimal
  // size — expensive DRAM shrinks the optimum, it does not zero it) still
  // beats the no-linked-cache baseline.
  ModelParams params;
  params.pricing = Pricing::gcp().withMemoryMultiplier(40.0);
  const TheoreticalModel expensive(params);
  const util::Bytes best =
      expensive.optimalAppCache(util::Bytes::gb(1), util::Bytes::gb(16));
  EXPECT_GT(best.count(), 0u);
  const double saving =
      expensive.savingVsBase(best, util::Bytes::gb(1), util::Bytes::gb(1));
  EXPECT_GT(saving, 1.0);
}

TEST_F(ModelTest, SavingsSurviveReplication) {
  // Fig. 2b: larger N_r erodes but does not erase the saving.
  ModelParams params;
  params.replicas = 4.0;
  const TheoreticalModel replicated(params);
  const double saving = replicated.savingVsBase(
      util::Bytes::gb(8), util::Bytes::gb(1), util::Bytes::gb(1));
  EXPECT_GT(saving, 1.0);
  EXPECT_LT(saving, model_.savingVsBase(util::Bytes::gb(8),
                                        util::Bytes::gb(1),
                                        util::Bytes::gb(1)));
}

TEST_F(ModelTest, OptimalAllocationIsInterior) {
  // The optimum sits where the marginal benefit matches the memory price:
  // strictly positive, strictly below the search bound, near-zero gradient.
  const util::Bytes best =
      model_.optimalAppCache(util::Bytes::gb(1), util::Bytes::gb(64));
  EXPECT_GT(best.count(), util::Bytes::mb(100).count());
  EXPECT_LT(best.count(), util::Bytes::gb(64).count());
  // Near-zero gradient: the 64 MB central difference carries discretization
  // bias near the minimum, so the tolerance is loose in absolute terms but
  // tiny next to the ~$20/GB slope at the origin.
  EXPECT_NEAR(model_.dTdAppCache(best, util::Bytes::gb(1)), 0.0, 2.0);
  // And it is no worse than neighbouring allocations.
  const auto atBest = model_.totalCost(best, util::Bytes::gb(1));
  EXPECT_LE(atBest.micros(),
            model_.totalCost(best + util::Bytes::gb(1), util::Bytes::gb(1))
                .micros());
  EXPECT_LE(atBest.micros(),
            model_.totalCost(best - util::Bytes::gb(1), util::Bytes::gb(1))
                .micros());
}

TEST_F(ModelTest, CostDecomposition) {
  // With zero cache everything misses: pure compute + tiny memory.
  const auto none = model_.totalCost(util::Bytes::of(0), util::Bytes::of(0));
  const double expectedCores =
      model_.params().qps *
      (model_.params().missCostAppMicros + model_.params().missCostStorageMicros) /
      1e6 / model_.params().utilization;
  EXPECT_NEAR(none.dollars(), expectedCores * 17.0, 0.5);
}

}  // namespace
}  // namespace dcache::core
