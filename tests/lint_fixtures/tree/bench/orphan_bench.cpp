// Fixture bench deliberately missing from tools/check.sh and from
// tests/golden/ — the bench-hygiene rule must flag it at line 1.
#include <cstdio>

int main() {
  std::puts("orphan");
  return 0;
}
