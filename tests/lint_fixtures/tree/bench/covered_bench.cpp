// Fixture bench registered in tools/check.sh's determinism diff and
// covered by tests/golden/covered_bench.txt — clean.
#include <cstdio>

int main() {
  std::puts("covered");
  return 0;
}
