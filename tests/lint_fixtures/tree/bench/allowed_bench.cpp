// dcache-lint: allow-file(bench-hygiene, wall-clock microbench fixture — its stdout carries timings and cannot be byte-deterministic)
#include <cstdio>

int main() {
  std::puts("allowed");
  return 0;
}
